package elpc

import (
	"math/rand/v2"

	"elpc/internal/baseline"
	"elpc/internal/churn"
	"elpc/internal/core"
	"elpc/internal/engine"
	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/measure"
	"elpc/internal/model"
	"elpc/internal/refine"
	"elpc/internal/service"
	"elpc/internal/service/wire"
	"elpc/internal/sim"
)

// Domain types, re-exported from the internal model so downstream users have
// stable names without reaching into internal packages.
type (
	// NodeID identifies a network node.
	NodeID = model.NodeID
	// Node is a computing node with normalized processing power (ops/ms).
	Node = model.Node
	// Link is a directed communication link (bandwidth Mbit/s, MLD ms).
	Link = model.Link
	// Network is an arbitrary-topology directed transport network.
	Network = model.Network
	// Module is one pipeline stage (complexity ops/byte, data sizes bytes).
	Module = model.Module
	// Pipeline is a linear module chain from data source to end user.
	Pipeline = model.Pipeline
	// Mapping assigns every module to a node.
	Mapping = model.Mapping
	// Group is a maximal run of consecutive modules on one node.
	Group = model.Group
	// Problem bundles a network, pipeline, endpoints, and cost options.
	Problem = model.Problem
	// Objective selects minimum delay or maximum frame rate.
	Objective = model.Objective
	// CostOptions tunes the analytical cost model.
	CostOptions = model.CostOptions
	// Mapper is the algorithm interface shared by ELPC and the baselines.
	Mapper = model.Mapper
	// CaseSpec describes one generated evaluation case.
	CaseSpec = gen.CaseSpec
	// Ranges bounds randomly generated pipeline/network attributes.
	Ranges = gen.Ranges
	// SimConfig controls a discrete-event simulation run.
	SimConfig = sim.Config
	// SimResult reports a discrete-event simulation run.
	SimResult = sim.Result
	// ProbeConfig controls synthetic network measurement.
	ProbeConfig = measure.ProbeConfig
)

// Objectives.
const (
	// MinDelay minimizes end-to-end delay (node reuse allowed).
	MinDelay = model.MinDelay
	// MaxFrameRate maximizes frame rate (no node reuse).
	MaxFrameRate = model.MaxFrameRate
)

// ErrInfeasible is returned (wrapped) when no valid mapping exists.
var ErrInfeasible = model.ErrInfeasible

// NewNetwork validates nodes and links and builds a network.
func NewNetwork(nodes []Node, links []Link) (*Network, error) {
	return model.NewNetwork(nodes, links)
}

// NewPipeline validates a module chain and builds a pipeline.
func NewPipeline(modules []Module) (*Pipeline, error) {
	return model.NewPipeline(modules)
}

// DefaultCostOptions returns the evaluation's cost-model configuration.
func DefaultCostOptions() CostOptions { return model.DefaultCostOptions() }

// MinDelayMapping runs the optimal ELPC dynamic program for minimum
// end-to-end delay with node reuse (paper Section 3.1.1).
func MinDelayMapping(p *Problem) (*Mapping, error) { return core.MinDelay(p) }

// MaxFrameRateMapping runs the ELPC dynamic-programming heuristic for
// maximum frame rate without node reuse (paper Section 3.1.2).
func MaxFrameRateMapping(p *Problem) (*Mapping, error) { return core.MaxFrameRate(p) }

// MaxFrameRateWithReuse runs the reuse extension (paper Section 5 future
// work): hill climbing on the shared-resource bottleneck seeded by the ELPC
// mappings. It returns the mapping and its period in ms.
func MaxFrameRateWithReuse(p *Problem) (*Mapping, float64, error) {
	return refine.MaxFrameRateWithReuse(p, refine.Options{})
}

// MaxFrameRateWithDelayBudget maximizes frame rate among no-reuse mappings
// whose end-to-end delay stays within budgetMs (bicriteria extension; a
// non-positive budget disables the constraint).
func MaxFrameRateWithDelayBudget(p *Problem, budgetMs float64) (*Mapping, error) {
	return core.MaxFrameRateWithBudget(p, core.TradeoffOptions{DelayBudgetMs: budgetMs})
}

// TradeoffPoint is one (delay, rate) point of the rate–delay frontier.
type TradeoffPoint = core.TradeoffPoint

// RateDelayFront sweeps delay budgets and returns the nondominated
// (delay, rate) points with their mappings.
func RateDelayFront(p *Problem, points int) ([]TradeoffPoint, error) {
	return core.ParetoFront(p, points, 0)
}

// SolveContext owns reusable DP scratch memory, making repeated solves on
// one goroutine allocation-lean. Not safe for concurrent use; the package-
// level solver functions manage a pool of these internally.
type SolveContext = core.SolveContext

// NewSolveContext returns an empty solve context; scratch grows lazily and
// is reused across solves.
func NewSolveContext() *SolveContext { return core.NewSolveContext() }

// EnginePool is the bounded work-stealing executor behind parallel sweeps,
// batch solving, and fleet rebalancing. A nil *EnginePool means sequential.
type EnginePool = engine.Pool

// NewEnginePool starts a pool targeting the given parallelism (<= 0 selects
// GOMAXPROCS). Close it when done.
func NewEnginePool(workers int) *EnginePool { return engine.NewPool(workers) }

// RateDelayFrontParallel is RateDelayFront with the sweep's budget points
// fanned out across the pool. The result is byte-identical to the
// sequential sweep for any pool size.
func RateDelayFrontParallel(pool *EnginePool, p *Problem, points int) ([]TradeoffPoint, error) {
	return engine.ParetoFront(pool, p, points, 0)
}

// TotalDelay evaluates Eq. 1 (end-to-end delay, ms) of a mapping.
func TotalDelay(p *Problem, m *Mapping) float64 {
	return model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
}

// BottleneckOf evaluates Eq. 2 (bottleneck period, ms) of a mapping.
func BottleneckOf(p *Problem, m *Mapping) float64 {
	return model.Bottleneck(p.Net, p.Pipe, m)
}

// SharedBottleneckOf evaluates the shared-resource bottleneck (ms),
// generalizing Eq. 2 to mappings that reuse nodes or links.
func SharedBottleneckOf(p *Problem, m *Mapping) float64 {
	return model.SharedBottleneck(p.Net, p.Pipe, m)
}

// FrameRateOf converts a mapping's Eq. 2 bottleneck to frames/second.
func FrameRateOf(p *Problem, m *Mapping) float64 {
	return model.FrameRate(BottleneckOf(p, m))
}

// Mappers.

// ELPCMapper returns the paper's ELPC algorithm as a Mapper.
func ELPCMapper() Mapper { return core.Mapper{} }

// StreamlineMapper returns the adapted Streamline comparison algorithm.
func StreamlineMapper() Mapper { return baseline.Streamline{} }

// GreedyMapper returns the Greedy comparison algorithm.
func GreedyMapper() Mapper { return baseline.Greedy{} }

// BruteMapper returns the exhaustive exact solver (small instances only).
func BruteMapper() Mapper { return baseline.Brute{} }

// Generation.

// Suite20 returns the 20 evaluation cases behind Figures 2, 5, and 6.
func Suite20() []CaseSpec { return gen.Suite20() }

// SmallCase returns the illustrated 5-module / 6-node case of Figures 3–4.
func SmallCase() CaseSpec { return gen.SmallCase() }

// BuildCase materializes a case spec into a problem instance.
func BuildCase(spec CaseSpec) (*Problem, error) { return spec.Build() }

// DefaultRanges returns the calibrated random-attribute ranges.
func DefaultRanges() Ranges { return gen.DefaultRanges() }

// GenerateNetwork draws a strongly connected random network.
func GenerateNetwork(nodes, links int, r Ranges, rng *rand.Rand) (*Network, error) {
	return gen.Network(nodes, links, r, rng)
}

// GeneratePipeline draws a random linear pipeline with n modules.
func GeneratePipeline(n int, r Ranges, rng *rand.Rand) (*Pipeline, error) {
	return gen.Pipeline(n, r, rng)
}

// RNG returns the repository's deterministic random generator for a seed.
func RNG(seed uint64) *rand.Rand { return gen.RNG(seed) }

// Simulation.

// Simulate replays the mapped pipeline in the discrete-event simulator.
func Simulate(p *Problem, m *Mapping, cfg SimConfig) (*SimResult, error) {
	return sim.Simulate(p, m, cfg)
}

// Measurement.

// EstimateNetwork actively probes every node and link of the true network
// and returns a network built from the regression estimates (paper refs
// [13], [14]; probing is synthetic — see DESIGN.md).
func EstimateNetwork(truth *Network, cfg ProbeConfig) (*Network, error) {
	return measure.EstimateNetwork(truth, cfg)
}

// DefaultProbeSizes returns the default active-measurement probe train.
func DefaultProbeSizes() []float64 { return measure.DefaultProbeSizes() }

// Planning service (cmd/elpcd), embeddable pieces.

type (
	// ServiceOptions configures a Solver or planning server (worker pool
	// size, solution-cache capacity/shards, per-request solve timeout).
	ServiceOptions = service.Options
	// SolveOp selects the planning operation of a SolveRequest.
	SolveOp = service.Op
	// SolveRequest is one planning request for a Solver.
	SolveRequest = service.Request
	// SolveResult reports one solved planning request, including whether
	// it was served from the solution cache.
	SolveResult = service.Result
	// RateDelayPoint is one point of a served Pareto sweep.
	RateDelayPoint = service.FrontPoint
	// BatchItem is one Solver.SolveBatch outcome.
	BatchItem = service.BatchItem
	// Solver answers planning requests concurrently behind a bounded
	// worker pool and a sharded LRU solution cache keyed by the canonical
	// problem hash; safe for concurrent use.
	Solver = service.Solver
	// SolverStats snapshots solver counters (in-flight, cold solves,
	// coalesced requests, timeouts, cache hit/miss/eviction).
	SolverStats = service.SolverStats
	// CacheStats reports solution-cache counters.
	CacheStats = service.CacheStats
	// PlanningServer is the elpcd HTTP server; mount Handler() anywhere.
	PlanningServer = service.Server
)

// HTTP wire contract (internal/service/wire), embeddable pieces for clients
// that speak the /v1 API without importing the server.

type (
	// APIError is the structured error every /v1 handler returns inside an
	// APIErrorEnvelope: a stable code, a human message, and a retryable hint.
	APIError = wire.Error
	// APIErrorEnvelope is the {"error": {...}} body of every non-2xx /v1
	// response.
	APIErrorEnvelope = wire.ErrorEnvelope
	// DeployBatchRequest is the POST /v1/fleet/deploy-batch body: a burst of
	// deploy requests placed in one class/scarcity-ordered pass.
	DeployBatchRequest = wire.DeployBatch
	// DeployBatchItem is one request's outcome in a DeployBatchResponse.
	DeployBatchItem = wire.DeployBatchItem
	// DeployBatchResponse is the per-request outcome array plus tallies
	// returned by POST /v1/fleet/deploy-batch.
	DeployBatchResponse = wire.DeployBatchResponse
)

// Planning operations.
const (
	// OpMinDelay requests the optimal min-delay DP (reuse allowed).
	OpMinDelay = service.OpMinDelay
	// OpMaxFrameRate requests the max-frame-rate heuristic (no reuse),
	// optionally delay-budgeted.
	OpMaxFrameRate = service.OpMaxFrameRate
	// OpFront requests the rate–delay Pareto sweep.
	OpFront = service.OpFront
)

// NewSolver builds a concurrent caching planning solver. The zero
// ServiceOptions value selects GOMAXPROCS workers and the default cache.
func NewSolver(opt ServiceOptions) *Solver { return service.NewSolver(opt) }

// NewPlanningServer builds the elpcd HTTP planning server without binding a
// listener (use Handler() with your own mux, http.Server, or httptest).
func NewPlanningServer(opt ServiceOptions) *PlanningServer { return service.NewServer(opt) }

// Serve runs the elpcd planning service on addr until the listener fails.
func Serve(addr string, opt ServiceOptions) error { return service.ListenAndServe(addr, opt) }

// CanonicalProblemHash returns the deterministic hex SHA-256 of the
// problem's canonical serialization (network, pipeline, endpoints, cost
// options) — the key the solution cache uses.
func CanonicalProblemHash(p *Problem) (string, error) { return service.Hash(p) }

// Fleet manager (multi-tenant placement), embeddable pieces.

type (
	// Fleet is the stateful multi-tenant placement manager: it admits many
	// pipelines onto one shared network, solving each against the residual
	// capacity left by earlier tenants, and supports release and live
	// rebalancing. Safe for concurrent use.
	Fleet = fleet.Fleet
	// FleetRequest asks a Fleet to place one pipeline.
	FleetRequest = fleet.Request
	// FleetSLO states a deployment's admission constraints.
	FleetSLO = fleet.SLO
	// Deployment is one admitted pipeline with its mapping and reserved
	// capacity.
	Deployment = fleet.Deployment
	// FleetStats snapshots fleet counters and utilization gauges.
	FleetStats = fleet.Stats
	// RebalanceOptions tunes a Fleet.Rebalance pass (move cap, migration-
	// cost guard).
	RebalanceOptions = fleet.RebalanceOptions
	// RebalanceReport summarizes one rebalance pass.
	RebalanceReport = fleet.Report
	// ResidualNetwork is the shared capacity view behind a Fleet: per-node
	// and per-link outstanding load over a base Network, materializable as
	// a scaled Network snapshot.
	ResidualNetwork = model.ResidualNetwork
	// Reservation is the fractional capacity a deployment holds.
	Reservation = model.Reservation
	// ArrivalEvent is one event of a generated multi-tenant workload.
	ArrivalEvent = gen.ArrivalEvent
	// ArrivalSpec shapes a generated multi-tenant workload.
	ArrivalSpec = gen.ArrivalSpec
	// SLOClass is a deployment's admission class (guaranteed, standard, or
	// best-effort), ordering batch placement and preemption eligibility.
	SLOClass = fleet.Class
	// BatchOutcome is one request's result from Fleet.DeployBatch: the
	// admitted deployment or the per-request admission error, tagged with the
	// request's index in the submitted batch.
	BatchOutcome = fleet.BatchOutcome
	// ParkedDeployment is a best-effort deployment preempted by a guaranteed
	// admission, drained via TakePreempted for requeueing.
	ParkedDeployment = fleet.ParkedDeployment
)

// SLO classes, in descending admission priority.
const (
	// SLOGuaranteed deployments may preempt best-effort tenants when plain
	// admission fails.
	SLOGuaranteed = fleet.ClassGuaranteed
	// SLOStandard is the default class (also selected by an empty Class).
	SLOStandard = fleet.ClassStandard
	// SLOBestEffort deployments are preemptible and shed first under
	// admission-queue pressure.
	SLOBestEffort = fleet.ClassBestEffort
)

// Workload event kinds.
const (
	// Arrive asks the fleet to deploy the session's pipeline.
	Arrive = gen.Arrive
	// Depart releases the session's deployment.
	Depart = gen.Depart
)

// ErrFleetRejected is returned (wrapped) when fleet admission control
// declines a deployment.
var ErrFleetRejected = fleet.ErrRejected

// NewFleet builds an empty fleet over the shared base network.
func NewFleet(net *Network) (*Fleet, error) { return fleet.New(net) }

// Sharded fleet (region-partitioned placement), embeddable pieces.

type (
	// FleetManager is the placement-management surface shared by Fleet and
	// ShardedFleet (deploy/release/list/stats/rebalance/churn/repair).
	FleetManager = fleet.Manager
	// ShardedFleet partitions the shared network into regions, one
	// independently locked fleet each: same-region deployments never
	// contend, cross-region ones two-phase-reserve boundary links through a
	// coordinator. One shard is behaviorally identical to a plain Fleet.
	ShardedFleet = fleet.ShardedFleet
	// ShardStat is one region's gauge block in ShardedStats.
	ShardStat = fleet.ShardStat
	// ShardedStats is the per-region and coordinator gauge breakdown served
	// by elpcd's /v1/stats as fleet_shards.
	ShardedStats = fleet.ShardedStats
	// NetworkPartition is a K-way region partition of a network's nodes and
	// links, with the explicit cross-region boundary-link set.
	NetworkPartition = model.Partition
	// RegionView is the index translation between a network and one
	// region's sub-network.
	RegionView = model.RegionView
	// ClusterSpec shapes a generated clustered topology (K dense clusters
	// joined by sparse inter-cluster links).
	ClusterSpec = gen.ClusterSpec
)

// NewShardedFleet partitions net into the given number of regions and
// builds a sharded fleet over them (see fleet.NewSharded).
func NewShardedFleet(net *Network, shards int) (*ShardedFleet, error) {
	return fleet.NewSharded(net, shards)
}

// NewShardedFleetWithPartition builds a sharded fleet over a caller-supplied
// partition (e.g. ClusterSpec.ClusterPartition for generated topologies).
func NewShardedFleetWithPartition(net *Network, part *NetworkPartition) (*ShardedFleet, error) {
	return fleet.NewShardedWithPartition(net, part)
}

// PartitionNetwork splits net into k regions with the deterministic
// balanced graph partitioner and derives link ownership and the boundary
// set.
func PartitionNetwork(net *Network, k int) (*NetworkPartition, error) {
	return model.PartitionNetwork(net, k)
}

// DefaultClusterSpec returns the large clustered topology (~n500/l5000) the
// scale benchmarks run on.
func DefaultClusterSpec() ClusterSpec { return gen.DefaultClusterSpec() }

// GenerateClusteredNetwork draws a strongly connected clustered network:
// K dense random clusters joined by a tunable number of inter-cluster
// links.
func GenerateClusteredNetwork(spec ClusterSpec, r Ranges, rng *rand.Rand) (*Network, error) {
	return gen.ClusteredNetwork(spec, r, rng)
}

// NewResidualNetwork builds an unloaded residual capacity view of base.
func NewResidualNetwork(base *Network) *ResidualNetwork { return model.NewResidualNetwork(base) }

// MappingReservation computes the fractional capacity a mapping consumes on
// every node and link of net when streaming at rateFPS frames per second.
func MappingReservation(net *Network, pl *Pipeline, m *Mapping, rateFPS float64) (Reservation, error) {
	return model.MappingReservation(net, pl, m, rateFPS)
}

// DefaultArrivalSpec returns the calibrated multi-tenant workload shape.
func DefaultArrivalSpec() ArrivalSpec { return gen.DefaultArrivalSpec() }

// GenerateArrivals draws a deterministic multi-tenant arrival/departure
// schedule over net (deploy on Arrive, release on Depart).
func GenerateArrivals(spec ArrivalSpec, net *Network, r Ranges, rng *rand.Rand) ([]ArrivalEvent, error) {
	return gen.Arrivals(spec, net, r, rng)
}

// Churn (dynamic-network) subsystem, embeddable pieces.

type (
	// ChurnEvent is one network mutation: node failure/recovery, link
	// degradation/restoration, or capacity drift, applied transactionally
	// to a ResidualNetwork or a Fleet.
	ChurnEvent = model.ChurnEvent
	// ChurnKind names a churn event kind.
	ChurnKind = model.ChurnKind
	// Reconciler applies churn events to a Fleet and repairs incrementally:
	// only deployments touching mutated elements are re-solved; what no
	// longer fits is parked and re-queued when capacity returns.
	Reconciler = churn.Reconciler
	// ReconcilerOptions tunes a Reconciler (repair parallelism, requeue
	// pacing).
	ReconcilerOptions = churn.Options
	// ChurnRecord summarizes one applied event batch (affected, migrated,
	// parked, requeued counts and repair latency).
	ChurnRecord = churn.Record
	// ChurnStats aggregates a Reconciler's lifetime counters.
	ChurnStats = churn.Stats
	// ChurnSpec shapes a generated churn trace.
	ChurnSpec = gen.ChurnSpec
	// TimedChurnEvent is one timed event of a generated churn trace.
	TimedChurnEvent = gen.ChurnEvent
	// RepairReport summarizes one incremental Fleet.Repair pass.
	RepairReport = fleet.RepairReport
	// RepairOptions tunes a Fleet.Repair pass.
	RepairOptions = fleet.RepairOptions
)

// Churn event kinds.
const (
	// NodeDown fails a node (capacity factor 0).
	NodeDown = model.NodeDown
	// NodeUp restores a failed node to nominal capacity.
	NodeUp = model.NodeUp
	// LinkDegrade reduces a link to a fraction of nominal bandwidth.
	LinkDegrade = model.LinkDegrade
	// LinkRestore returns a link to nominal bandwidth.
	LinkRestore = model.LinkRestore
	// CapacityDrift multiplies a node's or link's capacity factor.
	CapacityDrift = model.CapacityDrift
)

// Churn error sentinels (wrapped by returned errors).
var (
	// ErrChurnUnknownTarget marks events naming nonexistent nodes/links.
	ErrChurnUnknownTarget = model.ErrUnknownTarget
	// ErrChurnConflict marks events contradicting current capacity state
	// (double-down, up-on-up, drift on a down node).
	ErrChurnConflict = model.ErrChurnConflict
)

// NewReconciler builds a churn reconciler over the fleet.
func NewReconciler(f *Fleet, opt ReconcilerOptions) *Reconciler { return churn.New(f, opt) }

// GenerateChurn draws a deterministic, state-consistent timed churn trace
// over net; replaying it in order always applies cleanly.
func GenerateChurn(spec ChurnSpec, net *Network, rng *rand.Rand) ([]TimedChurnEvent, error) {
	return gen.Churn(spec, net, rng)
}

// DefaultChurnSpec returns the calibrated churn trace shape.
func DefaultChurnSpec() ChurnSpec { return gen.DefaultChurnSpec() }
