// Package elpc is a Go reproduction of "Optimizing Network Performance of
// Computing Pipelines in Distributed Environments" (Wu, Gu, Zhu, Rao —
// IEEE IPDPS 2008): the Efficient Linear Pipeline Configuration (ELPC)
// algorithms that map a linear computing pipeline onto an arbitrary
// heterogeneous network to minimize end-to-end delay (interactive
// applications, node reuse allowed — optimal dynamic program) or maximize
// frame rate (streaming applications, no node reuse — NP-complete, DP
// heuristic), together with the Streamline and Greedy comparison
// algorithms, a discrete-event simulator that validates the analytical cost
// models, a regression-based network measurement substrate, deterministic
// workload generators, and the full experiment harness regenerating every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	p, _ := elpc.BuildCase(elpc.SmallCase())        // 5 modules on 6 nodes
//	m, _ := elpc.MinDelayMapping(p)                 // optimal DP mapping
//	fmt.Println(m)                                  // [M0-M1]@v3 -> ...
//	fmt.Println(elpc.TotalDelay(p, m), "ms")        // Eq. 1 cost
//
//	s, _ := elpc.MaxFrameRateMapping(p)             // streaming mapping
//	fmt.Println(elpc.FrameRateOf(p, s), "fps")      // 1 / Eq. 2 bottleneck
//
// # Planning service
//
// The solvers are also available as a long-running concurrent service:
// NewSolver returns an embeddable Solver with a bounded worker pool and a
// sharded LRU solution cache keyed by a canonical problem hash (repeated or
// concurrently identical requests cost one DP solve), and cmd/elpcd — also
// reachable as `elpc serve` and via Serve/NewPlanningServer — exposes it
// over HTTP/JSON: POST /v1/mindelay, /v1/maxframerate, /v1/front,
// /v1/simulate, and /v1/batch, with GET /v1/stats for cache and pool
// counters.
//
//	solver := elpc.NewSolver(elpc.ServiceOptions{})
//	res, _ := solver.Solve(ctx, elpc.SolveRequest{Op: elpc.OpMinDelay, Problem: p})
//
// # Fleet — multi-tenant placement
//
// The paper's algorithms map one pipeline onto an uncontended network; the
// fleet manager makes the network stateful shared infrastructure. A Fleet
// tracks per-node and per-link residual capacity across many concurrent
// deployments and solves every new request against a scaled residual
// snapshot of the network (the solvers run unchanged), so multi-tenant
// placement is admission-controlled: Deploy rejects (ErrFleetRejected) when
// no mapping meets the request's SLO or capacity would be overcommitted,
// Release returns exactly the reserved capacity, and Rebalance re-solves
// laggards onto freed capacity behind a migration-cost guard. The same
// lifecycle is served over HTTP by elpcd under /v1/fleet/*.
//
//	fl, _ := elpc.NewFleet(net)
//	d, _  := fl.Deploy(elpc.FleetRequest{Pipeline: pl, Src: 0, Dst: 9,
//		Objective: elpc.MaxFrameRate, SLO: elpc.FleetSLO{MinRateFPS: 5}})
//	fl.Rebalance(elpc.RebalanceOptions{})
//	fl.Release(d.ID)
//
// # Sharded fleet — region-partitioned placement
//
// At scale one fleet lock throttles every operation, so the fleet shards:
// PartitionNetwork splits the network into K connected regions with an
// explicit cross-region boundary-link set, and NewShardedFleet runs one
// independently locked fleet per region. Same-region deployments take
// only their shard's lock and solve on the region's sub-network (K×
// smaller); cross-region deployments go through a coordinator that
// two-phase-reserves boundary links; churn events route to the owning
// shard so repair stays regional. A one-shard ShardedFleet is
// behaviorally identical to a plain Fleet. Both satisfy FleetManager, and
// elpcd installs either via the shards option of POST /v1/fleet/network.
//
//	sf, _ := elpc.NewShardedFleet(net, 8)
//	d, _ = sf.Deploy(elpc.FleetRequest{Pipeline: pl, Src: 0, Dst: 9})
//	fmt.Println(sf.ShardStats().Coordinator.BoundaryLinks)
//
// # Parallel engine
//
// Decomposable solves — a Pareto sweep's budget points, a batch's problems,
// a rebalance pass's re-solves — fan out across a shared work-stealing pool
// bounded by GOMAXPROCS (NewEnginePool). The submitting goroutine always
// participates, so nested fan-outs cannot deadlock; results are placed by
// index, so parallel execution is byte-identical to sequential:
//
//	pool := elpc.NewEnginePool(0) // GOMAXPROCS
//	defer pool.Close()
//	front, _ := elpc.RateDelayFrontParallel(pool, p, 16)
//
// The solver hot paths are allocation-lean: DP tables, beam lists, and
// consumed-node bitsets live in a reusable SolveContext (slab + arena), so
// steady-state solving does not churn the garbage collector.
//
// # Churn — dynamic networks and self-healing placement
//
// Production networks are not static: nodes fail and recover, links
// degrade, capacity drifts. ChurnEvent models those mutations (NodeDown,
// NodeUp, LinkDegrade, LinkRestore, CapacityDrift), applied
// transactionally to a ResidualNetwork's capacity factors, and a
// Reconciler (NewReconciler) keeps a Fleet consistent with them through
// incremental repair: each event batch re-solves only the deployments
// whose placements touch the mutated elements, migrates what still fits,
// parks what does not, and re-queues parked deployments when capacity
// returns. GenerateChurn draws deterministic, state-consistent event
// traces for experiments; elpcd serves the same cycle via POST /v1/events
// and GET /v1/events/log.
//
//	rec := elpc.NewReconciler(fl, elpc.ReconcilerOptions{})
//	record, _ := rec.Apply([]elpc.ChurnEvent{{Kind: elpc.NodeDown, Node: 3}})
//	fmt.Println(record.Affected, record.Migrated, record.Parked)
//
// See the examples directory for runnable scenarios (remote visualization,
// video surveillance streaming, measurement-driven adaptive remapping,
// multi-tenant fleet placement, parallel-scaling demo) and cmd/pipebench
// for the experiment suite with its -compare benchmark-baseline gate.
package elpc
