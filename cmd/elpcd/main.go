// Command elpcd is the ELPC planning daemon: an HTTP/JSON service exposing
// the min-delay DP, the max-frame-rate heuristic, Pareto sweeps, batch
// planning, the discrete-event simulator, and the multi-tenant fleet
// manager (/v1/fleet/*: admission-controlled deploy, release, rebalance),
// backed by a canonical-hash solution cache and a bounded worker pool.
//
//	elpcd -addr :8080
//	curl -s localhost:8080/v1/mindelay -d @instance.json
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// Observability: GET /metrics serves the process metrics registry in the
// Prometheus text exposition format, GET /v1/journal tails the structured
// event journal (-journal sets its capacity) and GET
// /v1/fleet/{id}/timeline replays one deployment's causal history from it,
// GET /v1/health reports the SLO health verdict (green/degraded/red with
// machine-readable reasons), GET /v1/debug/dump — or SIGQUIT — emits a
// one-shot diagnostic snapshot, GET /v1/traces dumps the slowest retained
// request traces (-traces sets the ring size), -slow-ms logs requests over
// a latency threshold via log/slog, and -pprof mounts net/http/pprof under
// /debug/pprof/. See docs/OBSERVABILITY.md.
//
// Durability: -data <dir> makes the control plane durable — every mutating
// fleet/churn transition is appended to a checksummed write-ahead log before
// it is acknowledged, compacted snapshots are written every -snapshot-every
// records (-snapshot-retain bounds disk), and on boot elpcd recovers the
// exact pre-crash fleet state from the newest valid snapshot plus the log
// suffix. -wal-sync trades admission latency for power-loss durability. See
// docs/OPERATIONS.md.
//
// elpcd accepts the same flags as `elpc serve` (it is the same code path)
// and shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests
// for up to -drain (default 10s).
package main

import (
	"fmt"
	"os"

	"elpc/internal/cli"
)

func main() {
	env := cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}
	if err := cli.Main(env, append([]string{"serve"}, os.Args[1:]...)); err != nil {
		fmt.Fprintln(os.Stderr, "elpcd:", err)
		os.Exit(1)
	}
}
