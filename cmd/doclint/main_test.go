package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintDirFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bad struct{}

// Good is fine.
type Good struct{}

func (Good) NoDoc() {}

// Grouped constants are covered by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var Loose = 3

func internalHelper() {}

type hidden struct{}

func (hidden) Exported() {} // method on unexported type: not reachable API
`)
	// Undocumented exports inside test files are ignored.
	writeFile(t, dir, "a_test.go", `package a

func TestExportedHelper() {}
`)
	missing, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"function Undocumented", "type Bad", "method NoDoc", "variable Loose"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing finding %q in:\n%s", want, joined)
		}
	}
	for _, fine := range []string{"Documented", "Good", "GroupedA", "internalHelper", "Exported"} {
		for _, m := range missing {
			if strings.Contains(m, fine+" ") || strings.HasSuffix(m, fine+" has no doc comment") {
				t.Fatalf("false positive on %s: %s", fine, m)
			}
		}
	}
	if len(missing) != 4 {
		t.Fatalf("got %d findings, want 4:\n%s", len(missing), joined)
	}
}

func TestLintDirCleanPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "b.go", `// Package b is documented.
package b

// Exported is documented.
func Exported() {}
`)
	missing, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("clean package flagged: %v", missing)
	}
}
