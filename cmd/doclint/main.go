// Command doclint fails when exported package-level identifiers lack doc
// comments. It is the docs CI job's godoc gate: the packages listed on the
// command line (directories) are parsed and every exported top-level type,
// function, method, constant, and variable must carry a doc comment —
// either its own or its declaration group's.
//
//	doclint ./internal/fleet ./internal/model .
//
// Test files are ignored. Struct fields and interface methods are not
// checked (package review keeps those honest); the gate exists to stop new
// exported API from landing undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [package-dir ...]")
		os.Exit(2)
	}
	failures := 0
	for _, dir := range os.Args[1:] {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Printf("%s\n", m)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) missing doc comments\n", failures)
		os.Exit(1)
	}
}

// lintDir parses the non-test files of one package directory and returns a
// "file:line: name" entry per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not reachable API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl checks a const/var/type declaration: a documented group
// covers its members; otherwise each exported spec needs its own comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	kind := map[token.Token]string{token.CONST: "constant", token.VAR: "variable", token.TYPE: "type"}[d.Tok]
	if kind == "" {
		return // import declarations
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}
