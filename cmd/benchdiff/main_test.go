package main

import (
	"os"
	"path/filepath"
	"testing"

	"elpc/internal/benchfmt"
)

func writeDoc(t *testing.T, path string, suiteMs float64, rate float64) {
	t.Helper()
	doc := &benchfmt.Doc{
		Schema:  benchfmt.Schema,
		SuiteMs: suiteMs,
		Results: []benchfmt.Case{{
			Case: 1,
			Rate: map[string]benchfmt.Outcome{
				"ELPC": {Feasible: true, Value: &rate},
			},
		}},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := doc.Write(f); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	worse := filepath.Join(dir, "worse.json")
	writeDoc(t, base, 1000, 50)
	writeDoc(t, same, 1000, 50)
	writeDoc(t, worse, 1000, 30)

	ok, err := diff(base, same, benchfmt.CompareOptions{})
	if err != nil || !ok {
		t.Fatalf("identical docs: ok=%v err=%v", ok, err)
	}
	ok, err = diff(base, worse, benchfmt.CompareOptions{})
	if err != nil || ok {
		t.Fatalf("40%% rate regression: ok=%v err=%v", ok, err)
	}
	if _, err := diff(filepath.Join(dir, "missing.json"), same, benchfmt.CompareOptions{}); err == nil {
		t.Fatal("missing baseline should error")
	}
}
