// Command benchdiff compares two pipebench -json documents and fails when
// tier-1 scenario metrics regress beyond the thresholds — the standalone
// form of the CI benchmark-baseline gate (pipebench -compare runs the suite
// and the diff in one step):
//
//	pipebench -fig 2 -json fresh.json
//	benchdiff BENCH_BASELINE.json fresh.json
//
// Exit status: 0 when the gate passes, 1 on regression, 2 on usage or I/O
// errors. Quality metrics (per-case delays and rates, summary ratios, fleet
// admission statistics) gate at -threshold (default 20%); wall-clock
// metrics gate at -runtime-threshold (default 50%, machine noise) unless
// -ignore-runtime is set.
package main

import (
	"flag"
	"fmt"
	"os"

	"elpc/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0, "relative quality-metric regression that fails the gate (0 = default 0.20)")
	runtimeThreshold := flag.Float64("runtime-threshold", 0, "relative runtime-metric regression that fails the gate (0 = default 0.50)")
	ignoreRuntime := flag.Bool("ignore-runtime", false, "exclude wall-clock metrics from gating (still reported)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] BASELINE.json FRESH.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	ok, err := diff(flag.Arg(0), flag.Arg(1), benchfmt.CompareOptions{
		QualityThreshold: *threshold,
		RuntimeThreshold: *runtimeThreshold,
		IgnoreRuntime:    *ignoreRuntime,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// diff loads both documents, prints the comparison report to stdout, and
// reports whether the gate passed.
func diff(baselinePath, freshPath string, opt benchfmt.CompareOptions) (bool, error) {
	baseline, err := benchfmt.Load(baselinePath)
	if err != nil {
		return false, err
	}
	fresh, err := benchfmt.Load(freshPath)
	if err != nil {
		return false, err
	}
	rep := benchfmt.Compare(baseline, fresh, opt)
	fmt.Print(rep.Text())
	return rep.OK(), nil
}
