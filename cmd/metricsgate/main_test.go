package main

import (
	"strings"
	"testing"
)

// TestGateEndToEnd boots the service, drives traffic, and validates the
// scrape — the same path CI runs.
func TestGateEndToEnd(t *testing.T) {
	if err := run(20, false); err != nil {
		t.Fatal(err)
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP elpc_up whether the process is up
# TYPE elpc_up gauge
elpc_up 1
# TYPE elpc_requests_total counter
elpc_requests_total{route="/v1/stats",code="2xx"} 42
# TYPE elpc_latency_seconds histogram
elpc_latency_seconds_bucket{le="0.1"} 3
elpc_latency_seconds_bucket{le="+Inf"} 5
elpc_latency_seconds_sum 0.7
elpc_latency_seconds_count 5
`
	rep, err := validateExposition(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series != 6 || rep.Families != 3 {
		t.Errorf("report = %+v, want 6 series / 3 families", rep)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"untyped sample", "elpc_up 1\n", "no preceding # TYPE"},
		{"bad type kind", "# TYPE elpc_up lamp\n", "malformed TYPE"},
		{"bad value", "# TYPE elpc_up gauge\nelpc_up one\n", "unparseable sample value"},
		{"duplicate series", "# TYPE elpc_up gauge\nelpc_up 1\nelpc_up 2\n", "duplicate series"},
		{"unquoted label", `# TYPE a counter` + "\n" + `a{b=c} 1` + "\n", "not quoted"},
		{"decreasing buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n", "decrease"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 2\nh_count 5\n", "+Inf"},
		{"suffix on counter", "# TYPE c counter\nc_bucket{le=\"1\"} 5\n", "non-histogram"},
		{"stray comment", "# EXPORT things\n", "unknown comment"},
		{"invalid name", "# TYPE 9metric gauge\n", "malformed TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := validateExposition(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
