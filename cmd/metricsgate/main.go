// Command metricsgate is the CI observability gate: it boots the elpcd
// service on a loopback listener, drives representative traffic through
// every instrumented layer (cold solve, cache hit, Pareto front, fleet
// deploy, deploy-batch, churn event, health probe, deployment timeline,
// debug dump, an unmatched route, and a forced best-effort shed on a
// brownout-drill instance), scrapes GET /metrics, and validates the
// response as Prometheus text exposition format line by line. It exits
// non-zero when any line is malformed, when fewer than -min-series distinct
// time series are exposed, when a required metric family (elpc_slo_*,
// elpc_journal_*, elpc_admission_*) is missing, when the shed response
// lacks the 429/Retry-After/envelope contract, or when the debug dump does
// not round-trip as JSON — so a refactor that silently drops
// instrumentation fails the build, not the first production scrape.
//
//	metricsgate              # gate with the default 20-series floor
//	metricsgate -min-series 30 -v
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/service"
)

func main() {
	minSeries := flag.Int("min-series", 20, "fail when /metrics exposes fewer distinct time series")
	verbose := flag.Bool("v", false, "print the scraped exposition to stderr")
	flag.Parse()
	if err := run(*minSeries, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "metricsgate:", err)
		os.Exit(1)
	}
}

func run(minSeries int, verbose bool) error {
	// The shed drill runs first, on its own brownout instance (negative
	// intake bound sheds all best-effort traffic deterministically): the
	// counters it increments are process-global, so they appear in the main
	// scrape, while the main server — built after — owns the scrape-time
	// gauges (registering replaces).
	if err := driveShed(); err != nil {
		return fmt.Errorf("shed drill: %w", err)
	}

	// Real listener, real scrape: the gate exercises the same handler chain
	// (telemetry middleware included) a production scraper would hit.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := service.NewServer(service.Options{})
	defer srv.Close()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	if err := driveTraffic(base); err != nil {
		return fmt.Errorf("driving traffic: %w", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		return fmt.Errorf("GET /metrics: content-type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		return err
	}
	if verbose {
		fmt.Fprint(os.Stderr, body.String())
	}

	rep, err := validateExposition(bytes.NewReader(body.Bytes()))
	if err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	if rep.Series < minSeries {
		return fmt.Errorf("only %d distinct series exposed, want >= %d", rep.Series, minSeries)
	}
	for _, family := range []string{
		"elpc_slo_evaluated", "elpc_slo_compliant", "elpc_slo_violating",
		"elpc_slo_burn_rate", "elpc_journal_depth", "elpc_journal_events_total",
		"elpc_admission_queued_total", "elpc_admission_shed_total",
		"elpc_admission_preempted_total", "elpc_admission_queue_depth",
		"elpc_wal_appends_total", "elpc_wal_fsyncs_total",
		"elpc_wal_replayed_events_total", "elpc_wal_truncated_tail_total",
	} {
		if !rep.Seen[family] {
			return fmt.Errorf("required metric family %q missing from exposition", family)
		}
	}
	fmt.Printf("metricsgate: OK — %d series across %d families\n", rep.Series, rep.Families)
	return nil
}

// driveTraffic sends one request per instrumented path class: a cold
// min-delay solve, the identical request again (cache hit), a budgeted
// max-frame-rate solve, a small Pareto front, a fleet install/deploy/churn
// cycle (SLO evaluation + journal events), the health, timeline, journal,
// stats, traces, and debug-dump reads, and one unmatched route (404
// status-class accounting).
func driveTraffic(base string) error {
	p, err := gen.Suite20()[0].Build()
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{
		"network": p.Net, "pipeline": p.Pipe, "src": p.Src, "dst": p.Dst,
	})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	posts := []string{"/v1/mindelay", "/v1/mindelay", "/v1/maxframerate", "/v1/front"}
	for _, path := range posts {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	depID, err := driveFleet(client, base, p)
	if err != nil {
		return fmt.Errorf("fleet cycle: %w", err)
	}
	if err := driveBatch(client, base, p); err != nil {
		return fmt.Errorf("deploy-batch cycle: %w", err)
	}

	gets := map[string]int{
		"/v1/stats":                        http.StatusOK,
		"/v1/traces":                       http.StatusOK,
		"/v1/health":                       http.StatusOK,
		"/v1/journal":                      http.StatusOK,
		"/v1/fleet/" + depID + "/timeline": http.StatusOK,
		"/v1/fleet/no-such-dep/timeline":   http.StatusNotFound,
		"/healthz":                         http.StatusOK,
		"/no/such":                         http.StatusNotFound,
	}
	for path, want := range gets {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	return checkDump(client, base, depID)
}

// postJSON posts v and decodes the response into out (when non-nil),
// requiring a 200.
func postJSON(client *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// driveFleet installs the problem's network as the fleet network, deploys
// one tenant, and applies one churn event so the SLO engine and journal see
// a full admit/churn/repair cycle. Returns the deployment ID.
func driveFleet(client *http.Client, base string, p *model.Problem) (string, error) {
	if err := postJSON(client, base+"/v1/fleet/network", map[string]any{"network": p.Net}, nil); err != nil {
		return "", err
	}
	var dep struct {
		ID string `json:"id"`
	}
	err := postJSON(client, base+"/v1/fleet/deploy", map[string]any{
		"tenant": "gate", "pipeline": p.Pipe, "src": p.Src, "dst": p.Dst,
	}, &dep)
	if err != nil {
		return "", err
	}
	if dep.ID == "" {
		return "", fmt.Errorf("deploy returned no ID")
	}
	// Drift a node the gate tenant may or may not use: either way the
	// reconciler applies the batch and the SLO engine re-evaluates.
	err = postJSON(client, base+"/v1/events", map[string]any{
		"events": []map[string]any{{"kind": "capacity_drift", "target": "node", "node": 0, "factor": 0.9}},
	}, nil)
	if err != nil {
		return "", err
	}
	return dep.ID, nil
}

// driveBatch posts a small mixed-class burst to /v1/fleet/deploy-batch and
// checks the per-item outcome array and tallies, so the batch admission
// path (and its elpc_admission_queued_total accounting) is exercised by the
// gate.
func driveBatch(client *http.Client, base string, p *model.Problem) error {
	req := func(tenant, class string) map[string]any {
		return map[string]any{
			"tenant": tenant, "pipeline": p.Pipe, "src": p.Src, "dst": p.Dst,
			"class": class,
		}
	}
	var out struct {
		Results []struct {
			Index      int             `json:"index"`
			Deployment json.RawMessage `json:"deployment"`
			Error      *struct {
				Code string `json:"code"`
			} `json:"error"`
		} `json:"results"`
		Admitted int `json:"admitted"`
	}
	err := postJSON(client, base+"/v1/fleet/deploy-batch", map[string]any{
		"requests": []map[string]any{
			req("gate-batch-g", "guaranteed"),
			req("gate-batch-s", ""),
			req("gate-batch-b", "best_effort"),
		},
	}, &out)
	if err != nil {
		return err
	}
	if len(out.Results) != 3 {
		return fmt.Errorf("deploy-batch returned %d results, want 3", len(out.Results))
	}
	if out.Admitted == 0 {
		return fmt.Errorf("deploy-batch admitted nothing")
	}
	for i, r := range out.Results {
		if r.Index != i {
			return fmt.Errorf("deploy-batch result %d has index %d", i, r.Index)
		}
		if r.Deployment == nil && r.Error == nil {
			return fmt.Errorf("deploy-batch result %d has neither deployment nor error", i)
		}
	}
	return nil
}

// driveShed boots a brownout-drill server (negative intake bound) and posts
// one best-effort deploy, asserting the full shed contract: 429, a
// Retry-After hint, and the structured error envelope with the retryable
// "shed" code.
func driveShed() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := service.NewServer(service.Options{IntakeBound: -1})
	defer srv.Close()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	body, err := json.Marshal(map[string]any{"tenant": "drill", "class": "best_effort"})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post("http://"+ln.Addr().String()+"/v1/fleet/deploy", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("best-effort deploy under brownout: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		return fmt.Errorf("shed response missing Retry-After header")
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("shed response is not the error envelope: %w", err)
	}
	if env.Error.Code != "shed" || env.Error.Message == "" || !env.Error.Retryable {
		return fmt.Errorf("shed envelope = %+v, want retryable code \"shed\" with a message", env.Error)
	}
	return nil
}

// checkDump fetches /v1/debug/dump and verifies the JSON round-trips with
// the sections an operator relies on populated.
func checkDump(client *http.Client, base, depID string) error {
	resp, err := client.Get(base + "/v1/debug/dump")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/debug/dump: status %d", resp.StatusCode)
	}
	var dump struct {
		Service string `json:"service"`
		Stats   struct {
			Journal struct {
				Depth   int    `json:"depth"`
				LastSeq uint64 `json:"last_seq"`
			} `json:"journal"`
		} `json:"stats"`
		SLO *struct {
			Evaluated int `json:"evaluated"`
		} `json:"slo"`
		Fleet []struct {
			ID string `json:"id"`
		} `json:"fleet"`
		Journal struct {
			Events []map[string]any `json:"events"`
		} `json:"journal"`
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return fmt.Errorf("debug dump does not round-trip as JSON: %w", err)
	}
	if dump.Service != "elpcd" {
		return fmt.Errorf("dump.service = %q, want elpcd", dump.Service)
	}
	if len(dump.Journal.Events) == 0 || dump.Stats.Journal.Depth == 0 {
		return fmt.Errorf("dump journal is empty after fleet traffic")
	}
	if dump.SLO == nil || dump.SLO.Evaluated == 0 {
		return fmt.Errorf("dump SLO evaluation is empty after fleet traffic")
	}
	found := false
	for _, d := range dump.Fleet {
		if d.ID == depID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("dump fleet listing is missing deployment %s", depID)
	}
	return nil
}
