// Command metricsgate is the CI observability gate: it boots the elpcd
// service on a loopback listener, drives representative traffic through
// every instrumented layer (cold solve, cache hit, Pareto front, an
// unmatched route), scrapes GET /metrics, and validates the response as
// Prometheus text exposition format line by line. It exits non-zero when
// any line is malformed or when fewer than -min-series distinct time
// series are exposed — so a refactor that silently drops instrumentation
// fails the build, not the first production scrape.
//
//	metricsgate              # gate with the default 20-series floor
//	metricsgate -min-series 30 -v
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"elpc/internal/gen"
	"elpc/internal/service"
)

func main() {
	minSeries := flag.Int("min-series", 20, "fail when /metrics exposes fewer distinct time series")
	verbose := flag.Bool("v", false, "print the scraped exposition to stderr")
	flag.Parse()
	if err := run(*minSeries, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "metricsgate:", err)
		os.Exit(1)
	}
}

func run(minSeries int, verbose bool) error {
	// Real listener, real scrape: the gate exercises the same handler chain
	// (telemetry middleware included) a production scraper would hit.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := service.NewServer(service.Options{})
	defer srv.Close()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	if err := driveTraffic(base); err != nil {
		return fmt.Errorf("driving traffic: %w", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		return fmt.Errorf("GET /metrics: content-type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		return err
	}
	if verbose {
		fmt.Fprint(os.Stderr, body.String())
	}

	rep, err := validateExposition(bytes.NewReader(body.Bytes()))
	if err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	if rep.Series < minSeries {
		return fmt.Errorf("only %d distinct series exposed, want >= %d", rep.Series, minSeries)
	}
	fmt.Printf("metricsgate: OK — %d series across %d families\n", rep.Series, rep.Families)
	return nil
}

// driveTraffic sends one request per instrumented path class: a cold
// min-delay solve, the identical request again (cache hit), a budgeted
// max-frame-rate solve, a small Pareto front, the stats and traces reads,
// and one unmatched route (404 status-class accounting).
func driveTraffic(base string) error {
	p, err := gen.Suite20()[0].Build()
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{
		"network": p.Net, "pipeline": p.Pipe, "src": p.Src, "dst": p.Dst,
	})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	posts := []string{"/v1/mindelay", "/v1/mindelay", "/v1/maxframerate", "/v1/front"}
	for _, path := range posts {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
	}
	gets := map[string]int{
		"/v1/stats":  http.StatusOK,
		"/v1/traces": http.StatusOK,
		"/healthz":   http.StatusOK,
		"/no/such":   http.StatusNotFound,
	}
	for path, want := range gets {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	return nil
}
