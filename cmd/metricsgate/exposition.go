package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// expositionReport summarizes a validated scrape.
type expositionReport struct {
	// Series counts distinct time series (unique name + label set, bucket
	// series included), Families the # TYPE'd metric families.
	Series   int
	Families int
	// Seen records every TYPE'd family name, so the gate can require
	// specific families beyond the aggregate floor.
	Seen map[string]bool
}

// validKinds are the metric types the exposition may declare. The registry
// only emits these three; summary is accepted for forward compatibility
// with hand-authored fixtures.
var validKinds = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
}

// validateExposition parses a Prometheus text-format (0.0.4) payload line
// by line and returns an error on the first malformed line: unknown TYPE,
// sample without a preceding TYPE for its family, unparseable value,
// duplicate series, or a histogram whose buckets are non-cumulative or
// missing the +Inf bound.
func validateExposition(r io.Reader) (expositionReport, error) {
	rep := expositionReport{Seen: map[string]bool{}}
	types := map[string]string{} // family -> kind
	seen := map[string]bool{}    // full series id
	// Per histogram series (labels minus le): last cumulative count and
	// whether the +Inf bucket appeared.
	lastBucket := map[string]float64{}
	sawInf := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) (expositionReport, error) {
			return rep, fmt.Errorf("line %d: %s (%q)", lineNo, fmt.Sprintf(format, args...), line)
		}

		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fail("HELP for invalid metric name %q", name)
			}
			continue
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) || !validKinds[kind] {
				return fail("malformed TYPE line")
			}
			if _, dup := types[name]; dup {
				return fail("duplicate TYPE for %q", name)
			}
			types[name] = kind
			rep.Seen[name] = true
			rep.Families++
			continue
		case strings.HasPrefix(line, "#"):
			return fail("unknown comment form (only # HELP and # TYPE allowed)")
		}

		// Sample line: name[{labels}] value
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return fail("%v", err)
		}
		val, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return fail("unparseable sample value %q", rest)
		}
		family, suffix := sampleFamily(name, types)
		if family == "" {
			return fail("sample %q has no preceding # TYPE", name)
		}
		if suffix != "" && types[family] != "histogram" {
			return fail("suffix %q on non-histogram family %q", suffix, family)
		}

		series := name + labels
		if seen[series] {
			return fail("duplicate series %q", series)
		}
		seen[series] = true
		rep.Series++

		if suffix == "_bucket" {
			le, stripped, err := extractLE(labels)
			if err != nil {
				return fail("%v", err)
			}
			key := family + stripped
			if val+1e-9 < lastBucket[key] {
				return fail("bucket counts for %q decrease (le=%s)", key, le)
			}
			lastBucket[key] = val
			if le == "+Inf" {
				sawInf[key] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for key := range lastBucket {
		if !sawInf[key] {
			return rep, fmt.Errorf("histogram %q is missing its +Inf bucket", key)
		}
	}
	return rep, nil
}

// sampleFamily maps a sample name to its declared family: either the name
// itself, or (for histograms) the name with the _bucket/_sum/_count suffix
// stripped. Returns "" when no TYPE declares it.
func sampleFamily(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, s); ok {
			if _, typed := types[base]; typed {
				return base, s
			}
		}
	}
	return "", ""
}

// splitSample separates a sample line into name, brace-enclosed label block
// ("" when unlabeled), and the value text.
func splitSample(line string) (name, labels, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", "", fmt.Errorf("sample has no value")
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := closingBrace(rest)
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated label block")
		}
		labels = rest[:end+1]
		if err := validLabels(labels); err != nil {
			return "", "", "", err
		}
		rest = rest[end+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", "", "", fmt.Errorf("sample has no value")
	}
	return name, labels, value, nil
}

// closingBrace finds the index of the '}' terminating the label block that
// starts at s[0], honoring quoted (and backslash-escaped) label values.
func closingBrace(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// validLabels checks every `key="value"` pair in a brace-enclosed block.
func validLabels(block string) error {
	body := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if body == "" {
		return fmt.Errorf("empty label block")
	}
	for _, pair := range splitPairs(body) {
		key, val, ok := strings.Cut(pair, "=")
		if !ok || !validMetricName(key) {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label value not quoted in %q", pair)
		}
	}
	return nil
}

// splitPairs splits a label body on commas outside quotes.
func splitPairs(body string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// extractLE pulls the le label out of a bucket's label block and returns
// its value plus the block with le removed (the per-histogram series key).
func extractLE(block string) (le, stripped string, err error) {
	body := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var kept []string
	for _, pair := range splitPairs(body) {
		if v, ok := strings.CutPrefix(pair, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample without le label")
	}
	sort.Strings(kept)
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
