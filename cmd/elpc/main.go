// Command elpc generates, maps, simulates, and probes pipeline-mapping
// instances. See 'elpc help' for subcommands.
package main

import (
	"fmt"
	"os"

	"elpc/internal/cli"
)

func main() {
	env := cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}
	if err := cli.Main(env, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elpc:", err)
		os.Exit(1)
	}
}
