package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"elpc/internal/cli"
)

// runCLI drives cli.Main exactly as main does, capturing both streams.
func runCLI(args ...string) (stdout, stderr string, err error) {
	var out, errBuf bytes.Buffer
	err = cli.Main(cli.Env{Stdout: &out, Stderr: &errBuf}, args)
	return out.String(), errBuf.String(), err
}

func TestServeFlagParsing(t *testing.T) {
	// -validate resolves the configuration and returns without binding.
	stdout, _, err := runCLI("serve", "-validate", "-workers", "3", "-cache", "128", "-shards", "4", "-addr", "127.0.0.1:9999")
	if err != nil {
		t.Fatalf("serve -validate: %v", err)
	}
	var cfg struct {
		Addr    string `json:"addr"`
		Options struct {
			Workers       int `json:"Workers"`
			CacheCapacity int `json:"CacheCapacity"`
			CacheShards   int `json:"CacheShards"`
			FrontPoints   int `json:"FrontPoints"`
		} `json:"options"`
	}
	if err := json.Unmarshal([]byte(stdout), &cfg); err != nil {
		t.Fatalf("serve -validate output is not JSON: %v\n%s", err, stdout)
	}
	if cfg.Addr != "127.0.0.1:9999" || cfg.Options.Workers != 3 || cfg.Options.CacheCapacity != 128 || cfg.Options.CacheShards != 4 {
		t.Errorf("resolved config = %+v", cfg)
	}
	if cfg.Options.FrontPoints == 0 {
		t.Error("defaults not filled in resolved config")
	}
}

func TestServeFlagErrors(t *testing.T) {
	if _, _, err := runCLI("serve", "-validate", "-addr", ""); err == nil {
		t.Error("empty -addr accepted")
	}
	if _, _, err := runCLI("serve", "-no-such-flag"); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestGenSubcommandSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "inst.json")
	if _, _, err := runCLI("gen", "-modules", "4", "-nodes", "6", "-links", "18", "-seed", "7", "-o", out); err != nil {
		t.Fatalf("gen: %v", err)
	}
	stdout, _, err := runCLI("show", "-i", out)
	if err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(stdout, "pipeline: 4 modules") {
		t.Errorf("show output unexpected:\n%s", stdout)
	}
}

func TestUsageMentionsServe(t *testing.T) {
	stdout, _, err := runCLI("help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "serve") {
		t.Error("usage does not mention the serve subcommand")
	}
}
