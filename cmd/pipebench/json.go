package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"elpc/internal/benchfmt"
	"elpc/internal/harness"
	"elpc/internal/telemetry"
)

// buildBenchDoc renders the suite results in the machine-readable
// elpc-pipebench-v1 schema (internal/benchfmt) shared with benchdiff and
// the CI regression gate. With -telemetry the doc also carries the run's
// process-metrics histogram summaries (the suite drives the instrumented
// core solvers directly, so the registry holds per-operation solve
// latencies by the time the suite finishes).
func buildBenchDoc(cfg runConfig, results []harness.CaseResult, fleet *harness.FleetScenarioResult, churn *harness.ChurnScenarioResult, scale *harness.ScaleScenarioResult, burst *harness.BurstScenarioResult, warm *harness.WarmScenarioResult, elapsed time.Duration) *benchfmt.Doc {
	doc := benchfmt.Build(cfg.fig, results, fleet, churn, scale, burst, warm, elapsed)
	if cfg.telemetry {
		doc.Telemetry = telemetry.Default().Summaries()
	}
	return doc
}

// writeBenchJSON writes the doc to path ("-" = stdout).
func writeBenchJSON(path string, doc *benchfmt.Doc) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return doc.Write(w)
}

// compareOpts maps the parsed flags onto benchfmt's gate options.
func compareOpts(cfg runConfig) benchfmt.CompareOptions {
	return benchfmt.CompareOptions{
		QualityThreshold: cfg.threshold,
		RuntimeThreshold: cfg.runtimeThreshold,
		IgnoreRuntime:    cfg.ignoreRuntime,
	}
}

// compareBaseline diffs the fresh doc against the committed baseline and
// returns an error (failing the process) when the gate trips. The report
// always prints, so green runs still show the trend.
func compareBaseline(baselinePath string, fresh *benchfmt.Doc, opt benchfmt.CompareOptions, out io.Writer) error {
	baseline, err := benchfmt.Load(baselinePath)
	if err != nil {
		return fmt.Errorf("loading baseline: %w", err)
	}
	rep := benchfmt.Compare(baseline, fresh, opt)
	fmt.Fprint(out, rep.Text())
	if !rep.OK() {
		return fmt.Errorf("benchmark gate failed: %d metric(s) regressed against %s", rep.Regressions, baselinePath)
	}
	return nil
}
