package main

import (
	"encoding/json"
	"io"
	"os"
	"time"

	"elpc/internal/harness"
)

// benchOutcomeJSON is one algorithm's result on one case. Value is omitted
// (not NaN, which JSON cannot encode) when the outcome is infeasible.
type benchOutcomeJSON struct {
	Feasible  bool     `json:"feasible"`
	Value     *float64 `json:"value,omitempty"`
	RuntimeMs float64  `json:"runtime_ms"`
	Err       string   `json:"error,omitempty"`
}

// benchCaseJSON is one suite case: dimensions plus per-algorithm outcomes
// under both objectives (delay values in ms, rate values in fps).
type benchCaseJSON struct {
	Case    int                         `json:"case"`
	Modules int                         `json:"modules"`
	Nodes   int                         `json:"nodes"`
	Links   int                         `json:"links"`
	Seed    uint64                      `json:"seed"`
	Delay   map[string]benchOutcomeJSON `json:"min_delay_ms"`
	Rate    map[string]benchOutcomeJSON `json:"max_frame_rate_fps"`
}

// benchJSON is the machine-readable experiment summary emitted by -json, so
// successive PRs can track the performance trajectory (BENCH_*.json).
type benchJSON struct {
	Schema       string             `json:"schema"`
	Figure       string             `json:"figure"`
	Cases        int                `json:"cases"`
	Algorithms   []string           `json:"algorithms"`
	SuiteMs      float64            `json:"suite_ms"`
	Results      []benchCaseJSON    `json:"results"`
	DelayWins    map[string]int     `json:"delay_wins"`
	RateWins     map[string]int     `json:"rate_wins"`
	MeanDelayVsE map[string]float64 `json:"mean_delay_ratio_vs_elpc"`
	MeanRateVsE  map[string]float64 `json:"mean_rate_ratio_vs_elpc"`
	Feasible     map[string]int     `json:"feasible_outcomes"`
	// Fleet is the multi-tenant placement scenario (admission rate and
	// mean deployed frame rate over a deterministic arrival schedule on a
	// Suite20 network).
	Fleet *harness.FleetScenarioResult `json:"fleet,omitempty"`
}

func toOutcomeJSON(o harness.Outcome) benchOutcomeJSON {
	out := benchOutcomeJSON{
		Feasible:  o.Feasible,
		RuntimeMs: float64(o.Runtime) / float64(time.Millisecond),
		Err:       o.Err,
	}
	if o.Feasible {
		v := o.Value
		out.Value = &v
	}
	return out
}

// writeBenchJSON renders the suite results as JSON to path ("-" = stdout).
func writeBenchJSON(path, fig string, results []harness.CaseResult, fleet *harness.FleetScenarioResult, elapsed time.Duration) error {
	doc := benchJSON{
		Schema:     "elpc-pipebench-v1",
		Figure:     fig,
		Cases:      len(results),
		Algorithms: harness.MapperNames(),
		SuiteMs:    float64(elapsed) / float64(time.Millisecond),
		Fleet:      fleet,
	}
	for _, r := range results {
		c := benchCaseJSON{
			Case:    r.Spec.ID,
			Modules: r.Spec.Modules,
			Nodes:   r.Spec.Nodes,
			Links:   r.Spec.Links,
			Seed:    r.Spec.Seed,
			Delay:   map[string]benchOutcomeJSON{},
			Rate:    map[string]benchOutcomeJSON{},
		}
		for name, o := range r.Delay {
			c.Delay[name] = toOutcomeJSON(o)
		}
		for name, o := range r.Rate {
			c.Rate[name] = toOutcomeJSON(o)
		}
		doc.Results = append(doc.Results, c)
	}
	s := harness.Summarize(results)
	doc.DelayWins = s.DelayWins
	doc.RateWins = s.RateWins
	doc.MeanDelayVsE = s.MeanDelayRatio
	doc.MeanRateVsE = s.MeanRateRatio
	doc.Feasible = s.Feasible

	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
