// Command pipebench regenerates every table and figure of the paper's
// evaluation (Section 4) from the deterministic case suite:
//
//	pipebench -fig 2          # Figure 2 comparison table (Markdown)
//	pipebench -fig 3          # Figure 3 min-delay path (DOT + text)
//	pipebench -fig 4          # Figure 4 max-frame-rate path (DOT + text)
//	pipebench -fig 5          # Figure 5 delay series (CSV)
//	pipebench -fig 6          # Figure 6 frame-rate series (CSV)
//	pipebench -fig ablation   # reuse-extension ablation (E12)
//	pipebench -fig mld        # MLD cost-term ablation
//	pipebench -fig replicated # Monte-Carlo replication of Figure 2
//	pipebench -fig all -out results/
//
// With -out, artifacts are written into the directory (fig2.md, fig3.dot,
// fig3.txt, fig4.dot, fig4.txt, fig5.csv, fig6.csv, ablation.md,
// summary.txt); they are always echoed to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"elpc/internal/benchfmt"
	"elpc/internal/engine"
	"elpc/internal/gen"
	"elpc/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 6, ablation, mld, pareto, jitter, replicated, fleet, churn, scale, burst, crash, warm, or all")
	out := flag.String("out", "", "directory to write artifacts into (optional)")
	workers := flag.Int("workers", 0, "parallel workers for the case suite (0 = GOMAXPROCS)")
	cases := flag.Int("cases", 20, "number of suite cases to run (1..20)")
	replicas := flag.Int("replicas", 5, "replicas per case for -fig replicated")
	jsonPath := flag.String("json", "", "write a machine-readable JSON summary of the suite metrics to this file (- for stdout)")
	parallel := flag.Int("parallel", 0, "engine pool parallelism for Pareto sweeps (0 = GOMAXPROCS, 1 = sequential)")
	compare := flag.String("compare", "", "compare the run's metrics against this baseline JSON (e.g. BENCH_BASELINE.json) and fail on regression")
	threshold := flag.Float64("threshold", 0, "relative quality-metric regression that fails -compare (0 = default 0.20)")
	runtimeThreshold := flag.Float64("runtime-threshold", 0, "relative runtime-metric regression that fails -compare (0 = default 0.50)")
	ignoreRuntime := flag.Bool("ignore-runtime", false, "exclude wall-clock metrics from the -compare gate (CI compares against a baseline from a different machine; quality metrics still gate)")
	withTelemetry := flag.Bool("telemetry", false, "include the run's process-metrics histogram summaries in the -json document")
	flag.Parse()

	if err := run(runConfig{
		fig: *fig, out: *out, workers: *workers, cases: *cases, replicas: *replicas,
		jsonPath: *jsonPath, parallel: *parallel,
		compare: *compare, threshold: *threshold, runtimeThreshold: *runtimeThreshold,
		ignoreRuntime: *ignoreRuntime, telemetry: *withTelemetry,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pipebench:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags.
type runConfig struct {
	fig, out                    string
	workers, cases, replicas    int
	jsonPath                    string
	parallel                    int
	compare                     string
	threshold, runtimeThreshold float64
	ignoreRuntime               bool
	telemetry                   bool
}

func run(cfg runConfig) error {
	fig, out, workers, cases, replicas, jsonPath := cfg.fig, cfg.out, cfg.workers, cfg.cases, cfg.replicas, cfg.jsonPath
	if cases < 1 || cases > 20 {
		return fmt.Errorf("cases must be in [1,20], got %d", cases)
	}
	specs := gen.Suite20()[:cases]

	// Pareto sweeps fan out over a shared engine pool; the suite itself
	// parallelizes per case via -workers as before.
	pool := engine.NewPool(cfg.parallel)
	defer pool.Close()

	// With -json -, stdout belongs to the JSON document alone; the artifact
	// echoes move to stderr so the output stays machine-parseable.
	echo := os.Stdout
	if jsonPath == "-" {
		echo = os.Stderr
	}
	emit := func(name, content string) error {
		fmt.Fprintf(echo, "==== %s ====\n%s\n", name, content)
		if out == "" {
			return nil
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(out, name), []byte(content), 0o644)
	}

	needSuite := fig == "all" || fig == "2" || fig == "5" || fig == "6" || jsonPath != "" || cfg.compare != ""
	var results []harness.CaseResult
	var suiteElapsed time.Duration
	if needSuite {
		start := time.Now()
		var err error
		results, err = harness.RunSuite(specs, workers)
		if err != nil {
			return err
		}
		suiteElapsed = time.Since(start)
		fmt.Fprintf(os.Stderr, "suite of %d cases completed in %v\n", len(specs), suiteElapsed.Round(time.Millisecond))
	}

	// The fleet scenario (multi-tenant admission + rebalance on a Suite20
	// network) feeds both the -fig fleet artifact and the JSON summary.
	var fleetRes *harness.FleetScenarioResult
	if fig == "all" || fig == "fleet" || jsonPath != "" || cfg.compare != "" {
		var err error
		// Case 2 (10 nodes, 60 links) with a heavier-than-default arrival
		// load, so admission control visibly rejects and the admission-rate
		// metric tracks capacity changes across PRs.
		as := gen.DefaultArrivalSpec()
		as.Sessions = 80
		as.MeanInterarrivalMs = 1000
		as.MeanHoldMs = 120000
		as.RateLo, as.RateHi = 4, 16
		fleetRes, err = harness.RunFleetScenario(gen.Suite20()[1], as, 2026)
		if err != nil {
			return err
		}
	}

	// The churn scenario (failure/degradation/drift trace with incremental
	// repair on a populated fleet) feeds -fig churn and the JSON summary.
	var churnRes *harness.ChurnScenarioResult
	if fig == "all" || fig == "churn" || jsonPath != "" || cfg.compare != "" {
		var err error
		// Same case-2 network as the fleet scenario; 16 tenants under the
		// default 60-event mixed trace.
		churnRes, err = harness.RunChurnScenario(gen.Suite20()[1], gen.DefaultChurnSpec(), 16, 2026)
		if err != nil {
			return err
		}
	}

	// The scale scenario (sharded vs unsharded placement on a clustered
	// topology) feeds -fig scale and the JSON summary.
	var scaleRes *harness.ScaleScenarioResult
	if fig == "all" || fig == "scale" || jsonPath != "" || cfg.compare != "" {
		var err error
		scaleRes, err = harness.RunScaleScenario(harness.DefaultScaleSpec())
		if err != nil {
			return err
		}
	}

	// The burst scenario (sequential-vs-batch admission on the same bursty
	// arrival trace) feeds -fig burst and the JSON summary.
	var burstRes *harness.BurstScenarioResult
	if fig == "all" || fig == "burst" || jsonPath != "" || cfg.compare != "" {
		var err error
		// Same case-2 network; the pinned seed is the one the harness tests
		// assert the batch-admission gain on.
		burstRes, err = harness.RunBurstScenario(gen.Suite20()[1], harness.DefaultBurstArrivalSpec(), 2026)
		if err != nil {
			return err
		}
	}

	// The warm scenario (the churn trace replayed warm and cold, end states
	// checked byte-identical) feeds -fig warm and the JSON summary: the
	// warm-hit ratio gates as a deterministic quality metric, the repair
	// latencies as runtime.
	var warmRes *harness.WarmScenarioResult
	if fig == "all" || fig == "warm" || jsonPath != "" || cfg.compare != "" {
		var err error
		// Same case-2 network and tenant count as the churn scenario, so
		// the warm/cold latency split is directly comparable to its row.
		warmRes, err = harness.RunWarmScenario(gen.Suite20()[1], gen.DefaultChurnSpec(), 16, 2026)
		if err != nil {
			return err
		}
	}

	// The crash scenario (WAL crash-injection sweep proving recovery lands
	// on acknowledged states only) feeds -fig crash; a recovery divergence
	// is an error, not a metric.
	var crashRes *harness.CrashScenarioResult
	if fig == "all" || fig == "crash" {
		cs := gen.DefaultChurnSpec()
		cs.Events = 6
		var err error
		crashRes, err = harness.RunCrashScenario(gen.Suite20()[1], cs, 14, 2026)
		if err != nil {
			return err
		}
	}

	var doc *benchfmt.Doc
	if jsonPath != "" || cfg.compare != "" {
		doc = buildBenchDoc(cfg, results, fleetRes, churnRes, scaleRes, burstRes, warmRes, suiteElapsed)
	}
	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, doc); err != nil {
			return err
		}
	}
	if cfg.compare != "" {
		if err := compareBaseline(cfg.compare, doc, compareOpts(cfg), echo); err != nil {
			return err
		}
	}

	if fig == "all" || fig == "2" {
		if err := emit("fig2.md", harness.Fig2Table(results)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "3" || fig == "4" {
		f34, err := harness.RunFigure34()
		if err != nil {
			return err
		}
		if fig != "4" {
			if err := emit("fig3.dot", f34.Fig3Dot); err != nil {
				return err
			}
			if err := emit("fig3.txt", f34.Fig3Text); err != nil {
				return err
			}
		}
		if fig != "3" {
			if err := emit("fig4.dot", f34.Fig4Dot); err != nil {
				return err
			}
			if err := emit("fig4.txt", f34.Fig4Text); err != nil {
				return err
			}
		}
	}
	if fig == "all" || fig == "5" {
		if err := emit("fig5.csv", harness.SeriesCSV(results, false)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "6" {
		if err := emit("fig6.csv", harness.SeriesCSV(results, true)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "fleet" {
		if err := emit("fleet.md", harness.FleetScenarioTable(fleetRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "churn" {
		if err := emit("churn.md", harness.ChurnScenarioTable(churnRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "scale" {
		if err := emit("scale.md", harness.ScaleScenarioTable(scaleRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "burst" {
		if err := emit("burst.md", harness.BurstScenarioTable(burstRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "crash" {
		if err := emit("crash.md", harness.CrashScenarioTable(crashRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "warm" {
		if err := emit("warm.md", harness.WarmScenarioTable(warmRes)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "ablation" {
		rows, err := harness.RunReuseAblation(specs, workers)
		if err != nil {
			return err
		}
		if err := emit("ablation.md", harness.ReuseAblationTable(rows)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "mld" {
		rows, err := harness.RunMLDAblation(specs, workers)
		if err != nil {
			return err
		}
		if err := emit("mld.md", harness.MLDAblationTable(rows)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "pareto" {
		// The small case plus a mid-size case give representative fronts.
		for _, idx := range []int{0, 7} {
			if idx >= len(specs) {
				continue
			}
			csv, err := harness.ParetoCSVPool(specs[idx], 10, pool)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pareto case %d: %v\n", specs[idx].ID, err)
				continue
			}
			if err := emit(fmt.Sprintf("pareto_case%d.csv", specs[idx].ID), csv); err != nil {
				return err
			}
		}
	}
	if needSuite {
		if err := emit("runtimes.md", harness.RuntimeTable(results)); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "jitter" {
		csv, err := harness.JitterSweepCSV(specs[0], []float64{0, 0.1, 0.2, 0.4, 0.8}, 400)
		if err != nil {
			return err
		}
		if err := emit("jitter.csv", csv); err != nil {
			return err
		}
	}
	if fig == "replicated" {
		rows, err := harness.RunReplicated(specs, replicas, workers)
		if err != nil {
			return err
		}
		if err := emit("replicated.md", harness.ReplicatedTable(rows)); err != nil {
			return err
		}
	}
	if needSuite {
		if err := emit("summary.txt", harness.Summarize(results).SummaryText()); err != nil {
			return err
		}
	}
	switch fig {
	case "all", "2", "3", "4", "5", "6", "ablation", "mld", "replicated", "pareto", "jitter", "fleet", "churn", "scale", "burst", "crash", "warm":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}
