package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("2", dir, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2.md", "summary.txt", "runtimes.md"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunFigures34(t *testing.T) {
	dir := t.TempDir()
	if err := run("3", dir, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("fig3.dot malformed")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.dot")); err == nil {
		t.Error("-fig 3 should not emit fig4")
	}
	if err := run("4", dir, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.txt")); err != nil {
		t.Error("fig4.txt missing")
	}
}

func TestRunSeriesAndAblations(t *testing.T) {
	dir := t.TempDir()
	for _, fig := range []string{"5", "6", "mld", "jitter", "pareto"} {
		if err := run(fig, dir, 0, 2, 1); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "mld.md", "jitter.csv", "pareto_case1.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	dir := t.TempDir()
	if err := run("replicated", dir, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "replicated.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "±") {
		t.Error("replicated table missing ± cells")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", 0, 1, 1); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run("2", "", 0, 0, 1); err == nil {
		t.Error("cases=0 should error")
	}
	if err := run("2", "", 0, 21, 1); err == nil {
		t.Error("cases=21 should error")
	}
}

func TestRunStdoutOnly(t *testing.T) {
	// No -out directory: artifacts go to stdout only; must not error.
	if err := run("ablation", "", 0, 1, 1); err != nil {
		t.Fatal(err)
	}
}
