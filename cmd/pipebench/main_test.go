package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("2", dir, 0, 2, 2, ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2.md", "summary.txt", "runtimes.md"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunFigures34(t *testing.T) {
	dir := t.TempDir()
	if err := run("3", dir, 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("fig3.dot malformed")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.dot")); err == nil {
		t.Error("-fig 3 should not emit fig4")
	}
	if err := run("4", dir, 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.txt")); err != nil {
		t.Error("fig4.txt missing")
	}
}

func TestRunSeriesAndAblations(t *testing.T) {
	dir := t.TempDir()
	for _, fig := range []string{"5", "6", "mld", "jitter", "pareto"} {
		if err := run(fig, dir, 0, 2, 1, ""); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "mld.md", "jitter.csv", "pareto_case1.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	dir := t.TempDir()
	if err := run("replicated", dir, 0, 1, 2, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "replicated.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "±") {
		t.Error("replicated table missing ± cells")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", 0, 1, 1, ""); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run("2", "", 0, 0, 1, ""); err == nil {
		t.Error("cases=0 should error")
	}
	if err := run("2", "", 0, 21, 1, ""); err == nil {
		t.Error("cases=21 should error")
	}
}

func TestRunJSONSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_suite.json")
	// -json forces the suite even for figures that don't otherwise need it.
	if err := run("ablation", "", 0, 2, 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string   `json:"schema"`
		Cases      int      `json:"cases"`
		Algorithms []string `json:"algorithms"`
		Results    []struct {
			Case  int                        `json:"case"`
			Delay map[string]json.RawMessage `json:"min_delay_ms"`
			Rate  map[string]json.RawMessage `json:"max_frame_rate_fps"`
		} `json:"results"`
		DelayWins map[string]int `json:"delay_wins"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if doc.Schema != "elpc-pipebench-v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Cases != 2 || len(doc.Results) != 2 {
		t.Errorf("cases = %d, results = %d, want 2", doc.Cases, len(doc.Results))
	}
	if len(doc.Algorithms) == 0 || doc.DelayWins["ELPC"] == 0 {
		t.Errorf("missing algorithms or ELPC delay wins: %+v", doc)
	}
	for _, r := range doc.Results {
		for _, alg := range doc.Algorithms {
			if _, ok := r.Delay[alg]; !ok {
				t.Errorf("case %d missing delay outcome for %s", r.Case, alg)
			}
			if _, ok := r.Rate[alg]; !ok {
				t.Errorf("case %d missing rate outcome for %s", r.Case, alg)
			}
		}
	}
}

func TestRunStdoutOnly(t *testing.T) {
	// No -out directory: artifacts go to stdout only; must not error.
	if err := run("ablation", "", 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
}
