package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFig invokes run with the defaulted flag set the pre-compare tests use.
func runFig(fig, out string, workers, cases, replicas int, jsonPath string) error {
	return run(runConfig{
		fig: fig, out: out, workers: workers, cases: cases, replicas: replicas,
		jsonPath: jsonPath, parallel: 1,
	})
}

func TestRunEmitsArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := runFig("2", dir, 0, 2, 2, ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2.md", "summary.txt", "runtimes.md"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunFigures34(t *testing.T) {
	dir := t.TempDir()
	if err := runFig("3", dir, 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("fig3.dot malformed")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.dot")); err == nil {
		t.Error("-fig 3 should not emit fig4")
	}
	if err := runFig("4", dir, 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.txt")); err != nil {
		t.Error("fig4.txt missing")
	}
}

func TestRunSeriesAndAblations(t *testing.T) {
	dir := t.TempDir()
	for _, fig := range []string{"5", "6", "mld", "jitter", "pareto", "churn", "warm"} {
		if err := runFig(fig, dir, 0, 2, 1, ""); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "mld.md", "jitter.csv", "pareto_case1.csv", "churn.md", "warm.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	dir := t.TempDir()
	if err := runFig("replicated", dir, 0, 1, 2, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "replicated.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "±") {
		t.Error("replicated table missing ± cells")
	}
}

func TestRunErrors(t *testing.T) {
	if err := runFig("bogus", "", 0, 1, 1, ""); err == nil {
		t.Error("unknown figure should error")
	}
	if err := runFig("2", "", 0, 0, 1, ""); err == nil {
		t.Error("cases=0 should error")
	}
	if err := runFig("2", "", 0, 21, 1, ""); err == nil {
		t.Error("cases=21 should error")
	}
}

func TestRunJSONSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_suite.json")
	// -json forces the suite even for figures that don't otherwise need it.
	if err := runFig("ablation", "", 0, 2, 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string   `json:"schema"`
		Cases      int      `json:"cases"`
		Algorithms []string `json:"algorithms"`
		Results    []struct {
			Case  int                        `json:"case"`
			Delay map[string]json.RawMessage `json:"min_delay_ms"`
			Rate  map[string]json.RawMessage `json:"max_frame_rate_fps"`
		} `json:"results"`
		DelayWins map[string]int `json:"delay_wins"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if doc.Schema != "elpc-pipebench-v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Cases != 2 || len(doc.Results) != 2 {
		t.Errorf("cases = %d, results = %d, want 2", doc.Cases, len(doc.Results))
	}
	if len(doc.Algorithms) == 0 || doc.DelayWins["ELPC"] == 0 {
		t.Errorf("missing algorithms or ELPC delay wins: %+v", doc)
	}
	for _, r := range doc.Results {
		for _, alg := range doc.Algorithms {
			if _, ok := r.Delay[alg]; !ok {
				t.Errorf("case %d missing delay outcome for %s", r.Case, alg)
			}
			if _, ok := r.Rate[alg]; !ok {
				t.Errorf("case %d missing rate outcome for %s", r.Case, alg)
			}
		}
	}
}

func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	// Produce a baseline from a 2-case run, then compare a fresh identical
	// run against it: quality metrics are deterministic, so the gate passes.
	if err := runFig("2", "", 0, 2, 1, baseline); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{fig: "2", cases: 2, replicas: 1, parallel: 1, compare: baseline}); err != nil {
		t.Fatalf("identical rerun failed the gate: %v", err)
	}
	// Corrupt the baseline's quality expectations: inflate every ELPC rate
	// 10x so the fresh run regresses far past the threshold.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, rc := range doc["results"].([]any) {
		rates := rc.(map[string]any)["max_frame_rate_fps"].(map[string]any)
		elpc := rates["ELPC"].(map[string]any)
		if v, ok := elpc["value"].(float64); ok {
			elpc["value"] = v * 10
		}
	}
	data, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{fig: "2", cases: 2, replicas: 1, parallel: 1, compare: baseline}); err == nil {
		t.Fatal("10x rate regression passed the gate")
	}
	// Missing baseline file is a hard error, not a silent pass.
	if err := run(runConfig{fig: "2", cases: 1, replicas: 1, parallel: 1, compare: filepath.Join(dir, "nope.json")}); err == nil {
		t.Fatal("missing baseline passed")
	}
}

func TestRunStdoutOnly(t *testing.T) {
	// No -out directory: artifacts go to stdout only; must not error.
	if err := runFig("ablation", "", 0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
}
