// Command linkcheck verifies the repository's Markdown documentation:
// every relative link must resolve to an existing file or directory, and
// every intra-document anchor (#heading) must match a heading in the
// target file. External links (http/https/mailto) are not fetched — CI
// must not depend on the network.
//
//	go run ./cmd/linkcheck README.md CONTRIBUTING.md docs/*.md
//
// Exit status is nonzero when any link is dead, with one line per
// offender. This is the docs CI job's gate; run it locally after moving
// or renaming files.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		problems, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d dead link(s)\n", broken)
		os.Exit(1)
	}
}

// linkRe matches inline Markdown links [text](target); images share the
// syntax with a leading ! and are checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings; their text generates the GitHub-style
// anchors intra-document links point at.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// checkFile returns one message per dead link in the file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := stripCodeBlocks(string(data))
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		target := m[1]
		if msg := checkLink(path, target); msg != "" {
			problems = append(problems, fmt.Sprintf("%s: %s", path, msg))
		}
	}
	return problems, nil
}

// stripCodeBlocks removes fenced code blocks and inline code spans so
// example snippets cannot produce false positives.
func stripCodeBlocks(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		// Drop inline code spans.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + line[i+1+j+1:]
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	return out.String()
}

// checkLink validates one link target relative to the file that holds it;
// the empty string means the link is fine.
func checkLink(file, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched
	}
	rel, anchor, _ := strings.Cut(target, "#")
	resolved := file
	if rel != "" {
		resolved = filepath.Join(filepath.Dir(file), rel)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("dead link (%s): %s does not exist", target, resolved)
		}
	}
	if anchor == "" {
		return ""
	}
	// Anchors are only checkable against Markdown targets.
	if !strings.HasSuffix(resolved, ".md") {
		return ""
	}
	ok, err := hasAnchor(resolved, anchor)
	if err != nil {
		return fmt.Sprintf("dead link (%s): %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("dead anchor (%s): no heading generates #%s in %s", target, anchor, resolved)
	}
	return ""
}

// hasAnchor reports whether the Markdown file contains a heading whose
// GitHub-style slug equals anchor.
func hasAnchor(path, anchor string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if slugify(m[1]) == anchor {
			return true, nil
		}
	}
	return false, nil
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase, spaces
// to dashes, punctuation dropped (backticks and formatting included).
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
