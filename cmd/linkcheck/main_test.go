package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/TARGET.md", "# Target\n\n## Deep Section\n")
	write(t, dir, "code.go", "package x\n")
	doc := write(t, dir, "README.md", strings.Join([]string{
		"# Readme",
		"",
		"[good](docs/TARGET.md) and [anchored](docs/TARGET.md#deep-section)",
		"[self](#readme) [external](https://example.com/nope) [mail](mailto:a@b.c)",
		"[code](code.go)",
		"",
		"```sh",
		"this [fenced](missing-in-fence.md) link is not real",
		"```",
		"",
		"inline `[span](also-not-real.md)` is code too",
	}, "\n"))

	problems, err := checkFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean file reported problems: %v", problems)
	}

	bad := write(t, dir, "BAD.md", strings.Join([]string{
		"# Bad",
		"[dead](docs/NOPE.md)",
		"[dead anchor](docs/TARGET.md#no-such-heading)",
		"[bad self](#missing)",
	}, "\n"))
	problems, err = checkFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(problems), problems)
	}
	for i, want := range []string{"docs/NOPE.md", "no-such-heading", "#missing"} {
		if !strings.Contains(problems[i], want) {
			t.Errorf("problem %d = %q, want mention of %q", i, problems[i], want)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Quick start":                        "quick-start",
		"Fleet — multi-tenant placement":     "fleet--multi-tenant-placement",
		"GET /v1/fleet — GET /v1/fleet/{id}": "get-v1fleet--get-v1fleetid",
		"`elpcd` HTTP API":                   "elpcd-http-api",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRepositoryDocsAreClean runs the checker over the real repository
// docs, so a dead link fails `go test` even before the CI docs job.
func TestRepositoryDocsAreClean(t *testing.T) {
	root := "../.."
	files := []string{"README.md", "CONTRIBUTING.md"}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		files = append(files, strings.TrimPrefix(d, root+string(filepath.Separator)))
	}
	if len(files) < 4 {
		t.Fatalf("expected README, CONTRIBUTING, and at least 2 docs files, got %v", files)
	}
	for _, f := range files {
		problems, err := checkFile(filepath.Join(root, f))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
}
