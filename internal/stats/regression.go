package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate is returned when a regression cannot be fit (fewer than two
// points or zero variance in x).
var ErrDegenerate = errors.New("stats: degenerate regression input")

// LinFit is the result of an ordinary least-squares fit y = Slope*x + Intercept.
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int
}

// String implements fmt.Stringer.
func (f LinFit) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// Predict evaluates the fitted line at x.
func (f LinFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// LinReg fits y = a*x + b to the paired samples by ordinary least squares.
// It returns ErrDegenerate when len(xs) < 2, the lengths mismatch, or all xs
// are identical.
func LinReg(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d: %w", len(xs), len(ys), ErrDegenerate)
	}
	n := len(xs)
	if n < 2 {
		return LinFit{}, ErrDegenerate
	}
	// Center the data for numerical stability.
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		// R² = 1 - SSE/SST computed via the identity SSE = syy - slope*sxy.
		r2 = 1 - (syy-slope*sxy)/syy
		if r2 < 0 {
			r2 = 0
		}
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// LinRegThroughOrigin fits y = a*x (no intercept) by least squares.
func LinRegThroughOrigin(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return LinFit{}, ErrDegenerate
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return LinFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	// R² against the through-origin model.
	var sse, sst float64
	my := Mean(ys)
	for i := range xs {
		e := ys[i] - slope*xs[i]
		sse += e * e
		d := ys[i] - my
		sst += d * d
	}
	r2 := 1.0
	if sst > 0 {
		r2 = 1 - sse/sst
		if r2 < 0 {
			r2 = 0
		}
	}
	return LinFit{Slope: slope, Intercept: 0, R2: r2, N: len(xs)}, nil
}

// Histogram is a fixed-width bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo (programmer error).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records x; out-of-range values count as underflow/overflow.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard float rounding at the upper edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Underflow returns the count of samples below Lo.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the count of samples at or above Hi.
func (h *Histogram) Overflow() int { return h.over }
