package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("P100 = %v, want 40", got)
	}
	if got := Percentile(xs, -5); got != 10 {
		t.Errorf("clamped low percentile = %v, want 10", got)
	}
	if got := Percentile(xs, 200); got != 40 {
		t.Errorf("clamped high percentile = %v, want 40", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-10) {
		t.Errorf("welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-10) {
		t.Errorf("welford var %v vs batch %v", w.Variance(), Variance(xs))
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Errorf("welford min/max mismatch")
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var a, b, all Welford
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		xs = append(xs, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N %d vs %d", a.N(), all.N())
	}
	if !almostEq(a.Mean(), all.Mean(), 1e-10) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almostEq(a.Variance(), all.Variance(), 1e-10) {
		t.Errorf("merged var %v vs %v", a.Variance(), all.Variance())
	}
	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(all)
	if empty.N() != all.N() || empty.Mean() != all.Mean() {
		t.Error("merge into empty should copy")
	}
	// Merging an empty accumulator is a no-op.
	before := all
	all.Merge(Welford{})
	if all != before {
		t.Error("merge of empty should be a no-op")
	}
}

func TestWelfordEmptyExtrema(t *testing.T) {
	var w Welford
	if !math.IsInf(w.Min(), 1) || !math.IsInf(w.Max(), -1) {
		t.Error("empty welford extrema should be +Inf/-Inf")
	}
	if w.StdDev() != 0 {
		t.Error("empty welford stddev should be 0")
	}
}

func TestLinRegExact(t *testing.T) {
	// Perfectly linear data must be recovered exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 3
	}
	f, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2.5, 1e-12) || !almostEq(f.Intercept, -3, 1e-12) {
		t.Errorf("fit %+v, want slope 2.5 intercept -3", f)
	}
	if !almostEq(f.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", f.R2)
	}
	if got := f.Predict(10); !almostEq(got, 22, 1e-12) {
		t.Errorf("Predict(10) = %v, want 22", got)
	}
}

func TestLinRegNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 4*x+1+rng.NormFloat64()*0.1)
	}
	f, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-4) > 0.05 || math.Abs(f.Intercept-1) > 0.05 {
		t.Errorf("noisy fit %+v too far from y=4x+1", f)
	}
	if f.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", f.R2)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	if _, err := LinReg([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should be degenerate")
	}
	if _, err := LinReg([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should be degenerate")
	}
	if _, err := LinReg([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestLinRegThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{3, 6, 9}
	f, err := LinRegThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 3, 1e-12) || f.Intercept != 0 {
		t.Errorf("fit %+v, want slope 3 through origin", f)
	}
	if _, err := LinRegThroughOrigin(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := LinRegThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x should error")
	}
}

func TestLinFitString(t *testing.T) {
	f := LinFit{Slope: 1, Intercept: 2, R2: 0.5, N: 3}
	if f.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42, math.NaN()} {
		h.Add(x)
	}
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("bins = %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid bounds")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: mean is translation-equivariant and within [min, max].
func TestQuickMeanProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e6)
		if math.IsNaN(shift) {
			shift = 0
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almostEq(Mean(shifted), m+shift, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Welford streaming matches batch computation for arbitrary input.
func TestQuickWelfordMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return almostEq(w.Mean(), Mean(xs), 1e-6) && almostEq(w.Variance(), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: regression recovers any non-degenerate exact line.
func TestQuickLinRegRecoversLine(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		a := float64(a8) / 4
		b := float64(b8) / 4
		n := int(n8%20) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(i)
			ys[i] = a*xs[i] + b
		}
		fit, err := LinReg(xs, ys)
		if err != nil {
			return false
		}
		return almostEq(fit.Slope, a, 1e-9) && almostEq(fit.Intercept, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
