// Package stats provides the small statistical toolkit used across the ELPC
// reproduction: summary statistics, streaming moments, percentiles,
// histograms, and least-squares linear regression.
//
// Everything here is deterministic and allocation-conscious; it is used both
// by the measurement substrate (internal/measure) to fit link cost models and
// by the experiment harness (internal/harness) to summarize results.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two middle elements for an
// even count). It returns 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// clamps p to [0, 100]. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the standard descriptive statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// Welford accumulates streaming mean and variance without retaining samples,
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen (+Inf if none).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.Inf(1)
	}
	return w.min
}

// Max returns the largest sample seen (-Inf if none).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.Inf(-1)
	}
	return w.max
}

// Merge combines another accumulator into w (parallel reduction), using the
// Chan et al. pairwise update.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}
