package model

import (
	"testing"
)

// partitionFixture builds a two-triangle network joined by one link pair:
// nodes 0-2 and 3-5, with 6 intra links per triangle and the boundary pair
// 2<->3.
func partitionFixture(t *testing.T) *Network {
	t.Helper()
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), Power: 1000}
	}
	var links []Link
	add := func(u, v int) {
		links = append(links, Link{ID: len(links), From: NodeID(u), To: NodeID(v), BWMbps: 100, MLDms: 1})
	}
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		for i := 0; i < 3; i++ {
			add(tri[i], tri[(i+1)%3])
			add(tri[(i+1)%3], tri[i])
		}
	}
	add(2, 3)
	add(3, 2)
	net, err := NewNetwork(nodes, links)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	return net
}

func TestPartitionNetwork(t *testing.T) {
	net := partitionFixture(t)
	p, err := PartitionNetwork(net, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if p.K != 2 || len(p.PartOf) != net.N() || len(p.LinkOwner) != net.M() {
		t.Fatalf("partition shape: %+v", p)
	}
	// Link ownership must match its endpoints' regions; boundary links are
	// exactly the cross-region ones.
	boundary := map[int]bool{}
	for _, l := range p.Boundary {
		boundary[l] = true
	}
	for i, l := range net.Links {
		same := p.PartOf[l.From] == p.PartOf[l.To]
		switch {
		case same && p.LinkOwner[i] != p.PartOf[l.From]:
			t.Fatalf("intra link %d owned by %d, endpoints in %d", i, p.LinkOwner[i], p.PartOf[l.From])
		case !same && p.LinkOwner[i] != BoundaryOwner:
			t.Fatalf("cross link %d owned by %d, want BoundaryOwner", i, p.LinkOwner[i])
		case !same != boundary[i]:
			t.Fatalf("link %d boundary membership inconsistent", i)
		}
	}
	// The two triangles must land in different regions (the farthest-point
	// seeds separate them).
	if p.PartOf[0] == p.PartOf[5] {
		t.Fatalf("triangles not separated: %v", p.PartOf)
	}
	// Region listings are ascending and complete.
	total := 0
	for r, region := range p.Regions {
		total += len(region)
		for i := 1; i < len(region); i++ {
			if region[i] <= region[i-1] {
				t.Fatalf("region %d not ascending: %v", r, region)
			}
		}
	}
	if total != net.N() {
		t.Fatalf("regions cover %d of %d nodes", total, net.N())
	}

	if _, err := PartitionNetwork(net, 0); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, err := PartitionNetwork(net, net.N()+1); err == nil {
		t.Fatalf("k>n accepted")
	}
}

func TestRegionViewExtract(t *testing.T) {
	net := partitionFixture(t)
	p, err := PartitionNetwork(net, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	view := p.View(net, p.PartOf[0])
	sub, err := view.Extract(net)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if sub.N() != len(view.Nodes) || sub.M() != len(view.Links) {
		t.Fatalf("sub-network %dx%d, view %dx%d", sub.N(), sub.M(), len(view.Nodes), len(view.Links))
	}
	// Attributes are copied bit for bit under the renumbering.
	for local, g := range view.Nodes {
		if sub.Power(NodeID(local)) != net.Power(g) {
			t.Fatalf("node %d power %v, want %v", local, sub.Power(NodeID(local)), net.Power(g))
		}
	}
	for local, g := range view.Links {
		gl := net.Links[g]
		sl := sub.Links[local]
		if sl.BWMbps != gl.BWMbps || sl.MLDms != gl.MLDms {
			t.Fatalf("link %d attributes %+v, want %+v", local, sl, gl)
		}
		if view.Nodes[sl.From] != gl.From || view.Nodes[sl.To] != gl.To {
			t.Fatalf("link %d endpoints not translated: %+v vs %+v", local, sl, gl)
		}
	}
	// ToGlobal inverts the node renumbering.
	m := NewMapping([]NodeID{0, 0, 1})
	gm := view.ToGlobal(m)
	for j, local := range m.Assign {
		if gm.Assign[j] != view.Nodes[local] {
			t.Fatalf("ToGlobal module %d: %d, want %d", j, gm.Assign[j], view.Nodes[local])
		}
	}
}

// TestRegionViewK1Identity: the one-region view covers the network with
// identity numbering, so extraction reproduces it exactly.
func TestRegionViewK1Identity(t *testing.T) {
	net := partitionFixture(t)
	p, err := PartitionNetwork(net, 1)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	view := p.View(net, 0)
	if !view.Covers(net) {
		t.Fatalf("K=1 view does not cover the network")
	}
	sub, err := view.Extract(net)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	for i := range net.Nodes {
		if sub.Nodes[i] != net.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, sub.Nodes[i], net.Nodes[i])
		}
	}
	for i := range net.Links {
		if sub.Links[i] != net.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, sub.Links[i], net.Links[i])
		}
	}
}

func TestResidualCapacityFactorsRoundTrip(t *testing.T) {
	net := partitionFixture(t)
	r := NewResidualNetwork(net)
	if err := r.ApplyChurn([]ChurnEvent{{Kind: NodeDown, Node: 1}, {Kind: LinkDegrade, Link: 0, Factor: 0.5}}); err != nil {
		t.Fatalf("churn: %v", err)
	}
	node, link := r.CapacityFactors()
	r2 := NewResidualNetwork(net)
	if err := r2.SetCapacityFactors(node, link); err != nil {
		t.Fatalf("set factors: %v", err)
	}
	if !r2.NodeIsDown(1) || r2.LinkCapacity(0) != 0.5 {
		t.Fatalf("factors did not round-trip: %v %v", r2.NodeCapacity(1), r2.LinkCapacity(0))
	}
	if err := r2.SetCapacityFactors([]float64{2}, link); err == nil {
		t.Fatalf("bad shape/range accepted")
	}
}

func TestResidualAddLoad(t *testing.T) {
	net := partitionFixture(t)
	r := NewResidualNetwork(net)
	res := Reservation{NodeFrac: make([]float64, net.N()), LinkFrac: make([]float64, net.M())}
	res.NodeFrac[2] = 0.25
	res.LinkFrac[3] = 0.5
	if err := r.AddLoad(res); err != nil {
		t.Fatalf("add load: %v", err)
	}
	if r.NodeLoad(2) != 0.25 || r.LinkLoad(3) != 0.5 {
		t.Fatalf("loads not applied: %v %v", r.NodeLoad(2), r.LinkLoad(3))
	}
	if err := r.AddLoad(Reservation{}); err == nil {
		t.Fatalf("shape mismatch accepted")
	}
}
