// Package model defines the domain model of the ELPC reproduction: transport
// networks (nodes with processing power, links with bandwidth and minimum
// link delay), linear computing pipelines (modules with complexity and data
// sizes), pipeline-to-network mappings, and the analytical cost models of
// Section 2 of the paper (total end-to-end delay, Eq. 1, and frame-rate
// bottleneck, Eq. 2).
//
// Units are fixed throughout the repository:
//
//   - time: milliseconds (ms)
//   - data: bytes
//   - node power p: operations per millisecond
//   - module complexity c: operations per input byte
//   - link bandwidth: Mbit/s (converted internally to bytes/ms)
//   - minimum link delay (MLD): milliseconds
//
// so that T_compute = c·m/p ms and T_transport = m/(125·Mbps) + MLD ms.
package model

import (
	"fmt"

	"elpc/internal/graph"
)

// NodeID identifies a network node (dense, 0-based).
type NodeID int

// BytesPerMsPerMbps converts link bandwidth from Mbit/s to bytes/ms:
// 1 Mbit/s = 10^6 bits/s = 125000 bytes/s = 125 bytes/ms.
const BytesPerMsPerMbps = 125.0

// Node is a computing node with a normalized processing power, as in the
// paper's cost model (NodeID, NodeIP, ProcessingPower). Power is expressed in
// operations per millisecond.
type Node struct {
	ID    NodeID  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Power float64 `json:"power"`
}

// Link is a directed communication link characterized by bandwidth (BW) and
// minimum link delay (MLD), mirroring the paper's five link parameters
// (startNodeID, endNodeID, LinkID, LinkBWInMbps, LinkDelayInMilliseconds).
type Link struct {
	ID     int     `json:"id"`
	From   NodeID  `json:"from"`
	To     NodeID  `json:"to"`
	BWMbps float64 `json:"bw_mbps"`
	MLDms  float64 `json:"mld_ms"`
}

// BytesPerMs returns the link bandwidth in bytes per millisecond.
func (l Link) BytesPerMs() float64 { return l.BWMbps * BytesPerMsPerMbps }

// TransferTime returns the time in ms to move `bytes` across the link:
// bytes/bandwidth plus, when includeMLD is set, the minimum link delay.
func (l Link) TransferTime(bytes float64, includeMLD bool) float64 {
	t := bytes / l.BytesPerMs()
	if includeMLD {
		t += l.MLDms
	}
	return t
}

// Network is an arbitrary-topology directed transport network. Link i in
// Links corresponds to edge i in the topology graph, so graph algorithms can
// address link attributes by edge ID.
type Network struct {
	Nodes []Node
	Links []Link

	topo *graph.Graph
}

// NewNetwork validates the node and link sets and builds the topology index.
// Nodes must be densely numbered (Nodes[i].ID == i) with positive power;
// links must reference valid distinct endpoints, be unique per direction, be
// densely numbered, and have positive bandwidth and non-negative MLD.
func NewNetwork(nodes []Node, links []Link) (*Network, error) {
	for i, n := range nodes {
		if int(n.ID) != i {
			return nil, fmt.Errorf("model: node %d has ID %d; nodes must be densely numbered", i, n.ID)
		}
		if n.Power <= 0 {
			return nil, fmt.Errorf("model: node %d has non-positive power %v", i, n.Power)
		}
	}
	topo := graph.New(len(nodes))
	for i, l := range links {
		if l.ID != i {
			return nil, fmt.Errorf("model: link %d has ID %d; links must be densely numbered", i, l.ID)
		}
		if l.BWMbps <= 0 {
			return nil, fmt.Errorf("model: link %d has non-positive bandwidth %v", i, l.BWMbps)
		}
		if l.MLDms < 0 {
			return nil, fmt.Errorf("model: link %d has negative MLD %v", i, l.MLDms)
		}
		if _, err := topo.AddEdge(int(l.From), int(l.To)); err != nil {
			return nil, fmt.Errorf("model: link %d: %w", i, err)
		}
	}
	return &Network{Nodes: nodes, Links: links, topo: topo}, nil
}

// sharedTopoNetwork builds a Network over a pre-validated node/link set,
// reusing an existing topology index instead of rebuilding it edge by edge.
// The caller must guarantee that links[i].From/To match edge i of topo —
// residual snapshots qualify because scaling changes only Power and BWMbps.
// Sharing the index also gives warm-start solvers a free structural identity
// check: two snapshots of the same residual view satisfy
// a.Topology() == b.Topology().
func sharedTopoNetwork(nodes []Node, links []Link, topo *graph.Graph) *Network {
	return &Network{Nodes: nodes, Links: links, topo: topo}
}

// N returns the number of nodes.
func (n *Network) N() int { return len(n.Nodes) }

// M returns the number of directed links.
func (n *Network) M() int { return len(n.Links) }

// Topology returns the underlying directed graph. Edge i corresponds to
// Links[i]. The graph must not be mutated.
func (n *Network) Topology() *graph.Graph { return n.topo }

// Power returns the processing power of node v in ops/ms.
func (n *Network) Power(v NodeID) float64 { return n.Nodes[v].Power }

// LinkBetween returns the link u→v and whether it exists.
func (n *Network) LinkBetween(u, v NodeID) (Link, bool) {
	id, ok := n.topo.EdgeID(int(u), int(v))
	if !ok {
		return Link{}, false
	}
	return n.Links[id], true
}

// ValidNode reports whether v is a node of this network.
func (n *Network) ValidNode(v NodeID) bool { return v >= 0 && int(v) < len(n.Nodes) }

// Clone returns a deep copy of the network (fresh topology index included),
// so callers may mutate attributes (e.g. estimated bandwidths) independently.
func (n *Network) Clone() *Network {
	nodes := append([]Node(nil), n.Nodes...)
	links := append([]Link(nil), n.Links...)
	c, err := NewNetwork(nodes, links)
	if err != nil {
		// The source network was already validated; reconstruction cannot fail.
		panic(fmt.Sprintf("model: Clone: %v", err))
	}
	return c
}
