package model

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand/v2"
)

// randomValidInstance builds a random network, pipeline, and structurally
// valid mapping directly at the model level (no dependency on internal/gen,
// which would create an import cycle in tests).
func randomValidInstance(rng *rand.Rand) (*Network, *Pipeline, *Mapping) {
	k := 3 + rng.IntN(5)
	nodes := make([]Node, k)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), Power: 100 + rng.Float64()*1e4}
	}
	// Bidirectional ring plus chords guarantees usable walks.
	var links []Link
	addLink := func(u, v int) {
		links = append(links, Link{
			ID: len(links), From: NodeID(u), To: NodeID(v),
			BWMbps: 1 + rng.Float64()*100, MLDms: rng.Float64() * 5,
		})
	}
	for i := 0; i < k; i++ {
		addLink(i, (i+1)%k)
		addLink((i+1)%k, i)
	}
	for extra := rng.IntN(k); extra > 0; extra-- {
		u, v := rng.IntN(k), rng.IntN(k)
		if u == v {
			continue
		}
		dup := false
		for _, l := range links {
			if int(l.From) == u && int(l.To) == v {
				dup = true
				break
			}
		}
		if !dup {
			addLink(u, v)
		}
	}
	net, err := NewNetwork(nodes, links)
	if err != nil {
		panic(err)
	}

	n := 2 + rng.IntN(5)
	mods := make([]Module, n)
	prev := 1e3 + rng.Float64()*1e6
	mods[0] = Module{ID: 0, OutBytes: prev}
	for j := 1; j < n; j++ {
		out := 1e3 + rng.Float64()*1e6
		if j == n-1 {
			out = 0
		}
		mods[j] = Module{ID: j, Complexity: 1 + rng.Float64()*100, InBytes: prev, OutBytes: out}
		prev = out
	}
	pl, err := NewPipeline(mods)
	if err != nil {
		panic(err)
	}

	// Random walk mapping along ring edges (always valid).
	assign := make([]NodeID, n)
	cur := rng.IntN(k)
	assign[0] = NodeID(cur)
	for j := 1; j < n; j++ {
		switch rng.IntN(3) {
		case 0: // stay
		case 1:
			cur = (cur + 1) % k
		default:
			cur = (cur + k - 1) % k
		}
		assign[j] = NodeID(cur)
	}
	return net, pl, NewMapping(assign)
}

// Property: total delay is at least the bottleneck (a sum of non-negative
// stage times dominates their maximum).
func TestQuickDelayDominatesBottleneck(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		net, pl, m := randomValidInstance(rng)
		delay := TotalDelay(net, pl, m, CostOptions{}) // Eq. 1 exactly
		bott := Bottleneck(net, pl, m)
		return delay >= bott-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: shared bottleneck >= plain bottleneck (sharing can only add
// occupancy), with equality for reuse-free mappings.
func TestQuickSharedBottleneckDominates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		net, pl, m := randomValidInstance(rng)
		shared := SharedBottleneck(net, pl, m)
		plain := Bottleneck(net, pl, m)
		if shared < plain-1e-9 {
			return false
		}
		if !m.UsesReuse() && math.Abs(shared-plain) > 1e-9*(1+plain) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// scaleResources multiplies all node powers and link bandwidths by alpha.
func scaleResources(net *Network, alpha float64) *Network {
	c := net.Clone()
	for i := range c.Nodes {
		c.Nodes[i].Power *= alpha
	}
	for i := range c.Links {
		c.Links[i].BWMbps *= alpha
	}
	return c
}

// Property: scaling every resource by alpha scales Eq. 1 (without MLD) and
// Eq. 2 by exactly 1/alpha — the cost model is homogeneous of degree -1 in
// resource capacity.
func TestQuickCostScaleInvariance(t *testing.T) {
	f := func(seed uint64, alphaRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		alpha := 0.25 + float64(alphaRaw%32)/4 // 0.25 .. 8
		net, pl, m := randomValidInstance(rng)
		scaled := scaleResources(net, alpha)
		d1 := TotalDelay(net, pl, m, CostOptions{})
		d2 := TotalDelay(scaled, pl, m, CostOptions{})
		if math.Abs(d2-d1/alpha) > 1e-6*(1+d1) {
			return false
		}
		b1 := Bottleneck(net, pl, m)
		b2 := Bottleneck(scaled, pl, m)
		return math.Abs(b2-b1/alpha) <= 1e-6*(1+b1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Groups() partitions the module range contiguously and Walk()
// has no equal consecutive entries.
func TestQuickGroupsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		_, pl, m := randomValidInstance(rng)
		groups := m.Groups()
		next := 0
		for _, g := range groups {
			if g.First != next || g.Last < g.First {
				return false
			}
			next = g.Last + 1
		}
		if next != pl.N() {
			return false
		}
		walk := m.Walk()
		for i := 1; i < len(walk); i++ {
			if walk[i] == walk[i-1] {
				return false
			}
		}
		return len(walk) == len(groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
