package model

import "fmt"

// MinResidualFraction is the floor applied when materializing a residual
// view: a fully saturated node or link keeps this fraction of its nominal
// capacity so the materialized Network stays structurally valid (NewNetwork
// requires positive power and bandwidth). The resulting compute and transfer
// times are ~10^9 times their nominal values, so solvers avoid saturated
// resources whenever any alternative exists, and admission control rejects
// mappings that would overcommit them regardless.
const MinResidualFraction = 1e-9

// Reservation is the fractional capacity a deployment holds on every node
// and link of a network: NodeFrac[v] (LinkFrac[l]) is the fraction of node
// v's power (link l's bandwidth) consumed, each in [0, 1].
type Reservation struct {
	NodeFrac []float64
	LinkFrac []float64
	// Class tags the reservation with the SLO class of the deployment that
	// holds it ("guaranteed", "standard", "best_effort"; empty = standard).
	// It is informational — stamped at admission so capacity accounting can
	// attribute load per class — and never affects the numeric load math.
	Class string
}

// MappingReservation computes the reservation a mapping imposes on net when
// its pipeline streams at rateFPS frames per second: each resource's busy
// time per frame (at nominal capacity) times the frame arrival rate. A
// non-positive rate yields an all-zero reservation. Mappings that reuse a
// node or link accumulate the utilization of every visit.
func MappingReservation(net *Network, pl *Pipeline, m *Mapping, rateFPS float64) (Reservation, error) {
	res := Reservation{
		NodeFrac: make([]float64, net.N()),
		LinkFrac: make([]float64, net.M()),
	}
	if rateFPS <= 0 {
		return res, nil
	}
	framesPerMs := rateFPS / 1000.0
	groups := m.Groups()
	for gi, g := range groups {
		power := net.Power(g.Node)
		for j := g.First; j <= g.Last; j++ {
			res.NodeFrac[g.Node] += pl.ComputeTime(j, power) * framesPerMs
		}
		if gi+1 < len(groups) {
			link, ok := net.LinkBetween(g.Node, groups[gi+1].Node)
			if !ok {
				return Reservation{}, fmt.Errorf("model: reservation: no link %d->%d", g.Node, groups[gi+1].Node)
			}
			res.LinkFrac[link.ID] += link.TransferTime(pl.OutBytes(g.Last), false) * framesPerMs
		}
	}
	return res, nil
}

// ResidualNetwork is a capacity view of a base Network shared by many
// pipeline deployments: it tracks the outstanding fractional load on every
// node and link and materializes scaled Network snapshots whose node powers
// and link bandwidths are the unreserved remainder. The paper's solvers run
// unchanged against a snapshot, which is what turns the single-pipeline
// algorithms into multi-tenant placement.
//
// Besides load, the view carries per-element capacity factors mutated by
// churn events (ApplyChurn): a node's effective capacity is its nominal
// power times the factor (1 nominal, 0 down), and loads are always
// fractions of *nominal* capacity, so a factor drop can leave an element
// over capacity until its reservations are repaired.
//
// ResidualNetwork performs no synchronization; callers that share one across
// goroutines (internal/fleet does) must serialize access.
type ResidualNetwork struct {
	base     *Network
	nodeLoad []float64
	linkLoad []float64
	// nodeCap and linkCap are the churn capacity factors in [0, 1]
	// (1 = nominal); see ApplyChurn in churn.go.
	nodeCap []float64
	linkCap []float64
}

// NewResidualNetwork builds an unloaded residual view of base at full
// nominal capacity.
func NewResidualNetwork(base *Network) *ResidualNetwork {
	r := &ResidualNetwork{
		base:     base,
		nodeLoad: make([]float64, base.N()),
		linkLoad: make([]float64, base.M()),
		nodeCap:  make([]float64, base.N()),
		linkCap:  make([]float64, base.M()),
	}
	for i := range r.nodeCap {
		r.nodeCap[i] = 1
	}
	for i := range r.linkCap {
		r.linkCap[i] = 1
	}
	return r
}

// Base returns the underlying full-capacity network.
func (r *ResidualNetwork) Base() *Network { return r.base }

// CloneEmpty returns a new residual view of the same base network carrying
// the same churn capacity factors but zero outstanding load. Parallel
// proposal phases use it to build per-goroutine views that still see the
// churned network — a plain NewResidualNetwork would silently reset every
// down node to full capacity.
func (r *ResidualNetwork) CloneEmpty() *ResidualNetwork {
	return &ResidualNetwork{
		base:     r.base,
		nodeLoad: make([]float64, r.base.N()),
		linkLoad: make([]float64, r.base.M()),
		nodeCap:  append([]float64(nil), r.nodeCap...),
		linkCap:  append([]float64(nil), r.linkCap...),
	}
}

// checkShape validates that res matches the base network's dimensions.
func (r *ResidualNetwork) checkShape(res Reservation) error {
	if len(res.NodeFrac) != r.base.N() || len(res.LinkFrac) != r.base.M() {
		return fmt.Errorf("model: reservation shape (%d nodes, %d links) does not match network (%d, %d)",
			len(res.NodeFrac), len(res.LinkFrac), r.base.N(), r.base.M())
	}
	return nil
}

// SetLoad replaces the outstanding load with the exact sum of the given
// reservations, accumulated in slice order. Recomputing from the outstanding
// set — rather than incrementally adding and subtracting — makes Release
// exact: the empty set restores every load to precisely zero, with no
// floating-point residue.
func (r *ResidualNetwork) SetLoad(outstanding []Reservation) error {
	for i := range r.nodeLoad {
		r.nodeLoad[i] = 0
	}
	for i := range r.linkLoad {
		r.linkLoad[i] = 0
	}
	for _, res := range outstanding {
		if err := r.checkShape(res); err != nil {
			return err
		}
		for i, f := range res.NodeFrac {
			r.nodeLoad[i] += f
		}
		for i, f := range res.LinkFrac {
			r.linkLoad[i] += f
		}
	}
	return nil
}

// AddLoad adds res on top of the current outstanding load. The sharded
// fleet uses it to overlay cross-region reservations onto a shard's own
// recomputed load; the sum stays exact because every recompute replays the
// same additions in the same order.
func (r *ResidualNetwork) AddLoad(res Reservation) error {
	if err := r.checkShape(res); err != nil {
		return err
	}
	for i, f := range res.NodeFrac {
		r.nodeLoad[i] += f
	}
	for i, f := range res.LinkFrac {
		r.linkLoad[i] += f
	}
	return nil
}

// CapacityFactors returns copies of the churn capacity factors per node and
// per link (1 = nominal, 0 = down; indices match the base network).
func (r *ResidualNetwork) CapacityFactors() (node, link []float64) {
	return append([]float64(nil), r.nodeCap...), append([]float64(nil), r.linkCap...)
}

// SetCapacityFactors replaces the churn capacity factors wholesale. Factors
// must be in [0, 1] and shaped like the base network. The sharded
// coordinator uses it to commit a validated cross-shard churn batch
// atomically; loads are untouched.
func (r *ResidualNetwork) SetCapacityFactors(node, link []float64) error {
	if len(node) != r.base.N() || len(link) != r.base.M() {
		return fmt.Errorf("model: capacity factors shape (%d nodes, %d links) does not match network (%d, %d)",
			len(node), len(link), r.base.N(), r.base.M())
	}
	for i, f := range node {
		if f < 0 || f > 1 {
			return fmt.Errorf("model: node %d capacity factor %v outside [0,1]", i, f)
		}
	}
	for i, f := range link {
		if f < 0 || f > 1 {
			return fmt.Errorf("model: link %d capacity factor %v outside [0,1]", i, f)
		}
	}
	copy(r.nodeCap, node)
	copy(r.linkCap, link)
	return nil
}

// Fits reports whether adding res keeps every node and link load at or below
// its current capacity factor (load + reservation <= factor, checked
// strictly; the factor is 1 unless churn reduced it).
func (r *ResidualNetwork) Fits(res Reservation) bool {
	if r.checkShape(res) != nil {
		return false
	}
	for i, f := range res.NodeFrac {
		if r.nodeLoad[i]+f > r.nodeCap[i] {
			return false
		}
	}
	for i, f := range res.LinkFrac {
		if r.linkLoad[i]+f > r.linkCap[i] {
			return false
		}
	}
	return true
}

// NodeLoad returns the outstanding load fraction on node v.
func (r *ResidualNetwork) NodeLoad(v NodeID) float64 { return r.nodeLoad[v] }

// LinkLoad returns the outstanding load fraction on link id.
func (r *ResidualNetwork) LinkLoad(id int) float64 { return r.linkLoad[id] }

// residualFraction clamps the unreserved remainder of the effective
// capacity (factor minus load, both fractions of nominal) into
// [MinResidualFraction, 1].
func residualFraction(capFactor, load float64) float64 {
	f := capFactor - load
	if f < MinResidualFraction {
		return MinResidualFraction
	}
	if f > 1 {
		return 1
	}
	return f
}

// NodeResidual returns the unreserved fraction of node v's nominal power
// (capacity factor minus load), clamped to [0, 1]: overcommitment — which
// admission control prevents for load, but churn can force — never reads as
// negative capacity.
func (r *ResidualNetwork) NodeResidual(v NodeID) float64 {
	f := r.nodeCap[v] - r.nodeLoad[v]
	if f < 0 {
		return 0
	}
	return f
}

// LinkResidual returns the unreserved fraction of link id's nominal
// bandwidth, clamped to [0, 1].
func (r *ResidualNetwork) LinkResidual(id int) float64 {
	f := r.linkCap[id] - r.linkLoad[id]
	if f < 0 {
		return 0
	}
	return f
}

// Snapshot materializes the residual view as a standalone Network: node v's
// power and link l's bandwidth are the base values scaled by the unreserved
// remainder of the effective capacity (floored at MinResidualFraction, so a
// down node stays structurally present but priced out of every solve).
// Minimum link delays are propagation latency and do not scale with load.
// The snapshot shares no state with the residual view; solvers may use it
// freely while the view keeps changing.
func (r *ResidualNetwork) Snapshot() *Network {
	return r.snapshotExcluding(nil)
}

// SnapshotInto is Snapshot materializing into buf's backing arrays when buf
// is a previous snapshot of this view (same shape and topology), avoiding
// the per-solve slice allocations on hot repair paths. The caller owns the
// buffer and must not pass one a retained solver state still references —
// internal/core.WarmState double-buffers its snapshots for exactly this.
// A nil or mismatched buf falls back to a fresh Snapshot.
func (r *ResidualNetwork) SnapshotInto(buf *Network) *Network {
	if buf == nil || len(buf.Nodes) != len(r.base.Nodes) ||
		len(buf.Links) != len(r.base.Links) || buf.topo != r.base.topo {
		return r.snapshotExcluding(nil)
	}
	copy(buf.Nodes, r.base.Nodes)
	for i := range buf.Nodes {
		buf.Nodes[i].Power = r.base.Nodes[i].Power * residualFraction(r.nodeCap[i], r.nodeLoad[i])
	}
	copy(buf.Links, r.base.Links)
	for i := range buf.Links {
		buf.Links[i].BWMbps = r.base.Links[i].BWMbps * residualFraction(r.linkCap[i], r.linkLoad[i])
	}
	return buf
}

// SnapshotWithout materializes the residual view with the given reservation
// subtracted from the outstanding load first — the network as one
// deployment sees it when its own reservation is excluded. SLO evaluation
// uses it to re-score every live placement in O(nodes + links) per
// deployment, without mutating the shared view or cloning it per candidate.
func (r *ResidualNetwork) SnapshotWithout(res Reservation) (*Network, error) {
	if err := r.checkShape(res); err != nil {
		return nil, err
	}
	return r.snapshotExcluding(&res), nil
}

// snapshotExcluding is the shared materialization: exclude, when non-nil,
// is subtracted from each element's load before the residual fraction is
// computed (the fraction clamp bounds the result even if the exclusion
// exceeds the recorded load).
func (r *ResidualNetwork) snapshotExcluding(exclude *Reservation) *Network {
	nodes := append([]Node(nil), r.base.Nodes...)
	for i := range nodes {
		load := r.nodeLoad[i]
		if exclude != nil {
			load -= exclude.NodeFrac[i]
		}
		nodes[i].Power = r.base.Nodes[i].Power * residualFraction(r.nodeCap[i], load)
	}
	links := append([]Link(nil), r.base.Links...)
	for i := range links {
		load := r.linkLoad[i]
		if exclude != nil {
			load -= exclude.LinkFrac[i]
		}
		links[i].BWMbps = r.base.Links[i].BWMbps * residualFraction(r.linkCap[i], load)
	}
	// The base was validated and scaling preserves positivity and endpoints,
	// so the base topology index describes the snapshot exactly; reusing it
	// skips the O(links) graph rebuild that used to dominate repair time.
	return sharedTopoNetwork(nodes, links, r.base.topo)
}
