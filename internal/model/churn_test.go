package model

import (
	"errors"
	"strings"
	"testing"
)

// churnTestNetwork builds a 3-node line network v0 -> v1 -> v2 (and back)
// for churn unit tests.
func churnTestNetwork(t *testing.T) *Network {
	t.Helper()
	nodes := []Node{
		{ID: 0, Power: 1000},
		{ID: 1, Power: 2000},
		{ID: 2, Power: 4000},
	}
	links := []Link{
		{ID: 0, From: 0, To: 1, BWMbps: 100, MLDms: 1},
		{ID: 1, From: 1, To: 2, BWMbps: 200, MLDms: 1},
		{ID: 2, From: 2, To: 1, BWMbps: 100, MLDms: 1},
		{ID: 3, From: 1, To: 0, BWMbps: 200, MLDms: 1},
	}
	net, err := NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestApplyChurnBasics(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))

	if err := r.ApplyChurn([]ChurnEvent{
		{Kind: NodeDown, Node: 1},
		{Kind: LinkDegrade, Link: 0, Factor: 0.25},
		{Kind: CapacityDrift, Target: TargetNode, Node: 2, Factor: 0.5},
		{Kind: CapacityDrift, Target: TargetLink, Link: 1, Factor: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if !r.NodeIsDown(1) || r.NodeCapacity(1) != 0 {
		t.Errorf("node 1 should be down, capacity %v", r.NodeCapacity(1))
	}
	if got := r.LinkCapacity(0); got != 0.25 {
		t.Errorf("link 0 capacity = %v, want 0.25", got)
	}
	if got := r.NodeCapacity(2); got != 0.5 {
		t.Errorf("node 2 capacity = %v, want 0.5", got)
	}
	if got := r.LinkCapacity(1); got != 0.5 {
		t.Errorf("link 1 capacity = %v, want 0.5", got)
	}

	// Snapshot prices the down node out and scales the degraded elements.
	snap := r.Snapshot()
	if snap.Power(1) > r.Base().Power(1)*1e-8 {
		t.Errorf("down node power %v not floored", snap.Power(1))
	}
	if got, want := snap.Power(2), r.Base().Power(2)*0.5; !approxEq(got, want) {
		t.Errorf("drifted node power = %v, want %v", got, want)
	}
	if got, want := snap.Links[0].BWMbps, r.Base().Links[0].BWMbps*0.25; !approxEq(got, want) {
		t.Errorf("degraded link bw = %v, want %v", got, want)
	}

	// Restore everything; the view must return to nominal.
	if err := r.ApplyChurn([]ChurnEvent{
		{Kind: NodeUp, Node: 1},
		{Kind: LinkRestore, Link: 0},
		{Kind: CapacityDrift, Target: TargetNode, Node: 2, Factor: 2},
		{Kind: CapacityDrift, Target: TargetLink, Link: 1, Factor: 10},
	}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < r.Base().N(); v++ {
		if r.NodeCapacity(NodeID(v)) != 1 {
			t.Errorf("node %d capacity %v after full restore", v, r.NodeCapacity(NodeID(v)))
		}
	}
	for l := 0; l < r.Base().M(); l++ {
		if r.LinkCapacity(l) != 1 {
			t.Errorf("link %d capacity %v after full restore", l, r.LinkCapacity(l))
		}
	}
}

func TestApplyChurnUnknownTarget(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))
	cases := []ChurnEvent{
		{Kind: NodeDown, Node: 99},
		{Kind: NodeDown, Node: -1},
		{Kind: NodeUp, Node: 3},
		{Kind: LinkDegrade, Link: 12, Factor: 0.5},
		{Kind: LinkRestore, Link: -2},
		{Kind: CapacityDrift, Target: TargetNode, Node: 7, Factor: 0.9},
		{Kind: CapacityDrift, Target: TargetLink, Link: 40, Factor: 0.9},
	}
	for _, ev := range cases {
		err := r.ApplyChurn([]ChurnEvent{ev})
		if !errors.Is(err, ErrUnknownTarget) {
			t.Errorf("%s: err = %v, want ErrUnknownTarget", ev, err)
		}
	}
}

func TestApplyChurnConflicts(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))

	// NodeUp on a node that never went down.
	if err := r.ApplyChurn([]ChurnEvent{{Kind: NodeUp, Node: 0}}); !errors.Is(err, ErrChurnConflict) {
		t.Errorf("up-on-up err = %v, want ErrChurnConflict", err)
	}

	if err := r.ApplyChurn([]ChurnEvent{{Kind: NodeDown, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	// Double-down.
	if err := r.ApplyChurn([]ChurnEvent{{Kind: NodeDown, Node: 0}}); !errors.Is(err, ErrChurnConflict) {
		t.Errorf("double-down err = %v, want ErrChurnConflict", err)
	}
	// Drift on a down node.
	if err := r.ApplyChurn([]ChurnEvent{{Kind: CapacityDrift, Node: 0, Factor: 0.9}}); !errors.Is(err, ErrChurnConflict) {
		t.Errorf("drift-on-down err = %v, want ErrChurnConflict", err)
	}
	// Double-down within one batch conflicts too.
	if err := r.ApplyChurn([]ChurnEvent{
		{Kind: NodeDown, Node: 1},
		{Kind: NodeDown, Node: 1},
	}); !errors.Is(err, ErrChurnConflict) {
		t.Errorf("in-batch double-down err = %v, want ErrChurnConflict", err)
	}
	// LinkRestore of an undegraded link is idempotent, not a conflict.
	if err := r.ApplyChurn([]ChurnEvent{{Kind: LinkRestore, Link: 0}}); err != nil {
		t.Errorf("restore of nominal link: %v, want nil", err)
	}
}

func TestApplyChurnBadFactors(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))
	for _, ev := range []ChurnEvent{
		{Kind: LinkDegrade, Link: 0, Factor: 0},
		{Kind: LinkDegrade, Link: 0, Factor: 1},
		{Kind: LinkDegrade, Link: 0, Factor: -0.5},
		{Kind: CapacityDrift, Node: 0, Factor: 0},
		{Kind: CapacityDrift, Node: 0, Factor: -1},
		{Kind: ChurnKind("meteor_strike"), Node: 0},
		{Kind: CapacityDrift, Target: ChurnTarget("path"), Node: 0, Factor: 0.5},
	} {
		if err := r.ApplyChurn([]ChurnEvent{ev}); err == nil {
			t.Errorf("%s: applied, want error", ev)
		}
	}
}

// TestApplyChurnTransactional verifies that a batch with a late invalid
// event leaves the view completely untouched.
func TestApplyChurnTransactional(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))
	err := r.ApplyChurn([]ChurnEvent{
		{Kind: NodeDown, Node: 0},
		{Kind: LinkDegrade, Link: 1, Factor: 0.5},
		{Kind: NodeDown, Node: 99}, // invalid: aborts the batch
	})
	if !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v, want ErrUnknownTarget", err)
	}
	if r.NodeCapacity(0) != 1 || r.LinkCapacity(1) != 1 {
		t.Errorf("partial application leaked: node0=%v link1=%v",
			r.NodeCapacity(0), r.LinkCapacity(1))
	}
	if !strings.Contains(err.Error(), "event 2") {
		t.Errorf("error should name the offending event index: %v", err)
	}
}

// TestChurnFitsInteraction verifies Fits against reduced capacity factors.
func TestChurnFitsInteraction(t *testing.T) {
	r := NewResidualNetwork(churnTestNetwork(t))
	res := Reservation{
		NodeFrac: []float64{0.5, 0, 0},
		LinkFrac: []float64{0, 0, 0, 0},
	}
	if !r.Fits(res) {
		t.Fatal("half-load reservation must fit a nominal node")
	}
	if err := r.ApplyChurn([]ChurnEvent{{Kind: CapacityDrift, Node: 0, Factor: 0.4}}); err != nil {
		t.Fatal(err)
	}
	if r.Fits(res) {
		t.Error("0.5 load must not fit a node drifted to 0.4 capacity")
	}
	if err := r.ApplyChurn([]ChurnEvent{{Kind: NodeUp, Node: 0}}); !errors.Is(err, ErrChurnConflict) {
		t.Errorf("NodeUp on drifted-but-up node: err = %v, want conflict", err)
	}
	if err := r.ApplyChurn([]ChurnEvent{{Kind: CapacityDrift, Node: 0, Factor: 100}}); err != nil {
		t.Fatal(err)
	}
	if got := r.NodeCapacity(0); got != 1 {
		t.Errorf("drift up must clamp at nominal, got %v", got)
	}
	if !r.Fits(res) {
		t.Error("reservation must fit again after capacity returns")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-12*scale
}
