package model

import (
	"fmt"

	"elpc/internal/graph"
)

// This file defines the region partition of a Network that the sharded
// fleet manager (internal/fleet.ShardedFleet) is built on: nodes are split
// into K connected regions, every link is either internal to exactly one
// region or a member of the explicit cross-region boundary set, and the
// partition can materialize a standalone sub-network per region that the
// paper's solvers run against unchanged.

// Partition is a K-way region partition of a network's nodes and links.
// Build one with PartitionNetwork; the zero value is not usable.
type Partition struct {
	// K is the number of regions (>= 1).
	K int `json:"k"`
	// PartOf maps every node to its region index in [0, K).
	PartOf []int `json:"part_of"`
	// Regions lists each region's nodes in ascending node-ID order.
	Regions [][]NodeID `json:"regions"`
	// LinkOwner maps every link to the region containing both its
	// endpoints, or BoundaryOwner when the endpoints lie in different
	// regions (a boundary link).
	LinkOwner []int `json:"link_owner"`
	// Boundary lists the cross-region link IDs in ascending order. Boundary
	// links belong to no region; only the sharded coordinator path reserves
	// capacity on them.
	Boundary []int `json:"boundary"`
}

// BoundaryOwner is the LinkOwner value of boundary (cross-region) links.
const BoundaryOwner = -1

// PartitionNetwork splits net into k regions using the deterministic
// balanced graph partitioner (graph.PartitionK: farthest-point seeds plus
// lockstep BFS region growth) and derives the link ownership and boundary
// sets. It requires 1 <= k <= net.N().
func PartitionNetwork(net *Network, k int) (*Partition, error) {
	if net == nil {
		return nil, fmt.Errorf("model: partition of nil network")
	}
	if k < 1 || k > net.N() {
		return nil, fmt.Errorf("model: partition needs 1 <= k <= %d nodes, got k=%d", net.N(), k)
	}
	return NewPartitionFromAssignment(net, k, net.Topology().PartitionK(k))
}

// NewPartitionFromAssignment builds the Partition for a caller-supplied
// per-node region assignment (every partOf value in [0, k)): region
// listings in ascending node order, link ownership and the boundary set
// derived from the endpoints' regions. PartitionNetwork layers the graph
// partitioner on top; generators with known layouts (gen.ClusterSpec) call
// it directly.
func NewPartitionFromAssignment(net *Network, k int, partOf []int) (*Partition, error) {
	if len(partOf) != net.N() {
		return nil, fmt.Errorf("model: assignment covers %d nodes, network has %d", len(partOf), net.N())
	}
	p := &Partition{
		K:         k,
		PartOf:    partOf,
		Regions:   make([][]NodeID, k),
		LinkOwner: make([]int, net.M()),
	}
	for v, r := range partOf {
		if r < 0 || r >= k {
			return nil, fmt.Errorf("model: node %d assigned to region %d, want [0,%d)", v, r, k)
		}
		p.Regions[r] = append(p.Regions[r], NodeID(v))
	}
	for i, l := range net.Links {
		if partOf[l.From] == partOf[l.To] {
			p.LinkOwner[i] = partOf[l.From]
		} else {
			p.LinkOwner[i] = BoundaryOwner
			p.Boundary = append(p.Boundary, i)
		}
	}
	return p, nil
}

// Region returns the region index of node v.
func (p *Partition) Region(v NodeID) int { return p.PartOf[v] }

// SameRegion reports whether u and v lie in the same region.
func (p *Partition) SameRegion(u, v NodeID) bool { return p.PartOf[u] == p.PartOf[v] }

// RegionView is the index translation between a network and one region's
// sub-network: region nodes and internal links are renumbered densely in
// ascending global-ID order. Build one with Partition.View.
type RegionView struct {
	// Region is the region index this view covers.
	Region int
	// Nodes maps local node index -> global NodeID (ascending).
	Nodes []NodeID
	// Links maps local link index -> global link ID (ascending).
	Links []int
	// LocalNode maps global NodeID -> local index, or -1 for nodes outside
	// the region.
	LocalNode []int

	// topo is the region sub-network's topology index, built once in View
	// (local edge i corresponds to Links[i]). Every RegionSnapshot shares
	// it, so regional snapshots carry a stable Topology() pointer — the
	// structural identity warm-start solvers key on — and skip the graph
	// rebuild entirely.
	topo *graph.Graph
}

// View builds the index translation for region r of net.
func (p *Partition) View(net *Network, r int) *RegionView {
	v := &RegionView{
		Region:    r,
		Nodes:     p.Regions[r],
		LocalNode: make([]int, net.N()),
	}
	for i := range v.LocalNode {
		v.LocalNode[i] = -1
	}
	for local, g := range v.Nodes {
		v.LocalNode[g] = local
	}
	for i := range net.Links {
		if p.LinkOwner[i] == r {
			v.Links = append(v.Links, i)
		}
	}
	v.topo = graph.New(len(v.Nodes))
	for _, g := range v.Links {
		l := net.Links[g]
		if _, err := v.topo.AddEdge(v.LocalNode[l.From], v.LocalNode[l.To]); err != nil {
			// The link set was validated when net was built and the view
			// renumbers densely; this cannot fail.
			panic(fmt.Sprintf("model: region %d view topology: %v", r, err))
		}
	}
	return v
}

// Covers reports whether the view spans the whole network with identity
// numbering (the K=1 region), in which case extraction is a no-op.
func (v *RegionView) Covers(net *Network) bool {
	return len(v.Nodes) == net.N() && len(v.Links) == net.M()
}

// Extract materializes the region's sub-network from a full-network
// snapshot: region nodes and internal links keep their (possibly
// residual-scaled) attributes, renumbered densely per the view. Attribute
// values are copied bit-for-bit, so a solver that runs on the extraction of
// the K=1 view behaves byte-identically to one run on the snapshot itself.
func (v *RegionView) Extract(snap *Network) (*Network, error) {
	nodes := make([]Node, len(v.Nodes))
	for local, g := range v.Nodes {
		nodes[local] = snap.Nodes[g]
		nodes[local].ID = NodeID(local)
	}
	links := make([]Link, len(v.Links))
	for local, g := range v.Links {
		l := snap.Links[g]
		l.ID = local
		l.From = NodeID(v.LocalNode[l.From])
		l.To = NodeID(v.LocalNode[l.To])
		links[local] = l
	}
	sub, err := NewNetwork(nodes, links)
	if err != nil {
		return nil, fmt.Errorf("model: region %d extraction: %w", v.Region, err)
	}
	return sub, nil
}

// RegionSnapshot materializes one region's residual-scaled sub-network
// directly from the view — the hot path of a sharded fleet's regional
// solves. It is equivalent to v.Extract(r.Snapshot()) (same bit-for-bit
// attribute scaling) but costs O(region) instead of O(network), which is
// where sharding's per-deploy speedup comes from.
func (r *ResidualNetwork) RegionSnapshot(v *RegionView) *Network {
	nodes := make([]Node, len(v.Nodes))
	for local, g := range v.Nodes {
		n := r.base.Nodes[g]
		n.ID = NodeID(local)
		n.Power = r.base.Nodes[g].Power * residualFraction(r.nodeCap[g], r.nodeLoad[g])
		nodes[local] = n
	}
	links := make([]Link, len(v.Links))
	for local, gid := range v.Links {
		l := r.base.Links[gid]
		l.ID = local
		l.From = NodeID(v.LocalNode[l.From])
		l.To = NodeID(v.LocalNode[l.To])
		l.BWMbps = r.base.Links[gid].BWMbps * residualFraction(r.linkCap[gid], r.linkLoad[gid])
		links[local] = l
	}
	// The view's cached sub-topology describes exactly these renumbered
	// links; sharing it keeps regional snapshots O(region) with no graph
	// rebuild and gives them a stable Topology() pointer.
	return sharedTopoNetwork(nodes, links, v.topo)
}

// RegionSnapshotInto is RegionSnapshot materializing into buf when buf is a
// previous regional snapshot of the same view (same shape and shared
// sub-topology); a nil or mismatched buf falls back to a fresh
// RegionSnapshot. Same ownership contract as SnapshotInto.
func (r *ResidualNetwork) RegionSnapshotInto(v *RegionView, buf *Network) *Network {
	if buf == nil || len(buf.Nodes) != len(v.Nodes) ||
		len(buf.Links) != len(v.Links) || buf.topo != v.topo {
		return r.RegionSnapshot(v)
	}
	for local, g := range v.Nodes {
		buf.Nodes[local].Power = r.base.Nodes[g].Power * residualFraction(r.nodeCap[g], r.nodeLoad[g])
	}
	for local, gid := range v.Links {
		buf.Links[local].BWMbps = r.base.Links[gid].BWMbps * residualFraction(r.linkCap[gid], r.linkLoad[gid])
	}
	return buf
}

// ToGlobal translates a mapping solved on the region sub-network back to
// global node IDs.
func (v *RegionView) ToGlobal(m *Mapping) *Mapping {
	assign := make([]NodeID, len(m.Assign))
	for j, local := range m.Assign {
		assign[j] = v.Nodes[local]
	}
	return NewMapping(assign)
}
