package model

// NetworkDelta lists what changed between two structurally identical
// networks: the nodes whose power differs and the links whose bandwidth or
// minimum delay differs. Warm-start solvers (internal/core.WarmState) use it
// as the seed of delta invalidation — every DP cell whose inputs are
// untouched by the delta keeps its previous, bit-identical value.
type NetworkDelta struct {
	// Nodes are the IDs of nodes whose Power changed, ascending.
	Nodes []NodeID
	// Links are the IDs of links whose BWMbps or MLDms changed, ascending.
	Links []int
}

// Empty reports whether nothing changed.
func (d NetworkDelta) Empty() bool { return len(d.Nodes) == 0 && len(d.Links) == 0 }

// DiffNetworks compares two networks and returns the capacity delta from
// prev to cur. ok is false when the networks differ structurally (node or
// link counts, link endpoints) — in that case no delta describes the change
// and warm state must be rebuilt from scratch. Comparison of float
// attributes is exact (==): residual snapshots of an unchanged element
// reproduce the same multiplication, so bit-equality is the right notion of
// "unchanged" for a solver that promises byte-identical results.
//
// The scratch slices, when non-nil, are reused for the returned Nodes/Links
// to keep the hot repair path allocation-free.
func DiffNetworks(prev, cur *Network, nodeScratch []NodeID, linkScratch []int) (d NetworkDelta, ok bool) {
	if prev == nil || cur == nil || len(prev.Nodes) != len(cur.Nodes) || len(prev.Links) != len(cur.Links) {
		return NetworkDelta{}, false
	}
	d.Nodes = nodeScratch[:0]
	d.Links = linkScratch[:0]
	for i := range cur.Nodes {
		if prev.Nodes[i].Power != cur.Nodes[i].Power {
			d.Nodes = append(d.Nodes, NodeID(i))
		}
	}
	// Snapshots of one residual view share a topology index; when the
	// pointers differ, fall back to comparing endpoints link by link.
	structural := prev.topo != cur.topo
	for i := range cur.Links {
		p, c := prev.Links[i], cur.Links[i]
		if structural && (p.From != c.From || p.To != c.To) {
			return NetworkDelta{}, false
		}
		if p.BWMbps != c.BWMbps || p.MLDms != c.MLDms {
			d.Links = append(d.Links, i)
		}
	}
	return d, true
}
