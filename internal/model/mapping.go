package model

import (
	"errors"
	"fmt"
)

// ErrInfeasible is returned (possibly wrapped) by mappers when no valid
// mapping exists for a problem instance — e.g. the pipeline is longer than
// the longest end-to-end simple path and node reuse is disabled, a situation
// the paper explicitly calls out in Section 4.3.
var ErrInfeasible = errors.New("no feasible mapping")

// Mapping assigns every pipeline module to a network node. Assign[j] is the
// node executing module j. The walk through the network and the contiguous
// module groups (the paper's g_1..g_q) are derived views.
type Mapping struct {
	Assign []NodeID
}

// NewMapping copies assign into a Mapping.
func NewMapping(assign []NodeID) *Mapping {
	return &Mapping{Assign: append([]NodeID(nil), assign...)}
}

// Group is a maximal run of consecutive modules mapped to the same node:
// modules [First, Last] run on Node.
type Group struct {
	Node  NodeID
	First int // first module index in the group
	Last  int // last module index in the group (inclusive)
}

// Groups derives the contiguous module groups g_1..g_q of the mapping.
func (m *Mapping) Groups() []Group {
	if len(m.Assign) == 0 {
		return nil
	}
	var gs []Group
	cur := Group{Node: m.Assign[0], First: 0, Last: 0}
	for j := 1; j < len(m.Assign); j++ {
		if m.Assign[j] == cur.Node {
			cur.Last = j
			continue
		}
		gs = append(gs, cur)
		cur = Group{Node: m.Assign[j], First: j, Last: j}
	}
	return append(gs, cur)
}

// Walk returns the node sequence visited by the mapping (one entry per
// group). With node reuse the walk may revisit nodes.
func (m *Mapping) Walk() []NodeID {
	gs := m.Groups()
	walk := make([]NodeID, len(gs))
	for i, g := range gs {
		walk[i] = g.Node
	}
	return walk
}

// UsesReuse reports whether any network node appears in more than one group.
func (m *Mapping) UsesReuse() bool {
	seen := map[NodeID]bool{}
	for _, g := range m.Groups() {
		if seen[g.Node] {
			return true
		}
		seen[g.Node] = true
	}
	return false
}

// String renders the mapping compactly, e.g. "[M0-M1]@v0 -> [M2]@v4 -> [M3]@v5".
func (m *Mapping) String() string {
	gs := m.Groups()
	s := ""
	for i, g := range gs {
		if i > 0 {
			s += " -> "
		}
		if g.First == g.Last {
			s += fmt.Sprintf("[M%d]@v%d", g.First, g.Node)
		} else {
			s += fmt.Sprintf("[M%d-M%d]@v%d", g.First, g.Last, g.Node)
		}
	}
	return s
}

// ValidateOptions selects which structural constraints Validate enforces.
type ValidateOptions struct {
	Src, Dst NodeID
	// NoReuse requires every module to run on a distinct node (the paper's
	// restriction for the frame-rate problem).
	NoReuse bool
}

// Validate checks the mapping against a problem instance: correct length,
// source module on Src, sink module on Dst, an existing directed link
// between the nodes of consecutive groups, and (optionally) no node reuse.
// It returns a descriptive error for the first violation found.
func (m *Mapping) Validate(net *Network, pl *Pipeline, opt ValidateOptions) error {
	if len(m.Assign) != pl.N() {
		return fmt.Errorf("model: mapping assigns %d modules, pipeline has %d", len(m.Assign), pl.N())
	}
	for j, v := range m.Assign {
		if !net.ValidNode(v) {
			return fmt.Errorf("model: module %d assigned to invalid node %d", j, v)
		}
	}
	if m.Assign[0] != opt.Src {
		return fmt.Errorf("model: source module on node %d, want designated source %d", m.Assign[0], opt.Src)
	}
	if m.Assign[pl.N()-1] != opt.Dst {
		return fmt.Errorf("model: sink module on node %d, want designated destination %d", m.Assign[pl.N()-1], opt.Dst)
	}
	for j := 1; j < len(m.Assign); j++ {
		u, v := m.Assign[j-1], m.Assign[j]
		if u == v {
			if opt.NoReuse {
				return fmt.Errorf("model: modules %d and %d share node %d but reuse is disabled", j-1, j, u)
			}
			continue
		}
		if _, ok := net.LinkBetween(u, v); !ok {
			return fmt.Errorf("model: no link %d->%d required between modules %d and %d", u, v, j-1, j)
		}
	}
	if opt.NoReuse {
		seen := make(map[NodeID]int, len(m.Assign))
		for j, v := range m.Assign {
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("model: node %d reused by modules %d and %d but reuse is disabled", v, prev, j)
			}
			seen[v] = j
		}
	}
	return nil
}
