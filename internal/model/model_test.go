package model

import (
	"math"
	"strings"
	"testing"
)

// fixtureNetwork builds the small deterministic network used across model
// tests:
//
//	v0 --L0--> v1 --L1--> v2
//	 \                    ^
//	  +-------L2----------+
//	plus reverse link v1->v0 (L3).
func fixtureNetwork(t *testing.T) *Network {
	t.Helper()
	nodes := []Node{
		{ID: 0, Power: 1000},
		{ID: 1, Power: 2000},
		{ID: 2, Power: 500},
	}
	links := []Link{
		{ID: 0, From: 0, To: 1, BWMbps: 8, MLDms: 1},   // 1000 B/ms
		{ID: 1, From: 1, To: 2, BWMbps: 80, MLDms: 2},  // 10000 B/ms
		{ID: 2, From: 0, To: 2, BWMbps: 0.8, MLDms: 5}, // 100 B/ms
		{ID: 3, From: 1, To: 0, BWMbps: 8, MLDms: 1},
	}
	n, err := NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// fixturePipeline: M0 source (out 1000B), M1 (c=2, in 1000, out 500),
// M2 sink (c=4, in 500, out 0).
func fixturePipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline([]Module{
		{ID: 0, Complexity: 0, InBytes: 0, OutBytes: 1000},
		{ID: 1, Complexity: 2, InBytes: 1000, OutBytes: 500},
		{ID: 2, Complexity: 4, InBytes: 500, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewNetworkValidation(t *testing.T) {
	good := []Node{{ID: 0, Power: 1}, {ID: 1, Power: 1}}
	cases := []struct {
		name  string
		nodes []Node
		links []Link
	}{
		{"bad node id", []Node{{ID: 5, Power: 1}}, nil},
		{"zero power", []Node{{ID: 0, Power: 0}}, nil},
		{"bad link id", good, []Link{{ID: 3, From: 0, To: 1, BWMbps: 1}}},
		{"zero bw", good, []Link{{ID: 0, From: 0, To: 1, BWMbps: 0}}},
		{"negative mld", good, []Link{{ID: 0, From: 0, To: 1, BWMbps: 1, MLDms: -1}}},
		{"self loop", good, []Link{{ID: 0, From: 0, To: 0, BWMbps: 1}}},
		{"dup link", good, []Link{{ID: 0, From: 0, To: 1, BWMbps: 1}, {ID: 1, From: 0, To: 1, BWMbps: 2}}},
		{"out of range", good, []Link{{ID: 0, From: 0, To: 9, BWMbps: 1}}},
	}
	for _, c := range cases {
		if _, err := NewNetwork(c.nodes, c.links); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := fixtureNetwork(t)
	if n.N() != 3 || n.M() != 4 {
		t.Fatalf("N=%d M=%d", n.N(), n.M())
	}
	if n.Power(1) != 2000 {
		t.Errorf("Power(1) = %v", n.Power(1))
	}
	l, ok := n.LinkBetween(0, 1)
	if !ok || l.ID != 0 {
		t.Errorf("LinkBetween(0,1) = %+v, %v", l, ok)
	}
	if _, ok := n.LinkBetween(2, 0); ok {
		t.Error("LinkBetween(2,0) should not exist")
	}
	if !n.ValidNode(0) || n.ValidNode(3) || n.ValidNode(-1) {
		t.Error("ValidNode wrong")
	}
	if n.Topology().M() != 4 {
		t.Error("topology edge count mismatch")
	}
}

func TestNetworkClone(t *testing.T) {
	n := fixtureNetwork(t)
	c := n.Clone()
	c.Nodes[0].Power = 9999
	c.Links[0].BWMbps = 9999
	if n.Nodes[0].Power == 9999 || n.Links[0].BWMbps == 9999 {
		t.Error("Clone should deep-copy")
	}
	if c.Topology() == n.Topology() {
		t.Error("Clone should rebuild topology")
	}
}

func TestLinkConversions(t *testing.T) {
	l := Link{BWMbps: 8, MLDms: 3}
	if got := l.BytesPerMs(); got != 1000 {
		t.Errorf("BytesPerMs = %v, want 1000 (8 Mbps)", got)
	}
	if got := l.TransferTime(2000, false); got != 2 {
		t.Errorf("TransferTime without MLD = %v, want 2", got)
	}
	if got := l.TransferTime(2000, true); got != 5 {
		t.Errorf("TransferTime with MLD = %v, want 5", got)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	cases := []struct {
		name    string
		modules []Module
	}{
		{"too short", []Module{{ID: 0}}},
		{"bad id", []Module{{ID: 0, OutBytes: 1}, {ID: 5, Complexity: 1, InBytes: 1}}},
		{"source has complexity", []Module{{ID: 0, Complexity: 1, OutBytes: 1}, {ID: 1, Complexity: 1, InBytes: 1}}},
		{"flow mismatch", []Module{{ID: 0, OutBytes: 10}, {ID: 1, Complexity: 1, InBytes: 5}}},
		{"zero complexity interior", []Module{{ID: 0, OutBytes: 10}, {ID: 1, Complexity: 0, InBytes: 10}}},
		{"negative size", []Module{{ID: 0, OutBytes: -1}, {ID: 1, Complexity: 1, InBytes: -1}}},
	}
	for _, c := range cases {
		if _, err := NewPipeline(c.modules); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPipelineCostHelpers(t *testing.T) {
	p := fixturePipeline(t)
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	if got := p.ComputeOps(0); got != 0 {
		t.Errorf("source ops = %v, want 0", got)
	}
	if got := p.ComputeOps(1); got != 2000 {
		t.Errorf("M1 ops = %v, want 2000", got)
	}
	if got := p.ComputeTime(1, 1000); got != 2 {
		t.Errorf("M1 time at p=1000 = %v, want 2", got)
	}
	if got := p.OutBytes(1); got != 500 {
		t.Errorf("OutBytes(1) = %v", got)
	}
	if got := p.TotalOps(); got != 2000+2000 {
		t.Errorf("TotalOps = %v, want 4000", got)
	}
}

func TestMappingGroupsWalkString(t *testing.T) {
	m := NewMapping([]NodeID{0, 0, 1, 2, 2, 1})
	gs := m.Groups()
	want := []Group{
		{Node: 0, First: 0, Last: 1},
		{Node: 1, First: 2, Last: 2},
		{Node: 2, First: 3, Last: 4},
		{Node: 1, First: 5, Last: 5},
	}
	if len(gs) != len(want) {
		t.Fatalf("groups = %v", gs)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("group %d = %+v, want %+v", i, gs[i], want[i])
		}
	}
	walk := m.Walk()
	if len(walk) != 4 || walk[0] != 0 || walk[3] != 1 {
		t.Errorf("walk = %v", walk)
	}
	if !m.UsesReuse() {
		t.Error("mapping revisits node 1, UsesReuse should be true")
	}
	if m2 := NewMapping([]NodeID{0, 1, 2}); m2.UsesReuse() {
		t.Error("distinct mapping should not report reuse")
	}
	s := m.String()
	if !strings.Contains(s, "[M0-M1]@v0") || !strings.Contains(s, "->") {
		t.Errorf("String = %q", s)
	}
	if got := (&Mapping{}).Groups(); got != nil {
		t.Error("empty mapping should have nil groups")
	}
}

func TestValidate(t *testing.T) {
	net := fixtureNetwork(t)
	pl := fixturePipeline(t)
	opt := ValidateOptions{Src: 0, Dst: 2}

	if err := NewMapping([]NodeID{0, 1, 2}).Validate(net, pl, opt); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	// Grouped on source then jump to dst via L2.
	if err := NewMapping([]NodeID{0, 0, 2}).Validate(net, pl, opt); err != nil {
		t.Errorf("grouped mapping rejected: %v", err)
	}
	cases := []struct {
		name   string
		assign []NodeID
		opt    ValidateOptions
	}{
		{"wrong length", []NodeID{0, 2}, opt},
		{"bad node", []NodeID{0, 9, 2}, opt},
		{"wrong src", []NodeID{1, 1, 2}, opt},
		{"wrong dst", []NodeID{0, 1, 1}, opt},
		{"missing link", []NodeID{0, 2, 0}, ValidateOptions{Src: 0, Dst: 0}}, // no link 2->0 in fixture
		{"no reuse violated by grouping", []NodeID{0, 0, 2}, ValidateOptions{Src: 0, Dst: 2, NoReuse: true}},
	}
	for _, c := range cases {
		if err := NewMapping(c.assign).Validate(net, pl, c.opt); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Missing link case explicitly: 2 -> 0 has no link.
	if err := NewMapping([]NodeID{0, 2, 2}).Validate(net, pl, opt); err != nil {
		t.Errorf("0->2 grouped at dst should be valid: %v", err)
	}
	// Reuse of non-adjacent modules without NoReuse is fine (walk 0->1->0...):
	pl4, err := NewPipeline([]Module{
		{ID: 0, OutBytes: 100},
		{ID: 1, Complexity: 1, InBytes: 100, OutBytes: 100},
		{ID: 2, Complexity: 1, InBytes: 100, OutBytes: 100},
		{ID: 3, Complexity: 1, InBytes: 100, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewMapping([]NodeID{0, 1, 0, 2}).Validate(net, pl4, ValidateOptions{Src: 0, Dst: 2}); err != nil {
		t.Errorf("loop walk should be valid with reuse: %v", err)
	}
	if err := NewMapping([]NodeID{0, 1, 0, 2}).Validate(net, pl4, ValidateOptions{Src: 0, Dst: 2, NoReuse: true}); err == nil {
		t.Error("loop walk must be invalid without reuse")
	}
}

func TestTotalDelayKnown(t *testing.T) {
	net := fixtureNetwork(t)
	pl := fixturePipeline(t)
	opt := DefaultCostOptions()

	// Mapping 0 -> 1 -> 2:
	//  M1 on v1: 2*1000/2000 = 1 ms; M2 on v2: 4*500/500 = 4 ms
	//  transfer M0 out (1000B) over L0: 1000/1000 + 1 = 2 ms
	//  transfer M1 out (500B) over L1: 500/10000 + 2 = 2.05 ms
	m := NewMapping([]NodeID{0, 1, 2})
	want := 1 + 4 + 2 + 2.05
	if got := TotalDelay(net, pl, m, opt); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalDelay = %v, want %v", got, want)
	}
	// Without MLD: subtract 1+2.
	if got := TotalDelay(net, pl, m, CostOptions{}); math.Abs(got-(want-3)) > 1e-12 {
		t.Errorf("TotalDelay no-MLD = %v, want %v", got, want-3)
	}
	// Grouped mapping 0,0 -> 2: M1 on v0: 2*1000/1000=2; M2 on v2: 4;
	// transfer 500B over L2: 500/100 + 5 = 10.
	m2 := NewMapping([]NodeID{0, 0, 2})
	if got := TotalDelay(net, pl, m2, opt); math.Abs(got-16) > 1e-12 {
		t.Errorf("grouped TotalDelay = %v, want 16", got)
	}
	// Missing link -> +Inf.
	m3 := NewMapping([]NodeID{0, 2, 0})
	if got := TotalDelay(net, pl, m3, opt); !math.IsInf(got, 1) {
		t.Errorf("missing-link delay = %v, want +Inf", got)
	}
}

func TestBottleneckKnown(t *testing.T) {
	net := fixtureNetwork(t)
	pl := fixturePipeline(t)
	// Mapping 0 -> 1 -> 2: stage times: group{M0}@v0 = 0;
	// L0 transfer 1000/1000 = 1; group{M1}@v1 = 1; L1 transfer 500/10000 = 0.05;
	// group{M2}@v2 = 4. Bottleneck = 4.
	m := NewMapping([]NodeID{0, 1, 2})
	if got := Bottleneck(net, pl, m); math.Abs(got-4) > 1e-12 {
		t.Errorf("Bottleneck = %v, want 4", got)
	}
	if got := FrameRate(4); math.Abs(got-250) > 1e-12 {
		t.Errorf("FrameRate(4) = %v, want 250", got)
	}
	if got := Bottleneck(net, pl, NewMapping([]NodeID{0, 2, 0})); !math.IsInf(got, 1) {
		t.Errorf("missing-link bottleneck = %v, want +Inf", got)
	}
}

func TestSharedBottleneck(t *testing.T) {
	net := fixtureNetwork(t)
	pl4, err := NewPipeline([]Module{
		{ID: 0, OutBytes: 1000},
		{ID: 1, Complexity: 1, InBytes: 1000, OutBytes: 1000},
		{ID: 2, Complexity: 1, InBytes: 1000, OutBytes: 1000},
		{ID: 3, Complexity: 1, InBytes: 1000, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Walk 0 -> 1 -> 0 -> 2 revisits node 0: M2 runs on v0 (1000 ops / 1000 =
	// 1 ms) and M0 contributes 0, so v0 busy 1 ms; v1 busy 0.5 ms; v2 busy
	// 2 ms... M3 on v2: 1000/500 = 2 ms. Links: L0 (0->1) 1 ms, L3 (1->0)
	// 1 ms, L2 (0->2) 10 ms. SharedBottleneck = 10.
	m := NewMapping([]NodeID{0, 1, 0, 2})
	if got := SharedBottleneck(net, pl4, m); math.Abs(got-10) > 1e-12 {
		t.Errorf("SharedBottleneck = %v, want 10", got)
	}
	// For a reuse-free mapping it matches Bottleneck.
	m2 := NewMapping([]NodeID{0, 1, 2})
	pl := fixturePipeline(t)
	if a, b := SharedBottleneck(net, pl, m2), Bottleneck(net, pl, m2); math.Abs(a-b) > 1e-12 {
		t.Errorf("SharedBottleneck %v != Bottleneck %v for reuse-free mapping", a, b)
	}
	if got := SharedBottleneck(net, pl, NewMapping([]NodeID{0, 2, 0})); !math.IsInf(got, 1) {
		t.Error("missing link should be +Inf")
	}
}

func TestFrameRateEdgeCases(t *testing.T) {
	if FrameRate(0) != 0 || FrameRate(-1) != 0 || FrameRate(math.Inf(1)) != 0 || FrameRate(math.NaN()) != 0 {
		t.Error("degenerate bottlenecks should give 0 fps")
	}
}

func TestObjectiveString(t *testing.T) {
	if MinDelay.String() != "min-delay" || MaxFrameRate.String() != "max-frame-rate" {
		t.Error("objective strings wrong")
	}
	if Objective(42).String() == "" {
		t.Error("unknown objective should still render")
	}
}

func TestProblemScoreAndValidate(t *testing.T) {
	net := fixtureNetwork(t)
	pl := fixturePipeline(t)
	p := &Problem{Net: net, Pipe: pl, Src: 0, Dst: 2, Cost: DefaultCostOptions()}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMapping([]NodeID{0, 1, 2})
	if got, want := p.Score(m, MinDelay), TotalDelay(net, pl, m, p.Cost); got != want {
		t.Errorf("Score(MinDelay) = %v, want %v", got, want)
	}
	if got, want := p.Score(m, MaxFrameRate), Bottleneck(net, pl, m); got != want {
		t.Errorf("Score(MaxFrameRate) = %v, want %v", got, want)
	}
	if err := p.ValidateMapping(m, MaxFrameRate); err != nil {
		t.Errorf("distinct mapping should pass no-reuse validation: %v", err)
	}
	if err := p.ValidateMapping(NewMapping([]NodeID{0, 0, 2}), MaxFrameRate); err == nil {
		t.Error("reuse mapping must fail MaxFrameRate validation")
	}
	bad := &Problem{Net: net, Pipe: pl, Src: -1, Dst: 2}
	if err := bad.Validate(); err == nil {
		t.Error("invalid src should error")
	}
	bad2 := &Problem{Net: net, Pipe: pl, Src: 0, Dst: 99}
	if err := bad2.Validate(); err == nil {
		t.Error("invalid dst should error")
	}
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("nil net/pipe should error")
	}
}

func TestProblemScoreUnknownObjectivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown objective should panic")
		}
	}()
	net := fixtureNetwork(t)
	pl := fixturePipeline(t)
	p := &Problem{Net: net, Pipe: pl, Src: 0, Dst: 2}
	p.Score(NewMapping([]NodeID{0, 1, 2}), Objective(9))
}
