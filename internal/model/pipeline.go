package model

import "fmt"

// Module is one stage of a linear computing pipeline, mirroring the paper's
// four module parameters (ModuleID, ModuleComplexity, InputDataInBytes,
// OutputDataInBytes). Module 0 is the data source (no computation, per the
// paper's convention that M1 only transfers data); the last module is the
// end user / sink (computation but no further transfer).
type Module struct {
	ID         int     `json:"id"`
	Name       string  `json:"name,omitempty"`
	Complexity float64 `json:"complexity"` // c_j, ops per input byte
	InBytes    float64 `json:"in_bytes"`   // m_{j-1}
	OutBytes   float64 `json:"out_bytes"`  // m_j
}

// Pipeline is a linear sequence of modules M1..Mn.
type Pipeline struct {
	Modules []Module
}

// NewPipeline validates the module chain: at least two modules (source and
// sink — the paper notes a two-module pipeline reduces to client/server),
// dense IDs, non-negative complexities and sizes, a zero-complexity source
// module, and consistent data flow (module j's InBytes equals module j-1's
// OutBytes).
func NewPipeline(modules []Module) (*Pipeline, error) {
	if len(modules) < 2 {
		return nil, fmt.Errorf("model: pipeline needs at least 2 modules (source and sink), got %d", len(modules))
	}
	for j, m := range modules {
		if m.ID != j {
			return nil, fmt.Errorf("model: module %d has ID %d; modules must be densely numbered", j, m.ID)
		}
		if m.Complexity < 0 || m.InBytes < 0 || m.OutBytes < 0 {
			return nil, fmt.Errorf("model: module %d has negative attribute", j)
		}
		if j == 0 {
			if m.Complexity != 0 {
				return nil, fmt.Errorf("model: source module must have zero complexity (it only transfers data), got %v", m.Complexity)
			}
			continue
		}
		if m.InBytes != modules[j-1].OutBytes {
			return nil, fmt.Errorf("model: module %d InBytes %v != module %d OutBytes %v",
				j, m.InBytes, j-1, modules[j-1].OutBytes)
		}
		if m.Complexity == 0 {
			return nil, fmt.Errorf("model: non-source module %d must have positive complexity", j)
		}
	}
	return &Pipeline{Modules: modules}, nil
}

// N returns the number of modules.
func (p *Pipeline) N() int { return len(p.Modules) }

// ComputeOps returns the number of operations module j performs
// (c_j · m_{j-1}); zero for the source module.
func (p *Pipeline) ComputeOps(j int) float64 {
	m := p.Modules[j]
	return m.Complexity * m.InBytes
}

// ComputeTime returns T_compute(M_j on node with given power) = c_j·m_{j-1}/p
// in ms. The source module computes in zero time by construction.
func (p *Pipeline) ComputeTime(j int, power float64) float64 {
	return p.ComputeOps(j) / power
}

// OutBytes returns m_j, the output size of module j.
func (p *Pipeline) OutBytes(j int) float64 { return p.Modules[j].OutBytes }

// TotalOps returns the total computation in the pipeline, a convenient
// workload magnitude metric for the harness.
func (p *Pipeline) TotalOps() float64 {
	t := 0.0
	for j := range p.Modules {
		t += p.ComputeOps(j)
	}
	return t
}
