package model

import (
	"math"
	"testing"
)

// residualTestNet builds a 3-node line v0 -> v1 -> v2 with known attributes:
// powers 1000/2000/4000 ops/ms, both links 80 Mbps (10000 bytes/ms), MLD 1 ms.
func residualTestNet(t *testing.T) *Network {
	t.Helper()
	net, err := NewNetwork(
		[]Node{
			{ID: 0, Power: 1000},
			{ID: 1, Power: 2000},
			{ID: 2, Power: 4000},
		},
		[]Link{
			{ID: 0, From: 0, To: 1, BWMbps: 80, MLDms: 1},
			{ID: 1, From: 1, To: 2, BWMbps: 80, MLDms: 1},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// residualTestPipe builds a 3-module pipeline: source emits 10000 bytes,
// stage-1 (complexity 10) emits 5000 bytes, sink (complexity 4) emits none.
func residualTestPipe(t *testing.T) *Pipeline {
	t.Helper()
	pl, err := NewPipeline([]Module{
		{ID: 0, OutBytes: 10000},
		{ID: 1, Complexity: 10, InBytes: 10000, OutBytes: 5000},
		{ID: 2, Complexity: 4, InBytes: 5000, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestMappingReservationUtilization(t *testing.T) {
	net := residualTestNet(t)
	pl := residualTestPipe(t)
	m := NewMapping([]NodeID{0, 1, 2})

	// At 10 fps (one frame per 100 ms):
	//   node 1: 10*10000/2000 = 50 ms/frame -> 0.5 utilization
	//   node 2: 4*5000/4000  = 5 ms/frame  -> 0.05
	//   link 0: 10000/10000  = 1 ms/frame  -> 0.01
	//   link 1: 5000/10000   = 0.5 ms/frame -> 0.005
	res, err := MappingReservation(net, pl, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := struct {
		node [3]float64
		link [2]float64
	}{
		node: [3]float64{0, 0.5, 0.05},
		link: [2]float64{0.01, 0.005},
	}
	for v, w := range want.node {
		if math.Abs(res.NodeFrac[v]-w) > 1e-12 {
			t.Errorf("node %d utilization = %v, want %v", v, res.NodeFrac[v], w)
		}
	}
	for l, w := range want.link {
		if math.Abs(res.LinkFrac[l]-w) > 1e-12 {
			t.Errorf("link %d utilization = %v, want %v", l, res.LinkFrac[l], w)
		}
	}

	// Zero rate reserves nothing.
	zero, err := MappingReservation(net, pl, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range append(zero.NodeFrac, zero.LinkFrac...) {
		if f != 0 {
			t.Fatalf("zero-rate reservation has nonzero fraction %v", f)
		}
	}
}

func TestMappingReservationAccumulatesReuse(t *testing.T) {
	net := residualTestNet(t)
	pl := residualTestPipe(t)
	// All modules on node 0: its utilization is the sum of both compute terms.
	m := NewMapping([]NodeID{0, 0, 0})
	res, err := MappingReservation(net, pl, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (10*10000 + 4*5000)/1000 = 120 ms/frame at 1 fps -> 0.12.
	if got, want := res.NodeFrac[0], 0.12; math.Abs(got-want) > 1e-12 {
		t.Errorf("reused node utilization = %v, want %v", got, want)
	}
}

func TestResidualSnapshotScalesCapacity(t *testing.T) {
	net := residualTestNet(t)
	r := NewResidualNetwork(net)

	res := Reservation{NodeFrac: []float64{0.25, 0.5, 0}, LinkFrac: []float64{0.75, 0}}
	if !r.Fits(res) {
		t.Fatal("reservation should fit an empty network")
	}
	if err := r.SetLoad([]Reservation{res}); err != nil {
		t.Fatal(err)
	}

	snap := r.Snapshot()
	if got, want := snap.Power(0), 750.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("node 0 residual power = %v, want %v", got, want)
	}
	if got, want := snap.Power(1), 1000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("node 1 residual power = %v, want %v", got, want)
	}
	if got, want := snap.Links[0].BWMbps, 20.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("link 0 residual bandwidth = %v, want %v", got, want)
	}
	// MLD is propagation latency: load does not change it.
	if got, want := snap.Links[0].MLDms, 1.0; got != want {
		t.Errorf("link 0 MLD = %v, want %v", got, want)
	}
	// The base network is untouched.
	if net.Power(0) != 1000 || net.Links[0].BWMbps != 80 {
		t.Error("snapshot mutated the base network")
	}
}

func TestResidualSaturationFloor(t *testing.T) {
	net := residualTestNet(t)
	r := NewResidualNetwork(net)
	if err := r.SetLoad([]Reservation{{
		NodeFrac: []float64{1, 0, 0},
		LinkFrac: []float64{1, 0},
	}}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Power(0) <= 0 {
		t.Error("saturated node must keep positive (floored) power")
	}
	if got, want := snap.Power(0), 1000*MinResidualFraction; math.Abs(got-want) > 1e-18 {
		t.Errorf("saturated node power = %v, want floor %v", got, want)
	}
	if r.NodeResidual(0) != 0 {
		t.Errorf("NodeResidual of saturated node = %v, want 0", r.NodeResidual(0))
	}
	// Anything more does not fit.
	if r.Fits(Reservation{NodeFrac: []float64{1e-6, 0, 0}, LinkFrac: []float64{0, 0}}) {
		t.Error("reservation on a saturated node must not fit")
	}
}

func TestResidualSetLoadExactRestore(t *testing.T) {
	net := residualTestNet(t)
	r := NewResidualNetwork(net)
	a := Reservation{NodeFrac: []float64{0.1, 0.2, 0.3}, LinkFrac: []float64{0.05, 0.15}}
	b := Reservation{NodeFrac: []float64{0.3, 0.1, 0.2}, LinkFrac: []float64{0.25, 0.05}}
	if err := r.SetLoad([]Reservation{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLoad(nil); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < net.N(); v++ {
		if got := r.NodeLoad(NodeID(v)); got != 0 {
			t.Errorf("node %d load after full release = %v, want exactly 0", v, got)
		}
	}
	for l := 0; l < net.M(); l++ {
		if got := r.LinkLoad(l); got != 0 {
			t.Errorf("link %d load after full release = %v, want exactly 0", l, got)
		}
	}
	snap := r.Snapshot()
	for v := 0; v < net.N(); v++ {
		if snap.Power(NodeID(v)) != net.Power(NodeID(v)) {
			t.Errorf("node %d power after full release = %v, want %v",
				v, snap.Power(NodeID(v)), net.Power(NodeID(v)))
		}
	}
}

func TestResidualShapeMismatch(t *testing.T) {
	net := residualTestNet(t)
	r := NewResidualNetwork(net)
	bad := Reservation{NodeFrac: []float64{0.1}, LinkFrac: []float64{0.1, 0.1}}
	if err := r.SetLoad([]Reservation{bad}); err == nil {
		t.Error("SetLoad accepted a mis-shaped reservation")
	}
	if r.Fits(bad) {
		t.Error("Fits accepted a mis-shaped reservation")
	}
}
