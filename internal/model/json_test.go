package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	n := fixtureNetwork(t)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != n.N() || back.M() != n.M() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", back.N(), back.M(), n.N(), n.M())
	}
	for i := range n.Links {
		if back.Links[i] != n.Links[i] {
			t.Errorf("link %d: %+v vs %+v", i, back.Links[i], n.Links[i])
		}
	}
	if _, ok := back.LinkBetween(0, 1); !ok {
		t.Error("topology index not rebuilt on unmarshal")
	}
}

func TestPipelineJSONRoundTrip(t *testing.T) {
	p := fixturePipeline(t)
	var buf bytes.Buffer
	if err := WritePipeline(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != p.N() {
		t.Fatalf("round trip module count: %d vs %d", back.N(), p.N())
	}
	for i := range p.Modules {
		if back.Modules[i] != p.Modules[i] {
			t.Errorf("module %d: %+v vs %+v", i, back.Modules[i], p.Modules[i])
		}
	}
}

func TestReadNetworkRejectsInvalid(t *testing.T) {
	// Valid JSON but invalid network (zero power).
	bad := `{"nodes":[{"id":0,"power":0}],"links":[]}`
	if _, err := ReadNetwork(strings.NewReader(bad)); err == nil {
		t.Error("invalid network should be rejected on read")
	}
	if _, err := ReadNetwork(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON should be rejected")
	}
}

func TestReadPipelineRejectsInvalid(t *testing.T) {
	bad := `{"modules":[{"id":0,"out_bytes":10}]}` // too short
	if _, err := ReadPipeline(strings.NewReader(bad)); err == nil {
		t.Error("invalid pipeline should be rejected on read")
	}
	if _, err := ReadPipeline(strings.NewReader("nope")); err == nil {
		t.Error("malformed JSON should be rejected")
	}
}
