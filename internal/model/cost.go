package model

import "math"

// CostOptions tunes the analytical cost model.
type CostOptions struct {
	// IncludeMLDInDelay adds the minimum link delay d_{u,v} to every
	// inter-group transfer when computing total end-to-end delay. The
	// paper's Section 2.2 link model includes MLD while Eq. 1 omits it;
	// DefaultCostOptions includes it (the stated link model), and setting
	// this false reproduces Eq. 1 verbatim.
	//
	// MLD never enters the frame-rate bottleneck (Eq. 2): propagation
	// latency does not occupy a link, so it shifts frames in time without
	// limiting the sustainable rate. The DES in internal/sim confirms this.
	IncludeMLDInDelay bool
}

// DefaultCostOptions is the configuration used throughout the evaluation.
func DefaultCostOptions() CostOptions {
	return CostOptions{IncludeMLDInDelay: true}
}

// TotalDelay evaluates Eq. 1: the end-to-end delay of the mapping, i.e. the
// sum of per-group computing times (on each group's node) plus the
// inter-group transport times of the group output messages. Intra-group
// transfers are free (same node). The mapping is assumed structurally valid;
// a missing link between consecutive groups yields +Inf.
func TotalDelay(net *Network, pl *Pipeline, m *Mapping, opt CostOptions) float64 {
	groups := m.Groups()
	total := 0.0
	for gi, g := range groups {
		power := net.Power(g.Node)
		for j := g.First; j <= g.Last; j++ {
			total += pl.ComputeTime(j, power)
		}
		if gi+1 < len(groups) {
			link, ok := net.LinkBetween(g.Node, groups[gi+1].Node)
			if !ok {
				return math.Inf(1)
			}
			total += link.TransferTime(pl.OutBytes(g.Last), opt.IncludeMLDInDelay)
		}
	}
	return total
}

// Bottleneck evaluates Eq. 2: the time of the slowest stage of the mapped
// pipeline — the maximum over per-group computing times and inter-group
// transfer times (bandwidth term only; see CostOptions). A missing link
// yields +Inf. The achievable frame rate is 1/Bottleneck.
//
// Bottleneck treats each group and each transfer as an independent resource,
// which matches the paper's no-reuse streaming model. When a mapping reuses
// nodes, use SharedBottleneck instead.
func Bottleneck(net *Network, pl *Pipeline, m *Mapping) float64 {
	groups := m.Groups()
	worst := 0.0
	for gi, g := range groups {
		power := net.Power(g.Node)
		groupCompute := 0.0
		for j := g.First; j <= g.Last; j++ {
			groupCompute += pl.ComputeTime(j, power)
		}
		if groupCompute > worst {
			worst = groupCompute
		}
		if gi+1 < len(groups) {
			link, ok := net.LinkBetween(g.Node, groups[gi+1].Node)
			if !ok {
				return math.Inf(1)
			}
			if t := link.TransferTime(pl.OutBytes(g.Last), false); t > worst {
				worst = t
			}
		}
	}
	return worst
}

// SharedBottleneck generalizes Eq. 2 to mappings that reuse nodes or links
// (the paper's Section 5 future-work setting): each physical resource is
// occupied for the sum of the work of all groups/transfers placed on it per
// frame, and the sustainable period is the maximum total occupancy. For
// reuse-free mappings it equals Bottleneck.
func SharedBottleneck(net *Network, pl *Pipeline, m *Mapping) float64 {
	groups := m.Groups()
	nodeBusy := make(map[NodeID]float64)
	linkBusy := make(map[int]float64)
	for gi, g := range groups {
		power := net.Power(g.Node)
		for j := g.First; j <= g.Last; j++ {
			nodeBusy[g.Node] += pl.ComputeTime(j, power)
		}
		if gi+1 < len(groups) {
			link, ok := net.LinkBetween(g.Node, groups[gi+1].Node)
			if !ok {
				return math.Inf(1)
			}
			linkBusy[link.ID] += link.TransferTime(pl.OutBytes(g.Last), false)
		}
	}
	worst := 0.0
	for _, t := range nodeBusy {
		if t > worst {
			worst = t
		}
	}
	for _, t := range linkBusy {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// FrameRate converts a bottleneck period in ms to frames per second.
// A zero, negative, or infinite bottleneck yields 0.
func FrameRate(bottleneckMs float64) float64 {
	if bottleneckMs <= 0 || math.IsInf(bottleneckMs, 1) || math.IsNaN(bottleneckMs) {
		return 0
	}
	return 1000.0 / bottleneckMs
}
