package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
}

// MarshalJSON implements json.Marshaler.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{Nodes: n.Nodes, Links: n.Links})
}

// UnmarshalJSON implements json.Unmarshaler, revalidating the network.
func (n *Network) UnmarshalJSON(data []byte) error {
	var w networkJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	built, err := NewNetwork(w.Nodes, w.Links)
	if err != nil {
		return err
	}
	*n = *built
	return nil
}

// pipelineJSON is the wire form of a Pipeline.
type pipelineJSON struct {
	Modules []Module `json:"modules"`
}

// MarshalJSON implements json.Marshaler.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(pipelineJSON{Modules: p.Modules})
}

// UnmarshalJSON implements json.Unmarshaler, revalidating the pipeline.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var w pipelineJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	built, err := NewPipeline(w.Modules)
	if err != nil {
		return err
	}
	*p = *built
	return nil
}

// WriteNetwork writes the network as indented JSON.
func WriteNetwork(w io.Writer, n *Network) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// ReadNetwork parses and validates a network from JSON.
func ReadNetwork(r io.Reader) (*Network, error) {
	var n Network
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("model: reading network: %w", err)
	}
	return &n, nil
}

// WritePipeline writes the pipeline as indented JSON.
func WritePipeline(w io.Writer, p *Pipeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPipeline parses and validates a pipeline from JSON.
func ReadPipeline(r io.Reader) (*Pipeline, error) {
	var p Pipeline
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: reading pipeline: %w", err)
	}
	return &p, nil
}
