package model

import "fmt"

// Objective selects which of the paper's two optimization problems a mapper
// solves.
type Objective int

const (
	// MinDelay minimizes end-to-end delay (interactive applications);
	// node reuse is permitted.
	MinDelay Objective = iota
	// MaxFrameRate maximizes frame rate, i.e. minimizes the bottleneck
	// (streaming applications); node reuse is forbidden.
	MaxFrameRate
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinDelay:
		return "min-delay"
	case MaxFrameRate:
		return "max-frame-rate"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Problem bundles one pipeline-mapping instance: the network, the pipeline,
// the designated source and destination nodes (where the raw data lives and
// where the end user sits), and cost-model options.
type Problem struct {
	Net  *Network
	Pipe *Pipeline
	Src  NodeID
	Dst  NodeID
	Cost CostOptions
}

// Validate checks the problem's structural sanity.
func (p *Problem) Validate() error {
	if p.Net == nil || p.Pipe == nil {
		return fmt.Errorf("model: problem missing network or pipeline")
	}
	if !p.Net.ValidNode(p.Src) {
		return fmt.Errorf("model: invalid source node %d", p.Src)
	}
	if !p.Net.ValidNode(p.Dst) {
		return fmt.Errorf("model: invalid destination node %d", p.Dst)
	}
	if p.Src == p.Dst && p.Pipe.N() > 1 {
		// Allowed (q=1, whole pipeline on one computer) only when reuse is
		// permitted; mappers decide, so the problem itself stays valid.
		return nil
	}
	return nil
}

// Score evaluates a mapping under the problem's objective: total delay in ms
// for MinDelay, bottleneck period in ms for MaxFrameRate (smaller is better
// for both, which keeps comparisons uniform across mappers).
func (p *Problem) Score(m *Mapping, obj Objective) float64 {
	switch obj {
	case MinDelay:
		return TotalDelay(p.Net, p.Pipe, m, p.Cost)
	case MaxFrameRate:
		return Bottleneck(p.Net, p.Pipe, m)
	default:
		panic(fmt.Sprintf("model: unknown objective %d", int(obj)))
	}
}

// ValidateMapping checks m against the structural rules of the objective
// (reuse allowed for MinDelay, forbidden for MaxFrameRate).
func (p *Problem) ValidateMapping(m *Mapping, obj Objective) error {
	return m.Validate(p.Net, p.Pipe, ValidateOptions{
		Src:     p.Src,
		Dst:     p.Dst,
		NoReuse: obj == MaxFrameRate,
	})
}

// Mapper is the common interface implemented by ELPC and the comparison
// algorithms (Streamline, Greedy, exhaustive search). Map returns
// ErrInfeasible (possibly wrapped) when no valid mapping exists or the
// heuristic fails to find one.
type Mapper interface {
	// Name identifies the algorithm in tables and figures.
	Name() string
	// Map solves the problem under the given objective.
	Map(p *Problem, obj Objective) (*Mapping, error)
}
