package model

import (
	"errors"
	"fmt"
)

// ErrUnknownTarget is returned (wrapped) when a churn event names a node or
// link that does not exist in the network.
var ErrUnknownTarget = errors.New("unknown churn target")

// ErrChurnConflict is returned (wrapped) when a churn event contradicts the
// current capacity state: NodeDown on a node that is already down, NodeUp on
// a node that is up, or CapacityDrift on a down node. Conflicts abort the
// whole batch (ApplyChurn is transactional), so a duplicate failure report
// can never double-apply.
var ErrChurnConflict = errors.New("conflicting churn event")

// ChurnKind names one kind of network mutation. The string values are the
// wire form used by the elpcd /v1/events endpoint.
type ChurnKind string

const (
	// NodeDown fails a node: its capacity factor drops to zero, so no
	// reservation fits on it and residual snapshots price it out of every
	// solve.
	NodeDown ChurnKind = "node_down"
	// NodeUp restores a failed node to full nominal capacity.
	NodeUp ChurnKind = "node_up"
	// LinkDegrade reduces a link to Factor of its nominal bandwidth
	// (0 < Factor < 1). Degrading an already degraded link re-sets the
	// factor; it does not compound.
	LinkDegrade ChurnKind = "link_degrade"
	// LinkRestore returns a link to full nominal bandwidth. Restoring an
	// undegraded link is a no-op, so restores are idempotent.
	LinkRestore ChurnKind = "link_restore"
	// CapacityDrift multiplies a node's or link's capacity factor by Factor
	// (> 0), modeling gradual capacity change; the result is clamped to at
	// most 1 (nominal). Drift on a down node conflicts — a failed node has
	// no capacity to drift.
	CapacityDrift ChurnKind = "capacity_drift"
)

// Valid reports whether k names a known churn kind.
func (k ChurnKind) Valid() bool {
	switch k {
	case NodeDown, NodeUp, LinkDegrade, LinkRestore, CapacityDrift:
		return true
	}
	return false
}

// ChurnTarget selects what a CapacityDrift event applies to.
type ChurnTarget string

const (
	// TargetNode drifts a node's processing power.
	TargetNode ChurnTarget = "node"
	// TargetLink drifts a link's bandwidth.
	TargetLink ChurnTarget = "link"
)

// ChurnEvent is one network mutation. Node events (NodeDown, NodeUp) read
// Node; link events (LinkDegrade, LinkRestore) read Link; CapacityDrift
// reads Target to decide which of the two it addresses (empty defaults to
// TargetNode). Factor is required by LinkDegrade (absolute fraction of
// nominal, in (0,1)) and CapacityDrift (multiplicative, > 0).
type ChurnEvent struct {
	Kind   ChurnKind   `json:"kind"`
	Target ChurnTarget `json:"target,omitempty"`
	Node   NodeID      `json:"node,omitempty"`
	Link   int         `json:"link,omitempty"`
	Factor float64     `json:"factor,omitempty"`
}

// String renders the event compactly for logs: "node_down v3",
// "link_degrade l17 x0.40".
func (e ChurnEvent) String() string {
	switch e.Kind {
	case NodeDown, NodeUp:
		return fmt.Sprintf("%s v%d", e.Kind, e.Node)
	case LinkDegrade:
		return fmt.Sprintf("%s l%d x%.2f", e.Kind, e.Link, e.Factor)
	case LinkRestore:
		return fmt.Sprintf("%s l%d", e.Kind, e.Link)
	case CapacityDrift:
		if e.OnLink() {
			return fmt.Sprintf("%s l%d x%.2f", e.Kind, e.Link, e.Factor)
		}
		return fmt.Sprintf("%s v%d x%.2f", e.Kind, e.Node, e.Factor)
	}
	return string(e.Kind)
}

// OnLink reports whether the event addresses a link (rather than a node).
func (e ChurnEvent) OnLink() bool {
	switch e.Kind {
	case LinkDegrade, LinkRestore:
		return true
	case CapacityDrift:
		return e.Target == TargetLink
	}
	return false
}

// applyChurnEvent validates ev against the scratch capacity factors and
// applies it to them. nodeCap and linkCap are the transaction's working
// copies; the caller commits them only when every event applies cleanly.
func applyChurnEvent(ev ChurnEvent, nodeCap, linkCap []float64) error {
	checkNode := func() error {
		if int(ev.Node) < 0 || int(ev.Node) >= len(nodeCap) {
			return fmt.Errorf("model: %w: node %d (network has %d nodes)", ErrUnknownTarget, ev.Node, len(nodeCap))
		}
		return nil
	}
	checkLink := func() error {
		if ev.Link < 0 || ev.Link >= len(linkCap) {
			return fmt.Errorf("model: %w: link %d (network has %d links)", ErrUnknownTarget, ev.Link, len(linkCap))
		}
		return nil
	}
	switch ev.Kind {
	case NodeDown:
		if err := checkNode(); err != nil {
			return err
		}
		if nodeCap[ev.Node] == 0 {
			return fmt.Errorf("model: %w: node %d is already down", ErrChurnConflict, ev.Node)
		}
		nodeCap[ev.Node] = 0
	case NodeUp:
		if err := checkNode(); err != nil {
			return err
		}
		if nodeCap[ev.Node] > 0 {
			return fmt.Errorf("model: %w: node %d is not down", ErrChurnConflict, ev.Node)
		}
		nodeCap[ev.Node] = 1
	case LinkDegrade:
		if err := checkLink(); err != nil {
			return err
		}
		if ev.Factor <= 0 || ev.Factor >= 1 {
			return fmt.Errorf("model: link_degrade factor must be in (0,1), got %v", ev.Factor)
		}
		linkCap[ev.Link] = ev.Factor
	case LinkRestore:
		if err := checkLink(); err != nil {
			return err
		}
		linkCap[ev.Link] = 1
	case CapacityDrift:
		if ev.Factor <= 0 {
			return fmt.Errorf("model: capacity_drift factor must be positive, got %v", ev.Factor)
		}
		if ev.OnLink() {
			if err := checkLink(); err != nil {
				return err
			}
			linkCap[ev.Link] = clampCap(linkCap[ev.Link] * ev.Factor)
		} else {
			if ev.Target != "" && ev.Target != TargetNode {
				return fmt.Errorf("model: capacity_drift target must be %q or %q, got %q", TargetNode, TargetLink, ev.Target)
			}
			if err := checkNode(); err != nil {
				return err
			}
			if nodeCap[ev.Node] == 0 {
				return fmt.Errorf("model: %w: node %d is down, cannot drift", ErrChurnConflict, ev.Node)
			}
			nodeCap[ev.Node] = clampCap(nodeCap[ev.Node] * ev.Factor)
		}
	default:
		return fmt.Errorf("model: unknown churn kind %q", ev.Kind)
	}
	return nil
}

// clampCap bounds a drifted capacity factor to at most nominal.
func clampCap(f float64) float64 {
	if f > 1 {
		return 1
	}
	return f
}

// ApplyChurn applies the events to the residual view's capacity factors in
// order, transactionally: either every event applies and the new factors
// commit atomically, or the first invalid event (unknown target, conflicting
// state, bad factor) aborts the whole batch and the view is left exactly as
// it was. Outstanding loads are untouched — churn changes what the network
// can carry, not what tenants have reserved — so after a capacity-reducing
// batch, Fits/NodeResidual may report elements over capacity until the
// caller repairs or evicts the touching reservations.
func (r *ResidualNetwork) ApplyChurn(events []ChurnEvent) error {
	nodeCap := append([]float64(nil), r.nodeCap...)
	linkCap := append([]float64(nil), r.linkCap...)
	for i, ev := range events {
		if err := applyChurnEvent(ev, nodeCap, linkCap); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, ev, err)
		}
	}
	r.nodeCap = nodeCap
	r.linkCap = linkCap
	return nil
}

// NodeCapacity returns node v's capacity factor: 1 nominal, 0 down,
// in between for drifted nodes.
func (r *ResidualNetwork) NodeCapacity(v NodeID) float64 { return r.nodeCap[v] }

// LinkCapacity returns link id's capacity factor.
func (r *ResidualNetwork) LinkCapacity(id int) float64 { return r.linkCap[id] }

// NodeIsDown reports whether node v is failed (capacity factor zero).
func (r *ResidualNetwork) NodeIsDown(v NodeID) bool { return r.nodeCap[v] == 0 }
