package harness

import (
	"strings"
	"testing"

	"elpc/internal/gen"
)

func TestRunWarmScenario(t *testing.T) {
	res, err := RunWarmScenario(gen.Suite20()[1], gen.DefaultChurnSpec(), 16, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 60 {
		t.Errorf("events = %d, want 60", res.Events)
	}
	if res.Deployments == 0 {
		t.Error("no deployments admitted before the trace")
	}
	// The warm replay must actually reuse grids: the churn trace perturbs
	// capacities, so repair re-solves should land as partials (or hits),
	// not all rebuilds.
	if res.Partials+res.Hits == 0 {
		t.Errorf("no grid reuse recorded: %+v", res)
	}
	if res.HitRatio <= 0.5 {
		t.Errorf("warm-hit ratio %.3f, want > 0.5 on the pinned trace", res.HitRatio)
	}
	table := WarmScenarioTable(res)
	for _, want := range []string{"warm-hit ratio", "repair speedup", "end state"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
