package harness

import (
	"strings"
	"testing"

	"elpc/internal/gen"
)

// testScaleSpec shrinks the scenario for unit-test speed.
func testScaleSpec() ScaleSpec {
	return ScaleSpec{
		Cluster:       gen.ClusterSpec{Clusters: 3, Nodes: 8, Links: 20, InterLinks: 8},
		Shards:        3,
		Tenants:       18,
		InterFraction: 0.2,
		Seed:          11,
	}
}

func TestRunScaleScenario(t *testing.T) {
	res, err := RunScaleScenario(testScaleSpec())
	if err != nil {
		t.Fatalf("scale scenario: %v", err)
	}
	if res.Tenants != 18 || res.Shards != 3 {
		t.Fatalf("spec not echoed: %+v", res)
	}
	if res.AdmittedSharded == 0 || res.AdmittedSingle == 0 {
		t.Fatalf("nothing admitted: %+v", res)
	}
	// Sharding must not collapse admission quality on the calibrated mix.
	if res.AdmissionRateSharded < res.AdmissionRateSingle-0.25 {
		t.Fatalf("sharded admission rate %v far below unsharded %v", res.AdmissionRateSharded, res.AdmissionRateSingle)
	}
	if res.SingleMs <= 0 || res.ShardedMs <= 0 || res.Speedup <= 0 {
		t.Fatalf("timings not populated: %+v", res)
	}

	// Deterministic quality metrics: a second run reproduces them exactly.
	again, err := RunScaleScenario(testScaleSpec())
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if again.AdmittedSingle != res.AdmittedSingle || again.AdmittedSharded != res.AdmittedSharded ||
		again.MeanRateSingle != res.MeanRateSingle || again.MeanRateSharded != res.MeanRateSharded ||
		again.CrossDeployments != res.CrossDeployments {
		t.Fatalf("scale scenario not deterministic:\n  first:  %+v\n  second: %+v", res, again)
	}

	table := ScaleScenarioTable(res)
	for _, want := range []string{"## Scale scenario", "admission rate", "deploy speedup"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
