package harness

import (
	"testing"

	"elpc/internal/gen"
)

// crashSpec trims the default churn trace so the crash scenario stays
// fast enough for the CI recovery gate while still parking and preempting.
func crashSpec() gen.ChurnSpec {
	cs := gen.DefaultChurnSpec()
	cs.Events = 6
	return cs
}

// TestRunCrashScenario is the recovery gate's entry point: the scenario
// itself errors when any crash point recovers to a state no operation
// acknowledged, so the test mostly asserts the sweep actually covered the
// interesting territory.
func TestRunCrashScenario(t *testing.T) {
	r, err := RunCrashScenario(gen.Suite20()[1], crashSpec(), 14, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records == 0 || r.LogBytes == 0 {
		t.Fatalf("scenario produced no durable log: %+v", r)
	}
	if r.SuffixBytes == 0 {
		t.Fatalf("snapshot regime left no suffix segment: %+v", r)
	}
	if r.Trials < 8 {
		t.Fatalf("only %d crash points exercised", r.Trials)
	}
	if r.TornTrials == 0 {
		t.Fatal("no crash point landed mid-record; torn-tail recovery was never exercised")
	}
	if r.SnapshotTrials == 0 {
		t.Fatal("no crash point recovered through the snapshot")
	}
	if r.DistinctStates < 3 {
		t.Fatalf("crash points recovered into only %d distinct states; the sweep is degenerate", r.DistinctStates)
	}
	if r.FinalDeployments == 0 {
		t.Fatal("workload ended with an empty fleet; the scenario proves nothing")
	}

	table := CrashScenarioTable(r)
	if table == "" {
		t.Fatal("empty table")
	}
}

// TestRunCrashScenarioDeterministic pins the scenario's seeded outcome:
// two runs with the same inputs must agree exactly, or the recovery gate
// becomes flaky.
func TestRunCrashScenarioDeterministic(t *testing.T) {
	a, err := RunCrashScenario(gen.Suite20()[1], crashSpec(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrashScenario(gen.Suite20()[1], crashSpec(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("scenario is not deterministic:\n a: %+v\n b: %+v", *a, *b)
	}
}
