package harness

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"elpc/internal/gen"
)

// shortSuite is the first few (fast) cases.
func shortSuite() []gen.CaseSpec { return gen.Suite20()[:4] }

func TestRunCaseProducesAllOutcomes(t *testing.T) {
	res, err := RunCase(gen.SmallCase())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range MapperNames() {
		if _, ok := res.Delay[n]; !ok {
			t.Errorf("missing delay outcome for %s", n)
		}
		if _, ok := res.Rate[n]; !ok {
			t.Errorf("missing rate outcome for %s", n)
		}
	}
	// ELPC is optimal for delay: no feasible algorithm may beat it.
	elpc := res.Delay["ELPC"]
	if !elpc.Feasible {
		t.Fatal("ELPC infeasible on the small case")
	}
	for _, n := range MapperNames() {
		o := res.Delay[n]
		if o.Feasible && o.Value < elpc.Value*(1-1e-9) {
			t.Errorf("%s delay %v beats optimal ELPC %v", n, o.Value, elpc.Value)
		}
	}
}

func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	specs := shortSuite()
	seq, err := RunSuite(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuite(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		for _, n := range MapperNames() {
			a, b := seq[i].Delay[n], par[i].Delay[n]
			if a.Feasible != b.Feasible || (a.Feasible && math.Abs(a.Value-b.Value) > 1e-9) {
				t.Errorf("case %d %s delay differs across parallelism: %v vs %v", specs[i].ID, n, a.Value, b.Value)
			}
			c, d := seq[i].Rate[n], par[i].Rate[n]
			if c.Feasible != d.Feasible || (c.Feasible && math.Abs(c.Value-d.Value) > 1e-9) {
				t.Errorf("case %d %s rate differs across parallelism: %v vs %v", specs[i].ID, n, c.Value, d.Value)
			}
		}
	}
}

func TestFig2TableFormat(t *testing.T) {
	results, err := RunSuite(shortSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	table := Fig2Table(results)
	if !strings.Contains(table, "| Case |") || !strings.Contains(table, "Delay ELPC (ms)") {
		t.Errorf("table header malformed:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 2+len(shortSuite()) {
		t.Errorf("table has %d lines, want %d", len(lines), 2+len(shortSuite()))
	}
	if !strings.Contains(table, "m5 n6 l30") {
		t.Error("case label missing")
	}
}

func TestSeriesCSV(t *testing.T) {
	results, err := RunSuite(shortSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	delayCSV := SeriesCSV(results, false)
	rateCSV := SeriesCSV(results, true)
	if !strings.HasPrefix(delayCSV, "case,ELPC,Streamline,Greedy") {
		t.Errorf("CSV header: %q", strings.SplitN(delayCSV, "\n", 2)[0])
	}
	if strings.Count(delayCSV, "\n") != len(shortSuite())+1 {
		t.Error("delay CSV row count wrong")
	}
	if delayCSV == rateCSV {
		t.Error("delay and rate CSVs should differ")
	}
}

func TestSummarize(t *testing.T) {
	results, err := RunSuite(shortSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Cases != len(shortSuite()) {
		t.Errorf("cases = %d", s.Cases)
	}
	// ELPC must win (or tie) every feasible delay case — it is optimal.
	if s.DelayWins["ELPC"] != s.Cases {
		t.Errorf("ELPC delay wins = %d, want %d", s.DelayWins["ELPC"], s.Cases)
	}
	// Ratios versus ELPC are >= 1 for delay (others are never better).
	for _, n := range MapperNames() {
		if r, ok := s.MeanDelayRatio[n]; ok && r < 1-1e-9 {
			t.Errorf("%s mean delay ratio %v < 1", n, r)
		}
	}
	if s.MeanDelayRatio["ELPC"] != 1 {
		t.Errorf("ELPC self-ratio = %v", s.MeanDelayRatio["ELPC"])
	}
	txt := s.SummaryText()
	if !strings.Contains(txt, "ELPC") || !strings.Contains(txt, "delay wins") {
		t.Errorf("summary text malformed:\n%s", txt)
	}
}

func TestRunFigure34(t *testing.T) {
	fig, err := RunFigure34()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Fig3Dot, "digraph") || !strings.Contains(fig.Fig4Dot, "digraph") {
		t.Error("DOT outputs malformed")
	}
	if !strings.Contains(fig.Fig3Text, "total delay") || !strings.Contains(fig.Fig4Text, "frame rate") {
		t.Error("text outputs malformed")
	}
	if fig.Spec.Modules != 5 || fig.Spec.Nodes != 6 {
		t.Errorf("unexpected small case %+v", fig.Spec)
	}
}

func TestRunReuseAblation(t *testing.T) {
	rows, err := RunReuseAblation(shortSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(shortSuite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	sawBoth := false
	for _, r := range rows {
		if !math.IsNaN(r.NoReuseFPS) && !math.IsNaN(r.ReuseFPS) {
			sawBoth = true
			// Reuse relaxes the constraint set under the shared-bottleneck
			// objective; the refined rate must be at least the no-reuse rate.
			if r.ReuseFPS < r.NoReuseFPS*(1-1e-9) {
				t.Errorf("case %d: reuse rate %v below no-reuse %v", r.Spec.ID, r.ReuseFPS, r.NoReuseFPS)
			}
		}
	}
	if !sawBoth {
		t.Error("no case produced both ablation arms")
	}
	table := ReuseAblationTable(rows)
	if !strings.Contains(table, "ELPC+Reuse") {
		t.Error("ablation table malformed")
	}
}

func TestParetoCSV(t *testing.T) {
	csv, err := ParetoCSV(gen.SmallCase(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "delay_ms,rate_fps\n") {
		t.Errorf("pareto CSV header wrong: %q", csv)
	}
	if strings.Count(csv, "\n") < 2 {
		t.Error("pareto CSV has no data rows")
	}
}

func TestRuntimeTable(t *testing.T) {
	results, err := RunSuite(shortSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	table := RuntimeTable(results)
	if !strings.Contains(table, "ELPC delay") || !strings.Contains(table, "µs") && !strings.Contains(table, "ms") {
		t.Errorf("runtime table malformed:\n%s", table)
	}
}

func TestJitterSweepCSV(t *testing.T) {
	csv, err := JitterSweepCSV(gen.SmallCase(), []float64{0, 0.2, 0.5}, 200)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	// Zero jitter row must match the deterministic rate.
	var j, rate, det float64
	if _, err := fmt.Sscanf(lines[1], "%f,%f,%f", &j, &rate, &det); err != nil {
		t.Fatal(err)
	}
	if j != 0 || math.Abs(rate-det) > 1e-6*det {
		t.Errorf("zero-jitter row should match deterministic: %s", lines[1])
	}
	// Highest jitter should not beat the deterministic rate.
	if _, err := fmt.Sscanf(lines[3], "%f,%f,%f", &j, &rate, &det); err != nil {
		t.Fatal(err)
	}
	if rate > det*1.01 {
		t.Errorf("jittered rate %v above deterministic %v", rate, det)
	}
}
