package harness

import (
	"strings"
	"testing"

	"elpc/internal/gen"
)

// burstSeed pins the deterministic trace the burst scenario (and the
// pipebench burst block) replays.
const burstSeed = 2026

func TestBurstScenarioDeterministic(t *testing.T) {
	a, err := RunBurstScenario(gen.Suite20()[1], DefaultBurstArrivalSpec(), burstSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBurstScenario(gen.Suite20()[1], DefaultBurstArrivalSpec(), burstSeed)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("burst scenario not deterministic:\n%+v\n%+v", a, b)
	}
	if a.SeqAdmitted+a.SeqRejected != a.Sessions {
		t.Fatalf("sequential outcomes %d+%d don't cover %d sessions", a.SeqAdmitted, a.SeqRejected, a.Sessions)
	}
	if a.BatchAdmitted+a.BatchRejected != a.Sessions {
		t.Fatalf("batch outcomes %d+%d don't cover %d sessions", a.BatchAdmitted, a.BatchRejected, a.Sessions)
	}
	if a.BatchGuaranteed+a.BatchStandard+a.BatchBestEffort != a.BatchAdmitted {
		t.Fatalf("class tallies %d+%d+%d don't cover %d admitted",
			a.BatchGuaranteed, a.BatchStandard, a.BatchBestEffort, a.BatchAdmitted)
	}
	if a.Bursts == 0 || a.Bursts >= a.Sessions {
		t.Fatalf("expected real bursting, got %d bursts for %d sessions", a.Bursts, a.Sessions)
	}
}

// TestBurstBatchBeatsSequential is the admission-gain assertion the batch
// path exists for: on the pinned bursty trace, placing each burst in one
// class/scarcity-ordered pass admits at least as many sessions as trickling
// the same arrivals through Deploy one at a time.
func TestBurstBatchBeatsSequential(t *testing.T) {
	r, err := RunBurstScenario(gen.Suite20()[1], DefaultBurstArrivalSpec(), burstSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchAdmitted < r.SeqAdmitted {
		t.Fatalf("batch admission (%d, rate %.3f) fell below sequential (%d, rate %.3f) on the same trace",
			r.BatchAdmitted, r.BatchAdmissionRate, r.SeqAdmitted, r.SeqAdmissionRate)
	}
	if r.AdmissionGain < 0 {
		t.Fatalf("admission gain %.3f negative", r.AdmissionGain)
	}
}

func TestBurstScenarioTable(t *testing.T) {
	r, err := RunBurstScenario(gen.Suite20()[1], DefaultBurstArrivalSpec(), burstSeed)
	if err != nil {
		t.Fatal(err)
	}
	tab := BurstScenarioTable(r)
	for _, want := range []string{"Burst admission scenario", "admission rate", "preemptions", "guaranteed"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}
