package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// ScaleSpec shapes the sharded-fleet scale scenario: a clustered topology,
// a shard count, and a tenant mix with mostly intra-cluster placement
// affinity.
type ScaleSpec struct {
	// Cluster is the generated topology.
	Cluster gen.ClusterSpec `json:"cluster"`
	// Shards is the region count of the sharded fleet under test.
	Shards int `json:"shards"`
	// Tenants is the number of deployment requests replayed.
	Tenants int `json:"tenants"`
	// InterFraction is the fraction of tenants whose endpoints straddle two
	// clusters (exercising the coordinator path); the rest stay inside one
	// cluster.
	InterFraction float64 `json:"inter_fraction"`
	// Seed drives topology, tenant, and endpoint generation.
	Seed uint64 `json:"seed"`
}

// DefaultScaleSpec returns the calibrated scale scenario: 8 clusters of 25
// nodes (n200), 96 tenants with 10% cross-cluster traffic, sharded 8 ways —
// small enough for the CI bench gate, large enough that the per-region
// solve-cost advantage is unambiguous.
func DefaultScaleSpec() ScaleSpec {
	return ScaleSpec{
		Cluster:       gen.ClusterSpec{Clusters: 8, Nodes: 25, Links: 160, InterLinks: 48},
		Shards:        8,
		Tenants:       96,
		InterFraction: 0.1,
		Seed:          2026,
	}
}

// ScaleScenarioResult summarizes one scale replay: the same deterministic
// request list deployed onto an unsharded Fleet and a ShardedFleet over the
// same clustered network, comparing admissions, placement quality, and
// wall-clock deploy cost.
type ScaleScenarioResult struct {
	// Network renders the topology ("8x25 n200 l1328"); Shards and Tenants
	// echo the spec.
	Network string `json:"network"`
	Shards  int    `json:"shards"`
	Tenants int    `json:"tenants"`
	// CrossTenants counts requests whose endpoints straddle clusters;
	// BoundaryLinks is the partition's cross-region link count.
	CrossTenants  int `json:"cross_tenants"`
	BoundaryLinks int `json:"boundary_links"`
	// AdmittedSingle/AdmittedSharded count admissions on each fleet;
	// the admission rates divide by Tenants.
	AdmittedSingle       int     `json:"admitted_single"`
	AdmittedSharded      int     `json:"admitted_sharded"`
	AdmissionRateSingle  float64 `json:"admission_rate_single"`
	AdmissionRateSharded float64 `json:"admission_rate_sharded"`
	// MeanRateSingle/MeanRateSharded average the sustainable frame rate of
	// admitted deployments — the placement-quality gauge the bench gate
	// holds sharding to.
	MeanRateSingle  float64 `json:"mean_rate_single"`
	MeanRateSharded float64 `json:"mean_rate_sharded"`
	// CrossDeployments counts coordinator-owned placements after the
	// sharded replay; Fallbacks counts regional rejections retried through
	// the coordinator.
	CrossDeployments int    `json:"cross_deployments"`
	Fallbacks        uint64 `json:"fallbacks"`
	// SingleMs and ShardedMs are the wall-clock deploy times of the two
	// replays; Speedup is their ratio (machine-dependent — a runtime-class
	// metric in the bench gate).
	SingleMs  float64 `json:"single_ms"`
	ShardedMs float64 `json:"sharded_ms"`
	Speedup   float64 `json:"speedup"`
}

// RunScaleScenario generates the clustered network, replays the same
// deterministic request list against an unsharded Fleet and against a
// ShardedFleet with spec.Shards regions (partitioned by the graph
// partitioner, which must recover the generated clusters), and reports
// admissions, quality, and wall-clock cost side by side.
func RunScaleScenario(spec ScaleSpec) (*ScaleScenarioResult, error) {
	if spec.Tenants < 1 {
		return nil, fmt.Errorf("harness: scale scenario needs >= 1 tenant")
	}
	rng := gen.RNG(spec.Seed)
	net, err := gen.ClusteredNetwork(spec.Cluster, gen.DefaultRanges(), rng)
	if err != nil {
		return nil, err
	}

	// Draw the tenant mix once; both replays see the identical list.
	ranges := gen.DefaultRanges()
	reqs := make([]fleet.Request, 0, spec.Tenants)
	cross := 0
	for t := 0; t < spec.Tenants; t++ {
		pl, err := gen.Pipeline(4+rng.IntN(4), ranges, rng)
		if err != nil {
			return nil, err
		}
		home := rng.IntN(spec.Cluster.Clusters)
		src := model.NodeID(home*spec.Cluster.Nodes + rng.IntN(spec.Cluster.Nodes))
		var dst model.NodeID
		if spec.Cluster.Clusters > 1 && rng.Float64() < spec.InterFraction {
			other := rng.IntN(spec.Cluster.Clusters - 1)
			if other >= home {
				other++
			}
			dst = model.NodeID(other*spec.Cluster.Nodes + rng.IntN(spec.Cluster.Nodes))
			cross++
		} else {
			d := rng.IntN(spec.Cluster.Nodes - 1)
			if model.NodeID(home*spec.Cluster.Nodes+d) >= src {
				d++
			}
			dst = model.NodeID(home*spec.Cluster.Nodes + d)
		}
		req := fleet.Request{Tenant: fmt.Sprintf("t%d", t), Pipeline: pl, Src: src, Dst: dst}
		if t%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO = fleet.SLO{MinRateFPS: 1 + 2*rng.Float64()}
		} else {
			req.Objective = model.MinDelay
		}
		reqs = append(reqs, req)
	}

	single, err := fleet.New(net)
	if err != nil {
		return nil, err
	}
	sharded, err := fleet.NewSharded(net, spec.Shards)
	if err != nil {
		return nil, err
	}

	replay := func(f fleet.Manager) (admitted int, meanRate float64, elapsed time.Duration, err error) {
		start := time.Now()
		for i, req := range reqs {
			d, err := f.Deploy(req)
			if err != nil {
				if errors.Is(err, fleet.ErrRejected) {
					continue
				}
				return 0, 0, 0, fmt.Errorf("harness: scale tenant %d: %w", i, err)
			}
			admitted++
			meanRate += d.RateFPS
		}
		if admitted > 0 {
			meanRate /= float64(admitted)
		}
		return admitted, meanRate, time.Since(start), nil
	}

	res := &ScaleScenarioResult{
		Network:       spec.Cluster.String(),
		Shards:        spec.Shards,
		Tenants:       spec.Tenants,
		CrossTenants:  cross,
		BoundaryLinks: len(sharded.Partition().Boundary),
	}
	var elapsed time.Duration
	if res.AdmittedSingle, res.MeanRateSingle, elapsed, err = replay(single); err != nil {
		return nil, err
	}
	res.SingleMs = float64(elapsed) / float64(time.Millisecond)
	if res.AdmittedSharded, res.MeanRateSharded, elapsed, err = replay(sharded); err != nil {
		return nil, err
	}
	res.ShardedMs = float64(elapsed) / float64(time.Millisecond)
	res.AdmissionRateSingle = float64(res.AdmittedSingle) / float64(spec.Tenants)
	res.AdmissionRateSharded = float64(res.AdmittedSharded) / float64(spec.Tenants)
	if res.ShardedMs > 0 {
		res.Speedup = res.SingleMs / res.ShardedMs
	}
	ss := sharded.ShardStats()
	res.CrossDeployments = ss.Coordinator.Deployments
	res.Fallbacks = ss.Coordinator.Fallbacks
	return res, nil
}

// ScaleScenarioTable renders the scenario as a small Markdown block for the
// pipebench artifacts.
func ScaleScenarioTable(r *ScaleScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Scale scenario (%s, %d shards)\n\n", r.Network, r.Shards)
	fmt.Fprintf(&b, "| metric | unsharded | sharded |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| admitted (of %d) | %d | %d |\n", r.Tenants, r.AdmittedSingle, r.AdmittedSharded)
	fmt.Fprintf(&b, "| admission rate | %.3f | %.3f |\n", r.AdmissionRateSingle, r.AdmissionRateSharded)
	fmt.Fprintf(&b, "| mean deployed rate (fps) | %.2f | %.2f |\n", r.MeanRateSingle, r.MeanRateSharded)
	fmt.Fprintf(&b, "| deploy wall clock (ms) | %.1f | %.1f |\n", r.SingleMs, r.ShardedMs)
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "| | |\n|---|---|\n")
	fmt.Fprintf(&b, "| deploy speedup | %.2fx |\n", r.Speedup)
	fmt.Fprintf(&b, "| cross-cluster tenants | %d |\n", r.CrossTenants)
	fmt.Fprintf(&b, "| coordinator deployments | %d |\n", r.CrossDeployments)
	fmt.Fprintf(&b, "| coordinator fallbacks | %d |\n", r.Fallbacks)
	fmt.Fprintf(&b, "| boundary links | %d |\n", r.BoundaryLinks)
	return b.String()
}
