package harness

import (
	"strings"
	"testing"

	"elpc/internal/gen"
)

func TestRunChurnScenario(t *testing.T) {
	spec := gen.Suite20()[1] // 10 nodes, 60 links
	cs := gen.DefaultChurnSpec()
	cs.Events = 40

	r, err := RunChurnScenario(spec, cs, 16, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deployments == 0 {
		t.Fatal("scenario admitted no deployments; churn has nothing to touch")
	}
	if r.Events != 40 {
		t.Errorf("events = %d, want 40", r.Events)
	}
	if r.Affected == 0 {
		t.Error("40 default-spec events touched no deployment; trace too mild")
	}
	if r.Kept+r.Resolved != r.Affected {
		t.Errorf("kept %d + resolved %d != affected %d", r.Kept, r.Resolved, r.Affected)
	}
	if r.Migrated+r.Parked != r.Displaced {
		t.Errorf("displaced accounting broken: %+v", r)
	}
	if r.FinalDeployments+r.FinalParked < r.Deployments-r.Parked {
		t.Errorf("deployments lost: %+v", r)
	}
	// Incremental repair: every churn-phase solve is either a repair
	// re-solve of a broken placement or a requeue admission try — kept
	// placements cost zero solves.
	if r.ChurnSolves != uint64(r.Resolved)+r.RequeueAttempts {
		t.Errorf("churn solves %d != resolved %d + requeue attempts %d; repair is not incremental",
			r.ChurnSolves, r.Resolved, r.RequeueAttempts)
	}
	if r.MeanRepairMs < 0 || r.MaxRepairMs < r.MeanRepairMs {
		t.Errorf("latency stats inconsistent: mean %v max %v", r.MeanRepairMs, r.MaxRepairMs)
	}

	// Determinism of the quality metrics (latencies are wall clock).
	r2, err := RunChurnScenario(spec, cs, 16, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if r.Displaced != r2.Displaced || r.FinalDeployments != r2.FinalDeployments ||
		r.Affected != r2.Affected || r.ChurnSolves != r2.ChurnSolves {
		t.Errorf("scenario not deterministic: %+v vs %+v", r, r2)
	}

	table := ChurnScenarioTable(r)
	for _, want := range []string{"## Churn scenario", "| events |", "| displaced |", "mean repair latency"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
