package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file is the crash-injection scenario: a seeded
// deploy/churn/preemption workload runs once against a WAL-less reference
// fleet (capturing the exact state after every operation) and once against
// a WAL-backed fleet, then the log is "crashed" — truncated at randomized
// byte offsets, including mid-record — and recovered. Every crash must
// land on exactly one of the reference states: the state after the last
// operation whose record fully reached the log. Anything else means an
// acknowledged transition was lost or a torn one resurrected. The scenario
// runs twice, without and with a mid-workload snapshot, so both the
// pure-replay and the snapshot-plus-suffix recovery paths face arbitrary
// crash points.

// crashTrialBudget caps the crash offsets tried per regime; smaller logs
// are crashed at every byte.
const crashTrialBudget = 64

// crashOp applies one fleet operation — at most one WAL record — and
// returns the deployments the operation handed back to the caller (the
// preempted queue drain plus repair evictions), which the harness owns the
// way the churn reconciler would.
type crashOp func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error)

// CrashScenarioResult summarizes one crash-injection run.
type CrashScenarioResult struct {
	// Case and Network identify the suite case the workload ran on.
	Case    int    `json:"case"`
	Network string `json:"network"`
	// Sessions is the tenant-session count; Ops the operation count in the
	// workload (deploys, a batch, releases, churn+repair events, a
	// rebalance); Records the WAL records the workload produced.
	Sessions int    `json:"sessions"`
	Ops      int    `json:"ops"`
	Records  uint64 `json:"records"`
	// LogBytes / SuffixBytes are the crashable byte ranges of the
	// no-snapshot and snapshot regimes (the suffix segment is all that
	// survives compaction in the latter).
	LogBytes    int `json:"log_bytes"`
	SuffixBytes int `json:"suffix_bytes"`
	// Trials counts recoveries run; TornTrials the subset whose crash
	// offset landed mid-record (forcing a tail truncation);
	// SnapshotTrials the subset recovered through the snapshot.
	Trials         int `json:"trials"`
	TornTrials     int `json:"torn_trials"`
	SnapshotTrials int `json:"snapshot_trials"`
	// DistinctStates counts how many different reference states the crash
	// points recovered into — evidence the offsets actually swept the
	// workload rather than collapsing onto the final state.
	DistinctStates int `json:"distinct_states"`
	// FinalDeployments / FinalParked describe the uncrashed end state.
	FinalDeployments int `json:"final_deployments"`
	FinalParked      int `json:"final_parked"`
}

// crashState is the full observable fleet state compared across the
// reference run and every recovery.
type crashState struct {
	Stats fleet.Stats        `json:"stats"`
	List  []fleet.Deployment `json:"list"`
	// SLO is the report pre-rendered with %+v: between a churn event and
	// its repair pass a dead placement scores a +Inf delay, which JSON
	// cannot encode but fmt renders deterministically.
	SLO      string            `json:"slo"`
	Residual *model.Network    `json:"residual"`
	Parked   []wal.ParkedState `json:"parked"`
}

// crashStateJSON canonicalizes a fleet plus the caller-owned parked pool.
// The pool is sorted by ID: the reference accumulates it in hand-over
// order while recovery rebuilds it in record order.
func crashStateJSON(f *fleet.Fleet, parked []fleet.ParkedDeployment) (string, error) {
	states := fleet.ParkedStates(parked)
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	data, err := json.Marshal(crashState{
		Stats:    f.Stats(),
		List:     f.List(),
		SLO:      fmt.Sprintf("%+v", f.SLOReport()),
		Residual: f.Snapshot(),
		Parked:   states,
	})
	return string(data), err
}

// buildCrashOps pre-generates the deterministic operation list. All random
// inputs are drawn here, never inside an op, so the same list replays
// identically against any number of fleets.
func buildCrashOps(net *model.Network, cs gen.ChurnSpec, sessions int, seed uint64) ([]crashOp, error) {
	rng := gen.RNG(seed)
	var ops []crashOp

	deployOp := func(i int, class fleet.Class) error {
		pl, err := gen.Pipeline(3+rng.IntN(4), gen.DefaultRanges(), rng)
		if err != nil {
			return err
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		req := fleet.Request{
			Tenant:   fmt.Sprintf("t%02d", i),
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
			SLO:      fleet.SLO{Class: class},
		}
		if i%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO.MinRateFPS = 1 + 2*rng.Float64()
			if class == fleet.ClassGuaranteed {
				// Oversized guaranteed demand displaces best-effort
				// tenants, so preemption records hit the log.
				req.SLO.MinRateFPS = 3 + 3*rng.Float64()
			}
		} else {
			req.Objective = model.MinDelay
		}
		ops = append(ops, func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
			if _, err := f.Deploy(req); err != nil && !errors.Is(err, fleet.ErrRejected) {
				return nil, err
			}
			return f.TakePreempted(), nil
		})
		return nil
	}

	classes := []fleet.Class{fleet.ClassBestEffort, fleet.ClassStandard, "", fleet.ClassGuaranteed}
	for s := 0; s < sessions; s++ {
		if err := deployOp(s, classes[s%len(classes)]); err != nil {
			return nil, err
		}
	}

	// One batch admission (a single multi-op record, possibly with
	// admit-then-preempt inside one epoch).
	var batch []fleet.Request
	for i := 0; i < 4; i++ {
		pl, err := gen.Pipeline(3+rng.IntN(3), gen.DefaultRanges(), rng)
		if err != nil {
			return nil, err
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		batch = append(batch, fleet.Request{
			Tenant:    fmt.Sprintf("b%d", i),
			Pipeline:  pl,
			Src:       src,
			Dst:       dst,
			Objective: model.MaxFrameRate,
			SLO:       fleet.SLO{MinRateFPS: 1 + rng.Float64(), Class: classes[i%len(classes)]},
		})
	}
	ops = append(ops, func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
		for _, out := range f.DeployBatch(batch) {
			if out.Err != nil && !errors.Is(out.Err, fleet.ErrRejected) {
				return nil, out.Err
			}
		}
		return f.TakePreempted(), nil
	})

	// Releases pick by live-list index at run time — identical across runs
	// because the runs are identical up to this point.
	for k := 0; k < sessions/4; k++ {
		k := k
		ops = append(ops, func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
			live := f.List()
			if len(live) == 0 {
				return nil, nil
			}
			id := live[(k*7)%len(live)].ID
			if err := f.Release(id); err != nil && !errors.Is(err, fleet.ErrNotFound) {
				return nil, err
			}
			return nil, nil
		})
	}

	// Churn events with incremental repair, the way the reconciler drives
	// them; repair evictions are handed to the harness.
	trace, err := gen.Churn(cs, net, gen.RNG(seed^0x9e3779b97f4a7c15))
	if err != nil {
		return nil, err
	}
	for _, ev := range trace {
		evs := []model.ChurnEvent{ev.Event}
		ops = append(ops,
			func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
				f.Affected(evs) // read-only, mirrors the reconciler's probe
				return nil, f.ApplyChurn(evs)
			},
			func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
				rep := f.Repair(f.Affected(evs), fleet.RepairOptions{})
				return rep.Parked, nil
			})
	}

	// Late guaranteed deploys against the degraded network, then one
	// rebalance pass.
	for s := sessions; s < sessions+3; s++ {
		if err := deployOp(s, fleet.ClassGuaranteed); err != nil {
			return nil, err
		}
	}
	ops = append(ops, func(f *fleet.Fleet) ([]fleet.ParkedDeployment, error) {
		f.Rebalance(fleet.RebalanceOptions{MaxMoves: 3})
		return nil, nil
	})
	return ops, nil
}

// runCrashReference replays ops on a WAL-less fleet, returning the state
// JSON before any op and after each op.
func runCrashReference(net *model.Network, ops []crashOp) ([]string, error) {
	f, err := fleet.New(net)
	if err != nil {
		return nil, err
	}
	states := make([]string, 0, len(ops)+1)
	var parked []fleet.ParkedDeployment
	s, err := crashStateJSON(f, parked)
	if err != nil {
		return nil, err
	}
	states = append(states, s)
	for i, op := range ops {
		handed, err := op(f)
		if err != nil {
			return nil, fmt.Errorf("harness: crash reference op %d: %w", i, err)
		}
		parked = append(parked, handed...)
		if s, err = crashStateJSON(f, parked); err != nil {
			return nil, err
		}
		states = append(states, s)
	}
	return states, nil
}

// runCrashWAL replays ops on a WAL-backed fleet in dir, recording the log
// sequence acknowledged after every op. snapshotAt >= 0 writes a compacted
// snapshot (with the harness-owned parked pool folded in, the way the
// reconciler's CaptureSnapshot does) after that op index.
func runCrashWAL(dir string, net *model.Network, ops []crashOp, snapshotAt int) (seqAfter []uint64, finalState string, err error) {
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, "", err
	}
	defer l.Close()
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		return nil, "", fmt.Errorf("harness: crash dir %s is not empty", dir)
	}
	f, err := fleet.New(net)
	if err != nil {
		return nil, "", err
	}
	if err := fleet.AppendInstall(l, net, 1); err != nil {
		return nil, "", err
	}
	f.UseWAL(l)

	seqAfter = make([]uint64, 0, len(ops)+1)
	seqAfter = append(seqAfter, l.LastSeq()) // the install record
	var parked []fleet.ParkedDeployment
	for i, op := range ops {
		handed, err := op(f)
		if err != nil {
			return nil, "", fmt.Errorf("harness: crash WAL op %d: %w", i, err)
		}
		parked = append(parked, handed...)
		seqAfter = append(seqAfter, l.LastSeq())
		if i == snapshotAt {
			snap := fleet.CaptureSnapshot(f, l)
			snap.Parked = append(fleet.ParkedStates(parked), snap.Parked...)
			if err := l.WriteSnapshot(snap); err != nil {
				return nil, "", err
			}
		}
	}
	if finalState, err = crashStateJSON(f, parked); err != nil {
		return nil, "", err
	}
	return seqAfter, finalState, l.Close()
}

// activeSegment returns the path and contents of dir's single log segment.
// Both regimes end with exactly one: rotation only happens at snapshot
// time, and compaction removes the covered segment.
func activeSegment(dir string) (string, []byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 1 {
		return "", nil, fmt.Errorf("harness: crash dir %s has %d segments, want 1", dir, len(segs))
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	return path, data, err
}

// copyDir copies every regular file in src into dst.
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// crashOffsets picks the byte offsets to crash at: every byte when the
// segment fits the budget, otherwise both endpoints plus a random sample.
func crashOffsets(n int, rng interface{ IntN(int) int }) []int {
	if n+1 <= crashTrialBudget {
		offs := make([]int, 0, n+1)
		for x := 0; x <= n; x++ {
			offs = append(offs, x)
		}
		return offs
	}
	offs := []int{0, n}
	for len(offs) < crashTrialBudget {
		offs = append(offs, rng.IntN(n+1))
	}
	return offs
}

// crashAndRecover truncates the regime dir's segment at offset, recovers,
// and checks the result is exactly the reference state of the last fully
// logged operation. It updates the result tallies and the distinct-state
// set.
func crashAndRecover(dir string, offset int, states []string, seqAfter []uint64, res *CrashScenarioResult, seen map[int]bool) error {
	tmp, err := os.MkdirTemp("", "elpc-crash-trial-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := copyDir(dir, tmp); err != nil {
		return err
	}
	segPath, data, err := activeSegment(tmp)
	if err != nil {
		return err
	}
	if offset > len(data) {
		return fmt.Errorf("harness: crash offset %d beyond segment of %d bytes", offset, len(data))
	}
	if err := os.WriteFile(segPath, data[:offset], 0o644); err != nil {
		return err
	}

	l, rec, err := wal.Open(tmp, wal.Options{})
	if err != nil {
		return fmt.Errorf("harness: recover after crash at offset %d: %w", offset, err)
	}
	defer l.Close()
	res.Trials++
	if rec.TruncatedTail {
		res.TornTrials++
	}
	if rec.Snapshot != nil {
		res.SnapshotTrials++
	}

	lastSeq := l.LastSeq()
	if lastSeq == 0 {
		// The crash tore even the install record: recovery must produce no
		// manager rather than a fabricated one.
		r, err := fleet.Recover(rec, nil)
		if err != nil {
			return err
		}
		if r.Manager != nil {
			return fmt.Errorf("harness: crash at offset %d recovered a manager from an empty log", offset)
		}
		seen[-1] = true
		return nil
	}

	r, err := fleet.Recover(rec, nil)
	if err != nil {
		return fmt.Errorf("harness: rebuild after crash at offset %d: %w", offset, err)
	}
	if r.Manager == nil {
		return fmt.Errorf("harness: crash at offset %d lost the install record (seq %d)", offset, lastSeq)
	}

	// The recovered sequence must be exactly one an operation acknowledged:
	// a sequence between two ops would mean a record materialized out of an
	// operation's commit.
	idx := -1
	for i := len(seqAfter) - 1; i >= 0; i-- {
		if seqAfter[i] <= lastSeq {
			idx = i
			break
		}
	}
	if idx < 0 || seqAfter[idx] != lastSeq {
		return fmt.Errorf("harness: crash at offset %d recovered to seq %d, which no operation acknowledged", offset, lastSeq)
	}
	got, err := crashStateJSON(r.Manager.(*fleet.Fleet), r.Parked)
	if err != nil {
		return err
	}
	if got != states[idx] {
		return fmt.Errorf("harness: crash at offset %d (op %d, seq %d): recovered state diverged from the acknowledged state\n reference: %s\n recovered: %s",
			offset, idx, lastSeq, states[idx], got)
	}
	seen[idx] = true
	return nil
}

// RunCrashScenario runs the crash-injection scenario on one suite case: a
// seeded deploy/churn/preemption workload, crashed at randomized log
// offsets and recovered, in both the pure-replay and snapshot-plus-suffix
// regimes. A non-nil error means a recovery diverged from an acknowledged
// state — the durability contract was violated.
func RunCrashScenario(spec gen.CaseSpec, cs gen.ChurnSpec, sessions int, seed uint64) (*CrashScenarioResult, error) {
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		return nil, err
	}
	ops, err := buildCrashOps(net, cs, sessions, seed)
	if err != nil {
		return nil, err
	}
	states, err := runCrashReference(net, ops)
	if err != nil {
		return nil, err
	}

	res := &CrashScenarioResult{
		Case:     spec.ID,
		Network:  fmt.Sprintf("n%d l%d", spec.Nodes, spec.Links),
		Sessions: sessions,
		Ops:      len(ops),
	}
	seen := map[int]bool{}
	rng := gen.RNG(seed ^ 0xc2b2ae3d27d4eb4f)

	// Regime 1: no snapshot — every crash point recovers by pure replay.
	// Regime 2: snapshot mid-workload — crash points sweep the suffix
	// segment, recovering through the snapshot plus the surviving records.
	for _, snapshotAt := range []int{-1, len(ops) / 2} {
		dir, err := os.MkdirTemp("", "elpc-crash-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		seqAfter, finalState, err := runCrashWAL(dir, net, ops, snapshotAt)
		if err != nil {
			return nil, err
		}
		if finalState != states[len(ops)] {
			return nil, fmt.Errorf("harness: WAL-backed run diverged from the reference before any crash")
		}
		_, seg, err := activeSegment(dir)
		if err != nil {
			return nil, err
		}
		if snapshotAt < 0 {
			res.Records = seqAfter[len(seqAfter)-1]
			res.LogBytes = len(seg)
		} else {
			res.SuffixBytes = len(seg)
		}
		for _, off := range crashOffsets(len(seg), rng) {
			if err := crashAndRecover(dir, off, states, seqAfter, res, seen); err != nil {
				return nil, err
			}
		}
	}

	res.DistinctStates = len(seen)
	var final crashState
	if err := json.Unmarshal([]byte(states[len(ops)]), &final); err != nil {
		return nil, err
	}
	res.FinalDeployments = final.Stats.Deployments
	res.FinalParked = len(final.Parked)
	return res, nil
}

// CrashScenarioTable renders the scenario as a small Markdown block for
// the pipebench artifacts.
func CrashScenarioTable(r *CrashScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Crash-recovery scenario (case %d, %s)\n\n", r.Case, r.Network)
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| sessions | %d |\n", r.Sessions)
	fmt.Fprintf(&b, "| operations | %d |\n", r.Ops)
	fmt.Fprintf(&b, "| WAL records | %d |\n", r.Records)
	fmt.Fprintf(&b, "| log bytes (pure replay) | %d |\n", r.LogBytes)
	fmt.Fprintf(&b, "| suffix bytes (post-snapshot) | %d |\n", r.SuffixBytes)
	fmt.Fprintf(&b, "| crash points recovered | %d |\n", r.Trials)
	fmt.Fprintf(&b, "| torn-tail crashes | %d |\n", r.TornTrials)
	fmt.Fprintf(&b, "| snapshot-path recoveries | %d |\n", r.SnapshotTrials)
	fmt.Fprintf(&b, "| distinct acknowledged states hit | %d |\n", r.DistinctStates)
	fmt.Fprintf(&b, "| final deployments | %d |\n", r.FinalDeployments)
	fmt.Fprintf(&b, "| final parked | %d |\n", r.FinalParked)
	fmt.Fprintf(&b, "| acknowledged-state losses | 0 |\n")
	return b.String()
}
