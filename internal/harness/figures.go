package harness

import (
	"fmt"
	"strings"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/viz"
)

// Figure34 holds the rendered artifacts of the paper's path-illustration
// figures on the small case: Figure 3 (minimum end-to-end delay mapping)
// and Figure 4 (maximum frame rate mapping).
type Figure34 struct {
	Spec     gen.CaseSpec
	Fig3Dot  string // DOT, min-delay path highlighted
	Fig3Text string
	Fig4Dot  string // DOT, max-frame-rate path highlighted
	Fig4Text string
}

// RunFigure34 computes both ELPC mappings on the small illustrated case and
// renders them.
func RunFigure34() (*Figure34, error) {
	spec := gen.SmallCase()
	p, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("harness: building small case: %w", err)
	}
	out := &Figure34{Spec: spec}

	md, err := core.MinDelay(p)
	if err != nil {
		return nil, fmt.Errorf("harness: figure 3 mapping: %w", err)
	}
	var dot, txt strings.Builder
	if err := viz.MappingDot(&dot, p, md, "fig3 min delay"); err != nil {
		return nil, err
	}
	if err := viz.MappingText(&txt, p, md); err != nil {
		return nil, err
	}
	out.Fig3Dot, out.Fig3Text = dot.String(), txt.String()

	mr, err := core.MaxFrameRate(p)
	if err != nil {
		return nil, fmt.Errorf("harness: figure 4 mapping: %w", err)
	}
	dot.Reset()
	txt.Reset()
	if err := viz.MappingDot(&dot, p, mr, "fig4 max frame rate"); err != nil {
		return nil, err
	}
	if err := viz.MappingText(&txt, p, mr); err != nil {
		return nil, err
	}
	out.Fig4Dot, out.Fig4Text = dot.String(), txt.String()

	// Sanity: figure 3 may reuse nodes, figure 4 must not.
	if mr.UsesReuse() {
		return nil, fmt.Errorf("harness: figure 4 mapping unexpectedly reuses nodes")
	}
	if err := p.ValidateMapping(mr, model.MaxFrameRate); err != nil {
		return nil, err
	}
	return out, nil
}
