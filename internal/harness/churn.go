package harness

import (
	"fmt"
	"strings"

	"elpc/internal/churn"
	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// ChurnScenarioResult summarizes one churn replay: a populated fleet on a
// suite network subjected to a deterministic trace of failures,
// degradations, and drift, with the reconciler repairing incrementally
// after every event.
type ChurnScenarioResult struct {
	Case    int    `json:"case"`
	Network string `json:"network"` // "n10 l60"
	// Deployments is the number admitted before the trace starts; Events
	// the trace length (every event applies cleanly by construction).
	Deployments int `json:"deployments"`
	Events      int `json:"events"`
	// Affected counts deployment examinations across all repair cycles;
	// Kept/Resolved/Migrated/Parked/Requeued accumulate the per-event
	// outcomes.
	Affected int `json:"affected"`
	Kept     int `json:"kept"`
	Resolved int `json:"resolved"`
	Migrated int `json:"migrated"`
	Parked   int `json:"parked"`
	Requeued int `json:"requeued"`
	// Displaced = Migrated + Parked over the whole trace.
	Displaced int `json:"displaced"`
	// FinalDeployments and FinalParked describe the end state.
	FinalDeployments int `json:"final_deployments"`
	FinalParked      int `json:"final_parked"`
	// SolverCalls is the fleet's total solve count; ChurnSolves the subset
	// spent during the trace — exactly Resolved repair re-solves plus
	// RequeueAttempts re-admission tries, which is what makes the repair
	// measurably incremental (kept placements cost zero solves).
	SolverCalls     uint64 `json:"solver_calls"`
	ChurnSolves     uint64 `json:"churn_solves"`
	RequeueAttempts uint64 `json:"requeue_attempts"`
	// MeanRepairMs and MaxRepairMs are per-event repair latencies (wall
	// clock; machine-dependent).
	MeanRepairMs float64 `json:"mean_repair_ms"`
	MaxRepairMs  float64 `json:"max_repair_ms"`
	// SLO summarizes delivered-versus-promised compliance across the trace.
	SLO ChurnSLOSummary `json:"slo"`
}

// ChurnSLOSummary is the compliance record of one churn replay: after every
// applied event the surviving deployments are re-scored against their
// admission SLOs (fleet.SLOReport), and the per-event compliance fractions
// are aggregated here.
type ChurnSLOSummary struct {
	// Evaluations is the number of post-event evaluation passes (one per
	// trace event).
	Evaluations int `json:"evaluations"`
	// MeanCompliance and MinCompliance aggregate the per-event compliant
	// fraction (compliant / evaluated; an event with nothing deployed
	// counts as fully compliant).
	MeanCompliance float64 `json:"mean_compliance"`
	MinCompliance  float64 `json:"min_compliance"`
	// FinalViolating and FinalCompliance describe the end state.
	FinalViolating  int     `json:"final_violating"`
	FinalCompliance float64 `json:"final_compliance"`
}

// RunChurnScenario populates a fleet on the given suite case's network
// with a deterministic tenant mix, generates a seeded churn trace, and
// replays it event by event through a Reconciler.
func RunChurnScenario(spec gen.CaseSpec, cs gen.ChurnSpec, sessions int, seed uint64) (*ChurnScenarioResult, error) {
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		return nil, err
	}
	f, err := fleet.New(net)
	if err != nil {
		return nil, err
	}

	// Populate: a deterministic mix of streaming and interactive tenants.
	rng := gen.RNG(seed)
	admitted := 0
	for s := 0; s < sessions; s++ {
		pl, err := gen.Pipeline(4+rng.IntN(4), gen.DefaultRanges(), rng)
		if err != nil {
			return nil, err
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		req := fleet.Request{
			Tenant:   fmt.Sprintf("s%d", s),
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
		}
		if s%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO = fleet.SLO{MinRateFPS: 1 + 2*rng.Float64()}
		} else {
			req.Objective = model.MinDelay
		}
		if _, err := f.Deploy(req); err != nil {
			continue // rejections just thin the population
		}
		admitted++
	}

	trace, err := gen.Churn(cs, net, gen.RNG(seed^0x9e3779b97f4a7c15))
	if err != nil {
		return nil, err
	}

	preSolves := f.SolveCount()
	rec := churn.New(f, churn.Options{})
	res := &ChurnScenarioResult{
		Case:        spec.ID,
		Network:     fmt.Sprintf("n%d l%d", spec.Nodes, spec.Links),
		Deployments: admitted,
		Events:      len(trace),
	}
	res.SLO.MinCompliance = 1
	var complianceSum float64
	for i, ev := range trace {
		r, err := rec.Apply([]model.ChurnEvent{ev.Event})
		if err != nil {
			return nil, fmt.Errorf("harness: churn scenario event %d (%s): %w", i, ev.Event, err)
		}
		res.Affected += r.Affected
		res.Kept += r.Kept
		res.Resolved += r.Resolved
		res.Migrated += r.Migrated
		res.Parked += r.Parked
		res.Requeued += r.Requeued
		res.Displaced += r.Displaced

		rep := f.SLOReport()
		compliance := 1.0
		if rep.Evaluated > 0 {
			compliance = float64(rep.Compliant) / float64(rep.Evaluated)
		}
		complianceSum += compliance
		if compliance < res.SLO.MinCompliance {
			res.SLO.MinCompliance = compliance
		}
		res.SLO.Evaluations++
		if i == len(trace)-1 {
			res.SLO.FinalViolating = rep.Violating
			res.SLO.FinalCompliance = compliance
		}
	}
	if res.SLO.Evaluations > 0 {
		res.SLO.MeanCompliance = complianceSum / float64(res.SLO.Evaluations)
	} else {
		res.SLO.MeanCompliance = 1
		res.SLO.FinalCompliance = 1
	}
	st := rec.Stats()
	res.FinalDeployments = f.Stats().Deployments
	res.FinalParked = st.ParkedNow
	res.MeanRepairMs = st.MeanRepairMs
	res.MaxRepairMs = st.MaxRepairMs
	res.SolverCalls = f.SolveCount()
	res.ChurnSolves = f.SolveCount() - preSolves
	res.RequeueAttempts = st.RequeueAttempts
	return res, nil
}

// ChurnScenarioTable renders the scenario as a small Markdown block for
// the pipebench artifacts.
func ChurnScenarioTable(r *ChurnScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Churn scenario (case %d, %s)\n\n", r.Case, r.Network)
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| deployments before churn | %d |\n", r.Deployments)
	fmt.Fprintf(&b, "| events | %d |\n", r.Events)
	fmt.Fprintf(&b, "| deployments examined | %d |\n", r.Affected)
	fmt.Fprintf(&b, "| kept without re-solve | %d |\n", r.Kept)
	fmt.Fprintf(&b, "| re-solved | %d |\n", r.Resolved)
	fmt.Fprintf(&b, "| migrated | %d |\n", r.Migrated)
	fmt.Fprintf(&b, "| parked | %d |\n", r.Parked)
	fmt.Fprintf(&b, "| requeued | %d |\n", r.Requeued)
	fmt.Fprintf(&b, "| displaced | %d |\n", r.Displaced)
	fmt.Fprintf(&b, "| final deployments | %d |\n", r.FinalDeployments)
	fmt.Fprintf(&b, "| final parked | %d |\n", r.FinalParked)
	fmt.Fprintf(&b, "| churn-phase solver calls | %d |\n", r.ChurnSolves)
	fmt.Fprintf(&b, "| mean repair latency | %.3f ms |\n", r.MeanRepairMs)
	fmt.Fprintf(&b, "| max repair latency | %.3f ms |\n", r.MaxRepairMs)
	return b.String()
}
