package harness

// Differential equivalence suite for warm-start incremental solving: every
// Suite20 case is populated with the standard deterministic tenant mix,
// subjected to the same seeded churn trace with periodic rebalance passes,
// and replayed twice — once with warm-start on (retained DP grids, delta
// invalidation) and once fully cold — through the same manager kind. The
// two replays must be byte-identical in every observable: per-event repair
// records, rebalance reports, the final deployment set (assignments and
// mappings included), fleet stats, reconciler stats, the final residual
// network, and a Pareto front solved on that residual. Plain fleets run the
// full suite; one-shard and three-shard sharded fleets run a spread subset.
// The whole suite is -race clean (repair and rebalance run with Workers: 2).

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"elpc/internal/churn"
	"elpc/internal/core"
	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// equivSessions is the tenant-mix population size per case, and
// equivRebalanceEvery the trace cadence of rebalance passes.
const (
	equivSessions       = 20
	equivRebalanceEvery = 10
)

// equivFingerprint captures everything observable about one replayed trace.
// Wall-clock fields (Record.RepairMs, churn.Stats.{Mean,Max}RepairMs) are
// zeroed before capture; everything else must match byte for byte.
type equivFingerprint struct {
	records    []churn.Record
	rebalances []fleet.Report
	deps       []fleet.Deployment
	stats      fleet.Stats
	churnStats churn.Stats
	residual   *model.Network
	front      []core.TradeoffPoint
	frontErr   string
}

// snapshotter is the residual-view surface both managers provide outside
// the Manager interface.
type snapshotter interface {
	Snapshot() *model.Network
}

// runEquivalenceTrace builds the case network, populates a manager with the
// deterministic tenant mix, replays the seeded churn trace through a
// reconciler with periodic rebalance passes, and returns the fingerprint
// plus the manager's warm-solve counters.
func runEquivalenceTrace(t *testing.T, mk func(*model.Network) (fleet.Manager, error), warm bool, spec gen.CaseSpec, seed uint64) (*equivFingerprint, fleet.WarmSolveStats) {
	t.Helper()
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	m, err := mk(net)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	m.SetWarmStart(warm)

	// Populate: the same deterministic streaming/interactive mix
	// RunChurnScenario uses.
	rng := gen.RNG(seed)
	for s := 0; s < equivSessions; s++ {
		pl, err := gen.Pipeline(4+rng.IntN(4), gen.DefaultRanges(), rng)
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		req := fleet.Request{
			Tenant:   fmt.Sprintf("s%d", s),
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
		}
		if s%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO = fleet.SLO{MinRateFPS: 1 + 2*rng.Float64()}
		} else {
			req.Objective = model.MinDelay
		}
		_, _ = m.Deploy(req) // rejections just thin the population
	}

	trace, err := gen.Churn(gen.DefaultChurnSpec(), net, gen.RNG(seed^0x9e3779b97f4a7c15))
	if err != nil {
		t.Fatalf("trace: %v", err)
	}

	rec := churn.New(m, churn.Options{Workers: 2})
	fp := &equivFingerprint{}
	for i, ev := range trace {
		r, err := rec.Apply([]model.ChurnEvent{ev.Event})
		if err != nil {
			t.Fatalf("event %d (%s): %v", i, ev.Event, err)
		}
		r.RepairMs = 0
		fp.records = append(fp.records, r)
		if (i+1)%equivRebalanceEvery == 0 {
			fp.rebalances = append(fp.rebalances, m.Rebalance(fleet.RebalanceOptions{Workers: 2}))
		}
	}

	deps := m.List()
	sort.Slice(deps, func(i, j int) bool { return deps[i].ID < deps[j].ID })
	fp.deps = deps
	fp.stats = m.Stats()
	cs := rec.Stats()
	cs.MeanRepairMs, cs.MaxRepairMs = 0, 0
	fp.churnStats = cs

	snap := m.(snapshotter).Snapshot()
	fp.residual = snap

	// A Pareto front solved on the final residual view: end-state capacity
	// bit-identity expressed through the tradeoff sweep. The probe pipeline
	// is seeded off the case, independent of the tenant RNG stream.
	pl, err := gen.Pipeline(5, gen.DefaultRanges(), gen.RNG(spec.Seed^0xc0ffee))
	if err != nil {
		t.Fatalf("probe pipeline: %v", err)
	}
	p := &model.Problem{Net: snap, Pipe: pl, Src: 0, Dst: model.NodeID(net.N() - 1)}
	if front, ferr := core.ParetoFront(p, 6, 0); ferr != nil {
		fp.frontErr = ferr.Error() // deeply degraded residuals can be infeasible
	} else {
		fp.front = front
	}
	return fp, m.WarmSolveStats()
}

// assertFingerprintsEqual fails the test with a field-level diagnosis when
// the warm and cold fingerprints are not byte-identical.
func assertFingerprintsEqual(t *testing.T, cold, warm *equivFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(cold.records, warm.records) {
		for i := range cold.records {
			if i < len(warm.records) && !reflect.DeepEqual(cold.records[i], warm.records[i]) {
				t.Errorf("repair record %d diverges:\n cold: %+v\n warm: %+v", i, cold.records[i], warm.records[i])
				break
			}
		}
		t.Errorf("per-event repair records diverge (cold %d, warm %d)", len(cold.records), len(warm.records))
	}
	if !reflect.DeepEqual(cold.rebalances, warm.rebalances) {
		t.Errorf("rebalance reports diverge:\n cold: %+v\n warm: %+v", cold.rebalances, warm.rebalances)
	}
	if !reflect.DeepEqual(cold.deps, warm.deps) {
		t.Errorf("final deployment sets diverge (cold %d, warm %d)", len(cold.deps), len(warm.deps))
		for i := range cold.deps {
			if i < len(warm.deps) && !reflect.DeepEqual(cold.deps[i], warm.deps[i]) {
				t.Errorf("deployment %q diverges:\n cold: %+v\n warm: %+v", cold.deps[i].ID, cold.deps[i], warm.deps[i])
				break
			}
		}
	}
	if cold.stats != warm.stats {
		t.Errorf("fleet stats diverge:\n cold: %+v\n warm: %+v", cold.stats, warm.stats)
	}
	if cold.churnStats != warm.churnStats {
		t.Errorf("reconciler stats diverge:\n cold: %+v\n warm: %+v", cold.churnStats, warm.churnStats)
	}
	if !reflect.DeepEqual(cold.residual, warm.residual) {
		t.Errorf("final residual networks diverge")
	}
	if cold.frontErr != warm.frontErr || !reflect.DeepEqual(cold.front, warm.front) {
		t.Errorf("final-state Pareto fronts diverge:\n cold: %+v (%s)\n warm: %+v (%s)",
			cold.front, cold.frontErr, warm.front, warm.frontErr)
	}
}

// equivManagerKinds is the manager matrix the suite runs: a plain Fleet,
// and sharded fleets at K=1 and K=3.
var equivManagerKinds = []struct {
	name string
	mk   func(*model.Network) (fleet.Manager, error)
}{
	{"plain", func(n *model.Network) (fleet.Manager, error) { return fleet.New(n) }},
	{"sharded-k1", func(n *model.Network) (fleet.Manager, error) { return fleet.NewSharded(n, 1) }},
	{"sharded-k3", func(n *model.Network) (fleet.Manager, error) { return fleet.NewSharded(n, 3) }},
}

// TestWarmColdEquivalence replays identical seeded churn/rebalance traces
// warm and cold and requires byte-identical observables. Plain fleets cover
// the full Suite20; sharded fleets cover a spread subset (every fourth
// case). -short trims the plain sweep to every fifth case.
func TestWarmColdEquivalence(t *testing.T) {
	suite := gen.Suite20()
	for _, kind := range equivManagerKinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			var warmTotal uint64
			for ci, spec := range suite {
				switch kind.name {
				case "plain":
					if testing.Short() && ci%5 != 0 {
						continue
					}
				default:
					if ci%4 != 0 {
						continue
					}
					if testing.Short() && ci != 0 {
						continue
					}
				}
				spec := spec
				t.Run(spec.String(), func(t *testing.T) {
					seed := uint64(0x5eed0000) + uint64(spec.ID)
					cold, coldWarmStats := runEquivalenceTrace(t, kind.mk, false, spec, seed)
					warm, warmStats := runEquivalenceTrace(t, kind.mk, true, spec, seed)
					if coldWarmStats.Total() != 0 {
						t.Errorf("cold run recorded warm solves: %+v", coldWarmStats)
					}
					warmTotal += warmStats.Total()
					assertFingerprintsEqual(t, cold, warm)
				})
			}
			if warmTotal == 0 {
				t.Errorf("warm runs never exercised the warm solve path")
			}
		})
	}
}
