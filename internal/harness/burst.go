package harness

import (
	"errors"
	"fmt"
	"strings"

	"elpc/internal/fleet"
	"elpc/internal/gen"
)

// BurstScenarioResult summarizes one burst-admission comparison: the same
// deterministic bursty arrival trace replayed twice against identical fresh
// fleets — once trickling every arrival through Deploy in trace order, once
// handing each burst to DeployBatch so the fleet places it in one
// class/scarcity-ordered pass under one lock epoch. The batch replay should
// never admit less: placing the scarcest (highest class, highest demanded
// rate, tightest delay slack) requests while residual capacity is fresh
// leaves the flexible ones to fit in the leftovers.
type BurstScenarioResult struct {
	Case      int    `json:"case"`
	Network   string `json:"network"` // "n50 l1000"
	Sessions  int    `json:"sessions"`
	BurstSize int    `json:"burst_size"`
	Bursts    int    `json:"bursts"`

	// Sequential replay: one Deploy per arrival, trace order.
	SeqAdmitted      int     `json:"seq_admitted"`
	SeqRejected      int     `json:"seq_rejected"`
	SeqAdmissionRate float64 `json:"seq_admission_rate"`
	SeqPreemptions   uint64  `json:"seq_preemptions"`

	// Batch replay: one DeployBatch per burst.
	BatchAdmitted      int     `json:"batch_admitted"`
	BatchRejected      int     `json:"batch_rejected"`
	BatchAdmissionRate float64 `json:"batch_admission_rate"`
	BatchPreemptions   uint64  `json:"batch_preemptions"`

	// AdmissionGain is BatchAdmissionRate - SeqAdmissionRate (expected
	// >= 0: batch ordering can only use the burst's freedom, not lose it).
	AdmissionGain float64 `json:"admission_gain"`

	// Per-class admitted counts of the batch replay.
	BatchGuaranteed int `json:"batch_guaranteed"`
	BatchStandard   int `json:"batch_standard"`
	BatchBestEffort int `json:"batch_best_effort"`
}

// DefaultBurstArrivalSpec returns the calibrated bursty workload the burst
// scenario and benchmarks replay: bursts of 8 simultaneous sessions, long
// holds (high contention), demanding streaming rates, and a mixed
// guaranteed/standard/best-effort class split.
func DefaultBurstArrivalSpec() gen.ArrivalSpec {
	return gen.ArrivalSpec{
		Sessions:           80,
		MeanInterarrivalMs: 8000,
		MeanHoldMs:         120000,
		ModulesMin:         4,
		ModulesMax:         8,
		StreamingShare:     0.7,
		RateLo:             4,
		RateHi:             16,
		BurstSize:          8,
		GuaranteedShare:    0.2,
		BestEffortShare:    0.3,
	}
}

// request converts one arrival event into the fleet's request form.
func burstRequest(ev gen.ArrivalEvent) fleet.Request {
	return fleet.Request{
		Tenant:    fmt.Sprintf("s%d", ev.Session),
		Pipeline:  ev.Pipeline,
		Src:       ev.Src,
		Dst:       ev.Dst,
		Objective: ev.Objective,
		SLO: fleet.SLO{
			MinRateFPS: ev.MinRateFPS,
			MaxDelayMs: ev.MaxDelayMs,
			Class:      fleet.Class(ev.Class),
		},
	}
}

// releaseIfLive releases a departing session's deployment, tolerating
// not-found (the deployment may have been preempted by a guaranteed
// admission and parked — it is no longer the fleet's to release).
func releaseIfLive(f *fleet.Fleet, byID map[int]string, session int) error {
	id, ok := byID[session]
	if !ok {
		return nil
	}
	delete(byID, session)
	if err := f.Release(id); err != nil && !errors.Is(err, fleet.ErrNotFound) {
		return fmt.Errorf("harness: burst scenario release %s: %w", id, err)
	}
	return nil
}

// RunBurstScenario replays a bursty multi-tenant workload twice against
// identical fresh fleets on the given suite case's network — sequentially
// (one Deploy per arrival) and batched (one DeployBatch per burst of
// same-instant arrivals) — and reports both admission outcomes side by
// side. Departures replay identically in both; preempted deployments drain
// via TakePreempted and count toward the preemption gauges.
func RunBurstScenario(spec gen.CaseSpec, as gen.ArrivalSpec, seed uint64) (*BurstScenarioResult, error) {
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		return nil, err
	}
	events, err := gen.Arrivals(as, net, gen.DefaultRanges(), gen.RNG(seed))
	if err != nil {
		return nil, err
	}

	res := &BurstScenarioResult{
		Case:      spec.ID,
		Network:   fmt.Sprintf("n%d l%d", spec.Nodes, spec.Links),
		Sessions:  as.Sessions,
		BurstSize: as.BurstSize,
	}

	// Sequential replay: trace order, one admission attempt per arrival.
	seq, err := fleet.New(net)
	if err != nil {
		return nil, err
	}
	seqIDs := make(map[int]string, as.Sessions)
	for _, ev := range events {
		switch ev.Kind {
		case gen.Arrive:
			d, err := seq.Deploy(burstRequest(ev))
			if err != nil {
				if !errors.Is(err, fleet.ErrRejected) {
					return nil, fmt.Errorf("harness: burst scenario session %d: %w", ev.Session, err)
				}
				res.SeqRejected++
				continue
			}
			res.SeqAdmitted++
			seqIDs[ev.Session] = d.ID
		case gen.Depart:
			if err := releaseIfLive(seq, seqIDs, ev.Session); err != nil {
				return nil, err
			}
		}
		seq.TakePreempted()
	}
	res.SeqAdmissionRate = float64(res.SeqAdmitted) / float64(res.Sessions)
	res.SeqPreemptions = seq.Stats().Preemptions

	// Batch replay: identical trace, but every run of same-instant arrivals
	// is placed as one batch under one lock epoch.
	bat, err := fleet.New(net)
	if err != nil {
		return nil, err
	}
	batIDs := make(map[int]string, as.Sessions)
	flush := func(burst []gen.ArrivalEvent) error {
		if len(burst) == 0 {
			return nil
		}
		res.Bursts++
		reqs := make([]fleet.Request, len(burst))
		for i, ev := range burst {
			reqs[i] = burstRequest(ev)
		}
		for i, out := range bat.DeployBatch(reqs) {
			if out.Err != nil {
				if !errors.Is(out.Err, fleet.ErrRejected) {
					return fmt.Errorf("harness: burst scenario session %d: %w", burst[i].Session, out.Err)
				}
				res.BatchRejected++
				continue
			}
			res.BatchAdmitted++
			batIDs[burst[i].Session] = out.Deployment.ID
			switch out.Deployment.SLO.Class.Canon() {
			case fleet.ClassGuaranteed:
				res.BatchGuaranteed++
			case fleet.ClassBestEffort:
				res.BatchBestEffort++
			default:
				res.BatchStandard++
			}
		}
		bat.TakePreempted()
		return nil
	}
	var burst []gen.ArrivalEvent
	for _, ev := range events {
		if ev.Kind == gen.Arrive {
			if len(burst) > 0 && ev.TimeMs != burst[len(burst)-1].TimeMs {
				if err := flush(burst); err != nil {
					return nil, err
				}
				burst = burst[:0]
			}
			burst = append(burst, ev)
			continue
		}
		// A departure closes the open burst: releases must replay at the
		// same point in both traces for the comparison to be fair.
		if err := flush(burst); err != nil {
			return nil, err
		}
		burst = burst[:0]
		if err := releaseIfLive(bat, batIDs, ev.Session); err != nil {
			return nil, err
		}
	}
	if err := flush(burst); err != nil {
		return nil, err
	}
	res.BatchAdmissionRate = float64(res.BatchAdmitted) / float64(res.Sessions)
	res.BatchPreemptions = bat.Stats().Preemptions
	res.AdmissionGain = res.BatchAdmissionRate - res.SeqAdmissionRate
	return res, nil
}

// BurstScenarioTable renders the comparison as a small Markdown block for
// the pipebench artifacts.
func BurstScenarioTable(r *BurstScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Burst admission scenario (case %d, %s)\n\n", r.Case, r.Network)
	fmt.Fprintf(&b, "| metric | sequential | batch |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| admitted | %d | %d |\n", r.SeqAdmitted, r.BatchAdmitted)
	fmt.Fprintf(&b, "| rejected | %d | %d |\n", r.SeqRejected, r.BatchRejected)
	fmt.Fprintf(&b, "| admission rate | %.3f | %.3f |\n", r.SeqAdmissionRate, r.BatchAdmissionRate)
	fmt.Fprintf(&b, "| preemptions | %d | %d |\n", r.SeqPreemptions, r.BatchPreemptions)
	fmt.Fprintf(&b, "\n%d sessions in bursts of %d (%d bursts); admission gain %.3f.\n",
		r.Sessions, r.BurstSize, r.Bursts, r.AdmissionGain)
	fmt.Fprintf(&b, "Batch classes: %d guaranteed, %d standard, %d best-effort.\n",
		r.BatchGuaranteed, r.BatchStandard, r.BatchBestEffort)
	return b.String()
}
