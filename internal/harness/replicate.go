package harness

import (
	"fmt"
	"math"
	"strings"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/runner"
	"elpc/internal/stats"
)

// ReplicatedResult aggregates one case over R independently re-seeded
// replicas, reporting mean ± stddev per algorithm. It strengthens the
// single-draw Figure 2/5/6 numbers into Monte-Carlo estimates.
type ReplicatedResult struct {
	Spec     gen.CaseSpec
	Replicas int
	// Delay and Rate hold per-algorithm aggregates over the feasible
	// replicas only; Feasible counts them.
	Delay    map[string]stats.Summary
	Rate     map[string]stats.Summary
	Feasible map[string]int
}

// RunReplicated runs each case spec `replicas` times with derived seeds,
// parallelizing across (case, replica) pairs.
func RunReplicated(specs []gen.CaseSpec, replicas, workers int) ([]ReplicatedResult, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("harness: replicas must be >= 1, got %d", replicas)
	}
	type cell struct {
		delay map[string]float64 // NaN = infeasible
		rate  map[string]float64
	}
	total := len(specs) * replicas
	cells, err := runner.Map(total, workers, func(idx int) (cell, error) {
		spec := specs[idx/replicas]
		r := idx % replicas
		spec.Seed = spec.Seed*1_000_003 + uint64(r) // derived replica seed
		res, err := RunCase(spec)
		if err != nil {
			return cell{}, err
		}
		c := cell{delay: map[string]float64{}, rate: map[string]float64{}}
		for name, o := range res.Delay {
			v := math.NaN()
			if o.Feasible {
				v = o.Value
			}
			c.delay[name] = v
		}
		for name, o := range res.Rate {
			v := math.NaN()
			if o.Feasible {
				v = o.Value
			}
			c.rate[name] = v
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	names := MapperNames()
	out := make([]ReplicatedResult, len(specs))
	for i, spec := range specs {
		rr := ReplicatedResult{
			Spec:     spec,
			Replicas: replicas,
			Delay:    map[string]stats.Summary{},
			Rate:     map[string]stats.Summary{},
			Feasible: map[string]int{},
		}
		for _, n := range names {
			var delays, rates []float64
			for r := 0; r < replicas; r++ {
				c := cells[i*replicas+r]
				if v := c.delay[n]; !math.IsNaN(v) {
					delays = append(delays, v)
					rr.Feasible[n]++
				}
				if v := c.rate[n]; !math.IsNaN(v) {
					rates = append(rates, v)
					rr.Feasible[n]++
				}
			}
			rr.Delay[n] = stats.Summarize(delays)
			rr.Rate[n] = stats.Summarize(rates)
		}
		out[i] = rr
	}
	return out, nil
}

// ReplicatedTable renders mean±std delay and rate per case and algorithm.
func ReplicatedTable(rows []ReplicatedResult) string {
	names := MapperNames()
	var b strings.Builder
	b.WriteString("| Case | m n l |")
	for _, n := range names {
		fmt.Fprintf(&b, " Delay %s (ms) |", n)
	}
	for _, n := range names {
		fmt.Fprintf(&b, " Rate %s (fps) |", n)
	}
	b.WriteString("\n|---|---|")
	for range names {
		b.WriteString("---|---|")
	}
	b.WriteString("\n")
	cellFor := func(s stats.Summary) string {
		if s.N == 0 {
			return "—"
		}
		return fmt.Sprintf("%.1f±%.1f", s.Mean, s.StdDev)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %s |", r.Spec.ID, r.Spec)
		for _, n := range names {
			fmt.Fprintf(&b, " %s |", cellFor(r.Delay[n]))
		}
		for _, n := range names {
			fmt.Fprintf(&b, " %s |", cellFor(r.Rate[n]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MLDAblationRow compares minimum end-to-end delay with the MLD term
// included versus excluded from the transport cost (the Eq. 1 vs Section 2.2
// discrepancy; see DESIGN.md).
type MLDAblationRow struct {
	Spec          gen.CaseSpec
	WithMLD       float64 // NaN if infeasible
	WithoutMLD    float64
	PathChanged   bool // the optimizer picked a different mapping
	DeltaFraction float64
}

// RunMLDAblation evaluates the delay DP under both cost settings.
func RunMLDAblation(specs []gen.CaseSpec, workers int) ([]MLDAblationRow, error) {
	return runner.Map(len(specs), workers, func(i int) (MLDAblationRow, error) {
		spec := specs[i]
		p, err := spec.Build()
		if err != nil {
			return MLDAblationRow{}, err
		}
		row := MLDAblationRow{Spec: spec, WithMLD: math.NaN(), WithoutMLD: math.NaN()}
		pWith := *p
		pWith.Cost = model.CostOptions{IncludeMLDInDelay: true}
		pWithout := *p
		pWithout.Cost = model.CostOptions{IncludeMLDInDelay: false}
		mWith, errW := core.MinDelay(&pWith)
		mWithout, errWo := core.MinDelay(&pWithout)
		if errW == nil {
			row.WithMLD = model.TotalDelay(p.Net, p.Pipe, mWith, pWith.Cost)
		}
		if errWo == nil {
			row.WithoutMLD = model.TotalDelay(p.Net, p.Pipe, mWithout, pWithout.Cost)
		}
		if errW == nil && errWo == nil {
			row.PathChanged = mWith.String() != mWithout.String()
			if row.WithoutMLD > 0 {
				row.DeltaFraction = (row.WithMLD - row.WithoutMLD) / row.WithoutMLD
			}
		}
		return row, nil
	})
}

// MLDAblationTable renders the MLD ablation as Markdown.
func MLDAblationTable(rows []MLDAblationRow) string {
	var b strings.Builder
	b.WriteString("| Case | m n l | delay with MLD (ms) | delay Eq.1-only (ms) | MLD share | path changed |\n|---|---|---|---|---|---|\n")
	for _, r := range rows {
		w, wo := "—", "—"
		if !math.IsNaN(r.WithMLD) {
			w = fmt.Sprintf("%.1f", r.WithMLD)
		}
		if !math.IsNaN(r.WithoutMLD) {
			wo = fmt.Sprintf("%.1f", r.WithoutMLD)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %.1f%% | %v |\n",
			r.Spec.ID, r.Spec, w, wo, r.DeltaFraction*100, r.PathChanged)
	}
	return b.String()
}
