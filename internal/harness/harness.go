// Package harness drives the paper's evaluation (Section 4): it runs the
// mapping algorithms over the generated case suite and renders the tables
// and data series behind Figure 2 (per-case minimum end-to-end delay and
// maximum frame rate for ELPC, Streamline, and Greedy), Figures 5–6 (the
// same data as plots), Figures 3–4 (path illustrations on the small case),
// and this reproduction's extension ablation (frame rate with node reuse).
//
// Every mapping produced by any algorithm is validated and re-scored by the
// shared evaluator in internal/model, so the comparison is symmetric.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"elpc/internal/baseline"
	"elpc/internal/core"
	"elpc/internal/engine"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/refine"
	"elpc/internal/runner"
	"elpc/internal/sim"
)

// Outcome records one algorithm's result on one case under one objective.
type Outcome struct {
	Feasible bool
	// Value is total delay in ms (MinDelay) or frame rate in fps
	// (MaxFrameRate); NaN when infeasible.
	Value float64
	// Runtime is the wall-clock time of the Map call.
	Runtime time.Duration
	// Err holds the mapper's error for infeasible outcomes.
	Err string
}

// CaseResult aggregates all algorithms on one case.
type CaseResult struct {
	Spec  gen.CaseSpec
	Delay map[string]Outcome // minimum end-to-end delay, node reuse
	Rate  map[string]Outcome // maximum frame rate, no node reuse
}

// Mappers returns the paper's three comparison algorithms, in the order
// they appear in Figure 2's columns.
func Mappers() []model.Mapper {
	return []model.Mapper{core.Mapper{}, baseline.Streamline{}, baseline.Greedy{}}
}

// MapperNames returns the display names of Mappers, in order.
func MapperNames() []string {
	ms := Mappers()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return names
}

// RunCase builds the case instance and runs every mapper under both
// objectives, validating and scoring each produced mapping.
func RunCase(spec gen.CaseSpec) (CaseResult, error) {
	p, err := spec.Build()
	if err != nil {
		return CaseResult{}, fmt.Errorf("harness: building case %d: %w", spec.ID, err)
	}
	res := CaseResult{
		Spec:  spec,
		Delay: make(map[string]Outcome),
		Rate:  make(map[string]Outcome),
	}
	for _, mp := range Mappers() {
		res.Delay[mp.Name()] = runOne(p, mp, model.MinDelay)
		res.Rate[mp.Name()] = runOne(p, mp, model.MaxFrameRate)
	}
	return res, nil
}

func runOne(p *model.Problem, mp model.Mapper, obj model.Objective) Outcome {
	start := time.Now()
	m, err := mp.Map(p, obj)
	elapsed := time.Since(start)
	if err != nil {
		return Outcome{Feasible: false, Value: math.NaN(), Runtime: elapsed, Err: err.Error()}
	}
	if verr := p.ValidateMapping(m, obj); verr != nil {
		return Outcome{Feasible: false, Value: math.NaN(), Runtime: elapsed,
			Err: fmt.Sprintf("invalid mapping from %s: %v", mp.Name(), verr)}
	}
	var value float64
	switch obj {
	case model.MinDelay:
		value = model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
	case model.MaxFrameRate:
		value = model.FrameRate(model.Bottleneck(p.Net, p.Pipe, m))
	}
	return Outcome{Feasible: true, Value: value, Runtime: elapsed}
}

// RunSuite runs the full case list with the given parallelism (workers <= 0
// selects GOMAXPROCS).
func RunSuite(specs []gen.CaseSpec, workers int) ([]CaseResult, error) {
	return runner.Map(len(specs), workers, func(i int) (CaseResult, error) {
		return RunCase(specs[i])
	})
}

// formatValue renders a value or an infeasibility marker.
func formatValue(o Outcome, decimals int) string {
	if !o.Feasible {
		return "—"
	}
	return fmt.Sprintf("%.*f", decimals, o.Value)
}

// Fig2Table renders the Figure 2 comparison table in Markdown: one row per
// case with minimum end-to-end delay (ms, node reuse) and maximum frame
// rate (fps, no node reuse) for each algorithm.
func Fig2Table(results []CaseResult) string {
	names := MapperNames()
	var b strings.Builder
	b.WriteString("| Case | m n l |")
	for _, n := range names {
		fmt.Fprintf(&b, " Delay %s (ms) |", n)
	}
	for _, n := range names {
		fmt.Fprintf(&b, " Rate %s (fps) |", n)
	}
	b.WriteString("\n|---|---|")
	for range names {
		b.WriteString("---|")
	}
	for range names {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "| %d | %s |", r.Spec.ID, r.Spec)
		for _, n := range names {
			fmt.Fprintf(&b, " %s |", formatValue(r.Delay[n], 1))
		}
		for _, n := range names {
			fmt.Fprintf(&b, " %s |", formatValue(r.Rate[n], 2))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SeriesCSV renders a per-case CSV series ("case,<algo1>,<algo2>,...") for
// Figure 5 (delay) or Figure 6 (rate). Infeasible entries are empty cells.
func SeriesCSV(results []CaseResult, rate bool) string {
	names := MapperNames()
	var b strings.Builder
	b.WriteString("case")
	for _, n := range names {
		b.WriteString(",")
		b.WriteString(n)
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%d", r.Spec.ID)
		src := r.Delay
		if rate {
			src = r.Rate
		}
		for _, n := range names {
			o := src[n]
			if o.Feasible {
				fmt.Fprintf(&b, ",%.4f", o.Value)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Summary condenses a suite run for EXPERIMENTS.md: per-algorithm win
// counts, mean ratios to ELPC, and feasibility counts.
type Summary struct {
	Cases int
	// DelayWins / RateWins count cases where the algorithm achieved the
	// (joint-)best value among feasible ones.
	DelayWins map[string]int
	RateWins  map[string]int
	// MeanDelayRatio / MeanRateRatio are geometric-mean ratios of each
	// algorithm's value to ELPC's, over cases where both were feasible
	// (>1 means worse delay / better rate respectively).
	MeanDelayRatio map[string]float64
	MeanRateRatio  map[string]float64
	Feasible       map[string]int // feasible delay+rate outcomes per algo
}

// Summarize computes the Summary of a suite run.
func Summarize(results []CaseResult) Summary {
	names := MapperNames()
	s := Summary{
		Cases:          len(results),
		DelayWins:      map[string]int{},
		RateWins:       map[string]int{},
		MeanDelayRatio: map[string]float64{},
		MeanRateRatio:  map[string]float64{},
		Feasible:       map[string]int{},
	}
	logRatioSum := map[string]float64{}
	logRatioN := map[string]int{}
	rateLogSum := map[string]float64{}
	rateLogN := map[string]int{}
	const eps = 1e-9
	for _, r := range results {
		bestDelay, bestRate := math.Inf(1), 0.0
		for _, n := range names {
			if o := r.Delay[n]; o.Feasible {
				s.Feasible[n]++
				bestDelay = math.Min(bestDelay, o.Value)
			}
			if o := r.Rate[n]; o.Feasible {
				s.Feasible[n]++
				bestRate = math.Max(bestRate, o.Value)
			}
		}
		for _, n := range names {
			if o := r.Delay[n]; o.Feasible && o.Value <= bestDelay*(1+eps) {
				s.DelayWins[n]++
			}
			if o := r.Rate[n]; o.Feasible && o.Value >= bestRate*(1-eps) {
				s.RateWins[n]++
			}
		}
		elpcD, elpcR := r.Delay["ELPC"], r.Rate["ELPC"]
		for _, n := range names {
			if o := r.Delay[n]; o.Feasible && elpcD.Feasible && elpcD.Value > 0 {
				logRatioSum[n] += math.Log(o.Value / elpcD.Value)
				logRatioN[n]++
			}
			if o := r.Rate[n]; o.Feasible && elpcR.Feasible && elpcR.Value > 0 && o.Value > 0 {
				rateLogSum[n] += math.Log(o.Value / elpcR.Value)
				rateLogN[n]++
			}
		}
	}
	for _, n := range names {
		if logRatioN[n] > 0 {
			s.MeanDelayRatio[n] = math.Exp(logRatioSum[n] / float64(logRatioN[n]))
		}
		if rateLogN[n] > 0 {
			s.MeanRateRatio[n] = math.Exp(rateLogSum[n] / float64(rateLogN[n]))
		}
	}
	return s
}

// SummaryText renders the summary for logs and EXPERIMENTS.md.
func (s Summary) SummaryText() string {
	names := MapperNames()
	var b strings.Builder
	fmt.Fprintf(&b, "cases: %d\n", s.Cases)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-11s delay wins %2d/%d (mean ratio vs ELPC %.3fx) | rate wins %2d/%d (mean ratio %.3fx) | feasible outcomes %d\n",
			n, s.DelayWins[n], s.Cases, s.MeanDelayRatio[n], s.RateWins[n], s.Cases, s.MeanRateRatio[n], s.Feasible[n])
	}
	return b.String()
}

// ParetoCSV computes the rate-delay frontier of a case and renders it as
// CSV (delay_ms,rate_fps), the bicriteria extension artifact.
func ParetoCSV(spec gen.CaseSpec, points int) (string, error) {
	return ParetoCSVPool(spec, points, nil)
}

// ParetoCSVPool is ParetoCSV with the sweep's budget points fanned out over
// an engine pool (nil = sequential); the rendered front is identical.
func ParetoCSVPool(spec gen.CaseSpec, points int, pool *engine.Pool) (string, error) {
	p, err := spec.Build()
	if err != nil {
		return "", err
	}
	front, err := engine.ParetoFront(pool, p, points, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("delay_ms,rate_fps\n")
	for _, pt := range front {
		fmt.Fprintf(&b, "%.4f,%.4f\n", pt.DelayMs, pt.RateFPS)
	}
	return b.String(), nil
}

// RuntimeTable renders per-algorithm wall-clock mapping times per case
// (Section 4.3's runtime discussion). Runtimes come from the same RunSuite
// results used for the quality tables.
func RuntimeTable(results []CaseResult) string {
	names := MapperNames()
	var b strings.Builder
	b.WriteString("| Case | m n l |")
	for _, n := range names {
		fmt.Fprintf(&b, " %s delay | %s rate |", n, n)
	}
	b.WriteString("\n|---|---|")
	for range names {
		b.WriteString("---|---|")
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "| %d | %s |", r.Spec.ID, r.Spec)
		for _, n := range names {
			fmt.Fprintf(&b, " %v | %v |", r.Delay[n].Runtime.Round(10*time.Microsecond), r.Rate[n].Runtime.Round(10*time.Microsecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ReuseAblation is experiment E12: for each case, the no-reuse ELPC frame
// rate versus the reuse extension's rate (shared-bottleneck based).
type ReuseAblation struct {
	Spec       gen.CaseSpec
	NoReuseFPS float64 // NaN when infeasible
	ReuseFPS   float64 // NaN when infeasible
}

// RunReuseAblation evaluates the reuse extension over the suite.
func RunReuseAblation(specs []gen.CaseSpec, workers int) ([]ReuseAblation, error) {
	return runner.Map(len(specs), workers, func(i int) (ReuseAblation, error) {
		spec := specs[i]
		p, err := spec.Build()
		if err != nil {
			return ReuseAblation{}, err
		}
		out := ReuseAblation{Spec: spec, NoReuseFPS: math.NaN(), ReuseFPS: math.NaN()}
		if m, err := core.MaxFrameRate(p); err == nil {
			out.NoReuseFPS = model.FrameRate(model.Bottleneck(p.Net, p.Pipe, m))
		}
		if m, period, err := refine.MaxFrameRateWithReuse(p, refine.Options{}); err == nil {
			_ = m
			out.ReuseFPS = model.FrameRate(period)
		}
		return out, nil
	})
}

// ReuseAblationTable renders the ablation as Markdown.
func ReuseAblationTable(rows []ReuseAblation) string {
	var b strings.Builder
	b.WriteString("| Case | m n l | ELPC no-reuse (fps) | ELPC+Reuse (fps) | gain |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		nr, ru := "—", "—"
		gain := "—"
		if !math.IsNaN(r.NoReuseFPS) {
			nr = fmt.Sprintf("%.2f", r.NoReuseFPS)
		}
		if !math.IsNaN(r.ReuseFPS) {
			ru = fmt.Sprintf("%.2f", r.ReuseFPS)
		}
		if !math.IsNaN(r.NoReuseFPS) && !math.IsNaN(r.ReuseFPS) && r.NoReuseFPS > 0 {
			gain = fmt.Sprintf("%.2fx", r.ReuseFPS/r.NoReuseFPS)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s |\n", r.Spec.ID, r.Spec, nr, ru, gain)
	}
	return b.String()
}

// JitterSweepCSV streams the case's ELPC frame-rate mapping under growing
// service-time jitter and reports the measured rate per jitter level (CSV:
// jitter,rate_fps,det_rate_fps). Demonstrates that variance degrades a
// pipeline below its deterministic Eq. 2 rate — context the analytic model
// abstracts away.
func JitterSweepCSV(spec gen.CaseSpec, levels []float64, frames int) (string, error) {
	p, err := spec.Build()
	if err != nil {
		return "", err
	}
	m, err := core.MaxFrameRate(p)
	if err != nil {
		return "", err
	}
	det, err := sim.Simulate(p, m, sim.Config{Frames: frames})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("jitter,rate_fps,det_rate_fps\n")
	for _, j := range levels {
		res, err := sim.Simulate(p, m, sim.Config{
			Frames: frames,
			Jitter: j,
			Rng:    gen.RNG(spec.Seed ^ 0xfeed),
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%.2f,%.4f,%.4f\n", j, res.MeasuredRate(), det.MeasuredRate())
	}
	return b.String(), nil
}
