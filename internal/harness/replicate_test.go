package harness

import (
	"math"
	"strings"
	"testing"

	"elpc/internal/gen"
)

func TestRunReplicated(t *testing.T) {
	specs := gen.Suite20()[:3]
	rows, err := RunReplicated(specs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Replicas != 4 {
			t.Errorf("replicas = %d", r.Replicas)
		}
		elpc := r.Delay["ELPC"]
		if elpc.N == 0 {
			t.Errorf("case %d: ELPC delay never feasible", r.Spec.ID)
			continue
		}
		if elpc.Mean <= 0 || math.IsNaN(elpc.Mean) {
			t.Errorf("case %d: mean delay %v", r.Spec.ID, elpc.Mean)
		}
		if elpc.Min > elpc.Mean || elpc.Mean > elpc.Max {
			t.Errorf("case %d: summary ordering broken %+v", r.Spec.ID, elpc)
		}
		// Replicas must actually differ (different seeds): with 4 draws the
		// delay spread should be nonzero almost surely.
		if elpc.N >= 2 && elpc.StdDev == 0 {
			t.Errorf("case %d: zero variance across replicas — seeds not varying?", r.Spec.ID)
		}
	}
	table := ReplicatedTable(rows)
	if !strings.Contains(table, "±") {
		t.Error("replicated table missing ± cells")
	}
	if _, err := RunReplicated(specs, 0, 0); err == nil {
		t.Error("replicas=0 should error")
	}
}

func TestReplicatedDeterminism(t *testing.T) {
	specs := gen.Suite20()[:2]
	a, err := RunReplicated(specs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicated(specs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Delay["ELPC"].Mean != b[i].Delay["ELPC"].Mean {
			t.Errorf("case %d: replicated means differ across parallelism", specs[i].ID)
		}
	}
}

func TestRunMLDAblation(t *testing.T) {
	rows, err := RunMLDAblation(gen.Suite20()[:5], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.WithMLD) || math.IsNaN(r.WithoutMLD) {
			t.Errorf("case %d: ablation arm infeasible", r.Spec.ID)
			continue
		}
		// Including MLD can only increase the optimal total delay.
		if r.WithMLD < r.WithoutMLD-1e-9 {
			t.Errorf("case %d: delay with MLD %v below without %v", r.Spec.ID, r.WithMLD, r.WithoutMLD)
		}
		if r.DeltaFraction < 0 {
			t.Errorf("case %d: negative MLD share", r.Spec.ID)
		}
	}
	table := MLDAblationTable(rows)
	if !strings.Contains(table, "MLD share") {
		t.Error("ablation table malformed")
	}
}
