package harness

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"elpc/internal/churn"
	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// WarmScenarioResult summarizes the warm-start scenario: the same populated
// fleet and seeded churn trace replayed twice — once with warm-start
// incremental solving on (retained DP grids, delta invalidation) and once
// fully cold — with the final states checked for byte-identity. The hit
// counters and ratio are deterministic quality metrics; the repair
// latencies and their speedup are wall clock.
type WarmScenarioResult struct {
	Case    int    `json:"case"`
	Network string `json:"network"` // "n10 l60"
	// Deployments is the number admitted before the trace; Events the
	// trace length.
	Deployments int `json:"deployments"`
	Events      int `json:"events"`
	// Rebuilds/Partials/Hits/Bypasses are the warm replay's per-solve
	// outcome counters (fleet.WarmSolveStats): a partial recomputed only
	// the capacity-delta-invalidated grid cells, a hit recomputed none.
	Rebuilds uint64 `json:"rebuilds"`
	Partials uint64 `json:"partials"`
	Hits     uint64 `json:"hits"`
	Bypasses uint64 `json:"bypasses"`
	// HitRatio is (Hits + Partials) / total warm-tracked solves: the
	// fraction of solves that reused previous grids instead of rebuilding.
	HitRatio float64 `json:"hit_ratio"`
	// Cold/Warm repair latencies are per-event wall clock (machine-
	// dependent); RepairSpeedup is ColdMeanRepairMs / WarmMeanRepairMs.
	ColdMeanRepairMs float64 `json:"cold_mean_repair_ms"`
	WarmMeanRepairMs float64 `json:"warm_mean_repair_ms"`
	ColdMaxRepairMs  float64 `json:"cold_max_repair_ms"`
	WarmMaxRepairMs  float64 `json:"warm_max_repair_ms"`
	RepairSpeedup    float64 `json:"repair_speedup"`
}

// warmReplay is one replayed trace: the end-state fingerprint the two
// replays are compared on, plus the reconciler's latency summary.
type warmReplay struct {
	deps       []fleet.Deployment
	stats      fleet.Stats
	admitted   int
	churnStats churn.Stats
	warm       fleet.WarmSolveStats
}

// runWarmReplay populates a fresh fleet on net with the standard tenant mix
// and replays the trace through a reconciler, warm or cold.
func runWarmReplay(net *model.Network, trace []gen.ChurnEvent, sessions int, seed uint64, warm bool) (*warmReplay, error) {
	f, err := fleet.New(net)
	if err != nil {
		return nil, err
	}
	f.SetWarmStart(warm)

	rng := gen.RNG(seed)
	r := &warmReplay{}
	for s := 0; s < sessions; s++ {
		pl, err := gen.Pipeline(4+rng.IntN(4), gen.DefaultRanges(), rng)
		if err != nil {
			return nil, err
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		req := fleet.Request{
			Tenant:   fmt.Sprintf("s%d", s),
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
		}
		if s%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO = fleet.SLO{MinRateFPS: 1 + 2*rng.Float64()}
		} else {
			req.Objective = model.MinDelay
		}
		if _, err := f.Deploy(req); err != nil {
			continue // rejections just thin the population
		}
		r.admitted++
	}

	rec := churn.New(f, churn.Options{})
	for i, ev := range trace {
		if _, err := rec.Apply([]model.ChurnEvent{ev.Event}); err != nil {
			return nil, fmt.Errorf("harness: warm scenario event %d (%s): %w", i, ev.Event, err)
		}
	}

	r.deps = f.List()
	sort.Slice(r.deps, func(i, j int) bool { return r.deps[i].ID < r.deps[j].ID })
	r.stats = f.Stats()
	r.churnStats = rec.Stats()
	r.warm = f.WarmSolveStats()
	return r, nil
}

// RunWarmScenario replays the same populated fleet and seeded churn trace
// warm and cold, verifies the two end states are byte-identical (a
// divergence is an error, not a metric — warm-start must never change a
// placement decision), and reports the warm replay's hit counters along
// with both replays' repair latencies.
func RunWarmScenario(spec gen.CaseSpec, cs gen.ChurnSpec, sessions int, seed uint64) (*WarmScenarioResult, error) {
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		return nil, err
	}
	trace, err := gen.Churn(cs, net, gen.RNG(seed^0x9e3779b97f4a7c15))
	if err != nil {
		return nil, err
	}

	cold, err := runWarmReplay(net, trace, sessions, seed, false)
	if err != nil {
		return nil, err
	}
	warm, err := runWarmReplay(net, trace, sessions, seed, true)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(cold.deps, warm.deps) || cold.stats != warm.stats {
		return nil, fmt.Errorf("harness: warm scenario case %d: warm and cold replays diverged (%d vs %d deployments)",
			spec.ID, len(cold.deps), len(warm.deps))
	}

	res := &WarmScenarioResult{
		Case:             spec.ID,
		Network:          fmt.Sprintf("n%d l%d", spec.Nodes, spec.Links),
		Deployments:      warm.admitted,
		Events:           len(trace),
		Rebuilds:         warm.warm.Rebuilds,
		Partials:         warm.warm.Partials,
		Hits:             warm.warm.Hits,
		Bypasses:         warm.warm.Bypasses,
		HitRatio:         warm.warm.HitRatio(),
		ColdMeanRepairMs: cold.churnStats.MeanRepairMs,
		WarmMeanRepairMs: warm.churnStats.MeanRepairMs,
		ColdMaxRepairMs:  cold.churnStats.MaxRepairMs,
		WarmMaxRepairMs:  warm.churnStats.MaxRepairMs,
	}
	if warm.churnStats.MeanRepairMs > 0 {
		res.RepairSpeedup = cold.churnStats.MeanRepairMs / warm.churnStats.MeanRepairMs
	}
	return res, nil
}

// WarmScenarioTable renders the scenario as a small Markdown block for the
// pipebench artifacts.
func WarmScenarioTable(r *WarmScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Warm-start scenario (case %d, %s)\n\n", r.Case, r.Network)
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| deployments before churn | %d |\n", r.Deployments)
	fmt.Fprintf(&b, "| events | %d |\n", r.Events)
	fmt.Fprintf(&b, "| warm solves: rebuild / partial / hit / bypass | %d / %d / %d / %d |\n",
		r.Rebuilds, r.Partials, r.Hits, r.Bypasses)
	fmt.Fprintf(&b, "| warm-hit ratio | %.3f |\n", r.HitRatio)
	fmt.Fprintf(&b, "| mean repair latency (cold) | %.3f ms |\n", r.ColdMeanRepairMs)
	fmt.Fprintf(&b, "| mean repair latency (warm) | %.3f ms |\n", r.WarmMeanRepairMs)
	fmt.Fprintf(&b, "| repair speedup (warm vs cold) | %.2fx |\n", r.RepairSpeedup)
	fmt.Fprintf(&b, "| warm == cold end state | yes (checked) |\n")
	return b.String()
}
