package harness

import (
	"errors"
	"fmt"
	"strings"

	"elpc/internal/fleet"
	"elpc/internal/gen"
)

// FleetScenarioResult summarizes one multi-tenant fleet replay: a
// deterministic arrival/departure schedule played against a Fleet over one
// suite network, followed by a rebalance pass.
type FleetScenarioResult struct {
	Case     int    `json:"case"`
	Network  string `json:"network"` // "n50 l1000"
	Sessions int    `json:"sessions"`
	// Admitted / Rejected count arrival outcomes; AdmissionRate is
	// Admitted/Sessions.
	Admitted      int     `json:"admitted"`
	Rejected      int     `json:"rejected"`
	AdmissionRate float64 `json:"admission_rate"`
	// MeanDeployedFPS averages the sustainable frame rate of admitted
	// deployments at admission time.
	MeanDeployedFPS float64 `json:"mean_deployed_fps"`
	// MeanReservedFPS averages the capacity actually reserved.
	MeanReservedFPS float64 `json:"mean_reserved_fps"`
	// PeakNodeUtil / PeakLinkUtil are the highest utilization gauges seen
	// during the replay.
	PeakNodeUtil float64 `json:"peak_node_util"`
	PeakLinkUtil float64 `json:"peak_link_util"`
	// RebalanceMoves and RebalanceMeanGain report the final rebalance pass
	// over the deployments still live at the end of the schedule.
	RebalanceMoves    int     `json:"rebalance_moves"`
	RebalanceMeanGain float64 `json:"rebalance_mean_gain"`
}

// RunFleetScenario replays a generated multi-tenant workload against a
// fresh fleet on the given suite case's network: deploy on every arrival
// (counting admissions and rejections), release on every departure of an
// admitted session, then run one rebalance pass over the survivors.
func RunFleetScenario(spec gen.CaseSpec, as gen.ArrivalSpec, seed uint64) (*FleetScenarioResult, error) {
	net, err := gen.Network(spec.Nodes, spec.Links, gen.DefaultRanges(), gen.RNG(spec.Seed))
	if err != nil {
		return nil, err
	}
	events, err := gen.Arrivals(as, net, gen.DefaultRanges(), gen.RNG(seed))
	if err != nil {
		return nil, err
	}
	f, err := fleet.New(net)
	if err != nil {
		return nil, err
	}

	res := &FleetScenarioResult{
		Case:     spec.ID,
		Network:  fmt.Sprintf("n%d l%d", spec.Nodes, spec.Links),
		Sessions: as.Sessions,
	}
	byID := make(map[int]string, as.Sessions)
	for _, ev := range events {
		switch ev.Kind {
		case gen.Arrive:
			d, err := f.Deploy(fleet.Request{
				Tenant:    fmt.Sprintf("s%d", ev.Session),
				Pipeline:  ev.Pipeline,
				Src:       ev.Src,
				Dst:       ev.Dst,
				Objective: ev.Objective,
				SLO:       fleet.SLO{MinRateFPS: ev.MinRateFPS, MaxDelayMs: ev.MaxDelayMs},
			})
			if err != nil {
				if !errors.Is(err, fleet.ErrRejected) {
					return nil, fmt.Errorf("harness: fleet scenario session %d: %w", ev.Session, err)
				}
				res.Rejected++
				continue
			}
			res.Admitted++
			res.MeanDeployedFPS += d.RateFPS
			res.MeanReservedFPS += d.ReservedFPS
			byID[ev.Session] = d.ID
			s := f.Stats()
			if s.MaxNodeUtil > res.PeakNodeUtil {
				res.PeakNodeUtil = s.MaxNodeUtil
			}
			if s.MaxLinkUtil > res.PeakLinkUtil {
				res.PeakLinkUtil = s.MaxLinkUtil
			}
		case gen.Depart:
			if id, ok := byID[ev.Session]; ok {
				if err := f.Release(id); err != nil {
					return nil, fmt.Errorf("harness: fleet scenario release %s: %w", id, err)
				}
				delete(byID, ev.Session)
			}
		}
	}
	if res.Admitted > 0 {
		res.MeanDeployedFPS /= float64(res.Admitted)
		res.MeanReservedFPS /= float64(res.Admitted)
	}
	res.AdmissionRate = float64(res.Admitted) / float64(res.Sessions)

	rep := f.Rebalance(fleet.RebalanceOptions{})
	res.RebalanceMoves = rep.Applied
	res.RebalanceMeanGain = rep.MeanGain
	return res, nil
}

// FleetScenarioTable renders the scenario as a small Markdown block for the
// pipebench artifacts.
func FleetScenarioTable(r *FleetScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Fleet scenario (case %d, %s)\n\n", r.Case, r.Network)
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| sessions | %d |\n", r.Sessions)
	fmt.Fprintf(&b, "| admitted | %d |\n", r.Admitted)
	fmt.Fprintf(&b, "| rejected | %d |\n", r.Rejected)
	fmt.Fprintf(&b, "| admission rate | %.3f |\n", r.AdmissionRate)
	fmt.Fprintf(&b, "| mean deployed rate | %.2f fps |\n", r.MeanDeployedFPS)
	fmt.Fprintf(&b, "| mean reserved rate | %.2f fps |\n", r.MeanReservedFPS)
	fmt.Fprintf(&b, "| peak node util | %.3f |\n", r.PeakNodeUtil)
	fmt.Fprintf(&b, "| peak link util | %.3f |\n", r.PeakLinkUtil)
	fmt.Fprintf(&b, "| rebalance moves | %d |\n", r.RebalanceMoves)
	fmt.Fprintf(&b, "| rebalance mean gain | %.3f |\n", r.RebalanceMeanGain)
	return b.String()
}
