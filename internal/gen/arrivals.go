package gen

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"elpc/internal/model"
)

// EventKind tags one fleet workload event.
type EventKind int

const (
	// Arrive asks the fleet to deploy the session's pipeline.
	Arrive EventKind = iota
	// Depart releases the session's deployment (if it was admitted).
	Depart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == Depart {
		return "depart"
	}
	return "arrive"
}

// ArrivalEvent is one event of a multi-tenant workload: session Session
// arrives (bringing a pipeline, endpoints, an objective, and an SLO) or
// departs. Events are ordered by TimeMs.
type ArrivalEvent struct {
	TimeMs  float64
	Kind    EventKind
	Session int

	// Deployment parameters; set on Arrive events only.
	Pipeline   *model.Pipeline
	Src, Dst   model.NodeID
	Objective  model.Objective
	MinRateFPS float64
	MaxDelayMs float64
	// Class is the session's SLO class ("guaranteed", "standard",
	// "best_effort"; empty = standard). Drawn only when the spec sets class
	// shares, so classless specs replay bit-for-bit as before.
	Class string
}

// ArrivalSpec shapes a generated multi-tenant workload. Interarrival and
// holding times are exponentially distributed (a Poisson-ish birth–death
// process), drawn deterministically from the generator seed so the whole
// schedule replays bit-for-bit.
type ArrivalSpec struct {
	// Sessions is the number of arriving tenants.
	Sessions int
	// MeanInterarrivalMs spaces arrivals.
	MeanInterarrivalMs float64
	// MeanHoldMs is the mean time between a session's arrival and its
	// departure.
	MeanHoldMs float64
	// ModulesMin..ModulesMax bounds each session's pipeline length.
	ModulesMin, ModulesMax int
	// StreamingShare is the fraction of sessions placed for max frame rate
	// (the rest are interactive min-delay sessions), in [0, 1].
	StreamingShare float64
	// RateLo..RateHi bounds the streaming sessions' demanded frame rates
	// (fps). Interactive sessions demand no explicit rate (the fleet's
	// default applies).
	RateLo, RateHi float64
	// DelaySlackFactor relaxes interactive delay SLOs: 0 disables delay
	// SLOs; otherwise each interactive session receives a budget of
	// DelaySlackFactor times the suite's typical delay scale (1000 ms).
	DelaySlackFactor float64
	// BurstSize groups arrivals into bursts sharing one timestamp: the
	// clock advances only every BurstSize-th session, so a replay sees
	// BurstSize simultaneous deploy requests at each arrival instant.
	// <= 1 disables bursting (every arrival gets its own instant).
	BurstSize int
	// GuaranteedShare and BestEffortShare split sessions across SLO
	// classes (the remainder is standard). Both zero disables class
	// assignment entirely — no extra random draws — so classless specs
	// replay bit-for-bit as before.
	GuaranteedShare, BestEffortShare float64
}

// DefaultArrivalSpec returns a workload calibrated for Suite20-class
// networks: 40 sessions, moderate load, a 50/50 streaming/interactive mix,
// and streaming demands of 1–6 fps.
func DefaultArrivalSpec() ArrivalSpec {
	return ArrivalSpec{
		Sessions:           40,
		MeanInterarrivalMs: 2000,
		MeanHoldMs:         20000,
		ModulesMin:         4,
		ModulesMax:         8,
		StreamingShare:     0.5,
		RateLo:             1,
		RateHi:             6,
	}
}

func (s ArrivalSpec) validate(netNodes int) error {
	if s.Sessions < 1 {
		return fmt.Errorf("gen: arrivals need >= 1 session, got %d", s.Sessions)
	}
	if s.MeanInterarrivalMs <= 0 || s.MeanHoldMs <= 0 {
		return fmt.Errorf("gen: arrival/hold means must be positive")
	}
	if s.ModulesMin < 2 || s.ModulesMax < s.ModulesMin {
		return fmt.Errorf("gen: bad module bounds [%d, %d]", s.ModulesMin, s.ModulesMax)
	}
	if s.ModulesMax > netNodes {
		return fmt.Errorf("gen: %d modules exceed %d network nodes (no-reuse streaming would always be infeasible)",
			s.ModulesMax, netNodes)
	}
	if s.StreamingShare < 0 || s.StreamingShare > 1 {
		return fmt.Errorf("gen: streaming share %v outside [0,1]", s.StreamingShare)
	}
	if s.RateLo < 0 || s.RateHi < s.RateLo {
		return fmt.Errorf("gen: bad rate bounds [%v, %v]", s.RateLo, s.RateHi)
	}
	if s.GuaranteedShare < 0 || s.BestEffortShare < 0 || s.GuaranteedShare+s.BestEffortShare > 1 {
		return fmt.Errorf("gen: class shares [%v guaranteed, %v best-effort] must be non-negative and sum to <= 1",
			s.GuaranteedShare, s.BestEffortShare)
	}
	return nil
}

// Arrivals generates a deterministic multi-tenant workload over net: one
// Arrive and one Depart event per session, merged into a single time-sorted
// schedule. Replaying the schedule against a fleet (deploy on Arrive,
// release on Depart when the session was admitted) exercises admission
// control under churn.
func Arrivals(spec ArrivalSpec, net *model.Network, r Ranges, rng *rand.Rand) ([]ArrivalEvent, error) {
	if net == nil {
		return nil, fmt.Errorf("gen: arrivals need a network")
	}
	if err := spec.validate(net.N()); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}

	events := make([]ArrivalEvent, 0, 2*spec.Sessions)
	clock := 0.0
	for s := 0; s < spec.Sessions; s++ {
		// Bursty arrivals share a timestamp: the clock advances only at
		// burst boundaries, so a replay sees BurstSize requests at once.
		if spec.BurstSize <= 1 || s%spec.BurstSize == 0 {
			clock += rng.ExpFloat64() * spec.MeanInterarrivalMs
		}
		nMod := spec.ModulesMin + rng.IntN(spec.ModulesMax-spec.ModulesMin+1)
		pl, err := Pipeline(nMod, r, rng)
		if err != nil {
			return nil, err
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		ev := ArrivalEvent{
			TimeMs:   clock,
			Kind:     Arrive,
			Session:  s,
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
		}
		if rng.Float64() < spec.StreamingShare {
			ev.Objective = model.MaxFrameRate
			ev.MinRateFPS = uniform(rng, spec.RateLo, spec.RateHi)
		} else {
			ev.Objective = model.MinDelay
			if spec.DelaySlackFactor > 0 {
				ev.MaxDelayMs = spec.DelaySlackFactor * 1000
			}
		}
		if spec.GuaranteedShare > 0 || spec.BestEffortShare > 0 {
			switch u := rng.Float64(); {
			case u < spec.GuaranteedShare:
				ev.Class = "guaranteed"
			case u < spec.GuaranteedShare+spec.BestEffortShare:
				ev.Class = "best_effort"
			default:
				ev.Class = "standard"
			}
		}
		events = append(events, ev)
		events = append(events, ArrivalEvent{
			TimeMs:  clock + rng.ExpFloat64()*spec.MeanHoldMs,
			Kind:    Depart,
			Session: s,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TimeMs < events[j].TimeMs })
	return events, nil
}
