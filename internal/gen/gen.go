// Package gen generates the simulated application pipelines and computing
// networks of the paper's evaluation (Section 4.1): random pipelines with
// varying module counts, complexities, and data sizes, and random arbitrary-
// topology networks with varying node counts, processing powers, link
// counts, bandwidths, and minimum link delays.
//
// All generation is deterministic given a seed, so the full experiment suite
// is reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// Ranges bounds the randomly drawn pipeline and network attributes. Sizes,
// powers and bandwidths are drawn log-uniformly (heterogeneous resources
// span orders of magnitude); complexities and MLDs uniformly.
//
// The defaults are calibrated so that the evaluation suite lands in the
// paper's reported bands: minimum end-to-end delays of roughly 10²–10³ ms
// and maximum frame rates of roughly 5–45 frames/s.
type Ranges struct {
	ComplexityMin, ComplexityMax float64 // ops per input byte
	BytesMin, BytesMax           float64 // module output sizes, bytes
	PowerMin, PowerMax           float64 // node power, ops/ms
	BWMin, BWMax                 float64 // link bandwidth, Mbit/s
	MLDMin, MLDMax               float64 // minimum link delay, ms
}

// DefaultRanges returns the calibrated attribute ranges used by the
// evaluation suite.
func DefaultRanges() Ranges {
	return Ranges{
		ComplexityMin: 20, ComplexityMax: 200,
		BytesMin: 5e4, BytesMax: 2e6, // 50 KB .. 2 MB
		PowerMin: 1e6, PowerMax: 2e7, // ~1 .. 20 Gops/s
		BWMin: 10, BWMax: 1000, // 10 Mbps .. 1 Gbps
		MLDMin: 0.1, MLDMax: 5,
	}
}

func (r Ranges) validate() error {
	check := func(name string, lo, hi float64, positive bool) error {
		if lo > hi {
			return fmt.Errorf("gen: %s range [%v,%v] inverted", name, lo, hi)
		}
		if positive && lo <= 0 {
			return fmt.Errorf("gen: %s range must be positive, got min %v", name, lo)
		}
		return nil
	}
	for _, e := range []error{
		check("complexity", r.ComplexityMin, r.ComplexityMax, true),
		check("bytes", r.BytesMin, r.BytesMax, true),
		check("power", r.PowerMin, r.PowerMax, true),
		check("bandwidth", r.BWMin, r.BWMax, true),
		check("mld", r.MLDMin, r.MLDMax, false),
	} {
		if e != nil {
			return e
		}
	}
	if r.MLDMin < 0 {
		return fmt.Errorf("gen: negative MLD minimum %v", r.MLDMin)
	}
	return nil
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return math.Exp(uniform(rng, math.Log(lo), math.Log(hi)))
}

// Pipeline generates a random linear pipeline with n modules. Module 0 is
// the data source (zero complexity); the final module is the sink with zero
// output. Data sizes vary per stage, modeling filtering/expansion.
func Pipeline(n int, r Ranges, rng *rand.Rand) (*model.Pipeline, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: pipeline needs >= 2 modules, got %d", n)
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	modules := make([]model.Module, n)
	prevOut := logUniform(rng, r.BytesMin, r.BytesMax)
	modules[0] = model.Module{ID: 0, Name: "source", OutBytes: prevOut}
	for j := 1; j < n; j++ {
		out := logUniform(rng, r.BytesMin, r.BytesMax)
		name := fmt.Sprintf("stage-%d", j)
		if j == n-1 {
			out = 0
			name = "sink"
		}
		modules[j] = model.Module{
			ID:         j,
			Name:       name,
			Complexity: uniform(rng, r.ComplexityMin, r.ComplexityMax),
			InBytes:    prevOut,
			OutBytes:   out,
		}
		prevOut = out
	}
	return model.NewPipeline(modules)
}

// Network generates a strongly connected random network with n nodes and l
// directed links, drawing node powers, link bandwidths and MLDs from r.
func Network(n, l int, r Ranges, rng *rand.Rand) (*model.Network, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	topo, err := graph.RandomConnected(n, l, rng)
	if err != nil {
		return nil, err
	}
	nodes := make([]model.Node, n)
	for i := range nodes {
		nodes[i] = model.Node{
			ID:    model.NodeID(i),
			Name:  fmt.Sprintf("node-%d", i),
			Power: logUniform(rng, r.PowerMin, r.PowerMax),
		}
	}
	links := make([]model.Link, topo.M())
	for i := range links {
		e := topo.Edge(i)
		links[i] = model.Link{
			ID:     i,
			From:   model.NodeID(e.From),
			To:     model.NodeID(e.To),
			BWMbps: logUniform(rng, r.BWMin, r.BWMax),
			MLDms:  uniform(rng, r.MLDMin, r.MLDMax),
		}
	}
	return model.NewNetwork(nodes, links)
}

// Problem generates a complete random problem instance: a pipeline with
// spec.Modules stages mapped onto a network with spec.Nodes nodes and
// spec.Links links. The source is a random node and the destination a
// distinct random node, mirroring the paper's designated data-source and
// end-user locations.
func Problem(spec CaseSpec, r Ranges, rng *rand.Rand) (*model.Problem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pl, err := Pipeline(spec.Modules, r, rng)
	if err != nil {
		return nil, err
	}
	net, err := Network(spec.Nodes, spec.Links, r, rng)
	if err != nil {
		return nil, err
	}
	src := model.NodeID(rng.IntN(spec.Nodes))
	dst := model.NodeID(rng.IntN(spec.Nodes - 1))
	if dst >= src {
		dst++
	}
	return &model.Problem{
		Net:  net,
		Pipe: pl,
		Src:  src,
		Dst:  dst,
		Cost: model.DefaultCostOptions(),
	}, nil
}

// RNG returns the deterministic generator for a given 64-bit seed.
func RNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// RandomTinyProblem draws a small random instance suitable for exhaustive
// verification in property-based tests: 3..maxModules modules on a network
// of modules..maxNodes nodes with random density. maxNodes must be at least
// maxModules.
func RandomTinyProblem(rng *rand.Rand, maxModules, maxNodes int) (*model.Problem, error) {
	if maxModules < 3 || maxNodes < maxModules {
		return nil, fmt.Errorf("gen: bad tiny bounds (%d, %d)", maxModules, maxNodes)
	}
	m := 3 + rng.IntN(maxModules-2)
	n := m + rng.IntN(maxNodes-m+1)
	minL := 2 * (n - 1)
	maxL := graph.MaxEdges(n)
	l := minL + rng.IntN(maxL-minL+1)
	return Problem(CaseSpec{ID: 0, Modules: m, Nodes: n, Links: l}, DefaultRanges(), rng)
}
