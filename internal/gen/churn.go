package gen

import (
	"fmt"
	"math/rand/v2"

	"elpc/internal/model"
)

// ChurnEvent is one timed network mutation of a generated churn trace.
type ChurnEvent struct {
	TimeMs float64
	Event  model.ChurnEvent
}

// ChurnSpec shapes a generated churn trace: how many events, how fast they
// arrive, and the mix of failures, degradations, and drift. The generator
// tracks the network state it implies (which nodes are down, which links
// degraded), so every trace replays cleanly — no double-downs, no restores
// of healthy nodes — and deterministically for a given seed.
type ChurnSpec struct {
	// Events is the trace length.
	Events int
	// MeanIntervalMs spaces events exponentially.
	MeanIntervalMs float64
	// NodeShare is the fraction of events that fail/recover nodes,
	// LinkShare the fraction that degrade/restore links; the remainder
	// drifts capacity. Each must be in [0, 1] with NodeShare+LinkShare <= 1.
	NodeShare float64
	LinkShare float64
	// MaxDownFrac caps the fraction of nodes that may be down at once, so
	// a trace can not black out the whole network; at least one node
	// always stays up.
	MaxDownFrac float64
	// DegradeLo..DegradeHi bounds LinkDegrade factors (fractions of
	// nominal bandwidth, in (0,1)).
	DegradeLo, DegradeHi float64
	// DriftLo..DriftHi bounds CapacityDrift factors (multiplicative; < 1
	// shrinks, > 1 grows — growth clamps at nominal).
	DriftLo, DriftHi float64
}

// DefaultChurnSpec returns a trace shape calibrated for Suite20-class
// networks: a 60-event mixed trace with at most a fifth of the nodes down
// at once, moderate degradations, and ±25% drift.
func DefaultChurnSpec() ChurnSpec {
	return ChurnSpec{
		Events:         60,
		MeanIntervalMs: 5000,
		NodeShare:      0.3,
		LinkShare:      0.4,
		MaxDownFrac:    0.2,
		DegradeLo:      0.2,
		DegradeHi:      0.8,
		DriftLo:        0.75,
		DriftHi:        1.25,
	}
}

func (s ChurnSpec) validate() error {
	if s.Events < 1 {
		return fmt.Errorf("gen: churn trace needs >= 1 event, got %d", s.Events)
	}
	if s.MeanIntervalMs <= 0 {
		return fmt.Errorf("gen: churn mean interval must be positive")
	}
	if s.NodeShare < 0 || s.LinkShare < 0 || s.NodeShare+s.LinkShare > 1 {
		return fmt.Errorf("gen: churn shares (%v node, %v link) must be non-negative and sum to <= 1",
			s.NodeShare, s.LinkShare)
	}
	if s.MaxDownFrac < 0 || s.MaxDownFrac > 1 {
		return fmt.Errorf("gen: max down fraction %v outside [0,1]", s.MaxDownFrac)
	}
	if s.DegradeLo <= 0 || s.DegradeHi >= 1 || s.DegradeLo > s.DegradeHi {
		return fmt.Errorf("gen: degrade factors [%v,%v] must satisfy 0 < lo <= hi < 1", s.DegradeLo, s.DegradeHi)
	}
	if s.DriftLo <= 0 || s.DriftLo > s.DriftHi {
		return fmt.Errorf("gen: drift factors [%v,%v] must satisfy 0 < lo <= hi", s.DriftLo, s.DriftHi)
	}
	return nil
}

// Churn generates a deterministic timed churn trace over net. The trace is
// state-consistent by construction: a node goes down only while up and
// comes up only while down, drift never targets a down node, and the
// number of concurrently down nodes never exceeds spec.MaxDownFrac (and
// never reaches the whole network) — so replaying the trace in order
// through model.ResidualNetwork.ApplyChurn (or churn.Reconciler.Apply)
// applies cleanly end to end.
func Churn(spec ChurnSpec, net *model.Network, rng *rand.Rand) ([]ChurnEvent, error) {
	if net == nil {
		return nil, fmt.Errorf("gen: churn trace needs a network")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}

	maxDown := int(spec.MaxDownFrac * float64(net.N()))
	if maxDown >= net.N() {
		maxDown = net.N() - 1
	}

	down := make(map[model.NodeID]bool)
	degraded := make(map[int]bool)
	// upNodes returns the currently up nodes (deterministic order).
	upNodes := func() []model.NodeID {
		out := make([]model.NodeID, 0, net.N()-len(down))
		for v := 0; v < net.N(); v++ {
			if !down[model.NodeID(v)] {
				out = append(out, model.NodeID(v))
			}
		}
		return out
	}
	downNodes := func() []model.NodeID {
		out := make([]model.NodeID, 0, len(down))
		for v := 0; v < net.N(); v++ {
			if down[model.NodeID(v)] {
				out = append(out, model.NodeID(v))
			}
		}
		return out
	}
	degradedLinks := func() []int {
		out := make([]int, 0, len(degraded))
		for l := 0; l < net.M(); l++ {
			if degraded[l] {
				out = append(out, l)
			}
		}
		return out
	}

	events := make([]ChurnEvent, 0, spec.Events)
	clock := 0.0
	for len(events) < spec.Events {
		clock += rng.ExpFloat64() * spec.MeanIntervalMs
		var ev model.ChurnEvent
		switch c := rng.Float64(); {
		case c < spec.NodeShare:
			// Node failure/recovery: fail while below the cap, recover
			// otherwise (coin-flipped when both are possible).
			canFail := len(down) < maxDown
			canRecover := len(down) > 0
			switch {
			case canFail && (!canRecover || rng.Float64() < 0.5):
				up := upNodes()
				ev = model.ChurnEvent{Kind: model.NodeDown, Node: up[rng.IntN(len(up))]}
				down[ev.Node] = true
			case canRecover:
				dn := downNodes()
				ev = model.ChurnEvent{Kind: model.NodeUp, Node: dn[rng.IntN(len(dn))]}
				delete(down, ev.Node)
			default:
				// maxDown == 0 and nothing to recover: fall through to a
				// link degrade so the trace still makes progress.
				ev = model.ChurnEvent{
					Kind:   model.LinkDegrade,
					Link:   rng.IntN(net.M()),
					Factor: uniform(rng, spec.DegradeLo, spec.DegradeHi),
				}
				degraded[ev.Link] = true
			}
		case c < spec.NodeShare+spec.LinkShare:
			// Link degrade/restore.
			if dl := degradedLinks(); len(dl) > 0 && rng.Float64() < 0.5 {
				ev = model.ChurnEvent{Kind: model.LinkRestore, Link: dl[rng.IntN(len(dl))]}
				delete(degraded, ev.Link)
			} else {
				ev = model.ChurnEvent{
					Kind:   model.LinkDegrade,
					Link:   rng.IntN(net.M()),
					Factor: uniform(rng, spec.DegradeLo, spec.DegradeHi),
				}
				degraded[ev.Link] = true
			}
		default:
			// Capacity drift on a random up node or any link.
			factor := logUniform(rng, spec.DriftLo, spec.DriftHi)
			if rng.Float64() < 0.5 {
				up := upNodes()
				ev = model.ChurnEvent{
					Kind: model.CapacityDrift, Target: model.TargetNode,
					Node: up[rng.IntN(len(up))], Factor: factor,
				}
			} else {
				ev = model.ChurnEvent{
					Kind: model.CapacityDrift, Target: model.TargetLink,
					Link: rng.IntN(net.M()), Factor: factor,
				}
			}
		}
		events = append(events, ChurnEvent{TimeMs: clock, Event: ev})
	}
	return events, nil
}
