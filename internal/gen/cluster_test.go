package gen

import (
	"encoding/json"
	"testing"

	"elpc/internal/model"
)

func TestClusteredNetwork(t *testing.T) {
	spec := ClusterSpec{Clusters: 4, Nodes: 8, Links: 20, InterLinks: 12}
	net, err := ClusteredNetwork(spec, DefaultRanges(), RNG(5))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if net.N() != spec.N() || net.M() != spec.M() {
		t.Fatalf("network %dx%d, spec %dx%d", net.N(), net.M(), spec.N(), spec.M())
	}
	if !net.Topology().StronglyConnected() {
		t.Fatalf("clustered network not strongly connected")
	}
	// Exactly InterLinks links cross cluster boundaries.
	inter := 0
	for _, l := range net.Links {
		if spec.ClusterOf(l.From) != spec.ClusterOf(l.To) {
			inter++
		}
	}
	if inter != spec.InterLinks {
		t.Fatalf("%d inter-cluster links, want %d", inter, spec.InterLinks)
	}
	// Deterministic for a seed.
	again, err := ClusteredNetwork(spec, DefaultRanges(), RNG(5))
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	b1, _ := json.Marshal(net.Links)
	b2, _ := json.Marshal(again.Links)
	if string(b1) != string(b2) {
		t.Fatalf("generation not deterministic")
	}
}

// TestClusteredNetworkTwoClusterRing regresses the duplicate-edge panic:
// with two clusters both ring hops join the same cluster pair, so the ring
// representatives must be redrawn on collision. Tiny clusters make the
// collision near-certain across seeds.
func TestClusteredNetworkTwoClusterRing(t *testing.T) {
	spec := ClusterSpec{Clusters: 2, Nodes: 2, Links: 2, InterLinks: 4}
	for seed := uint64(0); seed < 200; seed++ {
		net, err := ClusteredNetwork(spec, DefaultRanges(), RNG(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !net.Topology().StronglyConnected() {
			t.Fatalf("seed %d: not strongly connected", seed)
		}
	}
}

func TestClusterSpecValidate(t *testing.T) {
	bad := []ClusterSpec{
		{Clusters: 0, Nodes: 5, Links: 10},
		{Clusters: 2, Nodes: 1, Links: 10, InterLinks: 4},
		{Clusters: 2, Nodes: 5, Links: 2, InterLinks: 4},  // below spanning minimum
		{Clusters: 2, Nodes: 5, Links: 30, InterLinks: 4}, // above simple-graph max
		{Clusters: 3, Nodes: 5, Links: 10, InterLinks: 2}, // below ring minimum
		{Clusters: 1, Nodes: 5, Links: 10, InterLinks: 2}, // lone cluster with inter-links
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) accepted", i, s)
		}
	}
	if err := DefaultClusterSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestClusterPartition(t *testing.T) {
	spec := ClusterSpec{Clusters: 4, Nodes: 8, Links: 20, InterLinks: 12}
	net, err := ClusteredNetwork(spec, DefaultRanges(), RNG(9))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	p, err := spec.ClusterPartition(net)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if p.K != spec.Clusters {
		t.Fatalf("partition K=%d, want %d", p.K, spec.Clusters)
	}
	for v, r := range p.PartOf {
		if r != spec.ClusterOf(model.NodeID(v)) {
			t.Fatalf("node %d in region %d, want cluster %d", v, r, spec.ClusterOf(model.NodeID(v)))
		}
	}
	if len(p.Boundary) != spec.InterLinks {
		t.Fatalf("%d boundary links, want %d", len(p.Boundary), spec.InterLinks)
	}
	// The generic graph partitioner should essentially recover the
	// generated clusters: per cluster, count the nodes outside the
	// cluster's majority region.
	gp, err := model.PartitionNetwork(net, spec.Clusters)
	if err != nil {
		t.Fatalf("graph partition: %v", err)
	}
	mismatch := 0
	for c := 0; c < spec.Clusters; c++ {
		counts := map[int]int{}
		for i := 0; i < spec.Nodes; i++ {
			counts[gp.PartOf[c*spec.Nodes+i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		mismatch += spec.Nodes - best
	}
	if mismatch > spec.N()/10 {
		t.Fatalf("graph partitioner split clusters badly: %d of %d nodes off-cluster", mismatch, spec.N())
	}
}
