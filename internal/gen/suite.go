package gen

import (
	"fmt"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// CaseSpec describes one evaluation case: a pipeline of Modules stages
// mapped onto a network with Nodes nodes and Links directed links, generated
// deterministically from Seed.
type CaseSpec struct {
	ID      int    `json:"id"`
	Modules int    `json:"modules"`
	Nodes   int    `json:"nodes"`
	Links   int    `json:"links"`
	Seed    uint64 `json:"seed"`
}

// Validate checks the structural requirements: at least 2 modules, no more
// modules than nodes (so the no-reuse frame-rate problem can be feasible),
// and a link count within [2(n-1), n(n-1)] as required by the strongly
// connected generator.
func (s CaseSpec) Validate() error {
	if s.Modules < 2 {
		return fmt.Errorf("gen: case %d: need >= 2 modules, got %d", s.ID, s.Modules)
	}
	if s.Nodes < s.Modules {
		return fmt.Errorf("gen: case %d: %d modules exceed %d nodes", s.ID, s.Modules, s.Nodes)
	}
	if minL := 2 * (s.Nodes - 1); s.Links < minL {
		return fmt.Errorf("gen: case %d: %d links below spanning minimum %d", s.ID, s.Links, minL)
	}
	if maxL := graph.MaxEdges(s.Nodes); s.Links > maxL {
		return fmt.Errorf("gen: case %d: %d links above simple-graph maximum %d", s.ID, s.Links, maxL)
	}
	return nil
}

// String implements fmt.Stringer, matching the paper's case labels
// ("m5 n6 l30").
func (s CaseSpec) String() string {
	return fmt.Sprintf("m%d n%d l%d", s.Modules, s.Nodes, s.Links)
}

// Build materializes the case into a problem instance using the default
// attribute ranges and the case seed.
func (s CaseSpec) Build() (*model.Problem, error) {
	return Problem(s, DefaultRanges(), RNG(s.Seed))
}

// Suite20 returns the 20 evaluation cases of the paper's Figure 2 / 5 / 6
// study. The first case is the small illustrated instance of Figures 3–4
// (5 modules, 6 nodes; the paper states 32 links, which exceeds the
// 6·5 = 30 maximum of a simple directed graph, so we use the complete graph
// on 6 nodes — see DESIGN.md). Later cases grow in problem size, matching
// the increasing-delay trend the paper observes in Figure 5.
func Suite20() []CaseSpec {
	specs := []struct{ m, n, l int }{
		{5, 6, 30},
		{8, 10, 60},
		{10, 15, 120},
		{12, 20, 180},
		{15, 25, 280},
		{15, 30, 400},
		{20, 40, 700},
		{20, 50, 1000},
		{25, 60, 1400},
		{30, 70, 1900},
		{30, 80, 2500},
		{35, 90, 3200},
		{40, 100, 4000},
		{40, 120, 5500},
		{45, 140, 7500},
		{50, 160, 10000},
		{50, 180, 12500},
		{55, 200, 15000},
		{60, 250, 22000},
		{60, 300, 30000},
	}
	out := make([]CaseSpec, len(specs))
	for i, s := range specs {
		out[i] = CaseSpec{
			ID:      i + 1,
			Modules: s.m,
			Nodes:   s.n,
			Links:   s.l,
			Seed:    uint64(1009 * (i + 1)), // fixed per-case seeds
		}
	}
	return out
}

// SmallCase returns the evaluation suite's first case (the paper's
// illustrated 5-module, 6-node instance used in Figures 3 and 4).
func SmallCase() CaseSpec { return Suite20()[0] }
