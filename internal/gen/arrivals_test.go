package gen

import (
	"reflect"
	"testing"

	"elpc/internal/model"
)

func arrivalsFixture(t *testing.T, seed uint64) []ArrivalEvent {
	t.Helper()
	net, err := Network(12, 70, DefaultRanges(), RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := Arrivals(DefaultArrivalSpec(), net, DefaultRanges(), RNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestArrivalsSchedule(t *testing.T) {
	spec := DefaultArrivalSpec()
	evs := arrivalsFixture(t, 3)
	if len(evs) != 2*spec.Sessions {
		t.Fatalf("got %d events, want %d", len(evs), 2*spec.Sessions)
	}
	arrived := map[int]ArrivalEvent{}
	departed := map[int]bool{}
	last := 0.0
	for i, ev := range evs {
		if ev.TimeMs < last {
			t.Fatalf("event %d out of order: %v after %v", i, ev.TimeMs, last)
		}
		last = ev.TimeMs
		switch ev.Kind {
		case Arrive:
			if _, dup := arrived[ev.Session]; dup {
				t.Fatalf("session %d arrives twice", ev.Session)
			}
			if ev.Pipeline == nil || ev.Pipeline.N() < spec.ModulesMin || ev.Pipeline.N() > spec.ModulesMax {
				t.Fatalf("session %d pipeline out of bounds: %+v", ev.Session, ev.Pipeline)
			}
			if ev.Src == ev.Dst {
				t.Fatalf("session %d src == dst", ev.Session)
			}
			if ev.Objective == model.MaxFrameRate && (ev.MinRateFPS < spec.RateLo || ev.MinRateFPS > spec.RateHi) {
				t.Fatalf("session %d streaming demand %v outside [%v, %v]",
					ev.Session, ev.MinRateFPS, spec.RateLo, spec.RateHi)
			}
			arrived[ev.Session] = ev
		case Depart:
			a, ok := arrived[ev.Session]
			if !ok {
				t.Fatalf("session %d departs before arriving", ev.Session)
			}
			if departed[ev.Session] {
				t.Fatalf("session %d departs twice", ev.Session)
			}
			if ev.TimeMs < a.TimeMs {
				t.Fatalf("session %d departs at %v before arriving at %v", ev.Session, ev.TimeMs, a.TimeMs)
			}
			departed[ev.Session] = true
		}
	}
	if len(arrived) != spec.Sessions || len(departed) != spec.Sessions {
		t.Fatalf("sessions unbalanced: %d arrivals, %d departures", len(arrived), len(departed))
	}

	// Both objectives are represented in the default mix.
	var streaming, interactive int
	for _, ev := range arrived {
		if ev.Objective == model.MaxFrameRate {
			streaming++
		} else {
			interactive++
		}
	}
	if streaming == 0 || interactive == 0 {
		t.Errorf("default mix should contain both objectives: %d streaming, %d interactive", streaming, interactive)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := arrivalsFixture(t, 7)
	b := arrivalsFixture(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the identical schedule")
	}
}

func TestArrivalsValidation(t *testing.T) {
	net, err := Network(6, 30, DefaultRanges(), RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultArrivalSpec()
	bad.ModulesMax = 7 // exceeds the 6-node network
	if _, err := Arrivals(bad, net, DefaultRanges(), RNG(2)); err == nil {
		t.Error("oversized pipelines must be rejected")
	}
	bad = DefaultArrivalSpec()
	bad.Sessions = 0
	if _, err := Arrivals(bad, net, DefaultRanges(), RNG(2)); err == nil {
		t.Error("zero sessions must be rejected")
	}
}
