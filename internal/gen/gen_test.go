package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPipelineStructure(t *testing.T) {
	rng := RNG(1)
	pl, err := Pipeline(10, DefaultRanges(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if pl.N() != 10 {
		t.Fatalf("N = %d", pl.N())
	}
	if pl.Modules[0].Complexity != 0 {
		t.Error("source module must have zero complexity")
	}
	if pl.Modules[9].OutBytes != 0 {
		t.Error("sink module must have zero output")
	}
	r := DefaultRanges()
	for j := 1; j < pl.N(); j++ {
		m := pl.Modules[j]
		if m.Complexity < r.ComplexityMin || m.Complexity > r.ComplexityMax {
			t.Errorf("module %d complexity %v out of range", j, m.Complexity)
		}
		if m.InBytes != pl.Modules[j-1].OutBytes {
			t.Errorf("module %d flow mismatch", j)
		}
		if j < pl.N()-1 && (m.OutBytes < r.BytesMin || m.OutBytes > r.BytesMax) {
			t.Errorf("module %d size %v out of range", j, m.OutBytes)
		}
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Pipeline(1, DefaultRanges(), RNG(1)); err == nil {
		t.Error("n=1 should error")
	}
	bad := DefaultRanges()
	bad.ComplexityMin, bad.ComplexityMax = 5, 1
	if _, err := Pipeline(5, bad, RNG(1)); err == nil {
		t.Error("inverted range should error")
	}
	bad2 := DefaultRanges()
	bad2.BytesMin = 0
	if _, err := Pipeline(5, bad2, RNG(1)); err == nil {
		t.Error("non-positive bytes range should error")
	}
}

func TestNetworkStructure(t *testing.T) {
	rng := RNG(2)
	net, err := Network(12, 50, DefaultRanges(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 12 || net.M() != 50 {
		t.Fatalf("size = (%d,%d)", net.N(), net.M())
	}
	if !net.Topology().StronglyConnected() {
		t.Error("generated network must be strongly connected")
	}
	r := DefaultRanges()
	for _, n := range net.Nodes {
		if n.Power < r.PowerMin || n.Power > r.PowerMax {
			t.Errorf("node %d power %v out of range", n.ID, n.Power)
		}
	}
	for _, l := range net.Links {
		if l.BWMbps < r.BWMin || l.BWMbps > r.BWMax {
			t.Errorf("link %d bw %v out of range", l.ID, l.BWMbps)
		}
		if l.MLDms < r.MLDMin || l.MLDms > r.MLDMax {
			t.Errorf("link %d mld %v out of range", l.ID, l.MLDms)
		}
	}
}

func TestNetworkErrors(t *testing.T) {
	if _, err := Network(5, 2, DefaultRanges(), RNG(1)); err == nil {
		t.Error("too few links should error")
	}
	bad := DefaultRanges()
	bad.BWMin = -1
	if _, err := Network(5, 10, bad, RNG(1)); err == nil {
		t.Error("negative bw range should error")
	}
}

func TestProblemGeneration(t *testing.T) {
	spec := CaseSpec{ID: 1, Modules: 5, Nodes: 8, Links: 30, Seed: 7}
	p, err := Problem(spec, DefaultRanges(), RNG(spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Src == p.Dst {
		t.Error("src and dst must differ")
	}
	if p.Pipe.N() != 5 || p.Net.N() != 8 {
		t.Error("problem dimensions wrong")
	}
	if !p.Cost.IncludeMLDInDelay {
		t.Error("default cost options expected")
	}
}

func TestProblemDeterminism(t *testing.T) {
	spec := Suite20()[3]
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Src != b.Src || a.Dst != b.Dst {
		t.Fatal("src/dst not deterministic")
	}
	for i := range a.Net.Links {
		if a.Net.Links[i] != b.Net.Links[i] {
			t.Fatalf("link %d differs between builds", i)
		}
	}
	for j := range a.Pipe.Modules {
		if a.Pipe.Modules[j] != b.Pipe.Modules[j] {
			t.Fatalf("module %d differs between builds", j)
		}
	}
}

func TestSuite20Specs(t *testing.T) {
	suite := Suite20()
	if len(suite) != 20 {
		t.Fatalf("suite has %d cases", len(suite))
	}
	seen := map[uint64]bool{}
	for i, s := range suite {
		if s.ID != i+1 {
			t.Errorf("case %d has ID %d", i, s.ID)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("case %d invalid: %v", s.ID, err)
		}
		if seen[s.Seed] {
			t.Errorf("duplicate seed %d", s.Seed)
		}
		seen[s.Seed] = true
		if s.String() == "" {
			t.Error("empty case label")
		}
	}
	// Sizes must be non-decreasing (Fig. 5's increasing trend by design).
	for i := 1; i < len(suite); i++ {
		if suite[i].Nodes < suite[i-1].Nodes || suite[i].Modules < suite[i-1].Modules {
			t.Errorf("case %d smaller than case %d", suite[i].ID, suite[i-1].ID)
		}
	}
	small := SmallCase()
	if small.Modules != 5 || small.Nodes != 6 || small.Links != 30 {
		t.Errorf("small case = %+v", small)
	}
}

func TestSuite20AllBuildable(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full suite build in -short mode")
	}
	for _, s := range Suite20() {
		p, err := s.Build()
		if err != nil {
			t.Fatalf("case %d: %v", s.ID, err)
		}
		if !p.Net.Topology().StronglyConnected() {
			t.Fatalf("case %d network not strongly connected", s.ID)
		}
	}
}

func TestCaseSpecValidateErrors(t *testing.T) {
	cases := []CaseSpec{
		{ID: 1, Modules: 1, Nodes: 5, Links: 10},
		{ID: 2, Modules: 6, Nodes: 5, Links: 10},
		{ID: 3, Modules: 3, Nodes: 5, Links: 3},
		{ID: 4, Modules: 3, Nodes: 5, Links: 99},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", c.ID)
		}
	}
}

func TestRandomTinyProblem(t *testing.T) {
	rng := RNG(99)
	for i := 0; i < 50; i++ {
		p, err := RandomTinyProblem(rng, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		if p.Pipe.N() < 3 || p.Pipe.N() > 5 {
			t.Errorf("modules = %d out of [3,5]", p.Pipe.N())
		}
		if p.Net.N() < p.Pipe.N() || p.Net.N() > 7 {
			t.Errorf("nodes = %d out of range", p.Net.N())
		}
	}
	if _, err := RandomTinyProblem(rng, 2, 7); err == nil {
		t.Error("maxModules < 3 should error")
	}
	if _, err := RandomTinyProblem(rng, 5, 4); err == nil {
		t.Error("maxNodes < maxModules should error")
	}
}

// Property: generated problems always satisfy the model validators and all
// drawn attributes are finite and positive where required.
func TestQuickProblemInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := RNG(seed)
		p, err := RandomTinyProblem(rng, 6, 10)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		for _, l := range p.Net.Links {
			if l.BWMbps <= 0 || math.IsInf(l.BWMbps, 0) || l.MLDms < 0 {
				return false
			}
		}
		for j := 1; j < p.Pipe.N(); j++ {
			if p.Pipe.ComputeOps(j) <= 0 {
				return false
			}
		}
		return p.Src != p.Dst && p.Net.ValidNode(p.Src) && p.Net.ValidNode(p.Dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: uniform src/dst choice never aliases and spans the node range.
func TestQuickSrcDstDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		spec := CaseSpec{ID: 0, Modules: 3, Nodes: 4, Links: 8, Seed: seed}
		p, err := Problem(spec, DefaultRanges(), RNG(seed))
		if err != nil {
			return false
		}
		return p.Src != p.Dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
