package gen

import (
	"fmt"
	"math/rand/v2"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// This file generates clustered topologies — the workload the sharded fleet
// manager is built for: K dense clusters of nodes (datacenters, regions)
// joined by a tunable number of sparse inter-cluster links. Node IDs are
// laid out cluster-major (cluster c owns [c*Nodes, (c+1)*Nodes)), so the
// graph partitioner's recovered regions line up with the generated clusters
// and workloads can draw intra-cluster endpoints by index arithmetic.

// ClusterSpec shapes a generated clustered network.
type ClusterSpec struct {
	// Clusters is the number of clusters K (>= 1).
	Clusters int `json:"clusters"`
	// Nodes is the node count per cluster (>= 2).
	Nodes int `json:"nodes"`
	// Links is the directed intra-cluster link count per cluster, within
	// the strongly connected generator's bounds [2(Nodes-1), Nodes(Nodes-1)].
	Links int `json:"links"`
	// InterLinks is the total number of directed inter-cluster links — the
	// knob for boundary density. At least 2*Clusters are required when
	// Clusters > 1: the generator first joins the clusters into a
	// bidirectional ring (guaranteeing strong connectivity), then spreads
	// the remainder uniformly over random cluster pairs.
	InterLinks int `json:"inter_links"`
}

// Validate checks the structural requirements of the spec.
func (s ClusterSpec) Validate() error {
	if s.Clusters < 1 {
		return fmt.Errorf("gen: cluster spec needs >= 1 cluster, got %d", s.Clusters)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("gen: cluster spec needs >= 2 nodes per cluster, got %d", s.Nodes)
	}
	if minL := 2 * (s.Nodes - 1); s.Links < minL {
		return fmt.Errorf("gen: cluster spec: %d links below spanning minimum %d", s.Links, minL)
	}
	if maxL := graph.MaxEdges(s.Nodes); s.Links > maxL {
		return fmt.Errorf("gen: cluster spec: %d links above simple-graph maximum %d", s.Links, maxL)
	}
	if s.Clusters > 1 && s.InterLinks < 2*s.Clusters {
		return fmt.Errorf("gen: cluster spec: %d inter-links below ring minimum %d", s.InterLinks, 2*s.Clusters)
	}
	if s.Clusters == 1 && s.InterLinks != 0 {
		return fmt.Errorf("gen: cluster spec: one cluster cannot have inter-links")
	}
	return nil
}

// N returns the total node count.
func (s ClusterSpec) N() int { return s.Clusters * s.Nodes }

// M returns the total directed link count.
func (s ClusterSpec) M() int { return s.Clusters*s.Links + s.InterLinks }

// String renders the spec compactly ("8x63 n504 l4896").
func (s ClusterSpec) String() string {
	return fmt.Sprintf("%dx%d n%d l%d", s.Clusters, s.Nodes, s.N(), s.M())
}

// DefaultClusterSpec returns the large clustered topology the scale
// benchmarks run on: 8 clusters of 63 nodes (n504) with 600 intra-cluster
// links each plus 96 inter-cluster links (l4896) — the "~n500/l5000"
// substrate of BenchmarkShardedDeploy.
func DefaultClusterSpec() ClusterSpec {
	return ClusterSpec{Clusters: 8, Nodes: 63, Links: 600, InterLinks: 96}
}

// ClusteredNetwork generates a strongly connected clustered network:
// Clusters independent strongly connected random subgraphs (each built like
// Network), a bidirectional inter-cluster ring, and uniformly random extra
// inter-cluster links up to InterLinks. Attributes are drawn from r like
// every other generator; generation is deterministic given rng.
func ClusteredNetwork(spec ClusterSpec, r Ranges, rng *rand.Rand) (*model.Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	n := spec.N()
	topo := graph.New(n)
	for c := 0; c < spec.Clusters; c++ {
		sub, err := graph.RandomConnected(spec.Nodes, spec.Links, rng)
		if err != nil {
			return nil, err
		}
		off := c * spec.Nodes
		for i := 0; i < sub.M(); i++ {
			e := sub.Edge(i)
			topo.MustAddEdge(off+e.From, off+e.To)
		}
	}
	if spec.Clusters > 1 {
		// Bidirectional ring over random representatives: cluster c gets one
		// link pair to cluster c+1, making the whole graph strongly
		// connected through at most Clusters boundary hops. Redraw on
		// collision — with two clusters, both ring hops join the same
		// cluster pair and can land on the same representatives.
		for c := 0; c < spec.Clusters; c++ {
			for {
				u := c*spec.Nodes + rng.IntN(spec.Nodes)
				v := ((c+1)%spec.Clusters)*spec.Nodes + rng.IntN(spec.Nodes)
				if topo.HasEdge(u, v) || topo.HasEdge(v, u) {
					continue
				}
				topo.MustAddEdge(u, v)
				topo.MustAddEdge(v, u)
				break
			}
		}
		// Spread the remaining inter-links uniformly over random ordered
		// cluster pairs (rejection sampling; the inter-cluster space is far
		// from saturated at any sane InterLinks).
		for extra := spec.InterLinks - 2*spec.Clusters; extra > 0; {
			a := rng.IntN(spec.Clusters)
			b := rng.IntN(spec.Clusters)
			if a == b {
				continue
			}
			u := a*spec.Nodes + rng.IntN(spec.Nodes)
			v := b*spec.Nodes + rng.IntN(spec.Nodes)
			if topo.HasEdge(u, v) {
				continue
			}
			topo.MustAddEdge(u, v)
			extra--
		}
	}
	nodes := make([]model.Node, n)
	for i := range nodes {
		nodes[i] = model.Node{
			ID:    model.NodeID(i),
			Name:  fmt.Sprintf("c%d-node-%d", i/spec.Nodes, i%spec.Nodes),
			Power: logUniform(rng, r.PowerMin, r.PowerMax),
		}
	}
	links := make([]model.Link, topo.M())
	for i := range links {
		e := topo.Edge(i)
		links[i] = model.Link{
			ID:     i,
			From:   model.NodeID(e.From),
			To:     model.NodeID(e.To),
			BWMbps: logUniform(rng, r.BWMin, r.BWMax),
			MLDms:  uniform(rng, r.MLDMin, r.MLDMax),
		}
	}
	return model.NewNetwork(nodes, links)
}

// ClusterOf returns the cluster index of node v under the spec's
// cluster-major layout.
func (s ClusterSpec) ClusterOf(v model.NodeID) int { return int(v) / s.Nodes }

// ClusterPartition returns the partition that follows the spec's generated
// cluster boundaries exactly — the natural sharding of a ClusteredNetwork,
// bypassing the graph partitioner.
func (s ClusterSpec) ClusterPartition(net *model.Network) (*model.Partition, error) {
	if net.N() != s.N() {
		return nil, fmt.Errorf("gen: network has %d nodes, spec lays out %d", net.N(), s.N())
	}
	partOf := make([]int, net.N())
	for v := range partOf {
		partOf[v] = s.ClusterOf(model.NodeID(v))
	}
	return model.NewPartitionFromAssignment(net, s.Clusters, partOf)
}
