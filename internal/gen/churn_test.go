package gen

import (
	"reflect"
	"testing"

	"elpc/internal/model"
)

func TestChurnDeterministicAndReplayable(t *testing.T) {
	net, err := Network(10, 60, DefaultRanges(), RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultChurnSpec()
	spec.Events = 200

	a, err := Churn(spec, net, RNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(spec, net, RNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 {
		t.Fatalf("trace has %d events, want 200", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate an identical trace")
	}
	c, err := Churn(spec, net, RNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical traces")
	}

	// Timestamps are non-decreasing.
	for i := 1; i < len(a); i++ {
		if a[i].TimeMs < a[i-1].TimeMs {
			t.Fatalf("event %d at %.3f ms before event %d at %.3f ms", i, a[i].TimeMs, i-1, a[i-1].TimeMs)
		}
	}

	// The whole trace must replay cleanly, one event at a time, and never
	// down more than MaxDownFrac of the nodes.
	r := model.NewResidualNetwork(net)
	maxDown := int(spec.MaxDownFrac * float64(net.N()))
	for i, ev := range a {
		if err := r.ApplyChurn([]model.ChurnEvent{ev.Event}); err != nil {
			t.Fatalf("event %d (%s) does not apply: %v", i, ev.Event, err)
		}
		downCount := 0
		for v := 0; v < net.N(); v++ {
			if r.NodeIsDown(model.NodeID(v)) {
				downCount++
			}
		}
		if downCount > maxDown {
			t.Fatalf("after event %d: %d nodes down, cap is %d", i, downCount, maxDown)
		}
	}

	// A mixed trace exercises every event family.
	kinds := map[model.ChurnKind]int{}
	for _, ev := range a {
		kinds[ev.Event.Kind]++
	}
	for _, k := range []model.ChurnKind{model.NodeDown, model.LinkDegrade, model.CapacityDrift} {
		if kinds[k] == 0 {
			t.Errorf("200-event default-spec trace has no %s events: %v", k, kinds)
		}
	}
}

func TestChurnSpecValidation(t *testing.T) {
	net, err := Network(6, 20, DefaultRanges(), RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := []ChurnSpec{
		{},
		func() ChurnSpec { s := DefaultChurnSpec(); s.Events = 0; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.MeanIntervalMs = 0; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.NodeShare = 0.8; s.LinkShare = 0.5; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.MaxDownFrac = 1.5; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.DegradeLo = 0; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.DegradeHi = 1; return s }(),
		func() ChurnSpec { s := DefaultChurnSpec(); s.DriftLo = 0; return s }(),
	}
	for i, s := range bad {
		if _, err := Churn(s, net, RNG(1)); err == nil {
			t.Errorf("spec %d: generated, want validation error", i)
		}
	}
	if _, err := Churn(DefaultChurnSpec(), nil, RNG(1)); err == nil {
		t.Error("nil network: generated, want error")
	}

	// MaxDownFrac = 0 still generates (node events fall through to link
	// degrades).
	s := DefaultChurnSpec()
	s.MaxDownFrac = 0
	trace, err := Churn(s, net, RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace {
		if ev.Event.Kind == model.NodeDown {
			t.Fatal("MaxDownFrac=0 trace contains a node failure")
		}
	}
}
