package core

import (
	"fmt"
	"math"
	"time"

	"elpc/internal/model"
)

// MinDelay computes an optimal minimum end-to-end delay mapping using a
// pooled SolveContext. See SolveContext.MinDelay.
func MinDelay(p *model.Problem) (*model.Mapping, error) {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.MinDelay(p)
}

// MinDelay computes an optimal minimum end-to-end delay mapping of the
// pipeline onto the network with node reuse allowed (ELPC, Section 3.1.1).
//
// The returned mapping assigns module 0 to p.Src and the final module to
// p.Dst; consecutive modules either share a node (grouping) or cross an
// existing directed link. The transport cost of each crossing is
// m_{j-1}/b_{u,v} (+ MLD when p.Cost.IncludeMLDInDelay is set).
//
// It returns model.ErrInfeasible (wrapped) when no walk of at most n-1 hops
// connects source and destination.
func (sc *SolveContext) MinDelay(p *model.Problem) (*model.Mapping, error) {
	t0 := time.Now()
	defer minDelaySeconds.ObserveSince(t0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Pipe.N()
	k := p.Net.N()
	topo := p.Net.Topology()

	// prev[v] = T^{j-1}(v), cur[v] = T^j(v). parents[j][v] is the node that
	// ran module j-1 in the best partial mapping ending with module j on v
	// (-1 when T^j(v) is infinite). Column j=0 is the base: module 0 (the
	// data source, zero compute) sits on Src.
	prev, cur := sc.distCols(k)
	for v := range prev {
		prev[v] = math.Inf(1)
	}
	prev[p.Src] = 0
	parents := sc.parentGrid(n, k)

	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		par := parents[j]
		for v := 0; v < k; v++ {
			power := p.Net.Power(model.NodeID(v))
			compute := p.Pipe.ComputeTime(j, power)
			// Sub-case (i): module j joins module j-1's group on v.
			best := prev[v] + compute
			bestPar := int32(v)
			if math.IsInf(prev[v], 1) {
				best = math.Inf(1)
				bestPar = -1
			}
			// Sub-case (ii): module j-1 ran on a neighbor u; pay the
			// transfer of m_{j-1} over link u→v.
			for _, eid := range topo.InEdges(v) {
				u := topo.Edge(int(eid)).From
				if math.IsInf(prev[u], 1) {
					continue
				}
				link := p.Net.Links[eid]
				cand := prev[u] + compute + link.TransferTime(inBytes, p.Cost.IncludeMLDInDelay)
				if cand < best {
					best = cand
					bestPar = int32(u)
				}
			}
			cur[v] = best
			par[v] = bestPar
		}
		prev, cur = cur, prev
	}

	if math.IsInf(prev[p.Dst], 1) {
		return nil, fmt.Errorf("core: MinDelay: destination %d unreachable from %d within %d modules: %w",
			p.Dst, p.Src, n, model.ErrInfeasible)
	}

	// Back-track the assignment.
	assign := make([]model.NodeID, n)
	assign[n-1] = p.Dst
	for j := n - 1; j >= 1; j-- {
		u := parents[j][assign[j]]
		if u < 0 {
			return nil, fmt.Errorf("core: MinDelay: broken back-pointer at module %d", j)
		}
		assign[j-1] = model.NodeID(u)
	}
	if assign[0] != p.Src {
		return nil, fmt.Errorf("core: MinDelay: reconstruction did not reach source (got %d)", assign[0])
	}
	return model.NewMapping(assign), nil
}

// MinDelayValue returns only the optimal delay in ms via a pooled
// SolveContext. See SolveContext.MinDelayValue.
func MinDelayValue(p *model.Problem) float64 {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.MinDelayValue(p)
}

// MinDelayValue returns only the optimal delay in ms, computed exactly like
// MinDelay but without retaining back-pointers — useful for benchmarking the
// DP kernel itself. It returns +Inf when infeasible.
func (sc *SolveContext) MinDelayValue(p *model.Problem) float64 {
	n := p.Pipe.N()
	k := p.Net.N()
	topo := p.Net.Topology()
	prev, cur := sc.distCols(k)
	for v := range prev {
		prev[v] = math.Inf(1)
	}
	prev[p.Src] = 0
	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		for v := 0; v < k; v++ {
			compute := p.Pipe.ComputeTime(j, p.Net.Power(model.NodeID(v)))
			best := prev[v] + compute
			for _, eid := range topo.InEdges(v) {
				u := topo.Edge(int(eid)).From
				if math.IsInf(prev[u], 1) {
					continue
				}
				link := p.Net.Links[eid]
				if cand := prev[u] + compute + link.TransferTime(inBytes, p.Cost.IncludeMLDInDelay); cand < best {
					best = cand
				}
			}
			cur[v] = best
		}
		prev, cur = cur, prev
	}
	return prev[p.Dst]
}
