package core_test

import (
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// TestSolveContextReuseMatchesFresh runs every solver twice on a rotation of
// differently shaped problems through one reused context and checks each
// answer against a fresh context: stale slab contents, arena recycling, and
// grid resizing must never leak into results.
func TestSolveContextReuseMatchesFresh(t *testing.T) {
	shared := core.NewSolveContext()
	solved := 0
	for seed := uint64(0); seed < 25; seed++ {
		// Alternate sizes so the reused context keeps regrowing/shrinking.
		maxM, maxN := 4+int(seed%3), 6+int(seed%5)
		p, err := gen.RandomTinyProblem(gen.RNG(seed+4321), maxM, maxN)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			fresh := core.NewSolveContext()

			mShared, errShared := shared.MinDelay(p)
			mFresh, errFresh := fresh.MinDelay(p)
			compareSolves(t, "MinDelay", seed, mShared, errShared, mFresh, errFresh)

			mShared, errShared = shared.MaxFrameRate(p, core.FrameRateOptions{})
			mFresh, errFresh = fresh.MaxFrameRate(p, core.FrameRateOptions{})
			compareSolves(t, "MaxFrameRate", seed, mShared, errShared, mFresh, errFresh)

			mShared, errShared = shared.MaxFrameRateWithBudget(p, core.TradeoffOptions{})
			mFresh, errFresh = fresh.MaxFrameRateWithBudget(p, core.TradeoffOptions{})
			compareSolves(t, "MaxFrameRateWithBudget", seed, mShared, errShared, mFresh, errFresh)
			if errShared == nil {
				solved++
			}

			if v1, v2 := shared.MinDelayValue(p), fresh.MinDelayValue(p); v1 != v2 {
				t.Errorf("seed %d: MinDelayValue reuse %v != fresh %v", seed, v1, v2)
			}
		}
	}
	if solved == 0 {
		t.Fatal("no instance solved; test exercised nothing")
	}
}

func compareSolves(t *testing.T, name string, seed uint64, a *model.Mapping, aerr error, b *model.Mapping, berr error) {
	t.Helper()
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("seed %d: %s reuse err=%v, fresh err=%v", seed, name, aerr, berr)
	}
	if aerr != nil {
		return
	}
	if len(a.Assign) != len(b.Assign) {
		t.Fatalf("seed %d: %s lengths differ", seed, name)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("seed %d: %s reuse %v != fresh %v", seed, name, a.Assign, b.Assign)
		}
	}
}

// TestSolveContextAllocationLean: after a warm-up solve, repeating the same
// solve on the same context must not allocate per-cell or per-entry memory —
// only the returned mapping (and its internal rendering) may allocate.
func TestSolveContextAllocationLean(t *testing.T) {
	p, err := gen.Suite20()[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := core.NewSolveContext()
	if _, err := sc.MaxFrameRate(p, core.FrameRateOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sc.MaxFrameRate(p, core.FrameRateOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// The warm path allocates the result mapping (assign slice + Mapping +
	// group rendering) but no DP tables; give it a small cushion so model-
	// side changes don't flake this test.
	if allocs > 24 {
		t.Errorf("warm MaxFrameRate solve allocates %.0f objects; DP scratch is leaking out of the context", allocs)
	}
}
