package core

import (
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

// FuzzWarmInvalidation drives the delta-invalidation planner with random
// capacity-factor walks over random problems: after every warm solve, every
// retained DP cell is cross-checked against a full recompute, so a stale
// entry that invalidation failed to mark dirty fails the run. The solved
// mappings and errors are also compared byte-for-byte against the cold path.
//
// The input encodes (instance seed, delta walk): each pair of bytes picks a
// node or link (first byte, mod n+m) and its new capacity factor (second
// byte, 0 = down, 255 = nominal).
func FuzzWarmInvalidation(f *testing.F) {
	f.Add(uint64(1), []byte(nil))
	f.Add(uint64(2), []byte{0, 0})
	f.Add(uint64(3), []byte{0, 0, 0, 255})
	f.Add(uint64(4), []byte{3, 17, 9, 200, 3, 255, 12, 0, 12, 128})
	f.Add(uint64(0xe1bc), []byte{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})

	f.Fuzz(func(t *testing.T, seed uint64, deltas []byte) {
		rng := gen.RNG(seed)
		p, err := gen.RandomTinyProblem(rng, 6, 12)
		if err != nil {
			t.Skip()
		}
		rn := model.NewResidualNetwork(p.Net)
		node, link := rn.CapacityFactors()
		total := len(node) + len(link)

		ws := NewWarmState()
		runWarmColdStep(t, p, rn.Snapshot(), ws)

		// Bound the walk so pathological inputs stay fast.
		if len(deltas) > 64 {
			deltas = deltas[:64]
		}
		for i := 0; i+1 < len(deltas); i += 2 {
			target := int(deltas[i]) % total
			factor := float64(deltas[i+1]) / 255
			if target < len(node) {
				node[target] = factor
			} else {
				link[target-len(node)] = factor
			}
			if err := rn.SetCapacityFactors(node, link); err != nil {
				t.Fatalf("step %d: %v", i/2, err)
			}
			runWarmColdStep(t, p, rn.Snapshot(), ws)
		}
	})
}
