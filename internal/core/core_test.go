package core_test

import (
	"errors"
	"math"
	"testing"

	"elpc/internal/baseline"
	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// buildNet constructs a network from (power list, link tuples).
func buildNet(t *testing.T, powers []float64, links [][4]float64) *model.Network {
	t.Helper()
	nodes := make([]model.Node, len(powers))
	for i, p := range powers {
		nodes[i] = model.Node{ID: model.NodeID(i), Power: p}
	}
	ls := make([]model.Link, len(links))
	for i, l := range links {
		ls[i] = model.Link{ID: i, From: model.NodeID(l[0]), To: model.NodeID(l[1]), BWMbps: l[2], MLDms: l[3]}
	}
	n, err := model.NewNetwork(nodes, ls)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildPipe(t *testing.T, srcOut float64, stages [][2]float64) *model.Pipeline {
	t.Helper()
	mods := []model.Module{{ID: 0, OutBytes: srcOut}}
	prev := srcOut
	for i, s := range stages {
		out := s[1]
		mods = append(mods, model.Module{ID: i + 1, Complexity: s[0], InBytes: prev, OutBytes: out})
		prev = out
	}
	p, err := model.NewPipeline(mods)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMinDelayHandComputed pins the DP to a hand-worked instance.
func TestMinDelayHandComputed(t *testing.T) {
	// Nodes: v0 (slow, 100 ops/ms), v1 (fast, 10000), v2 (medium, 1000).
	// Links (BW Mbps, MLD ms): 0->1 (8, 1) => 1000 B/ms; 1->2 (8, 1);
	// 0->2 (0.08, 1) => 10 B/ms (slow shortcut).
	net := buildNet(t, []float64{100, 10000, 1000}, [][4]float64{
		{0, 1, 8, 1}, {1, 2, 8, 1}, {0, 2, 0.08, 1},
	})
	// Pipeline: M0 out 1000B; M1 c=10 (10*1000 = 1e4 ops), out 1000B;
	// M2 sink c=10 (1e4 ops).
	pl := buildPipe(t, 1000, [][2]float64{{10, 1000}, {10, 0}})
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 2, Cost: model.DefaultCostOptions()}

	// Candidate mappings:
	//  [0,0,2]: M1@v0 = 1e4/100 = 100; transfer 1000B over 0->2 = 100+1 = 101;
	//           M2@v2 = 1e4/1000 = 10  => 211
	//  [0,1,2]: transfer 0->1 = 1+1 = 2; M1@v1 = 1; transfer 1->2 = 2;
	//           M2@v2 = 10 => 15
	//  [0,2,2]: transfer 0->2 = 101; M1@v2 = 10; M2@v2 = 10 => 121
	//  [0,1,1]: dst is v2, invalid. Optimum is [0,1,2] at 15.
	m, err := core.MinDelay(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateMapping(m, model.MinDelay); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	got := model.TotalDelay(net, pl, m, p.Cost)
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("optimal delay = %v (%v), want 15", got, m)
	}
	if v := core.MinDelayValue(p); math.Abs(v-got) > 1e-9 {
		t.Errorf("MinDelayValue = %v, mapping delay = %v", v, got)
	}
	want := []model.NodeID{0, 1, 2}
	for j, v := range want {
		if m.Assign[j] != v {
			t.Errorf("assign[%d] = %d, want %d", j, m.Assign[j], v)
		}
	}
}

// TestMinDelayPrefersGroupingOnFastNode checks that reuse (grouping) is used
// when transfers are expensive.
func TestMinDelayPrefersGroupingOnFastNode(t *testing.T) {
	// Two nodes: src slow, dst fast; one very slow link between them.
	net := buildNet(t, []float64{10, 100000}, [][4]float64{
		{0, 1, 0.008, 0}, // 1 B/ms: 1000B costs 1000ms
	})
	// Three computing stages; all data 1000B.
	pl := buildPipe(t, 1000, [][2]float64{{1, 1000}, {1, 1000}, {1, 0}})
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 1, Cost: model.DefaultCostOptions()}
	m, err := core.MinDelay(p)
	if err != nil {
		t.Fatal(err)
	}
	// Only one crossing is possible (single link) and it must happen as early
	// as possible? Compute on v0 costs 100ms/stage, on v1 ~0.01ms; the single
	// 1000ms transfer dominates either way, so the optimum crosses right
	// after the source: [0,1,1,1].
	want := []model.NodeID{0, 1, 1, 1}
	for j, v := range want {
		if m.Assign[j] != v {
			t.Fatalf("assign = %v, want %v", m.Assign, want)
		}
	}
	groups := m.Groups()
	if len(groups) != 2 {
		t.Errorf("groups = %v, want 2 groups", groups)
	}
}

func TestMinDelaySrcEqualsDst(t *testing.T) {
	net := buildNet(t, []float64{100, 200}, [][4]float64{{0, 1, 8, 1}, {1, 0, 8, 1}})
	pl := buildPipe(t, 1000, [][2]float64{{10, 500}, {10, 0}})
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 0, Cost: model.DefaultCostOptions()}
	m, err := core.MinDelay(p)
	if err != nil {
		t.Fatal(err)
	}
	// The sink module is pinned to v0, so the choices are:
	//  [0,0,0]: M1@v0 = 1e4/100 = 100; M2@v0 = 5000/100 = 50 → 150
	//  [0,1,0]: 0->1 transfer 1000/1000+1 = 2; M1@v1 = 1e4/200 = 50;
	//           1->0 transfer 500/1000+1 = 1.5; M2@v0 = 50 → 103.5
	// Optimal loops through the fast node: 103.5.
	got := model.TotalDelay(net, pl, m, p.Cost)
	if math.Abs(got-103.5) > 1e-9 {
		t.Errorf("src==dst optimal delay = %v (%v), want 103.5 (loop through fast node)", got, m)
	}
	if m.Assign[0] != 0 || m.Assign[2] != 0 {
		t.Errorf("endpoints must stay on node 0: %v", m.Assign)
	}
}

func TestMinDelayInfeasible(t *testing.T) {
	// Line 0->1->2->3 (one-directional), pipeline of 2 modules: shortest
	// path 0..3 needs 3 hops > 1 available crossing.
	net := buildNet(t, []float64{100, 100, 100, 100}, [][4]float64{
		{0, 1, 8, 1}, {1, 2, 8, 1}, {2, 3, 8, 1},
	})
	pl := buildPipe(t, 1000, [][2]float64{{10, 0}})
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 3, Cost: model.DefaultCostOptions()}
	_, err := core.MinDelay(p)
	if !errors.Is(err, model.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if v := core.MinDelayValue(p); !math.IsInf(v, 1) {
		t.Errorf("MinDelayValue = %v, want +Inf", v)
	}
}

func TestMaxFrameRateHandComputed(t *testing.T) {
	// Diamond: 0 -> {1 slow, 2 fast} -> 3, equal links.
	net := buildNet(t, []float64{1000, 100, 10000, 1000}, [][4]float64{
		{0, 1, 80, 1}, {0, 2, 80, 1}, {1, 3, 80, 1}, {2, 3, 80, 1},
	})
	// 3 modules: M1 does 1e5 ops; on v1 takes 1000ms, on v2 takes 10ms.
	// Transfers: 1000B over 10000 B/ms = 0.1ms. M2 sink on v3: 1e5/1000=100ms.
	pl := buildPipe(t, 1000, [][2]float64{{100, 1000}, {100, 0}})
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 3, Cost: model.DefaultCostOptions()}
	m, err := core.MaxFrameRate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateMapping(m, model.MaxFrameRate); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if m.Assign[1] != 2 {
		t.Errorf("middle module on %d, want fast node 2 (%v)", m.Assign[1], m)
	}
	got := model.Bottleneck(net, pl, m)
	if math.Abs(got-100) > 1e-9 { // sink compute dominates
		t.Errorf("bottleneck = %v, want 100", got)
	}
	if fr := model.FrameRate(got); math.Abs(fr-10) > 1e-9 {
		t.Errorf("frame rate = %v, want 10 fps", fr)
	}
}

func TestMaxFrameRateInfeasibleCases(t *testing.T) {
	net := buildNet(t, []float64{100, 100}, [][4]float64{{0, 1, 8, 1}, {1, 0, 8, 1}})
	pl3 := buildPipe(t, 1000, [][2]float64{{10, 500}, {10, 0}})
	// 3 modules on 2 nodes without reuse.
	p := &model.Problem{Net: net, Pipe: pl3, Src: 0, Dst: 1, Cost: model.DefaultCostOptions()}
	if _, err := core.MaxFrameRate(p); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("3 modules / 2 nodes: err = %v, want ErrInfeasible", err)
	}
	// src == dst without reuse.
	pl2 := buildPipe(t, 1000, [][2]float64{{10, 0}})
	p2 := &model.Problem{Net: net, Pipe: pl2, Src: 0, Dst: 0, Cost: model.DefaultCostOptions()}
	if _, err := core.MaxFrameRate(p2); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("src==dst: err = %v, want ErrInfeasible", err)
	}
	// Exact-length path does not exist: line 0->1 with 2-module pipeline is
	// feasible; 0->1 with 3 modules needs 3 distinct nodes.
	if _, err := core.MaxFrameRate(p); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// TestMinDelayOptimalVsBrute verifies the paper's optimality claim (E8):
// the DP value equals the exhaustive minimum over all walks.
func TestMinDelayOptimalVsBrute(t *testing.T) {
	brute := baseline.Brute{}
	for seed := uint64(0); seed < 150; seed++ {
		rng := gen.RNG(seed)
		p, err := gen.RandomTinyProblem(rng, 5, 6)
		if err != nil {
			t.Fatal(err)
		}
		dm, derr := core.MinDelay(p)
		bm, berr := brute.Map(p, model.MinDelay)
		if (derr == nil) != (berr == nil) {
			t.Fatalf("seed %d: feasibility mismatch: elpc=%v brute=%v", seed, derr, berr)
		}
		if derr != nil {
			continue
		}
		dv := model.TotalDelay(p.Net, p.Pipe, dm, p.Cost)
		bv := model.TotalDelay(p.Net, p.Pipe, bm, p.Cost)
		if math.Abs(dv-bv) > 1e-6*(1+bv) {
			t.Errorf("seed %d: ELPC delay %v != brute optimum %v\nelpc: %v\nbrute: %v",
				seed, dv, bv, dm, bm)
		}
		if err := p.ValidateMapping(dm, model.MinDelay); err != nil {
			t.Errorf("seed %d: invalid ELPC mapping: %v", seed, err)
		}
	}
}

// TestMaxFrameRateNearOptimal verifies E9: the heuristic returns valid
// mappings whose bottleneck matches the exact optimum in the overwhelming
// majority of random instances (the paper calls misses "extremely rare").
func TestMaxFrameRateNearOptimal(t *testing.T) {
	brute := baseline.Brute{}
	total, optimal, feasMiss := 0, 0, 0
	for seed := uint64(0); seed < 150; seed++ {
		rng := gen.RNG(seed + 1000)
		p, err := gen.RandomTinyProblem(rng, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		bm, berr := brute.Map(p, model.MaxFrameRate)
		hm, herr := core.MaxFrameRate(p)
		if berr != nil {
			// Truly infeasible: heuristic must agree.
			if herr == nil {
				t.Errorf("seed %d: heuristic found mapping on infeasible instance", seed)
			}
			continue
		}
		total++
		if herr != nil {
			feasMiss++
			continue
		}
		if err := p.ValidateMapping(hm, model.MaxFrameRate); err != nil {
			t.Errorf("seed %d: invalid heuristic mapping: %v", seed, err)
			continue
		}
		hv := model.Bottleneck(p.Net, p.Pipe, hm)
		bv := model.Bottleneck(p.Net, p.Pipe, bm)
		if hv < bv-1e-9 {
			t.Errorf("seed %d: heuristic bottleneck %v beats exact optimum %v — evaluator bug", seed, hv, bv)
		}
		if hv <= bv+1e-9*(1+bv) {
			optimal++
		}
	}
	if total == 0 {
		t.Fatal("no feasible instances generated")
	}
	t.Logf("frame-rate heuristic: %d/%d optimal, %d feasibility misses", optimal, total, feasMiss)
	if float64(optimal) < 0.8*float64(total) {
		t.Errorf("heuristic optimal on only %d/%d instances; paper reports misses are rare", optimal, total)
	}
	if feasMiss > total/10 {
		t.Errorf("heuristic missed feasibility on %d/%d instances", feasMiss, total)
	}
}

// TestMinDelayDominatesHeuristics: ELPC is optimal, so no heuristic may beat
// it on any instance (E1 sanity).
func TestMinDelayDominatesHeuristics(t *testing.T) {
	mappers := []model.Mapper{baseline.Greedy{}, baseline.Streamline{}}
	for seed := uint64(0); seed < 80; seed++ {
		rng := gen.RNG(seed + 5000)
		p, err := gen.RandomTinyProblem(rng, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		em, eerr := core.MinDelay(p)
		if eerr != nil {
			continue
		}
		ev := model.TotalDelay(p.Net, p.Pipe, em, p.Cost)
		for _, mp := range mappers {
			hm, herr := mp.Map(p, model.MinDelay)
			if herr != nil {
				continue
			}
			if err := p.ValidateMapping(hm, model.MinDelay); err != nil {
				t.Errorf("seed %d: %s produced invalid mapping: %v", seed, mp.Name(), err)
				continue
			}
			hv := model.TotalDelay(p.Net, p.Pipe, hm, p.Cost)
			if hv < ev-1e-6*(1+ev) {
				t.Errorf("seed %d: %s delay %v beats optimal ELPC %v", seed, mp.Name(), hv, ev)
			}
		}
	}
}

// TestMaxFrameRateDominatesHeuristicsUsually: the DP heuristic should beat
// or match Greedy/Streamline on nearly all instances.
func TestMaxFrameRateBeatsOrMatchesGreedyMostly(t *testing.T) {
	worse := 0
	compared := 0
	for seed := uint64(0); seed < 100; seed++ {
		rng := gen.RNG(seed + 9000)
		p, err := gen.RandomTinyProblem(rng, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		em, eerr := core.MaxFrameRate(p)
		gm, gerr := (baseline.Greedy{}).Map(p, model.MaxFrameRate)
		if eerr != nil || gerr != nil {
			continue
		}
		compared++
		ev := model.Bottleneck(p.Net, p.Pipe, em)
		gv := model.Bottleneck(p.Net, p.Pipe, gm)
		if ev > gv+1e-9*(1+gv) {
			worse++
		}
	}
	if compared == 0 {
		t.Fatal("nothing compared")
	}
	t.Logf("ELPC frame rate worse than greedy on %d/%d instances", worse, compared)
	if float64(worse) > 0.1*float64(compared) {
		t.Errorf("ELPC-FR worse than greedy on %d/%d instances — heuristic regression", worse, compared)
	}
}

func TestMapperInterface(t *testing.T) {
	var m model.Mapper = core.Mapper{}
	if m.Name() != "ELPC" {
		t.Errorf("Name = %q", m.Name())
	}
	rng := gen.RNG(77)
	p, err := gen.RandomTinyProblem(rng, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if mm, err := m.Map(p, model.MinDelay); err == nil {
		if err := p.ValidateMapping(mm, model.MinDelay); err != nil {
			t.Error(err)
		}
	}
	if _, err := m.Map(p, model.Objective(99)); err == nil {
		t.Error("unknown objective should error")
	}
}

func TestMinDelayRejectsInvalidProblem(t *testing.T) {
	if _, err := core.MinDelay(&model.Problem{}); err == nil {
		t.Error("nil problem parts should error")
	}
	if _, err := core.MaxFrameRate(&model.Problem{}); err == nil {
		t.Error("nil problem parts should error")
	}
}
