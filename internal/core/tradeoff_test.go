package core_test

import (
	"errors"
	"math"
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

func TestBudgetInfinityMatchesPlainDP(t *testing.T) {
	matched, compared, mismatches := 0, 0, 0
	for seed := uint64(0); seed < 40; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+555), 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		plain, perr := core.MaxFrameRateOpt(p, core.FrameRateOptions{Beam: 4})
		budgeted, berr := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{Beam: 4})
		if (perr == nil) != (berr == nil) {
			// Both DPs are heuristics with different per-cell pruning; rare
			// feasibility disagreements are possible but must stay rare.
			mismatches++
			continue
		}
		if perr != nil {
			continue
		}
		compared++
		pv := model.Bottleneck(p.Net, p.Pipe, plain)
		bv := model.Bottleneck(p.Net, p.Pipe, budgeted)
		if err := p.ValidateMapping(budgeted, model.MaxFrameRate); err != nil {
			t.Errorf("seed %d: invalid budgeted mapping: %v", seed, err)
		}
		if math.Abs(pv-bv) <= 1e-9*(1+pv) {
			matched++
		}
	}
	if compared == 0 {
		t.Fatal("nothing compared")
	}
	t.Logf("budgeted vs plain: %d/%d equal, %d feasibility mismatches", matched, compared, mismatches)
	if matched < compared*2/3 {
		t.Errorf("unconstrained budgeted DP matched plain on only %d/%d", matched, compared)
	}
	if mismatches > 4 {
		t.Errorf("too many feasibility mismatches: %d", mismatches)
	}
}

func TestBudgetIsRespected(t *testing.T) {
	checked := 0
	for seed := uint64(0); seed < 40; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+900), 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		un, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{})
		if err != nil {
			continue
		}
		full := model.TotalDelay(p.Net, p.Pipe, un, p.Cost)
		budget := full * 0.98
		m, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{DelayBudgetMs: budget})
		if err != nil {
			continue // tighter budget can be infeasible
		}
		checked++
		got := model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
		if got > budget+1e-9 {
			t.Errorf("seed %d: delay %v exceeds budget %v", seed, got, budget)
		}
		// Constrained rate can never beat the unconstrained optimum found
		// by the same machinery.
		if bu, bc := model.Bottleneck(p.Net, p.Pipe, un), model.Bottleneck(p.Net, p.Pipe, m); bc < bu-1e-9 {
			t.Errorf("seed %d: constrained bottleneck %v beats unconstrained %v", seed, bc, bu)
		}
	}
	if checked == 0 {
		t.Skip("no instance admitted a tighter budget")
	}
}

func TestBudgetInfeasibleWhenTooTight(t *testing.T) {
	p, err := gen.RandomTinyProblem(gen.RNG(4), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{DelayBudgetMs: 1e-9}); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible for absurd budget", err)
	}
}

func TestParetoFrontProperties(t *testing.T) {
	tested := 0
	for seed := uint64(0); seed < 30 && tested < 10; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+1234), 5, 9)
		if err != nil {
			t.Fatal(err)
		}
		front, err := core.ParetoFront(p, 8, 4)
		if err != nil {
			continue
		}
		tested++
		for i, pt := range front {
			if pt.Mapping == nil || pt.DelayMs <= 0 || pt.RateFPS <= 0 {
				t.Fatalf("seed %d: degenerate point %+v", seed, pt)
			}
			if err := p.ValidateMapping(pt.Mapping, model.MaxFrameRate); err != nil {
				t.Errorf("seed %d: point %d invalid: %v", seed, i, err)
			}
			if i > 0 {
				// Strictly increasing delay and rate along the front.
				if pt.DelayMs <= front[i-1].DelayMs || pt.RateFPS <= front[i-1].RateFPS {
					t.Errorf("seed %d: front not strictly monotone at %d: %+v -> %+v",
						seed, i, front[i-1], pt)
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no fronts computed")
	}
}

func TestParetoFrontErrors(t *testing.T) {
	p, err := gen.RandomTinyProblem(gen.RNG(2), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ParetoFront(p, 0, 4); err == nil {
		t.Error("points < 1 should error")
	}
	if _, err := core.MaxFrameRateWithBudget(&model.Problem{}, core.TradeoffOptions{}); err == nil {
		t.Error("invalid problem should error")
	}
}
