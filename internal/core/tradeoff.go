package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// TradeoffOptions tunes the bicriteria (frame rate, end-to-end delay) DP.
type TradeoffOptions struct {
	// Beam bounds the number of Pareto-nondominated (bottleneck, delay)
	// partial paths retained per cell; <= 0 means DefaultBeam.
	Beam int
	// DelayBudgetMs prunes partial paths whose accumulated end-to-end
	// delay (Eq. 1 with the problem's cost options) exceeds the budget.
	// +Inf (or 0/negative, normalized to +Inf) disables the constraint.
	DelayBudgetMs float64
}

// maxTradeoffBeam bounds the bicriteria beam so parentIdx fits in int16.
const maxTradeoffBeam = 1<<15 - 1

// tradeEntry is a bicriteria DP cell entry: bottleneck so far, accumulated
// delay, predecessor, consumed node set.
type tradeEntry struct {
	val       float64 // bottleneck period
	delay     float64 // accumulated Eq. 1 delay
	parent    int32
	parentIdx int16
	used      graph.Bitset
}

// MaxFrameRateWithBudget solves the streaming mapping problem under an
// additional interactivity constraint using a pooled SolveContext. See
// SolveContext.MaxFrameRateWithBudget.
func MaxFrameRateWithBudget(p *model.Problem, opt TradeoffOptions) (*model.Mapping, error) {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.MaxFrameRateWithBudget(p, opt)
}

// MaxFrameRateWithBudget solves the streaming mapping problem of Section
// 3.1.2 under an additional interactivity constraint: among no-reuse simple-
// path mappings whose end-to-end delay stays within the budget, (greedily)
// minimize the bottleneck period. This models streaming applications that
// must also bound per-frame latency — a natural bicriteria extension of the
// paper's two separate objectives.
//
// Cells retain Pareto-nondominated (bottleneck, delay) pairs, capped at
// Beam entries (kept in ascending bottleneck order), so the algorithm is a
// heuristic like the paper's single-criterion DP.
func (sc *SolveContext) MaxFrameRateWithBudget(p *model.Problem, opt TradeoffOptions) (*model.Mapping, error) {
	t0 := time.Now()
	defer tradeoffSeconds.ObserveSince(t0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	beam := opt.Beam
	if beam <= 0 {
		beam = DefaultBeam
	}
	if beam > maxTradeoffBeam {
		return nil, fmt.Errorf("core: tradeoff: beam %d exceeds %d", beam, maxTradeoffBeam)
	}
	budget := opt.DelayBudgetMs
	if budget <= 0 {
		budget = math.Inf(1)
	}
	n := p.Pipe.N()
	k := p.Net.N()
	if n > k {
		return nil, fmt.Errorf("core: tradeoff: %d modules exceed %d nodes without reuse: %w", n, k, model.ErrInfeasible)
	}
	if p.Src == p.Dst {
		return nil, fmt.Errorf("core: tradeoff: source equals destination without reuse: %w", model.ErrInfeasible)
	}
	topo := p.Net.Topology()
	toDst := topo.HopsTo(int(p.Dst))

	sc.resetArena()
	cells := sc.trGrid(n, k, beam)
	srcUsed := sc.newBitset(k)
	srcUsed.Set(int(p.Src))
	cells[0][p.Src] = append(cells[0][p.Src], tradeEntry{val: 0, delay: 0, parent: -1, parentIdx: -1, used: srcUsed})

	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		remaining := n - 1 - j
		for v := 0; v < k; v++ {
			if toDst[v] == graph.Unreachable || toDst[v] > remaining {
				continue
			}
			if (remaining == 0) != (v == int(p.Dst)) {
				continue
			}
			compute := p.Pipe.ComputeTime(j, p.Net.Power(model.NodeID(v)))
			entries := cells[j][v]
			for _, eid := range topo.InEdges(v) {
				u := topo.Edge(int(eid)).From
				link := p.Net.Links[eid]
				transferBusy := link.TransferTime(inBytes, false)
				transferDelay := link.TransferTime(inBytes, p.Cost.IncludeMLDInDelay)
				for idx, pe := range cells[j-1][u] {
					if pe.used.Has(v) {
						continue
					}
					delay := pe.delay + compute + transferDelay
					if delay > budget {
						continue
					}
					val := pe.val
					if compute > val {
						val = compute
					}
					if transferBusy > val {
						val = transferBusy
					}
					entries = insertPareto(entries, tradeEntry{
						val: val, delay: delay, parent: int32(u), parentIdx: int16(idx),
					}, beam)
				}
			}
			for i := range entries {
				e := &entries[i]
				e.used = sc.cloneBitset(cells[j-1][e.parent][e.parentIdx].used)
				e.used.Set(v)
			}
			cells[j][v] = entries
		}
	}

	final := cells[n-1][p.Dst]
	if len(final) == 0 {
		return nil, fmt.Errorf("core: tradeoff: no simple path within delay budget %.3g ms: %w", budget, model.ErrInfeasible)
	}
	// Best bottleneck is first (entries kept sorted by val).
	assign := make([]model.NodeID, n)
	assign[n-1] = p.Dst
	node, idx := int32(p.Dst), int16(0)
	for j := n - 1; j >= 1; j-- {
		e := cells[j][node][idx]
		assign[j-1] = model.NodeID(e.parent)
		node, idx = e.parent, e.parentIdx
	}
	if assign[0] != p.Src {
		return nil, fmt.Errorf("core: tradeoff: reconstruction did not reach source")
	}
	return model.NewMapping(assign), nil
}

// insertPareto inserts e keeping only (val, delay)-nondominated entries in
// ascending val order, capped at beam. Dominance is strict (better in one
// criterion, no worse in the other): entries with identical costs are kept
// as separate candidates because they may consume different node sets, and
// that path diversity is what protects the DP from dead ends. The list may
// momentarily hold beam+1 entries before truncation, which slab-backed
// cells size for so the append never reallocates.
func insertPareto(list []tradeEntry, e tradeEntry, beam int) []tradeEntry {
	dominates := func(a, b tradeEntry) bool {
		return (a.val < b.val && a.delay <= b.delay) || (a.val <= b.val && a.delay < b.delay)
	}
	for _, x := range list {
		if dominates(x, e) {
			return list
		}
	}
	// Remove entries strictly dominated by e.
	out := list[:0]
	for _, x := range list {
		if !dominates(e, x) {
			out = append(out, x)
		}
	}
	list = out
	pos := len(list)
	for i, x := range list {
		if e.val < x.val {
			pos = i
			break
		}
	}
	list = append(list, tradeEntry{})
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	if len(list) > beam {
		list = list[:beam]
	}
	return list
}

// TradeoffPoint is one (delay, rate) point on the rate–delay frontier,
// with the mapping achieving it.
type TradeoffPoint struct {
	DelayMs float64
	RateFPS float64
	Mapping *model.Mapping
}

// FrontBudgets computes the delay-budget ladder a Pareto sweep solves: an
// evenly spaced ramp from the (reuse-allowed) minimum delay — a lower bound
// for any no-reuse mapping — up to the delay of the unconstrained best-rate
// mapping. It is the shared first phase of the sequential ParetoFront and
// internal/engine's parallel sweep, so both solve byte-identical budget
// lists.
//
// points must be >= 1; points == 1 yields a single unconstrained budget
// (+Inf), making the one-point front the unconstrained best-rate mapping by
// definition. beam <= 0 selects DefaultBeam.
func FrontBudgets(p *model.Problem, points, beam int) ([]float64, error) {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.frontBudgets(p, points, beam)
}

// frontBudgets is FrontBudgets on this context.
func (sc *SolveContext) frontBudgets(p *model.Problem, points, beam int) ([]float64, error) {
	if points < 1 {
		return nil, fmt.Errorf("core: ParetoFront needs >= 1 point, got %d", points)
	}
	if points == 1 {
		// The single-point sweep never reaches the solver's own argument
		// checks through a failed budget (FrontPointAt deliberately folds
		// solve errors into "infeasible"), so validate here: a bad problem
		// or beam must surface as the input error it is.
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if beam > maxTradeoffBeam {
			return nil, fmt.Errorf("core: tradeoff: beam %d exceeds %d", beam, maxTradeoffBeam)
		}
		return []float64{math.Inf(1)}, nil
	}
	unconstrained, err := sc.MaxFrameRateWithBudget(p, TradeoffOptions{Beam: beam})
	if err != nil {
		return nil, err
	}
	hiDelay := model.TotalDelay(p.Net, p.Pipe, unconstrained, p.Cost)
	loDelay := sc.MinDelayValue(p) // reuse-allowed optimum: valid lower bound
	if math.IsInf(loDelay, 1) {
		loDelay = 0
	}
	budgets := make([]float64, points)
	for i := range budgets {
		budgets[i] = loDelay + (hiDelay-loDelay)*float64(i)/float64(points-1)
	}
	return budgets, nil
}

// FrontPointAt solves one sweep budget and scores the mapping; ok is false
// when the budget is infeasible (which the sweep simply skips).
func (sc *SolveContext) FrontPointAt(p *model.Problem, budget float64, beam int) (TradeoffPoint, bool) {
	opt := TradeoffOptions{Beam: beam}
	if !math.IsInf(budget, 1) {
		opt.DelayBudgetMs = budget
	}
	m, err := sc.MaxFrameRateWithBudget(p, opt)
	if err != nil {
		return TradeoffPoint{}, false
	}
	return TradeoffPoint{
		DelayMs: model.TotalDelay(p.Net, p.Pipe, m, p.Cost),
		RateFPS: model.FrameRate(model.Bottleneck(p.Net, p.Pipe, m)),
		Mapping: m,
	}, true
}

// FrontFilter reduces raw sweep points to the nondominated (delay, rate)
// set, sorted by ascending delay: lower delay and higher rate both win. It
// is deterministic in the raw order, which the sequential and parallel
// sweeps both produce in budget order.
func FrontFilter(raw []TradeoffPoint) []TradeoffPoint {
	sort.Slice(raw, func(a, b int) bool {
		if raw[a].DelayMs != raw[b].DelayMs {
			return raw[a].DelayMs < raw[b].DelayMs
		}
		return raw[a].RateFPS > raw[b].RateFPS
	})
	var front []TradeoffPoint
	bestRate := math.Inf(-1)
	for _, pt := range raw {
		if pt.RateFPS > bestRate+1e-12 {
			front = append(front, pt)
			bestRate = pt.RateFPS
		}
	}
	return front
}

// ParetoFront sweeps delay budgets between the (reuse-allowed) minimum
// delay and the delay of the unconstrained best-rate mapping, returning the
// nondominated (delay, rate) points discovered, using a pooled
// SolveContext. See SolveContext.ParetoFront.
func ParetoFront(p *model.Problem, points, beam int) ([]TradeoffPoint, error) {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.ParetoFront(p, points, beam)
}

// ParetoFront sweeps delay budgets between the (reuse-allowed) minimum
// delay — a lower bound for any no-reuse mapping — and the delay of the
// unconstrained best-rate mapping, returning the nondominated (delay, rate)
// points discovered. points controls the sweep resolution: points == 1
// degenerates to the single unconstrained best-rate point, points < 1 is an
// error. beam <= 0 selects DefaultBeam.
//
// internal/engine.ParetoFront fans the same sweep out over a worker pool
// and returns byte-identical results.
func (sc *SolveContext) ParetoFront(p *model.Problem, points, beam int) ([]TradeoffPoint, error) {
	t0 := time.Now()
	defer frontSeconds.ObserveSince(t0)
	budgets, err := sc.frontBudgets(p, points, beam)
	if err != nil {
		return nil, err
	}
	raw := make([]TradeoffPoint, 0, len(budgets))
	for _, budget := range budgets {
		if pt, ok := sc.FrontPointAt(p, budget, beam); ok {
			raw = append(raw, pt)
		}
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("core: ParetoFront: every budget infeasible: %w", model.ErrInfeasible)
	}
	return FrontFilter(raw), nil
}
