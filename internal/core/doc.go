// Package core implements the paper's primary contribution: the Efficient
// Linear Pipeline Configuration (ELPC) algorithms of Section 3.1.
//
// Two dynamic programs are provided:
//
//   - MinDelay solves the minimum end-to-end delay mapping problem with node
//     reuse (Section 3.1.1). It fills the 2-D table T^j(v_i) of Figure 1
//     column by column: T^j(v) is the minimal total delay of mapping the
//     first j modules onto a walk from the source to node v. At each cell the
//     recursion (Eq. 3) considers running module j on the same node as module
//     j-1 (stay) or on a neighbor (move, paying the transfer). The algorithm
//     is optimal and runs in O(n·(|E|+|V|)) time.
//
//   - MaxFrameRate solves the restricted maximum frame rate problem without
//     node reuse (Section 3.1.2). The exact problem is NP-complete (the paper
//     reduces Hamiltonian Path to the exact-n-hop shortest/widest path
//     problem), so ELPC keeps, per table cell, the single best simple path
//     found so far and extends it only to unused nodes (Eq. 5). This is the
//     paper's heuristic: it can miss the optimum when every best predecessor
//     path has already consumed the current node, a case the paper reports —
//     and our property tests confirm — to be rare.
//
// Both algorithms reconstruct the full module→node assignment through
// back-pointers, so callers receive a model.Mapping that can be re-scored,
// validated, simulated, and visualized independently of the DP internals.
package core
