package core

import "elpc/internal/telemetry"

// Per-operation solve-latency histograms, recorded by the SolveContext entry
// points so every caller — the planning service, fleet admission, engine
// sweeps, the package-level convenience functions — lands in the same series.
// The DP hot loops themselves are untouched; the observation is one clock
// read on entry and one atomic increment on return.
var (
	minDelaySeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="mindelay"}`,
		"DP solve latency by operation (seconds)", nil)
	frameRateSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="maxframerate"}`, "", nil)
	tradeoffSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="maxframerate_budget"}`, "", nil)
	frontSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="front"}`, "", nil)
)

// Warm-start solve outcome counters (see WarmState): every solve through a
// WarmState lands in exactly one outcome series, and the cell counters track
// how much DP work retention actually saved.
var (
	warmRebuildTotal = telemetry.Default().Counter(
		`elpc_solve_warm_total{outcome="rebuild"}`,
		"Warm-start solves by outcome (rebuild/partial/hit/bypass)")
	warmPartialTotal = telemetry.Default().Counter(
		`elpc_solve_warm_total{outcome="partial"}`, "")
	warmHitTotal = telemetry.Default().Counter(
		`elpc_solve_warm_total{outcome="hit"}`, "")
	warmBypassTotal = telemetry.Default().Counter(
		`elpc_solve_warm_total{outcome="bypass"}`, "")
	warmCellsRecomputed = telemetry.Default().Counter(
		"elpc_solve_warm_cells_recomputed_total",
		"DP cells recomputed by warm-start solves")
	warmCellsReused = telemetry.Default().Counter(
		"elpc_solve_warm_cells_reused_total",
		"DP cells served from retained grids by warm-start solves")
)
