package core

import "elpc/internal/telemetry"

// Per-operation solve-latency histograms, recorded by the SolveContext entry
// points so every caller — the planning service, fleet admission, engine
// sweeps, the package-level convenience functions — lands in the same series.
// The DP hot loops themselves are untouched; the observation is one clock
// read on entry and one atomic increment on return.
var (
	minDelaySeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="mindelay"}`,
		"DP solve latency by operation (seconds)", nil)
	frameRateSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="maxframerate"}`, "", nil)
	tradeoffSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="maxframerate_budget"}`, "", nil)
	frontSeconds = telemetry.Default().Histogram(
		`elpc_core_solve_seconds{op="front"}`, "", nil)
)
