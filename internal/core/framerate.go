package core

import (
	"fmt"
	"math"
	"time"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// DefaultBeam is the per-cell path count used by MaxFrameRate. Beam 1 is
// exactly the paper's heuristic (one best simple path per table cell); the
// harness uses DefaultBeam because on sparse arbitrary topologies with long
// pipelines the single-path variant dead-ends measurably often (the ablation
// benchmark quantifies this — see EXPERIMENTS.md).
const DefaultBeam = 4

// FrameRateOptions tunes the frame-rate DP.
type FrameRateOptions struct {
	// Beam is the number of candidate simple paths retained per (module,
	// node) cell; <= 0 means DefaultBeam. Beam 1 reproduces the paper's
	// Section 3.1.2 heuristic verbatim.
	Beam int
}

// frEntry is one retained candidate in a DP cell: the bottleneck of a simple
// partial path ending here, its predecessor (node and entry index), and the
// node set the path has consumed.
type frEntry struct {
	val       float64
	parent    int32
	parentIdx int8
	used      graph.Bitset
}

// MaxFrameRate computes a maximum frame rate mapping without node reuse
// using the default beam width. See MaxFrameRateOpt.
func MaxFrameRate(p *model.Problem) (*model.Mapping, error) {
	return MaxFrameRateOpt(p, FrameRateOptions{})
}

// MaxFrameRateOpt computes a maximum frame rate mapping without node reuse
// (ELPC heuristic, Section 3.1.2) using a pooled SolveContext. See
// SolveContext.MaxFrameRate for the algorithm.
func MaxFrameRateOpt(p *model.Problem, opt FrameRateOptions) (*model.Mapping, error) {
	sc := acquireCtx()
	defer releaseCtx(sc)
	return sc.MaxFrameRate(p, opt)
}

// MaxFrameRate computes a maximum frame rate mapping without node reuse
// (ELPC heuristic, Section 3.1.2): every module runs on a distinct node and
// consecutive modules must be joined by a directed link, i.e. the mapping is
// a simple path of exactly n nodes from p.Src to p.Dst. The objective is the
// bottleneck period of Eq. 2 — the maximum over per-module compute times and
// per-hop transfer times (bandwidth term only; propagation delay does not
// limit throughput).
//
// The exact problem is NP-complete (the paper reduces Hamiltonian Path to
// it), so the DP keeps a bounded set of best simple paths per (module, node)
// cell. With Beam=1 this is the paper's heuristic; larger beams trade memory
// and time (O(Beam²·n·|E|)) for fewer dead-end misses. It returns
// model.ErrInfeasible (wrapped) when no simple path of the right length is
// found — which may occasionally be a heuristic miss rather than true
// infeasibility; baseline.Brute provides the exact check on small instances.
func (sc *SolveContext) MaxFrameRate(p *model.Problem, opt FrameRateOptions) (*model.Mapping, error) {
	t0 := time.Now()
	defer frameRateSeconds.ObserveSince(t0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	beam := opt.Beam
	if beam <= 0 {
		beam = DefaultBeam
	}
	if beam > 127 {
		return nil, fmt.Errorf("core: MaxFrameRate: beam %d exceeds 127", beam)
	}
	n := p.Pipe.N()
	k := p.Net.N()
	if n > k {
		return nil, fmt.Errorf("core: MaxFrameRate: %d modules exceed %d nodes without reuse: %w",
			n, k, model.ErrInfeasible)
	}
	if p.Src == p.Dst {
		return nil, fmt.Errorf("core: MaxFrameRate: source equals destination but reuse is disabled: %w",
			model.ErrInfeasible)
	}
	topo := p.Net.Topology()

	// Prune with hop distances: module j on v still needs a path of exactly
	// n-1-j hops to Dst, so v must be within that many hops of Dst.
	toDst := topo.HopsTo(int(p.Dst))

	// cells[j][v] holds up to beam entries sorted by ascending val.
	sc.resetArena()
	cells := sc.frGrid(n, k, beam)
	srcUsed := sc.newBitset(k)
	srcUsed.Set(int(p.Src))
	cells[0][p.Src] = append(cells[0][p.Src], frEntry{val: 0, parent: -1, parentIdx: -1, used: srcUsed})

	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		remaining := n - 1 - j
		for v := 0; v < k; v++ {
			if toDst[v] == graph.Unreachable || toDst[v] > remaining {
				continue
			}
			// The destination can only be entered on the final hop: a
			// simple path cannot leave and re-enter it, so any earlier
			// visit is a guaranteed dead end.
			if (remaining == 0) != (v == int(p.Dst)) {
				continue
			}
			compute := p.Pipe.ComputeTime(j, p.Net.Power(model.NodeID(v)))
			entries := cells[j][v]
			for _, eid := range topo.InEdges(v) {
				u := topo.Edge(int(eid)).From
				transfer := p.Net.Links[eid].TransferTime(inBytes, false)
				for idx, pe := range cells[j-1][u] {
					if pe.used.Has(v) {
						continue
					}
					cand := pe.val
					if compute > cand {
						cand = compute
					}
					if transfer > cand {
						cand = transfer
					}
					entries = insertEntry(entries, frEntry{
						val:       cand,
						parent:    int32(u),
						parentIdx: int8(idx),
					}, beam)
				}
			}
			// Materialize used sets only for survivors (clone is the
			// expensive part).
			for i := range entries {
				e := &entries[i]
				parentUsed := cells[j-1][e.parent][e.parentIdx].used
				e.used = sc.cloneBitset(parentUsed)
				e.used.Set(v)
			}
			cells[j][v] = entries
		}
	}

	final := cells[n-1][p.Dst]
	if len(final) == 0 {
		return nil, fmt.Errorf("core: MaxFrameRate: no simple %d-node path from %d to %d found (beam %d): %w",
			n, p.Src, p.Dst, beam, model.ErrInfeasible)
	}

	assign := make([]model.NodeID, n)
	assign[n-1] = p.Dst
	node, idx := int32(p.Dst), int8(0)
	for j := n - 1; j >= 1; j-- {
		e := cells[j][node][idx]
		if e.parent < 0 {
			return nil, fmt.Errorf("core: MaxFrameRate: broken back-pointer at module %d", j)
		}
		assign[j-1] = model.NodeID(e.parent)
		node, idx = e.parent, e.parentIdx
	}
	if assign[0] != p.Src {
		return nil, fmt.Errorf("core: MaxFrameRate: reconstruction did not reach source (got %d)", assign[0])
	}
	return model.NewMapping(assign), nil
}

// insertEntry inserts e into the ascending-by-val list, keeping at most beam
// entries. The used field of candidates is not consulted, so duplicate
// partial paths may coexist; distinct predecessors give diversity, which is
// what protects against dead ends. The list's backing array is never grown
// past beam, so slab-backed cells stay allocation-free.
func insertEntry(list []frEntry, e frEntry, beam int) []frEntry {
	if len(list) == beam && e.val >= list[beam-1].val {
		return list
	}
	pos := len(list)
	for i, x := range list {
		if e.val < x.val {
			pos = i
			break
		}
	}
	if len(list) < beam {
		list = append(list, frEntry{})
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	return list
}

// MaxFrameRateValue returns only the achieved bottleneck period (ms) of the
// DP, or +Inf when infeasible. Used by scaling benchmarks.
func MaxFrameRateValue(p *model.Problem, opt FrameRateOptions) float64 {
	m, err := MaxFrameRateOpt(p, opt)
	if err != nil {
		return math.Inf(1)
	}
	return model.Bottleneck(p.Net, p.Pipe, m)
}
