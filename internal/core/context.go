package core

import (
	"sync"

	"elpc/internal/graph"
)

// SolveContext owns the reusable scratch memory of the DP solvers: the
// min-delay distance columns and back-pointer slab, the beam-DP cell grids
// and their entry slabs, and a bump-allocated bitset arena for the consumed-
// node sets of partial paths. A context is cheap to create and amortizes to
// zero steady-state allocations per solve once it has seen a problem of the
// same shape.
//
// A SolveContext is NOT safe for concurrent use; give each goroutine its own
// (the package-level solver functions draw from an internal sync.Pool, and
// internal/engine hands one to every worker).
type SolveContext struct {
	// Min-delay scratch: two distance columns and an n*k back-pointer slab.
	dist    []float64
	parSlab []int32
	parRows [][]int32

	// Frame-rate beam DP: n*k cells of up to beam frEntry, slab-backed.
	frSlab  []frEntry
	frCells [][]frEntry
	frRows  [][][]frEntry

	// Tradeoff beam DP: n*k cells of up to beam+1 tradeEntry (insertPareto
	// overshoots by one before truncating), slab-backed.
	trSlab  []tradeEntry
	trCells [][]tradeEntry
	trRows  [][][]tradeEntry

	// Bitset arena: consumed-node sets are bump-allocated here and recycled
	// wholesale at the start of the next solve.
	arena    []uint64
	arenaOff int
}

// NewSolveContext returns an empty context; scratch memory is grown lazily
// on first use and reused afterwards.
func NewSolveContext() *SolveContext { return &SolveContext{} }

// solveCtxPool backs the package-level convenience functions so one-shot
// callers get the allocation-lean path without managing contexts.
var solveCtxPool = sync.Pool{New: func() any { return NewSolveContext() }}

func acquireCtx() *SolveContext   { return solveCtxPool.Get().(*SolveContext) }
func releaseCtx(sc *SolveContext) { solveCtxPool.Put(sc) }

// AcquireSolveContext hands out a context from the shared pool — the same
// pool the package-level solver functions use, so external parallel drivers
// (internal/engine) reuse the already-grown scratch instead of warming a
// second pool. Pair every call with ReleaseSolveContext.
func AcquireSolveContext() *SolveContext { return acquireCtx() }

// ReleaseSolveContext returns a context to the shared pool. The context
// must not be used after release.
func ReleaseSolveContext(sc *SolveContext) { releaseCtx(sc) }

// resetArena recycles the bitset arena for a new solve. Previously returned
// bitsets are invalidated; every allocation is fully overwritten before use,
// so no zeroing is needed.
func (sc *SolveContext) resetArena() { sc.arenaOff = 0 }

// allocBits bump-allocates w words. When the arena is exhausted it grows a
// fresh backing array; slices handed out earlier keep pointing into the old
// one and stay valid for the remainder of the solve.
func (sc *SolveContext) allocBits(w int) graph.Bitset {
	if sc.arenaOff+w > len(sc.arena) {
		size := 2 * len(sc.arena)
		if size < 1024 {
			size = 1024
		}
		if size < w {
			size = w
		}
		sc.arena = make([]uint64, size)
		sc.arenaOff = 0
	}
	b := sc.arena[sc.arenaOff : sc.arenaOff+w]
	sc.arenaOff += w
	return graph.Bitset(b)
}

// newBitset allocates a zeroed bitset for values in [0, k).
func (sc *SolveContext) newBitset(k int) graph.Bitset {
	b := sc.allocBits((k + 63) / 64)
	for i := range b {
		b[i] = 0
	}
	return b
}

// cloneBitset copies b into the arena.
func (sc *SolveContext) cloneBitset(b graph.Bitset) graph.Bitset {
	c := sc.allocBits(len(b))
	copy(c, b)
	return c
}

// distCols returns the two k-wide min-delay distance columns.
func (sc *SolveContext) distCols(k int) (prev, cur []float64) {
	if cap(sc.dist) < 2*k {
		sc.dist = make([]float64, 2*k)
	}
	d := sc.dist[:2*k]
	return d[:k], d[k:]
}

// parentGrid returns n rows of k back-pointers backed by one slab.
func (sc *SolveContext) parentGrid(n, k int) [][]int32 {
	if cap(sc.parSlab) < n*k {
		sc.parSlab = make([]int32, n*k)
	}
	slab := sc.parSlab[:n*k]
	if cap(sc.parRows) < n {
		sc.parRows = make([][]int32, n)
	}
	rows := sc.parRows[:n]
	for j := range rows {
		rows[j] = slab[j*k : (j+1)*k]
	}
	return rows
}

// frGrid returns the n×k frame-rate DP cell grid with every cell an empty
// slice of capacity beam carved out of one slab, so insertEntry never
// allocates.
func (sc *SolveContext) frGrid(n, k, beam int) [][][]frEntry {
	need := n * k * beam
	if cap(sc.frSlab) < need {
		sc.frSlab = make([]frEntry, need)
	}
	slab := sc.frSlab[:need]
	if cap(sc.frCells) < n*k {
		sc.frCells = make([][]frEntry, n*k)
	}
	cells := sc.frCells[:n*k]
	for i := range cells {
		off := i * beam
		cells[i] = slab[off : off : off+beam]
	}
	if cap(sc.frRows) < n {
		sc.frRows = make([][][]frEntry, n)
	}
	rows := sc.frRows[:n]
	for j := range rows {
		rows[j] = cells[j*k : (j+1)*k]
	}
	return rows
}

// maxSlabBeam bounds the beam width the grids slab-allocate for. The slab
// reserves beam(+1) entries per cell up front, which is the right trade for
// the routine widths (DefaultBeam..tens) but would reserve gigabytes for an
// extreme explicit beam (the tradeoff DP accepts up to 32767) even though
// pruning leaves most cells empty — past the cutoff, cells start nil and
// grow per survivor like the pre-slab implementation.
const maxSlabBeam = 128

// trGrid is frGrid for the bicriteria DP; cells get capacity beam+1 because
// insertPareto appends before truncating back to beam.
func (sc *SolveContext) trGrid(n, k, beam int) [][][]tradeEntry {
	lazy := beam > maxSlabBeam
	c := beam + 1
	if lazy {
		c = 0
	}
	need := n * k * c
	if cap(sc.trSlab) < need {
		sc.trSlab = make([]tradeEntry, need)
	}
	slab := sc.trSlab[:need]
	if cap(sc.trCells) < n*k {
		sc.trCells = make([][]tradeEntry, n*k)
	}
	cells := sc.trCells[:n*k]
	for i := range cells {
		if lazy {
			cells[i] = nil
			continue
		}
		off := i * c
		cells[i] = slab[off : off : off+c]
	}
	if cap(sc.trRows) < n {
		sc.trRows = make([][][]tradeEntry, n)
	}
	rows := sc.trRows[:n]
	for j := range rows {
		rows[j] = cells[j*k : (j+1)*k]
	}
	return rows
}
