package core

import (
	"fmt"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

// mutateFactors applies one random capacity perturbation to the residual
// view: a node or link factor set to a value in (0, 1], occasionally an
// outright down (0) or full restore (1).
func mutateFactors(rn *model.ResidualNetwork, rng interface {
	IntN(int) int
	Float64() float64
}) {
	node, link := rn.CapacityFactors()
	pick := func() float64 {
		switch rng.IntN(5) {
		case 0:
			return 0 // down
		case 1:
			return 1 // restored
		default:
			return 0.05 + 0.95*rng.Float64()
		}
	}
	n := rng.IntN(len(node) + len(link))
	if n < len(node) {
		node[n] = pick()
	} else {
		link[n-len(node)] = pick()
	}
	if err := rn.SetCapacityFactors(node, link); err != nil {
		panic(err)
	}
}

// errString canonicalizes an error for byte-level comparison.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// sameAssign reports whether two mappings are byte-identical assignments.
func sameAssign(a, b *model.Mapping) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Assign) != len(b.Assign) {
		return false
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			return false
		}
	}
	return true
}

// checkMinDelayGrid cross-checks every retained cell of ws against a fresh
// full rebuild on the same problem: no stale value may survive a warm solve.
func checkMinDelayGrid(p *model.Problem, ws *WarmState) error {
	if ws.Last().Outcome == WarmBypass {
		return nil
	}
	fresh := NewWarmState()
	_, _ = fresh.MinDelay(p) // infeasibility still fills the grid
	n, k := p.Pipe.N(), p.Net.N()
	for i := 0; i < n*k; i++ {
		// Go's == treats +Inf as equal to +Inf, which matches the DP's own
		// change detection.
		if ws.md.val[i] != fresh.md.val[i] {
			return fmt.Errorf("stale min-delay value at cell (%d,%d): warm %v, cold %v",
				i/k, i%k, ws.md.val[i], fresh.md.val[i])
		}
		// Row 0 back-pointers are never written; compare rows 1..n-1.
		if i >= k && ws.md.par[i] != fresh.md.par[i] {
			return fmt.Errorf("stale min-delay parent at cell (%d,%d): warm %d, cold %d",
				i/k, i%k, ws.md.par[i], fresh.md.par[i])
		}
	}
	return nil
}

// checkFrameRateGrid cross-checks the retained beam grid (entries and
// consumed-node sets) against a fresh full rebuild.
func checkFrameRateGrid(p *model.Problem, ws *WarmState, opt FrameRateOptions) error {
	if ws.Last().Outcome == WarmBypass {
		return nil
	}
	fresh := NewWarmState()
	_, _ = fresh.MaxFrameRate(p, opt)
	n, k := p.Pipe.N(), p.Net.N()
	for i := 0; i < n*k; i++ {
		if !frEntriesEqual(ws.fr.cells[i], fresh.fr.cells[i]) {
			return fmt.Errorf("stale frame-rate cell (%d,%d): warm %d entries, cold %d entries",
				i/k, i%k, len(ws.fr.cells[i]), len(fresh.fr.cells[i]))
		}
	}
	return nil
}

// runWarmColdStep solves the current snapshot through both paths for both
// objectives and fails on any observable divergence.
func runWarmColdStep(t *testing.T, base *model.Problem, snap *model.Network, ws *WarmState) {
	t.Helper()
	q := *base
	q.Net = snap

	wm, werr := ws.MinDelay(&q)
	cm, cerr := MinDelay(&q)
	if errString(werr) != errString(cerr) {
		t.Fatalf("MinDelay error mismatch: warm %q, cold %q", errString(werr), errString(cerr))
	}
	if !sameAssign(wm, cm) {
		t.Fatalf("MinDelay mapping mismatch: warm %v, cold %v", wm, cm)
	}
	if err := checkMinDelayGrid(&q, ws); err != nil {
		t.Fatal(err)
	}

	opt := FrameRateOptions{}
	wf, werr := ws.MaxFrameRate(&q, opt)
	cf, cerr := MaxFrameRateOpt(&q, opt)
	if errString(werr) != errString(cerr) {
		t.Fatalf("MaxFrameRate error mismatch: warm %q, cold %q", errString(werr), errString(cerr))
	}
	if !sameAssign(wf, cf) {
		t.Fatalf("MaxFrameRate mapping mismatch: warm %v, cold %v", wf, cf)
	}
	if err := checkFrameRateGrid(&q, ws, opt); err != nil {
		t.Fatal(err)
	}
}

// TestWarmEquivalenceRandomDeltas replays random capacity-factor walks on
// random problems through warm and cold solvers side by side: mappings,
// errors, and every retained grid cell must match a cold recompute exactly.
func TestWarmEquivalenceRandomDeltas(t *testing.T) {
	const instances = 25
	const steps = 12
	for inst := 0; inst < instances; inst++ {
		rng := gen.RNG(0xe1bc<<16 | uint64(inst))
		p, err := gen.RandomTinyProblem(rng, 6, 12)
		if err != nil {
			t.Fatalf("instance %d: %v", inst, err)
		}
		rn := model.NewResidualNetwork(p.Net)
		ws := NewWarmState()
		runWarmColdStep(t, p, rn.Snapshot(), ws)
		for s := 0; s < steps; s++ {
			mutateFactors(rn, rng)
			runWarmColdStep(t, p, rn.Snapshot(), ws)
		}
	}
}

// TestWarmRepeatIsHit verifies that an unchanged snapshot is served from the
// retained grids without recomputation.
func TestWarmRepeatIsHit(t *testing.T) {
	rng := gen.RNG(7)
	p, err := gen.RandomTinyProblem(rng, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	rn := model.NewResidualNetwork(p.Net)
	snap := rn.Snapshot()
	q := *p
	q.Net = snap
	ws := NewWarmState()
	if _, err := ws.MinDelay(&q); err != nil {
		t.Fatal(err)
	}
	if got := ws.Last().Outcome; got != WarmRebuild {
		t.Fatalf("first solve outcome = %v, want rebuild", got)
	}
	// Same snapshot object and a fresh snapshot of the unchanged view must
	// both be hits.
	if _, err := ws.MinDelay(&q); err != nil {
		t.Fatal(err)
	}
	if got := ws.Last(); got.Outcome != WarmHit || got.Recomputed != 0 {
		t.Fatalf("repeat solve = %+v, want hit with 0 recomputed", got)
	}
	q2 := *p
	q2.Net = rn.Snapshot()
	if _, err := ws.MinDelay(&q2); err != nil {
		t.Fatal(err)
	}
	if got := ws.Last(); got.Outcome != WarmHit || got.Recomputed != 0 {
		t.Fatalf("fresh-snapshot solve = %+v, want hit with 0 recomputed", got)
	}
}

// TestWarmSignatureChangeRebuilds verifies that changing endpoints forces a
// rebuild (and still matches cold).
func TestWarmSignatureChangeRebuilds(t *testing.T) {
	rng := gen.RNG(11)
	p, err := gen.RandomTinyProblem(rng, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	rn := model.NewResidualNetwork(p.Net)
	ws := NewWarmState()
	runWarmColdStep(t, p, rn.Snapshot(), ws)

	q := *p
	q.Src, q.Dst = p.Dst, p.Src
	runWarmColdStep(t, &q, rn.Snapshot(), ws)
	// The second problem has a different signature; its solves must have
	// been rebuilds, not (stale) partial updates.
	if got := ws.Last().Outcome; got != WarmRebuild {
		t.Fatalf("post-signature-change outcome = %v, want rebuild", got)
	}
}

// TestWarmResetKeepsCorrectness verifies Reset drops retained state (next
// solve is a rebuild) without breaking equivalence.
func TestWarmResetKeepsCorrectness(t *testing.T) {
	rng := gen.RNG(13)
	p, err := gen.RandomTinyProblem(rng, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	rn := model.NewResidualNetwork(p.Net)
	ws := NewWarmState()
	runWarmColdStep(t, p, rn.Snapshot(), ws)
	mutateFactors(rn, rng)
	ws.Reset()
	runWarmColdStep(t, p, rn.Snapshot(), ws)
}
