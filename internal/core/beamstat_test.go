package core_test

import (
	"testing"

	"elpc/internal/baseline"
	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// TestBeamOneMatchesPaperHeuristicStats reports the quality of the paper's
// exact single-path-per-cell heuristic (Beam: 1) against the exhaustive
// optimum, mirroring the paper's "extremely rare" miss claim (E9).
func TestBeamOneMatchesPaperHeuristicStats(t *testing.T) {
	brute := baseline.Brute{}
	total, optimal, feasMiss := 0, 0, 0
	for seed := uint64(0); seed < 150; seed++ {
		rng := gen.RNG(seed + 1000)
		p, err := gen.RandomTinyProblem(rng, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		bm, berr := brute.Map(p, model.MaxFrameRate)
		hm, herr := core.MaxFrameRateOpt(p, core.FrameRateOptions{Beam: 1})
		if berr != nil {
			if herr == nil {
				t.Errorf("seed %d: beam-1 found mapping on infeasible instance", seed)
			}
			continue
		}
		total++
		if herr != nil {
			feasMiss++
			continue
		}
		hv := model.Bottleneck(p.Net, p.Pipe, hm)
		bv := model.Bottleneck(p.Net, p.Pipe, bm)
		if hv <= bv+1e-9*(1+bv) {
			optimal++
		}
	}
	t.Logf("beam-1 heuristic: %d/%d optimal, %d feasibility misses", optimal, total, feasMiss)
	if optimal < total*3/4 {
		t.Errorf("beam-1 optimal on only %d/%d — below the paper's 'rare miss' claim", optimal, total)
	}
}
