package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// scaleProblem multiplies all resource capacities by alpha.
func scaleProblem(p *model.Problem, alpha float64) *model.Problem {
	net := p.Net.Clone()
	for i := range net.Nodes {
		net.Nodes[i].Power *= alpha
	}
	for i := range net.Links {
		net.Links[i].BWMbps *= alpha
	}
	return &model.Problem{Net: net, Pipe: p.Pipe, Src: p.Src, Dst: p.Dst, Cost: p.Cost}
}

// Property: the optimal delay scales as 1/alpha under uniform resource
// scaling (and the optimizer's chosen value tracks it), when MLD is
// excluded so the objective is homogeneous.
func TestQuickMinDelayScaleInvariance(t *testing.T) {
	f := func(seed uint64, alphaRaw uint8) bool {
		rng := gen.RNG(seed)
		p, err := gen.RandomTinyProblem(rng, 5, 7)
		if err != nil {
			return false
		}
		p.Cost = model.CostOptions{IncludeMLDInDelay: false}
		alpha := 0.5 + float64(alphaRaw%16)/2 // 0.5 .. 8
		v1 := core.MinDelayValue(p)
		v2 := core.MinDelayValue(scaleProblem(p, alpha))
		if math.IsInf(v1, 1) {
			return math.IsInf(v2, 1)
		}
		return math.Abs(v2-v1/alpha) <= 1e-6*(1+v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding links never worsens the optimal delay (monotonicity in
// the feasible set).
func TestQuickMinDelayMonotoneInLinks(t *testing.T) {
	f := func(seed uint64) bool {
		rng := gen.RNG(seed + 31337)
		p, err := gen.RandomTinyProblem(rng, 5, 7)
		if err != nil {
			return false
		}
		before := core.MinDelayValue(p)
		// Add a random missing link with generous capacity.
		k := p.Net.N()
		var added bool
		links := append([]model.Link(nil), p.Net.Links...)
		for tries := 0; tries < 20 && !added; tries++ {
			u, v := rng.IntN(k), rng.IntN(k)
			if u == v {
				continue
			}
			if _, ok := p.Net.LinkBetween(model.NodeID(u), model.NodeID(v)); ok {
				continue
			}
			links = append(links, model.Link{
				ID: len(links), From: model.NodeID(u), To: model.NodeID(v),
				BWMbps: 1000, MLDms: 0.1,
			})
			added = true
		}
		if !added {
			return true // complete graph; nothing to add
		}
		net2, err := model.NewNetwork(append([]model.Node(nil), p.Net.Nodes...), links)
		if err != nil {
			return false
		}
		p2 := &model.Problem{Net: net2, Pipe: p.Pipe, Src: p.Src, Dst: p.Dst, Cost: p.Cost}
		after := core.MinDelayValue(p2)
		if math.IsInf(before, 1) {
			return true // was infeasible; any outcome is an improvement
		}
		return after <= before+1e-9*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the frame-rate DP's reported mapping always re-scores to the
// value an independent evaluator computes, for every beam width.
func TestQuickFrameRateSelfConsistentAcrossBeams(t *testing.T) {
	f := func(seed uint64) bool {
		rng := gen.RNG(seed + 777)
		p, err := gen.RandomTinyProblem(rng, 5, 8)
		if err != nil {
			return false
		}
		var prev float64 = math.Inf(1)
		for _, beam := range []int{1, 2, 4} {
			m, err := core.MaxFrameRateOpt(p, core.FrameRateOptions{Beam: beam})
			if err != nil {
				continue
			}
			if p.ValidateMapping(m, model.MaxFrameRate) != nil {
				return false
			}
			v := model.Bottleneck(p.Net, p.Pipe, m)
			// Larger beams explore a superset of candidate paths per cell,
			// but the greedy per-cell pruning is not strictly nested, so we
			// only require sane values, not monotonicity.
			if v <= 0 || math.IsInf(v, 1) {
				return false
			}
			prev = math.Min(prev, v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MinDelay's mapping cost equals MinDelayValue on every instance
// (back-pointer reconstruction loses nothing).
func TestQuickReconstructionMatchesValue(t *testing.T) {
	f := func(seed uint64) bool {
		rng := gen.RNG(seed + 4242)
		p, err := gen.RandomTinyProblem(rng, 6, 9)
		if err != nil {
			return false
		}
		m, err := core.MinDelay(p)
		v := core.MinDelayValue(p)
		if err != nil {
			return math.IsInf(v, 1)
		}
		got := model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
		return math.Abs(got-v) <= 1e-9*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
