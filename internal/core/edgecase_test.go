package core_test

import (
	"errors"
	"math"
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// feasibleTinyProblem returns a small random instance on which the
// unconstrained tradeoff DP succeeds, so edge-case behavior is about the
// parameters rather than infeasibility.
func feasibleTinyProblem(t *testing.T) *model.Problem {
	t.Helper()
	for seed := uint64(0); seed < 50; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+77), 5, 9)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{}); err == nil {
			return p
		}
	}
	t.Fatal("no feasible tiny instance found")
	return nil
}

// TestParetoFrontEdgeCases pins down the defined behavior of degenerate
// sweep parameters: points < 1 is an error, points == 1 is the single
// unconstrained best-rate point, beam <= 0 selects DefaultBeam, and an
// oversized beam errors rather than overflowing back-pointer indices.
func TestParetoFrontEdgeCases(t *testing.T) {
	p := feasibleTinyProblem(t)

	tests := []struct {
		name    string
		points  int
		beam    int
		wantErr bool
		check   func(t *testing.T, front []core.TradeoffPoint)
	}{
		{name: "points=0 errors", points: 0, beam: 4, wantErr: true},
		{name: "points=-3 errors", points: -3, beam: 4, wantErr: true},
		{
			name: "points=1 single unconstrained point", points: 1, beam: 4,
			check: func(t *testing.T, front []core.TradeoffPoint) {
				if len(front) != 1 {
					t.Fatalf("front has %d points, want exactly 1", len(front))
				}
				un, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{Beam: 4})
				if err != nil {
					t.Fatal(err)
				}
				wantRate := model.FrameRate(model.Bottleneck(p.Net, p.Pipe, un))
				if math.Abs(front[0].RateFPS-wantRate) > 1e-9 {
					t.Errorf("one-point front rate %v, want unconstrained %v", front[0].RateFPS, wantRate)
				}
			},
		},
		{
			name: "points=2 both ends", points: 2, beam: 4,
			check: func(t *testing.T, front []core.TradeoffPoint) {
				if len(front) < 1 {
					t.Fatal("empty front")
				}
			},
		},
		{
			name: "beam=0 uses default", points: 4, beam: 0,
			check: func(t *testing.T, front []core.TradeoffPoint) {
				want, err := core.ParetoFront(p, 4, core.DefaultBeam)
				if err != nil {
					t.Fatal(err)
				}
				if len(front) != len(want) {
					t.Fatalf("beam=0 front has %d points, DefaultBeam %d", len(front), len(want))
				}
				for i := range front {
					if front[i].DelayMs != want[i].DelayMs || front[i].RateFPS != want[i].RateFPS {
						t.Errorf("point %d: beam=0 %+v != DefaultBeam %+v", i, front[i], want[i])
					}
				}
			},
		},
		{name: "beam=-5 uses default", points: 3, beam: -5},
		{name: "oversized beam errors", points: 3, beam: 1 << 16, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			front, err := core.ParetoFront(p, tc.points, tc.beam)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParetoFront(points=%d, beam=%d) = %d points, want error", tc.points, tc.beam, len(front))
				}
				return
			}
			if err != nil {
				t.Fatalf("ParetoFront(points=%d, beam=%d): %v", tc.points, tc.beam, err)
			}
			if len(front) == 0 {
				t.Fatal("empty front without error")
			}
			for i, pt := range front {
				if pt.Mapping == nil {
					t.Fatalf("point %d has nil mapping", i)
				}
				if err := p.ValidateMapping(pt.Mapping, model.MaxFrameRate); err != nil {
					t.Errorf("point %d invalid: %v", i, err)
				}
			}
			if tc.check != nil {
				tc.check(t, front)
			}
		})
	}
}

// TestParetoFrontSinglePointValidates: the points==1 fast path must report
// input errors as input errors, not fold them into "every budget
// infeasible" (which writeError would map to 422 instead of 400).
func TestParetoFrontSinglePointValidates(t *testing.T) {
	if _, err := core.ParetoFront(&model.Problem{}, 1, 0); err == nil || errors.Is(err, model.ErrInfeasible) {
		t.Errorf("invalid problem with points=1: err = %v, want a non-infeasible validation error", err)
	}
	p := feasibleTinyProblem(t)
	if _, err := core.ParetoFront(p, 1, 1<<16); err == nil || errors.Is(err, model.ErrInfeasible) {
		t.Errorf("oversized beam with points=1: err = %v, want a non-infeasible beam error", err)
	}
}

// TestTradeoffLargeBeamLazyGrid: beams past the slab cutoff take the lazy
// per-cell path and must still produce a valid mapping.
func TestTradeoffLargeBeamLazyGrid(t *testing.T) {
	p := feasibleTinyProblem(t)
	m, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{Beam: 500})
	if err != nil {
		t.Fatalf("beam 500: %v", err)
	}
	if err := p.ValidateMapping(m, model.MaxFrameRate); err != nil {
		t.Errorf("beam 500 mapping invalid: %v", err)
	}
	// A huge beam subsumes the default beam's search space, so the
	// bottleneck can only be equal or better.
	def, err := core.MaxFrameRateWithBudget(p, core.TradeoffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bigV, defV := model.Bottleneck(p.Net, p.Pipe, m), model.Bottleneck(p.Net, p.Pipe, def); bigV > defV+1e-9 {
		t.Errorf("beam 500 bottleneck %v worse than default-beam %v", bigV, defV)
	}
}

// TestFrontBudgetsEdgeCases pins the budget-ladder contract the parallel
// engine relies on.
func TestFrontBudgetsEdgeCases(t *testing.T) {
	p := feasibleTinyProblem(t)

	if _, err := core.FrontBudgets(p, 0, 0); err == nil {
		t.Error("points=0 should error")
	}
	one, err := core.FrontBudgets(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || !math.IsInf(one[0], 1) {
		t.Errorf("points=1 ladder = %v, want [+Inf]", one)
	}
	five, err := core.FrontBudgets(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(five) != 5 {
		t.Fatalf("points=5 ladder has %d budgets", len(five))
	}
	for i := 1; i < len(five); i++ {
		if five[i] < five[i-1] {
			t.Errorf("ladder not nondecreasing at %d: %v", i, five)
		}
	}
}

// TestMaxFrameRateBeamCap: the frame-rate DP's int8 parent index caps beam
// at 127 with a clear error, not an overflow.
func TestMaxFrameRateBeamCap(t *testing.T) {
	p := feasibleTinyProblem(t)
	if _, err := core.MaxFrameRateOpt(p, core.FrameRateOptions{Beam: 128}); err == nil {
		t.Error("beam 128 should error")
	}
	if _, err := core.MaxFrameRateOpt(p, core.FrameRateOptions{Beam: 127}); err != nil && !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("beam 127 should be accepted, got %v", err)
	}
}
