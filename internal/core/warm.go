package core

import (
	"fmt"
	"math"
	"time"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// This file implements warm-start incremental solving: a WarmState retains
// the full DP grids of the previous solve of one logical problem (same
// pipeline, endpoints, and cost options) and, when the next solve differs
// only by node/link capacity values, recomputes just the invalidated cells.
//
// The contract is byte-identical results: a warm solve returns exactly the
// mapping (and error) a cold solve of the same problem would. It holds
// because invalidation is input-driven — a cell is recomputed iff its node's
// power changed, an incoming link changed, or a previous-column dependency
// cell changed — and recomputed cells run the very same float expressions in
// the same order as the cold solvers, so every untouched cell is
// bit-identical by induction. The differential equivalence suite
// (internal/harness) and the FuzzWarmInvalidation target enforce this
// invariant.

// WarmOutcome classifies how a warm-start solve was served.
type WarmOutcome uint8

const (
	// WarmRebuild: no reusable grids (first solve, signature change,
	// structural network change) — full DP, grids retained for next time.
	WarmRebuild WarmOutcome = iota
	// WarmPartial: a capacity delta invalidated a subset of cells; only
	// those were recomputed.
	WarmPartial
	// WarmHit: the inputs are bit-identical to the previous solve; the
	// retained grids were used as-is.
	WarmHit
	// WarmBypass: the problem exceeds the retention size caps; the solve
	// was delegated to the cold path and nothing was retained.
	WarmBypass
)

// String returns the outcome's telemetry label.
func (o WarmOutcome) String() string {
	switch o {
	case WarmRebuild:
		return "rebuild"
	case WarmPartial:
		return "partial"
	case WarmHit:
		return "hit"
	case WarmBypass:
		return "bypass"
	}
	return "unknown"
}

// WarmStats describes the last solve performed through a WarmState.
type WarmStats struct {
	Outcome WarmOutcome
	// Cells is the number of computed DP cells (columns 1..n-1 by nodes).
	Cells int
	// Recomputed is how many of them this solve actually recomputed.
	Recomputed int
}

// Retention size caps: a WarmState pins its grids (and the previous
// snapshot) between solves, so unlike the pooled SolveContext scratch this
// memory is held per live deployment. Oversized problems fall back to the
// cold path.
const (
	// warmMaxCells caps n*k for the min-delay grid (~768 KiB at the cap).
	warmMaxCells = 1 << 16
	// warmMaxEntries caps n*k*beam for the frame-rate grid.
	warmMaxEntries = 1 << 18
)

// WarmState retains DP grids across solves of one logical problem. It is
// not safe for concurrent use; internal/fleet keys one per deployment so
// parallel repair/rebalance phases touch disjoint states.
type WarmState struct {
	// Problem signature the grids belong to. The pipeline is compared by
	// pointer: fleet requests carry stable *Pipeline values, and a new
	// pipeline object simply costs one rebuild.
	pipe   *model.Pipeline
	src    model.NodeID
	dst    model.NodeID
	cost   model.CostOptions
	hasSig bool

	// Diff and dirty-propagation scratch, reused across solves.
	nodeScratch []model.NodeID
	linkScratch []int
	staticMark  []bool
	staticList  []int32
	mark        []bool
	listA       []int32
	listB       []int32

	last WarmStats

	// snapBufs are up to two snapshot buffers cycled through
	// SnapshotScratch/TrackSnapshot: the grids always retain (at most) one
	// previous snapshot, so two buffers let the owner materialize each new
	// residual snapshot in place instead of allocating per solve.
	snapBufs [2]*model.Network

	md warmMinDelay
	fr warmFrameRate
}

// NewWarmState returns an empty warm state; grids grow on first solve.
func NewWarmState() *WarmState { return &WarmState{} }

// Last returns the stats of the most recent solve through this state.
func (ws *WarmState) Last() WarmStats { return ws.last }

// Reset drops the retained problem association (and pinned snapshots) while
// keeping the grown slabs, so a pooled WarmState can be handed to a new
// deployment without carrying the previous tenant's inputs.
func (ws *WarmState) Reset() {
	ws.hasSig = false
	ws.pipe = nil
	ws.md.net = nil
	ws.fr.net = nil
	ws.fr.topo = nil
	ws.fr.toDst = nil
	ws.last = WarmStats{}
}

// SnapshotScratch returns a snapshot buffer the retained grids do not
// reference — safe to overwrite for the next solve — or nil when none is
// free yet. Pass it to model.ResidualNetwork.SnapshotInto (or
// RegionSnapshotInto) and register the result with TrackSnapshot.
func (ws *WarmState) SnapshotScratch() *model.Network {
	for _, b := range ws.snapBufs {
		if b != nil && b != ws.md.net && b != ws.fr.net {
			return b
		}
	}
	return nil
}

// TrackSnapshot registers a freshly materialized snapshot so
// SnapshotScratch can hand it back once the grids stop referencing it.
func (ws *WarmState) TrackSnapshot(n *model.Network) {
	for _, b := range ws.snapBufs {
		if b == n {
			return
		}
	}
	for i, b := range ws.snapBufs {
		if b == nil || (b != ws.md.net && b != ws.fr.net) {
			ws.snapBufs[i] = n
			return
		}
	}
}

// ensureSig reports whether the problem matches the retained signature,
// storing the new signature (and invalidating both grids) when it does not.
func (ws *WarmState) ensureSig(p *model.Problem) bool {
	if ws.hasSig && ws.pipe == p.Pipe && ws.src == p.Src && ws.dst == p.Dst && ws.cost == p.Cost {
		return true
	}
	ws.pipe, ws.src, ws.dst, ws.cost = p.Pipe, p.Src, p.Dst, p.Cost
	ws.hasSig = true
	ws.md.net = nil
	ws.fr.net = nil
	// The cached hop distances are keyed on (topology, dst); a signature
	// change may move dst.
	ws.fr.toDst = nil
	return false
}

// note records per-solve stats and bumps the warm telemetry counters.
func (ws *WarmState) note(o WarmOutcome, cells, recomputed int) {
	ws.last = WarmStats{Outcome: o, Cells: cells, Recomputed: recomputed}
	switch o {
	case WarmRebuild:
		warmRebuildTotal.Inc()
	case WarmPartial:
		warmPartialTotal.Inc()
	case WarmHit:
		warmHitTotal.Inc()
	case WarmBypass:
		warmBypassTotal.Inc()
	}
	warmCellsRecomputed.Add(uint64(recomputed))
	if cells > recomputed {
		warmCellsReused.Add(uint64(cells - recomputed))
	}
}

// growMarks sizes the dirty-propagation mark arrays for k nodes. Both
// arrays are all-false between uses.
func (ws *WarmState) growMarks(k int) {
	if len(ws.staticMark) < k {
		ws.staticMark = make([]bool, k)
		ws.mark = make([]bool, k)
	}
}

// staticDirty collects the nodes whose cells are invalid in every column:
// those whose power changed plus the heads of links whose attributes
// changed. The returned list aliases ws.staticList; ws.staticMark[v] stays
// true for its members until clearStatic.
func (ws *WarmState) staticDirty(p *model.Problem, delta model.NetworkDelta) []int32 {
	ws.growMarks(p.Net.N())
	static := ws.staticList[:0]
	for _, v := range delta.Nodes {
		if !ws.staticMark[v] {
			ws.staticMark[v] = true
			static = append(static, int32(v))
		}
	}
	for _, id := range delta.Links {
		to := p.Net.Links[id].To
		if !ws.staticMark[to] {
			ws.staticMark[to] = true
			static = append(static, int32(to))
		}
	}
	ws.staticList = static
	return static
}

func (ws *WarmState) clearStatic(static []int32) {
	for _, v := range static {
		ws.staticMark[v] = false
	}
}

// diff compares the retained snapshot with the current one. full=true means
// no delta applies (nothing retained, or a structural change).
func (ws *WarmState) diff(prev *model.Network, p *model.Problem) (delta model.NetworkDelta, full bool) {
	if prev == nil {
		return model.NetworkDelta{}, true
	}
	d, ok := model.DiffNetworks(prev, p.Net, ws.nodeScratch, ws.linkScratch)
	if !ok {
		return model.NetworkDelta{}, true
	}
	// Keep the (possibly grown) scratch backing for the next diff.
	ws.nodeScratch, ws.linkScratch = d.Nodes, d.Links
	return d, false
}

// ---------------------------------------------------------------------------
// Min-delay warm solver

type warmMinDelay struct {
	// net is the snapshot the grids were computed against (nil = invalid).
	net  *model.Network
	n, k int
	val  []float64 // n*k values, row j = column of module j
	par  []int32   // n*k back-pointers
}

// grow sizes the grids for an n×k problem, reporting whether the layout
// changed (which invalidates any retained content).
func (md *warmMinDelay) grow(n, k int) (fresh bool) {
	if md.n == n && md.k == k {
		return false
	}
	md.n, md.k = n, k
	if cap(md.val) < n*k {
		md.val = make([]float64, n*k)
		md.par = make([]int32, n*k)
	}
	md.val = md.val[:n*k]
	md.par = md.par[:n*k]
	md.net = nil
	return true
}

// MinDelay is SolveContext.MinDelay with grid retention: identical results,
// but consecutive solves of the same logical problem only recompute the DP
// cells a capacity delta invalidates.
func (ws *WarmState) MinDelay(p *model.Problem) (*model.Mapping, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Pipe.N()
	k := p.Net.N()
	if n*k > warmMaxCells {
		ws.md.net = nil
		ws.note(WarmBypass, 0, 0)
		return MinDelay(p)
	}
	t0 := time.Now()
	defer minDelaySeconds.ObserveSince(t0)

	full := !ws.ensureSig(p)
	full = ws.md.grow(n, k) || full
	var delta model.NetworkDelta
	if !full {
		delta, full = ws.diff(ws.md.net, p)
	}

	cells := (n - 1) * k
	var recomputed int
	switch {
	case full:
		recomputed = ws.minDelayFull(p)
		ws.note(WarmRebuild, cells, recomputed)
	case delta.Empty():
		ws.note(WarmHit, cells, 0)
	default:
		recomputed = ws.minDelayPartial(p, delta)
		ws.note(WarmPartial, cells, recomputed)
	}
	ws.md.net = p.Net

	if math.IsInf(ws.md.val[(n-1)*k+int(p.Dst)], 1) {
		return nil, fmt.Errorf("core: MinDelay: destination %d unreachable from %d within %d modules: %w",
			p.Dst, p.Src, n, model.ErrInfeasible)
	}
	assign := make([]model.NodeID, n)
	assign[n-1] = p.Dst
	for j := n - 1; j >= 1; j-- {
		u := ws.md.par[j*k+int(assign[j])]
		if u < 0 {
			return nil, fmt.Errorf("core: MinDelay: broken back-pointer at module %d", j)
		}
		assign[j-1] = model.NodeID(u)
	}
	if assign[0] != p.Src {
		return nil, fmt.Errorf("core: MinDelay: reconstruction did not reach source (got %d)", assign[0])
	}
	return model.NewMapping(assign), nil
}

// minDelayCell computes one DP cell exactly like the cold solver's inner
// loop — same expressions, same order, so identical inputs give bit-identical
// outputs.
func minDelayCell(p *model.Problem, topo *graph.Graph, prow []float64, j, v int, inBytes float64) (float64, int32) {
	power := p.Net.Power(model.NodeID(v))
	compute := p.Pipe.ComputeTime(j, power)
	best := prow[v] + compute
	bestPar := int32(v)
	if math.IsInf(prow[v], 1) {
		best = math.Inf(1)
		bestPar = -1
	}
	for _, eid := range topo.InEdges(v) {
		u := topo.Edge(int(eid)).From
		if math.IsInf(prow[u], 1) {
			continue
		}
		link := p.Net.Links[eid]
		cand := prow[u] + compute + link.TransferTime(inBytes, p.Cost.IncludeMLDInDelay)
		if cand < best {
			best = cand
			bestPar = int32(u)
		}
	}
	return best, bestPar
}

// minDelayFull rebuilds the whole grid (the retained-state equivalent of a
// cold solve).
func (ws *WarmState) minDelayFull(p *model.Problem) int {
	n, k := p.Pipe.N(), p.Net.N()
	topo := p.Net.Topology()
	val, par := ws.md.val, ws.md.par
	row0 := val[:k]
	for v := range row0 {
		row0[v] = math.Inf(1)
	}
	row0[p.Src] = 0
	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		prow := val[(j-1)*k : j*k]
		row := val[j*k : (j+1)*k]
		parRow := par[j*k : (j+1)*k]
		for v := 0; v < k; v++ {
			row[v], parRow[v] = minDelayCell(p, topo, prow, j, v, inBytes)
		}
	}
	return (n - 1) * k
}

// minDelayPartial recomputes only the cells the delta invalidates: nodes in
// the static dirty set in every column, plus — per column — the propagation
// frontier (any node whose previous-column value changed, and its
// out-neighbors). A recomputed cell whose value is bit-equal to the retained
// one stops the propagation through it.
func (ws *WarmState) minDelayPartial(p *model.Problem, delta model.NetworkDelta) int {
	n, k := p.Pipe.N(), p.Net.N()
	topo := p.Net.Topology()
	val, par := ws.md.val, ws.md.par
	static := ws.staticDirty(p, delta)
	mark := ws.mark

	changedPrev := ws.listA[:0]
	curBuf := ws.listB
	recomputed := 0
	for j := 1; j < n; j++ {
		cur := curBuf[:0]
		for _, v := range static {
			if !mark[v] {
				mark[v] = true
				cur = append(cur, v)
			}
		}
		for _, u := range changedPrev {
			if !mark[u] {
				mark[u] = true
				cur = append(cur, u)
			}
			for _, eid := range topo.OutEdges(int(u)) {
				w := int32(topo.Edge(int(eid)).To)
				if !mark[w] {
					mark[w] = true
					cur = append(cur, w)
				}
			}
		}

		inBytes := p.Pipe.Modules[j].InBytes
		prow := val[(j-1)*k : j*k]
		row := val[j*k : (j+1)*k]
		parRow := par[j*k : (j+1)*k]
		changed := changedPrev[:0]
		for _, v32 := range cur {
			v := int(v32)
			mark[v] = false
			recomputed++
			best, bestPar := minDelayCell(p, topo, prow, j, v, inBytes)
			// Bit-equality, with +Inf == +Inf; NaN cannot occur (all terms
			// are sums/products of finite positive inputs).
			if best != row[v] {
				changed = append(changed, v32)
			}
			row[v] = best
			parRow[v] = bestPar
		}
		curBuf = cur
		changedPrev = changed
		if len(changedPrev) == 0 && len(static) == 0 {
			break
		}
	}
	ws.clearStatic(static)
	ws.listA, ws.listB = changedPrev, curBuf
	return recomputed
}

// ---------------------------------------------------------------------------
// Max-frame-rate warm solver

type warmFrameRate struct {
	// net is the snapshot the grids were computed against (nil = invalid).
	net        *model.Network
	n, k, beam int
	slab       []frEntry
	cells      [][]frEntry // n*k cells, each slab-backed with cap beam
	scratch    []frEntry   // previous-entry copy for change detection

	// Bitset arena for the consumed-node sets. Unlike the SolveContext
	// arena it cannot be recycled per solve — retained entries keep
	// pointing into it — so it only resets on full rebuilds, and
	// allocWords tracks growth since the last reset to bound drift.
	arena      []uint64
	arenaOff   int
	allocWords int

	// Cached hop distances to dst (pure function of the shared topology).
	topo  *graph.Graph
	toDst []int
}

func (fr *warmFrameRate) grow(n, k, beam int) (fresh bool) {
	if fr.n == n && fr.k == k && fr.beam == beam {
		return false
	}
	fr.n, fr.k, fr.beam = n, k, beam
	need := n * k * beam
	if cap(fr.slab) < need {
		fr.slab = make([]frEntry, need)
	}
	fr.slab = fr.slab[:need]
	if cap(fr.cells) < n*k {
		fr.cells = make([][]frEntry, n*k)
	}
	fr.cells = fr.cells[:n*k]
	fr.net = nil
	return true
}

// resetCells empties every cell (keeping its slab backing) and recycles the
// bitset arena; only valid at the start of a full rebuild, which never reads
// retained entries.
func (fr *warmFrameRate) resetCells() {
	beam := fr.beam
	for i := range fr.cells {
		off := i * beam
		fr.cells[i] = fr.slab[off : off : off+beam]
	}
	fr.arenaOff = 0
	fr.allocWords = 0
}

// allocBits bump-allocates w words from the warm arena. When the arena is
// exhausted a fresh backing array is grown; retained bitsets keep pointing
// into the old one, which stays alive for as long as they do.
func (fr *warmFrameRate) allocBits(w int) graph.Bitset {
	if fr.arenaOff+w > len(fr.arena) {
		size := 2 * len(fr.arena)
		if size < 1024 {
			size = 1024
		}
		if size < w {
			size = w
		}
		fr.arena = make([]uint64, size)
		fr.arenaOff = 0
	}
	b := fr.arena[fr.arenaOff : fr.arenaOff+w]
	fr.arenaOff += w
	fr.allocWords += w
	return graph.Bitset(b)
}

func (fr *warmFrameRate) newBitset(k int) graph.Bitset {
	b := fr.allocBits((k + 63) / 64)
	for i := range b {
		b[i] = 0
	}
	return b
}

func (fr *warmFrameRate) cloneBitset(b graph.Bitset) graph.Bitset {
	c := fr.allocBits(len(b))
	copy(c, b)
	return c
}

// frEntriesEqual reports whether two cell entry lists are bit-identical,
// including the consumed-node sets: two entries with equal back-pointers can
// still carry different paths after an upstream change, and downstream
// pruning reads the sets, so propagation may only stop on full equality.
func frEntriesEqual(a, b []frEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].val != b[i].val || a[i].parent != b[i].parent || a[i].parentIdx != b[i].parentIdx {
			return false
		}
		au, bu := a[i].used, b[i].used
		if len(au) != len(bu) {
			return false
		}
		for w := range au {
			if au[w] != bu[w] {
				return false
			}
		}
	}
	return true
}

// MaxFrameRate is SolveContext.MaxFrameRate with grid retention: identical
// results, with only delta-invalidated cells recomputed on consecutive
// solves of the same logical problem.
func (ws *WarmState) MaxFrameRate(p *model.Problem, opt FrameRateOptions) (*model.Mapping, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	beam := opt.Beam
	if beam <= 0 {
		beam = DefaultBeam
	}
	if beam > 127 {
		return nil, fmt.Errorf("core: MaxFrameRate: beam %d exceeds 127", beam)
	}
	n := p.Pipe.N()
	k := p.Net.N()
	if n > k {
		return nil, fmt.Errorf("core: MaxFrameRate: %d modules exceed %d nodes without reuse: %w",
			n, k, model.ErrInfeasible)
	}
	if p.Src == p.Dst {
		return nil, fmt.Errorf("core: MaxFrameRate: source equals destination but reuse is disabled: %w",
			model.ErrInfeasible)
	}
	if n*k*beam > warmMaxEntries {
		ws.fr.net = nil
		ws.note(WarmBypass, 0, 0)
		return MaxFrameRateOpt(p, opt)
	}
	t0 := time.Now()
	defer frameRateSeconds.ObserveSince(t0)
	topo := p.Net.Topology()
	fr := &ws.fr

	full := !ws.ensureSig(p)
	full = fr.grow(n, k, beam) || full
	// Bound arena drift: after enough partial updates, fold the garbage by
	// rebuilding (which recycles the arena wholesale).
	if !full && fr.allocWords > 4*n*k*beam*((k+63)/64) {
		full = true
	}
	var delta model.NetworkDelta
	if !full {
		delta, full = ws.diff(fr.net, p)
	}
	if fr.topo != topo || fr.toDst == nil {
		fr.topo = topo
		fr.toDst = topo.HopsTo(int(p.Dst))
	}

	cells := (n - 1) * k
	var recomputed int
	switch {
	case full:
		recomputed = ws.frameRateFull(p, beam)
		ws.note(WarmRebuild, cells, recomputed)
	case delta.Empty():
		ws.note(WarmHit, cells, 0)
	default:
		recomputed = ws.frameRatePartial(p, delta, beam)
		ws.note(WarmPartial, cells, recomputed)
	}
	fr.net = p.Net

	final := fr.cells[(n-1)*k+int(p.Dst)]
	if len(final) == 0 {
		return nil, fmt.Errorf("core: MaxFrameRate: no simple %d-node path from %d to %d found (beam %d): %w",
			n, p.Src, p.Dst, beam, model.ErrInfeasible)
	}
	assign := make([]model.NodeID, n)
	assign[n-1] = p.Dst
	node, idx := int32(p.Dst), int8(0)
	for j := n - 1; j >= 1; j-- {
		e := fr.cells[j*k+int(node)][idx]
		if e.parent < 0 {
			return nil, fmt.Errorf("core: MaxFrameRate: broken back-pointer at module %d", j)
		}
		assign[j-1] = model.NodeID(e.parent)
		node, idx = e.parent, e.parentIdx
	}
	if assign[0] != p.Src {
		return nil, fmt.Errorf("core: MaxFrameRate: reconstruction did not reach source (got %d)", assign[0])
	}
	return model.NewMapping(assign), nil
}

// frameRateCell recomputes one beam-DP cell exactly like the cold solver's
// inner loop, reading the current column j-1 entries. The caller has already
// applied the (topology-only, hence solve-invariant) pruning checks.
func (ws *WarmState) frameRateCell(p *model.Problem, topo *graph.Graph, j, v, beam int, inBytes float64) []frEntry {
	fr := &ws.fr
	k := fr.k
	compute := p.Pipe.ComputeTime(j, p.Net.Power(model.NodeID(v)))
	entries := fr.cells[j*k+v][:0]
	for _, eid := range topo.InEdges(v) {
		u := topo.Edge(int(eid)).From
		transfer := p.Net.Links[eid].TransferTime(inBytes, false)
		for idx, pe := range fr.cells[(j-1)*k+u] {
			if pe.used.Has(v) {
				continue
			}
			cand := pe.val
			if compute > cand {
				cand = compute
			}
			if transfer > cand {
				cand = transfer
			}
			entries = insertEntry(entries, frEntry{
				val:       cand,
				parent:    int32(u),
				parentIdx: int8(idx),
			}, beam)
		}
	}
	for i := range entries {
		e := &entries[i]
		parentUsed := fr.cells[(j-1)*k+int(e.parent)][e.parentIdx].used
		e.used = fr.cloneBitset(parentUsed)
		e.used.Set(v)
	}
	fr.cells[j*k+v] = entries
	return entries
}

// frameRateFull rebuilds the whole beam grid.
func (ws *WarmState) frameRateFull(p *model.Problem, beam int) int {
	n, k := p.Pipe.N(), p.Net.N()
	topo := p.Net.Topology()
	fr := &ws.fr
	fr.resetCells()
	toDst := fr.toDst

	srcUsed := fr.newBitset(k)
	srcUsed.Set(int(p.Src))
	fr.cells[int(p.Src)] = append(fr.cells[int(p.Src)], frEntry{val: 0, parent: -1, parentIdx: -1, used: srcUsed})

	recomputed := 0
	for j := 1; j < n; j++ {
		inBytes := p.Pipe.Modules[j].InBytes
		remaining := n - 1 - j
		for v := 0; v < k; v++ {
			if toDst[v] == graph.Unreachable || toDst[v] > remaining {
				continue
			}
			if (remaining == 0) != (v == int(p.Dst)) {
				continue
			}
			recomputed++
			ws.frameRateCell(p, topo, j, v, beam, inBytes)
		}
	}
	return recomputed
}

// frameRatePartial recomputes only the delta-invalidated cells. The
// propagation frontier of a changed cell (j-1, u) is u's out-neighbors (the
// beam DP has no same-node transition), and propagation stops at cells whose
// recomputed entries — including their consumed-node sets — are bit-equal to
// the retained ones.
func (ws *WarmState) frameRatePartial(p *model.Problem, delta model.NetworkDelta, beam int) int {
	n, k := p.Pipe.N(), p.Net.N()
	topo := p.Net.Topology()
	fr := &ws.fr
	toDst := fr.toDst
	static := ws.staticDirty(p, delta)
	mark := ws.mark

	changedPrev := ws.listA[:0]
	curBuf := ws.listB
	recomputed := 0
	for j := 1; j < n; j++ {
		cur := curBuf[:0]
		for _, v := range static {
			if !mark[v] {
				mark[v] = true
				cur = append(cur, v)
			}
		}
		for _, u := range changedPrev {
			for _, eid := range topo.OutEdges(int(u)) {
				w := int32(topo.Edge(int(eid)).To)
				if !mark[w] {
					mark[w] = true
					cur = append(cur, w)
				}
			}
		}

		inBytes := p.Pipe.Modules[j].InBytes
		remaining := n - 1 - j
		changed := changedPrev[:0]
		for _, v32 := range cur {
			v := int(v32)
			mark[v] = false
			// The pruning conditions are pure topology: a cell they skip
			// cold is one the retained grid already holds empty.
			if toDst[v] == graph.Unreachable || toDst[v] > remaining {
				continue
			}
			if (remaining == 0) != (v == int(p.Dst)) {
				continue
			}
			recomputed++
			old := append(fr.scratch[:0], fr.cells[j*k+v]...)
			fr.scratch = old
			entries := ws.frameRateCell(p, topo, j, v, beam, inBytes)
			if !frEntriesEqual(old, entries) {
				changed = append(changed, v32)
			}
		}
		curBuf = cur
		changedPrev = changed
		if len(changedPrev) == 0 && len(static) == 0 {
			break
		}
	}
	ws.clearStatic(static)
	ws.listA, ws.listB = changedPrev, curBuf
	return recomputed
}
