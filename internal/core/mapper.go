package core

import "elpc/internal/model"

// Mapper adapts the ELPC algorithms to the model.Mapper interface used by
// the experiment harness.
type Mapper struct{}

var _ model.Mapper = Mapper{}

// Name implements model.Mapper.
func (Mapper) Name() string { return "ELPC" }

// Map implements model.Mapper, dispatching on the objective.
func (Mapper) Map(p *model.Problem, obj model.Objective) (*model.Mapping, error) {
	switch obj {
	case model.MinDelay:
		return MinDelay(p)
	case model.MaxFrameRate:
		return MaxFrameRate(p)
	default:
		return nil, model.ErrInfeasible
	}
}
