package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the number of slowest traces a Tracer retains
// when the caller does not say.
const DefaultTraceCapacity = 32

// Tracer retains the slowest finished traces in a bounded ring: a finished
// trace enters only when the ring has room or the trace is slower than the
// current fastest retained one, which it then displaces. All methods are
// safe for concurrent use, and every method is a no-op on a nil *Tracer —
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	capacity int

	mu      sync.Mutex
	slowest []TraceRecord // sorted by DurationMs descending
	started atomic.Uint64
	kept    atomic.Uint64
}

// NewTracer returns a tracer retaining the capacity slowest traces
// (<= 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity}
}

// Span is one timed operation inside a trace. Spans form a tree through
// explicit parent passing: Child creates a sub-span, End stamps the
// duration. A nil *Span is a valid no-op (its Child is nil too), so call
// sites need no enabled/disabled branches. A span's fields are owned by the
// goroutine that created it; Child appends under the span's lock, so
// concurrent children (a batch fan-out) are safe.
type Span struct {
	name  string
	start time.Time
	// durationNs is atomic: a solve abandoned by its caller still ends its
	// span from the background goroutine, possibly concurrently with the
	// middleware freezing the trace.
	durationNs atomic.Int64
	annots     []string

	mu       sync.Mutex
	children []*Span
}

// Trace is one in-progress request trace: a root span plus the tracer that
// will retain it. Finish ends the root and offers the trace to the ring.
type Trace struct {
	tracer *Tracer
	root   *Span
}

// Start begins a new trace rooted at a span named op. A nil tracer returns
// a nil trace, whose methods (and whose root's) all no-op.
func (t *Tracer) Start(op string) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	return &Trace{tracer: t, root: newSpan(op)}
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Root returns the trace's root span (nil for a nil trace).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Finish ends the root span and offers the trace to the tracer's
// slowest-traces ring. Finish must be called once, after every child span
// has ended.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.root.End()
	tr.tracer.offer(tr.root)
}

// Child starts a sub-span under s. Safe on a nil span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration; later Ends are ignored. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.durationNs.CompareAndSwap(0, int64(time.Since(s.start)))
}

// Rename replaces the span's name — the HTTP middleware starts the root
// before routing and renames it to the matched pattern afterwards. Safe on
// nil.
func (s *Span) Rename(name string) {
	if s != nil {
		s.name = name
	}
}

// Annotate attaches a short note to the span ("cache hit", an error class).
// Safe on nil.
func (s *Span) Annotate(note string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.annots = append(s.annots, note)
	s.mu.Unlock()
}

// SpanRecord is the frozen JSON form of one span: offset and duration
// relative to wall clock, notes, and children in creation order.
type SpanRecord struct {
	Name       string       `json:"name"`
	StartMs    float64      `json:"start_ms"` // offset from the trace start
	DurationMs float64      `json:"duration_ms"`
	Notes      []string     `json:"notes,omitempty"`
	Children   []SpanRecord `json:"children,omitempty"`
}

// TraceRecord is one finished retained trace.
type TraceRecord struct {
	// Op is the root span's name (the matched route for HTTP traces).
	Op string `json:"op"`
	// Start is the trace's wall-clock start.
	Start time.Time `json:"start"`
	// DurationMs is the root span's total duration.
	DurationMs float64 `json:"duration_ms"`
	// Root is the frozen span tree.
	Root SpanRecord `json:"root"`
}

// freeze converts the span tree to records; base is the trace start.
func (s *Span) freeze(base time.Time) SpanRecord {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	notes := append([]string(nil), s.annots...)
	s.mu.Unlock()
	rec := SpanRecord{
		Name:       s.name,
		StartMs:    float64(s.start.Sub(base)) / float64(time.Millisecond),
		DurationMs: float64(s.durationNs.Load()) / float64(time.Millisecond),
		Notes:      notes,
	}
	for _, c := range children {
		rec.Children = append(rec.Children, c.freeze(base))
	}
	return rec
}

// offer inserts a finished root span into the slowest ring if it qualifies.
func (t *Tracer) offer(root *Span) {
	rec := TraceRecord{
		Op:         root.name,
		Start:      root.start,
		DurationMs: float64(root.durationNs.Load()) / float64(time.Millisecond),
		Root:       root.freeze(root.start),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slowest) >= t.capacity && rec.DurationMs <= t.slowest[len(t.slowest)-1].DurationMs {
		return
	}
	// Insert in descending-duration order, then clip to capacity.
	i := 0
	for i < len(t.slowest) && t.slowest[i].DurationMs >= rec.DurationMs {
		i++
	}
	t.slowest = append(t.slowest, TraceRecord{})
	copy(t.slowest[i+1:], t.slowest[i:])
	t.slowest[i] = rec
	if len(t.slowest) > t.capacity {
		t.slowest = t.slowest[:t.capacity]
	}
	t.kept.Add(1)
}

// Slowest returns the retained traces, slowest first. Safe on nil (returns
// an empty slice).
func (t *Tracer) Slowest() []TraceRecord {
	if t == nil {
		return []TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceRecord(nil), t.slowest...)
}

// Started returns the number of traces started (nil-safe).
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Capacity returns the ring capacity (nil-safe).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// spanKey keys the context value carrying the current parent span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the current parent span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current parent span, or nil when the context
// carries none — the nil span no-ops, so callers use the result directly.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
