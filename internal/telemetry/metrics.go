// Package telemetry is elpcd's dependency-free observability layer: a
// metrics registry of atomic counters, callback gauges, and fixed-bucket
// latency histograms with Prometheus text exposition (GET /metrics), plus a
// lightweight span tracer that retains the N slowest request traces in a
// ring buffer (GET /v1/traces).
//
// The package is a leaf — it imports only the standard library — so every
// layer of the system (service, fleet, churn, core) can record into it
// without cycles. Instrumented packages record into the process-global
// Default registry; subsystem-scoped gauges (the installed fleet's
// utilization, the solver's cache occupancy) are registered as callbacks
// that read live state at scrape time.
//
// Series names follow the Prometheus data model: a metric family name,
// optionally followed by a brace-wrapped label list, e.g.
//
//	reg.Counter(`elpc_http_requests_total{route="/v1/mindelay",code="2xx"}`, "...")
//
// Identical names return the identical metric (get-or-create), so hot paths
// may look series up per call or cache the returned handle — both are safe
// for concurrent use.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// atomicFloat is a float64 updated with CAS (histogram sums see low
// contention; the loop almost always succeeds first try).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefLatencyBuckets is the default histogram bucket layout for latencies in
// seconds: 100µs to 10s, roughly logarithmic — wide enough for a cache hit
// (~100µs, first bucket) and a cold Suite20 Pareto sweep (tens of ms) on the
// same scale.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations (latencies
// in seconds, by convention). Observations are lock-free atomic increments;
// quantiles are estimated from the bucket counts by linear interpolation
// within the winning bucket. The zero value is unusable; obtain histograms
// from a Registry.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if n := h.total.Load(); n > 0 {
		return h.sum.load() / float64(n)
	}
	return 0
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// the observation rank is located in its bucket and interpolated linearly
// between the bucket's bounds. Returns 0 with no observations; ranks landing
// in the overflow (+Inf) bucket return the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, u := range h.upper {
		n := float64(h.counts[i].Load())
		if seen+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			return lo + (u-lo)*((rank-seen)/n)
		}
		seen += n
	}
	return h.upper[len(h.upper)-1]
}

// snapshot returns the cumulative bucket counts, total, and sum as one
// consistent-enough view (scrapes race with observations; Prometheus
// tolerates that, and cumulative counts are rebuilt from one pass).
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.upper)+1)
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, h.sum.load()
}

// metric is anything the registry can expose.
type metric interface {
	// writeExposition renders the metric's series lines (not HELP/TYPE).
	writeExposition(w io.Writer, name string) error
	// typeName is the Prometheus TYPE: counter, gauge, or histogram.
	typeName() string
}

func (c *Counter) writeExposition(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}
func (c *Counter) typeName() string { return "counter" }

// funcMetric is a callback-backed series: the function is invoked at scrape
// time, so the series always reflects live state. kind selects the TYPE
// ("gauge" for point-in-time values, "counter" for callbacks that read a
// monotonic source).
type funcMetric struct {
	kind string
	mu   sync.RWMutex
	fn   func() float64
}

func (g *funcMetric) writeExposition(w io.Writer, name string) error {
	g.mu.RLock()
	v := g.fn()
	g.mu.RUnlock()
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	return err
}
func (g *funcMetric) typeName() string { return g.kind }

func (h *Histogram) writeExposition(w io.Writer, name string) error {
	family, labels := splitName(name)
	cum, total, sum := h.snapshot()
	for i, u := range h.upper {
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
			family, labelPrefix(labels), formatFloat(u), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labelPrefix(labels), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, braced(labels), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, braced(labels), total)
	return err
}
func (h *Histogram) typeName() string { return "histogram" }

// formatFloat renders v the shortest way that round-trips.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitName separates `family{a="b"}` into family and the inner label list
// (`a="b"`, no braces; empty for bare names).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// labelPrefix renders labels for splicing before an `le` label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced re-wraps a non-empty label list.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric // full series name -> metric
	help    map[string]string // family -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		help:    make(map[string]string),
	}
}

// defaultRegistry is the process-global registry every instrumented package
// records into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry (what elpcd serves at
// /metrics).
func Default() *Registry { return defaultRegistry }

// validName reports whether name is a plausible series name: a Prometheus
// metric identifier, optionally followed by a {label="value",...} list.
func validName(name string) bool {
	family, labels := splitName(name)
	if family == "" || !validIdent(family) {
		return false
	}
	if strings.IndexByte(name, '{') >= 0 && !strings.HasSuffix(name, "}") {
		return false
	}
	if labels == "" {
		return strings.IndexByte(name, '{') < 0
	}
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validIdent(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return false
		}
	}
	return true
}

// splitLabels splits `a="b",c="d"` on commas outside quotes.
func splitLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

// validIdent reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validIdent(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// register get-or-creates the named metric; mismatched types for an existing
// name panic (a wiring bug, not a runtime condition).
func (r *Registry) register(name, help string, build func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid series name %q", name))
	}
	family, _ := splitName(name)
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.metrics[name]; ok {
		return m
	}
	m = build()
	r.metrics[name] = m
	if help != "" {
		r.help[family] = help
	}
	return m
}

// Counter get-or-creates a counter series. name may carry labels
// (`family{a="b"}`); help documents the family (first non-empty help wins).
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.typeName()))
	}
	return c
}

// Histogram get-or-creates a histogram series with the given ascending
// bucket upper bounds (nil selects DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, help, func() metric {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		upper := append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(upper) {
			panic(fmt.Sprintf("telemetry: %q buckets not ascending", name))
		}
		return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.typeName()))
	}
	return h
}

// GaugeFunc registers fn as a gauge series evaluated at scrape time.
// Re-registering an existing name replaces its callback — the semantics a
// process needs when the instance behind a gauge (the installed fleet, a
// rebuilt server) is replaced.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.funcSeries(name, help, "gauge", fn)
}

// CounterFunc registers fn as a counter-typed series evaluated at scrape
// time; use it to expose an existing monotonic counter (an atomic another
// subsystem already maintains) without double counting. Re-registering
// replaces the callback, like GaugeFunc.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.funcSeries(name, help, "counter", fn)
}

func (r *Registry) funcSeries(name, help, kind string, fn func() float64) {
	m := r.register(name, help, func() metric { return &funcMetric{kind: kind, fn: fn} })
	g, ok := m.(*funcMetric)
	if !ok || g.kind != kind {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.typeName()))
	}
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each preceded
// by its HELP (when set) and TYPE comments, series sorted within the family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	byName := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		byName[name] = m
	}
	help := make(map[string]string, len(r.help))
	for f, h := range r.help {
		help[f] = h
	}
	r.mu.RUnlock()

	// Sort by (family, series) so one family's series are contiguous.
	sort.Slice(names, func(i, j int) bool {
		fi, _ := splitName(names[i])
		fj, _ := splitName(names[j])
		if fi != fj {
			return fi < fj
		}
		return names[i] < names[j]
	})
	lastFamily := ""
	for _, name := range names {
		family, _ := splitName(name)
		m := byName[name]
		if family != lastFamily {
			if h := help[family]; h != "" {
				esc := strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(h)
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, esc); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.typeName()); err != nil {
				return err
			}
			lastFamily = family
		}
		if err := m.writeExposition(w, name); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSummary is the compact JSON rendering of one histogram series:
// count, mean, and interpolated tail quantiles, in the histogram's own unit
// (seconds for latency series).
type HistogramSummary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summaries returns one HistogramSummary per histogram series with at least
// one observation, sorted by name — the payload behind pipebench -json's
// telemetry block and the shutdown flush log.
func (r *Registry) Summaries() []HistogramSummary {
	r.mu.RLock()
	hists := make(map[string]*Histogram)
	for name, m := range r.metrics {
		if h, ok := m.(*Histogram); ok {
			hists[name] = h
		}
	}
	r.mu.RUnlock()
	out := make([]HistogramSummary, 0, len(hists))
	for name, h := range hists {
		if h.Count() == 0 {
			continue
		}
		out = append(out, HistogramSummary{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
