package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	// Get-or-create returns the same counter.
	if again := r.Counter("test_total", ""); again != c {
		t.Fatal("second Counter() returned a different instance")
	}
	// Labeled series are distinct.
	c2 := r.Counter(`test_total{op="x"}`, "")
	if c2 == c {
		t.Fatal("labeled series must be a distinct metric")
	}
}

// TestHistogramBucketBoundaries pins the le-semantics at exact boundaries:
// an observation equal to a bucket's upper bound lands in that bucket, one
// epsilon above lands in the next, and values beyond the last bound land in
// the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	h.Observe(1)   // bucket le=1
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2 (boundary is inclusive)
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf overflow
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if got, want := h.Sum(), 1+1.5+2+4+4.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
	if got, want := h.Mean(), (1+1.5+2+4+4.1)/5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean() = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram Quantile = %g, want 0", got)
	}
	// 100 observations uniform in (0, 1]: every quantile interpolates inside
	// the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); got < 0.4 || got > 0.6 {
		t.Errorf("p50 = %g, want ~0.5", got)
	}
	if got := h.Quantile(0.99); got < 0.9 || got > 1.0 {
		t.Errorf("p99 = %g, want ~0.99", got)
	}
	// An overflow-bucket rank reports the largest finite bound.
	h2 := r.Histogram("q2_seconds", "", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2 (largest finite bound)", got)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines;
// run under -race this is the registry's concurrency test, and the final
// count/sum must be exact.
func TestHistogramConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", nil)
	c := r.Counter("conc_total", "")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.001 * float64(g+1))
				c.Inc()
			}
		}(g)
	}
	// Concurrent scrapes must not race with observations.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count() = %d, want %d", got, goroutines*perG)
	}
	var wantSum float64
	for g := 1; g <= goroutines; g++ {
		wantSum += 0.001 * float64(g) * perG
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("Sum() = %g, want %g", got, wantSum)
	}
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("g", "", func() float64 { return v })
	r.GaugeFunc("g", "", func() float64 { return 42 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "g 42\n") {
		t.Fatalf("replaced gauge not in exposition:\n%s", sb.String())
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram on a counter name did not panic")
		}
	}()
	r.Histogram("clash", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a b", `x{op=}`, `x{op="y"`, `x{="y"}`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestExpositionFormat parses WritePrometheus output line by line with the
// same validator shape the CI scrape gate uses.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`http_requests_total{route="/v1/mindelay",code="2xx"}`, "requests by class").Add(7)
	r.Counter(`http_requests_total{route="/v1/front",code="5xx"}`, "").Inc()
	r.GaugeFunc("cache_entries", "entries resident", func() float64 { return 12 })
	h := r.Histogram(`request_seconds{route="/v1/mindelay"}`, "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	series := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("series line without value: %q", line)
			continue
		}
		name, value := line[:i], line[i+1:]
		if value != "+Inf" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("series %q has unparseable value %q", name, value)
			}
		}
		series++
	}
	// 2 counters + 1 gauge + histogram (3 buckets + +Inf + sum + count).
	if series != 2+1+6 {
		t.Errorf("got %d series lines, want 9:\n%s", series, out)
	}
	for _, want := range []string{
		`http_requests_total{route="/v1/mindelay",code="2xx"} 7`,
		"# TYPE http_requests_total counter",
		"# HELP http_requests_total requests by class",
		"cache_entries 12",
		`request_seconds_bucket{route="/v1/mindelay",le="0.01"} 1`,
		`request_seconds_bucket{route="/v1/mindelay",le="+Inf"} 3`,
		`request_seconds_count{route="/v1/mindelay"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSummaries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "", nil) // no observations: excluded
	h := r.Histogram("busy_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := r.Summaries()
	if len(s) != 1 {
		t.Fatalf("got %d summaries, want 1 (empty histograms excluded)", len(s))
	}
	if s[0].Name != "busy_seconds" || s[0].Count != 100 {
		t.Fatalf("summary = %+v", s[0])
	}
	if s[0].P99 < 1 || s[0].P99 > 2 {
		t.Errorf("p99 = %g, want within (1, 2]", s[0].P99)
	}
}

func TestTracerRetainsSlowest(t *testing.T) {
	tr := NewTracer(2)
	finish := func(op string, d time.Duration) {
		trace := tr.Start(op)
		sp := trace.Root().Child("phase")
		time.Sleep(d)
		sp.End()
		trace.Finish()
	}
	finish("fast", 1*time.Millisecond)
	finish("slow", 30*time.Millisecond)
	finish("medium", 10*time.Millisecond)
	finish("tiny", 0) // must not displace anything

	got := tr.Slowest()
	if len(got) != 2 {
		t.Fatalf("retained %d traces, want 2", len(got))
	}
	if got[0].Op != "slow" || got[1].Op != "medium" {
		t.Fatalf("retained ops = %s, %s; want slow, medium", got[0].Op, got[1].Op)
	}
	if got[0].DurationMs < got[1].DurationMs {
		t.Fatal("traces not sorted slowest-first")
	}
	if len(got[0].Root.Children) != 1 || got[0].Root.Children[0].Name != "phase" {
		t.Fatalf("child span tree not retained: %+v", got[0].Root)
	}
	if tr.Started() != 4 {
		t.Fatalf("Started() = %d, want 4", tr.Started())
	}
}

// TestTracerNilSafety proves the disabled-tracing path never branches: every
// method on nil tracers, traces, and spans is a no-op.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("x")
	if trace != nil {
		t.Fatal("nil tracer must return a nil trace")
	}
	sp := trace.Root().Child("a").Child("b")
	sp.End()
	sp.Annotate("note")
	sp.Rename("y")
	trace.Finish()
	if got := tr.Slowest(); len(got) != 0 {
		t.Fatalf("nil tracer Slowest() = %v, want empty", got)
	}
	if tr.Started() != 0 || tr.Capacity() != 0 {
		t.Fatal("nil tracer counters must be zero")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				trace := tr.Start(fmt.Sprintf("op-%d", g))
				var inner sync.WaitGroup
				for c := 0; c < 3; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						sp := trace.Root().Child(fmt.Sprintf("child-%d", c))
						sp.End()
					}(c)
				}
				inner.Wait()
				trace.Finish()
				tr.Slowest()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Slowest()); got != 8 {
		t.Fatalf("retained %d, want capacity 8", got)
	}
}

func TestContextSpan(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.Start("req")
	ctx := ContextWithSpan(t.Context(), trace.Root())
	if got := SpanFromContext(ctx); got != trace.Root() {
		t.Fatal("SpanFromContext did not round-trip")
	}
	if got := SpanFromContext(t.Context()); got != nil {
		t.Fatal("bare context must yield a nil span")
	}
}
