package graph

import "sort"

// This file is the region-partitioning substrate behind the sharded fleet
// manager (internal/fleet.ShardedFleet): weakly connected components and a
// deterministic balanced K-way node partition. Like the rest of the package
// it is domain-free; internal/model.PartitionNetwork layers link ownership
// and boundary-set bookkeeping on top.

// Components returns the weakly connected components of the graph (edge
// directions ignored), each a sorted slice of node IDs, ordered by their
// smallest member. An empty graph has no components.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			u := comp[i]
			for _, eid := range g.out[u] {
				if v := g.edges[eid].To; !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
			for _, eid := range g.in[u] {
				if v := g.edges[eid].From; !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// PartitionK splits the nodes into k regions and returns the region index of
// every node (in [0, k)). The partition is deterministic for a given graph:
// k seed nodes are chosen by a farthest-point sweep over undirected hop
// distance (so seeds land in well-separated areas — on a clustered topology
// they land one per cluster), then regions grow around their seeds in
// lockstep. Each turn the currently smallest region claims, among the
// unclaimed nodes adjacent to it, the one with the most undirected edges
// into the region (lowest node ID on ties): growing by attachment strength
// keeps region sizes balanced while following community structure — a dense
// cluster fills up before the few links crossing to the next cluster are
// ever preferred. Every region is connected in the undirected sense
// whenever the graph is; nodes unreachable from every seed (isolated
// components) are appended to the smallest region.
//
// k <= 1 yields the trivial all-zero partition; k >= N() gives every node
// its own region. PartitionK never fails.
func (g *Graph) PartitionK(k int) []int {
	part := make([]int, g.n)
	if k <= 1 || g.n == 0 {
		return part
	}
	if k >= g.n {
		for v := range part {
			part[v] = v
		}
		return part
	}

	// Lloyd-style iteration: grow regions around the seeds, move each seed
	// to its region's medoid, regrow — farthest-point seeds can land
	// off-center (near a boundary, or two in one community), and one or two
	// reseeding rounds pull them into the community cores.
	seeds := g.farthestPointSeeds(k)
	var sizes []int
	for iter := 0; iter < 4; iter++ {
		part, sizes = g.growRegions(seeds, k)
		next := g.regionMedoids(part, k)
		same := true
		for i := range seeds {
			if next[i] != seeds[i] {
				same = false
				break
			}
		}
		if same {
			break
		}
		seeds = next
	}
	g.refinePartition(part, sizes, k)
	return part
}

// growRegions grows k regions around the seeds by attachment strength:
// each turn the currently smallest region (lowest index on ties) claims,
// among the unclaimed nodes adjacent to it, the one with the most
// undirected edges into the region (lowest node ID on ties). Nodes in
// components holding no seed are appended to the smallest region.
func (g *Graph) growRegions(seeds []int, k int) (part, sizes []int) {
	part = make([]int, g.n)
	for v := range part {
		part[v] = -1
	}
	// attach[r][v] counts the undirected edges from unclaimed node v into
	// region r — the claim priority. claim moves a node into a region and
	// credits its unclaimed neighbors.
	attach := make([]map[int]int, k)
	sizes = make([]int, k)
	claim := func(r, v int) {
		part[v] = r
		sizes[r]++
		delete(attach[r], v)
		for _, w := range g.undirectedNeighbors(v) {
			if part[w] == -1 {
				attach[r][w]++
			}
		}
	}
	for r, s := range seeds {
		attach[r] = make(map[int]int)
		claim(r, s)
	}
	assigned := len(seeds)
	for assigned < g.n {
		// The smallest region with any adjacent unclaimed node grows next
		// (lowest index on ties).
		r := -1
		for i := range attach {
			if len(attach[i]) == 0 {
				continue
			}
			if r < 0 || sizes[i] < sizes[r] {
				r = i
			}
		}
		if r < 0 {
			break // remaining nodes unreachable from every seed
		}
		best, bestCount := -1, 0
		for v, c := range attach[r] {
			if part[v] != -1 {
				delete(attach[r], v) // claimed by another region meanwhile
				continue
			}
			if c > bestCount || (c == bestCount && (best == -1 || v < best)) {
				best, bestCount = v, c
			}
		}
		if best == -1 {
			continue // frontier was entirely stale; re-pick a region
		}
		claim(r, best)
		assigned++
	}
	// Nodes in components that hold no seed: append each to the currently
	// smallest region so no node is left unassigned.
	for v := range part {
		if part[v] == -1 {
			r := 0
			for i := 1; i < k; i++ {
				if sizes[i] < sizes[r] {
					r = i
				}
			}
			part[v] = r
			sizes[r]++
		}
	}
	return part, sizes
}

// regionMedoids returns, per region, the member minimizing its eccentricity
// within the region-induced undirected subgraph (lowest node ID on ties;
// unreachable members count as infinitely far, so medoids sit in the
// region's main component).
func (g *Graph) regionMedoids(part []int, k int) []int {
	medoids := make([]int, k)
	for r := 0; r < k; r++ {
		var members []int
		for v, p := range part {
			if p == r {
				members = append(members, v)
			}
		}
		best, bestEcc := members[0], g.n+1
		for _, s := range members {
			// BFS from s inside the region.
			dist := map[int]int{s: 0}
			queue := []int{s}
			ecc := 0
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, w := range g.undirectedNeighbors(u) {
					if part[w] != r {
						continue
					}
					if _, ok := dist[w]; !ok {
						dist[w] = dist[u] + 1
						if dist[w] > ecc {
							ecc = dist[w]
						}
						queue = append(queue, w)
					}
				}
			}
			if len(dist) < len(members) {
				ecc = g.n // disconnected region: prefer the main component
			}
			if ecc < bestEcc {
				best, bestEcc = s, ecc
			}
		}
		medoids[r] = best
	}
	return medoids
}

// refinePartition is a deterministic boundary-refinement sweep
// (Kernighan–Lin flavored): a node with strictly more undirected edges into
// a neighboring region than into its own moves there, provided the move
// keeps both regions within balance bounds and does not disconnect the
// region it leaves. Growth by attachment can misplace a handful of nodes
// when seeds land off-center; a few sweeps snap the regions onto the
// graph's community structure.
func (g *Graph) refinePartition(part, sizes []int, k int) {
	// Balance bounds around the ideal region size.
	ideal := g.n / k
	maxSize := ideal + ideal/2 + 1
	minSize := ideal / 2
	if minSize < 1 {
		minSize = 1
	}
	counts := make([]int, k)
	for sweep := 0; sweep < 8; sweep++ {
		moved := false
		for v := 0; v < g.n; v++ {
			a := part[v]
			if sizes[a] <= minSize {
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, w := range g.undirectedNeighbors(v) {
				counts[part[w]]++
			}
			b, best := a, counts[a]
			for r := 0; r < k; r++ {
				if r != a && counts[r] > best && sizes[r] < maxSize {
					b, best = r, counts[r]
				}
			}
			if b == a || !g.removableFrom(part, v, a) {
				continue
			}
			part[v] = b
			sizes[a]--
			sizes[b]++
			moved = true
		}
		if !moved {
			break
		}
	}
}

// removableFrom reports whether region r stays connected (in the undirected
// sense) after node v leaves it.
func (g *Graph) removableFrom(part []int, v, r int) bool {
	start := -1
	members := 0
	for u := 0; u < g.n; u++ {
		if u != v && part[u] == r {
			members++
			if start == -1 {
				start = u
			}
		}
	}
	if members <= 1 {
		return true
	}
	seen := make(map[int]bool, members)
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.undirectedNeighbors(u) {
			if w != v && part[w] == r && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == members
}

// farthestPointSeeds picks k well-separated seed nodes: the first is node 0;
// each next seed is the node maximizing undirected hop distance to the seeds
// chosen so far (lowest index on ties), the classic farthest-point
// clustering heuristic.
func (g *Graph) farthestPointSeeds(k int) []int {
	const unreached = int(^uint(0) >> 1) // max int
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = unreached
	}
	seeds := make([]int, 0, k)
	next := 0
	for len(seeds) < k {
		seeds = append(seeds, next)
		// Relax distances from the new seed (undirected BFS).
		dist[next] = 0
		queue := []int{next}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.undirectedNeighbors(u) {
				if dist[u]+1 < dist[v] {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		// The next seed is the node farthest from every seed so far,
		// preferring never-reached nodes (isolated components).
		next = -1
		best := -1
		for v := 0; v < g.n; v++ {
			if dist[v] > best {
				best = dist[v]
				next = v
			}
		}
		if next == -1 || best == 0 {
			break // every node is already a seed's immediate vicinity
		}
	}
	return seeds
}

// undirectedNeighbors returns the neighbors of u ignoring edge direction, in
// deterministic (out-edge then in-edge insertion) order, possibly with
// duplicates when both directions of a link exist; callers tolerate them.
func (g *Graph) undirectedNeighbors(u int) []int {
	out := make([]int, 0, len(g.out[u])+len(g.in[u]))
	for _, eid := range g.out[u] {
		out = append(out, g.edges[eid].To)
	}
	for _, eid := range g.in[u] {
		out = append(out, g.edges[eid].From)
	}
	return out
}
