package graph

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id, err := g.AddEdge(0, 1)
	if err != nil || id != 0 {
		t.Fatalf("AddEdge = (%d, %v)", id, err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge direction wrong")
	}
	if e := g.Edge(0); e.From != 0 || e.To != 1 {
		t.Errorf("Edge(0) = %+v", e)
	}
	if id, ok := g.EdgeID(0, 1); !ok || id != 0 {
		t.Errorf("EdgeID = (%d,%v)", id, ok)
	}
	if _, ok := g.EdgeID(2, 0); ok {
		t.Error("EdgeID for missing edge should be false")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop should error")
	}
	if _, err := g.AddEdge(0, 2); err == nil {
		t.Error("out-of-range should error")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node should error")
	}
	g.MustAddEdge(0, 1)
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate should error")
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge should panic on error")
		}
	}()
	New(1).MustAddEdge(0, 0)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(3, 0)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if len(g.OutEdges(0)) != 2 || len(g.InEdges(1)) != 1 {
		t.Error("adjacency slices wrong")
	}
}

func TestCloneAndReverse(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	c := g.Clone()
	c.MustAddEdge(2, 0)
	if g.M() != 2 || c.M() != 3 {
		t.Error("Clone should be independent")
	}
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Error("Reverse edges wrong")
	}
}

func TestHopsFromTo(t *testing.T) {
	// 0 -> 1 -> 2, plus 0 -> 2 direct; node 3 isolated.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	from := g.HopsFrom(0)
	want := []int{0, 1, 1, Unreachable}
	for i := range want {
		if from[i] != want[i] {
			t.Errorf("HopsFrom[%d] = %d, want %d", i, from[i], want[i])
		}
	}
	to := g.HopsTo(2)
	wantTo := []int{1, 1, 0, Unreachable}
	for i := range wantTo {
		if to[i] != wantTo[i] {
			t.Errorf("HopsTo[%d] = %d, want %d", i, to[i], wantTo[i])
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	if !Ring(5).StronglyConnected() {
		t.Error("ring should be strongly connected")
	}
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if g.StronglyConnected() {
		t.Error("one-way chain is not strongly connected")
	}
	if !New(0).StronglyConnected() {
		t.Error("empty graph should be trivially strongly connected")
	}
}

func TestDijkstraKnown(t *testing.T) {
	//      1
	//  0 -----> 1
	//  |        |
	//  4        1
	//  v        v
	//  2 -----> 3
	//      1
	g := New(4)
	e01 := g.MustAddEdge(0, 1)
	e02 := g.MustAddEdge(0, 2)
	e13 := g.MustAddEdge(1, 3)
	e23 := g.MustAddEdge(2, 3)
	w := map[int]float64{e01: 1, e02: 4, e13: 1, e23: 1}
	dist, prev := g.Dijkstra(0, func(id int) float64 { return w[id] })
	wantDist := []float64{0, 1, 4, 2}
	for i := range wantDist {
		if dist[i] != wantDist[i] {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], wantDist[i])
		}
	}
	path := g.PathTo(0, 3, prev)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 3 {
		t.Errorf("path = %v, want [0 1 3]", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(2)
	dist, prev := g.Dijkstra(0, func(int) float64 { return 1 })
	if !math.IsInf(dist[1], 1) {
		t.Error("unreachable node should have +Inf distance")
	}
	if g.PathTo(0, 1, prev) != nil {
		t.Error("PathTo unreachable should be nil")
	}
	if p := g.PathTo(0, 0, prev); len(p) != 1 || p[0] != 0 {
		t.Errorf("PathTo self = %v", p)
	}
}

func TestWidestPathKnown(t *testing.T) {
	// 0->1 cap 10, 1->3 cap 5, 0->2 cap 3, 2->3 cap 100. Widest 0->3 is 5.
	g := New(4)
	caps := map[int]float64{
		g.MustAddEdge(0, 1): 10,
		g.MustAddEdge(1, 3): 5,
		g.MustAddEdge(0, 2): 3,
		g.MustAddEdge(2, 3): 100,
	}
	width, prev := g.WidestPath(0, func(id int) float64 { return caps[id] })
	if width[3] != 5 {
		t.Errorf("width[3] = %v, want 5", width[3])
	}
	path := g.PathTo(0, 3, prev)
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("widest path = %v, want through node 1", path)
	}
	if !math.IsInf(width[0], 1) {
		t.Error("source width should be +Inf")
	}
}

func TestSimplePathsTriangle(t *testing.T) {
	// Complete directed triangle: paths 0->2 with exactly 2 hops: 0->1->2.
	g := Complete(3)
	var got [][]int
	g.SimplePaths(0, 2, 2, 0, func(p []int) bool {
		got = append(got, append([]int(nil), p...))
		return true
	})
	if len(got) != 1 || got[0][1] != 1 {
		t.Errorf("paths = %v, want [[0 1 2]]", got)
	}
	// 1 hop: direct edge.
	count := 0
	g.SimplePaths(0, 2, 1, 0, func(p []int) bool { count++; return true })
	if count != 1 {
		t.Errorf("1-hop paths = %d, want 1", count)
	}
	// 0 hops from 0 to 0.
	count = 0
	g.SimplePaths(0, 0, 0, 0, func(p []int) bool { count++; return true })
	if count != 1 {
		t.Errorf("0-hop self paths = %d, want 1", count)
	}
}

func TestSimplePathsCountComplete(t *testing.T) {
	// In K5, simple paths 0->4 with exactly h hops pass through h-1 distinct
	// intermediates drawn from {1,2,3}: count = P(3, h-1).
	g := Complete(5)
	want := map[int]int{1: 1, 2: 3, 3: 6, 4: 6}
	for hops, expect := range want {
		count := 0
		g.SimplePaths(0, 4, hops, 0, func([]int) bool { count++; return true })
		if count != expect {
			t.Errorf("K5 %d-hop paths = %d, want %d", hops, count, expect)
		}
	}
}

func TestSimplePathsEarlyStopAndLimit(t *testing.T) {
	g := Complete(5)
	count := 0
	g.SimplePaths(0, 4, 3, 0, func([]int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop count = %d, want 2", count)
	}
	count = 0
	g.SimplePaths(0, 4, 3, 4, func([]int) bool { count++; return true })
	if count != 4 {
		t.Errorf("maxPaths count = %d, want 4", count)
	}
}

func TestSimplePathsDegenerate(t *testing.T) {
	g := Complete(3)
	count := 0
	g.SimplePaths(0, 2, -1, 0, func([]int) bool { count++; return true })
	g.SimplePaths(0, 2, 10, 0, func([]int) bool { count++; return true }) // longer than any simple path
	g.SimplePaths(0, 0, 0, 0, func([]int) bool { count++; return true })
	if count != 1 {
		t.Errorf("degenerate enumeration count = %d, want 1", count)
	}
}

func TestExactHopShortest(t *testing.T) {
	// Line 0-1-2 bidirectional, unit weights. Exactly 2 hops from 0:
	// back to 0 (0-1-0) cost 2, or to 2 (0-1-2) cost 2; node 1 unreachable
	// in exactly 2 hops... actually 0-1 then 1-0 then? h=2 ends at 0 or 2.
	g := Line(3)
	d := g.ExactHopShortest(0, 3, func(int) float64 { return 1 })
	if d[0][0] != 0 || !math.IsInf(d[0][1], 1) {
		t.Error("h=0 layer wrong")
	}
	if d[1][1] != 1 || !math.IsInf(d[1][2], 1) {
		t.Error("h=1 layer wrong")
	}
	if d[2][0] != 2 || d[2][2] != 2 || !math.IsInf(d[2][1], 1) {
		t.Errorf("h=2 layer wrong: %v", d[2])
	}
	if d[3][1] != 3 {
		t.Errorf("h=3 to node 1 = %v, want 3", d[3][1])
	}
}

func TestExactHopWidest(t *testing.T) {
	g := New(3)
	caps := map[int]float64{
		g.MustAddEdge(0, 1): 7,
		g.MustAddEdge(1, 2): 3,
		g.MustAddEdge(0, 2): 2,
	}
	w := g.ExactHopWidest(0, 2, func(id int) float64 { return caps[id] })
	if !math.IsInf(w[0][0], 1) {
		t.Error("h=0 src width should be +Inf")
	}
	if w[1][2] != 2 || w[1][1] != 7 {
		t.Errorf("h=1 widths wrong: %v", w[1])
	}
	if w[2][2] != 3 {
		t.Errorf("h=2 width to 2 = %v, want 3", w[2][2])
	}
}

func TestLongestSimplePathLen(t *testing.T) {
	g := Line(4) // longest simple path 0..3 has 4 nodes
	if got := g.LongestSimplePathLen(0, 3, 0); got != 4 {
		t.Errorf("line longest = %d, want 4", got)
	}
	if got := Complete(4).LongestSimplePathLen(0, 3, 0); got != 4 {
		t.Errorf("K4 longest = %d, want 4 (Hamiltonian)", got)
	}
	g2 := New(2) // no edges
	if got := g2.LongestSimplePathLen(0, 1, 0); got != 0 {
		t.Errorf("disconnected longest = %d, want 0", got)
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for _, tc := range []struct{ n, m int }{{2, 2}, {5, 12}, {10, 30}, {25, 200}, {6, 30}} {
		g, err := RandomConnected(tc.n, tc.m, rng)
		if err != nil {
			t.Fatalf("RandomConnected(%d,%d): %v", tc.n, tc.m, err)
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("size mismatch: got (%d,%d) want (%d,%d)", g.N(), g.M(), tc.n, tc.m)
		}
		if !g.StronglyConnected() {
			t.Errorf("RandomConnected(%d,%d) not strongly connected", tc.n, tc.m)
		}
	}
}

func TestRandomConnectedErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := RandomConnected(1, 0, rng); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := RandomConnected(5, 7, rng); err == nil {
		t.Error("m below spanning requirement should error")
	}
	if _, err := RandomConnected(3, 7, rng); err == nil {
		t.Error("m above max should error")
	}
}

func TestRandomConnectedDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	// Request nearly complete graph to exercise the dense endgame.
	n := 8
	m := MaxEdges(n) - 1
	g, err := RandomConnected(n, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != m || !g.StronglyConnected() {
		t.Errorf("dense generation failed: M=%d", g.M())
	}
}

func TestFixtureGenerators(t *testing.T) {
	if g := Complete(4); g.M() != 12 || !g.StronglyConnected() {
		t.Error("Complete(4) wrong")
	}
	if g := Ring(4); g.M() != 8 || !g.StronglyConnected() {
		t.Error("Ring(4) wrong")
	}
	if g := Line(4); g.M() != 6 || !g.StronglyConnected() {
		t.Error("Line(4) wrong")
	}
	if g := Ring(1); g.M() != 0 {
		t.Error("Ring(1) should have no edges")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Has(i) {
			t.Errorf("fresh bitset has %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Errorf("Set(%d) not visible", i)
		}
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	c := b.Clone()
	b.Clear(64)
	if b.Has(64) || !c.Has(64) {
		t.Error("Clear/Clone interaction wrong")
	}
}

func TestWriteDot(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	var sb strings.Builder
	err := g.WriteDot(&sb, DotOptions{
		Name:      "test",
		RankDir:   "LR",
		NodeLabel: func(v int) string { return "node" },
		EdgeLabel: func(id int) string { return "edge" },
		NodeAttrs: func(v int) string { return `shape="box"` },
		EdgeAttrs: func(id int) string { return `color="red"` },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph test", "rankdir=LR", "n0 -> n1", `label="node"`, `label="edge"`, `shape="box"`, `color="red"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := g.WriteDot(&sb2, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "digraph G") {
		t.Error("default graph name missing")
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges and
// match a Bellman-Ford style relaxation fixed point.
func TestQuickDijkstraFixedPoint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 2 + int(seed%10)
		maxM := MaxEdges(n)
		m := 2*(n-1) + rng.IntN(maxM-2*(n-1)+1)
		g, err := RandomConnected(n, m, rng)
		if err != nil {
			return false
		}
		w := make([]float64, g.M())
		for i := range w {
			w[i] = rng.Float64()*10 + 0.01
		}
		wf := func(id int) float64 { return w[id] }
		dist, _ := g.Dijkstra(0, wf)
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			if dist[e.To] > dist[e.From]+w[id]+1e-9 {
				return false // relaxable edge: not a shortest-path fixed point
			}
		}
		// Every non-source node's distance is achieved through some in-edge.
		for v := 0; v < n; v++ {
			if v == 0 {
				continue
			}
			ok := false
			for _, eid := range g.InEdges(v) {
				e := g.Edge(int(eid))
				if math.Abs(dist[e.From]+w[eid]-dist[v]) < 1e-9 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: widest path width equals the best bottleneck over all simple
// paths (verified by enumeration on small graphs).
func TestQuickWidestMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, ^seed))
		n := 2 + int(seed%5) // keep tiny for enumeration
		m := 2 * (n - 1)
		extra := rng.IntN(MaxEdges(n) - m + 1)
		g, err := RandomConnected(n, m+extra, rng)
		if err != nil {
			return false
		}
		caps := make([]float64, g.M())
		for i := range caps {
			caps[i] = rng.Float64()*100 + 1
		}
		cf := func(id int) float64 { return caps[id] }
		width, _ := g.WidestPath(0, cf)
		dst := n - 1
		best := 0.0
		for hops := 1; hops < n; hops++ {
			g.SimplePaths(0, dst, hops, 0, func(p []int) bool {
				w := math.Inf(1)
				for i := 0; i+1 < len(p); i++ {
					id, _ := g.EdgeID(p[i], p[i+1])
					if caps[id] < w {
						w = caps[id]
					}
				}
				if w > best {
					best = w
				}
				return true
			})
		}
		return math.Abs(width[dst]-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: generated graphs have exactly the requested edge count, no
// self-loops, no duplicates, and strong connectivity.
func TestQuickRandomConnectedInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*31))
		n := 2 + int(seed%12)
		lo := 2 * (n - 1)
		m := lo + rng.IntN(MaxEdges(n)-lo+1)
		g, err := RandomConnected(n, m, rng)
		if err != nil || g.M() != m || !g.StronglyConnected() {
			return false
		}
		seen := map[Arc]bool{}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if e.From == e.To || seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
