package graph

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestComponents(t *testing.T) {
	g := New(7)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(4, 3) // direction must not matter
	// 5 and 6 are isolated singletons.
	got := g.Components()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
	if comps := New(0).Components(); len(comps) != 0 {
		t.Fatalf("empty graph components = %v, want none", comps)
	}
}

func TestPartitionKProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.IntN(40)
		m := 2*(n-1) + rng.IntN(n)
		g, err := RandomConnected(n, m, rng)
		if err != nil {
			t.Fatalf("random graph: %v", err)
		}
		for _, k := range []int{1, 2, 3, 5} {
			if k > n {
				continue
			}
			part := g.PartitionK(k)
			if len(part) != n {
				t.Fatalf("partition length %d, want %d", len(part), n)
			}
			sizes := make([]int, k)
			for v, r := range part {
				if r < 0 || r >= k {
					t.Fatalf("node %d in region %d, want [0,%d)", v, r, k)
				}
				sizes[r]++
			}
			for r, s := range sizes {
				if s == 0 {
					t.Fatalf("k=%d: region %d is empty (sizes %v)", k, r, sizes)
				}
			}
			// Deterministic: same graph, same partition.
			if again := g.PartitionK(k); !reflect.DeepEqual(part, again) {
				t.Fatalf("k=%d: partition not deterministic", k)
			}
		}
		// k=1 is the all-zero partition.
		for v, r := range g.PartitionK(1) {
			if r != 0 {
				t.Fatalf("k=1: node %d in region %d", v, r)
			}
		}
		// k>=n gives every node its own region.
		for v, r := range g.PartitionK(n) {
			if r != v {
				t.Fatalf("k=n: node %d in region %d", v, r)
			}
		}
	}
}

// TestPartitionKBalance checks that lockstep growth keeps regions within a
// small factor of each other on a connected graph.
func TestPartitionKBalance(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	g, err := RandomConnected(60, 200, rng)
	if err != nil {
		t.Fatalf("random graph: %v", err)
	}
	part := g.PartitionK(4)
	sizes := make([]int, 4)
	for _, r := range part {
		sizes[r]++
	}
	for r, s := range sizes {
		if s < 5 || s > 40 {
			t.Fatalf("region %d has %d of 60 nodes (sizes %v); partition badly unbalanced", r, s, sizes)
		}
	}
}

// TestPartitionKRegionsConnected verifies each region is connected in the
// undirected sense (BFS growth can only claim neighbors).
func TestPartitionKRegionsConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	g, err := RandomConnected(40, 120, rng)
	if err != nil {
		t.Fatalf("random graph: %v", err)
	}
	k := 3
	part := g.PartitionK(k)
	for r := 0; r < k; r++ {
		var members []int
		for v, p := range part {
			if p == r {
				members = append(members, v)
			}
		}
		// BFS inside the region from its first member.
		seen := map[int]bool{members[0]: true}
		queue := []int{members[0]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.undirectedNeighbors(u) {
				if part[v] == r && !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		if len(seen) != len(members) {
			t.Fatalf("region %d: %d of %d members reachable inside the region", r, len(seen), len(members))
		}
	}
}

// TestPartitionKDisconnected exercises the seed-less component path: nodes
// unreachable from every seed must still be assigned somewhere.
func TestPartitionKDisconnected(t *testing.T) {
	g := New(9)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 2)
	// 4..8 isolated.
	part := g.PartitionK(3)
	for v, r := range part {
		if r < 0 || r >= 3 {
			t.Fatalf("node %d unassigned or out of range: %d", v, r)
		}
	}
}
