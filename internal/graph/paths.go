package graph

import "math"

// SimplePaths enumerates all simple paths (no repeated node) from src to dst
// with exactly hops edges, invoking visit for each. The slice passed to visit
// is reused between calls; visit must copy it if it retains it. If visit
// returns false the enumeration stops early. maxPaths (<=0 for unlimited)
// bounds the number of paths visited.
//
// The search prunes branches from which dst cannot be reached within the
// remaining hop budget, using a reverse BFS hop distance.
func (g *Graph) SimplePaths(src, dst, hops int, maxPaths int, visit func(path []int) bool) {
	if hops < 0 || src < 0 || dst < 0 || src >= g.n || dst >= g.n {
		return
	}
	if hops == 0 {
		if src == dst {
			visit([]int{src})
		}
		return
	}
	toDst := g.HopsTo(dst)
	if toDst[src] == Unreachable || toDst[src] > hops {
		return
	}
	path := make([]int, 1, hops+1)
	path[0] = src
	visited := NewBitset(g.n)
	visited.Set(src)
	count := 0
	var dfs func(u, remaining int) bool
	dfs = func(u, remaining int) bool {
		if remaining == 0 {
			if u != dst {
				return true
			}
			count++
			if !visit(path) {
				return false
			}
			return maxPaths <= 0 || count < maxPaths
		}
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if visited.Has(v) {
				continue
			}
			// Prune: dst must still be reachable in remaining-1 hops, and a
			// simple path cannot end at dst early (dst == v only allowed at
			// the last hop since revisiting dst is forbidden).
			if toDst[v] == Unreachable || toDst[v] > remaining-1 {
				continue
			}
			if v == dst && remaining != 1 {
				continue
			}
			visited.Set(v)
			path = append(path, v)
			ok := dfs(v, remaining-1)
			path = path[:len(path)-1]
			visited.Clear(v)
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(src, hops)
}

// ExactHopShortest computes, for each hop count h in [0, maxHops] and node v,
// the minimum total weight of a walk from src to v using exactly h edges
// (nodes may repeat — this is the walk relaxation of the NP-complete exact-
// hop simple path problem discussed in the paper's Section 3.1.2). The result
// is indexed [h][v]; unreachable combinations hold math.Inf(1).
func (g *Graph) ExactHopShortest(src, maxHops int, w WeightFunc) [][]float64 {
	dist := make([][]float64, maxHops+1)
	for h := range dist {
		dist[h] = make([]float64, g.n)
		for v := range dist[h] {
			dist[h][v] = math.Inf(1)
		}
	}
	dist[0][src] = 0
	for h := 1; h <= maxHops; h++ {
		prev := dist[h-1]
		cur := dist[h]
		for eid, e := range g.edges {
			if math.IsInf(prev[e.From], 1) {
				continue
			}
			if d := prev[e.From] + w(eid); d < cur[e.To] {
				cur[e.To] = d
			}
		}
	}
	return dist
}

// ExactHopWidest computes, for each hop count h in [0, maxHops] and node v,
// the maximum over exactly-h-edge walks from src to v of the minimum edge
// capacity along the walk. The result is indexed [h][v]; src at h=0 has
// +Inf width and unreachable combinations hold 0.
func (g *Graph) ExactHopWidest(src, maxHops int, capf WeightFunc) [][]float64 {
	width := make([][]float64, maxHops+1)
	for h := range width {
		width[h] = make([]float64, g.n)
	}
	width[0][src] = math.Inf(1)
	for h := 1; h <= maxHops; h++ {
		prev := width[h-1]
		cur := width[h]
		for eid, e := range g.edges {
			if prev[e.From] == 0 {
				continue
			}
			if wth := math.Min(prev[e.From], capf(eid)); wth > cur[e.To] {
				cur[e.To] = wth
			}
		}
	}
	return width
}

// LongestSimplePathLen returns the number of nodes on the longest simple path
// from src to dst, found by exhaustive DFS. It is exponential and intended
// for small feasibility analyses only (the harness uses it to detect the
// paper's "pipeline longer than the longest end-to-end path" infeasibility on
// small instances). Returns 0 when no path exists. The search stops early
// when a Hamiltonian path is found. nodeBudget (<=0 for unlimited) caps the
// number of DFS expansions to bound worst-case work; when exceeded, the best
// length found so far is returned.
func (g *Graph) LongestSimplePathLen(src, dst int, nodeBudget int) int {
	toDst := g.HopsTo(dst)
	if src >= g.n || toDst[src] == Unreachable {
		return 0
	}
	best := 0
	visited := NewBitset(g.n)
	visited.Set(src)
	expansions := 0
	var dfs func(u, depth int) bool
	dfs = func(u, depth int) bool {
		expansions++
		if nodeBudget > 0 && expansions > nodeBudget {
			return false
		}
		if u == dst && depth > best {
			best = depth
			if best == g.n {
				return false // Hamiltonian; cannot do better
			}
		}
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if visited.Has(v) || toDst[v] == Unreachable {
				continue
			}
			visited.Set(v)
			ok := dfs(v, depth+1)
			visited.Clear(v)
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(src, 1)
	return best
}
