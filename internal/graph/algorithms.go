package graph

import (
	"container/heap"
	"math"
)

// Unreachable is the hop distance reported for nodes that cannot be reached.
const Unreachable = -1

// HopsFrom returns the minimum hop count from src to every node (BFS).
// Unreachable nodes get Unreachable (-1).
func (g *Graph) HopsFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// HopsTo returns the minimum hop count from every node to dst, following
// edge directions (reverse BFS).
func (g *Graph) HopsTo(dst int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[dst] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, dst)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.in[v] {
			u := g.edges[eid].From
			if dist[u] == Unreachable {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// StronglyConnected reports whether every node is reachable from node 0 and
// node 0 is reachable from every node (i.e., the graph is one strongly
// connected component). An empty graph is trivially strongly connected.
func (g *Graph) StronglyConnected() bool {
	if g.n == 0 {
		return true
	}
	for _, d := range g.HopsFrom(0) {
		if d == Unreachable {
			return false
		}
	}
	for _, d := range g.HopsTo(0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// priority queue for Dijkstra-style searches.
type pqItem struct {
	node int
	prio float64
}

type prioQueue []pqItem

func (q prioQueue) Len() int            { return len(q) }
func (q prioQueue) Less(i, j int) bool  { return q[i].prio < q[j].prio }
func (q prioQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *prioQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *prioQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path distances from src under the
// additive edge weight function w (which must be non-negative). It returns
// the distance slice (math.Inf(1) for unreachable nodes) and a predecessor
// edge slice (-1 where undefined) from which paths can be reconstructed.
func (g *Graph) Dijkstra(src int, w WeightFunc) (dist []float64, prevEdge []int) {
	dist = make([]float64, g.n)
	prevEdge = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	pq := &prioQueue{{node: src, prio: 0}}
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			nd := dist[u] + w(int(eid))
			if nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = int(eid)
				heap.Push(pq, pqItem{node: v, prio: nd})
			}
		}
	}
	return dist, prevEdge
}

// WidestPath computes, for every node, the maximum over paths from src of the
// minimum edge capacity along the path (the classic widest-path / maximum
// bottleneck problem), using a max-priority Dijkstra variant. cap must be
// non-negative. Unreachable nodes get 0 width. It also returns predecessor
// edges for path reconstruction.
func (g *Graph) WidestPath(src int, capf WeightFunc) (width []float64, prevEdge []int) {
	width = make([]float64, g.n)
	prevEdge = make([]int, g.n)
	for i := range prevEdge {
		prevEdge[i] = -1
	}
	width[src] = math.Inf(1)
	// Negate priorities to reuse the min-heap as a max-heap.
	pq := &prioQueue{{node: src, prio: math.Inf(-1)}}
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			nw := math.Min(width[u], capf(int(eid)))
			if nw > width[v] {
				width[v] = nw
				prevEdge[v] = int(eid)
				heap.Push(pq, pqItem{node: v, prio: -nw})
			}
		}
	}
	return width, prevEdge
}

// PathTo reconstructs the node sequence from the search source to dst using
// a predecessor edge slice produced by Dijkstra or WidestPath. It returns nil
// when dst was unreachable (no predecessor and dst differs from src).
func (g *Graph) PathTo(src, dst int, prevEdge []int) []int {
	if src == dst {
		return []int{src}
	}
	if prevEdge[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		rev = append(rev, v)
		e := prevEdge[v]
		if e == -1 {
			return nil
		}
		v = g.edges[e].From
		if len(rev) > g.n { // cycle guard against malformed predecessor data
			return nil
		}
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
