package graph

import (
	"fmt"
	"io"
	"strings"
)

// DotOptions controls DOT rendering of a graph.
type DotOptions struct {
	Name       string                  // graph name; default "G"
	NodeLabel  func(node int) string   // optional node label
	EdgeLabel  func(edgeID int) string // optional edge label
	NodeAttrs  func(node int) string   // extra node attribute string, e.g. `color="red"`
	EdgeAttrs  func(edgeID int) string // extra edge attribute string
	RankDir    string                  // e.g. "LR"
	OmitLabels bool                    // suppress default numeric labels
}

// WriteDot renders g in Graphviz DOT format.
func (g *Graph) WriteDot(w io.Writer, opt DotOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	if opt.RankDir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opt.RankDir)
	}
	for v := 0; v < g.n; v++ {
		attrs := make([]string, 0, 2)
		if opt.NodeLabel != nil {
			attrs = append(attrs, fmt.Sprintf("label=%q", opt.NodeLabel(v)))
		} else if !opt.OmitLabels {
			attrs = append(attrs, fmt.Sprintf("label=%q", fmt.Sprintf("v%d", v)))
		}
		if opt.NodeAttrs != nil {
			if extra := opt.NodeAttrs(v); extra != "" {
				attrs = append(attrs, extra)
			}
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for id, e := range g.edges {
		attrs := make([]string, 0, 2)
		if opt.EdgeLabel != nil {
			attrs = append(attrs, fmt.Sprintf("label=%q", opt.EdgeLabel(id)))
		}
		if opt.EdgeAttrs != nil {
			if extra := opt.EdgeAttrs(id); extra != "" {
				attrs = append(attrs, extra)
			}
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
