package graph

import (
	"fmt"
	"math/rand/v2"
)

// MaxEdges returns the maximum number of directed edges a simple graph on n
// nodes can hold (no self-loops, no parallel edges).
func MaxEdges(n int) int { return n * (n - 1) }

// RandomConnected generates a strongly connected random directed graph with
// n nodes and exactly m edges. The construction first builds a random
// undirected spanning tree and inserts both directions of every tree edge
// (guaranteeing strong connectivity), then adds uniformly random extra
// directed edges until m edges exist.
//
// Requirements: n >= 2, 2*(n-1) <= m <= n*(n-1). Violations return an error.
func RandomConnected(n, m int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: RandomConnected needs n >= 2, got %d", n)
	}
	minM, maxM := 2*(n-1), MaxEdges(n)
	if m < minM || m > maxM {
		return nil, fmt.Errorf("graph: RandomConnected(n=%d) needs m in [%d,%d], got %d", n, minM, maxM, m)
	}
	g := New(n)
	// Random spanning tree via random attachment over a random permutation:
	// node perm[i] (i>0) attaches to a uniformly chosen earlier node. This
	// yields a random recursive tree over a uniform labeling.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[rng.IntN(i)]
		v := perm[i]
		g.MustAddEdge(u, v)
		g.MustAddEdge(v, u)
	}
	// Top up with uniformly random extra edges. Rejection sampling is cheap
	// while the graph is sparse; fall back to explicit enumeration of the
	// complement when it becomes dense to guarantee termination.
	for g.M() < m {
		if remaining := maxM - g.M(); remaining < n { // dense endgame
			free := make([][2]int, 0, remaining)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v && !g.HasEdge(u, v) {
						free = append(free, [2]int{u, v})
					}
				}
			}
			rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
			for _, e := range free[:m-g.M()] {
				g.MustAddEdge(e[0], e[1])
			}
			break
		}
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g, nil
}

// Complete returns the complete directed graph on n nodes (every ordered
// pair except self-loops).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Ring returns a bidirectional ring on n nodes (2n edges), a convenient
// sparse strongly connected fixture.
func Ring(n int) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		g.MustAddEdge(i, j)
		g.MustAddEdge(j, i)
	}
	return g
}

// Line returns a bidirectional path graph 0—1—…—(n-1) with 2(n-1) edges.
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
		g.MustAddEdge(i+1, i)
	}
	return g
}
