// Package graph provides the directed-graph substrate underlying the ELPC
// reproduction: adjacency-list graphs, reachability and shortest/widest path
// algorithms, exact-hop dynamic-programming layers, bounded simple-path
// enumeration, and random connected topology generators.
//
// The package is deliberately domain-free: edges carry no attributes. Domain
// weights (bandwidth, delay) live in internal/model and are supplied to
// algorithms as edge-indexed weight functions.
package graph

import (
	"fmt"
)

// Graph is a simple directed graph (no self-loops, no parallel edges) with
// stable integer node IDs 0..N-1 and edge IDs 0..M-1 in insertion order.
type Graph struct {
	n     int
	out   [][]int32 // node -> out-edge IDs
	in    [][]int32 // node -> in-edge IDs
	edges []Arc
	index map[[2]int32]int32 // (from,to) -> edge ID
}

// Arc is a directed edge.
type Arc struct {
	From, To int
}

// New creates an empty graph with n nodes. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:     n,
		out:   make([][]int32, n),
		in:    make([][]int32, n),
		index: make(map[[2]int32]int32),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the directed edge u→v and returns its edge ID. Adding a
// self-loop or a duplicate edge returns an error.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at node %d", u)
	}
	key := [2]int32{int32(u), int32(v)}
	if _, dup := g.index[key]; dup {
		return -1, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	id := int32(len(g.edges))
	g.edges = append(g.edges, Arc{From: u, To: v})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	g.index[key] = id
	return int(id), nil
}

// MustAddEdge is AddEdge but panics on error; intended for construction of
// fixed test fixtures.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the arc with the given edge ID.
func (g *Graph) Edge(id int) Arc { return g.edges[id] }

// EdgeID returns the ID of edge u→v and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	id, ok := g.index[[2]int32{int32(u), int32(v)}]
	return int(id), ok
}

// HasEdge reports whether the directed edge u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.index[[2]int32{int32(u), int32(v)}]
	return ok
}

// OutEdges returns the IDs of edges leaving v. The returned slice must not be
// modified.
func (g *Graph) OutEdges(v int) []int32 { return g.out[v] }

// InEdges returns the IDs of edges entering v. The returned slice must not be
// modified.
func (g *Graph) InEdges(v int) []int32 { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.MustAddEdge(e.From, e.To)
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped. Edge IDs are
// not preserved.
func (g *Graph) Reverse() *Graph {
	r := New(g.n)
	for _, e := range g.edges {
		r.MustAddEdge(e.To, e.From)
	}
	return r
}

// WeightFunc assigns a non-negative weight to an edge ID.
type WeightFunc func(edgeID int) float64

// Bitset is a fixed-capacity set of small non-negative integers, used to
// track visited nodes on candidate paths without allocation-heavy maps.
type Bitset []uint64

// NewBitset returns a bitset able to hold values in [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Has reports whether i is in the set.
func (b Bitset) Has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Set inserts i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Clone returns a copy of the bitset.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
