package engine_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"elpc/internal/core"
	"elpc/internal/engine"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// frontBytes canonicalizes a front for byte comparison: every float and
// every assignment, via JSON.
func frontBytes(t *testing.T, front []core.TradeoffPoint) []byte {
	t.Helper()
	type pt struct {
		Delay  float64        `json:"delay"`
		Rate   float64        `json:"rate"`
		Assign []model.NodeID `json:"assign"`
	}
	out := make([]pt, len(front))
	for i, p := range front {
		out[i] = pt{Delay: p.DelayMs, Rate: p.RateFPS, Assign: p.Mapping.Assign}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParetoFrontParallelDeterministic: the parallel sweep must be byte-
// identical to the sequential core implementation on every Suite20 case,
// at several pool sizes, run twice (so scheduling nondeterminism would
// show up as run-to-run drift too).
func TestParetoFrontParallelDeterministic(t *testing.T) {
	specs := gen.Suite20()
	if testing.Short() {
		specs = specs[:12]
	}
	pools := []*engine.Pool{engine.NewPool(2), engine.NewPool(4), engine.NewPool(0)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	const points = 8
	checked := 0
	for _, spec := range specs {
		prob, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		seq, seqErr := core.ParetoFront(prob, points, 0)
		for _, pool := range pools {
			for rep := 0; rep < 2; rep++ {
				par, parErr := engine.ParetoFront(pool, prob, points, 0)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("case %d pool=%d: sequential err=%v, parallel err=%v",
						spec.ID, pool.Workers(), seqErr, parErr)
				}
				if seqErr != nil {
					continue
				}
				want, got := frontBytes(t, seq), frontBytes(t, par)
				if !bytes.Equal(want, got) {
					t.Fatalf("case %d pool=%d rep=%d: parallel front differs\nseq: %s\npar: %s",
						spec.ID, pool.Workers(), rep, want, got)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no fronts compared")
	}
}

// TestNilPoolMatchesSequential: engine.ParetoFront with a nil pool is the
// sequential path and must agree with core.ParetoFront exactly.
func TestNilPoolMatchesSequential(t *testing.T) {
	prob, err := gen.Suite20()[7].Build()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.ParetoFront(prob, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.ParetoFront(nil, prob, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frontBytes(t, seq), frontBytes(t, par)) {
		t.Fatal("nil-pool front differs from core.ParetoFront")
	}
}

// TestBatchSolveDeterministic: a /v1/batch-shaped fan-out over the engine
// pool returns results in request order with identical payloads across
// repetitions. Exercised through the service path in
// internal/service/solver_test.go; here we pin the engine-level invariant
// that parallel index placement is stable.
func TestBatchSolveDeterministic(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	specs := gen.Suite20()[:6]
	probs := make([]*model.Problem, len(specs))
	for i, spec := range specs {
		p, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		probs[i] = p
	}
	run := func() [][]byte {
		outs := make([][]byte, len(probs))
		pool.ParallelFor(len(probs), func(i int) {
			front, err := engine.ParetoFront(pool, probs[i], 6, 0)
			if err != nil {
				outs[i] = []byte(err.Error())
				return
			}
			outs[i] = frontBytes(t, front)
		})
		return outs
	}
	first := run()
	second := run()
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("problem %d: repeated parallel batch differs", i)
		}
	}
}
