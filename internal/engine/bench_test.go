package engine_test

import (
	"fmt"
	"runtime"
	"testing"

	"elpc/internal/core"
	"elpc/internal/engine"
	"elpc/internal/gen"
	"elpc/internal/model"
)

// benchFrontCase indexes Suite20: case 11 (35 modules, 90 nodes, 3200
// links) makes each budget point a substantial bicriteria DP, so the sweep
// parallelizes with little overhead.
const benchFrontCase = 11

// benchFrontPoints matches the service's default sweep resolution.
const benchFrontPoints = 8

func buildBenchProblem(b *testing.B) *model.Problem {
	b.Helper()
	p, err := gen.Suite20()[benchFrontCase].Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkParetoFrontSequential is the single-goroutine baseline the
// parallel numbers compare against (core.ParetoFront through the pooled
// SolveContext path).
func BenchmarkParetoFrontSequential(b *testing.B) {
	p := buildBenchProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParetoFront(p, benchFrontPoints, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoFrontParallel sweeps the same case through the engine pool
// at 1, 2, and 4 workers plus full GOMAXPROCS: near-linear scaling up to
// the sweep's point count, byte-identical results throughout (the
// determinism test asserts that; this benchmark measures it).
func BenchmarkParetoFrontParallel(b *testing.B) {
	p := buildBenchProblem(b)
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := engine.NewPool(w)
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.ParetoFront(pool, p, benchFrontPoints, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
