// Package engine is the parallel solve substrate shared by the planning
// service, the fleet manager, and the benchmark harness: a bounded pool of
// helper goroutines that steal iterations from fork-join jobs submitted via
// ParallelFor, plus parallel drivers for the solver sweeps built on it
// (ParetoFront, batch solving).
//
// Two properties make the pool safe to share across subsystems:
//
//   - The submitting goroutine always participates: ParallelFor executes
//     items on the caller even when every helper is busy, so nested jobs
//     (a batch solve whose items each fan out a Pareto sweep) can never
//     deadlock, and fleet re-solves can never starve planning requests of
//     forward progress — helpers only add parallelism.
//   - Work distribution is dynamic: helpers steal the next unclaimed
//     iteration from a shared atomic cursor, so uneven item costs (DP
//     solves vary wildly with the budget) balance automatically, like a
//     work-stealing deque specialized to coarse-grained tasks.
//
// Results are placed by index, so parallel execution is deterministic
// whenever the per-item function is — the engine's Pareto sweep returns
// byte-identical fronts to the sequential core implementation.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded parallel executor. The zero value is not usable; build
// one with NewPool. A nil *Pool is valid everywhere and means "sequential".
type Pool struct {
	// parallelism is the target number of concurrently executing
	// goroutines per job: the caller plus len-1 helpers.
	parallelism int
	jobs        chan *job
	quit        chan struct{}
	closeOnce   sync.Once
}

// job is one ParallelFor invocation: a shared claim cursor, a completion
// count, and the first recovered panic (repanicked on the caller).
type job struct {
	n    int64
	fn   func(int)
	next atomic.Int64 // next unclaimed index
	left atomic.Int64 // items not yet finished
	fin  chan struct{}

	panicMu  sync.Mutex
	panicked bool
	panicVal any
}

// NewPool starts a pool targeting the given parallelism (<= 0 selects
// GOMAXPROCS). A pool of 1 has no helper goroutines: every ParallelFor runs
// inline on its caller, which makes "sequential" a configuration rather
// than a code path.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		parallelism: workers,
		jobs:        make(chan *job, 4*workers),
		quit:        make(chan struct{}),
	}
	for i := 0; i < workers-1; i++ {
		go p.helper()
	}
	return p
}

// Workers returns the pool's target parallelism (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.parallelism
}

// Close stops the helper goroutines. Jobs already submitted still complete
// (their callers execute any unclaimed items). Close is idempotent; using
// the pool after Close degrades to sequential execution, it does not panic.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.quit) })
}

// helper is one pool goroutine: it waits for job announcements and works a
// job until its cursor is exhausted. Announcements can be stale (the job
// may already be drained by its caller); claiming is what settles it.
func (p *Pool) helper() {
	for {
		select {
		case j := <-p.jobs:
			j.work()
		case <-p.quit:
			return
		}
	}
}

// work claims and runs iterations until none remain.
func (j *job) work() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.runOne(int(i))
	}
}

// runOne executes one iteration, capturing the first panic so the caller
// can rethrow it; the completion count is decremented even on panic so the
// job always finishes.
func (j *job) runOne(i int) {
	defer func() {
		if r := recover(); r != nil {
			j.panicMu.Lock()
			if !j.panicked {
				j.panicked = true
				j.panicVal = r
			}
			j.panicMu.Unlock()
		}
		if j.left.Add(-1) == 0 {
			close(j.fin)
		}
	}()
	j.fn(i)
}

// ParallelFor runs fn(i) for every i in [0, n) and returns when all calls
// have finished. The caller executes items itself; idle helpers join in.
// Safe to nest (inner jobs run on whatever goroutine reaches them first)
// and safe on a nil or closed pool (sequential). If any fn panics, the
// first panic is rethrown on the caller after the job drains.
func (p *Pool) ParallelFor(n int, fn func(int)) {
	p.ParallelForN(0, n, fn)
}

// ParallelForN is ParallelFor with the job's parallelism additionally
// capped at width (caller + at most width-1 helpers; width <= 0 means the
// pool's full parallelism). Callers that must honor a client-requested
// concurrency bound narrower than the shared pool use this.
func (p *Pool) ParallelForN(width, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	limit := 0
	if p != nil {
		limit = p.parallelism
	}
	if width > 0 && width < limit {
		limit = width
	}
	if p == nil || limit <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &job{n: int64(n), fn: fn, fin: make(chan struct{})}
	j.left.Store(int64(n))
	// Announce to as many helpers as could usefully join; non-blocking so
	// a full announcement queue (or a closed pool) costs nothing — the
	// caller picks up whatever is not stolen. Each announcement admits at
	// most one helper, so the announcement count is the concurrency cap.
	announce := limit - 1
	if announce > n-1 {
		announce = n - 1
	}
	select {
	case <-p.quit:
		// Closed pool: no helper will ever drain the queue, so enqueueing
		// would pin the job (and everything its closure captures) in the
		// channel buffer for the pool's lifetime.
		announce = 0
	default:
	}
fill:
	for a := 0; a < announce; a++ {
		select {
		case p.jobs <- j:
		default:
			break fill // queue full; the caller covers the rest
		}
	}
	j.work()
	<-j.fin
	if j.panicked {
		panic(j.panicVal)
	}
}
