package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		counts := make([]atomic.Int32, n)
		p.ParallelFor(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, got)
			}
		}
	}
}

func TestParallelForNilAndClosedPool(t *testing.T) {
	var nilPool *Pool
	ran := 0
	nilPool.ParallelFor(5, func(i int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d/5", ran)
	}
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", nilPool.Workers())
	}
	nilPool.Close() // must not panic

	p := NewPool(3)
	p.Close()
	p.Close() // idempotent
	var n atomic.Int32
	p.ParallelFor(10, func(i int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("closed pool ran %d/10", n.Load())
	}
}

func TestParallelForNested(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.ParallelFor(8, func(i int) {
		p.ParallelFor(8, func(j int) {
			total.Add(int64(i*8 + j + 1))
		})
	})
	// Sum of 1..64.
	if got := total.Load(); got != 64*65/2 {
		t.Fatalf("nested total = %d, want %d", got, 64*65/2)
	}
}

func TestParallelForConcurrentJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ParallelFor(50, func(i int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 8*50 {
		t.Fatalf("concurrent jobs ran %d/%d items", total.Load(), 8*50)
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The pool must remain usable after a panicked job.
		var n atomic.Int32
		p.ParallelFor(10, func(i int) { n.Add(1) })
		if n.Load() != 10 {
			t.Fatalf("pool broken after panic: ran %d/10", n.Load())
		}
	}()
	p.ParallelFor(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestParallelForNWidthCap(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	// width=1 must run inline on the caller in index order (no helpers).
	var order []int
	p.ParallelForN(1, 20, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("width=1 executed out of order: %v", order)
		}
	}
	// Larger widths still cover every index exactly once.
	for _, w := range []int{2, 8, 100} {
		counts := make([]atomic.Int32, 50)
		p.ParallelForN(w, 50, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("width=%d: index %d ran %d times", w, i, counts[i].Load())
			}
		}
	}
}

func TestPoolWorkers(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	if p.Workers() != 6 {
		t.Errorf("Workers() = %d, want 6", p.Workers())
	}
	def := NewPool(0)
	defer def.Close()
	if def.Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
}
