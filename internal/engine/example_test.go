package engine_test

import (
	"fmt"

	"elpc/internal/engine"
	"elpc/internal/gen"
)

// ExampleParetoFront sweeps the rate–delay trade-off of a deterministic
// 6-module / 8-node instance over a 4-worker pool. The parallel sweep is
// deterministic: it returns byte-identical fronts to the sequential core
// implementation, so the printed shape never varies with worker count.
func ExampleParetoFront() {
	p, err := gen.Problem(gen.CaseSpec{ID: 1, Modules: 6, Nodes: 8, Links: 30, Seed: 9},
		gen.DefaultRanges(), gen.RNG(9))
	if err != nil {
		panic(err)
	}
	pool := engine.NewPool(4)
	defer pool.Close()

	front, err := engine.ParetoFront(pool, p, 6, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("points: %d\n", len(front))
	for i := 1; i < len(front); i++ {
		if front[i].DelayMs <= front[i-1].DelayMs || front[i].RateFPS <= front[i-1].RateFPS {
			fmt.Println("front is not strictly nondominated")
		}
	}
	best, fastest := front[0], front[len(front)-1]
	fmt.Printf("min delay point: rate x%.2f of max\n", best.RateFPS/fastest.RateFPS)
	fmt.Printf("max rate point: delay x%.2f of min\n", fastest.DelayMs/best.DelayMs)
	// Output:
	// points: 2
	// min delay point: rate x0.90 of max
	// max rate point: delay x1.33 of min
}
