package engine

import (
	"fmt"

	"elpc/internal/core"
	"elpc/internal/model"
)

// ParetoFront is the parallel rate–delay sweep: the budget ladder is
// computed once (one unconstrained solve + one min-delay bound, exactly as
// core.ParetoFront), the per-budget bicriteria solves fan out across the
// pool with results placed by budget index, and the identical nondominated
// filter runs over the raw points in budget order. The returned front is
// byte-identical to core.ParetoFront on the same inputs for any pool size —
// parallelism changes wall-clock time, never the answer.
//
// A nil pool degenerates to the sequential sweep.
func ParetoFront(pool *Pool, p *model.Problem, points, beam int) ([]core.TradeoffPoint, error) {
	budgets, err := core.FrontBudgets(p, points, beam)
	if err != nil {
		return nil, err
	}
	type slot struct {
		pt core.TradeoffPoint
		ok bool
	}
	slots := make([]slot, len(budgets))
	pool.ParallelFor(len(budgets), func(i int) {
		// Each iteration gets its own context from core's shared pool, so
		// the hot path stays allocation-lean without sharing scratch
		// across goroutines (and without warming a second context pool).
		sc := core.AcquireSolveContext()
		defer core.ReleaseSolveContext(sc)
		slots[i].pt, slots[i].ok = sc.FrontPointAt(p, budgets[i], beam)
	})
	raw := make([]core.TradeoffPoint, 0, len(slots))
	for _, s := range slots {
		if s.ok {
			raw = append(raw, s.pt)
		}
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("engine: ParetoFront: every budget infeasible: %w", model.ErrInfeasible)
	}
	return core.FrontFilter(raw), nil
}
