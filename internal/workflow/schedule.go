package workflow

import (
	"math"

	"elpc/internal/model"
)

// Router computes and caches cheapest-route transfer times between nodes
// for given artifact sizes. Routes minimize Σ hops (m/b + d); because the
// minimizing route depends on the artifact size, the cache is keyed by
// (origin, size). Routes also record their hop links so throughput
// evaluation can charge per-link occupancy.
type Router struct {
	net   *model.Network
	cache map[routeKey]routeTable
}

type routeKey struct {
	origin model.NodeID
	bytes  float64
}

type routeTable struct {
	time     []float64 // total transfer time to each node
	prevEdge []int
}

// NewRouter creates a router over the network.
func NewRouter(net *model.Network) *Router {
	return &Router{net: net, cache: make(map[routeKey]routeTable)}
}

func (r *Router) table(origin model.NodeID, bytes float64) routeTable {
	key := routeKey{origin: origin, bytes: bytes}
	if t, ok := r.cache[key]; ok {
		return t
	}
	topo := r.net.Topology()
	dist, prev := topo.Dijkstra(int(origin), func(eid int) float64 {
		return r.net.Links[eid].TransferTime(bytes, true)
	})
	t := routeTable{time: dist, prevEdge: prev}
	r.cache[key] = t
	return t
}

// TransferTime returns the cheapest-route time to move `bytes` from u to v
// (+Inf when unroutable; 0 when u == v).
func (r *Router) TransferTime(u, v model.NodeID, bytes float64) float64 {
	if u == v {
		return 0
	}
	return r.table(u, bytes).time[v]
}

// RouteLinks returns the link IDs along the cheapest route u→v for the
// given size (nil when u == v or unroutable).
func (r *Router) RouteLinks(u, v model.NodeID, bytes float64) []int {
	if u == v {
		return nil
	}
	t := r.table(u, bytes)
	if math.IsInf(t.time[v], 1) {
		return nil
	}
	var rev []int
	topo := r.net.Topology()
	for cur := int(v); cur != int(u); {
		e := t.prevEdge[cur]
		if e < 0 {
			return nil
		}
		rev = append(rev, e)
		cur = topo.Edge(e).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Schedule is the evaluated timeline of a placement.
type Schedule struct {
	Start  []float64 // per task
	Finish []float64
	// Makespan is the exit task's finish time (+Inf when some transfer is
	// unroutable).
	Makespan float64
}

// Evaluate computes the deterministic list schedule of the placement:
// tasks start once all predecessor artifacts have arrived and their node is
// free; each node runs one task at a time, serving tasks in topological
// order (deterministic tie-break). Transfers are routed (multi-hop) and do
// not contend in the delay evaluation, mirroring Eq. 1's treatment of
// transfers in the linear case.
func Evaluate(p *Problem, pl *Placement, router *Router) *Schedule {
	n := p.Flow.N()
	if router == nil {
		router = NewRouter(p.Net)
	}
	start := make([]float64, n)
	finish := make([]float64, n)
	nodeFree := make(map[model.NodeID]float64, n)
	for _, t := range p.Flow.Topo() {
		v := pl.Assign[t]
		est := 0.0
		for _, pr := range p.Flow.Preds(t) {
			arr := finish[pr] + router.TransferTime(pl.Assign[pr], v, p.Flow.Tasks[pr].OutBytes)
			if arr > est {
				est = arr
			}
		}
		s := math.Max(est, nodeFree[v])
		f := s + p.Flow.ComputeTime(t, p.Net.Power(v))
		start[t], finish[t] = s, f
		nodeFree[v] = f
	}
	return &Schedule{Start: start, Finish: finish, Makespan: finish[n-1]}
}

// Period returns the steady-state per-frame period of the placement under
// continuous streaming: the maximum total occupancy over nodes (sum of
// compute of their tasks) and links (sum of bandwidth terms of all routed
// transfers crossing them). This generalizes the linear case's
// SharedBottleneck.
func Period(p *Problem, pl *Placement, router *Router) float64 {
	if router == nil {
		router = NewRouter(p.Net)
	}
	nodeBusy := make(map[model.NodeID]float64)
	linkBusy := make(map[int]float64)
	for t := 0; t < p.Flow.N(); t++ {
		v := pl.Assign[t]
		nodeBusy[v] += p.Flow.ComputeTime(t, p.Net.Power(v))
		out := p.Flow.Tasks[t].OutBytes
		for _, s := range p.Flow.Succs(t) {
			u := pl.Assign[s]
			if u == v {
				continue
			}
			links := router.RouteLinks(v, u, out)
			if links == nil {
				return math.Inf(1)
			}
			for _, eid := range links {
				linkBusy[eid] += p.Net.Links[eid].TransferTime(out, false)
			}
		}
	}
	worst := 0.0
	for _, b := range nodeBusy {
		if b > worst {
			worst = b
		}
	}
	for _, b := range linkBusy {
		if b > worst {
			worst = b
		}
	}
	return worst
}
