package workflow

import (
	"fmt"
	"math"
	"math/rand/v2"

	"elpc/internal/gen"
	"elpc/internal/model"
)

// FromPipeline converts a linear pipeline into an equivalent chain
// workflow, connecting the two problem formulations: module j becomes task
// j with a single dependency on task j-1.
func FromPipeline(pl *model.Pipeline) (*Workflow, error) {
	tasks := make([]Task, pl.N())
	deps := make([][2]int, 0, pl.N()-1)
	for j, m := range pl.Modules {
		tasks[j] = Task{ID: j, Name: m.Name, Complexity: m.Complexity, OutBytes: m.OutBytes}
		if j > 0 {
			deps = append(deps, [2]int{j - 1, j})
		}
	}
	return NewWorkflow(tasks, deps)
}

// RandomDAG generates a layered random workflow: `layers` layers with up to
// `width` tasks each, every task depending on 1..maxFanIn tasks of earlier
// layers, plus a single entry (the data source) and a single exit. Attribute
// ranges follow the linear generator's calibration.
func RandomDAG(layers, width, maxFanIn int, r gen.Ranges, rng *rand.Rand) (*Workflow, error) {
	if layers < 1 || width < 1 || maxFanIn < 1 {
		return nil, fmt.Errorf("workflow: bad DAG shape (%d layers, width %d, fan-in %d)", layers, width, maxFanIn)
	}
	logUniform := func(lo, hi float64) float64 {
		if lo == hi {
			return lo
		}
		return lo * math.Pow(hi/lo, rng.Float64())
	}
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	var tasks []Task
	var deps [][2]int
	tasks = append(tasks, Task{ID: 0, Name: "source", OutBytes: logUniform(r.BytesMin, r.BytesMax)})
	prevLayer := []int{0}
	for l := 0; l < layers; l++ {
		w := 1 + rng.IntN(width)
		var layer []int
		for i := 0; i < w; i++ {
			id := len(tasks)
			tasks = append(tasks, Task{
				ID:         id,
				Name:       fmt.Sprintf("t%d.%d", l, i),
				Complexity: uniform(r.ComplexityMin, r.ComplexityMax),
				OutBytes:   logUniform(r.BytesMin, r.BytesMax),
			})
			fanIn := 1 + rng.IntN(maxFanIn)
			seen := map[int]bool{}
			for f := 0; f < fanIn; f++ {
				p := prevLayer[rng.IntN(len(prevLayer))]
				if !seen[p] {
					deps = append(deps, [2]int{p, id})
					seen[p] = true
				}
			}
			layer = append(layer, id)
		}
		prevLayer = layer
	}
	// Single exit depending on the whole last layer plus any dangling tasks.
	exit := len(tasks)
	tasks = append(tasks, Task{ID: exit, Name: "sink", Complexity: uniform(r.ComplexityMin, r.ComplexityMax)})
	hasSucc := make([]bool, exit)
	for _, d := range deps {
		hasSucc[d[0]] = true
	}
	for t := 0; t < exit; t++ {
		if !hasSucc[t] {
			deps = append(deps, [2]int{t, exit})
		}
	}
	return NewWorkflow(tasks, deps)
}
