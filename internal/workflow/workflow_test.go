package workflow_test

import (
	"math"
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/workflow"
)

// diamondFlow: source -> {a, b} -> sink.
func diamondFlow(t *testing.T) *workflow.Workflow {
	t.Helper()
	wf, err := workflow.NewWorkflow([]workflow.Task{
		{ID: 0, Name: "src", OutBytes: 1000},
		{ID: 1, Name: "a", Complexity: 10, OutBytes: 500},
		{ID: 2, Name: "b", Complexity: 20, OutBytes: 800},
		{ID: 3, Name: "sink", Complexity: 5},
	}, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func testNet(t *testing.T) *model.Network {
	t.Helper()
	net, err := gen.Network(8, 30, gen.DefaultRanges(), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewWorkflowValidation(t *testing.T) {
	good := []workflow.Task{
		{ID: 0, OutBytes: 10},
		{ID: 1, Complexity: 1},
	}
	if _, err := workflow.NewWorkflow(good, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("valid workflow rejected: %v", err)
	}
	cases := []struct {
		name  string
		tasks []workflow.Task
		deps  [][2]int
	}{
		{"too small", good[:1], nil},
		{"bad ids", []workflow.Task{{ID: 0, OutBytes: 1}, {ID: 5, Complexity: 1}}, [][2]int{{0, 1}}},
		{"entry with complexity", []workflow.Task{{ID: 0, Complexity: 1, OutBytes: 1}, {ID: 1, Complexity: 1}}, [][2]int{{0, 1}}},
		{"exit with output", []workflow.Task{{ID: 0, OutBytes: 1}, {ID: 1, Complexity: 1, OutBytes: 9}}, [][2]int{{0, 1}}},
		{"negative attr", []workflow.Task{{ID: 0, OutBytes: -1}, {ID: 1, Complexity: 1}}, [][2]int{{0, 1}}},
		{"no edges (second entry)", []workflow.Task{{ID: 0, OutBytes: 1}, {ID: 1, Complexity: 1}}, nil},
		{"second exit", []workflow.Task{{ID: 0, OutBytes: 1}, {ID: 1, Complexity: 1, OutBytes: 1}, {ID: 2, Complexity: 1}}, [][2]int{{0, 1}, {0, 2}}},
		{"cycle", []workflow.Task{{ID: 0, OutBytes: 1}, {ID: 1, Complexity: 1, OutBytes: 1}, {ID: 2, Complexity: 1, OutBytes: 1}, {ID: 3, Complexity: 1}}, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}, {1, 3}}},
		{"dup edge", good, [][2]int{{0, 1}, {0, 1}}},
	}
	for _, c := range cases {
		if _, err := workflow.NewWorkflow(c.tasks, c.deps); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWorkflowAccessors(t *testing.T) {
	wf := diamondFlow(t)
	if wf.N() != 4 {
		t.Fatalf("N = %d", wf.N())
	}
	if got := wf.InBytes(3); got != 500+800 {
		t.Errorf("sink InBytes = %v, want 1300", got)
	}
	if got := wf.ComputeOps(1); got != 10*1000 {
		t.Errorf("ops(a) = %v", got)
	}
	if got := wf.ComputeTime(1, 100); got != 100 {
		t.Errorf("time(a) = %v", got)
	}
	preds := wf.Preds(3)
	if len(preds) != 2 {
		t.Errorf("preds(sink) = %v", preds)
	}
	succs := wf.Succs(0)
	if len(succs) != 2 {
		t.Errorf("succs(src) = %v", succs)
	}
	topo := wf.Topo()
	if topo[0] != 0 || topo[len(topo)-1] != 3 {
		t.Errorf("topo = %v", topo)
	}
	if wf.DAG().M() != 4 {
		t.Error("DAG edge count wrong")
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// 2 nodes, 1 bidirectional fast link; diamond placed entry+a on v0,
	// b+sink on v1.
	nodes := []model.Node{{ID: 0, Power: 100}, {ID: 1, Power: 200}}
	links := []model.Link{
		{ID: 0, From: 0, To: 1, BWMbps: 8, MLDms: 1}, // 1000 B/ms
		{ID: 1, From: 1, To: 0, BWMbps: 8, MLDms: 1},
	}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	wf := diamondFlow(t)
	p := &workflow.Problem{Net: net, Flow: wf, Src: 0, Dst: 1}
	pl := workflow.NewPlacement([]model.NodeID{0, 0, 1, 1})
	if err := p.ValidatePlacement(pl); err != nil {
		t.Fatal(err)
	}
	sched := workflow.Evaluate(p, pl, nil)
	// t0: on v0, 0 compute. t1 (a) on v0: in 1000B local; 10*1000/100 = 100.
	// t2 (b) on v1: transfer 1000B = 1+1 = 2; 20*1000/200 = 100 → finish 102.
	// t3 (sink) on v1: needs a's 500B from v0 (0.5+1=1.5, arrives
	// 100+1.5=101.5) and b local (102); node v1 free at 102. start 102;
	// compute 5*1300/200 = 32.5 → 134.5.
	if math.Abs(sched.Finish[1]-100) > 1e-9 || math.Abs(sched.Finish[2]-102) > 1e-9 {
		t.Errorf("intermediate finishes: %v", sched.Finish)
	}
	if math.Abs(sched.Makespan-134.5) > 1e-9 {
		t.Errorf("makespan = %v, want 134.5", sched.Makespan)
	}
	// Period: v0 busy 100; v1 busy 132.5; link 0 carries 1000B (t0->t2,
	// 1 ms) + 500B (t1->t3, 0.5 ms) = 1.5 ms. Period = 132.5.
	period := workflow.Period(p, pl, nil)
	if math.Abs(period-132.5) > 1e-9 {
		t.Errorf("period = %v, want 132.5", period)
	}
}

func TestRouterMultiHop(t *testing.T) {
	// Line 0 - 1 - 2; transfer 0->2 must route through 1.
	nodes := []model.Node{{ID: 0, Power: 1}, {ID: 1, Power: 1}, {ID: 2, Power: 1}}
	links := []model.Link{
		{ID: 0, From: 0, To: 1, BWMbps: 8, MLDms: 1},
		{ID: 1, From: 1, To: 2, BWMbps: 8, MLDms: 2},
	}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	r := workflow.NewRouter(net)
	got := r.TransferTime(0, 2, 1000)
	want := (1.0 + 1) + (1.0 + 2) // two hops of 1000B at 1000 B/ms + MLDs
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("routed transfer = %v, want %v", got, want)
	}
	if r.TransferTime(0, 0, 1000) != 0 {
		t.Error("self transfer should be free")
	}
	if !math.IsInf(r.TransferTime(2, 0, 10), 1) {
		t.Error("unroutable transfer should be +Inf")
	}
	linksOn := r.RouteLinks(0, 2, 1000)
	if len(linksOn) != 2 || linksOn[0] != 0 || linksOn[1] != 1 {
		t.Errorf("route links = %v", linksOn)
	}
	if r.RouteLinks(0, 0, 5) != nil || r.RouteLinks(2, 0, 5) != nil {
		t.Error("degenerate routes should be nil")
	}
}

func TestHEFTAndGreedyProduceValidSchedules(t *testing.T) {
	net := testNet(t)
	for seed := uint64(0); seed < 25; seed++ {
		wf, err := workflow.RandomDAG(3, 3, 2, gen.DefaultRanges(), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		p := &workflow.Problem{Net: net, Flow: wf, Src: 0, Dst: 7}
		hpl, hsched, err := workflow.HEFT(p)
		if err != nil {
			t.Fatalf("seed %d: HEFT: %v", seed, err)
		}
		if err := p.ValidatePlacement(hpl); err != nil {
			t.Fatalf("seed %d: invalid HEFT placement: %v", seed, err)
		}
		if hsched.Makespan <= 0 || math.IsInf(hsched.Makespan, 1) {
			t.Fatalf("seed %d: HEFT makespan %v", seed, hsched.Makespan)
		}
		gpl, gsched, err := workflow.GreedyTopo(p)
		if err != nil {
			t.Fatalf("seed %d: greedy: %v", seed, err)
		}
		if err := p.ValidatePlacement(gpl); err != nil {
			t.Fatalf("seed %d: invalid greedy placement: %v", seed, err)
		}
		// Schedules respect dependencies.
		for _, sched := range []*workflow.Schedule{hsched, gsched} {
			for tsk := 0; tsk < wf.N(); tsk++ {
				for _, pr := range wf.Preds(tsk) {
					if sched.Start[tsk] < sched.Finish[pr]-1e-9 {
						// Transfer can take zero time only when co-located;
						// start must never precede a predecessor's finish.
						t.Fatalf("seed %d: task %d starts before pred %d finishes", seed, tsk, pr)
					}
				}
			}
		}
	}
}

// TestChainWorkflowVsELPC connects the two formulations: on a chain
// workflow, HEFT's makespan can never beat the linear ELPC optimum computed
// on the same instance when transfers are restricted to direct links —
// ELPC is optimal there, and the workflow evaluator's multi-hop routing
// can only help it match or beat direct-link-only mappings. We assert both
// produce finite, mutually consistent results and that HEFT is within a
// small factor of ELPC.
func TestChainWorkflowVsELPC(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+99), 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		p.Cost = model.CostOptions{IncludeMLDInDelay: true}
		em, err := core.MinDelay(p)
		if err != nil {
			continue
		}
		elpcDelay := model.TotalDelay(p.Net, p.Pipe, em, p.Cost)

		wf, err := workflow.FromPipeline(p.Pipe)
		if err != nil {
			t.Fatal(err)
		}
		wp := &workflow.Problem{Net: p.Net, Flow: wf, Src: p.Src, Dst: p.Dst}
		_, sched, err := workflow.HEFT(wp)
		if err != nil {
			t.Errorf("seed %d: HEFT infeasible where ELPC was feasible: %v", seed, err)
			continue
		}
		// The ELPC mapping itself is a valid placement; its workflow
		// makespan equals its Eq. 1 delay (chain, direct links, no
		// contention) — evaluator consistency across formulations.
		epl := workflow.NewPlacement(em.Assign)
		esched := workflow.Evaluate(wp, epl, nil)
		if esched.Makespan > elpcDelay+1e-6 {
			t.Errorf("seed %d: workflow evaluation %v of ELPC mapping exceeds Eq.1 %v",
				seed, esched.Makespan, elpcDelay)
		}
		// HEFT with multi-hop routing may beat the direct-link ELPC value
		// but, being a heuristic blind to downstream grouping, it can also
		// lose by several x on chains — exactly the gap the paper's DP
		// closes. Guard only against pathological blowups and report the
		// ratio.
		ratio := sched.Makespan / elpcDelay
		t.Logf("seed %d: HEFT/ELPC makespan ratio %.2f", seed, ratio)
		if ratio > 20 {
			t.Errorf("seed %d: HEFT makespan %v pathologically above ELPC %v", seed, sched.Makespan, elpcDelay)
		}
	}
}

func TestRandomDAGShapes(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		wf, err := workflow.RandomDAG(4, 4, 3, gen.DefaultRanges(), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if wf.Tasks[0].Complexity != 0 {
			t.Error("entry must be pure source")
		}
		if wf.Tasks[wf.N()-1].OutBytes != 0 {
			t.Error("exit must have no output")
		}
	}
	if _, err := workflow.RandomDAG(0, 1, 1, gen.DefaultRanges(), gen.RNG(1)); err == nil {
		t.Error("bad shape should error")
	}
}

func TestPlacementValidation(t *testing.T) {
	net := testNet(t)
	wf := diamondFlow(t)
	p := &workflow.Problem{Net: net, Flow: wf, Src: 0, Dst: 7}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		assign []model.NodeID
	}{
		{"wrong length", []model.NodeID{0, 7}},
		{"bad node", []model.NodeID{0, 99, 1, 7}},
		{"wrong entry", []model.NodeID{1, 2, 3, 7}},
		{"wrong exit", []model.NodeID{0, 2, 3, 3}},
	}
	for _, c := range cases {
		if err := p.ValidatePlacement(workflow.NewPlacement(c.assign)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := p.ValidatePlacement(workflow.NewPlacement([]model.NodeID{0, 4, 5, 7})); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	bad := &workflow.Problem{Net: net, Flow: wf, Src: -1, Dst: 7}
	if err := bad.Validate(); err == nil {
		t.Error("bad src should error")
	}
	if err := (&workflow.Problem{}).Validate(); err == nil {
		t.Error("empty problem should error")
	}
}
