// Package workflow implements the paper's second future-work direction
// (Section 5): extending linear pipelines to DAG-structured workflows
// mapped onto distributed networks.
//
// A Workflow is a directed acyclic graph of tasks; each task consumes the
// outputs of all its predecessors and produces one artifact forwarded to
// every successor. The generalization of the paper's cost model:
//
//   - compute time of task t on node v: c_t · (Σ_p∈preds out_p) / p_v
//   - transfer of an artifact between nodes follows the cheapest multi-hop
//     route for that artifact size (links are store-and-forward, so a route
//     costs Σ hops (m/b + d)); co-located tasks transfer for free
//
// The delay objective is the makespan of a deterministic list schedule
// (nodes execute one task at a time, topological order as tie-break); the
// throughput objective is the shared-resource period (the maximum total
// per-frame occupancy over nodes and routed links), matching how the linear
// case's SharedBottleneck generalizes Eq. 2.
//
// Exact DAG mapping subsumes the NP-complete linear case, so the package
// provides heuristics: an HEFT-style list scheduler and a topological
// greedy baseline, verified against the linear ELPC optimum on chain
// workflows (where the problems coincide structurally).
package workflow

import (
	"fmt"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// Task is one node of the workflow DAG.
type Task struct {
	ID         int     `json:"id"`
	Name       string  `json:"name,omitempty"`
	Complexity float64 `json:"complexity"` // ops per input byte
	OutBytes   float64 `json:"out_bytes"`  // artifact size sent to each successor
}

// Workflow is a validated task DAG with a single entry and a single exit.
type Workflow struct {
	Tasks []Task
	dag   *graph.Graph
	topo  []int // topological order
}

// NewWorkflow validates the task set and dependency edges: dense IDs, a DAG
// with exactly one entry (task 0, zero complexity — the data source) and
// exactly one exit (the last task, zero output), every task on a path from
// entry to exit.
func NewWorkflow(tasks []Task, deps [][2]int) (*Workflow, error) {
	n := len(tasks)
	if n < 2 {
		return nil, fmt.Errorf("workflow: need at least entry and exit, got %d tasks", n)
	}
	for i, t := range tasks {
		if t.ID != i {
			return nil, fmt.Errorf("workflow: task %d has ID %d; tasks must be densely numbered", i, t.ID)
		}
		if t.Complexity < 0 || t.OutBytes < 0 {
			return nil, fmt.Errorf("workflow: task %d has negative attribute", i)
		}
	}
	if tasks[0].Complexity != 0 {
		return nil, fmt.Errorf("workflow: entry task must have zero complexity (data source)")
	}
	if tasks[n-1].OutBytes != 0 {
		return nil, fmt.Errorf("workflow: exit task must have zero output")
	}
	dag := graph.New(n)
	for _, d := range deps {
		if _, err := dag.AddEdge(d[0], d[1]); err != nil {
			return nil, fmt.Errorf("workflow: dependency %v: %w", d, err)
		}
	}
	topo, err := topoSort(dag)
	if err != nil {
		return nil, err
	}
	// Entry/exit uniqueness and reachability.
	for v := 0; v < n; v++ {
		switch {
		case v == 0:
			if dag.InDegree(v) != 0 {
				return nil, fmt.Errorf("workflow: entry task 0 has predecessors")
			}
		case dag.InDegree(v) == 0:
			return nil, fmt.Errorf("workflow: task %d is a second entry (no predecessors)", v)
		}
		switch {
		case v == n-1:
			if dag.OutDegree(v) != 0 {
				return nil, fmt.Errorf("workflow: exit task has successors")
			}
		case dag.OutDegree(v) == 0:
			return nil, fmt.Errorf("workflow: task %d is a second exit (no successors)", v)
		}
	}
	return &Workflow{Tasks: tasks, dag: dag, topo: topo}, nil
}

func topoSort(dag *graph.Graph) ([]int, error) {
	n := dag.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = dag.InDegree(v)
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, eid := range dag.OutEdges(v) {
			w := dag.Edge(int(eid)).To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("workflow: dependency graph has a cycle")
	}
	return order, nil
}

// N returns the number of tasks.
func (w *Workflow) N() int { return len(w.Tasks) }

// DAG returns the dependency graph (edge i: dependency i). Read-only.
func (w *Workflow) DAG() *graph.Graph { return w.dag }

// Topo returns a topological order of task IDs. Read-only.
func (w *Workflow) Topo() []int { return w.topo }

// Preds returns the predecessor task IDs of t.
func (w *Workflow) Preds(t int) []int {
	in := w.dag.InEdges(t)
	out := make([]int, len(in))
	for i, eid := range in {
		out[i] = w.dag.Edge(int(eid)).From
	}
	return out
}

// Succs returns the successor task IDs of t.
func (w *Workflow) Succs(t int) []int {
	oe := w.dag.OutEdges(t)
	out := make([]int, len(oe))
	for i, eid := range oe {
		out[i] = w.dag.Edge(int(eid)).To
	}
	return out
}

// InBytes returns the total input volume of task t (sum of predecessor
// outputs).
func (w *Workflow) InBytes(t int) float64 {
	total := 0.0
	for _, p := range w.Preds(t) {
		total += w.Tasks[p].OutBytes
	}
	return total
}

// ComputeOps returns c_t · InBytes(t).
func (w *Workflow) ComputeOps(t int) float64 {
	return w.Tasks[t].Complexity * w.InBytes(t)
}

// ComputeTime returns the execution time of t on a node with the given
// power.
func (w *Workflow) ComputeTime(t int, power float64) float64 {
	return w.ComputeOps(t) / power
}

// Placement assigns every task to a network node.
type Placement struct {
	Assign []model.NodeID
}

// NewPlacement copies assign.
func NewPlacement(assign []model.NodeID) *Placement {
	return &Placement{Assign: append([]model.NodeID(nil), assign...)}
}

// Problem is a workflow mapping instance.
type Problem struct {
	Net  *model.Network
	Flow *Workflow
	Src  model.NodeID // entry pinned here (where the data lives)
	Dst  model.NodeID // exit pinned here (where the user sits)
}

// Validate checks the problem and requires src/dst validity.
func (p *Problem) Validate() error {
	if p.Net == nil || p.Flow == nil {
		return fmt.Errorf("workflow: problem missing network or workflow")
	}
	if !p.Net.ValidNode(p.Src) || !p.Net.ValidNode(p.Dst) {
		return fmt.Errorf("workflow: invalid endpoint nodes %d, %d", p.Src, p.Dst)
	}
	return nil
}

// ValidatePlacement checks structural validity: length, node range, pinned
// endpoints. (Connectivity is not required per-edge: transfers are routed
// multi-hop; unroutable transfers surface as +Inf makespan.)
func (p *Problem) ValidatePlacement(pl *Placement) error {
	if len(pl.Assign) != p.Flow.N() {
		return fmt.Errorf("workflow: placement covers %d tasks, workflow has %d", len(pl.Assign), p.Flow.N())
	}
	for t, v := range pl.Assign {
		if !p.Net.ValidNode(v) {
			return fmt.Errorf("workflow: task %d on invalid node %d", t, v)
		}
	}
	if pl.Assign[0] != p.Src {
		return fmt.Errorf("workflow: entry task on node %d, want source %d", pl.Assign[0], p.Src)
	}
	if pl.Assign[p.Flow.N()-1] != p.Dst {
		return fmt.Errorf("workflow: exit task on node %d, want destination %d", pl.Assign[p.Flow.N()-1], p.Dst)
	}
	return nil
}
