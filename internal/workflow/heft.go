package workflow

import (
	"fmt"
	"math"
	"sort"

	"elpc/internal/model"
)

// HEFT maps the workflow with the Heterogeneous Earliest Finish Time list
// scheduler (Topcuoglu et al.), the standard DAG baseline the future-work
// setting calls for: rank tasks by upward rank (mean compute + mean
// communication along the longest downstream path), then place each task —
// highest rank first — on the node minimizing its earliest finish time,
// with transfers routed over the actual topology. Entry and exit tasks are
// pinned to the problem's source and destination nodes.
func HEFT(p *Problem) (*Placement, *Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.Flow.N()
	k := p.Net.N()
	router := NewRouter(p.Net)

	// Mean resource figures for ranking.
	meanPower := 0.0
	for _, nd := range p.Net.Nodes {
		meanPower += nd.Power
	}
	meanPower /= float64(k)
	meanRate := 0.0
	for _, l := range p.Net.Links {
		meanRate += l.BytesPerMs()
	}
	meanRate /= float64(p.Net.M())

	// Upward ranks over reverse topological order.
	rank := make([]float64, n)
	topo := p.Flow.Topo()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, s := range p.Flow.Succs(t) {
			r := rank[s] + p.Flow.Tasks[t].OutBytes/meanRate
			if r > best {
				best = r
			}
		}
		rank[t] = p.Flow.ComputeOps(t)/meanPower + best
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})

	assign := make([]model.NodeID, n)
	for i := range assign {
		assign[i] = -1
	}
	finish := make([]float64, n)
	nodeFree := make(map[model.NodeID]float64, k)

	place := func(t int, candidates []model.NodeID) error {
		bestNode := model.NodeID(-1)
		bestFinish := math.Inf(1)
		for _, v := range candidates {
			est := 0.0
			feasible := true
			for _, pr := range p.Flow.Preds(t) {
				if assign[pr] < 0 {
					continue // unscheduled predecessor: HEFT's rank order usually prevents this; treat as free
				}
				tt := router.TransferTime(assign[pr], v, p.Flow.Tasks[pr].OutBytes)
				if math.IsInf(tt, 1) {
					feasible = false
					break
				}
				if arr := finish[pr] + tt; arr > est {
					est = arr
				}
			}
			if !feasible {
				continue
			}
			s := math.Max(est, nodeFree[v])
			f := s + p.Flow.ComputeTime(t, p.Net.Power(v))
			if f < bestFinish {
				bestFinish = f
				bestNode = v
			}
		}
		if bestNode < 0 {
			return fmt.Errorf("workflow: HEFT found no feasible node for task %d: %w", t, model.ErrInfeasible)
		}
		assign[t] = bestNode
		finish[t] = bestFinish
		nodeFree[bestNode] = bestFinish
		return nil
	}

	all := make([]model.NodeID, k)
	for i := range all {
		all[i] = model.NodeID(i)
	}
	for _, t := range order {
		var cands []model.NodeID
		switch t {
		case 0:
			cands = []model.NodeID{p.Src}
		case n - 1:
			cands = []model.NodeID{p.Dst}
		default:
			cands = all
		}
		if err := place(t, cands); err != nil {
			return nil, nil, err
		}
	}
	pl := NewPlacement(assign)
	// Re-evaluate with the deterministic evaluator (rank order and topo
	// order can disagree on node queueing, so HEFT's internal finish times
	// are only estimates).
	sched := Evaluate(p, pl, router)
	if math.IsInf(sched.Makespan, 1) {
		return nil, nil, fmt.Errorf("workflow: HEFT placement unroutable: %w", model.ErrInfeasible)
	}
	return pl, sched, nil
}

// GreedyTopo is the workflow analogue of the paper's Greedy baseline: walk
// tasks in topological order and put each on the node minimizing its own
// finish time given the placements made so far.
func GreedyTopo(p *Problem) (*Placement, *Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.Flow.N()
	k := p.Net.N()
	router := NewRouter(p.Net)
	assign := make([]model.NodeID, n)
	finish := make([]float64, n)
	nodeFree := make(map[model.NodeID]float64, k)

	for _, t := range p.Flow.Topo() {
		var cands []model.NodeID
		switch t {
		case 0:
			cands = []model.NodeID{p.Src}
		case n - 1:
			cands = []model.NodeID{p.Dst}
		default:
			cands = make([]model.NodeID, k)
			for i := range cands {
				cands[i] = model.NodeID(i)
			}
		}
		bestNode := model.NodeID(-1)
		bestFinish := math.Inf(1)
		for _, v := range cands {
			est := 0.0
			ok := true
			for _, pr := range p.Flow.Preds(t) {
				tt := router.TransferTime(assign[pr], v, p.Flow.Tasks[pr].OutBytes)
				if math.IsInf(tt, 1) {
					ok = false
					break
				}
				if arr := finish[pr] + tt; arr > est {
					est = arr
				}
			}
			if !ok {
				continue
			}
			s := math.Max(est, nodeFree[v])
			f := s + p.Flow.ComputeTime(t, p.Net.Power(v))
			if f < bestFinish {
				bestFinish = f
				bestNode = v
			}
		}
		if bestNode < 0 {
			return nil, nil, fmt.Errorf("workflow: greedy found no feasible node for task %d: %w", t, model.ErrInfeasible)
		}
		assign[t] = bestNode
		finish[t] = bestFinish
		nodeFree[bestNode] = bestFinish
	}
	pl := NewPlacement(assign)
	sched := Evaluate(p, pl, router)
	if math.IsInf(sched.Makespan, 1) {
		return nil, nil, fmt.Errorf("workflow: greedy placement unroutable: %w", model.ErrInfeasible)
	}
	return pl, sched, nil
}
