// Package viz renders networks and pipeline mappings for human inspection,
// reproducing the paper's Figures 3 and 4 (the selected mapping path drawn
// over the network): Graphviz DOT output with the mapping path highlighted,
// and a plain-text rendering for terminals and logs.
package viz

import (
	"fmt"
	"io"
	"strings"

	"elpc/internal/graph"
	"elpc/internal/model"
)

// MappingDot writes the network in DOT format with the mapping's walk
// highlighted: nodes carry their processing power and assigned modules;
// traversed links are bold red and labeled with bandwidth/MLD.
func MappingDot(w io.Writer, p *model.Problem, m *model.Mapping, title string) error {
	groupsByNode := map[model.NodeID][]model.Group{}
	for _, g := range m.Groups() {
		groupsByNode[g.Node] = append(groupsByNode[g.Node], g)
	}
	onPath := map[int]bool{}
	walk := m.Walk()
	for i := 0; i+1 < len(walk); i++ {
		if link, ok := p.Net.LinkBetween(walk[i], walk[i+1]); ok {
			onPath[link.ID] = true
		}
	}
	opt := graph.DotOptions{
		Name:    sanitizeDotName(title),
		RankDir: "LR",
		NodeLabel: func(v int) string {
			label := fmt.Sprintf("node %d\\np=%.3g", v, p.Net.Power(model.NodeID(v)))
			for _, g := range groupsByNode[model.NodeID(v)] {
				if g.First == g.Last {
					label += fmt.Sprintf("\\nM%d", g.First)
				} else {
					label += fmt.Sprintf("\\nM%d..M%d", g.First, g.Last)
				}
			}
			return label
		},
		NodeAttrs: func(v int) string {
			nv := model.NodeID(v)
			switch {
			case nv == p.Src:
				return `shape="box", style="filled", fillcolor="lightblue"`
			case nv == p.Dst:
				return `shape="box", style="filled", fillcolor="lightgreen"`
			case len(groupsByNode[nv]) > 0:
				return `style="filled", fillcolor="khaki"`
			default:
				return ""
			}
		},
		EdgeLabel: func(id int) string {
			l := p.Net.Links[id]
			return fmt.Sprintf("%.3g Mbps\\n%.3g ms", l.BWMbps, l.MLDms)
		},
		EdgeAttrs: func(id int) string {
			if onPath[id] {
				return `color="red", penwidth="2.5"`
			}
			return `color="gray70"`
		},
	}
	return p.Net.Topology().WriteDot(w, opt)
}

func sanitizeDotName(s string) string {
	if s == "" {
		return "mapping"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// MappingText writes a textual account of a mapping in the style of the
// paper's Figure 3/4 captions: the group decomposition, the selected network
// path, and the per-stage cost breakdown identifying the bottleneck.
func MappingText(w io.Writer, p *model.Problem, m *model.Mapping) error {
	var b strings.Builder
	fmt.Fprintf(&b, "mapping: %s\n", m)
	groups := m.Groups()
	fmt.Fprintf(&b, "path (%d groups):", len(groups))
	for _, g := range groups {
		fmt.Fprintf(&b, " v%d", g.Node)
	}
	b.WriteByte('\n')

	worstStage, worstTime := "", 0.0
	for gi, g := range groups {
		power := p.Net.Power(g.Node)
		compute := 0.0
		for j := g.First; j <= g.Last; j++ {
			compute += p.Pipe.ComputeTime(j, power)
		}
		fmt.Fprintf(&b, "  group %d on v%-3d modules %d..%d  compute %10.3f ms\n",
			gi+1, g.Node, g.First, g.Last, compute)
		if compute > worstTime {
			worstTime = compute
			worstStage = fmt.Sprintf("compute of group %d on node %d", gi+1, g.Node)
		}
		if gi+1 < len(groups) {
			link, ok := p.Net.LinkBetween(g.Node, groups[gi+1].Node)
			if !ok {
				return fmt.Errorf("viz: mapping uses missing link v%d->v%d", g.Node, groups[gi+1].Node)
			}
			tr := link.TransferTime(p.Pipe.OutBytes(g.Last), false)
			fmt.Fprintf(&b, "  link  v%d -> v%-3d %8.3g Mbps        transfer %10.3f ms (+%.3g ms MLD)\n",
				g.Node, groups[gi+1].Node, link.BWMbps, tr, link.MLDms)
			if tr > worstTime {
				worstTime = tr
				worstStage = fmt.Sprintf("transfer v%d->v%d", g.Node, groups[gi+1].Node)
			}
		}
	}
	delay := model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
	bott := model.Bottleneck(p.Net, p.Pipe, m)
	fmt.Fprintf(&b, "total delay %.3f ms | bottleneck %.3f ms (%s) | frame rate %.2f fps\n",
		delay, bott, worstStage, model.FrameRate(bott))
	_, err := io.WriteString(w, b.String())
	return err
}
