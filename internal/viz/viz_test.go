package viz

import (
	"strings"
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
)

func smallProblem(t *testing.T) (*model.Problem, *model.Mapping) {
	t.Helper()
	p, err := gen.SmallCase().Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.MinDelay(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestMappingDot(t *testing.T) {
	p, m := smallProblem(t)
	var sb strings.Builder
	if err := MappingDot(&sb, p, m, "fig 3: min delay"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph fig_3__min_delay",
		"rankdir=LR",
		"Mbps",
		`penwidth="2.5"`,           // highlighted path
		"fillcolor=\"lightblue\"",  // source
		"fillcolor=\"lightgreen\"", // destination
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Every module appears somewhere in a node label.
	if !strings.Contains(out, "M0") {
		t.Error("module labels missing")
	}
}

func TestMappingDotDefaultTitle(t *testing.T) {
	p, m := smallProblem(t)
	var sb strings.Builder
	if err := MappingDot(&sb, p, m, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph mapping") {
		t.Error("default title missing")
	}
}

func TestMappingText(t *testing.T) {
	p, m := smallProblem(t)
	var sb strings.Builder
	if err := MappingText(&sb, p, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mapping:", "path (", "group 1", "total delay", "frame rate", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}
}

func TestMappingTextBrokenMapping(t *testing.T) {
	p, _ := smallProblem(t)
	// Force a mapping with a missing link by fabricating an assignment that
	// jumps between unconnected nodes. The small case is a complete graph,
	// so build a custom sparse network instead.
	nodes := []model.Node{{ID: 0, Power: 1}, {ID: 1, Power: 1}, {ID: 2, Power: 1}}
	links := []model.Link{{ID: 0, From: 0, To: 1, BWMbps: 1}, {ID: 1, From: 1, To: 2, BWMbps: 1}}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := model.NewPipeline([]model.Module{
		{ID: 0, OutBytes: 10},
		{ID: 1, Complexity: 1, InBytes: 10, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p2 := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 2, Cost: model.DefaultCostOptions()}
	bad := model.NewMapping([]model.NodeID{0, 2}) // no 0->2 link
	var sb strings.Builder
	if err := MappingText(&sb, p2, bad); err == nil {
		t.Error("broken mapping should error")
	}
	_ = p
}

func TestSanitizeDotName(t *testing.T) {
	if got := sanitizeDotName("a b-c.9_Z"); got != "a_b_c_9_Z" {
		t.Errorf("sanitize = %q", got)
	}
}
