// Package dataset implements a line-oriented text format for problem
// instances mirroring the paper's simulation datasets (Section 4.1), which
// describe each module by (ModuleID, ModuleComplexity, InputDataInBytes,
// OutputDataInBytes), each node by (NodeID, NodeIP, ProcessingPower), each
// link by (LinkID, startNodeID, endNodeID, LinkBWInMbps,
// LinkDelayInMilliseconds), and the network topology as an adjacency
// structure with designated source and destination nodes.
//
// Format (one record per line, '#' comments, blank lines ignored):
//
//	module <id> <complexity> <inBytes> <outBytes>
//	node <id> <ip> <power>
//	link <id> <fromNode> <toNode> <bwMbps> <mldMs>
//	source <nodeID>
//	destination <nodeID>
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"elpc/internal/model"
)

// Write renders the problem in the dataset text format.
func Write(w io.Writer, p *model.Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pipeline: %d modules\n", p.Pipe.N())
	for _, m := range p.Pipe.Modules {
		fmt.Fprintf(bw, "module %d %g %g %g\n", m.ID, m.Complexity, m.InBytes, m.OutBytes)
	}
	fmt.Fprintf(bw, "\n# network: %d nodes, %d links\n", p.Net.N(), p.Net.M())
	for _, n := range p.Net.Nodes {
		ip := n.Name
		if ip == "" {
			ip = fmt.Sprintf("10.0.%d.%d", int(n.ID)/256, int(n.ID)%256)
		}
		fmt.Fprintf(bw, "node %d %s %g\n", n.ID, ip, n.Power)
	}
	for _, l := range p.Net.Links {
		fmt.Fprintf(bw, "link %d %d %d %g %g\n", l.ID, l.From, l.To, l.BWMbps, l.MLDms)
	}
	fmt.Fprintf(bw, "\nsource %d\ndestination %d\n", p.Src, p.Dst)
	return bw.Flush()
}

// Read parses a problem from the dataset text format, validating the model
// invariants. Records may appear in any order; module/node/link IDs must be
// dense after sorting.
func Read(r io.Reader) (*model.Problem, error) {
	var modules []model.Module
	var nodes []model.Node
	var links []model.Link
	src, dst := model.NodeID(-1), model.NodeID(-1)

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		rec := fields[0]
		args := fields[1:]
		fail := func(err error) error {
			return fmt.Errorf("dataset: line %d (%s): %w", lineNo, rec, err)
		}
		switch rec {
		case "module":
			if len(args) != 4 {
				return nil, fail(fmt.Errorf("want 4 fields, got %d", len(args)))
			}
			vals, err := parseFloats(args)
			if err != nil {
				return nil, fail(err)
			}
			modules = append(modules, model.Module{
				ID:         int(vals[0]),
				Complexity: vals[1],
				InBytes:    vals[2],
				OutBytes:   vals[3],
			})
		case "node":
			if len(args) != 3 {
				return nil, fail(fmt.Errorf("want 3 fields, got %d", len(args)))
			}
			id, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fail(err)
			}
			power, err := strconv.ParseFloat(args[2], 64)
			if err != nil {
				return nil, fail(err)
			}
			nodes = append(nodes, model.Node{ID: model.NodeID(id), Name: args[1], Power: power})
		case "link":
			if len(args) != 5 {
				return nil, fail(fmt.Errorf("want 5 fields, got %d", len(args)))
			}
			vals, err := parseFloats(args)
			if err != nil {
				return nil, fail(err)
			}
			links = append(links, model.Link{
				ID:     int(vals[0]),
				From:   model.NodeID(vals[1]),
				To:     model.NodeID(vals[2]),
				BWMbps: vals[3],
				MLDms:  vals[4],
			})
		case "source":
			if len(args) != 1 {
				return nil, fail(fmt.Errorf("want one node ID"))
			}
			v, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fail(fmt.Errorf("want one node ID"))
			}
			src = model.NodeID(v)
		case "destination":
			if len(args) != 1 {
				return nil, fail(fmt.Errorf("want one node ID"))
			}
			v, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fail(fmt.Errorf("want one node ID"))
			}
			dst = model.NodeID(v)
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", lineNo, rec)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if src < 0 || dst < 0 {
		return nil, fmt.Errorf("dataset: missing source or destination record")
	}
	sort.Slice(modules, func(i, j int) bool { return modules[i].ID < modules[j].ID })
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	pl, err := model.NewPipeline(modules)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	p := &model.Problem{Net: net, Pipe: pl, Src: src, Dst: dst, Cost: model.DefaultCostOptions()}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return p, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// AdjacencyMatrix renders the network's adjacency matrix as text ('.' = no
// link, digits = link bandwidth rank 1..9 by decile), matching the paper's
// description of topologies "in the form of an adjacency matrix". Intended
// for small networks; rows are truncated beyond maxNodes (<= 0: no limit).
func AdjacencyMatrix(p *model.Network, maxNodes int) string {
	n := p.N()
	if maxNodes > 0 && n > maxNodes {
		n = maxNodes
	}
	// Rank bandwidths into deciles for a compact glyph.
	lo, hi := 0.0, 0.0
	for i, l := range p.Links {
		if i == 0 || l.BWMbps < lo {
			lo = l.BWMbps
		}
		if l.BWMbps > hi {
			hi = l.BWMbps
		}
	}
	glyph := func(bw float64) byte {
		if hi <= lo {
			return '5'
		}
		d := int((bw - lo) / (hi - lo) * 9)
		return byte('1' + min(d, 8))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "adjacency (%dx%d, 1-9 = bandwidth decile):\n", n, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			switch {
			case u == v:
				b.WriteByte('-')
			default:
				if link, ok := p.LinkBetween(model.NodeID(u), model.NodeID(v)); ok {
					b.WriteByte(glyph(link.BWMbps))
				} else {
					b.WriteByte('.')
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
