package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the dataset parser never panics and that anything it
// accepts round-trips through Write/Read to an equivalent instance.
func FuzzRead(f *testing.F) {
	f.Add("module 0 0 0 10\nmodule 1 5 10 0\nnode 0 a 1\nnode 1 b 1\nlink 0 0 1 5 1\nlink 1 1 0 5 1\nsource 0\ndestination 1\n")
	f.Add("# comment\n\nmodule 0 0 0 1\n")
	f.Add("garbage")
	f.Add("module 0 abc def ghi\n")
	f.Add("link 0 0 0 1 1\nsource 0\ndestination 0\n")
	f.Add("node -1 x 1\n")
	f.Add("module 0 0 0 1e309\n") // overflow to +Inf
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejects are fine; panics are not
		}
		// Accepted instances must be internally consistent and re-writable.
		if err := p.Validate(); err != nil {
			t.Fatalf("parser accepted invalid problem: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("writing accepted instance failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted instance failed: %v\n%s", err, buf.String())
		}
		if back.Pipe.N() != p.Pipe.N() || back.Net.N() != p.Net.N() || back.Net.M() != p.Net.M() {
			t.Fatalf("round trip changed dimensions")
		}
	})
}
