package dataset

import (
	"bytes"
	"strings"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

func roundTrip(t *testing.T, p *model.Problem) *model.Problem {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-reading written dataset: %v\n%s", err, buf.String())
	}
	return back
}

func TestRoundTripSmallCase(t *testing.T) {
	p, err := gen.SmallCase().Build()
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, p)
	if back.Src != p.Src || back.Dst != p.Dst {
		t.Error("endpoints lost")
	}
	if back.Pipe.N() != p.Pipe.N() || back.Net.N() != p.Net.N() || back.Net.M() != p.Net.M() {
		t.Error("dimensions lost")
	}
	for j := range p.Pipe.Modules {
		a, b := p.Pipe.Modules[j], back.Pipe.Modules[j]
		if a.ID != b.ID || a.Complexity != b.Complexity || a.InBytes != b.InBytes || a.OutBytes != b.OutBytes {
			t.Errorf("module %d changed: %+v vs %+v", j, a, b)
		}
	}
	for i := range p.Net.Links {
		if p.Net.Links[i] != back.Net.Links[i] {
			t.Errorf("link %d changed", i)
		}
	}
	// Node names become IPs in the text format; power must survive exactly.
	for i := range p.Net.Nodes {
		if p.Net.Nodes[i].Power != back.Net.Nodes[i].Power {
			t.Errorf("node %d power changed", i)
		}
	}
}

func TestRoundTripRandomInstances(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed), 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		back := roundTrip(t, p)
		// Scores computed on the round-tripped instance must be identical.
		if m := firstMapping(t, p); m != nil {
			a := model.TotalDelay(p.Net, p.Pipe, m, p.Cost)
			b := model.TotalDelay(back.Net, back.Pipe, m, back.Cost)
			if a != b {
				t.Errorf("seed %d: delay changed across round trip: %v vs %v", seed, a, b)
			}
		}
	}
}

// firstMapping returns any structurally valid mapping for testing, or nil.
func firstMapping(t *testing.T, p *model.Problem) *model.Mapping {
	t.Helper()
	assign := make([]model.NodeID, p.Pipe.N())
	for j := range assign {
		assign[j] = p.Src
	}
	assign[len(assign)-1] = p.Dst
	m := model.NewMapping(assign)
	if m.Validate(p.Net, p.Pipe, model.ValidateOptions{Src: p.Src, Dst: p.Dst}) != nil {
		return nil
	}
	return m
}

func TestReadUnorderedRecordsAndComments(t *testing.T) {
	text := `
# comment first
destination 1
link 0 0 1 100 0.5
node 1 10.0.0.2 2e6

node 0 10.0.0.1 1e6
module 1 50 1000 0
module 0 0 0 1000
source 0
link 1 1 0 100 0.5
`
	p, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != 0 || p.Dst != 1 || p.Pipe.N() != 2 || p.Net.M() != 2 {
		t.Errorf("parsed instance wrong: %+v", p)
	}
	if p.Net.Nodes[1].Name != "10.0.0.2" {
		t.Errorf("node IP lost: %q", p.Net.Nodes[1].Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown record", "frobnicate 1 2 3\n"},
		{"module arity", "module 0 1\n"},
		{"node arity", "node 0 x\n"},
		{"link arity", "link 0 0 1 5\n"},
		{"bad number", "module 0 abc 1 2\n"},
		{"bad node id", "node x ip 5\n"},
		{"bad source", "source x\n"},
		{"bad destination", "destination 1 2\n"},
		{"missing endpoints", "module 0 0 0 10\nmodule 1 5 10 0\nnode 0 ip 1\nnode 1 ip 1\nlink 0 0 1 5 1\n"},
		{"invalid model", "module 0 0 0 10\nmodule 1 5 99 0\nnode 0 ip 1\nnode 1 ip 1\nlink 0 0 1 5 1\nsource 0\ndestination 1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	p, err := gen.SmallCase().Build()
	if err != nil {
		t.Fatal(err)
	}
	out := AdjacencyMatrix(p.Net, 0)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != p.Net.N()+1 { // header + one row per node
		t.Fatalf("matrix has %d lines", len(lines))
	}
	for i, row := range lines[1:] {
		if len(row) != p.Net.N() {
			t.Errorf("row %d width %d", i, len(row))
		}
		if row[i] != '-' {
			t.Errorf("diagonal of row %d = %c", i, row[i])
		}
	}
	// The small case is complete: no '.' off-diagonal.
	if strings.Contains(out, ".") {
		t.Error("complete graph should have no missing entries")
	}
	// Truncation.
	small := AdjacencyMatrix(p.Net, 3)
	if !strings.Contains(small, "3x3") {
		t.Error("truncated header wrong")
	}
}

func TestAdjacencyMatrixUniformBandwidth(t *testing.T) {
	nodes := []model.Node{{ID: 0, Power: 1}, {ID: 1, Power: 1}}
	links := []model.Link{{ID: 0, From: 0, To: 1, BWMbps: 10}, {ID: 1, From: 1, To: 0, BWMbps: 10}}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	out := AdjacencyMatrix(net, 0)
	if !strings.Contains(out, "5") {
		t.Errorf("uniform bandwidth should use middle glyph:\n%s", out)
	}
}
