package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"elpc/internal/telemetry"
)

// Defaults for Options fields left zero.
const (
	// DefaultFlushInterval bounds how long a committed-but-unsynced record
	// can sit in the OS page cache before the background fsync.
	DefaultFlushInterval = 5 * time.Millisecond
	// DefaultSnapshotRetain keeps the newest snapshot plus one fallback.
	DefaultSnapshotRetain = 2
)

// WAL observability: append volume, fsync batching, and the two recovery
// outcomes (records replayed, torn tails truncated). Registered in the
// process-global registry so the families are present in /metrics even at
// zero, which the metricsgate checklist relies on.
var (
	appendsTotal = telemetry.Default().Counter(
		"elpc_wal_appends_total", "records appended to the write-ahead log")
	fsyncsTotal = telemetry.Default().Counter(
		"elpc_wal_fsyncs_total", "fsync batches issued by the write-ahead log")
	replayedTotal = telemetry.Default().Counter(
		"elpc_wal_replayed_events_total", "records replayed from the log during recovery")
	truncatedTotal = telemetry.Default().Counter(
		"elpc_wal_truncated_tail_total", "torn log tails truncated during recovery")
)

// Options tunes a Log opened with Open.
type Options struct {
	// FlushInterval bounds the delay between a commit and its fsync when
	// Sync is false (zero selects DefaultFlushInterval).
	FlushInterval time.Duration
	// Sync makes Commit wait for fsync instead of just the buffered write:
	// group commit still batches concurrent committers behind one fsync,
	// but every acknowledgment is then durable against power loss, not just
	// process crash. Costs roughly one disk-sync latency per commit batch.
	Sync bool
	// SnapshotRetain keeps this many newest snapshots (zero selects
	// DefaultSnapshotRetain; negative keeps all).
	SnapshotRetain int
}

// Recovery is what Open reconstructed from disk: the newest valid snapshot
// (nil when none) and the log records after it, in order.
type Recovery struct {
	// Snapshot is the newest decodable snapshot, already CRC-verified.
	Snapshot *Snapshot
	// Records are the replay suffix: every record with Seq greater than the
	// snapshot's (all records when Snapshot is nil), ending at the last
	// record before the torn tail, if any.
	Records []Record
	// TruncatedTail reports that a torn or corrupt tail was found and
	// physically truncated from the segment file.
	TruncatedTail bool
}

// ErrClosed is returned by Append/Commit/WriteSnapshot on a closed Log.
var ErrClosed = fmt.Errorf("wal: log closed")

// Log is the append-only, group-committed write-ahead log over a data
// directory. Appends buffer under the log's lock; Commit waits until the
// record has reached the log file via write(2) (and, in Sync mode, fsync),
// with one leader writing each accumulated batch on behalf of all waiters.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	buf     []byte // encoded frames not yet written to f
	nextSeq uint64 // next record sequence number to assign
	bufSeq  uint64 // highest sequence number in buf
	written uint64 // highest sequence number written to f
	synced  uint64 // highest sequence number fsynced
	dirty   bool   // f has writes not yet fsynced
	writing bool   // a leader is inside the write syscall
	snapSeq uint64 // sequence number of the newest snapshot on disk
	closed  bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if needed) the write-ahead log in dir, recovers the
// newest valid snapshot and the replay suffix, truncates any torn tail, and
// returns the log positioned to append after the last durable record.
func Open(dir string, opt Options) (*Log, *Recovery, error) {
	if opt.FlushInterval <= 0 {
		opt.FlushInterval = DefaultFlushInterval
	}
	if opt.SnapshotRetain == 0 {
		opt.SnapshotRetain = DefaultSnapshotRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, nextSeq: 1}
	l.cond = sync.NewCond(&l.mu)

	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}

	l.stopFlush = make(chan struct{})
	l.flushDone = make(chan struct{})
	go l.flushLoop()
	return l, rec, nil
}

// segPrefix/segSuffix name segment files wal-<firstseq>.log; snapshots are
// snap-<seq>.snap.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(firstSeq uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix) }
func snapName(seq uint64) string     { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }
func parseSeq(name, pre, suf string) (uint64, bool) {
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, pre), suf), "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// recover scans dir: picks the newest decodable snapshot, replays every
// segment in order skipping records at or below the snapshot sequence,
// truncates the torn tail at the first corrupt record, and opens the last
// segment for append. Called once from Open, before the flush loop starts.
func (l *Log) recover() (*Recovery, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rec := &Recovery{}
	// Newest decodable snapshot wins; corrupt or partial ones fall back to
	// the next older, and ultimately to pure replay.
	for _, seq := range snaps {
		snap, err := readSnapshot(filepath.Join(l.dir, snapName(seq)))
		if err != nil {
			continue
		}
		rec.Snapshot = snap
		l.snapSeq = snap.Seq
		break
	}

	last := l.snapSeq
	for i, first := range segs {
		path := filepath.Join(l.dir, segName(first))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", path, err)
		}
		recs, clean, decErr := DecodeFrames(data)
		stop := false
		for _, r := range recs {
			if r.Seq <= l.snapSeq {
				continue // compacted into the snapshot already
			}
			if r.Seq != last+1 {
				// A sequence discontinuity means the log lost something the
				// framing could not see; nothing after it is trustworthy.
				stop = true
				break
			}
			rec.Records = append(rec.Records, r)
			last = r.Seq
		}
		if decErr != nil || stop {
			// Torn or corrupt tail: physically truncate this segment at the
			// clean prefix and ignore any later segments entirely.
			if decErr != nil && clean < len(data) {
				if err := os.Truncate(path, int64(clean)); err != nil {
					return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
				}
			}
			for _, laterFirst := range segs[i+1:] {
				os.Remove(filepath.Join(l.dir, segName(laterFirst)))
			}
			rec.TruncatedTail = true
			truncatedTotal.Inc()
			break
		}
	}
	replayedTotal.Add(uint64(len(rec.Records)))

	l.nextSeq = last + 1
	l.written, l.synced = last, last
	// Append into the newest surviving segment, or start a fresh one.
	active := segName(l.nextSeq)
	if len(segs) > 0 {
		newest := segs[0]
		for _, s := range segs {
			if s > newest && s <= l.nextSeq {
				newest = s
			}
		}
		if _, err := os.Stat(filepath.Join(l.dir, segName(newest))); err == nil {
			active = segName(newest)
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", active, err)
	}
	l.f = f
	return rec, nil
}

// Append assigns the next sequence number to rec, encodes and buffers it,
// and returns the sequence number to pass to Commit. The caller appends
// while holding the lock that serializes the recorded state transition, so
// log order always matches application order; the (cheap) buffered append
// keeps that critical section short. On a closed log it returns 0.
func (l *Log) Append(rec *Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	rec.Seq = l.nextSeq
	buf, err := AppendFrame(l.buf, rec)
	if err != nil {
		// A record that cannot encode is a programming error; losing it
		// would silently break replay, so fail loudly.
		panic(err)
	}
	l.buf = buf
	l.nextSeq++
	l.bufSeq = rec.Seq
	appendsTotal.Inc()
	return rec.Seq
}

// Commit blocks until the record with the given sequence number is written
// to the log file (and fsynced, in Sync mode). Concurrent committers elect
// one leader per accumulated batch: the leader performs the single write
// (plus fsync in Sync mode) for everyone buffered so far and wakes the rest
// — classic group commit. A zero lsn (from Append on a closed log) is an
// immediate ErrClosed.
func (l *Log) Commit(lsn uint64) error {
	if lsn == 0 {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.written >= lsn && (!l.opt.Sync || l.synced >= lsn) {
			return nil
		}
		if l.closed {
			return ErrClosed
		}
		if !l.writing && l.bufSeq > l.written {
			l.flushLocked(l.opt.Sync)
			continue
		}
		l.cond.Wait()
	}
}

// flushLocked is the leader path: it takes the accumulated buffer, drops
// the lock for the syscalls, and republishes progress. Callers hold l.mu;
// sync additionally fsyncs the file. Errors surface via panic — a control
// plane that cannot persist acknowledged state must not keep acknowledging.
func (l *Log) flushLocked(sync bool) {
	l.writing = true
	buf, hi := l.buf, l.bufSeq
	l.buf = nil
	f := l.f
	l.mu.Unlock()

	var werr, serr error
	if len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if werr == nil && sync {
		serr = f.Sync()
	}

	l.mu.Lock()
	l.writing = false
	if werr != nil {
		l.cond.Broadcast()
		panic(fmt.Errorf("wal: write segment: %w", werr))
	}
	if hi > l.written {
		l.written = hi
	}
	l.dirty = true
	if sync {
		if serr != nil {
			l.cond.Broadcast()
			panic(fmt.Errorf("wal: fsync segment: %w", serr))
		}
		l.synced = l.written
		l.dirty = false
		fsyncsTotal.Inc()
	}
	l.cond.Broadcast()
}

// flushLoop is the background fsync batcher: every FlushInterval it pushes
// buffered frames to the file and fsyncs anything written-but-unsynced, so
// the window of acknowledged state a power loss can take is bounded.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			if !l.writing && (l.bufSeq > l.written || l.dirty) {
				l.flushLocked(true)
			}
			l.mu.Unlock()
		}
	}
}

// Sync forces everything appended so far to disk (write + fsync).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for l.writing {
		l.cond.Wait()
	}
	if l.bufSeq > l.written || l.dirty {
		l.flushLocked(true)
	}
	return nil
}

// LastSeq returns the sequence number of the last appended record (0 when
// empty). Captured under the callers' state locks, it names the exact log
// position a state snapshot corresponds to.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// SnapshotSeq returns the sequence number of the newest snapshot on disk.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// Dir returns the log's data directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and fsyncs all buffered records, stops the background
// flusher, and closes the segment file. Further Appends return 0 and
// further Commits ErrClosed; callers should quiesce traffic first.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.writing {
		l.cond.Wait()
	}
	if l.bufSeq > l.written || l.dirty {
		l.flushLocked(true)
	}
	l.closed = true
	f := l.f
	l.cond.Broadcast()
	l.mu.Unlock()

	close(l.stopFlush)
	<-l.flushDone
	return f.Close()
}
