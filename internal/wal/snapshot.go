package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ScopeState is one fleet scope's full durable state inside a snapshot:
// residual capacity factors (the cumulative churn the scope has absorbed),
// counters, and every live deployment in admission order.
type ScopeState struct {
	// Scope is "" (plain fleet / shard 0 of 1), "s<i>", or "x".
	Scope string `json:"scope,omitempty"`
	// NodeFactors/LinkFactors are the residual network's capacity factors.
	NodeFactors []float64 `json:"node_factors,omitempty"`
	LinkFactors []float64 `json:"link_factors,omitempty"`
	// Counters is the scope's counter state at the snapshot point.
	Counters Counters `json:"counters"`
	// Deploys lists live deployments in admission (iteration) order.
	Deploys []DeploymentState `json:"deploys,omitempty"`
}

// Snapshot is one compacted full-state checkpoint: everything needed to
// rebuild the manager without replaying the log prefix it covers.
type Snapshot struct {
	// Seq is the log sequence number the snapshot corresponds to: replay
	// after loading it skips records with Seq <= Seq.
	Seq uint64 `json:"seq"`
	// Install reconstructs the manager (network + shard count).
	Install *InstallState `json:"install,omitempty"`
	// Scopes holds per-scope fleet state; Parked the unified parked pool in
	// requeue order; Churn the reconciler counter state.
	Scopes []ScopeState  `json:"scopes,omitempty"`
	Parked []ParkedState `json:"parked,omitempty"`
	Churn  *ChurnState   `json:"churn,omitempty"`
}

// Snapshot file layout: an 8-byte magic, a u32 format version, a u32
// payload length, a u32 IEEE CRC32 of the payload, then the JSON payload.
const (
	snapMagic   = "ELPCSNAP"
	snapVersion = 1
	snapHeader  = 8 + 4 + 4 + 4
)

// WriteSnapshot persists snap and compacts the log around it: the log is
// fsynced through snap.Seq first (so a surviving snapshot always implies
// its covered records survived), the snapshot file is written
// temp-file-then-rename (a crash mid-write leaves no partial artifact that
// recovery could trust), the active segment is rotated, fully-covered old
// segments are deleted, and snapshots beyond the retention bound are pruned.
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("wal: encode snapshot %d: %w", snap.Seq, err)
	}
	hdr := make([]byte, snapHeader)
	copy(hdr[0:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))

	// Durability ordering: the records the snapshot compacts must be on
	// disk before the snapshot becomes visible, or a crash could recover a
	// snapshot "from the future" relative to its own log.
	if err := l.Sync(); err != nil {
		return err
	}

	final := filepath.Join(l.dir, snapName(snap.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for l.writing {
		l.cond.Wait()
	}
	if l.bufSeq > l.written || l.dirty {
		l.flushLocked(true)
	}
	if snap.Seq > l.snapSeq {
		l.snapSeq = snap.Seq
	}
	// Rotate: later records start a fresh segment so the old ones become
	// fully-covered (hence deletable) once a snapshot passes their range.
	next, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate segment: %w", err)
	}
	old := l.f
	l.f = next
	old.Close()
	l.pruneLocked()
	return nil
}

// pruneLocked deletes snapshots beyond the retention bound, then segments
// fully covered by the oldest snapshot still retained — not the newest, so
// every retained fallback snapshot keeps the log suffix it needs to replay
// from (a corrupt newest snapshot degrades recovery, it does not lose
// acknowledged records). Caller holds l.mu. Best-effort: a leftover file is
// re-pruned next time.
func (l *Log) pruneLocked() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	if l.opt.SnapshotRetain > 0 && len(snaps) > l.opt.SnapshotRetain {
		for _, seq := range snaps[l.opt.SnapshotRetain:] {
			os.Remove(filepath.Join(l.dir, snapName(seq)))
		}
		snaps = snaps[:l.opt.SnapshotRetain]
	}
	if len(snaps) == 0 {
		return
	}
	cover := snaps[len(snaps)-1] // oldest retained snapshot
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	// Segment k holds records [firstSeq(k), firstSeq(k+1)); it is deletable
	// when the whole range is compacted into every retained snapshot, i.e.
	// the next segment starts at or below cover+1. The newest segment is
	// never deletable this way.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= cover+1 {
			os.Remove(filepath.Join(l.dir, segName(segs[i])))
		}
	}
}

// readSnapshot loads and verifies one snapshot file: magic, version,
// length, CRC, then the JSON payload. Any mismatch is an error — the caller
// falls back to an older snapshot or pure replay.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < snapHeader || string(data[0:8]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapVersion {
		return nil, fmt.Errorf("wal: %s: unsupported snapshot version %d", path, v)
	}
	n := int(binary.LittleEndian.Uint32(data[12:16]))
	if n != len(data)-snapHeader {
		return nil, fmt.Errorf("wal: %s: snapshot length mismatch", path)
	}
	payload := data[snapHeader:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("wal: %s: decode snapshot: %w", path, err)
	}
	return &snap, nil
}
