// Package wal is the control plane's durability layer: an append-only,
// length-prefixed, CRC32-checksummed on-disk event log with fsync-batched
// group commit, plus periodic compacted snapshots with a versioned header.
//
// Every mutating fleet transition — deploy admitted (including preemptions
// and requeues), release, churn event, repair outcome, rebalance move,
// two-phase commit or abort, shard reconfiguration — is logged as one
// Record before the operation is acknowledged, and on boot the newest
// valid snapshot plus the log suffix replays to the exact pre-crash state.
// A torn tail (a partially-written final record after a crash) is detected
// by the length/checksum framing and truncated at the first bad record;
// everything before it is recovered, everything after it was never
// acknowledged under the log's commit rules.
//
// The package depends only on internal/model so that fleet, churn, and
// service can all import it without cycles.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"elpc/internal/model"
)

// Kind labels what operation produced a Record. Replay is driven by record
// content (the Ops list and state blocks), not by Kind; the label exists so
// logs are greppable and the fuzz corpus is readable.
type Kind string

// Record kinds, one per logged fleet/churn transition.
const (
	// KindInstall records a fleet network install or replacement; replay
	// rebuilds the manager from the embedded InstallState and discards any
	// prior fleet state (installs are only accepted on empty fleets).
	KindInstall Kind = "install"
	// KindDeploy records one admission attempt (including any preemptions
	// it performed); KindBatch records one DeployBatch lock epoch.
	KindDeploy Kind = "deploy"
	KindBatch  Kind = "deploy_batch"
	// KindRelease records a deployment returning its capacity.
	KindRelease Kind = "release"
	// KindChurn records one applied churn batch (capacity mutations).
	KindChurn Kind = "churn"
	// KindRepair records one repair pass; KindRebalance one rebalance pass.
	KindRepair    Kind = "repair"
	KindRebalance Kind = "rebalance"
	// KindChurnState records the reconciler's counter state after a batch.
	KindChurnState Kind = "churn_state"
)

// ScopeChurn is the Record.Scope of reconciler state records. Fleet scopes
// are "" (the unsharded fleet, or shard 0 of a single-shard manager), "s<i>"
// (shard i of a K>1 sharded fleet), and "x" (the cross-region coordinator).
const ScopeChurn = "churn"

// ScopeCross is the coordinator scope of a sharded fleet.
const ScopeCross = "x"

// DeploymentState is the durable form of one admitted deployment — enough
// to rebuild the in-memory Deployment and its reservation exactly, without
// re-running the solver.
type DeploymentState struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Objective, Src, Dst, Pipeline, SLO*, and Cost reproduce the admission
	// request (needed so a recovered deployment can be repaired, rebalanced,
	// or parked-and-requeued later exactly like a live one).
	Objective     int             `json:"objective,omitempty"`
	Src           model.NodeID    `json:"src"`
	Dst           model.NodeID    `json:"dst"`
	Pipeline      *model.Pipeline `json:"pipeline,omitempty"`
	SLOMaxDelayMs float64         `json:"slo_max_delay_ms,omitempty"`
	SLOMinRateFPS float64         `json:"slo_min_rate_fps,omitempty"`
	SLOClass      string          `json:"slo_class,omitempty"`
	CostMLD       bool            `json:"cost_mld,omitempty"`
	// Assignment/Mapping/DelayMs/RateFPS/ReservedFPS snapshot the placement
	// outcome; ResClass is the reservation's SLO class tag exactly as the
	// live path set it (admissions tag it, migrations historically do not).
	Assignment  []model.NodeID `json:"assignment"`
	Mapping     string         `json:"mapping,omitempty"`
	DelayMs     float64        `json:"delay_ms"`
	RateFPS     float64        `json:"rate_fps"`
	ReservedFPS float64        `json:"reserved_fps,omitempty"`
	ResClass    string         `json:"res_class,omitempty"`
	// Seq is the fleet-local admission sequence number embedded in the ID.
	Seq uint64 `json:"seq,omitempty"`
	// RequeueOf names the parked entry this admission drained, so replay
	// removes it from the recovered parked pool.
	RequeueOf string `json:"requeue_of,omitempty"`
	// Update marks a placement change of an existing deployment (repair
	// migration, rebalance move): replay updates the stored deployment in
	// place instead of inserting a new one, and Pipeline is omitted.
	Update bool `json:"update,omitempty"`
}

// ParkedState is the durable form of one parked deployment (repair park or
// preemption victim) — the displaced ID plus the request needed to requeue.
type ParkedState struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	Reason string `json:"reason,omitempty"`
	// The re-admission request.
	Objective     int             `json:"objective,omitempty"`
	Src           model.NodeID    `json:"src"`
	Dst           model.NodeID    `json:"dst"`
	Pipeline      *model.Pipeline `json:"pipeline,omitempty"`
	SLOMaxDelayMs float64         `json:"slo_max_delay_ms,omitempty"`
	SLOMinRateFPS float64         `json:"slo_min_rate_fps,omitempty"`
	SLOClass      string          `json:"slo_class,omitempty"`
	// CostMLD mirrors Request.Cost: nil means the request carried no
	// override and re-admission uses the defaults.
	CostMLD *bool `json:"cost_mld,omitempty"`
}

// Op is one mutation inside a Record, in chronological order. Exactly one
// field is set. Keeping mutations as an ordered list (rather than parallel
// lists per type) matters: a batch can admit a deployment and then preempt
// it later in the same lock epoch, and replay must see those in order.
type Op struct {
	// Deploy inserts (or, with Update set, re-places) a deployment.
	Deploy *DeploymentState `json:"deploy,omitempty"`
	// Remove deletes the deployment with this ID (release, park, preempt).
	Remove string `json:"remove,omitempty"`
	// Park appends a displaced deployment to the parked pool.
	Park *ParkedState `json:"park,omitempty"`
	// Churn applies capacity-mutation events to the scope's residual state.
	Churn []model.ChurnEvent `json:"churn,omitempty"`
}

// Counters is the durable snapshot of one scope's admission counters after
// a record's operations. Counter-only records exist too (rejections, repair
// passes that kept everything): they still changed Rejected or Solves, and
// recovered Stats must be byte-identical.
type Counters struct {
	Admitted      uint64 `json:"admitted,omitempty"`
	Rejected      uint64 `json:"rejected,omitempty"`
	Released      uint64 `json:"released,omitempty"`
	Moves         uint64 `json:"moves,omitempty"`
	Repaired      uint64 `json:"repaired,omitempty"`
	RepairMoves   uint64 `json:"repair_moves,omitempty"`
	ParkEvictions uint64 `json:"park_evictions,omitempty"`
	Preemptions   uint64 `json:"preemptions,omitempty"`
	Solves        uint64 `json:"solves,omitempty"`
	Seq           uint64 `json:"seq,omitempty"`
	// Coordinator-only counters (scope "x").
	Fallbacks  uint64 `json:"fallbacks,omitempty"`
	TPCRetries uint64 `json:"tpc_retries,omitempty"`
	TPCAborts  uint64 `json:"tpc_aborts,omitempty"`
}

// ChurnState is the reconciler's durable counter state, logged after each
// batch so recovered /v1/churn/stats is consistent with the recovered fleet.
type ChurnState struct {
	Seq             int     `json:"seq,omitempty"`
	Batches         uint64  `json:"batches,omitempty"`
	Events          uint64  `json:"events,omitempty"`
	Affected        uint64  `json:"affected,omitempty"`
	Migrated        uint64  `json:"migrated,omitempty"`
	ParkTotal       uint64  `json:"park_total,omitempty"`
	Requeued        uint64  `json:"requeued,omitempty"`
	RequeueAttempts uint64  `json:"requeue_attempts,omitempty"`
	RepairMs        float64 `json:"repair_ms,omitempty"`
	MaxRepairMs     float64 `json:"max_repair_ms,omitempty"`
}

// InstallState is the durable form of a fleet install: the full network and
// the shard count. Sharded partitioning is deterministic from these.
type InstallState struct {
	Network *model.Network `json:"network"`
	Shards  int            `json:"shards,omitempty"`
}

// Record is one durably-logged transition: an ordered list of mutations in
// one scope plus that scope's counter state afterwards. Install and
// reconciler-state records use the dedicated blocks instead of Ops.
type Record struct {
	// Seq is the log-assigned sequence number, monotonic from 1 across
	// segments and snapshots; replay after a snapshot skips Seq <= snapshot.
	Seq   uint64 `json:"seq"`
	Kind  Kind   `json:"kind"`
	Scope string `json:"scope,omitempty"`
	Ops   []Op   `json:"ops,omitempty"`
	// Counters is the scope's counter state after Ops (nil for install and
	// churn-state records).
	Counters *Counters     `json:"counters,omitempty"`
	Install  *InstallState `json:"install,omitempty"`
	Churn    *ChurnState   `json:"churn,omitempty"`
}

// frame layout: u32 LE payload length, u32 LE IEEE CRC32 of the payload,
// then the JSON payload. maxFrame bounds a single record so a corrupt
// length prefix cannot ask the decoder to allocate gigabytes.
const (
	frameHeader = 8
	maxFrame    = 64 << 20
)

// AppendFrame encodes rec as one framed log entry appended to buf and
// returns the extended buffer.
func AppendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("wal: encode record %d: %w", rec.Seq, err)
	}
	if len(payload) > maxFrame {
		return buf, fmt.Errorf("wal: record %d exceeds frame bound (%d bytes)", rec.Seq, len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// errTorn reports that decoding stopped before consuming all input: a short
// header, a short payload, a CRC mismatch, an oversized length prefix, or
// undecodable JSON. It is how crash-truncated tails are detected.
var errTorn = errors.New("wal: torn or corrupt record")

// DecodeFrames decodes consecutive framed records from data. It returns the
// records decoded before the first corruption, the byte offset of the clean
// prefix (the truncation point for a torn tail), and nil error only when the
// entire input decoded cleanly. It never panics on arbitrary input — the
// property the fuzz target holds it to.
func DecodeFrames(data []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off, errTorn
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxFrame || len(data)-off-frameHeader < n {
			return recs, off, errTorn
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, errTorn
		}
		var rec Record
		if jsonErr := json.Unmarshal(payload, &rec); jsonErr != nil {
			return recs, off, errTorn
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, off, nil
}
