package wal

import (
	"testing"
)

// FuzzDecodeFrames holds the record decoder to its recovery contract on
// arbitrary bytes: never panic, decode a clean prefix of whole records,
// report the exact truncation offset, and stop at the first corrupt frame.
// Run with `go test -fuzz=FuzzDecodeFrames ./internal/wal`; the checked-in
// corpus under testdata/ replays in normal `go test` runs (the CI
// recovery-gate job relies on that).
func FuzzDecodeFrames(f *testing.F) {
	// Seed the interesting shapes: empty, a valid single record, a valid
	// pair, a truncated tail, a corrupted checksum, an oversized length
	// prefix, and a non-JSON payload with a matching CRC.
	f.Add([]byte{})
	one, err := AppendFrame(nil, &Record{Seq: 1, Kind: KindDeploy, Ops: []Op{{Remove: "d-000001"}}})
	if err != nil {
		f.Fatal(err)
	}
	two, err := AppendFrame(one, &Record{Seq: 2, Kind: KindRelease, Scope: "s1"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), one...))
	f.Add(append([]byte(nil), two...))
	f.Add(append([]byte(nil), two[:len(two)-3]...))
	corrupt := append([]byte(nil), one...)
	corrupt[frameHeader] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0, 0x0e, 0x3d, 0x91, 0x26, 'h', 'i'}) // valid CRC, invalid JSON

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := DecodeFrames(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		if err == nil && clean != len(data) {
			t.Fatalf("nil error but clean=%d of %d bytes", clean, len(data))
		}
		if err != nil && clean == len(data) {
			t.Fatalf("error %v but the whole input was consumed", err)
		}
		// The clean prefix must re-decode to the same records: recovery
		// truncates at clean and trusts everything before it.
		again, cleanAgain, errAgain := DecodeFrames(data[:clean])
		if errAgain != nil || cleanAgain != clean || len(again) != len(recs) {
			t.Fatalf("clean prefix does not re-decode: %d/%d records, clean %d/%d, err %v",
				len(again), len(recs), cleanAgain, clean, errAgain)
		}
		// And re-encoding each decoded record must produce a decodable frame
		// (round-trip sanity; Seq is preserved by AppendFrame).
		var buf []byte
		for i := range recs {
			buf, err = AppendFrame(buf, &recs[i])
			if err != nil {
				t.Fatalf("re-encode record %d: %v", i, err)
			}
		}
		back, _, err := DecodeFrames(buf)
		if err != nil || len(back) != len(recs) {
			t.Fatalf("re-encoded stream decodes to %d records, err %v", len(back), err)
		}
		for i := range back {
			if back[i].Seq != recs[i].Seq || back[i].Kind != recs[i].Kind {
				t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, back[i], recs[i])
			}
		}
	})
}
