package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// rec builds a minimal distinguishable record for framing tests.
func rec(kind Kind, scope string) *Record {
	return &Record{Kind: kind, Scope: scope, Ops: []Op{{Remove: string(kind)}}}
}

// appendN appends and commits n records, returning the last lsn.
func appendN(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	var lsn uint64
	for i := 0; i < n; i++ {
		lsn = l.Append(rec(KindRelease, ""))
		if lsn == 0 {
			t.Fatalf("append %d returned 0 on an open log", i)
		}
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("commit %d: %v", lsn, err)
	}
	return lsn
}

func TestAppendCommitReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec0, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec0.Snapshot != nil || len(rec0.Records) != 0 || rec0.TruncatedTail {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec0)
	}
	appendN(t, l, 10)
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec1.Records) != 10 || rec1.TruncatedTail {
		t.Fatalf("reopen recovered %d records (torn=%v), want 10 clean", len(rec1.Records), rec1.TruncatedTail)
	}
	for i, r := range rec1.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	// Appends continue after the recovered tail.
	if lsn := l2.Append(rec(KindDeploy, "")); lsn != 11 {
		t.Fatalf("post-recovery append got seq %d, want 11", lsn)
	}
}

func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the clean prefix boundaries of each whole record.
	recs, _, err := DecodeFrames(full)
	if err != nil || len(recs) != 5 {
		t.Fatalf("segment decodes to %d records, err %v", len(recs), err)
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec2, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want, clean, _ := DecodeFrames(full[:cut])
		if len(rec2.Records) != len(want) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec2.Records), len(want))
		}
		if (clean != cut) != rec2.TruncatedTail {
			t.Fatalf("cut %d: TruncatedTail=%v with clean=%d", cut, rec2.TruncatedTail, clean)
		}
		// The torn bytes must be physically gone so a later append cannot
		// create a mid-frame collision.
		data, err := os.ReadFile(filepath.Join(sub, segName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, full[:clean]) {
			t.Fatalf("cut %d: segment not truncated to clean prefix (%d bytes, want %d)", cut, len(data), clean)
		}
		l2.Close()
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the third record: replay must stop cleanly
	// after record 2 and truncate the rest.
	recs, _, _ := DecodeFrames(data)
	_ = recs
	var off int
	for i := 0; i < 2; i++ {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += frameHeader + n
	}
	data[off+frameHeader] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Records) != 2 || !rec2.TruncatedTail {
		t.Fatalf("recovered %d records (torn=%v), want 2 with torn tail", len(rec2.Records), rec2.TruncatedTail)
	}
}

func TestSnapshotCompactionAndRetention(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SnapshotRetain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for snapRound := 1; snapRound <= 3; snapRound++ {
		appendN(t, l, 4)
		snap := &Snapshot{Seq: l.LastSeq(), Install: &InstallState{}}
		if err := l.WriteSnapshot(snap); err != nil {
			t.Fatalf("snapshot %d: %v", snapRound, err)
		}
	}
	appendN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps++
		}
		if _, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs++
		}
	}
	if snaps != 2 {
		t.Fatalf("retained %d snapshots, want 2", snaps)
	}
	if segs > 2 {
		t.Fatalf("retained %d segments after compaction, want <= 2", segs)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Snapshot == nil || rec2.Snapshot.Seq != 12 {
		t.Fatalf("recovered snapshot %+v, want seq 12", rec2.Snapshot)
	}
	if len(rec2.Records) != 2 {
		t.Fatalf("replay suffix has %d records, want 2", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(13+i) {
			t.Fatalf("suffix record %d has seq %d", i, r.Seq)
		}
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SnapshotRetain: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	if err := l.WriteSnapshot(&Snapshot{Seq: 2, Install: &InstallState{}}); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	if err := l.WriteSnapshot(&Snapshot{Seq: 4, Install: &InstallState{}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload: recovery must fall back to the
	// older one and replay records 3..4 from the (still retained) segments.
	newest := filepath.Join(dir, snapName(4))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Snapshot == nil || rec2.Snapshot.Seq != 2 {
		t.Fatalf("recovered snapshot %+v, want fallback to seq 2", rec2.Snapshot)
	}
	if len(rec2.Records) != 2 {
		t.Fatalf("replay suffix has %d records, want 2", len(rec2.Records))
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if lsn := l.Append(rec(KindDeploy, "")); lsn != 0 {
		t.Fatalf("append on closed log returned %d, want 0", lsn)
	}
	if err := l.Commit(0); err != ErrClosed {
		t.Fatalf("commit(0) = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("sync on closed log = %v, want ErrClosed", err)
	}
}

func TestSyncModeCommitDurable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.Append(rec(KindDeploy, ""))
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// In Sync mode the record must be on disk the moment Commit returns —
	// readable by a second decoder without closing the log.
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := DecodeFrames(data)
	if err != nil || len(recs) != 1 {
		t.Fatalf("decoded %d records, err %v; want 1 durable record", len(recs), err)
	}
	l.Close()
}
