// Package refine implements the paper's Section 5 future-work extension:
// maximizing frame rate when node reuse is allowed. With reuse, a resource
// may serve several pipeline stages per frame, so the steady-state period is
// the shared-resource bottleneck (model.SharedBottleneck) rather than Eq. 2,
// and the clean DP structure of ELPC no longer applies (the objective
// becomes history-dependent). We therefore use multi-seed hill climbing:
// seed mappings come from the ELPC algorithms, and single-module
// reassignment moves descend the shared bottleneck until a local optimum.
//
// The discrete-event simulator (internal/sim) independently confirms that
// the shared bottleneck is the achievable period for reuse mappings, so the
// objective being climbed is the physically meaningful one.
package refine

import (
	"fmt"
	"math"

	"elpc/internal/core"
	"elpc/internal/model"
)

// Options tunes the local search.
type Options struct {
	// MaxPasses bounds full improvement sweeps per seed; 0 means
	// DefaultMaxPasses.
	MaxPasses int
	// ExtraSeeds are additional starting mappings (each must be valid for
	// the problem with reuse allowed).
	ExtraSeeds []*model.Mapping
}

// DefaultMaxPasses is the default sweep budget per seed.
const DefaultMaxPasses = 64

// MaxFrameRateWithReuse searches for a mapping minimizing the shared
// bottleneck period, with node reuse permitted. Unlike the no-reuse problem
// it remains feasible when the pipeline is longer than the longest simple
// path (including pipelines with more modules than the network has nodes).
//
// It returns the best mapping found and its shared bottleneck period in ms.
func MaxFrameRateWithReuse(p *model.Problem, opt Options) (*model.Mapping, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	passes := opt.MaxPasses
	if passes <= 0 {
		passes = DefaultMaxPasses
	}

	var seeds []*model.Mapping
	if m, err := core.MinDelay(p); err == nil {
		seeds = append(seeds, m)
	}
	if m, err := core.MaxFrameRate(p); err == nil {
		seeds = append(seeds, m)
	}
	for _, m := range opt.ExtraSeeds {
		if err := m.Validate(p.Net, p.Pipe, model.ValidateOptions{Src: p.Src, Dst: p.Dst}); err != nil {
			return nil, 0, fmt.Errorf("refine: invalid extra seed: %w", err)
		}
		seeds = append(seeds, m)
	}
	if len(seeds) == 0 {
		return nil, 0, fmt.Errorf("refine: no feasible seed mapping: %w", model.ErrInfeasible)
	}

	best := math.Inf(1)
	var bestMapping *model.Mapping
	for _, seed := range seeds {
		m, v := climb(p, seed, passes)
		if v < best {
			best = v
			bestMapping = m
		}
	}
	return bestMapping, best, nil
}

// climb performs steepest-descent sweeps of single-module reassignments.
func climb(p *model.Problem, seed *model.Mapping, maxPasses int) (*model.Mapping, float64) {
	n := p.Pipe.N()
	k := p.Net.N()
	assign := append([]model.NodeID(nil), seed.Assign...)
	cur := model.SharedBottleneck(p.Net, p.Pipe, &model.Mapping{Assign: assign})

	compatible := func(jPrev, jNext model.NodeID, v model.NodeID) bool {
		if v != jPrev {
			if _, ok := p.Net.LinkBetween(jPrev, v); !ok {
				return false
			}
		}
		if v != jNext {
			if _, ok := p.Net.LinkBetween(v, jNext); !ok {
				return false
			}
		}
		return true
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for j := 1; j < n-1; j++ {
			prev, next := assign[j-1], assign[j+1]
			orig := assign[j]
			bestV, bestVal := orig, cur
			for v := 0; v < k; v++ {
				nv := model.NodeID(v)
				if nv == orig || !compatible(prev, next, nv) {
					continue
				}
				assign[j] = nv
				val := model.SharedBottleneck(p.Net, p.Pipe, &model.Mapping{Assign: assign})
				if val < bestVal {
					bestV, bestVal = nv, val
				}
			}
			assign[j] = bestV
			if bestV != orig {
				cur = bestVal
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return model.NewMapping(assign), cur
}

// Mapper adapts the reuse extension to the model.Mapper interface. It only
// supports the MaxFrameRate objective (scored by shared bottleneck).
type Mapper struct {
	Opt Options
}

var _ model.Mapper = Mapper{}

// Name implements model.Mapper.
func (Mapper) Name() string { return "ELPC+Reuse" }

// Map implements model.Mapper.
func (r Mapper) Map(p *model.Problem, obj model.Objective) (*model.Mapping, error) {
	if obj != model.MaxFrameRate {
		return nil, fmt.Errorf("refine: Mapper supports only MaxFrameRate: %w", model.ErrInfeasible)
	}
	m, _, err := MaxFrameRateWithReuse(p, r.Opt)
	return m, err
}
