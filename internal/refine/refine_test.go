package refine_test

import (
	"errors"
	"math"
	"testing"

	"elpc/internal/core"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/refine"
	"elpc/internal/sim"
)

func buildProblem(t *testing.T, powers []float64, links [][4]float64, srcOut float64, stages [][2]float64, src, dst model.NodeID) *model.Problem {
	t.Helper()
	nodes := make([]model.Node, len(powers))
	for i, p := range powers {
		nodes[i] = model.Node{ID: model.NodeID(i), Power: p}
	}
	ls := make([]model.Link, len(links))
	for i, l := range links {
		ls[i] = model.Link{ID: i, From: model.NodeID(l[0]), To: model.NodeID(l[1]), BWMbps: l[2], MLDms: l[3]}
	}
	net, err := model.NewNetwork(nodes, ls)
	if err != nil {
		t.Fatal(err)
	}
	mods := []model.Module{{ID: 0, OutBytes: srcOut}}
	prev := srcOut
	for i, s := range stages {
		mods = append(mods, model.Module{ID: i + 1, Complexity: s[0], InBytes: prev, OutBytes: s[1]})
		prev = s[1]
	}
	pl, err := model.NewPipeline(mods)
	if err != nil {
		t.Fatal(err)
	}
	return &model.Problem{Net: net, Pipe: pl, Src: src, Dst: dst, Cost: model.DefaultCostOptions()}
}

// TestReuseFeasibleWhenNoReuseIsNot: 5 modules on a 3-node network is
// infeasible without reuse but solvable with it — the motivating case for
// the extension.
func TestReuseFeasibleWhenNoReuseIsNot(t *testing.T) {
	p := buildProblem(t,
		[]float64{1000, 2000, 1000},
		[][4]float64{{0, 1, 80, 1}, {1, 2, 80, 1}, {1, 0, 80, 1}, {2, 1, 80, 1}},
		1000,
		[][2]float64{{1, 1000}, {1, 1000}, {1, 1000}, {1, 0}},
		0, 2)
	if _, err := core.MaxFrameRate(p); !errors.Is(err, model.ErrInfeasible) {
		t.Fatalf("no-reuse should be infeasible: %v", err)
	}
	m, period, err := refine.MaxFrameRateWithReuse(p, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(p.Net, p.Pipe, model.ValidateOptions{Src: 0, Dst: 2}); err != nil {
		t.Fatalf("invalid reuse mapping: %v", err)
	}
	if math.IsInf(period, 1) || period <= 0 {
		t.Fatalf("period = %v", period)
	}
	if got := model.SharedBottleneck(p.Net, p.Pipe, m); math.Abs(got-period) > 1e-9 {
		t.Errorf("reported period %v != evaluated %v", period, got)
	}
}

// TestClimbImprovesOnSeed: hill climbing must never return something worse
// than the best seed, and on random instances it should strictly improve a
// meaningful fraction of the time.
func TestClimbImprovesOnSeed(t *testing.T) {
	improved, total := 0, 0
	for seed := uint64(0); seed < 60; seed++ {
		p, err := gen.RandomTinyProblem(gen.RNG(seed+4242), 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		seedBest := math.Inf(1)
		if m, err := core.MinDelay(p); err == nil {
			if v := model.SharedBottleneck(p.Net, p.Pipe, m); v < seedBest {
				seedBest = v
			}
		}
		if m, err := core.MaxFrameRate(p); err == nil {
			if v := model.SharedBottleneck(p.Net, p.Pipe, m); v < seedBest {
				seedBest = v
			}
		}
		if math.IsInf(seedBest, 1) {
			continue
		}
		m, period, err := refine.MaxFrameRateWithReuse(p, refine.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Validate(p.Net, p.Pipe, model.ValidateOptions{Src: p.Src, Dst: p.Dst}); err != nil {
			t.Fatalf("seed %d: invalid mapping: %v", seed, err)
		}
		total++
		if period > seedBest+1e-9 {
			t.Errorf("seed %d: refined period %v worse than seed %v", seed, period, seedBest)
		}
		if period < seedBest-1e-9 {
			improved++
		}
	}
	if total == 0 {
		t.Fatal("no instances tested")
	}
	t.Logf("refinement improved %d/%d instances", improved, total)
}

// TestRefinedPeriodIsAchievable: the DES must sustain the claimed period.
func TestRefinedPeriodIsAchievable(t *testing.T) {
	p, err := gen.RandomTinyProblem(gen.RNG(777), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, period, err := refine.MaxFrameRateWithReuse(p, refine.Options{})
	if err != nil {
		t.Skip("instance infeasible even with reuse")
	}
	res, err := sim.Simulate(p, m, sim.Config{Frames: 300})
	if err != nil {
		t.Fatal(err)
	}
	if sim.RelativeError(res.SteadyPeriod, period) > 1e-6 {
		t.Errorf("simulated period %v != refined period %v", res.SteadyPeriod, period)
	}
}

func TestExtraSeedsAndErrors(t *testing.T) {
	p := buildProblem(t,
		[]float64{1000, 2000, 1000},
		[][4]float64{{0, 1, 80, 1}, {1, 2, 80, 1}, {1, 0, 80, 1}, {2, 1, 80, 1}},
		1000,
		[][2]float64{{1, 1000}, {1, 0}},
		0, 2)
	good := model.NewMapping([]model.NodeID{0, 1, 2})
	if _, _, err := refine.MaxFrameRateWithReuse(p, refine.Options{ExtraSeeds: []*model.Mapping{good}}); err != nil {
		t.Errorf("extra seed rejected: %v", err)
	}
	bad := model.NewMapping([]model.NodeID{0, 2, 2})
	if _, _, err := refine.MaxFrameRateWithReuse(p, refine.Options{ExtraSeeds: []*model.Mapping{bad}}); err == nil {
		t.Error("invalid extra seed should error")
	}
	if _, _, err := refine.MaxFrameRateWithReuse(&model.Problem{}, refine.Options{}); err == nil {
		t.Error("invalid problem should error")
	}
}

func TestRefineMapperInterface(t *testing.T) {
	var m model.Mapper = refine.Mapper{}
	if m.Name() != "ELPC+Reuse" {
		t.Errorf("Name = %q", m.Name())
	}
	p, err := gen.RandomTinyProblem(gen.RNG(31), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(p, model.MinDelay); err == nil {
		t.Error("MinDelay objective should be rejected")
	}
	if mm, err := m.Map(p, model.MaxFrameRate); err == nil {
		if err := mm.Validate(p.Net, p.Pipe, model.ValidateOptions{Src: p.Src, Dst: p.Dst}); err != nil {
			t.Error(err)
		}
	}
}

// TestInfeasibleEvenWithReuse: destination unreachable entirely.
func TestInfeasibleEvenWithReuse(t *testing.T) {
	// 0 -> 1 one-way; dst 0 from src 1 unreachable... build: src 0, dst 2
	// where 2 has no in-links is impossible under strong connectivity, so
	// hand-build a weak network.
	nodes := []model.Node{{ID: 0, Power: 100}, {ID: 1, Power: 100}, {ID: 2, Power: 100}}
	links := []model.Link{
		{ID: 0, From: 0, To: 1, BWMbps: 8, MLDms: 1},
		{ID: 1, From: 2, To: 0, BWMbps: 8, MLDms: 1},
	}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := model.NewPipeline([]model.Module{
		{ID: 0, OutBytes: 100},
		{ID: 1, Complexity: 1, InBytes: 100, OutBytes: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &model.Problem{Net: net, Pipe: pl, Src: 0, Dst: 2, Cost: model.DefaultCostOptions()}
	if _, _, err := refine.MaxFrameRateWithReuse(p, refine.Options{}); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
