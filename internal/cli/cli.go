// Package cli implements the elpc command-line tool (cmd/elpc): instance
// generation, mapping, simulation, and network measurement as composable
// subcommands over JSON instance files. The logic lives here rather than in
// package main so it is unit-testable.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"elpc/internal/baseline"
	"elpc/internal/core"
	"elpc/internal/dataset"
	"elpc/internal/gen"
	"elpc/internal/measure"
	"elpc/internal/model"
	"elpc/internal/refine"
	"elpc/internal/service"
	"elpc/internal/sim"
	"elpc/internal/viz"
)

// Env bundles the I/O environment so tests can capture output.
type Env struct {
	Stdout io.Writer
	Stderr io.Writer
}

// Main dispatches the subcommand. args excludes the program name.
func Main(env Env, args []string) error {
	if len(args) == 0 {
		usage(env.Stderr)
		return errors.New("missing subcommand")
	}
	switch args[0] {
	case "gen":
		return cmdGen(env, args[1:])
	case "map":
		return cmdMap(env, args[1:])
	case "simulate":
		return cmdSimulate(env, args[1:])
	case "probe":
		return cmdProbe(env, args[1:])
	case "show":
		return cmdShow(env, args[1:])
	case "serve":
		return cmdServe(env, args[1:])
	case "help", "-h", "--help":
		usage(env.Stdout)
		return nil
	default:
		usage(env.Stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `elpc — pipeline mapping over distributed networks (IPDPS'08 reproduction)

Subcommands:
  gen       generate a random problem instance (JSON or the paper's text format)
  map       map a pipeline onto a network with a chosen algorithm
  simulate  replay a mapping in the discrete-event simulator
  probe     estimate a network's link/node parameters by synthetic probing
  show      summarize an instance (dimensions, adjacency matrix)
  serve     run the elpcd HTTP/JSON planning service
  help      show this message

Instance files ending in .txt use the paper's dataset format (module/node/
link parameter records); anything else is JSON.

Run 'elpc <subcommand> -h' for flags.
`)
}

// instance is the on-disk JSON bundle produced by gen and consumed by map.
type instance struct {
	Network  *model.Network  `json:"network"`
	Pipeline *model.Pipeline `json:"pipeline"`
	Src      model.NodeID    `json:"src"`
	Dst      model.NodeID    `json:"dst"`
}

func writeJSON(path string, v any, stdout io.Writer) error {
	var w io.Writer = stdout
	var f *os.File
	if path != "" && path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func readInstance(path string) (*model.Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".txt") {
		p, err := dataset.Read(strings.NewReader(string(data)))
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return p, nil
	}
	var inst instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	p := &model.Problem{
		Net:  inst.Network,
		Pipe: inst.Pipeline,
		Src:  inst.Src,
		Dst:  inst.Dst,
		Cost: model.DefaultCostOptions(),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// writeInstance writes in the format implied by the path extension.
func writeInstance(path string, p *model.Problem, stdout io.Writer) error {
	if strings.HasSuffix(path, ".txt") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return dataset.Write(f, p)
	}
	return writeJSON(path, instance{Network: p.Net, Pipeline: p.Pipe, Src: p.Src, Dst: p.Dst}, stdout)
}

func cmdGen(env Env, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	modules := fs.Int("modules", 8, "pipeline modules (>= 2)")
	nodes := fs.Int("nodes", 12, "network nodes")
	links := fs.Int("links", 48, "directed links")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "-", "output file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := gen.CaseSpec{ID: 0, Modules: *modules, Nodes: *nodes, Links: *links, Seed: *seed}
	p, err := gen.Problem(spec, gen.DefaultRanges(), gen.RNG(*seed))
	if err != nil {
		return err
	}
	return writeInstance(*out, p, env.Stdout)
}

func cmdShow(env Env, args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	in := fs.String("i", "", "instance file (required)")
	matrixMax := fs.Int("matrix", 40, "max nodes to render in the adjacency matrix (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("show: -i instance file is required")
	}
	p, err := readInstance(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(env.Stdout, "pipeline: %d modules, total %.3g ops\n", p.Pipe.N(), p.Pipe.TotalOps())
	for _, m := range p.Pipe.Modules {
		fmt.Fprintf(env.Stdout, "  M%-3d c=%-8.4g in=%-10.4g out=%-10.4g %s\n",
			m.ID, m.Complexity, m.InBytes, m.OutBytes, m.Name)
	}
	fmt.Fprintf(env.Stdout, "network: %d nodes, %d links | source v%d -> destination v%d\n",
		p.Net.N(), p.Net.M(), p.Src, p.Dst)
	fmt.Fprint(env.Stdout, dataset.AdjacencyMatrix(p.Net, *matrixMax))
	return nil
}

// algoByName resolves the algorithm flag.
func algoByName(name string) (model.Mapper, error) {
	switch strings.ToLower(name) {
	case "elpc":
		return core.Mapper{}, nil
	case "streamline":
		return baseline.Streamline{}, nil
	case "greedy":
		return baseline.Greedy{}, nil
	case "brute":
		return baseline.Brute{}, nil
	case "elpc+reuse", "reuse":
		return refine.Mapper{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want elpc, streamline, greedy, brute, or elpc+reuse)", name)
	}
}

func objectiveByName(name string) (model.Objective, error) {
	switch strings.ToLower(name) {
	case "delay", "min-delay":
		return model.MinDelay, nil
	case "rate", "framerate", "max-frame-rate":
		return model.MaxFrameRate, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want delay or rate)", name)
	}
}

func cmdMap(env Env, args []string) error {
	fs := flag.NewFlagSet("map", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	in := fs.String("i", "", "instance JSON file (required)")
	algo := fs.String("algo", "elpc", "algorithm: elpc, streamline, greedy, brute, elpc+reuse")
	obj := fs.String("objective", "delay", "objective: delay or rate")
	dot := fs.String("dot", "", "write a Graphviz DOT rendering to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("map: -i instance file is required")
	}
	p, err := readInstance(*in)
	if err != nil {
		return err
	}
	mapper, err := algoByName(*algo)
	if err != nil {
		return err
	}
	objective, err := objectiveByName(*obj)
	if err != nil {
		return err
	}
	m, err := mapper.Map(p, objective)
	if err != nil {
		return err
	}
	if err := viz.MappingText(env.Stdout, p, m); err != nil {
		return err
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.MappingDot(f, p, m, fmt.Sprintf("%s %s", *algo, *obj)); err != nil {
			return err
		}
	}
	return nil
}

func cmdSimulate(env Env, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	in := fs.String("i", "", "instance JSON file (required)")
	algo := fs.String("algo", "elpc", "algorithm: elpc, streamline, greedy, brute, elpc+reuse")
	obj := fs.String("objective", "rate", "objective: delay or rate")
	frames := fs.Int("frames", 200, "frames to stream")
	pace := fs.Float64("pace", 0, "inter-arrival time in ms (0 = saturated source)")
	gantt := fs.Int("gantt", -1, "render a resource Gantt chart of the first N frames (-1 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("simulate: -i instance file is required")
	}
	p, err := readInstance(*in)
	if err != nil {
		return err
	}
	mapper, err := algoByName(*algo)
	if err != nil {
		return err
	}
	objective, err := objectiveByName(*obj)
	if err != nil {
		return err
	}
	m, err := mapper.Map(p, objective)
	if err != nil {
		return err
	}
	res, err := sim.Simulate(p, m, sim.Config{Frames: *frames, InterArrivalMs: *pace, Trace: *gantt >= 0})
	if err != nil {
		return err
	}
	fmt.Fprintf(env.Stdout, "mapping: %s\n", m)
	fmt.Fprintf(env.Stdout, "first frame delay: %.3f ms (Eq.1 predicts %.3f)\n",
		res.FirstFrameDelay, sim.PredictDelay(p, m))
	if res.SteadyPeriod > 0 {
		fmt.Fprintf(env.Stdout, "steady period: %.3f ms => %.2f fps (Eq.2 bottleneck predicts %.3f ms)\n",
			res.SteadyPeriod, res.MeasuredRate(), sim.PredictPeriod(p, m))
	}
	fmt.Fprintf(env.Stdout, "makespan: %.3f ms over %d frames (%d events)\n",
		res.MakeSpan, *frames, res.Events)
	if *gantt >= 0 {
		if err := sim.WriteGantt(env.Stdout, res.Trace, *gantt, 100); err != nil {
			return err
		}
	}
	return nil
}

// cmdServe runs the elpcd planning service (also reachable as cmd/elpcd).
func cmdServe(env Env, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 0, "solution cache capacity (0 = default, negative = disabled)")
	shards := fs.Int("shards", 0, "cache shards (0 = default)")
	timeout := fs.Duration("timeout", 0, "per-request solve timeout (0 = none)")
	points := fs.Int("points", 0, "default Pareto sweep resolution for /v1/front (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM (0 = wait indefinitely)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	slowMs := fs.Duration("slow-ms", 0, "log requests slower than this threshold via slog (0 = disabled)")
	traces := fs.Int("traces", 0, "slowest request traces retained for GET /v1/traces (0 = default)")
	journalCap := fs.Int("journal", 0, "event-journal capacity for GET /v1/journal and per-deployment timelines (0 = default)")
	intake := fs.Int("intake", 0, "admission intake-queue bound; best-effort deploys over it are shed with 429 (0 = default 64, negative = shed all best-effort traffic)")
	dataDir := fs.String("data", "", "durable control-plane directory: WAL + snapshots; fleet state is recovered from it on boot (empty = in-memory only)")
	snapEvery := fs.Int("snapshot-every", 0, "WAL records between compacted snapshots (0 = default 1024)")
	snapRetain := fs.Int("snapshot-retain", 0, "snapshots (and covered WAL segments) kept on disk (0 = default 2)")
	walSync := fs.Bool("wal-sync", false, "fsync the WAL before every acknowledgment instead of batched group commit (power-loss durable, much slower)")
	validate := fs.Bool("validate", false, "print the resolved configuration as JSON and exit without listening")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return errors.New("serve: -addr must not be empty")
	}
	opt := service.Options{
		Workers:         *workers,
		CacheCapacity:   *cacheCap,
		CacheShards:     *shards,
		SolveTimeout:    *timeout,
		FrontPoints:     *points,
		EnablePprof:     *pprofOn,
		SlowRequest:     *slowMs,
		TraceCapacity:   *traces,
		JournalCapacity: *journalCap,
		IntakeBound:     *intake,
		DataDir:         *dataDir,
		SnapshotEvery:   *snapEvery,
		SnapshotRetain:  *snapRetain,
		WALSync:         *walSync,
	}
	if *validate {
		resolved := opt.Normalized()
		return writeJSON("-", struct {
			Addr    string          `json:"addr"`
			Options service.Options `json:"options"`
		}{Addr: *addr, Options: resolved}, env.Stdout)
	}
	fmt.Fprintf(env.Stderr, "elpcd listening on %s (POST /v1/mindelay /v1/maxframerate /v1/front /v1/simulate /v1/batch /v1/fleet/* /v1/events, GET /v1/fleet /v1/events/log /v1/journal /v1/health /v1/debug/dump /v1/stats /v1/traces /metrics /healthz; SIGQUIT writes a debug dump)\n", *addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := service.Run(ctx, *addr, opt, *drain)
	if ctx.Err() != nil && err == nil {
		fmt.Fprintln(env.Stderr, "elpcd: signal received, drained and shut down")
	}
	return err
}

func cmdProbe(env Env, args []string) error {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	in := fs.String("i", "", "instance JSON file (required)")
	noise := fs.Float64("noise", 0.5, "probe timing noise stddev in ms")
	repeats := fs.Int("repeats", 8, "probes per payload size")
	seed := fs.Uint64("seed", 1, "noise seed")
	out := fs.String("o", "-", "output file for the estimated instance (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("probe: -i instance file is required")
	}
	p, err := readInstance(*in)
	if err != nil {
		return err
	}
	est, err := measure.EstimateNetwork(p.Net, measure.ProbeConfig{
		Sizes:    measure.DefaultProbeSizes(),
		Repeats:  *repeats,
		NoiseStd: *noise,
		Rng:      gen.RNG(*seed),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(env.Stderr, "estimated %d nodes and %d links\n", est.N(), est.M())
	return writeJSON(*out, instance{Network: est, Pipeline: p.Pipe, Src: p.Src, Dst: p.Dst}, env.Stdout)
}
