package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := Main(Env{Stdout: &out, Stderr: &errb}, args)
	return out.String(), errb.String(), err
}

func genInstance(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	_, _, err := runCLI(t, "gen", "-modules", "6", "-nodes", "10", "-links", "40", "-seed", "3", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageAndErrors(t *testing.T) {
	if _, _, err := runCLI(t); err == nil {
		t.Error("no subcommand should error")
	}
	if _, _, err := runCLI(t, "bogus"); err == nil {
		t.Error("unknown subcommand should error")
	}
	out, _, err := runCLI(t, "help")
	if err != nil || !strings.Contains(out, "Subcommands") {
		t.Errorf("help output wrong: %v %q", err, out)
	}
}

func TestGenWritesValidInstance(t *testing.T) {
	path := genInstance(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"network"`, `"pipeline"`, `"src"`, `"dst"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("instance missing %s", want)
		}
	}
	p, err := readInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pipe.N() != 6 || p.Net.N() != 10 || p.Net.M() != 40 {
		t.Errorf("instance dims wrong: %d modules, %d nodes, %d links", p.Pipe.N(), p.Net.N(), p.Net.M())
	}
}

func TestGenToStdout(t *testing.T) {
	out, _, err := runCLI(t, "gen", "-modules", "4", "-nodes", "6", "-links", "20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"network"`) {
		t.Error("stdout instance missing network")
	}
}

func TestGenInvalidSpec(t *testing.T) {
	if _, _, err := runCLI(t, "gen", "-modules", "1"); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestMapAllAlgorithms(t *testing.T) {
	path := genInstance(t)
	for _, algo := range []string{"elpc", "streamline", "greedy", "brute", "elpc+reuse"} {
		obj := "delay"
		if algo == "elpc+reuse" {
			obj = "rate"
		}
		out, _, err := runCLI(t, "map", "-i", path, "-algo", algo, "-objective", obj)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if !strings.Contains(out, "mapping:") || !strings.Contains(out, "total delay") {
			t.Errorf("%s: output missing mapping report:\n%s", algo, out)
		}
	}
}

func TestMapRateObjective(t *testing.T) {
	path := genInstance(t)
	out, _, err := runCLI(t, "map", "-i", path, "-algo", "elpc", "-objective", "rate")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "frame rate") {
		t.Error("rate output missing frame rate")
	}
}

func TestMapWritesDot(t *testing.T) {
	path := genInstance(t)
	dot := filepath.Join(t.TempDir(), "m.dot")
	if _, _, err := runCLI(t, "map", "-i", path, "-dot", dot); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("dot file malformed")
	}
}

func TestMapErrors(t *testing.T) {
	path := genInstance(t)
	if _, _, err := runCLI(t, "map"); err == nil {
		t.Error("missing -i should error")
	}
	if _, _, err := runCLI(t, "map", "-i", "/nonexistent.json"); err == nil {
		t.Error("missing file should error")
	}
	if _, _, err := runCLI(t, "map", "-i", path, "-algo", "nope"); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, _, err := runCLI(t, "map", "-i", path, "-objective", "nope"); err == nil {
		t.Error("unknown objective should error")
	}
	// Corrupt instance file.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "map", "-i", bad); err == nil {
		t.Error("corrupt instance should error")
	}
}

func TestSimulateReportsPredictions(t *testing.T) {
	path := genInstance(t)
	out, _, err := runCLI(t, "simulate", "-i", path, "-frames", "50")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"first frame delay", "steady period", "makespan", "Eq.1", "Eq.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("simulate output missing %q:\n%s", want, out)
		}
	}
	if _, _, err := runCLI(t, "simulate"); err == nil {
		t.Error("missing -i should error")
	}
}

func TestSimulatePaced(t *testing.T) {
	path := genInstance(t)
	out, _, err := runCLI(t, "simulate", "-i", path, "-frames", "40", "-pace", "500", "-objective", "delay")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "steady period: 500.000") {
		t.Errorf("paced simulation should clock at the pace:\n%s", out)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	path := genInstance(t)
	estPath := filepath.Join(t.TempDir(), "est.json")
	_, errOut, err := runCLI(t, "probe", "-i", path, "-o", estPath, "-noise", "0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "estimated") {
		t.Error("probe progress message missing")
	}
	p, err := readInstance(estPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Net.N() != 10 || p.Net.M() != 40 {
		t.Error("estimated instance changed topology")
	}
	// The estimated instance is directly mappable.
	if _, _, err := runCLI(t, "map", "-i", estPath); err != nil {
		t.Error(err)
	}
	if _, _, err := runCLI(t, "probe"); err == nil {
		t.Error("missing -i should error")
	}
}

func TestTextFormatRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "inst.txt")
	if _, _, err := runCLI(t, "gen", "-modules", "5", "-nodes", "8", "-links", "30", "-seed", "4", "-o", txt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module ", "node ", "link ", "source ", "destination "} {
		if !strings.Contains(string(data), want) {
			t.Errorf("text instance missing %q record", want)
		}
	}
	// Text instances are directly mappable and showable.
	out, _, err := runCLI(t, "map", "-i", txt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total delay") {
		t.Error("map on text instance produced no report")
	}
	show, _, err := runCLI(t, "show", "-i", txt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline: 5 modules", "network: 8 nodes", "adjacency"} {
		if !strings.Contains(show, want) {
			t.Errorf("show output missing %q:\n%s", want, show)
		}
	}
}

func TestShowErrors(t *testing.T) {
	if _, _, err := runCLI(t, "show"); err == nil {
		t.Error("missing -i should error")
	}
	if _, _, err := runCLI(t, "show", "-i", "/nonexistent.txt"); err == nil {
		t.Error("missing file should error")
	}
}

func TestSimulateGantt(t *testing.T) {
	path := genInstance(t)
	out, _, err := runCLI(t, "simulate", "-i", path, "-frames", "20", "-gantt", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gantt:") || !strings.Contains(out, "node v") {
		t.Errorf("gantt output missing:\n%s", out)
	}
}
