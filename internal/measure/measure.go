// Package measure reproduces the paper's performance-estimation substrate
// (Section 1, refs [13][14]): in the real system, link bandwidth and minimum
// link delay are estimated by active traffic measurement fitted with a
// linear regression, and module processing times by profiling on target
// hosts. The authors' testbed is not available, so probing is synthetic —
// the true cost model plus configurable Gaussian noise — which exercises the
// identical estimation code path (probe → least squares → model parameters);
// see DESIGN.md's substitution table.
package measure

import (
	"fmt"
	"math/rand/v2"

	"elpc/internal/model"
	"elpc/internal/stats"
)

// Sample is one active measurement: a payload size and the observed
// transfer (or compute) time.
type Sample struct {
	X  float64 // bytes for links; operations for nodes
	Ms float64 // observed duration
}

// ProbeConfig controls synthetic probing.
type ProbeConfig struct {
	// Sizes are the probe payload sizes in bytes (for links) or operation
	// counts (for nodes). Must contain at least two distinct values.
	Sizes []float64
	// Repeats is the number of probes per size (>= 1).
	Repeats int
	// NoiseStd is the standard deviation of additive Gaussian timing noise
	// in ms. Negative observations are clamped to 0.
	NoiseStd float64
	// Rng drives the noise; required when NoiseStd > 0.
	Rng *rand.Rand
}

func (c ProbeConfig) validate() error {
	if len(c.Sizes) < 2 {
		return fmt.Errorf("measure: need >= 2 probe sizes, got %d", len(c.Sizes))
	}
	distinct := false
	for _, s := range c.Sizes[1:] {
		if s != c.Sizes[0] {
			distinct = true
			break
		}
	}
	if !distinct {
		return fmt.Errorf("measure: probe sizes must not all be equal")
	}
	if c.Repeats < 1 {
		return fmt.Errorf("measure: repeats must be >= 1, got %d", c.Repeats)
	}
	if c.NoiseStd > 0 && c.Rng == nil {
		return fmt.Errorf("measure: NoiseStd > 0 requires an Rng")
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("measure: negative NoiseStd %v", c.NoiseStd)
	}
	return nil
}

// DefaultProbeSizes spans 3 decades of payload sizes, mirroring the probe
// trains of [14].
func DefaultProbeSizes() []float64 {
	return []float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6}
}

// nodeProbeTargetMs is the duration the largest compute probe should run on
// the profiled host (see EstimateNetwork).
const nodeProbeTargetMs = 100.0

func (c ProbeConfig) observe(truth func(x float64) float64) []Sample {
	samples := make([]Sample, 0, len(c.Sizes)*c.Repeats)
	for _, x := range c.Sizes {
		for r := 0; r < c.Repeats; r++ {
			ms := truth(x)
			if c.NoiseStd > 0 {
				ms += c.Rng.NormFloat64() * c.NoiseStd
			}
			if ms < 0 {
				ms = 0
			}
			samples = append(samples, Sample{X: x, Ms: ms})
		}
	}
	return samples
}

// ProbeLink generates transfer-time samples for the link under the true
// cost model t = bytes/b + MLD (+ noise).
func ProbeLink(link model.Link, cfg ProbeConfig) ([]Sample, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg.observe(func(bytes float64) float64 {
		return link.TransferTime(bytes, true)
	}), nil
}

// ProbeNode generates compute-time samples for a node under the true model
// t = ops/power (+ noise). X is the operation count.
func ProbeNode(node model.Node, cfg ProbeConfig) ([]Sample, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg.observe(func(ops float64) float64 {
		return ops / node.Power
	}), nil
}

// LinkEstimate is the regression-recovered link model.
type LinkEstimate struct {
	BWMbps float64
	MLDms  float64
	Fit    stats.LinFit
}

// EstimateLink fits t = x/b + d by ordinary least squares: the slope is the
// reciprocal byte rate (converted back to Mbit/s) and the intercept the MLD.
// Noise can drive the intercept slightly negative; it is clamped to 0.
func EstimateLink(samples []Sample) (LinkEstimate, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i], ys[i] = s.X, s.Ms
	}
	fit, err := stats.LinReg(xs, ys)
	if err != nil {
		return LinkEstimate{}, fmt.Errorf("measure: link fit: %w", err)
	}
	if fit.Slope <= 0 {
		return LinkEstimate{}, fmt.Errorf("measure: non-positive slope %v; probes unusable", fit.Slope)
	}
	mld := fit.Intercept
	if mld < 0 {
		mld = 0
	}
	return LinkEstimate{
		BWMbps: 1 / fit.Slope / model.BytesPerMsPerMbps,
		MLDms:  mld,
		Fit:    fit,
	}, nil
}

// EstimateNodePower fits t = ops/p through the origin and returns the
// recovered power in ops/ms.
func EstimateNodePower(samples []Sample) (float64, stats.LinFit, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i], ys[i] = s.X, s.Ms
	}
	fit, err := stats.LinRegThroughOrigin(xs, ys)
	if err != nil {
		return 0, fit, fmt.Errorf("measure: node fit: %w", err)
	}
	if fit.Slope <= 0 {
		return 0, fit, fmt.Errorf("measure: non-positive slope %v; probes unusable", fit.Slope)
	}
	return 1 / fit.Slope, fit, nil
}

// EstimateNetwork probes every link and node of the true network and returns
// a new network built entirely from the estimates — the network a deployed
// ELPC instance would actually plan against. The true network is not
// modified.
func EstimateNetwork(truth *model.Network, cfg ProbeConfig) (*model.Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nodes := make([]model.Node, len(truth.Nodes))
	for i, n := range truth.Nodes {
		// Size compute probes to the host, as a real profiler does: a fast
		// node finishes a fixed small workload in microseconds, where timing
		// noise would swamp the signal. Scale the probe train so the largest
		// workload runs for nodeProbeTargetMs on the true host.
		nodeCfg := cfg
		maxSize := stats.Max(cfg.Sizes)
		scale := n.Power * nodeProbeTargetMs / maxSize
		nodeCfg.Sizes = make([]float64, len(cfg.Sizes))
		for j, s := range cfg.Sizes {
			nodeCfg.Sizes[j] = s * scale
		}
		samples, err := ProbeNode(n, nodeCfg)
		if err != nil {
			return nil, err
		}
		power, _, err := EstimateNodePower(samples)
		if err != nil {
			return nil, fmt.Errorf("measure: node %d: %w", n.ID, err)
		}
		nodes[i] = model.Node{ID: n.ID, Name: n.Name, Power: power}
	}
	links := make([]model.Link, len(truth.Links))
	for i, l := range truth.Links {
		samples, err := ProbeLink(l, cfg)
		if err != nil {
			return nil, err
		}
		est, err := EstimateLink(samples)
		if err != nil {
			return nil, fmt.Errorf("measure: link %d: %w", l.ID, err)
		}
		links[i] = model.Link{ID: l.ID, From: l.From, To: l.To, BWMbps: est.BWMbps, MLDms: est.MLDms}
	}
	return model.NewNetwork(nodes, links)
}
