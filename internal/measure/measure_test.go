package measure

import (
	"math"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

func probeCfg(noise float64, seed uint64) ProbeConfig {
	return ProbeConfig{
		Sizes:    DefaultProbeSizes(),
		Repeats:  8,
		NoiseStd: noise,
		Rng:      gen.RNG(seed),
	}
}

func TestProbeConfigValidation(t *testing.T) {
	link := model.Link{BWMbps: 100, MLDms: 1}
	cases := []ProbeConfig{
		{Sizes: []float64{1}, Repeats: 1},                  // one size
		{Sizes: []float64{5, 5, 5}, Repeats: 1},            // equal sizes
		{Sizes: []float64{1, 2}, Repeats: 0},               // no repeats
		{Sizes: []float64{1, 2}, Repeats: 1, NoiseStd: 1},  // noise w/o rng
		{Sizes: []float64{1, 2}, Repeats: 1, NoiseStd: -1}, // negative noise
	}
	for i, cfg := range cases {
		if _, err := ProbeLink(link, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNoiselessRecoveryIsExact(t *testing.T) {
	link := model.Link{ID: 0, From: 0, To: 1, BWMbps: 123.4, MLDms: 2.5}
	cfg := ProbeConfig{Sizes: DefaultProbeSizes(), Repeats: 1}
	samples, err := ProbeLink(link, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateLink(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.BWMbps-123.4) > 1e-9 || math.Abs(est.MLDms-2.5) > 1e-9 {
		t.Errorf("recovered (%v Mbps, %v ms), want (123.4, 2.5)", est.BWMbps, est.MLDms)
	}
	if est.Fit.R2 < 1-1e-12 {
		t.Errorf("noiseless R² = %v, want 1", est.Fit.R2)
	}

	node := model.Node{ID: 0, Power: 5e6}
	nsamples, err := ProbeNode(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	power, _, err := EstimateNodePower(nsamples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(power-5e6) > 1e-3 {
		t.Errorf("recovered power %v, want 5e6", power)
	}
}

func TestNoisyRecoveryWithinTolerance(t *testing.T) {
	link := model.Link{ID: 0, From: 0, To: 1, BWMbps: 100, MLDms: 3}
	// 100 Mbps = 12500 B/ms; 3 MB probe takes 240 ms. 1 ms noise is small
	// relative to the large probes but large relative to MLD.
	samples, err := ProbeLink(link, probeCfg(1.0, 7))
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateLink(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.BWMbps-100) / 100; rel > 0.05 {
		t.Errorf("bandwidth error %.1f%% too large (got %v)", rel*100, est.BWMbps)
	}
	if math.Abs(est.MLDms-3) > 1.5 {
		t.Errorf("MLD estimate %v too far from 3", est.MLDms)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateLink(nil); err == nil {
		t.Error("empty samples should error")
	}
	if _, _, err := EstimateNodePower(nil); err == nil {
		t.Error("empty samples should error")
	}
	// Decreasing times => negative slope => unusable.
	bad := []Sample{{X: 1, Ms: 10}, {X: 2, Ms: 5}, {X: 3, Ms: 1}}
	if _, err := EstimateLink(bad); err == nil {
		t.Error("negative slope should error")
	}
	// Through-origin fit needs genuinely negative correlation to fail.
	neg := []Sample{{X: 1, Ms: -1}, {X: 2, Ms: -2}, {X: 3, Ms: -3}}
	if _, _, err := EstimateNodePower(neg); err == nil {
		t.Error("negative slope should error for node too")
	}
}

func TestNegativeInterceptClamped(t *testing.T) {
	// Construct samples with a negative intercept: t = x - 5.
	samples := []Sample{{X: 10, Ms: 5}, {X: 20, Ms: 15}, {X: 30, Ms: 25}}
	est, err := EstimateLink(samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.MLDms != 0 {
		t.Errorf("MLD = %v, want clamped 0", est.MLDms)
	}
}

func TestEstimateNetworkRecoversTruth(t *testing.T) {
	truth, err := gen.Network(8, 30, gen.DefaultRanges(), gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateNetwork(truth, probeCfg(0.5, 11))
	if err != nil {
		t.Fatal(err)
	}
	if est.N() != truth.N() || est.M() != truth.M() {
		t.Fatal("estimated network changed topology")
	}
	for i := range truth.Links {
		rel := math.Abs(est.Links[i].BWMbps-truth.Links[i].BWMbps) / truth.Links[i].BWMbps
		if rel > 0.25 {
			t.Errorf("link %d bandwidth error %.1f%%", i, rel*100)
		}
	}
	for i := range truth.Nodes {
		rel := math.Abs(est.Nodes[i].Power-truth.Nodes[i].Power) / truth.Nodes[i].Power
		if rel > 0.25 {
			t.Errorf("node %d power error %.1f%%", i, rel*100)
		}
	}
	// Truth untouched.
	if truth.Links[0].BWMbps == est.Links[0].BWMbps && truth.Links[0].MLDms == est.Links[0].MLDms {
		// Possible but astronomically unlikely under noise; treat as suspicious.
		t.Log("estimate exactly equals truth for link 0 under noise (suspicious but not fatal)")
	}
	if _, err := EstimateNetwork(truth, ProbeConfig{}); err == nil {
		t.Error("invalid config should error")
	}
}

// TestPlanningOnEstimatesStaysNearTruth closes the loop of the adaptive
// workflow: mapping on the estimated network must cost nearly the same as
// mapping on the truth when evaluated against the truth.
func TestPlanningOnEstimatesStaysNearTruth(t *testing.T) {
	// Imported here to avoid a dependency cycle: measure does not know about
	// core; the loop lives in examples/adaptive. This test only checks that
	// estimation preserves relative link ordering well enough for planning,
	// via the widest-link ranking.
	truth, err := gen.Network(10, 40, gen.DefaultRanges(), gen.RNG(21))
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateNetwork(truth, probeCfg(0.2, 22))
	if err != nil {
		t.Fatal(err)
	}
	// Rank correlation proxy: the fastest true link should be within the top
	// 20% of estimated links.
	bestTrue, bestTrueBW := -1, 0.0
	for i, l := range truth.Links {
		if l.BWMbps > bestTrueBW {
			bestTrue, bestTrueBW = i, l.BWMbps
		}
	}
	better := 0
	for _, l := range est.Links {
		if l.BWMbps > est.Links[bestTrue].BWMbps {
			better++
		}
	}
	if better > len(est.Links)/5 {
		t.Errorf("true best link ranked %d/%d after estimation", better, len(est.Links))
	}
}
