package fleet

import (
	"fmt"
	"strings"

	"elpc/internal/telemetry"
)

// Fleet-level metrics, recorded into the process-global registry. Outcome
// counters mirror the raw per-manager tallies (ShardStats semantics): a
// regional rejection that the coordinator fallback then admits contributes
// one rejected and one admitted increment — the 2PC fallback counter
// reconciles the two, exactly like Stats does for /v1/stats.
var (
	admittedTotal = telemetry.Default().Counter(
		`elpc_fleet_admissions_total{outcome="admitted"}`,
		"deploy admission outcomes (raw per-manager tallies)")
	rejectedTotal = telemetry.Default().Counter(
		`elpc_fleet_admissions_total{outcome="rejected"}`, "")
	deploySeconds = telemetry.Default().Histogram(
		"elpc_fleet_deploy_seconds",
		"admission latency, solve through commit or rejection (seconds)", nil)
	batchDeploySeconds = telemetry.Default().Histogram(
		"elpc_fleet_batch_deploy_seconds",
		"batch admission latency, whole burst under one lock epoch (seconds)", nil)
	preemptedTotal = telemetry.Default().Counter(
		"elpc_admission_preempted_total",
		"best-effort deployments displaced by guaranteed admissions")
	rebalanceSeconds = telemetry.Default().Histogram(
		"elpc_fleet_rebalance_seconds", "rebalance pass latency (seconds)", nil)
	rebalanceMovesTotal = telemetry.Default().Counter(
		"elpc_fleet_rebalance_moves_total", "applied rebalance migrations")
	repairSeconds = telemetry.Default().Histogram(
		"elpc_fleet_repair_seconds", "incremental repair pass latency (seconds)", nil)
	parkEvictionsTotal = telemetry.Default().Counter(
		"elpc_fleet_park_evictions_total",
		"deployments evicted with a reusable admission request")

	// Sharded-coordinator counters: phase-2 validation failures that forced
	// a re-solve, exhausted two-phase rounds, and regional rejections retried
	// through the coordinator.
	tpcRetriesTotal = telemetry.Default().Counter(
		"elpc_fleet_2pc_retries_total",
		"cross-region phase-2 validation failures that forced a re-solve")
	tpcAbortsTotal = telemetry.Default().Counter(
		"elpc_fleet_2pc_aborts_total",
		"cross-region deployments rejected after exhausting two-phase rounds")
	tpcFallbacksTotal = telemetry.Default().Counter(
		"elpc_fleet_2pc_fallbacks_total",
		"single-region rejections retried through the coordinator")
)

// shardLabel renders a fleet's idPrefix as its lock-wait shard label:
// "s3-" -> "s3", empty (standalone fleet, or shard 0 of a one-shard fleet)
// -> "main".
func shardLabel(idPrefix string) string {
	if idPrefix == "" {
		return "main"
	}
	return strings.TrimSuffix(idPrefix, "-")
}

// lockWaitHist lazily resolves the fleet's per-shard lock-wait histogram.
// idPrefix is fixed at construction but only after New returns (the sharded
// constructor assigns it), so the handle cannot be captured in New; the
// sync.Once makes first use race-free under concurrent Deploys.
func (f *Fleet) lockWaitHist() *telemetry.Histogram {
	f.lockWaitOnce.Do(func() {
		f.lockWait = telemetry.Default().Histogram(
			fmt.Sprintf(`elpc_fleet_lock_wait_seconds{shard=%q}`, shardLabel(f.idPrefix)),
			"time Deploy spent waiting for the fleet mutex (seconds)", nil)
	})
	return f.lockWait
}
