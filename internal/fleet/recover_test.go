package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file is the recovery property test: a WAL-backed fleet driven through
// a seeded deploy/churn/repair/preemption/rebalance workload must recover
// byte-identical — same Stats, List, SLO report, residual network, and
// parked pool — whether replayed purely from the log or from a mid-workload
// snapshot plus the log suffix. Determinism ties the two recovery paths
// together: the same seeded workload on two identical managers produces the
// same live state, so snapshot-at-K + suffix == pure replay == live.

// residualSnapshotter is the accessor both managers expose for the residual
// network (it is not part of the Manager surface).
type residualSnapshotter interface {
	Snapshot() *model.Network
}

// managerView is the full externally observable state of a manager, each
// piece pre-marshaled so a mismatch reports which surface diverged.
type managerView map[string]string

// viewOf captures Stats, List, SLOReport, and the residual network as
// canonical JSON. The parked pool is compared separately: live managers
// hand parked deployments to their caller (the preempted queue and repair
// reports), recovery surfaces them through Recovered.Parked.
func viewOf(t *testing.T, m Manager) managerView {
	t.Helper()
	view := managerView{}
	for name, v := range map[string]any{
		"stats":    m.Stats(),
		"list":     m.List(),
		"slo":      m.SLOReport(),
		"residual": m.(residualSnapshotter).Snapshot(),
	} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		view[name] = string(data)
	}
	return view
}

// mustMatch fails with the diverging surface when two views differ.
func mustMatch(t *testing.T, label string, want, got managerView) {
	t.Helper()
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: %s diverged\n live: %s\n recovered: %s", label, name, w, g)
		}
	}
}

// runRecoveryWorkload drives a deterministic mixed workload — single
// deploys across all three SLO classes (guaranteed ones sized to force
// preemptions), a batch admission, releases, a churn trace with repairs,
// late deploys, and a rebalance pass — against m. mid, when non-nil, runs
// between the release phase and the churn phase (the snapshot point). The
// returned slice holds the deployments the repair passes evicted, which the
// live manager hands to its caller rather than keeping.
func runRecoveryWorkload(t *testing.T, m Manager, net *model.Network, seed uint64, mid func()) []ParkedDeployment {
	t.Helper()
	rng := gen.RNG(seed)
	var admitted []string
	var evicted []ParkedDeployment

	deploy := func(i int, class Class) {
		pl, err := gen.Pipeline(3+rng.IntN(4), gen.DefaultRanges(), rng)
		if err != nil {
			t.Fatal(err)
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		req := Request{
			Tenant:   fmt.Sprintf("t%02d", i),
			Pipeline: pl,
			Src:      src,
			Dst:      dst,
			SLO:      SLO{Class: class},
		}
		if i%2 == 0 {
			req.Objective = model.MaxFrameRate
			req.SLO.MinRateFPS = 1 + 2*rng.Float64()
			if class == ClassGuaranteed {
				// Oversized demand so guaranteed admissions displace
				// best-effort tenants and exercise the preemption records.
				req.SLO.MinRateFPS = 3 + 3*rng.Float64()
			}
		} else {
			req.Objective = model.MinDelay
		}
		d, err := m.Deploy(req)
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("deploy %d: %v", i, err)
			}
			return // rejections thin the population and still log counters
		}
		admitted = append(admitted, d.ID)
	}

	classes := []Class{ClassBestEffort, ClassStandard, "", ClassGuaranteed}
	for i := 0; i < 16; i++ {
		deploy(i, classes[i%len(classes)])
	}

	// One batch admission: mixed classes in one WAL epoch.
	var batch []Request
	for i := 0; i < 4; i++ {
		pl, err := gen.Pipeline(3+rng.IntN(3), gen.DefaultRanges(), rng)
		if err != nil {
			t.Fatal(err)
		}
		src := model.NodeID(rng.IntN(net.N()))
		dst := model.NodeID(rng.IntN(net.N() - 1))
		if dst >= src {
			dst++
		}
		batch = append(batch, Request{
			Tenant:    fmt.Sprintf("b%d", i),
			Pipeline:  pl,
			Src:       src,
			Dst:       dst,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1 + rng.Float64(), Class: classes[i%len(classes)]},
		})
	}
	for _, out := range m.DeployBatch(batch) {
		if out.Err == nil {
			admitted = append(admitted, out.Deployment.ID)
		} else if !errors.Is(out.Err, ErrRejected) {
			t.Fatalf("batch deploy %d: %v", out.Index, out.Err)
		}
	}

	// Release every third admitted deployment (some IDs may already be
	// gone to preemption — NotFound is part of the workload, not an error).
	for i := 0; i < len(admitted); i += 3 {
		if err := m.Release(admitted[i]); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("release %s: %v", admitted[i], err)
		}
	}

	if mid != nil {
		mid()
	}

	// Churn trace with per-event repair, like the reconciler drives it.
	cs := gen.DefaultChurnSpec()
	cs.Events = 6
	trace, err := gen.Churn(cs, net, gen.RNG(seed^0x9e3779b97f4a7c15))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range trace {
		evs := []model.ChurnEvent{ev.Event}
		affected := m.Affected(evs)
		if err := m.ApplyChurn(evs); err != nil {
			t.Fatalf("churn event %d (%s): %v", i, ev.Event, err)
		}
		rep := m.Repair(affected, RepairOptions{})
		evicted = append(evicted, rep.Parked...)
	}

	for i := 16; i < 20; i++ {
		deploy(i, classes[i%len(classes)])
	}
	m.Rebalance(RebalanceOptions{MaxMoves: 3})
	return evicted
}

// newWALManager opens a fresh log in dir, builds a manager over net (plain
// when shards <= 1... shards == 0 means a plain Fleet; shards >= 1 a
// ShardedFleet), logs the install record, and wires the WAL in.
func newWALManager(t *testing.T, dir string, net *model.Network, shards int) (Manager, *wal.Log) {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir %s recovered state: %+v", dir, rec)
	}
	var m Manager
	if shards == 0 {
		m, err = New(net)
	} else {
		m, err = NewSharded(net, shards)
	}
	if err != nil {
		t.Fatal(err)
	}
	installShards := shards
	if installShards == 0 {
		installShards = 1
	}
	if err := AppendInstall(l, net, installShards); err != nil {
		t.Fatal(err)
	}
	m.UseWAL(l)
	return m, l
}

// recoverDir reopens dir and rebuilds the manager from whatever snapshot
// and log suffix survive there.
func recoverDir(t *testing.T, dir string) (*Recovered, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if rec.TruncatedTail {
		t.Fatalf("gracefully closed log recovered with a torn tail")
	}
	r, err := Recover(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manager == nil {
		t.Fatal("recovery produced no manager")
	}
	return r, rec
}

// parkedJSON canonicalizes a parked pool for comparison: ParkedState form,
// sorted by deployment ID, marshaled. Sorting is needed because the live
// pool is assembled from two sources (the preempted queue and the repair
// reports) whose concatenation order differs from WAL record order.
func parkedJSON(t *testing.T, pool []ParkedDeployment) string {
	t.Helper()
	states := ParkedStates(pool)
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	data, err := json.Marshal(states)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// mustMatchParked compares a recovered parked pool against the live one and
// checks the recovered manager's own preempted queue is empty (recovery
// routes every parked deployment to Recovered.Parked for the reconciler).
func mustMatchParked(t *testing.T, label, live string, r *Recovered) {
	t.Helper()
	if rem := r.Manager.TakePreempted(); len(rem) != 0 {
		t.Errorf("%s: recovered manager still holds %d preempted deployments", label, len(rem))
	}
	if got := parkedJSON(t, r.Parked); got != live {
		t.Errorf("%s: parked diverged\n live: %s\n recovered: %s", label, live, got)
	}
}

// TestRecoverPropertyReplayEqualsLive is the recovery property test: for a
// spread of seeds and manager shapes, (a) pure log replay reproduces the
// live fleet exactly, (b) an independent run of the same workload that
// snapshots mid-way and recovers from snapshot + log suffix lands on the
// same state, proving compaction loses nothing.
func TestRecoverPropertyReplayEqualsLive(t *testing.T) {
	shapes := []struct {
		name   string
		shards int
	}{
		{"plain", 0},
		{"sharded-k1", 1},
		{"sharded-k3", 3},
	}
	for _, shape := range shapes {
		for _, seed := range []uint64{1, 7, 23} {
			t.Run(fmt.Sprintf("%s/seed%d", shape.name, seed), func(t *testing.T) {
				net, err := gen.Network(10, 60, gen.DefaultRanges(), gen.RNG(seed*41+3))
				if err != nil {
					t.Fatal(err)
				}

				// Run A: no snapshot — recovery is a pure replay.
				dirA := t.TempDir()
				mA, lA := newWALManager(t, dirA, net, shape.shards)
				evictedA := runRecoveryWorkload(t, mA, net, seed, nil)
				live := viewOf(t, mA)
				liveParked := parkedJSON(t, append(evictedA, mA.TakePreempted()...))
				if err := lA.Close(); err != nil {
					t.Fatal(err)
				}
				rA, recA := recoverDir(t, dirA)
				if recA.Snapshot != nil {
					t.Fatal("run A recovered a snapshot that was never written")
				}
				mustMatch(t, "pure replay", live, viewOf(t, rA.Manager))
				mustMatchParked(t, "pure replay", liveParked, rA)

				// Run B: same workload, snapshot mid-way; recovery is the
				// snapshot plus the post-snapshot suffix. Compaction must
				// have pruned the covered prefix, and the recovered state
				// must still equal run A's live state.
				dirB := t.TempDir()
				mB, lB := newWALManager(t, dirB, net, shape.shards)
				evictedB := runRecoveryWorkload(t, mB, net, seed, func() {
					snap := CaptureSnapshot(mB, lB)
					if snap.Seq == 0 {
						t.Fatal("mid-workload snapshot covers no records")
					}
					if err := lB.WriteSnapshot(snap); err != nil {
						t.Fatal(err)
					}
				})
				mustMatch(t, "determinism across runs", live, viewOf(t, mB))
				liveParkedB := parkedJSON(t, append(evictedB, mB.TakePreempted()...))
				if liveParkedB != liveParked {
					t.Fatalf("workload is not deterministic: parked pools differ across runs")
				}
				if err := lB.Close(); err != nil {
					t.Fatal(err)
				}
				rB, recB := recoverDir(t, dirB)
				if recB.Snapshot == nil {
					t.Fatal("run B lost its snapshot")
				}
				if len(recB.Records) == 0 {
					t.Fatal("run B has no replay suffix after the snapshot")
				}
				mustMatch(t, "snapshot+suffix", live, viewOf(t, rB.Manager))
				mustMatchParked(t, "snapshot+suffix", liveParked, rB)
			})
		}
	}
}

// TestRecoverEmptyLogYieldsInstallOnly checks the degenerate path: an
// install record with no traffic recovers an empty manager of the right
// shape.
func TestRecoverEmptyLogYieldsInstallOnly(t *testing.T) {
	net, err := gen.Network(6, 20, gen.DefaultRanges(), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, l := newWALManager(t, dir, net, 2)
	if got := len(m.List()); got != 0 {
		t.Fatalf("fresh manager has %d deployments", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := recoverDir(t, dir)
	sh, ok := r.Manager.(*ShardedFleet)
	if !ok {
		t.Fatalf("recovered manager is %T, want *ShardedFleet", r.Manager)
	}
	if sh.Shards() != 2 {
		t.Fatalf("recovered %d shards, want 2", sh.Shards())
	}
	if got := len(sh.List()); got != 0 {
		t.Fatalf("recovered %d deployments from an empty log", got)
	}
}
