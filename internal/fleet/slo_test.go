package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"elpc/internal/journal"
	"elpc/internal/model"
)

// TestFleetJournalEvents checks the journal threading: every admission,
// rejection, and release records exactly one typed event carrying the
// deployment identity, and the per-deployment timeline replays them in
// order.
func TestFleetJournalEvents(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	jr := journal.New(64)
	f.UseJournal(jr)

	d, err := f.Deploy(Request{
		Tenant: "viz", Pipeline: testPipeline(t, 5, 1),
		Src: 0, Dst: 9, Objective: model.MinDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An impossible SLO records a rejection with the tenant but no ID.
	if _, err := f.Deploy(Request{
		Tenant: "greedy", Pipeline: testPipeline(t, 5, 2),
		Src: 0, Dst: 9, Objective: model.MinDelay, SLO: SLO{MaxDelayMs: 1e-6},
	}); !errors.Is(err, ErrRejected) {
		t.Fatalf("want rejection, got %v", err)
	}
	if err := f.Release(d.ID); err != nil {
		t.Fatal(err)
	}

	evs := jr.Since(0, 0)
	if len(evs) != 3 {
		t.Fatalf("journal has %d events, want admit/reject/release: %+v", len(evs), evs)
	}
	admit, rej, rel := evs[0], evs[1], evs[2]
	if admit.Kind != journal.DeployAdmitted || admit.Deployment != d.ID || admit.Tenant != "viz" ||
		admit.Mapping != d.Mapping || admit.DelayMs != d.DelayMs {
		t.Errorf("admission event = %+v", admit)
	}
	if admit.Actor != journal.ActorFleet || admit.Shard != "main" {
		t.Errorf("admission attribution = actor %q shard %q", admit.Actor, admit.Shard)
	}
	if rej.Kind != journal.DeployRejected || rej.Tenant != "greedy" || rej.Detail == "" {
		t.Errorf("rejection event = %+v", rej)
	}
	if rel.Kind != journal.ReleaseDone || rel.Deployment != d.ID || rel.Tenant != "viz" {
		t.Errorf("release event = %+v", rel)
	}

	tl := jr.Timeline(d.ID)
	if len(tl) != 2 || tl[0].Kind != journal.DeployAdmitted || tl[1].Kind != journal.ReleaseDone {
		t.Errorf("timeline = %+v, want [admit release]", tl)
	}
}

// TestSLOReportCompliantFleet checks a freshly admitted population scores
// fully compliant: admission control guarantees the SLOs hold on the
// network it admitted against.
func TestSLOReportCompliantFleet(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	deps := deployN(t, f, 6)
	rep := f.SLOReport()
	if rep.Evaluated != len(deps) || rep.Compliant != len(deps) || rep.Violating != 0 {
		t.Fatalf("report = %d evaluated, %d compliant, %d violating; statuses %+v",
			rep.Evaluated, rep.Compliant, rep.Violating, rep.Statuses)
	}
	for _, st := range rep.Statuses {
		if !st.Compliant || st.Reason != "" || st.Shard != "main" {
			t.Errorf("status = %+v", st)
		}
		if st.RateFPS < st.ReservedFPS {
			t.Errorf("delivered rate %.3f below reserved %.3f for %s", st.RateFPS, st.ReservedFPS, st.ID)
		}
	}
	if vt := rep.ViolatingTenants(); len(vt) != 0 {
		t.Errorf("violating tenants = %v, want none", vt)
	}
}

// TestSLOReportDetectsChurnViolations applies churn directly to the
// capacity view — deliberately skipping Repair — and checks SLOReport
// notices the delivered/promised gap the repair cycle would have fixed:
// that separation is what lets /v1/health observe violations between churn
// and repair, and catch any repair that silently under-delivers.
func TestSLOReportDetectsChurnViolations(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	deps := deployN(t, f, 6)

	// Fail a node some deployment is placed on, without repairing.
	victim := deps[0].Assignment[len(deps[0].Assignment)/2]
	if err := f.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeDown, Node: victim}}); err != nil {
		t.Fatal(err)
	}
	rep := f.SLOReport()
	if rep.Evaluated != len(deps) || rep.Violating == 0 {
		t.Fatalf("report after unrepaired node_down: %d evaluated, %d violating", rep.Evaluated, rep.Violating)
	}
	found := false
	for _, st := range rep.Statuses {
		if st.ID == deps[0].ID {
			found = true
			if st.Compliant || !strings.Contains(st.Reason, "down") {
				t.Errorf("victim status = %+v, want down-node violation", st)
			}
		}
	}
	if !found {
		t.Fatalf("victim %s missing from report", deps[0].ID)
	}
	if vt := rep.ViolatingTenants(); len(vt) == 0 {
		t.Error("violating tenants empty despite violations")
	}

	// Repair resolves the gap: afterwards every surviving deployment is
	// compliant again (parked ones are no longer evaluated).
	f.Repair(f.Affected([]model.ChurnEvent{{Kind: model.NodeDown, Node: victim}}), RepairOptions{})
	rep = f.SLOReport()
	if rep.Violating != 0 {
		t.Errorf("report after repair still has %d violating: %+v", rep.Violating, rep.Statuses)
	}
}

// TestShardedSLOReportAndJournal checks the sharded manager's SLO scoring
// on the composed view and the coordinator's 2PC journal events.
func TestShardedSLOReportAndJournal(t *testing.T) {
	net := testNetwork(t)
	s, err := NewSharded(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	jr := journal.New(256)
	s.UseJournal(jr)

	// Deploy across every (src, dst) pair class until we have both regional
	// and cross-region deployments.
	admitted := 0
	for i := 0; i < 8 && admitted < 6; i++ {
		_, err := s.Deploy(Request{
			Tenant:   "t",
			Pipeline: testPipeline(t, 4+i%3, uint64(20+i)),
			Src:      model.NodeID(i % net.N()),
			Dst:      model.NodeID((i + 5) % net.N()),
			SLO:      SLO{MinRateFPS: 1},
		})
		if err != nil {
			continue
		}
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no deployments admitted")
	}
	rep := s.SLOReport()
	if rep.Evaluated != admitted || rep.Compliant != admitted {
		t.Fatalf("sharded report = %d evaluated, %d compliant (admitted %d): %+v",
			rep.Evaluated, rep.Compliant, admitted, rep.Statuses)
	}

	// Every cross-region admission must have journaled its 2PC commit.
	var crossAdmits, commits int
	for _, ev := range jr.Since(0, 0) {
		switch ev.Kind {
		case journal.DeployAdmitted:
			if ev.Shard == "x" {
				crossAdmits++
			}
		case journal.TwoPhaseCommit:
			commits++
		}
	}
	if crossAdmits != commits {
		t.Errorf("%d cross admissions but %d 2pc_commit events", crossAdmits, commits)
	}
	if st := s.ShardStats(); st.Coordinator.Admitted != uint64(crossAdmits) {
		t.Errorf("coordinator admitted %d, journal saw %d", st.Coordinator.Admitted, crossAdmits)
	}
}

// TestJournalUnderConcurrentFleetOps hammers one shared journal from
// concurrent deploy/release/churn/rebalance traffic (run with -race) and
// checks the retained window stays dense and correctly indexed.
func TestJournalUnderConcurrentFleetOps(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	jr := journal.New(128)
	f.UseJournal(jr)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				d, err := f.Deploy(Request{
					Tenant:   "w",
					Pipeline: testPipeline(t, 4, uint64(w*100+i)),
					Src:      model.NodeID((w + i) % 10),
					Dst:      model.NodeID((w + i + 3) % 10),
				})
				if err == nil && i%2 == 0 {
					_ = f.Release(d.ID)
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			batch := []model.ChurnEvent{{Kind: model.CapacityDrift, Target: model.TargetNode, Node: model.NodeID(i % 10), Factor: 0.95}}
			if err := f.ApplyChurn(batch); err == nil {
				f.Repair(f.Affected(batch), RepairOptions{})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			f.Rebalance(RebalanceOptions{MaxMoves: 2, MinGain: 0.01})
		}
	}()
	wg.Wait()

	st := jr.Stats()
	if st.LastSeq == 0 {
		t.Fatal("no events recorded")
	}
	if st.Depth > st.Capacity {
		t.Fatalf("depth %d exceeds capacity %d", st.Depth, st.Capacity)
	}
	evs := jr.Since(0, 0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window has a gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if uint64(len(evs))+st.Dropped != st.LastSeq {
		t.Fatalf("accounting: %d retained + %d dropped != %d appended", len(evs), st.Dropped, st.LastSeq)
	}
}
