package fleet

import (
	"fmt"
	"math"

	"elpc/internal/model"
)

// This file is the SLO scoring side of the health engine: SLOReport
// re-evaluates every live deployment's delivered delay and sustainable rate
// on the *current* residual network — the network as churn has left it, not
// as admission saw it — and compares them against the deployment's admission
// SLO. The service layer runs a report after every churn batch, repair, and
// rebalance pass and folds the result into /v1/health and the elpc_slo_*
// metric families.

// SLOStatus is one deployment's compliance verdict.
type SLOStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Shard is the owning region label ("main" for a plain fleet, "s3" for
	// shard 3, "x" for coordinator-owned cross-region deployments).
	Shard string `json:"shard,omitempty"`
	// DelayMs and RateFPS are the delivered values: the admission mapping
	// re-scored on the current residual network with the deployment's own
	// reservation excluded.
	DelayMs float64 `json:"delay_ms"`
	RateFPS float64 `json:"rate_fps"`
	// MaxDelayMs and ReservedFPS echo the admission constraints the
	// delivered values are judged against (MaxDelayMs 0 = unconstrained).
	MaxDelayMs  float64 `json:"max_delay_ms,omitempty"`
	ReservedFPS float64 `json:"reserved_fps"`
	Compliant   bool    `json:"compliant"`
	// Reason names the violated constraint when non-compliant.
	Reason string `json:"reason,omitempty"`
}

// SLOReport aggregates one evaluation pass over every live deployment.
type SLOReport struct {
	Evaluated int `json:"evaluated"`
	Compliant int `json:"compliant"`
	Violating int `json:"violating"`
	// Statuses holds one verdict per deployment, in listing order.
	Statuses []SLOStatus `json:"statuses,omitempty"`
}

// add folds one status into the report's tallies.
func (r *SLOReport) add(st SLOStatus) {
	r.Evaluated++
	if st.Compliant {
		r.Compliant++
	} else {
		r.Violating++
	}
	r.Statuses = append(r.Statuses, st)
}

// ViolatingTenants returns the distinct tenants with at least one
// non-compliant deployment, in first-violation order.
func (r SLOReport) ViolatingTenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, st := range r.Statuses {
		if st.Compliant {
			continue
		}
		name := st.Tenant
		if name == "" {
			name = st.ID
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// sloStatusOf scores one deployment on the residual view r: the current
// mapping is re-evaluated on a snapshot with the deployment's own
// reservation excluded (the network as this tenant sees it), so a compliant
// verdict means the admission placement still delivers its SLO on the
// churned network. Caller must serialize access to r.
func sloStatusOf(r *model.ResidualNetwork, d *Deployment, shard string) SLOStatus {
	st := SLOStatus{
		ID:          d.ID,
		Tenant:      d.Tenant,
		Shard:       shard,
		MaxDelayMs:  d.SLO.MaxDelayMs,
		ReservedFPS: d.ReservedFPS,
	}
	for _, v := range d.Assignment {
		if r.NodeIsDown(v) {
			st.DelayMs = math.Inf(1)
			st.Reason = fmt.Sprintf("node v%d hosting a module is down", v)
			return st
		}
	}
	snap, err := r.SnapshotWithout(d.reservation)
	if err != nil {
		// Reservations are shaped by the fleet against the same base
		// network; a mismatch means corrupted state, not a user error.
		st.Reason = fmt.Sprintf("unscorable: %v", err)
		return st
	}
	m := model.NewMapping(d.Assignment)
	st.DelayMs = model.TotalDelay(snap, d.pipe, m, d.cost)
	st.RateFPS = model.FrameRate(model.SharedBottleneck(snap, d.pipe, m))
	switch {
	case math.IsInf(st.DelayMs, 1):
		st.Reason = "mapping traverses an unusable path"
	case d.SLO.MaxDelayMs > 0 && st.DelayMs > d.SLO.MaxDelayMs:
		st.Reason = fmt.Sprintf("delay %.3f ms exceeds SLO %.3f ms", st.DelayMs, d.SLO.MaxDelayMs)
	case st.RateFPS < d.ReservedFPS:
		st.Reason = fmt.Sprintf("sustainable rate %.3f fps below reserved %.3f fps", st.RateFPS, d.ReservedFPS)
	default:
		st.Compliant = true
	}
	return st
}

// SLOReport re-scores every live deployment against its admission SLO on
// the current residual network.
func (f *Fleet) SLOReport() SLOReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rep SLOReport
	for _, id := range f.order {
		rep.add(sloStatusOf(f.residual, f.deps[id], shardLabel(f.idPrefix)))
	}
	return rep
}

// SLOReport re-scores every live deployment — regional and cross-region —
// on the composed residual view of the whole network, so a deployment whose
// path crosses a churned boundary link is judged against the capacity it
// actually has.
func (s *ShardedFleet) SLOReport() SLOReport {
	if s.part.K == 1 {
		return s.shards[0].SLOReport()
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.lockShards()
	defer s.unlockShards()
	comp := s.composedLocked()
	var rep SLOReport
	for _, sh := range s.shards {
		for _, id := range sh.order {
			rep.add(sloStatusOf(comp, sh.deps[id], shardLabel(sh.idPrefix)))
		}
	}
	for _, id := range s.crossOrder {
		rep.add(sloStatusOf(comp, s.crossDeps[id], "x"))
	}
	return rep
}
