package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file wires the write-ahead log through both fleet managers. The
// contract is one wal.Record per mutating lock epoch: a method that takes a
// fleet lock opens a record (beginTxnLocked), the mutation sites append
// chronological ops to it while the lock is held — so log order always
// matches application order — and endTxnLocked stamps the scope's counter
// state, appends the record, and returns the commit barrier the caller runs
// after releasing the lock. Commit waits only for the buffered write (plus
// fsync in wal.Options.Sync mode), so the critical section stays
// syscall-free and concurrent epochs group-commit behind one write.
//
// Records carry complete outcomes (assignment, scored delay/rate, reserved
// demand, reservation class), not inputs: replay is a logical redo that
// rebuilds each reservation arithmetically and never re-runs a solver, which
// is what makes recovery byte-identical and fast.

// UseWAL installs the write-ahead log every mutating transition is durably
// recorded into before it is acknowledged. A nil log (the default) disables
// recording. Install before traffic: epochs already inside the lock when the
// log appears are not recorded.
func (f *Fleet) UseWAL(l *wal.Log) { f.useWAL(l, "") }

// useWAL installs the log with an explicit record scope ("" standalone,
// "s<i>" for shard i of a sharded fleet).
func (f *Fleet) useWAL(l *wal.Log, scope string) {
	f.mu.Lock()
	f.wal = l
	f.walScope = scope
	f.mu.Unlock()
}

// countersLocked snapshots the fleet's durable counter state. Caller holds
// f.mu.
func (f *Fleet) countersLocked() wal.Counters {
	return wal.Counters{
		Admitted:      f.admitted,
		Rejected:      f.rejected,
		Released:      f.released,
		Moves:         f.moves,
		Repaired:      f.repaired,
		RepairMoves:   f.repairMoves,
		ParkEvictions: f.parkEvicts,
		Preemptions:   f.preempts,
		Solves:        f.solves.Load(),
		Seq:           f.seq,
	}
}

// beginTxnLocked opens the WAL record for the current lock epoch. Caller
// holds f.mu.
func (f *Fleet) beginTxnLocked(kind wal.Kind) {
	if f.wal == nil {
		return
	}
	f.txn = &wal.Record{Kind: kind, Scope: f.walScope}
	f.txnPre = f.countersLocked()
}

// endTxnLocked closes the epoch's record: epochs that neither mutated state
// nor moved a counter are skipped (a pure Describe-shaped epoch), everything
// else — including counter-only epochs like rejections, whose Rejected and
// Solves deltas recovered Stats must reproduce — is appended. The returned
// barrier is never nil; the caller invokes it after releasing f.mu.
func (f *Fleet) endTxnLocked() func() {
	txn := f.txn
	f.txn = nil
	if txn == nil {
		return func() {}
	}
	cur := f.countersLocked()
	if len(txn.Ops) == 0 && cur == f.txnPre {
		return func() {}
	}
	txn.Counters = &cur
	lsn := f.wal.Append(txn)
	return func() { _ = f.wal.Commit(lsn) }
}

// txnDeploy records an admission in the current epoch (no-op outside one).
func (f *Fleet) txnDeploy(d *Deployment, requeueOf string) {
	if f.txn == nil {
		return
	}
	f.txn.Ops = append(f.txn.Ops, wal.Op{Deploy: deployState(d, requeueOf)})
}

// txnUpdate records a placement change (repair migration, rebalance move).
func (f *Fleet) txnUpdate(d *Deployment) {
	if f.txn == nil {
		return
	}
	f.txn.Ops = append(f.txn.Ops, wal.Op{Deploy: updateState(d)})
}

// txnRemove records a deployment leaving the fleet (release, park, preempt).
func (f *Fleet) txnRemove(id string) {
	if f.txn == nil {
		return
	}
	f.txn.Ops = append(f.txn.Ops, wal.Op{Remove: id})
}

// txnPark records a displaced deployment entering the parked pool.
func (f *Fleet) txnPark(p ParkedDeployment) {
	if f.txn == nil {
		return
	}
	ps := parkedState(p)
	f.txn.Ops = append(f.txn.Ops, wal.Op{Park: &ps})
}

// txnChurn records an applied capacity-mutation batch.
func (f *Fleet) txnChurn(events []model.ChurnEvent) {
	if f.txn == nil {
		return
	}
	f.txn.Ops = append(f.txn.Ops, wal.Op{Churn: append([]model.ChurnEvent(nil), events...)})
}

// UseWAL installs the write-ahead log on every shard and the coordinator.
// Shard records are scoped "s<i>" (plain "" at K=1, matching the ID
// namespace), coordinator records "x", and whole-fleet churn batches are
// logged once at manager level rather than per shard.
func (s *ShardedFleet) UseWAL(l *wal.Log) {
	for r, sh := range s.shards {
		scope := ""
		if s.part.K > 1 {
			scope = fmt.Sprintf("s%d", r)
		}
		sh.useWAL(l, scope)
	}
	s.cmu.Lock()
	s.wal = l
	s.cmu.Unlock()
}

// crossCountersLocked snapshots the coordinator's durable counter state.
// Caller holds s.cmu.
func (s *ShardedFleet) crossCountersLocked() wal.Counters {
	return wal.Counters{
		Admitted:      s.crossAdmitted,
		Rejected:      s.crossRejected,
		Released:      s.crossReleased,
		Repaired:      s.crossRepaired,
		RepairMoves:   s.crossMoves,
		ParkEvictions: s.crossParks,
		Solves:        s.crossSolves.Load(),
		Seq:           s.crossSeq,
		Fallbacks:     s.fallbacks,
		TPCRetries:    s.tpcRetries,
		TPCAborts:     s.tpcAborts,
	}
}

// beginCrossTxnLocked opens the coordinator's record for the current cmu
// epoch. Caller holds s.cmu.
func (s *ShardedFleet) beginCrossTxnLocked(kind wal.Kind) {
	if s.wal == nil {
		return
	}
	s.ctxn = &wal.Record{Kind: kind, Scope: wal.ScopeCross}
	s.ctxnPre = s.crossCountersLocked()
}

// endCrossTxnLocked closes the coordinator epoch's record; same skip rule
// and commit barrier as Fleet.endTxnLocked. Caller holds s.cmu.
func (s *ShardedFleet) endCrossTxnLocked() func() {
	txn := s.ctxn
	s.ctxn = nil
	if txn == nil {
		return func() {}
	}
	cur := s.crossCountersLocked()
	if len(txn.Ops) == 0 && cur == s.ctxnPre {
		return func() {}
	}
	txn.Counters = &cur
	lsn := s.wal.Append(txn)
	return func() { _ = s.wal.Commit(lsn) }
}

// ctxnDeploy records a coordinator admission in the current cmu epoch.
func (s *ShardedFleet) ctxnDeploy(d *Deployment) {
	if s.ctxn == nil {
		return
	}
	s.ctxn.Ops = append(s.ctxn.Ops, wal.Op{Deploy: deployState(d, "")})
}

// ctxnUpdate records a cross-region placement change (repair migration).
func (s *ShardedFleet) ctxnUpdate(d *Deployment) {
	if s.ctxn == nil {
		return
	}
	s.ctxn.Ops = append(s.ctxn.Ops, wal.Op{Deploy: updateState(d)})
}

// ctxnRemove records a coordinator deployment leaving the fleet.
func (s *ShardedFleet) ctxnRemove(id string) {
	if s.ctxn == nil {
		return
	}
	s.ctxn.Ops = append(s.ctxn.Ops, wal.Op{Remove: id})
}

// ctxnPark records a cross-region deployment entering the parked pool.
func (s *ShardedFleet) ctxnPark(p ParkedDeployment) {
	if s.ctxn == nil {
		return
	}
	ps := parkedState(p)
	s.ctxn.Ops = append(s.ctxn.Ops, wal.Op{Park: &ps})
}

// walChurnLocked logs one whole-fleet churn batch as a single manager-level
// record (scope "", no counters — replay routes it back through ApplyChurn,
// which re-splits events across shards and the boundary ledger exactly like
// the live path). Caller holds cmu and every shard lock, so the record
// cannot interleave with any shard or coordinator epoch.
func (s *ShardedFleet) walChurnLocked(events []model.ChurnEvent) func() {
	if s.wal == nil {
		return func() {}
	}
	rec := &wal.Record{
		Kind: wal.KindChurn,
		Ops:  []wal.Op{{Churn: append([]model.ChurnEvent(nil), events...)}},
	}
	lsn := s.wal.Append(rec)
	return func() { _ = s.wal.Commit(lsn) }
}

// AppendInstall durably logs a fleet install — the base network and shard
// count — and waits for it to commit, so recovery can always rebuild the
// manager before replaying the mutations that follow.
func AppendInstall(l *wal.Log, net *model.Network, shards int) error {
	lsn := l.Append(&wal.Record{
		Kind:    wal.KindInstall,
		Install: &wal.InstallState{Network: net, Shards: shards},
	})
	return l.Commit(lsn)
}

// deployState converts an admitted deployment to its durable form; requeueOf
// names the parked entry the admission drained, if any.
func deployState(d *Deployment, requeueOf string) *wal.DeploymentState {
	return &wal.DeploymentState{
		ID:            d.ID,
		Tenant:        d.Tenant,
		Objective:     int(d.Objective),
		Src:           d.src,
		Dst:           d.dst,
		Pipeline:      d.pipe,
		SLOMaxDelayMs: d.SLO.MaxDelayMs,
		SLOMinRateFPS: d.SLO.MinRateFPS,
		SLOClass:      string(d.SLO.Class),
		CostMLD:       d.cost.IncludeMLDInDelay,
		Assignment:    append([]model.NodeID(nil), d.Assignment...),
		Mapping:       d.Mapping,
		DelayMs:       d.DelayMs,
		RateFPS:       d.RateFPS,
		ReservedFPS:   d.ReservedFPS,
		ResClass:      d.reservation.Class,
		Seq:           d.Seq,
		RequeueOf:     requeueOf,
	}
}

// updateState converts a placement change to its durable form: only the
// fields a migration rewrites, with Update set so replay re-places the
// stored deployment instead of inserting a new one.
func updateState(d *Deployment) *wal.DeploymentState {
	return &wal.DeploymentState{
		ID:          d.ID,
		Assignment:  append([]model.NodeID(nil), d.Assignment...),
		Mapping:     d.Mapping,
		DelayMs:     d.DelayMs,
		RateFPS:     d.RateFPS,
		ReservedFPS: d.ReservedFPS,
		ResClass:    d.reservation.Class,
		Update:      true,
	}
}

// parkedState converts a parked deployment to its durable form.
func parkedState(p ParkedDeployment) wal.ParkedState {
	ps := wal.ParkedState{
		ID:            p.ID,
		Tenant:        p.Tenant,
		Reason:        p.Reason,
		Objective:     int(p.Req.Objective),
		Src:           p.Req.Src,
		Dst:           p.Req.Dst,
		Pipeline:      p.Req.Pipeline,
		SLOMaxDelayMs: p.Req.SLO.MaxDelayMs,
		SLOMinRateFPS: p.Req.SLO.MinRateFPS,
		SLOClass:      string(p.Req.SLO.Class),
	}
	if p.Req.Cost != nil {
		mld := p.Req.Cost.IncludeMLDInDelay
		ps.CostMLD = &mld
	}
	return ps
}

// parkedFromState rebuilds a parked deployment — identity plus re-admission
// request — from its durable form.
func parkedFromState(ps wal.ParkedState) ParkedDeployment {
	p := ParkedDeployment{
		ID:     ps.ID,
		Tenant: ps.Tenant,
		Reason: ps.Reason,
		Req: Request{
			Tenant:    ps.Tenant,
			Pipeline:  ps.Pipeline,
			Src:       ps.Src,
			Dst:       ps.Dst,
			Objective: model.Objective(ps.Objective),
			SLO: SLO{
				MaxDelayMs: ps.SLOMaxDelayMs,
				MinRateFPS: ps.SLOMinRateFPS,
				Class:      Class(ps.SLOClass),
			},
		},
	}
	if ps.CostMLD != nil {
		p.Req.Cost = &model.CostOptions{IncludeMLDInDelay: *ps.CostMLD}
	}
	return p
}

// ParkedStates converts a parked pool to its durable snapshot form, in
// requeue order (used by internal/churn's snapshot capture).
func ParkedStates(ps []ParkedDeployment) []wal.ParkedState {
	out := make([]wal.ParkedState, 0, len(ps))
	for _, p := range ps {
		out = append(out, parkedState(p))
	}
	return out
}

// ParkedFromStates rebuilds a parked pool from its durable snapshot form.
func ParkedFromStates(states []wal.ParkedState) []ParkedDeployment {
	out := make([]ParkedDeployment, 0, len(states))
	for _, ps := range states {
		out = append(out, parkedFromState(ps))
	}
	return out
}

// scopeFleet resolves a WAL record scope to the owning shard fleet.
func (s *ShardedFleet) scopeFleet(scope string) (*Fleet, error) {
	if scope == "" {
		if s.part.K != 1 {
			return nil, fmt.Errorf("fleet: wal scope %q on a %d-shard fleet", scope, s.part.K)
		}
		return s.shards[0], nil
	}
	if strings.HasPrefix(scope, "s") {
		if n, err := strconv.Atoi(scope[1:]); err == nil && n >= 0 && n < len(s.shards) {
			return s.shards[n], nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown wal scope %q", scope)
}
