package fleet

import (
	"fmt"

	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file is the read side of the write-ahead log: rebuilding a fleet
// manager from a recovered snapshot plus the replayed log suffix. Replay is
// a logical redo — records carry complete placement outcomes, so recovery
// rebuilds each reservation arithmetically (model.MappingReservation) and
// never re-runs a solver. Replay happens before UseWAL/UseJournal are
// installed on the rebuilt manager, so it neither re-logs nor re-journals.

// Recovered is the outcome of replaying a wal.Recovery: the rebuilt manager
// plus the state that lives outside it (the reconciler's parked pool and
// counter block, both owned by internal/churn at runtime).
type Recovered struct {
	// Manager is the rebuilt fleet manager (nil when the log contained no
	// install — a server that never took traffic).
	Manager Manager
	// Parked is the recovered parked pool, in requeue order.
	Parked []ParkedDeployment
	// Churn is the reconciler's last logged counter state, if any.
	Churn *wal.ChurnState
	// Install echoes the install the manager was rebuilt from.
	Install *wal.InstallState
}

// Builder constructs a fleet manager from a durable install record. The
// default builder covers New and NewSharded; services that partition with
// NewShardedWithPartition supply their own.
type Builder func(*wal.InstallState) (Manager, error)

// defaultBuild rebuilds the manager exactly as the service's install path
// does: a sharded fleet for Shards > 1 (partitioning is deterministic from
// the network and count), a plain fleet otherwise.
func defaultBuild(ins *wal.InstallState) (Manager, error) {
	if ins.Network == nil {
		return nil, fmt.Errorf("fleet: install record has no network")
	}
	if ins.Shards > 1 {
		return NewSharded(ins.Network, ins.Shards)
	}
	return New(ins.Network)
}

// Recover rebuilds fleet state from a wal.Recovery: it restores the
// snapshot (if any), replays every log record after it in sequence order,
// and recomputes the residual loads once at the end. A nil build uses
// defaultBuild.
func Recover(rec *wal.Recovery, build Builder) (*Recovered, error) {
	if build == nil {
		build = defaultBuild
	}
	out := &Recovered{}
	if rec.Snapshot != nil {
		if err := restoreSnapshot(out, rec.Snapshot, build); err != nil {
			return nil, err
		}
	}
	for i := range rec.Records {
		if err := applyRecord(out, &rec.Records[i], build); err != nil {
			return nil, fmt.Errorf("fleet: replay record %d: %w", rec.Records[i].Seq, err)
		}
	}
	if out.Manager != nil {
		finishReplay(out.Manager)
	}
	return out, nil
}

// applyRecord redoes one logged transition against the partially-rebuilt
// state.
func applyRecord(out *Recovered, r *wal.Record, build Builder) error {
	if r.Install != nil {
		m, err := build(r.Install)
		if err != nil {
			return err
		}
		out.Manager = m
		out.Install = r.Install
		out.Parked = nil
		out.Churn = nil
		return nil
	}
	if r.Kind == wal.KindChurnState {
		out.Churn = r.Churn
		return nil
	}
	if out.Manager == nil {
		return fmt.Errorf("record precedes any install")
	}
	// Churn ops replay through the live ApplyChurn path (the WAL is not yet
	// installed on the rebuilt manager, so nothing re-logs); placement ops
	// and counters apply scope-by-scope below.
	mutating := false
	for _, op := range r.Ops {
		if op.Churn != nil {
			if err := out.Manager.ApplyChurn(op.Churn); err != nil {
				return fmt.Errorf("churn: %w", err)
			}
			continue
		}
		mutating = true
	}
	if !mutating && r.Counters == nil {
		return nil
	}
	switch m := out.Manager.(type) {
	case *Fleet:
		if r.Scope != "" {
			return fmt.Errorf("scope %q on an unsharded fleet", r.Scope)
		}
		return m.applyWALRecord(r, out)
	case *ShardedFleet:
		return m.applyWALRecord(r, out)
	default:
		return fmt.Errorf("unknown manager type %T", out.Manager)
	}
}

// applyWALRecord redoes one fleet-scoped record: ordered ops, then the
// scope's counter block.
func (f *Fleet) applyWALRecord(r *wal.Record, out *Recovered) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.applyOpsLocked(r.Ops, out); err != nil {
		return err
	}
	if r.Counters != nil {
		f.applyCountersLocked(*r.Counters)
	}
	return nil
}

// applyOpsLocked redoes a record's placement ops in order. Churn ops were
// already applied by the caller. Caller holds f.mu.
func (f *Fleet) applyOpsLocked(ops []wal.Op, out *Recovered) error {
	for _, op := range ops {
		switch {
		case op.Deploy != nil:
			if err := f.restoreDeployLocked(op.Deploy, out); err != nil {
				return err
			}
		case op.Remove != "":
			delete(f.deps, op.Remove)
			f.order = removeID(f.order, op.Remove)
		case op.Park != nil:
			out.Parked = append(out.Parked, parkedFromState(*op.Park))
		}
	}
	return nil
}

// restoreDeployLocked redoes one admission or placement update. Residual
// loads are not touched here — finishReplay recomputes them once, in
// admission order, exactly like the live path's recompute. Caller holds
// f.mu.
func (f *Fleet) restoreDeployLocked(ds *wal.DeploymentState, out *Recovered) error {
	if ds.Update {
		d, ok := f.deps[ds.ID]
		if !ok {
			return fmt.Errorf("update for unknown deployment %q", ds.ID)
		}
		res, err := model.MappingReservation(f.base, d.pipe, model.NewMapping(ds.Assignment), ds.ReservedFPS)
		if err != nil {
			return fmt.Errorf("reservation for %q: %w", ds.ID, err)
		}
		res.Class = ds.ResClass
		d.Assignment = append([]model.NodeID(nil), ds.Assignment...)
		d.Mapping = ds.Mapping
		d.DelayMs = ds.DelayMs
		d.RateFPS = ds.RateFPS
		d.reservation = res
		return nil
	}
	d, err := deploymentFromState(f.base, ds)
	if err != nil {
		return err
	}
	f.deps[d.ID] = d
	f.order = append(f.order, d.ID)
	if ds.RequeueOf != "" {
		out.Parked = removeParked(out.Parked, ds.RequeueOf)
	}
	return nil
}

// deploymentFromState rebuilds a full in-memory deployment, reservation
// included, from its durable form.
func deploymentFromState(base *model.Network, ds *wal.DeploymentState) (*Deployment, error) {
	if ds.Pipeline == nil {
		return nil, fmt.Errorf("deployment %q has no pipeline", ds.ID)
	}
	res, err := model.MappingReservation(base, ds.Pipeline, model.NewMapping(ds.Assignment), ds.ReservedFPS)
	if err != nil {
		return nil, fmt.Errorf("reservation for %q: %w", ds.ID, err)
	}
	res.Class = ds.ResClass
	return &Deployment{
		ID:          ds.ID,
		Tenant:      ds.Tenant,
		Objective:   model.Objective(ds.Objective),
		Assignment:  append([]model.NodeID(nil), ds.Assignment...),
		Mapping:     ds.Mapping,
		DelayMs:     ds.DelayMs,
		RateFPS:     ds.RateFPS,
		ReservedFPS: ds.ReservedFPS,
		SLO: SLO{
			MaxDelayMs: ds.SLOMaxDelayMs,
			MinRateFPS: ds.SLOMinRateFPS,
			Class:      Class(ds.SLOClass),
		},
		Seq:         ds.Seq,
		pipe:        ds.Pipeline,
		cost:        model.CostOptions{IncludeMLDInDelay: ds.CostMLD},
		src:         ds.Src,
		dst:         ds.Dst,
		reservation: res,
	}, nil
}

// applyCountersLocked overwrites the fleet's counter state with a record's
// block (last record wins). Caller holds f.mu.
func (f *Fleet) applyCountersLocked(c wal.Counters) {
	f.admitted = c.Admitted
	f.rejected = c.Rejected
	f.released = c.Released
	f.moves = c.Moves
	f.repaired = c.Repaired
	f.repairMoves = c.RepairMoves
	f.parkEvicts = c.ParkEvictions
	f.preempts = c.Preemptions
	f.solves.Store(c.Solves)
	f.seq = c.Seq
}

// applyWALRecord routes one record to the owning scope: the coordinator for
// "x", a shard fleet otherwise.
func (s *ShardedFleet) applyWALRecord(r *wal.Record, out *Recovered) error {
	if r.Scope == wal.ScopeCross {
		return s.applyCrossRecord(r, out)
	}
	f, err := s.scopeFleet(r.Scope)
	if err != nil {
		return err
	}
	return f.applyWALRecord(r, out)
}

// applyCrossRecord redoes one coordinator record.
func (s *ShardedFleet) applyCrossRecord(r *wal.Record, out *Recovered) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for _, op := range r.Ops {
		switch {
		case op.Deploy != nil:
			ds := op.Deploy
			if ds.Update {
				d, ok := s.crossDeps[ds.ID]
				if !ok {
					return fmt.Errorf("update for unknown deployment %q", ds.ID)
				}
				res, err := model.MappingReservation(s.base, d.pipe, model.NewMapping(ds.Assignment), ds.ReservedFPS)
				if err != nil {
					return fmt.Errorf("reservation for %q: %w", ds.ID, err)
				}
				res.Class = ds.ResClass
				d.Assignment = append([]model.NodeID(nil), ds.Assignment...)
				d.Mapping = ds.Mapping
				d.DelayMs = ds.DelayMs
				d.RateFPS = ds.RateFPS
				d.reservation = res
				continue
			}
			d, err := deploymentFromState(s.base, ds)
			if err != nil {
				return err
			}
			s.crossDeps[d.ID] = d
			s.crossOrder = append(s.crossOrder, d.ID)
			if ds.RequeueOf != "" {
				out.Parked = removeParked(out.Parked, ds.RequeueOf)
			}
		case op.Remove != "":
			delete(s.crossDeps, op.Remove)
			s.crossOrder = removeID(s.crossOrder, op.Remove)
		case op.Park != nil:
			out.Parked = append(out.Parked, parkedFromState(*op.Park))
		}
	}
	if r.Counters != nil {
		s.applyCrossCountersLocked(*r.Counters)
	}
	return nil
}

// applyCrossCountersLocked overwrites the coordinator's counter state with
// a record's block. Caller holds s.cmu.
func (s *ShardedFleet) applyCrossCountersLocked(c wal.Counters) {
	s.crossAdmitted = c.Admitted
	s.crossRejected = c.Rejected
	s.crossReleased = c.Released
	s.crossRepaired = c.Repaired
	s.crossMoves = c.RepairMoves
	s.crossParks = c.ParkEvictions
	s.crossSolves.Store(c.Solves)
	s.crossSeq = c.Seq
	s.fallbacks = c.Fallbacks
	s.tpcRetries = c.TPCRetries
	s.tpcAborts = c.TPCAborts
}

// finishReplay recomputes residual loads once after every record applied —
// the same ordered accumulation the live path maintains incrementally.
func finishReplay(m Manager) {
	switch t := m.(type) {
	case *Fleet:
		t.mu.Lock()
		t.recomputeLocked()
		t.mu.Unlock()
	case *ShardedFleet:
		t.cmu.Lock()
		t.lockShards()
		if t.part.K == 1 && len(t.crossDeps) == 0 {
			// Keep the K=1 fast path byte-identical to a plain fleet: no
			// cross overlay exists, so leave external zero-length.
			t.shards[0].recomputeLocked()
		} else {
			t.rebuildCrossLocked("")
		}
		t.unlockShards()
		t.cmu.Unlock()
	}
}

// restoreSnapshot rebuilds the manager and every scope's state from a
// compacted snapshot.
func restoreSnapshot(out *Recovered, snap *wal.Snapshot, build Builder) error {
	if snap.Install == nil {
		return fmt.Errorf("fleet: snapshot %d has no install", snap.Seq)
	}
	m, err := build(snap.Install)
	if err != nil {
		return err
	}
	out.Manager = m
	out.Install = snap.Install
	out.Parked = ParkedFromStates(snap.Parked)
	out.Churn = snap.Churn
	for i := range snap.Scopes {
		sc := &snap.Scopes[i]
		switch t := m.(type) {
		case *Fleet:
			if sc.Scope != "" {
				return fmt.Errorf("fleet: snapshot scope %q on an unsharded fleet", sc.Scope)
			}
			if err := t.restoreScopeState(sc); err != nil {
				return err
			}
		case *ShardedFleet:
			if sc.Scope == wal.ScopeCross {
				if err := t.restoreCrossState(sc); err != nil {
					return err
				}
				continue
			}
			f, err := t.scopeFleet(sc.Scope)
			if err != nil {
				return err
			}
			if err := f.restoreScopeState(sc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unknown manager type %T", m)
		}
	}
	return nil
}

// restoreScopeState rebuilds one shard (or the standalone fleet) from its
// snapshot block: churn capacity factors, counters, and deployments in
// admission order.
func (f *Fleet) restoreScopeState(sc *wal.ScopeState) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(sc.NodeFactors) > 0 || len(sc.LinkFactors) > 0 {
		if err := f.residual.SetCapacityFactors(sc.NodeFactors, sc.LinkFactors); err != nil {
			return fmt.Errorf("fleet: snapshot scope %q factors: %w", sc.Scope, err)
		}
	}
	f.applyCountersLocked(sc.Counters)
	for i := range sc.Deploys {
		d, err := deploymentFromState(f.base, &sc.Deploys[i])
		if err != nil {
			return fmt.Errorf("fleet: snapshot scope %q: %w", sc.Scope, err)
		}
		f.deps[d.ID] = d
		f.order = append(f.order, d.ID)
	}
	return nil
}

// restoreCrossState rebuilds the coordinator from its snapshot block.
func (s *ShardedFleet) restoreCrossState(sc *wal.ScopeState) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if len(sc.NodeFactors) > 0 || len(sc.LinkFactors) > 0 {
		if err := s.cres.SetCapacityFactors(sc.NodeFactors, sc.LinkFactors); err != nil {
			return fmt.Errorf("fleet: snapshot coordinator factors: %w", err)
		}
	}
	s.applyCrossCountersLocked(sc.Counters)
	for i := range sc.Deploys {
		d, err := deploymentFromState(s.base, &sc.Deploys[i])
		if err != nil {
			return fmt.Errorf("fleet: snapshot coordinator: %w", err)
		}
		s.crossDeps[d.ID] = d
		s.crossOrder = append(s.crossOrder, d.ID)
	}
	return nil
}

// captureScopeLocked snapshots the fleet's durable state: churn factors,
// counters, and deployments in admission order. Caller holds f.mu.
func (f *Fleet) captureScopeLocked(scope string) wal.ScopeState {
	node, link := f.residual.CapacityFactors()
	sc := wal.ScopeState{
		Scope:       scope,
		NodeFactors: node,
		LinkFactors: link,
		Counters:    f.countersLocked(),
	}
	for _, id := range f.order {
		sc.Deploys = append(sc.Deploys, *deployState(f.deps[id], ""))
	}
	return sc
}

// captureCrossLocked snapshots the coordinator's durable state. Caller
// holds s.cmu.
func (s *ShardedFleet) captureCrossLocked() wal.ScopeState {
	node, link := s.cres.CapacityFactors()
	sc := wal.ScopeState{
		Scope:       wal.ScopeCross,
		NodeFactors: node,
		LinkFactors: link,
		Counters:    s.crossCountersLocked(),
	}
	for _, id := range s.crossOrder {
		sc.Deploys = append(sc.Deploys, *deployState(s.crossDeps[id], ""))
	}
	return sc
}

// CaptureSnapshot captures a consistent compacted snapshot of the manager's
// durable state, stamped with the log's last assigned sequence number. It
// holds every fleet lock for the duration, so the snapshot sits at a record
// boundary: every record with Seq <= snapshot.Seq is fully reflected,
// nothing after it is. Pending preemption-queue entries are captured (not
// drained) so a concurrent snapshot never loses them; internal/churn's
// CaptureSnapshot prepends the reconciler's own parked pool.
func CaptureSnapshot(m Manager, l *wal.Log) *wal.Snapshot {
	snap := &wal.Snapshot{}
	switch t := m.(type) {
	case *Fleet:
		t.mu.Lock()
		snap.Seq = l.LastSeq()
		snap.Install = &wal.InstallState{Network: t.base}
		snap.Scopes = []wal.ScopeState{t.captureScopeLocked("")}
		snap.Parked = ParkedStates(t.preemptedQ)
		t.mu.Unlock()
	case *ShardedFleet:
		t.cmu.Lock()
		t.lockShards()
		snap.Seq = l.LastSeq()
		snap.Install = &wal.InstallState{Network: t.base, Shards: t.part.K}
		for r, sh := range t.shards {
			scope := ""
			if t.part.K > 1 {
				scope = fmt.Sprintf("s%d", r)
			}
			snap.Scopes = append(snap.Scopes, sh.captureScopeLocked(scope))
		}
		if t.part.K > 1 {
			snap.Scopes = append(snap.Scopes, t.captureCrossLocked())
		}
		for _, sh := range t.shards {
			snap.Parked = append(snap.Parked, ParkedStates(sh.preemptedQ)...)
		}
		t.unlockShards()
		t.cmu.Unlock()
	}
	return snap
}

// removeParked deletes the first parked entry with the given ID, preserving
// requeue order.
func removeParked(ps []ParkedDeployment, id string) []ParkedDeployment {
	for i := range ps {
		if ps[i].ID == id {
			return append(ps[:i], ps[i+1:]...)
		}
	}
	return ps
}
