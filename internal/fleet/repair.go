package fleet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"elpc/internal/engine"
	"elpc/internal/journal"
	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file is the fleet's churn-facing surface: applying network-mutation
// events to the shared residual view, identifying which deployments a batch
// of events touches, and the incremental Repair pass that re-solves only
// those — the mechanism internal/churn's reconciliation loop is built on.

// ApplyChurn applies the events to the fleet's residual capacity view
// transactionally (all or nothing; see model.ResidualNetwork.ApplyChurn).
// It changes only what the network can carry: outstanding reservations are
// untouched, so after a capacity-reducing batch the touching deployments
// may be over capacity until Repair migrates or parks them.
func (f *Fleet) ApplyChurn(events []model.ChurnEvent) error {
	f.mu.Lock()
	f.beginTxnLocked(wal.KindChurn)
	err := f.residual.ApplyChurn(events)
	if err == nil {
		f.txnChurn(events)
	}
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return err
}

// Snapshot materializes the current residual network (loads and churn
// capacity factors applied) as a standalone Network.
func (f *Fleet) Snapshot() *model.Network {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.residual.Snapshot()
}

// Capacity returns the churn capacity factor per node and per link (copies;
// 1 = nominal, 0 = down; indices match the base network).
func (f *Fleet) Capacity() (node, link []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	node = make([]float64, f.base.N())
	for v := range node {
		node[v] = f.residual.NodeCapacity(model.NodeID(v))
	}
	link = make([]float64, f.base.M())
	for l := range link {
		link[l] = f.residual.LinkCapacity(l)
	}
	return node, link
}

// Affected returns, in admission order, the IDs of deployments whose
// placements touch any node or link named by the events: a node is touched
// when any module runs on it (even a zero-cost source or sink that reserves
// no capacity there), a link when any consecutive module groups traverse
// it. This is the incremental-repair frontier: deployments not in the set
// are provably unaffected by the batch (their placements use no mutated
// element), so Repair never needs to look at them.
func (f *Fleet) Affected(events []model.ChurnEvent) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	nodes, links := churnTargets(events)
	var out []string
	for _, id := range f.order {
		if placementTouches(f.base, f.deps[id], nodes, links) {
			out = append(out, id)
		}
	}
	return out
}

// churnTargets collects the node and link sets a batch of events mutates.
func churnTargets(events []model.ChurnEvent) (nodes map[model.NodeID]bool, links map[int]bool) {
	nodes = make(map[model.NodeID]bool)
	links = make(map[int]bool)
	for _, ev := range events {
		if ev.OnLink() {
			links[ev.Link] = true
		} else {
			nodes[ev.Node] = true
		}
	}
	return nodes, links
}

// placementTouches reports whether d's mapping uses any of the given nodes
// or links of base. Shared by Fleet.Affected and the sharded coordinator's
// cross-region frontier scan.
func placementTouches(base *model.Network, d *Deployment, nodes map[model.NodeID]bool, links map[int]bool) bool {
	groups := model.NewMapping(d.Assignment).Groups()
	for gi, g := range groups {
		if nodes[g.Node] {
			return true
		}
		if gi+1 < len(groups) && len(links) > 0 {
			if link, ok := base.LinkBetween(g.Node, groups[gi+1].Node); ok && links[link.ID] {
				return true
			}
		}
	}
	return false
}

// requestOf reconstructs the admission request of a live deployment so a
// parked deployment can be re-queued later with identical parameters. The
// warm state rides along: a parked or preempted deployment keeps its DP
// grids, so the requeue admission solves warm.
func requestOf(d *Deployment) Request {
	cost := d.cost
	return Request{
		Tenant:    d.Tenant,
		Pipeline:  d.pipe,
		Src:       d.src,
		Dst:       d.dst,
		Objective: d.Objective,
		SLO:       d.SLO,
		Cost:      &cost,
		warm:      d.warm,
	}
}

// placementScoreLocked evaluates d's current mapping on snap (the residual
// snapshot with d's own reservation removed) and reports whether the
// placement is still valid: its reservation fits the (possibly reduced)
// capacity factors, the delay SLO holds, and the reserved rate is still
// sustainable. Caller holds f.mu with d's reservation zeroed and loads
// recomputed; saved is the reservation under test.
func (f *Fleet) placementScoreLocked(d *Deployment, snap *model.Network, saved model.Reservation) (delay, rate float64, valid bool) {
	m := model.NewMapping(d.Assignment)
	delay = model.TotalDelay(snap, d.pipe, m, d.cost)
	rate = model.FrameRate(model.SharedBottleneck(snap, d.pipe, m))
	valid = f.residual.Fits(saved) &&
		!math.IsInf(delay, 1) &&
		(d.SLO.MaxDelayMs <= 0 || delay <= d.SLO.MaxDelayMs) &&
		rate >= d.ReservedFPS
	// A mapping using a down node is broken even when the cost model says
	// it reserves nothing there (zero-complexity sources and sinks): the
	// module has no host.
	if valid {
		for _, v := range d.Assignment {
			if f.residual.NodeIsDown(v) {
				valid = false
				break
			}
		}
	}
	return delay, rate, valid
}

// RepairOptions tunes a Repair pass.
type RepairOptions struct {
	// Workers > 1 precomputes the broken candidates' re-solves concurrently
	// (chunked over the installed engine pool, like parallel Rebalance)
	// before the sequential application loop. <= 1 solves each candidate
	// inline against the live residual state.
	Workers int `json:"workers,omitempty"`
}

// Repair actions.
const (
	// RepairKept means the placement survived the churn unchanged.
	RepairKept = "kept"
	// RepairMigrated means the deployment was re-solved onto a new mapping.
	RepairMigrated = "migrated"
	// RepairParked means no feasible placement remained; the deployment was
	// evicted and its capacity released. Parked deployments are returned to
	// the caller (internal/churn re-queues them when capacity returns) —
	// they are displaced, not lost.
	RepairParked = "parked"
)

// RepairOutcome reports Repair's decision for one affected deployment.
type RepairOutcome struct {
	ID     string `json:"id"`
	Action string `json:"action"`
	Reason string `json:"reason,omitempty"`
	// DelayMs and RateFPS score the surviving mapping (kept or migrated) on
	// the post-churn residual network; zero for parked deployments.
	DelayMs float64 `json:"delay_ms,omitempty"`
	RateFPS float64 `json:"rate_fps,omitempty"`
}

// ParkedDeployment is one deployment evicted by Repair: its identity plus
// the reconstructed admission request needed to re-queue it.
type ParkedDeployment struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	Reason string `json:"reason"`
	// Req re-admits the deployment with its original parameters.
	Req Request `json:"-"`
}

// RepairReport summarizes one Repair pass.
type RepairReport struct {
	// Checked counts candidates examined; Resolved counts the subset that
	// required a re-solve (their placements were broken by the churn).
	Checked  int `json:"checked"`
	Resolved int `json:"resolved"`
	Kept     int `json:"kept"`
	Migrated int `json:"migrated"`
	// Outcomes lists per-deployment decisions in repair order (SLO class
	// rank descending, admission order within a class).
	Outcomes []RepairOutcome `json:"outcomes,omitempty"`
	// Parked lists the evicted deployments (len(Parked) fills the
	// kept/migrated/parked accounting gap).
	Parked []ParkedDeployment `json:"parked,omitempty"`
}

// Displaced is the number of deployments the pass moved or evicted.
func (r *RepairReport) Displaced() int { return r.Migrated + len(r.Parked) }

// Repair is the incremental post-churn reconciliation pass: it examines
// exactly the given deployments (normally Affected(events)), keeps every
// placement that is still valid under the new capacity factors without
// re-solving it, re-solves only the broken ones against the residual
// network (their own reservation removed, everyone else's kept), migrates
// those whose re-solve fits, and parks — evicts and returns — those with no
// feasible placement. Unknown IDs are skipped.
//
// With opt.Workers > 1 the broken candidates' re-solves are precomputed
// concurrently against the pre-repair residual state; every guard is then
// re-validated live at application time, so a stale proposal can park a
// candidate a sequential pass would have re-fit (the re-queue loop recovers
// it) but can never corrupt capacity accounting.
func (f *Fleet) Repair(ids []string, opt RepairOptions) RepairReport {
	t0 := time.Now()
	defer repairSeconds.ObserveSince(t0)
	f.mu.Lock()
	f.beginTxnLocked(wal.KindRepair)
	rep := f.repairLocked(ids, opt)
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return rep
}

// repairLocked is the repair pass body. Caller holds f.mu inside a WAL
// epoch.
func (f *Fleet) repairLocked(ids []string, opt RepairOptions) RepairReport {
	// Keep admission order and drop stale IDs, then lift higher SLO classes
	// to the front: on a degraded network the candidates repaired first
	// claim the surviving residual, so guaranteed deployments must re-fit
	// before best-effort ones compete for the same capacity. The sort is
	// stable, so within a class admission order is preserved (all-standard
	// fleets see the exact pre-class behavior).
	live := make([]string, 0, len(ids))
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for _, id := range f.order {
		if want[id] {
			live = append(live, id)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		return f.deps[live[i]].SLO.Class.Rank() > f.deps[live[j]].SLO.Class.Rank()
	})

	rep := RepairReport{}
	if len(live) == 0 {
		return rep
	}

	// Phases 1+2 exist only for the parallel path: classify candidates on
	// the pre-repair state, then precompute the broken ones' re-solves
	// concurrently. The sequential path skips both — phase 3 classifies
	// and solves inline, so nothing is computed twice.
	var proposals map[string]proposal
	if opt.Workers > 1 && len(live) > 1 {
		broken := make([]string, 0, len(live))
		for _, id := range live {
			d := f.deps[id]
			saved := d.reservation
			d.reservation = emptyReservation(f.base)
			f.recomputeLocked()
			_, _, valid := f.placementScoreLocked(d, f.residual.Snapshot(), saved)
			d.reservation = saved
			if !valid {
				broken = append(broken, id)
			}
		}
		f.recomputeLocked()
		if len(broken) > 1 {
			pool := f.pool
			if pool == nil {
				transient := engine.NewPool(opt.Workers)
				defer transient.Close()
				pool = transient
			}
			out := make([]proposal, len(broken))
			f.proposeLocked(broken, out, 0, len(broken), opt.Workers, pool)
			proposals = make(map[string]proposal, len(broken))
			for i, id := range broken {
				proposals[id] = out[i]
			}
		}
	}

	// Phase 3: apply sequentially in admission order, every guard against
	// the live residual state.
	for _, id := range live {
		d := f.deps[id]
		f.repaired++
		rep.Checked++

		saved := d.reservation
		d.reservation = emptyReservation(f.base)
		f.recomputeLocked()
		snap := f.residual.Snapshot()

		delay, rate, valid := f.placementScoreLocked(d, snap, saved)
		if valid {
			d.reservation = saved
			f.recomputeLocked()
			rep.Kept++
			f.record(journal.Event{
				Kind: journal.RepairKept, Deployment: id, Tenant: d.Tenant,
				Mapping: d.Mapping, DelayMs: delay, RateFPS: rate,
			})
			rep.Outcomes = append(rep.Outcomes, RepairOutcome{
				ID: id, Action: RepairKept, DelayMs: delay, RateFPS: rate,
			})
			continue
		}

		// Broken: take the precomputed proposal, or solve inline (a phase-1
		// "valid" can turn broken once earlier repairs shifted load).
		rep.Resolved++
		prop, ok := proposals[id]
		if !ok {
			var m *model.Mapping
			var err error
			m, _, _, err = f.solveCounted(f.residual, requestOf(d), d.cost, f.warmFor(d))
			prop = proposal{m: m, err: err}
		}

		park := func(reason string) {
			parked := ParkedDeployment{ID: id, Tenant: d.Tenant, Reason: reason, Req: requestOf(d)}
			delete(f.deps, id)
			for i, oid := range f.order {
				if oid == id {
					f.order = append(f.order[:i], f.order[i+1:]...)
					break
				}
			}
			f.recomputeLocked()
			f.parkEvicts++
			parkEvictionsTotal.Inc()
			f.record(journal.Event{
				Kind: journal.RepairParked, Deployment: id, Tenant: d.Tenant, Detail: reason,
			})
			f.txnRemove(id)
			f.txnPark(parked)
			rep.Parked = append(rep.Parked, parked)
			rep.Outcomes = append(rep.Outcomes, RepairOutcome{ID: id, Action: RepairParked, Reason: reason})
		}

		if prop.err != nil {
			park(fmt.Sprintf("re-solve failed: %v", prop.err))
			continue
		}
		m := prop.m
		// A re-solve can still route zero-cost modules (the pinned source
		// or sink, in particular) through a down node, because the cost
		// model prices them at zero there; such a mapping has a hostless
		// module and cannot be applied.
		downNode := -1
		for _, v := range m.Assign {
			if f.residual.NodeIsDown(v) {
				downNode = int(v)
				break
			}
		}
		if downNode >= 0 {
			park(fmt.Sprintf("no feasible placement: node v%d is down", downNode))
			continue
		}
		newDelay := model.TotalDelay(snap, d.pipe, m, d.cost)
		newRate := model.FrameRate(model.SharedBottleneck(snap, d.pipe, m))
		if math.IsInf(newDelay, 1) {
			park("re-solve has unbounded delay on the degraded network")
			continue
		}
		if d.SLO.MaxDelayMs > 0 && newDelay > d.SLO.MaxDelayMs {
			park(fmt.Sprintf("re-solve delay %.3f ms violates SLO %.3f ms", newDelay, d.SLO.MaxDelayMs))
			continue
		}
		if newRate < d.ReservedFPS {
			park(fmt.Sprintf("re-solve rate %.3f fps below reserved %.3f fps", newRate, d.ReservedFPS))
			continue
		}
		res, err := model.MappingReservation(f.base, d.pipe, m, d.ReservedFPS)
		if err != nil {
			park(fmt.Sprintf("reservation: %v", err))
			continue
		}
		if !f.residual.Fits(res) {
			park("re-solved reservation does not fit the degraded network")
			continue
		}
		d.Assignment = m.Assign
		d.Mapping = m.String()
		d.DelayMs = newDelay
		d.RateFPS = newRate
		d.reservation = res
		f.recomputeLocked()
		f.repairMoves++
		rep.Migrated++
		f.record(journal.Event{
			Kind: journal.RepairMigrated, Deployment: id, Tenant: d.Tenant,
			Mapping: d.Mapping, DelayMs: newDelay, RateFPS: newRate,
		})
		f.txnUpdate(d)
		rep.Outcomes = append(rep.Outcomes, RepairOutcome{
			ID: id, Action: RepairMigrated, DelayMs: newDelay, RateFPS: newRate,
		})
	}
	return rep
}

// emptyReservation is an all-zero reservation shaped for net.
func emptyReservation(net *model.Network) model.Reservation {
	return model.Reservation{
		NodeFrac: make([]float64, net.N()),
		LinkFrac: make([]float64, net.M()),
	}
}
