package fleet

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elpc/internal/engine"
	"elpc/internal/journal"
	"elpc/internal/model"
	"elpc/internal/wal"
)

// This file is the sharded fleet manager: a region partition of the shared
// network (model.PartitionNetwork over graph.PartitionK) with one
// independently locked Fleet per region, so deployments in different
// regions admit, release, and repair concurrently instead of serializing on
// one global mutex. Single-region traffic never takes more than its own
// shard's lock; cross-region traffic falls back to a coordinator that
// two-phase-reserves the boundary links between regions.

// Manager is the placement-management surface shared by Fleet and
// ShardedFleet: everything the planning service, the churn reconciler, and
// the harness scenarios need from a multi-tenant placement engine. A plain
// Fleet is a Manager with one global lock; a ShardedFleet is a Manager
// whose regions make progress independently.
type Manager interface {
	// Deploy admits one pipeline (rejections wrap ErrRejected).
	Deploy(Request) (Deployment, error)
	// DeployBatch admits a burst of requests in one class/scarcity-ordered
	// pass (one scatter per shard plus one coordinator pass when sharded),
	// reporting per-request outcomes at the original indices.
	DeployBatch([]Request) []BatchOutcome
	// TakePreempted drains the deployments displaced by guaranteed
	// admissions since the last call, for re-queueing.
	TakePreempted() []ParkedDeployment
	// Release returns a deployment's capacity (unknown IDs wrap ErrNotFound).
	Release(id string) error
	// Describe returns a copy of one deployment.
	Describe(id string) (Deployment, bool)
	// List returns copies of all deployments.
	List() []Deployment
	// Stats snapshots counters and utilization gauges.
	Stats() Stats
	// Rebalance runs one rebalance pass.
	Rebalance(RebalanceOptions) Report
	// ApplyChurn applies a transactional batch of network-mutation events.
	ApplyChurn([]model.ChurnEvent) error
	// Affected returns the IDs of deployments whose placements touch any
	// element the events mutate.
	Affected([]model.ChurnEvent) []string
	// Repair re-solves exactly the given deployments after churn.
	Repair([]string, RepairOptions) RepairReport
	// Network returns the shared base network.
	Network() *model.Network
	// UsePool installs the engine pool parallel passes fan out over.
	UsePool(*engine.Pool)
	// UseJournal installs the event journal state transitions are recorded
	// into (nil disables recording).
	UseJournal(*journal.Journal)
	// UseWAL installs the write-ahead log every mutating transition is
	// durably recorded into before acknowledgment (nil disables logging).
	UseWAL(*wal.Log)
	// SLOReport re-scores every live deployment's delivered delay and rate
	// on the current residual network against its admission SLO.
	SLOReport() SLOReport
	// SolveCount returns the number of objective solves run so far.
	SolveCount() uint64
	// SetWarmStart toggles warm-start incremental solving (on by default).
	// Warm and cold solves are byte-identical; the toggle trades CPU for
	// retained-grid memory.
	SetWarmStart(bool)
	// WarmSolveStats snapshots the warm-start solve outcome counters.
	WarmSolveStats() WarmSolveStats
}

// Compile-time checks that both managers implement the shared surface.
var (
	_ Manager = (*Fleet)(nil)
	_ Manager = (*ShardedFleet)(nil)
)

// TwoPhaseAttempts is the number of propose/commit rounds a cross-region
// deployment gets before admission control gives up: the solve runs without
// any shard lock held, so a concurrent single-shard admission can invalidate
// the proposal, in which case the coordinator re-solves against the fresher
// composed view.
const TwoPhaseAttempts = 2

// crossIDPrefix namespaces coordinator-owned deployment IDs ("x-d-000001");
// shard-owned IDs carry "s<shard>-" (empty at K=1, so a one-shard fleet's
// IDs match a plain Fleet's byte for byte).
const crossIDPrefix = "x-"

// ShardedFleet partitions the shared network into K regions and runs one
// Fleet per region, each with its own mutex, so placements in different
// regions never contend. Deployments are routed by placement affinity:
//
//   - Src and Dst in the same region: the deployment is solved entirely
//     inside that region's sub-network under that shard's lock alone. If
//     the region rejects it (no in-region path, or regional capacity
//     exhausted) and K > 1, the request falls back to the coordinator.
//   - Src and Dst in different regions — or a regional fallback: the
//     coordinator solves on the composed residual view of the whole network
//     and two-phase-reserves the result: the solve runs with no shard lock
//     held (phase 1), then every involved shard is locked in index order and
//     the reservation — including the cross-region boundary links no shard
//     owns — is re-validated against the live composed view and committed
//     atomically (phase 2), retrying the solve when a concurrent admission
//     invalidated it.
//
// Churn events are routed to the shard owning the mutated element (boundary
// links to the coordinator), so Repair stays incremental per shard: an event
// inside one region never examines, locks, or re-solves another region's
// deployments.
//
// A one-shard ShardedFleet is behaviorally identical to a plain Fleet —
// same admissions, same placements, same IDs, same stats — which is the
// invariant TestShardedK1Equivalence enforces.
//
// All methods are safe for concurrent use.
type ShardedFleet struct {
	base   *model.Network
	part   *model.Partition
	shards []*Fleet

	// Coordinator state: cross-region deployments and the boundary-link
	// capacity view. cmu serializes coordinator operations; operations that
	// also touch shard state additionally lock every shard (always in index
	// order, after cmu — single-shard traffic takes only its shard's lock,
	// so the two orders can never deadlock).
	cmu        sync.Mutex
	cres       *model.ResidualNetwork // boundary-link churn factors (loads unused)
	crossDeps  map[string]*Deployment
	crossOrder []string
	crossSum   model.Reservation // sum of cross-region reservations, overlaid on every shard
	crossSeq   uint64

	crossSolves   atomic.Uint64
	crossAdmitted uint64
	crossRejected uint64
	crossReleased uint64
	crossRepaired uint64
	crossMoves    uint64
	crossParks    uint64
	// fallbacks counts single-region rejections retried through the
	// coordinator; tpcRetries counts phase-2 validation failures that forced
	// a re-solve; tpcAborts counts admissions abandoned after exhausting
	// every two-phase round (the health engine's abort-rate signal).
	fallbacks  uint64
	tpcRetries uint64
	tpcAborts  uint64

	// jr receives coordinator-path events (2PC phases, cross-region repair
	// outcomes); shard-path events are recorded by the shards themselves.
	jr *journal.Journal
	// wal durably logs coordinator epochs (scope "x") and whole-fleet churn
	// batches; shard epochs are logged by the shards themselves. ctxn and
	// ctxnPre are the coordinator's in-flight record and its counter state
	// at epoch start (see wal.go).
	wal     *wal.Log
	ctxn    *wal.Record
	ctxnPre wal.Counters
}

// NewSharded partitions base into the given number of regions (via
// model.PartitionNetwork) and builds a ShardedFleet over them. shards must
// be in [1, base.N()]; one shard yields a fleet behaviorally identical to
// New(base).
func NewSharded(base *model.Network, shards int) (*ShardedFleet, error) {
	if base == nil {
		return nil, fmt.Errorf("fleet: nil network")
	}
	part, err := model.PartitionNetwork(base, shards)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return NewShardedWithPartition(base, part)
}

// NewShardedWithPartition builds a ShardedFleet over a caller-supplied
// partition of base (for callers that partition along known cluster or
// datacenter boundaries instead of the default graph partitioner).
func NewShardedWithPartition(base *model.Network, part *model.Partition) (*ShardedFleet, error) {
	if base == nil {
		return nil, fmt.Errorf("fleet: nil network")
	}
	if part == nil || part.K < 1 || len(part.PartOf) != base.N() || len(part.LinkOwner) != base.M() {
		return nil, fmt.Errorf("fleet: partition does not match network shape")
	}
	s := &ShardedFleet{
		base:      base,
		part:      part,
		cres:      model.NewResidualNetwork(base),
		crossDeps: make(map[string]*Deployment),
		crossSum:  emptyReservation(base),
	}
	for r := 0; r < part.K; r++ {
		f, err := New(base)
		if err != nil {
			return nil, err
		}
		if part.K > 1 {
			f.idPrefix = fmt.Sprintf("s%d-", r)
			f.region = part.View(base, r)
		}
		s.shards = append(s.shards, f)
	}
	return s, nil
}

// Network returns the shared base network (full nominal capacity).
func (s *ShardedFleet) Network() *model.Network { return s.base }

// Partition returns the region partition the fleet is sharded along.
func (s *ShardedFleet) Partition() *model.Partition { return s.part }

// Shards returns the number of regions.
func (s *ShardedFleet) Shards() int { return s.part.K }

// UsePool installs the engine pool on every shard (see Fleet.UsePool).
func (s *ShardedFleet) UsePool(p *engine.Pool) {
	for _, sh := range s.shards {
		sh.UsePool(p)
	}
}

// UseJournal installs the event journal on every shard and the coordinator.
func (s *ShardedFleet) UseJournal(j *journal.Journal) {
	for _, sh := range s.shards {
		sh.UseJournal(j)
	}
	s.cmu.Lock()
	s.jr = j
	s.cmu.Unlock()
}

// recordCross appends one coordinator event to the installed journal
// (shard label "x", matching the crossIDPrefix namespace). Caller holds cmu.
func (s *ShardedFleet) recordCross(ev journal.Event) {
	if s.jr == nil {
		return
	}
	if ev.Actor == "" {
		ev.Actor = journal.ActorCoordinator
	}
	if ev.Shard == "" {
		ev.Shard = "x"
	}
	s.jr.Append(ev)
}

// SolveCount returns the objective solves run across all shards and the
// coordinator.
func (s *ShardedFleet) SolveCount() uint64 {
	n := s.crossSolves.Load()
	for _, sh := range s.shards {
		n += sh.SolveCount()
	}
	return n
}

// SetWarmStart toggles warm-start solving on every shard. Coordinator
// (cross-region) solves always run cold: their composed snapshots are
// rebuilt per attempt and owned by no shard, so there is no stable residual
// view to retain grids against.
func (s *ShardedFleet) SetWarmStart(on bool) {
	for _, sh := range s.shards {
		sh.SetWarmStart(on)
	}
}

// WarmSolveStats sums the warm-start outcome counters across shards.
func (s *ShardedFleet) WarmSolveStats() WarmSolveStats {
	var w WarmSolveStats
	for _, sh := range s.shards {
		ws := sh.WarmSolveStats()
		w.Rebuilds += ws.Rebuilds
		w.Partials += ws.Partials
		w.Hits += ws.Hits
		w.Bypasses += ws.Bypasses
	}
	return w
}

// lockShards acquires every shard's mutex in index order; unlockShards
// releases them. Coordinator paths always lock cmu first, then shards in
// this fixed order, so they cannot deadlock with each other or with
// single-shard operations (which take exactly one shard mutex and nothing
// else).
func (s *ShardedFleet) lockShards() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *ShardedFleet) unlockShards() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// shardOfID parses the owning shard index from a deployment ID ("s3-d-…"),
// returning -1 for coordinator ("x-d-…") and unprefixed IDs.
func shardOfID(id string) int {
	if !strings.HasPrefix(id, "s") {
		return -1
	}
	dash := strings.IndexByte(id, '-')
	if dash <= 1 {
		return -1
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// composedLocked assembles the residual view of the whole network from the
// shards' views and the coordinator's boundary ledger: every node and
// internal link reads its owning shard's load and churn factor (shard loads
// already include the cross-region overlay, so nothing is counted twice);
// boundary links read the coordinator's churn factor and the summed
// cross-region load. Caller holds every shard lock and cmu.
func (s *ShardedFleet) composedLocked() *model.ResidualNetwork {
	comp := model.NewResidualNetwork(s.base)
	nodeCap := make([]float64, s.base.N())
	linkCap := make([]float64, s.base.M())
	load := emptyReservation(s.base)
	for v := range nodeCap {
		sh := s.shards[s.part.PartOf[v]]
		nodeCap[v] = sh.residual.NodeCapacity(model.NodeID(v))
		load.NodeFrac[v] = sh.residual.NodeLoad(model.NodeID(v))
	}
	for l := range linkCap {
		if owner := s.part.LinkOwner[l]; owner != model.BoundaryOwner {
			linkCap[l] = s.shards[owner].residual.LinkCapacity(l)
			load.LinkFrac[l] = s.shards[owner].residual.LinkLoad(l)
		} else {
			linkCap[l] = s.cres.LinkCapacity(l)
			load.LinkFrac[l] = s.crossSum.LinkFrac[l]
		}
	}
	if err := comp.SetCapacityFactors(nodeCap, linkCap); err != nil {
		panic(fmt.Sprintf("fleet: composed factors: %v", err)) // shapes match by construction
	}
	if err := comp.SetLoad([]model.Reservation{load}); err != nil {
		panic(fmt.Sprintf("fleet: composed load: %v", err))
	}
	return comp
}

// rebuildCrossLocked recomputes the cross-region reservation overlay as the
// ordered sum of coordinator deployments (excluding the given ID, if any)
// and pushes it onto every shard, whose loads are then recomputed. Caller
// holds every shard lock and cmu.
func (s *ShardedFleet) rebuildCrossLocked(exclude string) {
	sum := emptyReservation(s.base)
	for _, id := range s.crossOrder {
		if id == exclude {
			continue
		}
		res := s.crossDeps[id].reservation
		for i, f := range res.NodeFrac {
			sum.NodeFrac[i] += f
		}
		for i, f := range res.LinkFrac {
			sum.LinkFrac[i] += f
		}
	}
	s.crossSum = sum
	for _, sh := range s.shards {
		sh.external = sum
		sh.recomputeLocked()
	}
}

// Deploy admits one pipeline, routed by placement affinity: same-region
// endpoints go to their shard alone; cross-region endpoints — and
// same-region requests the region rejected, when K > 1 — go through the
// coordinator's two-phase path. Rejections wrap ErrRejected; structural
// errors (bad request) do not.
func (s *ShardedFleet) Deploy(req Request) (Deployment, error) {
	if err := s.shards[0].validateRequest(req); err != nil {
		return Deployment{}, err
	}
	if s.part.SameRegion(req.Src, req.Dst) {
		d, err := s.shards[s.part.Region(req.Src)].Deploy(req)
		if err == nil || s.part.K == 1 || !errors.Is(err, ErrRejected) {
			return d, err
		}
		// The region could not host it; retry with the whole network in
		// view. The regional rejection stays counted on the shard (the
		// fallback counter reconciles fleet-level Stats).
		return s.deployCross(req, true)
	}
	return s.deployCross(req, false)
}

// DeployBatch admits a burst of requests with one scatter per shard plus
// one coordinator pass: structurally invalid requests fail fast, valid ones
// are routed by placement affinity — same-region requests join their
// shard's single-lock-epoch batch (the shards' batches run concurrently,
// each under its own lock alone), and cross-region requests, plus regional
// rejections falling back at K > 1, run through the coordinator's two-phase
// path in one class/scarcity-ordered pass. Outcomes are reported at each
// request's original index.
func (s *ShardedFleet) DeployBatch(reqs []Request) []BatchOutcome {
	if s.part.K == 1 {
		return s.shards[0].DeployBatch(reqs)
	}
	out := make([]BatchOutcome, len(reqs))
	perShard := make([][]int, s.part.K)
	var cross []int
	for i := range reqs {
		out[i].Index = i
		if err := s.shards[0].validateRequest(reqs[i]); err != nil {
			out[i].Err = err
			continue
		}
		if s.part.SameRegion(reqs[i].Src, reqs[i].Dst) {
			r := s.part.Region(reqs[i].Src)
			perShard[r] = append(perShard[r], i)
		} else {
			cross = append(cross, i)
		}
	}

	// Scatter: one batch per shard, concurrent — each goroutine takes only
	// its own shard's lock, so regions make progress independently. Each
	// goroutine writes only its own fallbacks slot and its own out indices.
	fallbacks := make([][]int, s.part.K)
	var wg sync.WaitGroup
	for r, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int, idx []int) {
			defer wg.Done()
			sub := make([]Request, len(idx))
			for k, i := range idx {
				sub[k] = reqs[i]
			}
			for k, o := range s.shards[r].DeployBatch(sub) {
				i := idx[k]
				if o.Err != nil && errors.Is(o.Err, ErrRejected) {
					// The region could not host it; retry through the
					// coordinator after the scatter. The regional rejection
					// stays counted on the shard (the fallback counter
					// reconciles fleet-level Stats, as in Deploy).
					fallbacks[r] = append(fallbacks[r], i)
					continue
				}
				out[i].Deployment, out[i].Err = o.Deployment, o.Err
			}
		}(r, idx)
	}
	wg.Wait()
	fellBack := make(map[int]bool)
	for _, fb := range fallbacks {
		for _, i := range fb {
			fellBack[i] = true
		}
		cross = append(cross, fb...)
	}

	// Gather: one coordinator pass over the cross-region (and fallen-back)
	// requests in batch-priority order.
	sortByPriority(reqs, cross)
	for _, i := range cross {
		out[i].Deployment, out[i].Err = s.deployCross(reqs[i], fellBack[i])
	}
	return out
}

// TakePreempted drains the deployments displaced by guaranteed admissions
// across every shard (the coordinator's two-phase path never preempts).
func (s *ShardedFleet) TakePreempted() []ParkedDeployment {
	var out []ParkedDeployment
	for _, sh := range s.shards {
		out = append(out, sh.TakePreempted()...)
	}
	return out
}

// rejectCross records and wraps a coordinator admission failure, journaling
// the rejection with the requesting tenant. Caller holds cmu.
func (s *ShardedFleet) rejectCross(req Request, format string, args ...any) error {
	s.crossRejected++
	rejectedTotal.Inc()
	reason := fmt.Sprintf(format, args...)
	s.recordCross(journal.Event{Kind: journal.DeployRejected, Tenant: req.Tenant, Detail: reason})
	return fmt.Errorf("fleet: %w: %s", ErrRejected, reason)
}

// deployCross is the coordinator path: solve on the composed residual view
// of the whole network with no shard lock held (phase 1), then lock every
// shard and two-phase-reserve — re-validate the proposal against the live
// composed view, including the boundary links between regions, and commit
// the reservation atomically (phase 2). A proposal invalidated by a
// concurrent single-shard admission is re-solved up to TwoPhaseAttempts
// times.
func (s *ShardedFleet) deployCross(req Request, fallback bool) (Deployment, error) {
	t0 := time.Now()
	defer deploySeconds.ObserveSince(t0)
	cost := model.DefaultCostOptions()
	if req.Cost != nil {
		cost = *req.Cost
	}
	s.cmu.Lock()
	s.beginCrossTxnLocked(wal.KindDeploy)
	d, err := s.deployCrossLocked(req, fallback, cost)
	commit := s.endCrossTxnLocked()
	s.cmu.Unlock()
	commit()
	return d, err
}

// deployCrossLocked is the two-phase admission body. Caller holds s.cmu
// inside a coordinator WAL epoch.
func (s *ShardedFleet) deployCrossLocked(req Request, fallback bool, cost model.CostOptions) (Deployment, error) {
	if fallback {
		s.fallbacks++
		tpcFallbacksTotal.Inc()
	}

	for attempt := 0; attempt < TwoPhaseAttempts; attempt++ {
		// Phase 1 — propose: compose the current view (briefly locking the
		// shards), then solve with no shard lock held, so regional traffic
		// keeps flowing underneath the expensive solve.
		s.lockShards()
		comp := s.composedLocked()
		s.unlockShards()
		s.crossSolves.Add(1)
		m, _, _, err := solve(comp.Snapshot(), req, cost, nil)
		if err != nil {
			if errors.Is(err, model.ErrInfeasible) {
				return Deployment{}, s.rejectCross(req, "no feasible mapping on composed residual network: %v", err)
			}
			return Deployment{}, err
		}
		s.recordCross(journal.Event{
			Kind: journal.TwoPhaseReserve, Tenant: req.Tenant,
			Detail:  fmt.Sprintf("round %d/%d proposed", attempt+1, TwoPhaseAttempts),
			Mapping: m.String(),
		})

		// Phase 2 — reserve: under every shard lock, re-score the proposed
		// mapping on the live composed view, re-run every admission guard,
		// and commit node, internal-link, and boundary-link capacity in one
		// atomic step.
		s.lockShards()
		live := s.composedLocked()
		snap := live.Snapshot()
		down := -1
		for _, v := range m.Assign {
			if live.NodeIsDown(v) {
				down = int(v)
				break
			}
		}
		if down >= 0 {
			s.unlockShards()
			return Deployment{}, s.rejectCross(req, "no feasible placement: node v%d is down", down)
		}
		delay := model.TotalDelay(snap, req.Pipeline, m, cost)
		rate := model.FrameRate(model.SharedBottleneck(snap, req.Pipeline, m))
		if req.SLO.MaxDelayMs > 0 && delay > req.SLO.MaxDelayMs {
			s.unlockShards()
			return Deployment{}, s.rejectCross(req, "delay %.3f ms exceeds SLO %.3f ms", delay, req.SLO.MaxDelayMs)
		}
		reserved := admissionRate(req, rate)
		if rate < reserved || math.IsInf(delay, 1) {
			s.unlockShards()
			return Deployment{}, s.rejectCross(req, "sustainable rate %.3f fps below demand %.3f fps", rate, reserved)
		}
		res, err := model.MappingReservation(s.base, req.Pipeline, m, reserved)
		if err != nil {
			s.unlockShards()
			return Deployment{}, err
		}
		if !live.Fits(res) {
			// A concurrent regional admission consumed the capacity the
			// proposal was solved against; re-solve against the fresher view.
			s.unlockShards()
			s.tpcRetries++
			tpcRetriesTotal.Inc()
			s.recordCross(journal.Event{
				Kind: journal.TwoPhaseValidate, Tenant: req.Tenant,
				Detail: fmt.Sprintf("round %d/%d: reservation no longer fits the live composed view", attempt+1, TwoPhaseAttempts),
			})
			continue
		}
		s.crossSeq++
		d := &Deployment{
			ID:          fmt.Sprintf("%sd-%06d", crossIDPrefix, s.crossSeq),
			Tenant:      req.Tenant,
			Objective:   req.Objective,
			Assignment:  m.Assign,
			Mapping:     m.String(),
			DelayMs:     delay,
			RateFPS:     rate,
			ReservedFPS: reserved,
			SLO:         req.SLO,
			Seq:         s.crossSeq,
			pipe:        req.Pipeline,
			cost:        cost,
			src:         req.Src,
			dst:         req.Dst,
			reservation: res,
		}
		s.crossDeps[d.ID] = d
		s.crossOrder = append(s.crossOrder, d.ID)
		s.rebuildCrossLocked("")
		s.unlockShards()
		s.crossAdmitted++
		admittedTotal.Inc()
		s.ctxnDeploy(d)
		s.recordCross(journal.Event{
			Kind: journal.TwoPhaseCommit, Deployment: d.ID, Tenant: d.Tenant,
			Detail: fmt.Sprintf("round %d/%d committed", attempt+1, TwoPhaseAttempts),
		})
		s.recordCross(journal.Event{
			Kind: journal.DeployAdmitted, Deployment: d.ID, Tenant: d.Tenant,
			Detail:  fmt.Sprintf("cross-region, reserved %.3f fps", reserved),
			Mapping: d.Mapping, DelayMs: delay, RateFPS: rate,
		})
		return d.clone(), nil
	}
	s.tpcAborts++
	tpcAbortsTotal.Inc()
	s.recordCross(journal.Event{
		Kind: journal.TwoPhaseAbort, Tenant: req.Tenant,
		Detail: fmt.Sprintf("%d two-phase rounds exhausted", TwoPhaseAttempts),
	})
	return Deployment{}, s.rejectCross(req, "cross-region reservation lost %d two-phase rounds to concurrent admissions", TwoPhaseAttempts)
}

// Release returns a deployment's capacity to the fleet, routed to the
// owning shard or the coordinator by the ID's namespace.
func (s *ShardedFleet) Release(id string) error {
	if s.part.K == 1 {
		return s.shards[0].Release(id)
	}
	if strings.HasPrefix(id, crossIDPrefix) {
		s.cmu.Lock()
		s.beginCrossTxnLocked(wal.KindRelease)
		err := s.releaseCrossLocked(id)
		commit := s.endCrossTxnLocked()
		s.cmu.Unlock()
		commit()
		return err
	}
	if r := shardOfID(id); r >= 0 && r < len(s.shards) {
		return s.shards[r].Release(id)
	}
	return fmt.Errorf("fleet: %w: %q", ErrNotFound, id)
}

// releaseCrossLocked removes a coordinator deployment and rebuilds the
// cross-region overlay. Caller holds s.cmu inside a coordinator WAL epoch.
func (s *ShardedFleet) releaseCrossLocked(id string) error {
	d, ok := s.crossDeps[id]
	if !ok {
		return fmt.Errorf("fleet: %w: %q", ErrNotFound, id)
	}
	s.lockShards()
	delete(s.crossDeps, id)
	s.crossOrder = removeID(s.crossOrder, id)
	s.rebuildCrossLocked("")
	s.unlockShards()
	s.crossReleased++
	s.recordCross(journal.Event{Kind: journal.ReleaseDone, Deployment: id, Tenant: d.Tenant})
	s.ctxnRemove(id)
	return nil
}

// removeID deletes the first occurrence of id, preserving order.
func removeID(order []string, id string) []string {
	for i, oid := range order {
		if oid == id {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// Describe returns a copy of one deployment.
func (s *ShardedFleet) Describe(id string) (Deployment, bool) {
	if s.part.K == 1 {
		return s.shards[0].Describe(id)
	}
	if strings.HasPrefix(id, crossIDPrefix) {
		s.cmu.Lock()
		defer s.cmu.Unlock()
		d, ok := s.crossDeps[id]
		if !ok {
			return Deployment{}, false
		}
		return d.clone(), true
	}
	if r := shardOfID(id); r >= 0 && r < len(s.shards) {
		return s.shards[r].Describe(id)
	}
	return Deployment{}, false
}

// List returns copies of all deployments: shard 0's in admission order,
// then shard 1's, and so on, with coordinator (cross-region) deployments
// last.
func (s *ShardedFleet) List() []Deployment {
	var out []Deployment
	for _, sh := range s.shards {
		out = append(out, sh.List()...)
	}
	if s.part.K > 1 {
		s.cmu.Lock()
		for _, id := range s.crossOrder {
			out = append(out, s.crossDeps[id].clone())
		}
		s.cmu.Unlock()
	}
	return out
}

// Stats merges counters across shards and the coordinator and gauges
// utilization on the composed view. Admitted/Rejected count request
// outcomes: a regional rejection that the coordinator fallback then admits
// contributes one admission and no rejection (the fallback counter
// reconciles the per-shard tallies, which ShardStats exposes raw).
func (s *ShardedFleet) Stats() Stats {
	if s.part.K == 1 {
		return s.shards[0].Stats()
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.lockShards()
	defer s.unlockShards()

	st := Stats{
		Admitted:      s.crossAdmitted,
		Rejected:      s.crossRejected,
		Released:      s.crossReleased,
		Repaired:      s.crossRepaired,
		RepairMoves:   s.crossMoves,
		ParkEvictions: s.crossParks,
		SolverCalls:   s.crossSolves.Load(),
		Deployments:   len(s.crossDeps),
	}
	tally := func(d *Deployment) {
		st.ReservedFPS += d.ReservedFPS
		switch d.SLO.Class.Canon() {
		case ClassGuaranteed:
			st.GuaranteedActive++
		case ClassBestEffort:
			st.BestEffortActive++
		default:
			st.StandardActive++
		}
	}
	for _, id := range s.crossOrder {
		tally(s.crossDeps[id])
	}
	for _, sh := range s.shards {
		st.Deployments += len(sh.deps)
		st.Admitted += sh.admitted
		st.Rejected += sh.rejected
		st.Released += sh.released
		st.Moves += sh.moves
		st.Repaired += sh.repaired
		st.RepairMoves += sh.repairMoves
		st.ParkEvictions += sh.parkEvicts
		st.Preemptions += sh.preempts
		st.SolverCalls += sh.solves.Load()
		for _, id := range sh.order {
			tally(sh.deps[id])
		}
	}
	// Every fallback begins with a regional rejection that is not a request
	// outcome — the request went on to the coordinator, which recorded its
	// own admission or rejection.
	st.Rejected -= s.fallbacks

	for v := 0; v < s.base.N(); v++ {
		u := s.shards[s.part.PartOf[v]].residual.NodeLoad(model.NodeID(v))
		st.MeanNodeUtil += u
		if u > st.MaxNodeUtil {
			st.MaxNodeUtil = u
		}
	}
	if n := s.base.N(); n > 0 {
		st.MeanNodeUtil /= float64(n)
	}
	for l := 0; l < s.base.M(); l++ {
		var u float64
		if owner := s.part.LinkOwner[l]; owner != model.BoundaryOwner {
			u = s.shards[owner].residual.LinkLoad(l)
		} else {
			u = s.crossSum.LinkFrac[l]
		}
		st.MeanLinkUtil += u
		if u > st.MaxLinkUtil {
			st.MaxLinkUtil = u
		}
	}
	if m := s.base.M(); m > 0 {
		st.MeanLinkUtil /= float64(m)
	}
	return st
}

// ShardStat is one region's gauge block in ShardedStats (raw per-shard
// tallies: a coordinator fallback appears here as a regional rejection even
// when the request was ultimately admitted).
type ShardStat struct {
	// Shard is the region index.
	Shard int `json:"shard"`
	// Nodes and Links are the region's node count and internal-link count.
	Nodes int `json:"nodes"`
	Links int `json:"links"`
	// Deployments is the number currently placed inside the region.
	Deployments int `json:"deployments"`
	// Admitted/Rejected/Released are the shard's lifecycle counters.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Released uint64 `json:"released"`
	// SolverCalls counts solves run under this shard's lock.
	SolverCalls uint64 `json:"solver_calls"`
	// MaxNodeUtil and MaxLinkUtil gauge the hottest element of the region.
	MaxNodeUtil float64 `json:"max_node_util"`
	MaxLinkUtil float64 `json:"max_link_util"`
}

// CoordinatorStats gauges the cross-region path of a ShardedFleet.
type CoordinatorStats struct {
	// BoundaryLinks is the size of the cross-region boundary set.
	BoundaryLinks int `json:"boundary_links"`
	// Deployments is the number of live coordinator-owned deployments.
	Deployments int `json:"deployments"`
	// Admitted/Rejected/Released are coordinator lifecycle counters.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Released uint64 `json:"released"`
	// Fallbacks counts regional rejections retried through the coordinator;
	// TwoPhaseRetries counts phase-2 validation failures that forced a
	// re-solve against a fresher composed view; TwoPhaseAborts counts
	// admissions abandoned after exhausting every round.
	Fallbacks       uint64 `json:"fallbacks"`
	TwoPhaseRetries uint64 `json:"two_phase_retries"`
	TwoPhaseAborts  uint64 `json:"two_phase_aborts"`
	// SolverCalls counts coordinator solves (cross deploys and repairs).
	SolverCalls uint64 `json:"solver_calls"`
}

// ShardedStats is the per-region breakdown behind Stats, served by elpcd's
// /v1/stats as fleet_shards.
type ShardedStats struct {
	Shards      []ShardStat      `json:"shards"`
	Coordinator CoordinatorStats `json:"coordinator"`
}

// ShardStats snapshots the per-region and coordinator gauges.
func (s *ShardedFleet) ShardStats() ShardedStats {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.lockShards()
	defer s.unlockShards()
	out := ShardedStats{
		Coordinator: CoordinatorStats{
			BoundaryLinks:   len(s.part.Boundary),
			Deployments:     len(s.crossDeps),
			Admitted:        s.crossAdmitted,
			Rejected:        s.crossRejected,
			Released:        s.crossReleased,
			Fallbacks:       s.fallbacks,
			TwoPhaseRetries: s.tpcRetries,
			TwoPhaseAborts:  s.tpcAborts,
			SolverCalls:     s.crossSolves.Load(),
		},
	}
	for r, sh := range s.shards {
		stat := ShardStat{
			Shard:       r,
			Nodes:       len(s.part.Regions[r]),
			Deployments: len(sh.deps),
			Admitted:    sh.admitted,
			Rejected:    sh.rejected,
			Released:    sh.released,
			SolverCalls: sh.solves.Load(),
		}
		for _, v := range s.part.Regions[r] {
			if u := sh.residual.NodeLoad(v); u > stat.MaxNodeUtil {
				stat.MaxNodeUtil = u
			}
		}
		for l, owner := range s.part.LinkOwner {
			if owner != r {
				continue
			}
			stat.Links++
			if u := sh.residual.LinkLoad(l); u > stat.MaxLinkUtil {
				stat.MaxLinkUtil = u
			}
		}
		out.Shards = append(out.Shards, stat)
	}
	return out
}

// Utilization returns the outstanding load fraction per node and per link
// on the composed view (indices match the base network).
func (s *ShardedFleet) Utilization() (node, link []float64) {
	if s.part.K == 1 {
		return s.shards[0].Utilization()
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.lockShards()
	defer s.unlockShards()
	node = make([]float64, s.base.N())
	for v := range node {
		node[v] = s.shards[s.part.PartOf[v]].residual.NodeLoad(model.NodeID(v))
	}
	link = make([]float64, s.base.M())
	for l := range link {
		if owner := s.part.LinkOwner[l]; owner != model.BoundaryOwner {
			link[l] = s.shards[owner].residual.LinkLoad(l)
		} else {
			link[l] = s.crossSum.LinkFrac[l]
		}
	}
	return node, link
}

// Snapshot materializes the composed residual network (all shards' loads
// and churn factors plus the boundary ledger) as a standalone Network.
func (s *ShardedFleet) Snapshot() *model.Network {
	if s.part.K == 1 {
		return s.shards[0].Snapshot()
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.lockShards()
	defer s.unlockShards()
	return s.composedLocked().Snapshot()
}

// Rebalance runs one rebalance pass per shard (the options apply to each
// shard independently, so MaxMoves caps migrations per region) and merges
// the reports. Coordinator-owned cross-region deployments are not
// rebalanced: their placements only change when churn breaks them.
func (s *ShardedFleet) Rebalance(opt RebalanceOptions) Report {
	if s.part.K == 1 {
		return s.shards[0].Rebalance(opt)
	}
	var rep Report
	var gain float64
	for _, sh := range s.shards {
		r := sh.Rebalance(opt)
		rep.Considered += r.Considered
		rep.Applied += r.Applied
		rep.Moves = append(rep.Moves, r.Moves...)
		gain += r.MeanGain * float64(r.Applied)
	}
	if rep.Applied > 0 {
		rep.MeanGain = gain / float64(rep.Applied)
	}
	return rep
}

// splitChurn routes each event to the shard owning its target element;
// boundary-link events go to the coordinator (index -1). Events naming
// out-of-range targets are routed to shard 0, whose transactional
// validation produces the canonical unknown-target error.
func (s *ShardedFleet) splitChurn(events []model.ChurnEvent) (perShard [][]model.ChurnEvent, boundary []model.ChurnEvent) {
	perShard = make([][]model.ChurnEvent, s.part.K)
	for _, ev := range events {
		owner := 0
		if ev.OnLink() {
			if ev.Link >= 0 && ev.Link < s.base.M() {
				if owner = s.part.LinkOwner[ev.Link]; owner == model.BoundaryOwner {
					boundary = append(boundary, ev)
					continue
				}
			}
		} else if s.base.ValidNode(ev.Node) {
			owner = s.part.PartOf[ev.Node]
		}
		perShard[owner] = append(perShard[owner], ev)
	}
	return perShard, boundary
}

// ApplyChurn applies the events to the owning shards' capacity views and
// the coordinator's boundary ledger, all or nothing across the whole fleet:
// every sub-batch is validated on a scratch copy first, so an invalid event
// in one region leaves every region unchanged. Event indices in error
// messages refer to the owning region's sub-batch.
func (s *ShardedFleet) ApplyChurn(events []model.ChurnEvent) error {
	perShard, boundary := s.splitChurn(events)
	s.cmu.Lock()
	s.lockShards()
	err := s.applyChurnLocked(perShard, boundary)
	var commit func()
	if err == nil {
		commit = s.walChurnLocked(events)
	}
	s.unlockShards()
	s.cmu.Unlock()
	if commit != nil {
		commit()
	}
	return err
}

// applyChurnLocked validates and commits the split churn batch. Caller
// holds s.cmu and every shard lock.
func (s *ShardedFleet) applyChurnLocked(perShard [][]model.ChurnEvent, boundary []model.ChurnEvent) error {
	// Validate every sub-batch on clones, then commit the clones' factors —
	// the commit step cannot fail, which is what makes the cross-shard batch
	// atomic.
	clones := make([]*model.ResidualNetwork, s.part.K)
	for r, sub := range perShard {
		clones[r] = s.shards[r].residual.CloneEmpty()
		if err := clones[r].ApplyChurn(sub); err != nil {
			return err
		}
	}
	bclone := s.cres.CloneEmpty()
	if err := bclone.ApplyChurn(boundary); err != nil {
		return err
	}
	for r := range s.shards {
		if err := s.shards[r].residual.SetCapacityFactors(clones[r].CapacityFactors()); err != nil {
			panic(fmt.Sprintf("fleet: churn commit: %v", err)) // clone factors are valid by construction
		}
	}
	if err := s.cres.SetCapacityFactors(bclone.CapacityFactors()); err != nil {
		panic(fmt.Sprintf("fleet: boundary churn commit: %v", err))
	}
	return nil
}

// Affected returns the IDs of deployments whose placements touch any
// element the events mutate: each shard's frontier (an event inside one
// region can only touch that region's deployments), then the coordinator's
// cross-region deployments, which may touch elements of any region and the
// boundary links between them.
func (s *ShardedFleet) Affected(events []model.ChurnEvent) []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.Affected(events)...)
	}
	if s.part.K > 1 {
		nodes, links := churnTargets(events)
		s.cmu.Lock()
		for _, id := range s.crossOrder {
			if placementTouches(s.base, s.crossDeps[id], nodes, links) {
				out = append(out, id)
			}
		}
		s.cmu.Unlock()
	}
	return out
}

// Repair routes each ID to its owning shard's incremental Repair pass —
// regions repair independently, holding only their own lock — and repairs
// coordinator-owned deployments against the composed view. Unknown IDs are
// skipped. The merged report lists shard outcomes first, coordinator
// outcomes last.
func (s *ShardedFleet) Repair(ids []string, opt RepairOptions) RepairReport {
	if s.part.K == 1 {
		return s.shards[0].Repair(ids, opt)
	}
	perShard := make([][]string, s.part.K)
	var cross []string
	for _, id := range ids {
		if strings.HasPrefix(id, crossIDPrefix) {
			cross = append(cross, id)
			continue
		}
		if r := shardOfID(id); r >= 0 && r < s.part.K {
			perShard[r] = append(perShard[r], id)
		}
	}
	var rep RepairReport
	for r, sub := range perShard {
		if len(sub) == 0 {
			continue
		}
		sr := s.shards[r].Repair(sub, opt)
		rep.Checked += sr.Checked
		rep.Resolved += sr.Resolved
		rep.Kept += sr.Kept
		rep.Migrated += sr.Migrated
		rep.Outcomes = append(rep.Outcomes, sr.Outcomes...)
		rep.Parked = append(rep.Parked, sr.Parked...)
	}
	if len(cross) > 0 {
		cr := s.repairCross(cross)
		rep.Checked += cr.Checked
		rep.Resolved += cr.Resolved
		rep.Kept += cr.Kept
		rep.Migrated += cr.Migrated
		rep.Outcomes = append(rep.Outcomes, cr.Outcomes...)
		rep.Parked = append(rep.Parked, cr.Parked...)
	}
	return rep
}

// repairCross is the coordinator's repair pass: each cross-region
// deployment is scored on the composed view with its own reservation
// removed; still-valid placements are kept without a solve, broken ones are
// re-solved globally, migrated when the new reservation fits, and parked
// otherwise. It holds every shard lock for the duration — cross-region
// repair is the rare, global tail of a churn cycle.
func (s *ShardedFleet) repairCross(ids []string) RepairReport {
	s.cmu.Lock()
	s.beginCrossTxnLocked(wal.KindRepair)
	rep := s.repairCrossLocked(ids)
	commit := s.endCrossTxnLocked()
	s.cmu.Unlock()
	commit()
	return rep
}

// repairCrossLocked is the repair pass body. Caller holds s.cmu inside a
// coordinator WAL epoch.
func (s *ShardedFleet) repairCrossLocked(ids []string) RepairReport {
	s.lockShards()
	defer s.unlockShards()

	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	live := make([]string, 0, len(ids))
	for _, id := range s.crossOrder {
		if want[id] {
			live = append(live, id)
		}
	}

	var rep RepairReport
	for _, id := range live {
		d := s.crossDeps[id]
		s.crossRepaired++
		rep.Checked++

		// Score the placement with its own reservation removed from the
		// overlay (everyone else's stays).
		s.rebuildCrossLocked(id)
		comp := s.composedLocked()
		snap := comp.Snapshot()
		m := model.NewMapping(d.Assignment)
		delay := model.TotalDelay(snap, d.pipe, m, d.cost)
		rate := model.FrameRate(model.SharedBottleneck(snap, d.pipe, m))
		valid := comp.Fits(d.reservation) &&
			!math.IsInf(delay, 1) &&
			(d.SLO.MaxDelayMs <= 0 || delay <= d.SLO.MaxDelayMs) &&
			rate >= d.ReservedFPS
		if valid {
			for _, v := range d.Assignment {
				if comp.NodeIsDown(v) {
					valid = false
					break
				}
			}
		}
		if valid {
			s.rebuildCrossLocked("")
			rep.Kept++
			s.recordCross(journal.Event{
				Kind: journal.RepairKept, Deployment: id, Tenant: d.Tenant,
				Mapping: d.Mapping, DelayMs: delay, RateFPS: rate,
			})
			rep.Outcomes = append(rep.Outcomes, RepairOutcome{
				ID: id, Action: RepairKept, DelayMs: delay, RateFPS: rate,
			})
			continue
		}

		rep.Resolved++
		park := func(reason string) {
			parked := ParkedDeployment{ID: id, Tenant: d.Tenant, Reason: reason, Req: requestOf(d)}
			delete(s.crossDeps, id)
			s.crossOrder = removeID(s.crossOrder, id)
			s.rebuildCrossLocked("")
			s.crossParks++
			parkEvictionsTotal.Inc()
			s.recordCross(journal.Event{Kind: journal.RepairParked, Deployment: id, Tenant: d.Tenant, Detail: reason})
			s.ctxnRemove(id)
			s.ctxnPark(parked)
			rep.Parked = append(rep.Parked, parked)
			rep.Outcomes = append(rep.Outcomes, RepairOutcome{ID: id, Action: RepairParked, Reason: reason})
		}
		s.crossSolves.Add(1)
		nm, _, _, err := solve(snap, requestOf(d), d.cost, nil)
		if err != nil {
			park(fmt.Sprintf("re-solve failed: %v", err))
			continue
		}
		down := -1
		for _, v := range nm.Assign {
			if comp.NodeIsDown(v) {
				down = int(v)
				break
			}
		}
		if down >= 0 {
			park(fmt.Sprintf("no feasible placement: node v%d is down", down))
			continue
		}
		newDelay := model.TotalDelay(snap, d.pipe, nm, d.cost)
		newRate := model.FrameRate(model.SharedBottleneck(snap, d.pipe, nm))
		if math.IsInf(newDelay, 1) {
			park("re-solve has unbounded delay on the degraded network")
			continue
		}
		if d.SLO.MaxDelayMs > 0 && newDelay > d.SLO.MaxDelayMs {
			park(fmt.Sprintf("re-solve delay %.3f ms violates SLO %.3f ms", newDelay, d.SLO.MaxDelayMs))
			continue
		}
		if newRate < d.ReservedFPS {
			park(fmt.Sprintf("re-solve rate %.3f fps below reserved %.3f fps", newRate, d.ReservedFPS))
			continue
		}
		res, err := model.MappingReservation(s.base, d.pipe, nm, d.ReservedFPS)
		if err != nil {
			park(fmt.Sprintf("reservation: %v", err))
			continue
		}
		if !comp.Fits(res) {
			park("re-solved reservation does not fit the degraded network")
			continue
		}
		d.Assignment = nm.Assign
		d.Mapping = nm.String()
		d.DelayMs = newDelay
		d.RateFPS = newRate
		d.reservation = res
		s.rebuildCrossLocked("")
		s.crossMoves++
		s.ctxnUpdate(d)
		rep.Migrated++
		s.recordCross(journal.Event{
			Kind: journal.RepairMigrated, Deployment: id, Tenant: d.Tenant,
			Mapping: d.Mapping, DelayMs: newDelay, RateFPS: newRate,
		})
		rep.Outcomes = append(rep.Outcomes, RepairOutcome{
			ID: id, Action: RepairMigrated, DelayMs: newDelay, RateFPS: newRate,
		})
	}
	return rep
}
