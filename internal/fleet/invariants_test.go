package fleet

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"elpc/internal/model"
)

// checkInvariants asserts the capacity invariants that must hold at every
// point of any deploy/release interleaving: no resource is overcommitted
// (residual power and bandwidth never go negative) and utilization is never
// negative.
func checkInvariants(t *testing.T, f *Fleet) {
	t.Helper()
	node, link := f.Utilization()
	for v, u := range node {
		if u < 0 || u > 1 {
			t.Fatalf("node %d utilization %v outside [0,1]", v, u)
		}
	}
	for l, u := range link {
		if u < 0 || u > 1 {
			t.Fatalf("link %d utilization %v outside [0,1]", l, u)
		}
	}
}

// TestPropertyDeployReleaseInterleavings drives randomized deploy/release
// sequences and checks, after every operation, that residual capacity never
// goes negative, and at the end that releasing everything restores the
// exact empty-fleet state.
func TestPropertyDeployReleaseInterleavings(t *testing.T) {
	net := testNetwork(t)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xf1ee7))
		f, err := New(net)
		if err != nil {
			t.Fatal(err)
		}
		live := []string{}
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rng.Float64() < 0.4 {
				i := rng.IntN(len(live))
				if err := f.Release(live[i]); err != nil {
					t.Fatalf("trial %d step %d: release: %v", trial, step, err)
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				obj := model.MinDelay
				var slo SLO
				if rng.Float64() < 0.5 {
					obj = model.MaxFrameRate
					slo.MinRateFPS = 1 + rng.Float64()*3
				}
				src := model.NodeID(rng.IntN(net.N()))
				dst := model.NodeID(rng.IntN(net.N() - 1))
				if dst >= src {
					dst++
				}
				d, err := f.Deploy(Request{
					Pipeline:  testPipeline(t, 4+rng.IntN(4), rng.Uint64()),
					Src:       src,
					Dst:       dst,
					Objective: obj,
					SLO:       slo,
				})
				if err != nil {
					if !errors.Is(err, ErrRejected) {
						t.Fatalf("trial %d step %d: deploy: %v", trial, step, err)
					}
				} else {
					live = append(live, d.ID)
				}
			}
			checkInvariants(t, f)
		}
		// Drain and require exact restoration.
		for _, id := range live {
			if err := f.Release(id); err != nil {
				t.Fatal(err)
			}
		}
		node, link := f.Utilization()
		for v, u := range node {
			if u != 0 {
				t.Fatalf("trial %d: node %d utilization %v after draining, want exactly 0", trial, v, u)
			}
		}
		for l, u := range link {
			if u != 0 {
				t.Fatalf("trial %d: link %d utilization %v after draining, want exactly 0", trial, l, u)
			}
		}
		if s := f.Stats(); s.Deployments != 0 || s.Admitted != s.Released {
			t.Fatalf("trial %d: unbalanced counters %+v", trial, s)
		}
	}
}

// TestConcurrentDeployRelease hammers one fleet from many goroutines (run
// under -race in CI): each worker deploys, optionally rebalances, and
// releases its own deployments; afterwards the drained fleet must be back
// to the exact empty state.
func TestConcurrentDeployRelease(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var leftover []string
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			var mine []string
			for i := 0; i < 25; i++ {
				obj := model.MinDelay
				if i%2 == 0 {
					obj = model.MaxFrameRate
				}
				d, err := f.Deploy(Request{
					Tenant:    "w",
					Pipeline:  testPipeline(t, 4+rng.IntN(3), rng.Uint64()),
					Src:       model.NodeID(rng.IntN(net.N())),
					Dst:       model.NodeID((rng.IntN(net.N()-1) + 1)),
					Objective: obj,
					SLO:       SLO{MinRateFPS: 0.5},
				})
				if err != nil {
					if !errors.Is(err, ErrRejected) {
						errc <- err
						return
					}
					continue
				}
				mine = append(mine, d.ID)
				if len(mine) > 2 && rng.Float64() < 0.5 {
					id := mine[0]
					mine = mine[1:]
					if err := f.Release(id); err != nil {
						errc <- err
						return
					}
				}
				if i%10 == 5 {
					f.Rebalance(RebalanceOptions{MaxMoves: 1})
				}
				_ = f.Stats()
				_ = f.List()
			}
			mu.Lock()
			leftover = append(leftover, mine...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	checkInvariants(t, f)
	for _, id := range leftover {
		if err := f.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	node, link := f.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Errorf("node %d utilization %v after concurrent drain, want exactly 0", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Errorf("link %d utilization %v after concurrent drain, want exactly 0", l, u)
		}
	}
	if s := f.Stats(); s.Deployments != 0 {
		t.Errorf("deployments remain after drain: %+v", s)
	}
}
