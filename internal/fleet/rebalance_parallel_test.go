package fleet

import (
	"fmt"
	"testing"

	"elpc/internal/engine"
	"elpc/internal/model"
)

// contendedFleet builds a fleet with enough streaming tenants that the early
// releases leave real room to rebalance into, mirroring
// TestRebalanceImprovesAfterRelease's setup.
func contendedFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	var admitted []Deployment
	for i := 0; i < 50; i++ {
		d, err := f.Deploy(Request{
			Pipeline:  testPipeline(t, 6, uint64(i+1)),
			Src:       0,
			Dst:       9,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1},
		})
		if err != nil {
			break
		}
		admitted = append(admitted, d)
	}
	if len(admitted) < 3 {
		t.Fatalf("too few admissions (%d) to exercise rebalance", len(admitted))
	}
	for _, d := range admitted[:len(admitted)/2] {
		if err := f.Release(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// rebalanceFingerprint renders a report for comparison across runs.
func rebalanceFingerprint(rep Report) string {
	out := fmt.Sprintf("considered=%d applied=%d;", rep.Considered, rep.Applied)
	for _, mv := range rep.Moves {
		out += fmt.Sprintf(" %s applied=%t gain=%.9f;", mv.ID, mv.Applied, mv.Gain)
	}
	return out
}

// TestRebalanceParallelDeterministic: the concurrent proposal phase must be
// deterministic — identical fleets rebalanced with the same Workers > 1
// produce identical reports, regardless of pool size.
func TestRebalanceParallelDeterministic(t *testing.T) {
	var want string
	for run := 0; run < 3; run++ {
		f := contendedFleet(t)
		pool := engine.NewPool(1 + run*3) // 1, 4, 7: parallelism must not matter
		f.UsePool(pool)
		rep := f.Rebalance(RebalanceOptions{MaxMoves: 8, MinGain: 0.01, Workers: 4})
		pool.Close()
		got := rebalanceFingerprint(rep)
		if run == 0 {
			want = got
			if rep.Considered == 0 {
				t.Fatal("parallel rebalance considered nothing")
			}
		} else if got != want {
			t.Fatalf("run %d differs:\nwant %s\ngot  %s", run, want, got)
		}
	}
}

// TestRebalanceParallelKeepsInvariants: a parallel pass must leave capacity
// accounting exact — every applied move's reservation fits, guards hold,
// and releasing everything returns the fleet to zero load bit-for-bit.
func TestRebalanceParallelKeepsInvariants(t *testing.T) {
	f := contendedFleet(t)
	rep := f.Rebalance(RebalanceOptions{MaxMoves: 8, MinGain: 0.01, Workers: 4})
	for _, mv := range rep.Moves {
		if mv.Applied && mv.Gain < 0.01 {
			t.Errorf("applied move %s gained only %v, below the guard", mv.ID, mv.Gain)
		}
		if !mv.Applied && mv.Reason == "" {
			t.Errorf("skipped move %s has no reason", mv.ID)
		}
	}
	for _, d := range f.List() {
		if d.RateFPS+1e-9 < d.ReservedFPS {
			t.Errorf("%s sustains %v fps but reserves %v", d.ID, d.RateFPS, d.ReservedFPS)
		}
		if err := f.Release(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	node, link := f.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Errorf("node %d utilization not restored after parallel rebalance: %v", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Errorf("link %d utilization not restored after parallel rebalance: %v", l, u)
		}
	}
}

// TestRebalanceParallelWithoutPool: Workers > 1 with no installed pool
// spins up a transient one and still works.
func TestRebalanceParallelWithoutPool(t *testing.T) {
	f := contendedFleet(t)
	rep := f.Rebalance(RebalanceOptions{MaxMoves: 4, MinGain: 0.01, Workers: 3})
	if rep.Considered == 0 {
		t.Fatal("transient-pool rebalance considered nothing")
	}
}
