package fleet

import (
	"errors"
	"strings"
	"testing"

	"elpc/internal/model"
)

func TestClassValidation(t *testing.T) {
	for _, c := range []Class{"", ClassGuaranteed, ClassStandard, ClassBestEffort} {
		if !c.Valid() {
			t.Errorf("class %q should be valid", c)
		}
	}
	for _, c := range []Class{"gold", "GUARANTEED", "best-effort"} {
		if c.Valid() {
			t.Errorf("class %q should be invalid", c)
		}
	}
	if Class("").Canon() != ClassStandard {
		t.Errorf("empty class should canonicalize to standard")
	}
	if ClassGuaranteed.Rank() <= ClassStandard.Rank() || ClassStandard.Rank() <= ClassBestEffort.Rank() {
		t.Errorf("class ranks out of order: g=%d s=%d b=%d",
			ClassGuaranteed.Rank(), ClassStandard.Rank(), ClassBestEffort.Rank())
	}

	// An unknown class is a structural error, not an admission rejection.
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Deploy(Request{
		Pipeline:  testPipeline(t, 5, 1),
		Src:       0,
		Dst:       9,
		Objective: model.MinDelay,
		SLO:       SLO{Class: "gold"},
	})
	if err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("unknown class: got %v, want structural error", err)
	}
	if s := f.Stats(); s.Rejected != 0 {
		t.Fatalf("structural error must not count as rejection: %+v", s)
	}
}

// saturate deploys best-effort streaming sessions until admission control
// declines one, returning the admitted deployments with their requests and
// the rejected request.
func saturate(t *testing.T, f *Fleet) ([]Deployment, []Request, Request) {
	t.Helper()
	var live []Deployment
	var admitted []Request
	for i := 0; i < 200; i++ {
		req := Request{
			Tenant:    "be",
			Pipeline:  testPipeline(t, 5, uint64(10+i)),
			Src:       0,
			Dst:       9,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 40, Class: ClassBestEffort},
		}
		d, err := f.Deploy(req)
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatal(err)
			}
			return live, admitted, req
		}
		live = append(live, d)
		admitted = append(admitted, req)
	}
	t.Fatal("network never saturated")
	return nil, nil, Request{}
}

func TestGuaranteedPreemptsBestEffort(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	live, admitted, _ := saturate(t, f)
	if len(live) == 0 {
		t.Fatal("no best-effort deployments admitted before saturation")
	}

	// A guaranteed twin of the last-admitted best-effort session must go
	// through: plain admission fails (that session holds the capacity its
	// pipeline needs), and preemption removes victims latest-first — the
	// first removal frees exactly the twin's path.
	twin := admitted[len(admitted)-1]
	twin.Tenant = "vip"
	twin.SLO.Class = ClassGuaranteed
	d, err := f.Deploy(twin)
	if err != nil {
		t.Fatalf("guaranteed deploy should preempt: %v", err)
	}
	if d.SLO.Class != ClassGuaranteed {
		t.Fatalf("deployment class = %q", d.SLO.Class)
	}

	parked := f.TakePreempted()
	if len(parked) == 0 || len(parked) > MaxPreemptionVictims {
		t.Fatalf("parked %d victims, want 1..%d", len(parked), MaxPreemptionVictims)
	}
	for _, p := range parked {
		if p.Tenant != "be" || !strings.Contains(p.Reason, d.ID) {
			t.Fatalf("bad parked victim %+v", p)
		}
		if _, ok := f.Describe(p.ID); ok {
			t.Fatalf("victim %s still live after preemption", p.ID)
		}
		if p.Req.Pipeline == nil || p.Req.SLO.Class != ClassBestEffort {
			t.Fatalf("parked victim lost its requeue request: %+v", p.Req)
		}
	}
	if s := f.Stats(); s.Preemptions != uint64(len(parked)) || s.GuaranteedActive != 1 {
		t.Fatalf("stats after preemption: %+v", s)
	}
	if again := f.TakePreempted(); len(again) != 0 {
		t.Fatalf("TakePreempted must drain: %+v", again)
	}
}

func TestPreemptionExhaustionRestoresState(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	live, _, rejected := saturate(t, f)
	before := f.List()

	// A guaranteed demand no amount of preemption can satisfy must reject
	// and leave every best-effort tenant exactly where it was.
	rejected.SLO.Class = ClassGuaranteed
	rejected.SLO.MinRateFPS = 1e9
	if _, err := f.Deploy(rejected); !errors.Is(err, ErrRejected) {
		t.Fatalf("impossible guaranteed demand: got %v, want ErrRejected", err)
	}
	if parked := f.TakePreempted(); len(parked) != 0 {
		t.Fatalf("failed preemption must not park victims: %+v", parked)
	}
	after := f.List()
	if len(after) != len(before) || len(after) != len(live) {
		t.Fatalf("fleet changed: %d -> %d deployments", len(before), len(after))
	}
	for i := range after {
		if after[i].ID != before[i].ID || after[i].Seq != before[i].Seq {
			t.Fatalf("deployment %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
	if s := f.Stats(); s.Preemptions != 0 {
		t.Fatalf("stats after failed preemption: %+v", s)
	}
}

func TestBatchOrderPriority(t *testing.T) {
	mk := func(class Class, rate, maxDelay float64) Request {
		return Request{SLO: SLO{Class: class, MinRateFPS: rate, MaxDelayMs: maxDelay}}
	}
	reqs := []Request{
		mk(ClassBestEffort, 50, 0), // 0: highest demand but lowest class
		mk(ClassStandard, 5, 100),  // 1: tight delay slack
		mk(ClassGuaranteed, 1, 0),  // 2: guaranteed always first
		mk(ClassStandard, 5, 0),    // 3: same rate as 1, looser slack
		mk("", 20, 0),              // 4: empty class = standard, high demand
	}
	out := make([]BatchOutcome, len(reqs))
	got := batchOrder(reqs, out)
	want := []int{2, 4, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch order = %v, want %v", got, want)
		}
	}

	// Structurally invalid entries are excluded up front.
	out[4].Err = errors.New("bad")
	got = batchOrder(reqs, out)
	want = []int{2, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch order with invalid entry = %v, want %v", got, want)
		}
	}
}

func TestDeployBatchOutcomes(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{
			Tenant:    "a",
			Pipeline:  testPipeline(t, 5, 1),
			Src:       0,
			Dst:       9,
			Objective: model.MinDelay,
		},
		{Tenant: "b"}, // missing pipeline: structural error at its index
		{
			Tenant:    "c",
			Pipeline:  testPipeline(t, 5, 2),
			Src:       0,
			Dst:       9,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1e9}, // unsatisfiable: rejection
		},
	}
	outs := f.DeployBatch(reqs)
	if len(outs) != len(reqs) {
		t.Fatalf("got %d outcomes for %d requests", len(outs), len(reqs))
	}
	for i, o := range outs {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d", i, o.Index)
		}
	}
	if outs[0].Err != nil || outs[0].Deployment.ID == "" {
		t.Fatalf("valid request failed: %+v", outs[0])
	}
	if outs[1].Err == nil || errors.Is(outs[1].Err, ErrRejected) {
		t.Fatalf("missing pipeline: got %v, want structural error", outs[1].Err)
	}
	if !errors.Is(outs[2].Err, ErrRejected) {
		t.Fatalf("unsatisfiable demand: got %v, want ErrRejected", outs[2].Err)
	}
	if s := f.Stats(); s.Admitted != 1 || s.Rejected != 1 {
		t.Fatalf("stats after batch: %+v", s)
	}
}

// TestDeployBatchBeatsSequentialUnderContention pins the property the batch
// endpoint exists for at the fleet level: on a contended burst, placing the
// guaranteed/scarce requests first admits a superset of the high-priority
// traffic that arrival-order trickling admits.
func TestDeployBatchBeatsSequentialUnderContention(t *testing.T) {
	burst := func(t *testing.T) []Request {
		var reqs []Request
		for i := 0; i < 12; i++ {
			class := ClassBestEffort
			switch i % 3 {
			case 1:
				class = ClassStandard
			case 2:
				class = ClassGuaranteed
			}
			reqs = append(reqs, Request{
				Tenant:    "burst",
				Pipeline:  testPipeline(t, 5, uint64(100+i)),
				Src:       0,
				Dst:       9,
				Objective: model.MaxFrameRate,
				SLO:       SLO{MinRateFPS: 25, Class: class},
			})
		}
		return reqs
	}

	seq, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	seqAdmitted := 0
	for _, req := range burst(t) {
		if _, err := seq.Deploy(req); err == nil {
			seqAdmitted++
		} else if !errors.Is(err, ErrRejected) {
			t.Fatal(err)
		}
	}
	seq.TakePreempted()

	bat, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	batAdmitted := 0
	for _, o := range bat.DeployBatch(burst(t)) {
		if o.Err == nil {
			batAdmitted++
		} else if !errors.Is(o.Err, ErrRejected) {
			t.Fatal(o.Err)
		}
	}
	bat.TakePreempted()

	if batAdmitted < seqAdmitted {
		t.Fatalf("batch admitted %d < sequential %d on the same burst", batAdmitted, seqAdmitted)
	}
	bs := bat.Stats()
	if bs.Preemptions != 0 {
		// The class-ordered pass admits guaranteed traffic before any
		// best-effort tenant holds capacity, so no displacement is needed.
		t.Fatalf("batch pass should not need preemption, got %d", bs.Preemptions)
	}
}
