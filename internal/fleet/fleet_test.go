package fleet

import (
	"errors"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

// testNetwork draws a deterministic mid-size network (Suite20 case 2 class).
func testNetwork(t testing.TB) *model.Network {
	t.Helper()
	net, err := gen.Network(10, 60, gen.DefaultRanges(), gen.RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testPipeline draws a deterministic pipeline with n modules.
func testPipeline(t testing.TB, n int, seed uint64) *model.Pipeline {
	t.Helper()
	pl, err := gen.Pipeline(n, gen.DefaultRanges(), gen.RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestDeployReleaseLifecycle(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}

	d, err := f.Deploy(Request{
		Tenant:    "viz",
		Pipeline:  testPipeline(t, 5, 1),
		Src:       0,
		Dst:       9,
		Objective: model.MinDelay,
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if d.ID == "" || d.DelayMs <= 0 || d.ReservedFPS != DefaultInteractiveFPS {
		t.Fatalf("bad deployment %+v", d)
	}

	got, ok := f.Describe(d.ID)
	if !ok || got.ID != d.ID || got.Tenant != "viz" {
		t.Fatalf("describe mismatch: %+v ok=%v", got, ok)
	}
	if ds := f.List(); len(ds) != 1 || ds[0].ID != d.ID {
		t.Fatalf("list mismatch: %+v", ds)
	}

	s := f.Stats()
	if s.Deployments != 1 || s.Admitted != 1 || s.MaxNodeUtil <= 0 {
		t.Fatalf("stats after deploy: %+v", s)
	}

	if err := f.Release(d.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := f.Release(d.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double release: got %v, want ErrNotFound", err)
	}

	node, link := f.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Errorf("node %d utilization after release = %v, want exactly 0", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Errorf("link %d utilization after release = %v, want exactly 0", l, u)
		}
	}
}

func TestDeployRejectsUnreachableSLO(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	// A delay SLO no mapping can meet.
	_, err = f.Deploy(Request{
		Pipeline:  testPipeline(t, 5, 1),
		Src:       0,
		Dst:       9,
		Objective: model.MinDelay,
		SLO:       SLO{MaxDelayMs: 1e-6},
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("impossible delay SLO: got %v, want ErrRejected", err)
	}
	// A rate demand no mapping can sustain.
	_, err = f.Deploy(Request{
		Pipeline:  testPipeline(t, 5, 1),
		Src:       0,
		Dst:       9,
		Objective: model.MaxFrameRate,
		SLO:       SLO{MinRateFPS: 1e9},
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("impossible rate SLO: got %v, want ErrRejected", err)
	}
	if s := f.Stats(); s.Rejected != 2 || s.Admitted != 0 {
		t.Fatalf("stats after rejections: %+v", s)
	}
}

func TestDeployBadRequestIsNotRejection(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Deploy(Request{Src: 0, Dst: 9}); err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("missing pipeline: got %v, want non-rejection error", err)
	}
	if _, err := f.Deploy(Request{Pipeline: testPipeline(t, 4, 1), Src: 0, Dst: 99}); err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("bad endpoint: got %v, want non-rejection error", err)
	}
	if s := f.Stats(); s.Rejected != 0 {
		t.Fatalf("bad requests must not count as rejections: %+v", s)
	}
}

// TestAdmissionEventuallyRejects fills the fleet with streaming deployments
// until capacity runs out and checks that contention degrades admitted rates
// consistently: each successive deployment sees no better residual network.
func TestAdmissionEventuallyRejects(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	var admitted []Deployment
	var rejected bool
	for i := 0; i < 200; i++ {
		d, err := f.Deploy(Request{
			Pipeline:  testPipeline(t, 6, uint64(i+1)),
			Src:       0,
			Dst:       9,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 2},
		})
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("deploy %d: %v", i, err)
			}
			rejected = true
			break
		}
		admitted = append(admitted, d)
	}
	if !rejected {
		t.Fatal("fleet never rejected despite 200 streaming deployments")
	}
	if len(admitted) == 0 {
		t.Fatal("first deployment rejected on an empty fleet")
	}
	s := f.Stats()
	if s.MaxNodeUtil > 1+1e-9 || s.MaxLinkUtil > 1+1e-9 {
		t.Fatalf("utilization exceeds capacity: %+v", s)
	}

	// Release everything; accounting must balance to the empty-fleet state.
	for _, d := range admitted {
		if err := f.Release(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	node, link := f.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Errorf("node %d utilization not exactly restored: %v", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Errorf("link %d utilization not exactly restored: %v", l, u)
		}
	}
}

// TestRebalanceImprovesAfterRelease deploys streaming tenants until the
// network is contended, releases the early (well-placed) ones, and checks
// that a rebalance pass re-solves laggards onto the freed capacity with a
// positive reported gain — and that the migration-cost guard blocks
// negligible moves.
func TestRebalanceImprovesAfterRelease(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	var admitted []Deployment
	for i := 0; i < 50; i++ {
		d, err := f.Deploy(Request{
			Pipeline:  testPipeline(t, 6, uint64(i+1)),
			Src:       0,
			Dst:       9,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1},
		})
		if err != nil {
			break
		}
		admitted = append(admitted, d)
	}
	if len(admitted) < 3 {
		t.Fatalf("too few admissions (%d) to exercise rebalance", len(admitted))
	}
	// Free the first half: the survivors were solved against a crowded
	// network and should now have room to improve.
	for _, d := range admitted[:len(admitted)/2] {
		if err := f.Release(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.Rebalance(RebalanceOptions{MaxMoves: 8, MinGain: 0.01})
	if rep.Considered == 0 {
		t.Fatal("rebalance considered no deployments")
	}
	for _, mv := range rep.Moves {
		if mv.Applied && mv.Gain < 0.01 {
			t.Errorf("applied move %s gained only %v, below the guard", mv.ID, mv.Gain)
		}
		if !mv.Applied && mv.Reason == "" {
			t.Errorf("skipped move %s has no reason", mv.ID)
		}
	}
	if rep.Applied > 0 {
		if rep.MeanGain < 0.01 {
			t.Errorf("mean gain %v below guard", rep.MeanGain)
		}
		if f.Stats().Moves != uint64(rep.Applied) {
			t.Errorf("stats moves %d != report applied %d", f.Stats().Moves, rep.Applied)
		}
	}
	// A second pass right away should find (almost) nothing: improvements
	// were already taken.
	rep2 := f.Rebalance(RebalanceOptions{MaxMoves: 8, MinGain: 0.01})
	for _, mv := range rep2.Moves {
		if mv.Applied && mv.Gain > 0.25 {
			t.Errorf("second pass still found a %v gain on %s; first pass left value behind", mv.Gain, mv.ID)
		}
	}
	// Accounting still balances after migrations.
	for _, d := range f.List() {
		if err := f.Release(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	node, link := f.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Errorf("node %d utilization not restored after rebalance: %v", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Errorf("link %d utilization not restored after rebalance: %v", l, u)
		}
	}
}

// TestRebalanceNoOpWithoutContention: a lone deployment re-solves to the
// identical mapping (its freed residual equals the admission residual), so
// the gain is exactly zero and no migration is applied or counted — and
// its reserved rate must not change.
func TestRebalanceNoOpWithoutContention(t *testing.T) {
	f, err := New(testNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Deploy(Request{
		Pipeline:  testPipeline(t, 6, 7),
		Src:       0,
		Dst:       9,
		Objective: model.MaxFrameRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Rebalance(RebalanceOptions{MinGain: 0.001})
	if rep.Applied != 0 {
		t.Fatalf("lone deployment migrated: %+v", rep)
	}
	if len(rep.Moves) != 1 || rep.Moves[0].Gain != 0 {
		t.Fatalf("expected exactly one zero-gain skipped move, got %+v", rep.Moves)
	}
	got, _ := f.Describe(d.ID)
	if got.ReservedFPS != d.ReservedFPS {
		t.Fatalf("rebalance changed the reserved rate: %v -> %v", d.ReservedFPS, got.ReservedFPS)
	}
	if s := f.Stats(); s.Moves != 0 {
		t.Fatalf("no-op rebalance counted a move: %+v", s)
	}
}

// TestResidualContentionDegradesAdmission verifies the core multi-tenant
// property: with tenants holding capacity, a newcomer's achievable rate on
// the residual network never beats what it would get on the empty network.
func TestResidualContentionDegradesAdmission(t *testing.T) {
	net := testNetwork(t)
	pl := testPipeline(t, 6, 7)

	empty, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := empty.Deploy(Request{Pipeline: pl, Src: 0, Dst: 9, Objective: model.MaxFrameRate})
	if err != nil {
		t.Fatal(err)
	}

	crowded, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := crowded.Deploy(Request{
			Pipeline:  testPipeline(t, 5, uint64(100+i)),
			Src:       1,
			Dst:       8,
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1},
		}); err != nil {
			t.Fatalf("background deploy %d: %v", i, err)
		}
	}
	contended, err := crowded.Deploy(Request{Pipeline: pl, Src: 0, Dst: 9, Objective: model.MaxFrameRate})
	if err != nil {
		if errors.Is(err, ErrRejected) {
			return // full rejection is consistent degradation
		}
		t.Fatal(err)
	}
	if contended.RateFPS > alone.RateFPS*(1+1e-9) {
		t.Errorf("contended admission rate %v beats uncontended %v", contended.RateFPS, alone.RateFPS)
	}
}
