package fleet

import (
	"errors"
	"testing"

	"elpc/internal/model"
)

// deployN admits n streaming deployments with modest demands and returns
// them. Seeds vary per deployment so placements spread over the network.
func deployN(t *testing.T, f *Fleet, n int) []Deployment {
	t.Helper()
	out := make([]Deployment, 0, n)
	for i := 0; i < n; i++ {
		d, err := f.Deploy(Request{
			Tenant:    "t",
			Pipeline:  testPipeline(t, 4+i%3, uint64(10+i)),
			Src:       model.NodeID(i % 10),
			Dst:       model.NodeID((i + 5) % 10),
			Objective: model.MaxFrameRate,
			SLO:       SLO{MinRateFPS: 1},
		})
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		out = append(out, d)
	}
	return out
}

// touching returns the deployments whose reservations touch node v.
func touching(deps []Deployment, f *Fleet, v model.NodeID) map[string]bool {
	out := make(map[string]bool)
	for _, d := range deps {
		for _, nd := range d.Assignment {
			if nd == v {
				out[d.ID] = true
			}
		}
	}
	return out
}

// TestRepairIsIncremental is the acceptance check for incremental repair:
// an event touching k of n deployments re-solves only those k, asserted by
// the fleet's solver-call counter.
func TestRepairIsIncremental(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	deps := deployN(t, f, 8)

	// Pick a node used by some but not all deployments.
	var victim model.NodeID = -1
	for v := 0; v < net.N(); v++ {
		k := len(touching(deps, f, model.NodeID(v)))
		if k > 0 && k < len(deps) {
			victim = model.NodeID(v)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no node splits the fleet; test network too small")
	}
	events := []model.ChurnEvent{{Kind: model.NodeDown, Node: victim}}
	want := touching(deps, f, victim)

	if err := f.ApplyChurn(events); err != nil {
		t.Fatal(err)
	}
	affected := f.Affected(events)
	if len(affected) != len(want) {
		t.Fatalf("affected = %v, want the %d deployments touching v%d", affected, len(want), victim)
	}
	for _, id := range affected {
		if !want[id] {
			t.Errorf("affected includes %s, which does not touch v%d", id, victim)
		}
	}

	before := f.SolveCount()
	rep := f.Repair(affected, RepairOptions{})
	solves := f.SolveCount() - before

	// Every affected placement is broken (its node lost all capacity), so
	// repair must re-solve each exactly once — and nothing else.
	if rep.Checked != len(affected) || rep.Resolved != len(affected) {
		t.Errorf("checked=%d resolved=%d, want both %d", rep.Checked, rep.Resolved, len(affected))
	}
	if int(solves) != len(affected) {
		t.Errorf("repair cost %d solves for %d affected deployments; repair must be incremental", solves, len(affected))
	}
	if rep.Migrated+len(rep.Parked) != len(affected) {
		t.Errorf("migrated %d + parked %d != affected %d", rep.Migrated, len(rep.Parked), len(affected))
	}

	// No surviving deployment may hold capacity on the downed node.
	for _, d := range f.List() {
		for _, nd := range d.Assignment {
			if nd == victim {
				t.Errorf("deployment %s still mapped onto downed node v%d", d.ID, victim)
			}
		}
	}
	// Untouched deployments must be exactly as they were.
	for _, d := range deps {
		if want[d.ID] {
			continue
		}
		got, ok := f.Describe(d.ID)
		if !ok {
			t.Errorf("untouched deployment %s disappeared", d.ID)
			continue
		}
		if got.Mapping != d.Mapping {
			t.Errorf("untouched deployment %s moved: %s -> %s", d.ID, d.Mapping, got.Mapping)
		}
	}
}

// TestRepairKeepsValidPlacements verifies that a mild degradation of a
// barely-loaded link does not displace deployments whose placements still
// hold, and that kept placements cost no solver calls.
func TestRepairKeepsValidPlacements(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Deploy(Request{
		Pipeline:  testPipeline(t, 4, 3),
		Src:       0,
		Dst:       9,
		Objective: model.MaxFrameRate,
		SLO:       SLO{MinRateFPS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade a link the deployment holds capacity on, but only slightly:
	// the placement keeps fitting, so repair must keep it.
	_, linkU := f.Utilization()
	link := -1
	for l, u := range linkU {
		if u > 0 {
			link = l
			break
		}
	}
	if link < 0 {
		t.Skip("deployment reserved no link capacity (single-node mapping)")
	}
	events := []model.ChurnEvent{{Kind: model.LinkDegrade, Link: link, Factor: 0.99}}
	if err := f.ApplyChurn(events); err != nil {
		t.Fatal(err)
	}
	affected := f.Affected(events)
	if len(affected) != 1 || affected[0] != d.ID {
		t.Fatalf("affected = %v, want [%s]", affected, d.ID)
	}
	before := f.SolveCount()
	rep := f.Repair(affected, RepairOptions{})
	if f.SolveCount() != before {
		t.Errorf("still-valid placement re-solved (%d calls); validity check must be solve-free", f.SolveCount()-before)
	}
	if rep.Kept != 1 || rep.Migrated != 0 || len(rep.Parked) != 0 {
		t.Errorf("report = %+v, want 1 kept", rep)
	}
}

// TestRepairParksWhenInfeasible verifies the parked-not-lost path: with the
// destination node down, no feasible placement exists; the deployment is
// evicted, returned as parked with a re-usable request, and its capacity is
// fully released.
func TestRepairParksWhenInfeasible(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Deploy(Request{
		Tenant:    "cam",
		Pipeline:  testPipeline(t, 4, 3),
		Src:       0,
		Dst:       9,
		Objective: model.MaxFrameRate,
		SLO:       SLO{MinRateFPS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every mapping must place the sink at the destination; downing it
	// leaves no feasible placement.
	events := []model.ChurnEvent{{Kind: model.NodeDown, Node: 9}}
	if err := f.ApplyChurn(events); err != nil {
		t.Fatal(err)
	}
	rep := f.Repair(f.Affected(events), RepairOptions{})
	if len(rep.Parked) != 1 || rep.Migrated != 0 {
		t.Fatalf("report = %+v, want exactly one parked", rep)
	}
	p := rep.Parked[0]
	if p.ID != d.ID || p.Tenant != "cam" || p.Req.Pipeline == nil || p.Req.Dst != 9 {
		t.Errorf("parked deployment incomplete: %+v", p)
	}
	if _, ok := f.Describe(d.ID); ok {
		t.Error("parked deployment still listed")
	}
	nodeU, linkU := f.Utilization()
	for v, u := range nodeU {
		if u != 0 {
			t.Errorf("node %d load %v after park; capacity must be fully released", v, u)
		}
	}
	for l, u := range linkU {
		if u != 0 {
			t.Errorf("link %d load %v after park", l, u)
		}
	}

	// Capacity returns; the parked request must admit again.
	if err := f.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeUp, Node: 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Deploy(p.Req); err != nil {
		t.Errorf("re-queueing the parked request after capacity returned: %v", err)
	}
}

// TestDeployRejectsDownNode is the admission-side twin of the repair
// down-node guard: with the source node down, the solver still pins the
// zero-cost source module there (it reserves nothing, so capacity checks
// alone would pass), but admission must reject the hostless mapping —
// otherwise the requeue loop could oscillate a parked deployment back
// onto the failed node.
func TestDeployRejectsDownNode(t *testing.T) {
	net := testNetwork(t)
	f, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeDown, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	_, err = f.Deploy(Request{
		Pipeline:  testPipeline(t, 4, 3),
		Src:       0, // down: module 0 has no host
		Dst:       9,
		Objective: model.MaxFrameRate,
		SLO:       SLO{MinRateFPS: 1},
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("deploy with down src: err = %v, want ErrRejected", err)
	}
	// After the node recovers, the same request must admit.
	if err := f.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeUp, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Deploy(Request{
		Pipeline:  testPipeline(t, 4, 3),
		Src:       0,
		Dst:       9,
		Objective: model.MaxFrameRate,
		SLO:       SLO{MinRateFPS: 1},
	}); err != nil {
		t.Fatalf("deploy after recovery: %v", err)
	}
}

// TestRepairParallelInvariants runs the same broken fleet through a
// sequential and a parallel repair pass. Both must leave the fleet
// consistent — full accounting of the affected set, no survivor on a down
// node, every surviving reservation within the degraded capacity — and
// the parallel pass must reach the same kept/migrated/parked outcomes and
// surviving mappings as the sequential one (parallel proposals see the
// churned capacity factors via CloneEmpty; resetting them to nominal
// would make Workers>1 park migratable deployments and fail this test).
func TestRepairParallelInvariants(t *testing.T) {
	type outcome struct {
		rep       RepairReport
		survivors []string
	}
	run := func(workers int) outcome {
		net := testNetwork(t)
		f, err := New(net)
		if err != nil {
			t.Fatal(err)
		}
		deployN(t, f, 8)
		events := []model.ChurnEvent{
			{Kind: model.NodeDown, Node: 3},
			{Kind: model.LinkDegrade, Link: 7, Factor: 0.2},
		}
		if err := f.ApplyChurn(events); err != nil {
			t.Fatal(err)
		}
		affected := f.Affected(events)
		rep := f.Repair(affected, RepairOptions{Workers: workers})
		if rep.Checked != len(affected) || rep.Kept+rep.Migrated+len(rep.Parked) != rep.Checked {
			t.Errorf("workers=%d: inconsistent accounting %+v for %d affected", workers, rep, len(affected))
		}
		var survivors []string
		for _, d := range f.List() {
			survivors = append(survivors, d.ID+":"+d.Mapping)
			for _, v := range d.Assignment {
				if v == 3 {
					t.Errorf("workers=%d: survivor %s still on down node", workers, d.ID)
				}
			}
		}
		nodeU, linkU := f.Utilization()
		nodeCap, linkCap := f.Capacity()
		const eps = 1e-9
		for v, u := range nodeU {
			if u > nodeCap[v]+eps {
				t.Errorf("workers=%d: node %d load %v exceeds capacity %v", workers, v, u, nodeCap[v])
			}
		}
		for l, u := range linkU {
			if u > linkCap[l]+eps {
				t.Errorf("workers=%d: link %d load %v exceeds capacity %v", workers, l, u, linkCap[l])
			}
		}
		return outcome{rep: rep, survivors: survivors}
	}

	seq := run(1)
	par := run(4)
	if seq.rep.Kept != par.rep.Kept || seq.rep.Migrated != par.rep.Migrated ||
		len(seq.rep.Parked) != len(par.rep.Parked) {
		t.Errorf("parallel repair diverged: sequential kept/migrated/parked = %d/%d/%d, parallel = %d/%d/%d",
			seq.rep.Kept, seq.rep.Migrated, len(seq.rep.Parked),
			par.rep.Kept, par.rep.Migrated, len(par.rep.Parked))
	}
	if len(seq.survivors) != len(par.survivors) {
		t.Fatalf("survivor sets differ: %v vs %v", seq.survivors, par.survivors)
	}
	for i := range seq.survivors {
		if seq.survivors[i] != par.survivors[i] {
			t.Errorf("survivor %d differs: seq %s, par %s", i, seq.survivors[i], par.survivors[i])
		}
	}
}

// TestRebalanceSeesChurnedCapacity is the rebalance-side regression test
// for the stale-capacity proposal bug: with a node down, neither the
// sequential nor the parallel rebalance pass may migrate a deployment
// onto it.
func TestRebalanceSeesChurnedCapacity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		net := testNetwork(t)
		f, err := New(net)
		if err != nil {
			t.Fatal(err)
		}
		deployN(t, f, 8)
		events := []model.ChurnEvent{{Kind: model.NodeDown, Node: 3}}
		if err := f.ApplyChurn(events); err != nil {
			t.Fatal(err)
		}
		f.Repair(f.Affected(events), RepairOptions{})
		// Free capacity so rebalance has migrations to propose.
		for i, d := range f.List() {
			if i%2 == 0 {
				if err := f.Release(d.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		f.Rebalance(RebalanceOptions{MaxMoves: 8, Workers: workers})
		for _, d := range f.List() {
			for _, v := range d.Assignment {
				if v == 3 {
					t.Errorf("workers=%d: rebalance moved %s onto down node v3 (%s)", workers, d.ID, d.Mapping)
				}
			}
		}
	}
}
