// Package fleet is the multi-tenant placement subsystem: a Fleet owns one
// shared transport network and admits many concurrently deployed pipelines
// onto it, each solved by the paper's single-pipeline algorithms against the
// *residual* network (node powers and link bandwidths scaled down by the
// capacity already reserved by earlier tenants — model.ResidualNetwork).
//
// The paper maps one pipeline onto an uncontended network; a production
// service must colocate many. Fleet closes that gap with three mechanisms:
//
//   - Admission control: Deploy solves the request's objective on the
//     residual network and rejects it (ErrRejected) when no mapping meets
//     the request's SLO or when reserving it would overcommit any resource.
//   - Capacity accounting: an admitted deployment reserves, on every node
//     and link its mapping touches, the utilization it imposes at its
//     reserved frame rate. Release returns exactly that capacity; the
//     outstanding-set recompute guarantees the empty fleet is bit-for-bit
//     identical to a fresh one.
//   - Live rebalancing: Rebalance re-solves deployments against the
//     capacity freed since they were admitted and migrates the ones whose
//     improvement clears a migration-cost guard.
//   - Incremental repair: when churn events mutate the network's capacity
//     (ApplyChurn), Affected identifies exactly the deployments whose
//     placements touch the mutated elements and Repair re-solves only the
//     broken ones — migrating what fits, parking (evicting with a
//     reusable admission request) what does not. internal/churn drives
//     this cycle and re-queues parked deployments when capacity returns.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elpc/internal/core"
	"elpc/internal/engine"
	"elpc/internal/journal"
	"elpc/internal/model"
	"elpc/internal/telemetry"
	"elpc/internal/wal"
)

// ErrRejected is returned (wrapped, with a reason) when admission control
// declines a deployment: no feasible mapping on the residual network, the
// SLO cannot be met, or reserving the mapping would overcommit a resource.
var ErrRejected = errors.New("admission rejected")

// ErrNotFound is returned for operations on unknown deployment IDs.
var ErrNotFound = errors.New("deployment not found")

// DefaultInteractiveFPS is the demand rate reserved for min-delay
// deployments that do not state one: interactive sessions still occupy
// capacity per processed frame, so admission must account for some rate.
const DefaultInteractiveFPS = 1.0

// Class is a deployment's SLO class: the priority band admission, repair,
// and rebalancing order work by, and the currency preemption trades in (a
// guaranteed deploy may displace best-effort tenants; see Deploy).
type Class string

const (
	// ClassGuaranteed deployments are admitted first and may preempt
	// best-effort tenants when normal admission fails.
	ClassGuaranteed Class = "guaranteed"
	// ClassStandard is the default band (an empty Class means standard).
	ClassStandard Class = "standard"
	// ClassBestEffort deployments are admitted last, shed first under
	// intake pressure, and eligible for preemption.
	ClassBestEffort Class = "best_effort"
)

// Valid reports whether c names a known class (empty = standard is valid).
func (c Class) Valid() bool {
	switch c {
	case "", ClassGuaranteed, ClassStandard, ClassBestEffort:
		return true
	}
	return false
}

// Canon maps the empty class to ClassStandard.
func (c Class) Canon() Class {
	if c == "" {
		return ClassStandard
	}
	return c
}

// Rank orders classes for admission preference: higher ranks admit first.
func (c Class) Rank() int {
	switch c {
	case ClassGuaranteed:
		return 2
	case ClassBestEffort:
		return 0
	default:
		return 1
	}
}

// SLO states what a deployment requires from its placement. Zero fields are
// unconstrained.
type SLO struct {
	// MaxDelayMs caps the end-to-end delay (Eq. 1, evaluated on the
	// residual network at admission).
	MaxDelayMs float64 `json:"max_delay_ms,omitempty"`
	// MinRateFPS is the frame rate the tenant will sustain. It is both an
	// SLO (reject if unachievable) and the demand the deployment reserves
	// capacity for.
	MinRateFPS float64 `json:"min_rate_fps,omitempty"`
	// Class is the SLO class ("guaranteed", "standard", "best_effort");
	// empty selects standard.
	Class Class `json:"class,omitempty"`
}

// Request asks the fleet to place one pipeline.
type Request struct {
	// Tenant labels the owner (informational; reported by List/Describe).
	Tenant string
	// Pipeline is the linear pipeline to place.
	Pipeline *model.Pipeline
	// Src and Dst are the designated data source and end-user nodes.
	Src, Dst model.NodeID
	// Objective selects min-delay (interactive) or max-frame-rate
	// (streaming) placement.
	Objective model.Objective
	// SLO constrains admission.
	SLO SLO
	// Cost overrides the cost-model options; nil selects the defaults.
	Cost *model.CostOptions
	// RequeueOf names the parked entry this request re-admits (set by the
	// churn reconciler's requeue loop). It does not affect admission; it is
	// recorded in the WAL so recovery drains the parked pool identically.
	RequeueOf string

	// warm carries the retained DP grids of a previously admitted deployment
	// back into admission (parked and preempted entries keep their grids so a
	// requeue solves warm). It never affects the solved result — a warm solve
	// is byte-identical to a cold one — so it is invisible to callers.
	warm *core.WarmState
}

// Deployment is one admitted pipeline: its mapping, the metrics it was
// admitted with (evaluated on the residual network it was solved against),
// and the capacity it holds.
type Deployment struct {
	// ID is the fleet-assigned handle ("d-000001", dense per fleet).
	ID string `json:"id"`
	// Tenant echoes Request.Tenant.
	Tenant string `json:"tenant,omitempty"`
	// Objective is the placement objective.
	Objective model.Objective `json:"-"`
	// Assignment maps module j to Assignment[j].
	Assignment []model.NodeID `json:"assignment"`
	// Mapping is the human-readable group rendering of Assignment.
	Mapping string `json:"mapping"`
	// DelayMs is the Eq. 1 delay on the residual network the mapping was
	// last solved against (admission or the latest applied migration).
	DelayMs float64 `json:"delay_ms"`
	// RateFPS is the sustainable frame rate (1000 / shared bottleneck) on
	// the residual network the mapping was last solved against.
	RateFPS float64 `json:"rate_fps"`
	// ReservedFPS is the frame rate the deployment reserves capacity for:
	// SLO.MinRateFPS when stated, otherwise the achieved rate (streaming)
	// or DefaultInteractiveFPS (interactive), fixed at admission.
	// Rebalancing never changes it — migrations move the mapping, not the
	// tenant's demand.
	ReservedFPS float64 `json:"reserved_fps"`
	// SLO echoes the admission constraints.
	SLO SLO `json:"slo"`
	// Seq orders deployments by admission (monotonic per fleet, never
	// reused; rebalanced deployments keep their seq).
	Seq uint64 `json:"seq"`

	pipe        *model.Pipeline
	cost        model.CostOptions
	src, dst    model.NodeID
	reservation model.Reservation

	// warm retains the deployment's DP grids between solves, so repair and
	// rebalance re-solves after churn recompute only the cells the capacity
	// delta invalidated. Nil when warm-start is disabled or the deployment was
	// recovered from the WAL (it re-warms on its first re-solve). Owned by the
	// fleet lock; parallel proposal goroutines touch disjoint deployments.
	warm *core.WarmState
}

// clone returns a caller-owned copy of the public view. The warm state stays
// behind: it is single-threaded scratch owned by the fleet's copy.
func (d *Deployment) clone() Deployment {
	c := *d
	c.warm = nil
	c.Assignment = append([]model.NodeID(nil), d.Assignment...)
	return c
}

// Stats is a point-in-time snapshot of fleet counters and utilization
// gauges.
type Stats struct {
	// Deployments is the number currently admitted.
	Deployments int `json:"deployments"`
	// Admitted, Rejected, Released, and Moves are monotonic lifecycle
	// counters (Moves counts applied rebalance migrations).
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Released uint64 `json:"released"`
	Moves    uint64 `json:"rebalance_moves"`
	// Repaired counts deployments examined by Repair passes; RepairMoves
	// the migrations they applied; ParkEvictions the deployments evicted
	// because no feasible placement remained after churn.
	Repaired      uint64 `json:"repaired"`
	RepairMoves   uint64 `json:"repair_moves"`
	ParkEvictions uint64 `json:"park_evictions"`
	// Preemptions counts best-effort deployments displaced (parked) so a
	// guaranteed deploy could admit.
	Preemptions uint64 `json:"preemptions"`
	// GuaranteedActive / StandardActive / BestEffortActive count the
	// currently admitted deployments per SLO class.
	GuaranteedActive int `json:"guaranteed_active"`
	StandardActive   int `json:"standard_active"`
	BestEffortActive int `json:"best_effort_active"`
	// SolverCalls counts every objective solve run on the fleet's behalf.
	SolverCalls uint64 `json:"solver_calls"`
	// ReservedFPS is the total frame rate reserved across deployments.
	ReservedFPS float64 `json:"reserved_fps"`
	// MeanNodeUtil / MaxNodeUtil (MeanLinkUtil / MaxLinkUtil) gauge the
	// outstanding load fraction over all nodes (links).
	MeanNodeUtil float64 `json:"mean_node_util"`
	MaxNodeUtil  float64 `json:"max_node_util"`
	MeanLinkUtil float64 `json:"mean_link_util"`
	MaxLinkUtil  float64 `json:"max_link_util"`
}

// Fleet is the stateful multi-tenant placement manager. All methods are safe
// for concurrent use; admission is serialized internally so the solve and
// the reservation it justifies are atomic.
type Fleet struct {
	mu       sync.Mutex
	base     *model.Network
	residual *model.ResidualNetwork
	deps     map[string]*Deployment
	order    []string // admission order; recompute accumulates in this order
	seq      uint64
	pool     *engine.Pool // shared parallel substrate for rebalance re-solves

	// idPrefix namespaces deployment IDs ("s3-" on shard 3 of a
	// ShardedFleet) so IDs stay unique and routable across shards; empty for
	// a standalone fleet — and for shard 0 of a one-shard fleet, which keeps
	// K=1 byte-identical to a plain Fleet.
	idPrefix string
	// region, when non-nil, restricts every solve to the region's
	// sub-network: the solver runs on an extraction of the residual snapshot
	// holding only region nodes and internal links, and the winning mapping
	// is translated back to global node IDs. Set only by ShardedFleet.
	region *model.RegionView
	// external is a static load overlay (the sharded coordinator's summed
	// cross-region reservations) re-added on every recompute; a zero-length
	// reservation means none.
	external model.Reservation
	// jr, when non-nil, receives one typed event per state transition
	// (admission, rejection, release, repair outcome, rebalance move) —
	// the same sites the WAL appends at. Nil (the default, and the
	// benchmark configuration) makes every record a single pointer check.
	jr *journal.Journal
	// wal, when non-nil, durably logs one wal.Record per mutating lock
	// epoch before the operation is acknowledged; walScope labels the
	// records ("" standalone, "s<i>" on shard i). See wal.go.
	wal      *wal.Log
	walScope string
	// txn is the record under construction for the current lock epoch
	// (between beginTxnLocked and endTxnLocked); txnPre is the counter
	// state at epoch start, so counter-only epochs still log.
	txn    *wal.Record
	txnPre wal.Counters

	admitted    uint64
	rejected    uint64
	released    uint64
	moves       uint64
	repaired    uint64
	repairMoves uint64
	parkEvicts  uint64
	preempts    uint64

	// preemptedQ holds deployments displaced by guaranteed admissions until
	// the owner drains them (TakePreempted) into the re-queue loop.
	preemptedQ []ParkedDeployment

	// resScratch is recomputeLocked's reusable reservation-header slice.
	resScratch []model.Reservation

	// solves counts every objective solve run on the fleet's behalf
	// (admission, rebalance proposals, repair re-solves). Atomic because
	// parallel proposal phases increment it from pool goroutines while the
	// coordinating call holds mu. Tests use it to assert repair is
	// incremental: an event touching k deployments costs exactly k solves.
	solves atomic.Uint64

	// warmOff disables warm-start incremental solving (SetWarmStart); the
	// zero value keeps it on. Warm solves are byte-identical to cold ones —
	// the differential equivalence suite runs the same trace both ways and
	// asserts identical mappings and stats — so the toggle only trades CPU
	// for retained-grid memory.
	warmOff bool
	// Warm solve outcome counters (see core.WarmOutcome), atomic for the
	// same reason as solves.
	warmRebuilds atomic.Uint64
	warmPartials atomic.Uint64
	warmHits     atomic.Uint64
	warmBypasses atomic.Uint64

	// lockWait is the per-shard Deploy lock-wait histogram, resolved lazily
	// because idPrefix is assigned after construction (see lockWaitHist).
	lockWaitOnce sync.Once
	lockWait     *telemetry.Histogram
}

// New builds an empty fleet over the shared base network.
func New(base *model.Network) (*Fleet, error) {
	if base == nil {
		return nil, fmt.Errorf("fleet: nil network")
	}
	return &Fleet{
		base:     base,
		residual: model.NewResidualNetwork(base),
		deps:     make(map[string]*Deployment),
	}, nil
}

// Network returns the shared base network (full nominal capacity).
func (f *Fleet) Network() *model.Network { return f.base }

// UsePool installs the engine pool that parallel rebalance passes fan their
// re-solves out over. Sharing the planning service's pool keeps fleet and
// planning solves on one bounded concurrency budget, so neither can starve
// the other. A nil pool (the default) makes parallel passes spin up a
// transient pool per call.
func (f *Fleet) UsePool(p *engine.Pool) {
	f.mu.Lock()
	f.pool = p
	f.mu.Unlock()
}

// UseJournal installs the event journal every state transition is recorded
// into. A nil journal (the default) disables recording.
func (f *Fleet) UseJournal(j *journal.Journal) {
	f.mu.Lock()
	f.jr = j
	f.mu.Unlock()
}

// record appends one event to the installed journal, stamping the fleet's
// actor layer and shard label; it is a no-op without a journal.
func (f *Fleet) record(ev journal.Event) {
	if f.jr == nil {
		return
	}
	if ev.Actor == "" {
		ev.Actor = journal.ActorFleet
	}
	if ev.Shard == "" {
		ev.Shard = shardLabel(f.idPrefix)
	}
	f.jr.Append(ev)
}

// recomputeLocked rebuilds the residual loads as the exact ordered sum of
// outstanding reservations. Caller holds f.mu. The reservation-header
// scratch is reused across calls (SetLoad retains nothing).
func (f *Fleet) recomputeLocked() {
	outstanding := f.resScratch[:0]
	for _, id := range f.order {
		outstanding = append(outstanding, f.deps[id].reservation)
	}
	f.resScratch = outstanding
	if err := f.residual.SetLoad(outstanding); err != nil {
		// Reservations are built against f.base; shapes cannot mismatch.
		panic(fmt.Sprintf("fleet: recompute: %v", err))
	}
	if len(f.external.NodeFrac) > 0 {
		if err := f.residual.AddLoad(f.external); err != nil {
			// The overlay is built against the same base network.
			panic(fmt.Sprintf("fleet: recompute external: %v", err))
		}
	}
}

// reject records and wraps an admission failure, journaling the rejection
// with the requesting tenant.
func (f *Fleet) reject(req Request, format string, args ...any) error {
	f.rejected++
	rejectedTotal.Inc()
	reason := fmt.Sprintf(format, args...)
	f.record(journal.Event{Kind: journal.DeployRejected, Tenant: req.Tenant, Detail: reason})
	return fmt.Errorf("fleet: %w: %s", ErrRejected, reason)
}

// warmPool recycles WarmStates between deployments: released deployments and
// declined admissions return their (Reset) state here, so steady-state churn
// never allocates fresh grids.
var warmPool = sync.Pool{New: func() any { return core.NewWarmState() }}

// solve runs the objective's solver against the residual snapshot and
// evaluates the mapping on it. A non-nil ws solves through the warm state's
// retained grids (byte-identical results, see core.WarmState); nil is the
// cold path.
func solve(snap *model.Network, req Request, cost model.CostOptions, ws *core.WarmState) (*model.Mapping, float64, float64, error) {
	p := &model.Problem{Net: snap, Pipe: req.Pipeline, Src: req.Src, Dst: req.Dst, Cost: cost}
	var m *model.Mapping
	var err error
	switch req.Objective {
	case model.MinDelay:
		if ws != nil {
			m, err = ws.MinDelay(p)
		} else {
			m, err = core.MinDelay(p)
		}
	case model.MaxFrameRate:
		if ws != nil {
			m, err = ws.MaxFrameRate(p, core.FrameRateOptions{})
		} else {
			m, err = core.MaxFrameRate(p)
		}
	default:
		return nil, 0, 0, fmt.Errorf("fleet: unknown objective %v", req.Objective)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	delay := model.TotalDelay(snap, req.Pipeline, m, cost)
	period := model.SharedBottleneck(snap, req.Pipeline, m)
	return m, delay, model.FrameRate(period), nil
}

// solveCounted is solve plus the fleet's solver-call accounting; every
// fleet-initiated solve goes through it, materializing its own snapshot of
// the given residual view. On a region-scoped fleet the snapshot is the
// region's sub-network alone (model.ResidualNetwork.RegionSnapshot — the
// O(region) hot path sharding's speedup rests on); node powers and link
// bandwidths are scaled bit-identically to a full snapshot, so the returned
// delay and rate match a full-network evaluation of the same mapping, and
// the mapping comes back in global node IDs.
func (f *Fleet) solveCounted(rn *model.ResidualNetwork, req Request, cost model.CostOptions, ws *core.WarmState) (*model.Mapping, float64, float64, error) {
	f.solves.Add(1)
	if f.warmOff {
		ws = nil
	}
	if f.region == nil {
		var snap *model.Network
		if ws != nil {
			// Materialize into the warm state's free snapshot buffer: the
			// grids retain at most one previous snapshot, so double
			// buffering makes the per-solve snapshot allocation-free.
			snap = rn.SnapshotInto(ws.SnapshotScratch())
			ws.TrackSnapshot(snap)
		} else {
			snap = rn.Snapshot()
		}
		m, delay, rate, err := solve(snap, req, cost, ws)
		f.noteWarm(ws)
		return m, delay, rate, err
	}
	ls, ld := f.region.LocalNode[req.Src], f.region.LocalNode[req.Dst]
	if ls < 0 || ld < 0 {
		return nil, 0, 0, fmt.Errorf("fleet: %w: endpoints %d -> %d leave region %d", model.ErrInfeasible, req.Src, req.Dst, f.region.Region)
	}
	local := req
	local.Src, local.Dst = model.NodeID(ls), model.NodeID(ld)
	var snap *model.Network
	if ws != nil {
		snap = rn.RegionSnapshotInto(f.region, ws.SnapshotScratch())
		ws.TrackSnapshot(snap)
	} else {
		snap = rn.RegionSnapshot(f.region)
	}
	m, delay, rate, err := solve(snap, local, cost, ws)
	f.noteWarm(ws)
	if err != nil {
		return nil, 0, 0, err
	}
	return f.region.ToGlobal(m), delay, rate, nil
}

// noteWarm folds the outcome of the warm solve that just ran into the
// fleet's counters; a nil ws (cold solve) is a no-op.
func (f *Fleet) noteWarm(ws *core.WarmState) {
	if ws == nil {
		return
	}
	switch ws.Last().Outcome {
	case core.WarmRebuild:
		f.warmRebuilds.Add(1)
	case core.WarmPartial:
		f.warmPartials.Add(1)
	case core.WarmHit:
		f.warmHits.Add(1)
	case core.WarmBypass:
		f.warmBypasses.Add(1)
	}
}

// warmFor returns the deployment's warm state, lazily attaching a pooled one
// when warm-start is enabled. Deployments recovered from the WAL and
// coordinator-admitted cross-region deployments start without grids; they
// re-warm on their first repair or rebalance re-solve.
func (f *Fleet) warmFor(d *Deployment) *core.WarmState {
	if f.warmOff {
		return nil
	}
	if d.warm == nil {
		d.warm = warmPool.Get().(*core.WarmState)
	}
	return d.warm
}

// recycleWarm resets and pools a deployment's warm state on release/eviction.
func recycleWarm(ws *core.WarmState) {
	if ws == nil {
		return
	}
	ws.Reset()
	warmPool.Put(ws)
}

// SetWarmStart toggles warm-start incremental solving (on by default).
// Turning it off detaches nothing: retained grids stay with their
// deployments, they are just bypassed until re-enabled.
func (f *Fleet) SetWarmStart(on bool) {
	f.mu.Lock()
	f.warmOff = !on
	f.mu.Unlock()
}

// WarmSolveStats snapshots the warm-start outcome counters.
func (f *Fleet) WarmSolveStats() WarmSolveStats {
	return WarmSolveStats{
		Rebuilds: f.warmRebuilds.Load(),
		Partials: f.warmPartials.Load(),
		Hits:     f.warmHits.Load(),
		Bypasses: f.warmBypasses.Load(),
	}
}

// WarmSolveStats counts warm-start solves by outcome. It is reported
// separately from Stats so a warm and a cold fleet replaying the same trace
// produce byte-identical Stats — the invariant the differential equivalence
// suite enforces.
type WarmSolveStats struct {
	// Rebuilds are solves that recomputed the full grid (first solve of a
	// deployment, signature change, or structural network change).
	Rebuilds uint64 `json:"rebuilds"`
	// Partials recomputed only the cells a capacity delta invalidated.
	Partials uint64 `json:"partials"`
	// Hits served the retained grids unchanged.
	Hits uint64 `json:"hits"`
	// Bypasses delegated to the cold path (problem over the retention caps).
	Bypasses uint64 `json:"bypasses"`
}

// Total is the number of solves that ran through a warm state.
func (w WarmSolveStats) Total() uint64 {
	return w.Rebuilds + w.Partials + w.Hits + w.Bypasses
}

// HitRatio is the fraction of warm solves that reused retained work (hits
// plus partials); 0 when no warm solves ran.
func (w WarmSolveStats) HitRatio() float64 {
	t := w.Total()
	if t == 0 {
		return 0
	}
	return float64(w.Hits+w.Partials) / float64(t)
}

// SolveCount returns the number of objective solves the fleet has run
// (admission, rebalance proposals, repair re-solves).
func (f *Fleet) SolveCount() uint64 { return f.solves.Load() }

// admissionRate resolves the frame rate a deployment reserves capacity for
// given its achieved sustainable rate.
func admissionRate(req Request, rateFPS float64) float64 {
	if req.SLO.MinRateFPS > 0 {
		return req.SLO.MinRateFPS
	}
	if req.Objective == model.MinDelay {
		return DefaultInteractiveFPS
	}
	return rateFPS
}

// validateRequest runs the lock-free structural checks a request must pass
// before admission is attempted. Structural errors never wrap ErrRejected.
func (f *Fleet) validateRequest(req Request) error {
	if req.Pipeline == nil {
		return fmt.Errorf("fleet: request missing pipeline")
	}
	if !f.base.ValidNode(req.Src) || !f.base.ValidNode(req.Dst) {
		return fmt.Errorf("fleet: invalid endpoints %d -> %d", req.Src, req.Dst)
	}
	if req.SLO.MaxDelayMs < 0 || req.SLO.MinRateFPS < 0 {
		return fmt.Errorf("fleet: negative SLO")
	}
	if !req.SLO.Class.Valid() {
		return fmt.Errorf("fleet: unknown SLO class %q", req.SLO.Class)
	}
	return nil
}

// tryAdmitLocked runs the admission core against the current residual state
// and commits on success. It returns (dep, "", nil) when the deployment was
// admitted, (zero, reason, nil) when admission control declines — without
// counting or journaling the rejection, so callers (Deploy, DeployBatch,
// the preemption retry loop) decide whether a given attempt is final — and
// (zero, "", err) on a structural or solver error. Caller holds f.mu.
func (f *Fleet) tryAdmitLocked(req Request, cost model.CostOptions) (Deployment, string, error) {
	// Solve warm: a requeued request brings the parked deployment's grids
	// back; a fresh request warms a pooled state so post-churn repairs of
	// this deployment recompute only invalidated cells. Declined or failed
	// admissions return a pool-acquired state (requeue-owned grids stay with
	// the request — the reconciler re-parks it on failure).
	ws := req.warm
	retained := ws != nil
	if ws == nil && !f.warmOff {
		ws = warmPool.Get().(*core.WarmState)
	}
	defer func() {
		if ws != nil && !retained {
			recycleWarm(ws)
		}
	}()
	m, delay, rate, err := f.solveCounted(f.residual, req, cost, ws)
	if err != nil {
		if errors.Is(err, model.ErrInfeasible) {
			return Deployment{}, fmt.Sprintf("no feasible mapping on residual network: %v", err), nil
		}
		return Deployment{}, "", err
	}
	// The solver can still route zero-cost modules (the pinned source or
	// sink, in particular) through a down node — the residual snapshot
	// floors it at MinResidualFraction rather than removing it, and a
	// zero-cost module reserves nothing there, so Fits would pass. A
	// mapping with a hostless module must never be admitted; this is the
	// admission-side twin of the Repair/Rebalance down-node guards, so
	// repair, rebalance, requeue, and deploy agree.
	for _, v := range m.Assign {
		if f.residual.NodeIsDown(v) {
			return Deployment{}, fmt.Sprintf("no feasible placement: node v%d is down", v), nil
		}
	}
	if req.SLO.MaxDelayMs > 0 && delay > req.SLO.MaxDelayMs {
		return Deployment{}, fmt.Sprintf("delay %.3f ms exceeds SLO %.3f ms", delay, req.SLO.MaxDelayMs), nil
	}
	reserved := admissionRate(req, rate)
	if rate < reserved || math.IsInf(delay, 1) {
		return Deployment{}, fmt.Sprintf("sustainable rate %.3f fps below demand %.3f fps", rate, reserved), nil
	}
	res, err := model.MappingReservation(f.base, req.Pipeline, m, reserved)
	if err != nil {
		return Deployment{}, "", err
	}
	res.Class = string(req.SLO.Class.Canon())
	if !f.residual.Fits(res) {
		return Deployment{}, fmt.Sprintf("reservation at %.3f fps overcommits the network", reserved), nil
	}

	f.seq++
	d := &Deployment{
		ID:          fmt.Sprintf("%sd-%06d", f.idPrefix, f.seq),
		Tenant:      req.Tenant,
		Objective:   req.Objective,
		Assignment:  m.Assign,
		Mapping:     m.String(),
		DelayMs:     delay,
		RateFPS:     rate,
		ReservedFPS: reserved,
		SLO:         req.SLO,
		Seq:         f.seq,
		pipe:        req.Pipeline,
		cost:        cost,
		src:         req.Src,
		dst:         req.Dst,
		reservation: res,
		warm:        ws,
	}
	retained = true
	f.deps[d.ID] = d
	f.order = append(f.order, d.ID)
	f.recomputeLocked()
	f.admitted++
	admittedTotal.Inc()
	f.record(journal.Event{
		Kind:       journal.DeployAdmitted,
		Deployment: d.ID,
		Tenant:     d.Tenant,
		Detail:     fmt.Sprintf("reserved %.3f fps", reserved),
		Mapping:    d.Mapping,
		DelayMs:    delay,
		RateFPS:    rate,
	})
	f.txnDeploy(d, req.RequeueOf)
	return d.clone(), "", nil
}

// MaxPreemptionVictims bounds how many best-effort deployments one
// guaranteed admission may displace before giving up.
const MaxPreemptionVictims = 4

// preemptLocked retries a rejected guaranteed admission by displacing
// best-effort deployments: victims are removed latest-admitted-first, one at
// a time, with the admission core retried after each removal. On success the
// displaced deployments are journaled (DeployPreempted) and queued for
// re-admission (TakePreempted); on exhaustion the fleet state is restored
// exactly (the residual recompute is an ordered sum, so restoration is
// bit-identical) and ok is false. Caller holds f.mu.
func (f *Fleet) preemptLocked(req Request, cost model.CostOptions) (Deployment, bool) {
	var victims []*Deployment
	for i := len(f.order) - 1; i >= 0 && len(victims) < MaxPreemptionVictims; i-- {
		if d := f.deps[f.order[i]]; d.SLO.Class == ClassBestEffort {
			victims = append(victims, d)
		}
	}
	if len(victims) == 0 {
		return Deployment{}, false
	}
	savedOrder := append([]string(nil), f.order...)
	var removed []*Deployment
	for _, v := range victims {
		delete(f.deps, v.ID)
		for i, oid := range f.order {
			if oid == v.ID {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
		removed = append(removed, v)
		f.recomputeLocked()
		d, reason, err := f.tryAdmitLocked(req, cost)
		if err != nil {
			break
		}
		if reason == "" {
			for _, vd := range removed {
				f.preempts++
				preemptedTotal.Inc()
				f.record(journal.Event{
					Kind:       journal.DeployPreempted,
					Deployment: vd.ID,
					Tenant:     vd.Tenant,
					Detail:     fmt.Sprintf("displaced by guaranteed deploy %s (tenant %s)", d.ID, req.Tenant),
				})
				entry := ParkedDeployment{
					ID:     vd.ID,
					Tenant: vd.Tenant,
					Reason: fmt.Sprintf("preempted by guaranteed deploy %s", d.ID),
					Req:    requestOf(vd),
				}
				f.preemptedQ = append(f.preemptedQ, entry)
				f.txnRemove(vd.ID)
				f.txnPark(entry)
			}
			return d, true
		}
	}
	// No prefix of the victim list frees enough residual: restore exactly.
	for _, vd := range removed {
		f.deps[vd.ID] = vd
	}
	f.order = savedOrder
	f.recomputeLocked()
	return Deployment{}, false
}

// Deploy admits one pipeline: it solves the objective against the residual
// network, checks the SLO, reserves capacity, and returns the deployment.
// A guaranteed-class request that fails admission additionally attempts
// preemption — displacing up to MaxPreemptionVictims best-effort tenants
// (parked and journaled, recoverable via TakePreempted) when that frees
// enough residual to admit. Rejections wrap ErrRejected; structural errors
// (bad request) do not.
func (f *Fleet) Deploy(req Request) (Deployment, error) {
	if err := f.validateRequest(req); err != nil {
		return Deployment{}, err
	}
	cost := model.DefaultCostOptions()
	if req.Cost != nil {
		cost = *req.Cost
	}

	t0 := time.Now()
	defer deploySeconds.ObserveSince(t0)
	lockWait := f.lockWaitHist()
	f.mu.Lock()
	lockWait.ObserveSince(t0)
	f.beginTxnLocked(wal.KindDeploy)
	d, err := f.deployLocked(req, cost)
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return d, err
}

// deployLocked is the admission attempt plus the guaranteed-class preemption
// fallback, with rejection accounting. Caller holds f.mu.
func (f *Fleet) deployLocked(req Request, cost model.CostOptions) (Deployment, error) {
	d, reason, err := f.tryAdmitLocked(req, cost)
	if err != nil {
		return Deployment{}, err
	}
	if reason == "" {
		return d, nil
	}
	if req.SLO.Class == ClassGuaranteed {
		if d, ok := f.preemptLocked(req, cost); ok {
			return d, nil
		}
	}
	return Deployment{}, f.reject(req, "%s", reason)
}

// BatchOutcome is the per-request result of DeployBatch, reported at the
// request's original index.
type BatchOutcome struct {
	// Index is the request's position in the submitted batch.
	Index int
	// Deployment is the admitted deployment when Err is nil.
	Deployment Deployment
	// Err is the admission error (wrapping ErrRejected) or structural error.
	Err error
}

// batchOrder returns the admission order for a batch: SLO class rank
// descending (guaranteed first), then reserved demand descending (scarcer
// requests pack first, first-fit-decreasing style), then delay-SLO tightness
// ascending, then submission order. Invalid indices (out[i].Err already set)
// are excluded.
func batchOrder(reqs []Request, out []BatchOutcome) []int {
	order := make([]int, 0, len(reqs))
	for i := range reqs {
		if out[i].Err == nil {
			order = append(order, i)
		}
	}
	sortByPriority(reqs, order)
	return order
}

// sortByPriority sorts the index list order in place by the batch admission
// key (see batchOrder). Shared with the sharded coordinator pass.
func sortByPriority(reqs []Request, order []int) {
	slack := func(r Request) float64 {
		if r.SLO.MaxDelayMs <= 0 {
			return math.Inf(1)
		}
		return r.SLO.MaxDelayMs
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ka, kb := ra.SLO.Class.Rank(), rb.SLO.Class.Rank(); ka != kb {
			return ka > kb
		}
		if ra.SLO.MinRateFPS != rb.SLO.MinRateFPS {
			return ra.SLO.MinRateFPS > rb.SLO.MinRateFPS
		}
		if sa, sb := slack(ra), slack(rb); sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
}

// DeployBatch admits a burst of requests under one lock epoch: structurally
// invalid requests fail fast without the lock, the rest are sorted by SLO
// class and scarcity (batchOrder) and placed in a single residual pass —
// one mutex acquisition for the whole burst instead of one per request.
// Outcomes are reported at each request's original index. The class-ordered
// single pass is why a batch admits at least as much guaranteed/high-demand
// traffic as the same requests deployed sequentially in arrival order.
func (f *Fleet) DeployBatch(reqs []Request) []BatchOutcome {
	out := make([]BatchOutcome, len(reqs))
	for i := range reqs {
		out[i].Index = i
		if err := f.validateRequest(reqs[i]); err != nil {
			out[i].Err = err
		}
	}
	order := batchOrder(reqs, out)
	if len(order) == 0 {
		return out
	}

	t0 := time.Now()
	defer batchDeploySeconds.ObserveSince(t0)
	lockWait := f.lockWaitHist()
	f.mu.Lock()
	lockWait.ObserveSince(t0)
	f.beginTxnLocked(wal.KindBatch)
	for _, i := range order {
		req := reqs[i]
		cost := model.DefaultCostOptions()
		if req.Cost != nil {
			cost = *req.Cost
		}
		out[i].Deployment, out[i].Err = f.deployLocked(req, cost)
	}
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return out
}

// TakePreempted drains and returns the deployments displaced by guaranteed
// admissions since the last call, oldest first. The owner (internal/churn's
// reconciler, via the service layer) re-queues them when capacity returns.
func (f *Fleet) TakePreempted() []ParkedDeployment {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.preemptedQ
	f.preemptedQ = nil
	return out
}

// Release returns a deployment's capacity to the fleet.
func (f *Fleet) Release(id string) error {
	f.mu.Lock()
	f.beginTxnLocked(wal.KindRelease)
	err := f.releaseLocked(id)
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return err
}

// releaseLocked removes the deployment and recomputes the residual loads.
// Caller holds f.mu inside a WAL epoch.
func (f *Fleet) releaseLocked(id string) error {
	d, ok := f.deps[id]
	if !ok {
		return fmt.Errorf("fleet: %w: %q", ErrNotFound, id)
	}
	delete(f.deps, id)
	recycleWarm(d.warm)
	d.warm = nil
	for i, oid := range f.order {
		if oid == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.recomputeLocked()
	f.released++
	f.record(journal.Event{Kind: journal.ReleaseDone, Deployment: id, Tenant: d.Tenant})
	f.txnRemove(id)
	return nil
}

// Describe returns a copy of one deployment.
func (f *Fleet) Describe(id string) (Deployment, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.deps[id]
	if !ok {
		return Deployment{}, false
	}
	return d.clone(), true
}

// List returns copies of all deployments in admission order.
func (f *Fleet) List() []Deployment {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Deployment, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.deps[id].clone())
	}
	return out
}

// Stats snapshots counters and utilization gauges.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Deployments:   len(f.deps),
		Admitted:      f.admitted,
		Rejected:      f.rejected,
		Released:      f.released,
		Moves:         f.moves,
		Repaired:      f.repaired,
		RepairMoves:   f.repairMoves,
		ParkEvictions: f.parkEvicts,
		Preemptions:   f.preempts,
		SolverCalls:   f.solves.Load(),
	}
	// Sum in admission order so the gauge is deterministic (map iteration
	// order would reorder the float additions run to run).
	for _, id := range f.order {
		d := f.deps[id]
		s.ReservedFPS += d.ReservedFPS
		switch d.SLO.Class.Canon() {
		case ClassGuaranteed:
			s.GuaranteedActive++
		case ClassBestEffort:
			s.BestEffortActive++
		default:
			s.StandardActive++
		}
	}
	for v := 0; v < f.base.N(); v++ {
		u := f.residual.NodeLoad(model.NodeID(v))
		s.MeanNodeUtil += u
		if u > s.MaxNodeUtil {
			s.MaxNodeUtil = u
		}
	}
	if n := f.base.N(); n > 0 {
		s.MeanNodeUtil /= float64(n)
	}
	for l := 0; l < f.base.M(); l++ {
		u := f.residual.LinkLoad(l)
		s.MeanLinkUtil += u
		if u > s.MaxLinkUtil {
			s.MaxLinkUtil = u
		}
	}
	if m := f.base.M(); m > 0 {
		s.MeanLinkUtil /= float64(m)
	}
	return s
}

// Utilization returns the outstanding load fraction per node and per link
// (copies; indices match the base network's node and link IDs).
func (f *Fleet) Utilization() (node, link []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	node = make([]float64, f.base.N())
	for v := range node {
		node[v] = f.residual.NodeLoad(model.NodeID(v))
	}
	link = make([]float64, f.base.M())
	for l := range link {
		link[l] = f.residual.LinkLoad(l)
	}
	return node, link
}

// RebalanceOptions tunes a rebalance pass.
type RebalanceOptions struct {
	// MaxMoves caps applied migrations per pass; <= 0 selects
	// DefaultMaxMoves.
	MaxMoves int `json:"max_moves,omitempty"`
	// MinGain is the migration-cost guard: a re-solve is applied only when
	// its relative improvement (delay decrease or rate increase) is at
	// least this fraction; <= 0 selects DefaultMinGain.
	MinGain float64 `json:"min_gain,omitempty"`
	// Workers > 1 enables the concurrent proposal phase: candidate
	// re-solves run ahead of the application loop in chunks, each against
	// its own residual snapshot of the committed state at chunk time (the
	// candidate's reservation removed, everyone else's kept), then
	// proposals are applied sequentially in the usual latest-first order
	// with every guard re-validated against the live residual network.
	// Concurrency is capped at Workers (further bounded by the installed
	// engine pool — UsePool — or a transient pool). <= 1 keeps the fully
	// sequential pass, whose re-solves additionally observe every earlier
	// move of the same pass rather than only earlier chunks'.
	Workers int `json:"workers,omitempty"`
}

// Defaults for RebalanceOptions.
const (
	DefaultMaxMoves = 4
	DefaultMinGain  = 0.05
)

// Move reports one rebalance decision for a deployment.
type Move struct {
	ID string `json:"id"`
	// OldValue and NewValue are delays in ms (min-delay deployments) or
	// rates in fps (streaming deployments), both evaluated on the same
	// freed residual network: OldValue is the existing mapping re-scored
	// there, NewValue the re-solved one. An unchanged mapping therefore
	// gains exactly zero — freed capacity alone never counts as a
	// migration.
	OldValue float64 `json:"old_value"`
	NewValue float64 `json:"new_value"`
	// Gain is the relative improvement ((old-new)/old for delay,
	// (new-old)/old for rate).
	Gain float64 `json:"gain"`
	// Applied reports whether the migration was committed.
	Applied bool `json:"applied"`
	// Reason explains skipped moves.
	Reason string `json:"reason,omitempty"`
}

// Report summarizes one rebalance pass.
type Report struct {
	Considered int    `json:"considered"`
	Applied    int    `json:"applied"`
	Moves      []Move `json:"moves"`
	// MeanGain averages the relative improvement of applied moves.
	MeanGain float64 `json:"mean_gain"`
}

// proposal is one precomputed rebalance re-solve from the concurrent
// proposal phase.
type proposal struct {
	m   *model.Mapping
	err error
}

// proposeLocked concurrently re-solves the candidates ids[start:end], each
// against its own residual snapshot of the current committed state (the
// candidate's reservation removed, everyone else's kept), writing into
// out[start:end]. Concurrency is capped at width on top of the pool's own
// bound. Caller holds f.mu, which is exactly what makes the unlocked reads
// inside the workers safe: nothing can mutate deployments or reservations
// while the chunk solves. Per-goroutine snapshots and solver scratch make
// the chunk embarrassingly parallel.
func (f *Fleet) proposeLocked(ids []string, out []proposal, start, end, width int, pool *engine.Pool) {
	pool.ParallelForN(width, end-start, func(i int) {
		i += start
		d := f.deps[ids[i]]
		others := make([]model.Reservation, 0, len(f.order)-1)
		for _, oid := range f.order {
			if oid != ids[i] {
				others = append(others, f.deps[oid].reservation)
			}
		}
		// CloneEmpty keeps the churn capacity factors: a proposal solved
		// against a fresh NewResidualNetwork would see every down node at
		// full nominal power and re-propose it, making the parallel path
		// diverge from the sequential one on churned networks.
		rn := f.residual.CloneEmpty()
		if err := rn.SetLoad(others); err != nil {
			out[i] = proposal{err: err}
			return
		}
		req := Request{
			Tenant:    d.Tenant,
			Pipeline:  d.pipe,
			Src:       d.src,
			Dst:       d.dst,
			Objective: d.Objective,
			SLO:       d.SLO,
		}
		// Safe off the coordinating goroutine: each worker solves a distinct
		// deployment, so the warm states never alias.
		m, _, _, err := f.solveCounted(rn, req, d.cost, f.warmFor(d))
		out[i] = proposal{m: m, err: err}
	})
}

// Rebalance re-solves deployments against the capacity freed since they
// were admitted: each candidate's own reservation is removed, its objective
// re-solved on the resulting residual network, and the migration applied
// only when the relative improvement clears opt.MinGain (the migration-cost
// guard) and the new reservation fits. Deployments admitted latest are
// considered first — they were solved against the most contended network,
// so freed capacity helps them most.
//
// With opt.Workers > 1 the re-solves run concurrently in chunks ahead of
// the application loop (see RebalanceOptions.Workers); applications stay
// sequential and every guard — gain, SLO, reserved rate, fit — is evaluated
// against the live residual network at application time, so a stale
// proposal can be skipped but never corrupt capacity accounting.
func (f *Fleet) Rebalance(opt RebalanceOptions) Report {
	if opt.MaxMoves <= 0 {
		opt.MaxMoves = DefaultMaxMoves
	}
	if opt.MinGain <= 0 {
		opt.MinGain = DefaultMinGain
	}
	t0 := time.Now()
	defer rebalanceSeconds.ObserveSince(t0)
	f.mu.Lock()
	f.beginTxnLocked(wal.KindRebalance)
	rep := f.rebalanceLocked(opt)
	commit := f.endTxnLocked()
	f.mu.Unlock()
	commit()
	return rep
}

// rebalanceLocked is the rebalance pass body. Caller holds f.mu inside a
// WAL epoch.
func (f *Fleet) rebalanceLocked(opt RebalanceOptions) Report {
	// Higher SLO classes are considered first; within a class, deployments
	// admitted latest first — they were solved against the most contended
	// network, so freed capacity helps them most.
	ids := append([]string(nil), f.order...)
	sort.SliceStable(ids, func(i, j int) bool {
		di, dj := f.deps[ids[i]], f.deps[ids[j]]
		if ri, rj := di.SLO.Class.Rank(), dj.SLO.Class.Rank(); ri != rj {
			return ri > rj
		}
		return di.Seq > dj.Seq
	})

	// Parallel mode solves candidates ahead of the application loop in
	// chunks, so a pass that stops at MaxMoves applied migrations wastes at
	// most one chunk of speculative solves — and every Deploy/Release
	// blocked on f.mu waits for at most the current chunk, not all of ids.
	parallel := opt.Workers > 1 && len(ids) > 1
	var proposals []proposal
	var pool *engine.Pool
	proposed := 0
	chunk := 0
	if parallel {
		proposals = make([]proposal, len(ids))
		pool = f.pool
		if pool == nil {
			transient := engine.NewPool(opt.Workers)
			defer transient.Close()
			pool = transient
		}
		chunk = 2 * opt.Workers
		if chunk < opt.MaxMoves {
			chunk = opt.MaxMoves
		}
	}

	var rep Report
	for ci, id := range ids {
		if rep.Applied >= opt.MaxMoves {
			break
		}
		if parallel && ci >= proposed {
			end := ci + chunk
			if end > len(ids) {
				end = len(ids)
			}
			f.proposeLocked(ids, proposals, ci, end, opt.Workers, pool)
			proposed = end
		}
		d := f.deps[id]
		rep.Considered++

		// Free the candidate's own reservation for the scoring snapshot
		// (and, in the sequential pass, the re-solve).
		saved := d.reservation
		d.reservation = model.Reservation{
			NodeFrac: make([]float64, f.base.N()),
			LinkFrac: make([]float64, f.base.M()),
		}
		f.recomputeLocked()
		snap := f.residual.Snapshot()

		var m *model.Mapping
		var err error
		if parallel {
			m, err = proposals[ci].m, proposals[ci].err
		} else {
			req := Request{
				Tenant:    d.Tenant,
				Pipeline:  d.pipe,
				Src:       d.src,
				Dst:       d.dst,
				Objective: d.Objective,
				SLO:       d.SLO,
			}
			m, _, _, err = f.solveCounted(f.residual, req, d.cost, f.warmFor(d))
		}
		move := Move{ID: id}
		restore := func(reason string) {
			d.reservation = saved
			f.recomputeLocked()
			move.Applied = false
			move.Reason = reason
			rep.Moves = append(rep.Moves, move)
		}
		if err != nil {
			restore(fmt.Sprintf("re-solve failed: %v", err))
			continue
		}
		// Never migrate onto a down node: a zero-cost module (pinned
		// source/sink) reserves nothing there, so the capacity guards
		// alone would let a hostless mapping commit. Deploy and Repair
		// carry the same guard.
		downNode := -1
		for _, v := range m.Assign {
			if f.residual.NodeIsDown(v) {
				downNode = int(v)
				break
			}
		}
		if downNode >= 0 {
			restore(fmt.Sprintf("proposed mapping uses down node v%d", downNode))
			continue
		}
		// Score the proposed mapping on the live freed snapshot. In the
		// sequential pass this snapshot is the one the solve ran against;
		// in the parallel pass it additionally reflects moves applied
		// earlier in this pass, keeping the guards honest for stale
		// proposals.
		delay := model.TotalDelay(snap, d.pipe, m, d.cost)
		rate := model.FrameRate(model.SharedBottleneck(snap, d.pipe, m))
		// Baseline: the existing mapping re-scored on the same freed
		// snapshot, so gain measures better placement rather than the
		// freed capacity both mappings would enjoy.
		curM := model.NewMapping(d.Assignment)
		curDelay := model.TotalDelay(snap, d.pipe, curM, d.cost)
		curRate := model.FrameRate(model.SharedBottleneck(snap, d.pipe, curM))
		if d.Objective == model.MinDelay {
			move.OldValue, move.NewValue = curDelay, delay
			if curDelay > 0 && !math.IsInf(curDelay, 1) {
				move.Gain = (curDelay - delay) / curDelay
			}
		} else {
			move.OldValue, move.NewValue = curRate, rate
			if curRate > 0 {
				move.Gain = (rate - curRate) / curRate
			}
		}
		if move.Gain < opt.MinGain {
			restore("gain below migration-cost guard")
			continue
		}
		if d.SLO.MaxDelayMs > 0 && delay > d.SLO.MaxDelayMs {
			restore("migration would violate the delay SLO")
			continue
		}
		if rate < d.ReservedFPS {
			restore("re-solve cannot sustain reserved rate")
			continue
		}
		res, err := model.MappingReservation(f.base, d.pipe, m, d.ReservedFPS)
		if err != nil {
			restore(fmt.Sprintf("reservation: %v", err))
			continue
		}
		if !f.residual.Fits(res) {
			restore("new reservation does not fit")
			continue
		}
		// Commit the migration; the reserved rate is unchanged.
		d.Assignment = m.Assign
		d.Mapping = m.String()
		d.DelayMs = delay
		d.RateFPS = rate
		d.reservation = res
		f.recomputeLocked()
		f.moves++
		f.record(journal.Event{
			Kind:       journal.RebalanceMove,
			Deployment: id,
			Tenant:     d.Tenant,
			Detail:     fmt.Sprintf("gain %.4f (%.3f -> %.3f)", move.Gain, move.OldValue, move.NewValue),
			Mapping:    d.Mapping,
			DelayMs:    delay,
			RateFPS:    rate,
		})
		f.txnUpdate(d)
		move.Applied = true
		rep.Moves = append(rep.Moves, move)
		rep.Applied++
		rep.MeanGain += move.Gain
	}
	if rep.Applied > 0 {
		rep.MeanGain /= float64(rep.Applied)
	}
	rebalanceMovesTotal.Add(uint64(rep.Applied))
	return rep
}
