package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"strings"
	"sync"
	"testing"

	"elpc/internal/gen"
	"elpc/internal/model"
)

// testClusterSpec is a small two-cluster topology: 2x6 nodes, dense enough
// inside each cluster for placements, with a handful of boundary links.
func testClusterSpec() gen.ClusterSpec {
	return gen.ClusterSpec{Clusters: 2, Nodes: 6, Links: 16, InterLinks: 6}
}

func testClusteredFleet(t *testing.T, shards int, seed uint64) (*ShardedFleet, *model.Network, gen.ClusterSpec) {
	t.Helper()
	spec := testClusterSpec()
	net, err := gen.ClusteredNetwork(spec, gen.DefaultRanges(), gen.RNG(seed))
	if err != nil {
		t.Fatalf("clustered network: %v", err)
	}
	part, err := spec.ClusterPartition(net)
	if err != nil {
		t.Fatalf("cluster partition: %v", err)
	}
	if shards != spec.Clusters {
		p2, err := model.PartitionNetwork(net, shards)
		if err != nil {
			t.Fatalf("partition: %v", err)
		}
		part = p2
	}
	sf, err := NewShardedWithPartition(net, part)
	if err != nil {
		t.Fatalf("sharded fleet: %v", err)
	}
	return sf, net, spec
}

// randomRequest draws one deployment request over net with the shared test
// mix of objectives and SLOs.
func randomRequest(t *testing.T, net *model.Network, rng *rand.Rand, tag int) Request {
	t.Helper()
	pl, err := gen.Pipeline(3+rng.IntN(4), gen.DefaultRanges(), rng)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	src := model.NodeID(rng.IntN(net.N()))
	dst := model.NodeID(rng.IntN(net.N() - 1))
	if dst >= src {
		dst++
	}
	req := Request{Tenant: fmt.Sprintf("t%d", tag), Pipeline: pl, Src: src, Dst: dst}
	if tag%2 == 0 {
		req.Objective = model.MaxFrameRate
		req.SLO = SLO{MinRateFPS: 1 + 2*rng.Float64()}
	} else {
		req.Objective = model.MinDelay
	}
	return req
}

// TestShardedK1Equivalence replays a randomized deploy/release/churn/repair
// sequence against a plain Fleet and a one-shard ShardedFleet and requires
// byte-identical outcomes: same admissions and rejections (same error
// strings), same deployment JSON, same stats, same repair reports. K=1 is
// the sharding layer's correctness anchor — everything it adds must vanish
// at one shard.
func TestShardedK1Equivalence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rngA := gen.RNG(seed)
		net, err := gen.Network(12, 70, gen.DefaultRanges(), rngA)
		if err != nil {
			t.Fatalf("network: %v", err)
		}
		plain, err := New(net)
		if err != nil {
			t.Fatalf("fleet: %v", err)
		}
		sharded, err := NewSharded(net, 1)
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}

		reqRNG := gen.RNG(seed ^ 0xabcdef)
		var ids []string
		for i := 0; i < 24; i++ {
			req := randomRequest(t, net, reqRNG, i)
			d1, err1 := plain.Deploy(req)
			d2, err2 := sharded.Deploy(req)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d req %d: plain err=%v sharded err=%v", seed, i, err1, err2)
			}
			if err1 != nil {
				if err1.Error() != err2.Error() {
					t.Fatalf("seed %d req %d: error mismatch:\n  plain:   %v\n  sharded: %v", seed, i, err1, err2)
				}
				continue
			}
			b1, _ := json.Marshal(d1)
			b2, _ := json.Marshal(d2)
			if string(b1) != string(b2) {
				t.Fatalf("seed %d req %d: deployment mismatch:\n  plain:   %s\n  sharded: %s", seed, i, b1, b2)
			}
			ids = append(ids, d1.ID)
			// Release roughly a third of admissions as we go.
			if reqRNG.IntN(3) == 0 && len(ids) > 0 {
				victim := ids[reqRNG.IntN(len(ids))]
				e1 := plain.Release(victim)
				e2 := sharded.Release(victim)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("seed %d release %q: plain err=%v sharded err=%v", seed, victim, e1, e2)
				}
			}
		}

		// Churn one node and one link, then run the repair frontier on both.
		events := []model.ChurnEvent{
			{Kind: model.NodeDown, Node: model.NodeID(reqRNG.IntN(net.N()))},
			{Kind: model.LinkDegrade, Link: reqRNG.IntN(net.M()), Factor: 0.3},
		}
		if err1, err2 := plain.ApplyChurn(events), sharded.ApplyChurn(events); (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d churn: plain err=%v sharded err=%v", seed, err1, err2)
		}
		a1, a2 := plain.Affected(events), sharded.Affected(events)
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("seed %d affected mismatch: %v vs %v", seed, a1, a2)
		}
		r1 := plain.Repair(a1, RepairOptions{})
		r2 := sharded.Repair(a2, RepairOptions{})
		j1, _ := json.Marshal(r1)
		j2, _ := json.Marshal(r2)
		if string(j1) != string(j2) {
			t.Fatalf("seed %d repair mismatch:\n  plain:   %s\n  sharded: %s", seed, j1, j2)
		}

		reb1 := plain.Rebalance(RebalanceOptions{})
		reb2 := sharded.Rebalance(RebalanceOptions{})
		jb1, _ := json.Marshal(reb1)
		jb2, _ := json.Marshal(reb2)
		if string(jb1) != string(jb2) {
			t.Fatalf("seed %d rebalance mismatch:\n  plain:   %s\n  sharded: %s", seed, jb1, jb2)
		}

		l1, _ := json.Marshal(plain.List())
		l2, _ := json.Marshal(sharded.List())
		if string(l1) != string(l2) {
			t.Fatalf("seed %d list mismatch:\n  plain:   %s\n  sharded: %s", seed, l1, l2)
		}
		if s1, s2 := plain.Stats(), sharded.Stats(); !reflect.DeepEqual(s1, s2) {
			t.Fatalf("seed %d stats mismatch:\n  plain:   %+v\n  sharded: %+v", seed, s1, s2)
		}
	}
}

// TestShardedRouting checks placement-affinity routing on a two-cluster
// fleet: intra-cluster deployments land on their shard (s<k>- IDs) without
// ever touching the other region's elements, and cross-cluster deployments
// go through the coordinator (x- IDs) and may reserve boundary links.
func TestShardedRouting(t *testing.T) {
	sf, _, spec := testClusteredFleet(t, 2, 7)
	rng := gen.RNG(99)

	deployIn := func(cluster int) Deployment {
		t.Helper()
		for try := 0; try < 20; try++ {
			pl, err := gen.Pipeline(3, gen.DefaultRanges(), rng)
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			src := model.NodeID(cluster*spec.Nodes + rng.IntN(spec.Nodes))
			dst := model.NodeID(cluster*spec.Nodes + rng.IntN(spec.Nodes))
			if src == dst {
				continue
			}
			d, err := sf.Deploy(Request{Pipeline: pl, Src: src, Dst: dst, Objective: model.MinDelay})
			if err == nil {
				return d
			}
		}
		t.Fatalf("no intra-cluster deployment admitted in cluster %d", cluster)
		return Deployment{}
	}

	d0 := deployIn(0)
	if !strings.HasPrefix(d0.ID, "s0-") {
		t.Fatalf("cluster-0 deployment got ID %q, want s0- prefix", d0.ID)
	}
	d1 := deployIn(1)
	if !strings.HasPrefix(d1.ID, "s1-") {
		t.Fatalf("cluster-1 deployment got ID %q, want s1- prefix", d1.ID)
	}
	for _, d := range []Deployment{d0, d1} {
		home := sf.Partition().Region(d.Assignment[0])
		for _, v := range d.Assignment {
			if sf.Partition().Region(v) != home {
				t.Fatalf("intra-cluster deployment %s crosses regions: %v", d.ID, d.Assignment)
			}
		}
	}

	// Cross-cluster endpoints force the coordinator path.
	var dx Deployment
	admitted := false
	for try := 0; try < 20 && !admitted; try++ {
		pl, err := gen.Pipeline(3, gen.DefaultRanges(), rng)
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		src := model.NodeID(rng.IntN(spec.Nodes))
		dst := model.NodeID(spec.Nodes + rng.IntN(spec.Nodes))
		dx, err = sf.Deploy(Request{Pipeline: pl, Src: src, Dst: dst, Objective: model.MinDelay})
		admitted = err == nil
	}
	if !admitted {
		t.Fatalf("no cross-cluster deployment admitted")
	}
	if !strings.HasPrefix(dx.ID, "x-") {
		t.Fatalf("cross-cluster deployment got ID %q, want x- prefix", dx.ID)
	}

	// Describe and Release route by ID namespace.
	for _, id := range []string{d0.ID, d1.ID, dx.ID} {
		if _, ok := sf.Describe(id); !ok {
			t.Fatalf("Describe(%q) not found", id)
		}
	}
	if got := len(sf.List()); got != 3 {
		t.Fatalf("List has %d deployments, want 3", got)
	}
	st := sf.Stats()
	if st.Deployments != 3 {
		t.Fatalf("Stats.Deployments = %d, want 3", st.Deployments)
	}
	for _, id := range []string{d0.ID, d1.ID, dx.ID} {
		if err := sf.Release(id); err != nil {
			t.Fatalf("Release(%q): %v", id, err)
		}
	}
	if err := sf.Release(dx.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double release: got %v, want ErrNotFound", err)
	}

	// With everything released, the composed view must be exactly empty.
	node, link := sf.Utilization()
	for v, u := range node {
		if u != 0 {
			t.Fatalf("node %d load %v after releasing everything", v, u)
		}
	}
	for l, u := range link {
		if u != 0 {
			t.Fatalf("link %d load %v after releasing everything", l, u)
		}
	}
}

// TestShardedFallback forces a regional rejection that the coordinator can
// satisfy: a no-reuse (max-frame-rate) pipeline longer than its home region
// has nodes must fall back to a global placement spanning the boundary.
func TestShardedFallback(t *testing.T) {
	sf, _, spec := testClusteredFleet(t, 2, 11)
	rng := gen.RNG(5)
	admitted := false
	var d Deployment
	for try := 0; try < 30 && !admitted; try++ {
		pl, err := gen.Pipeline(spec.Nodes+2, gen.DefaultRanges(), rng)
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		src := model.NodeID(rng.IntN(spec.Nodes))
		dst := model.NodeID(rng.IntN(spec.Nodes - 1))
		if dst >= src {
			dst++
		}
		d, err = sf.Deploy(Request{Pipeline: pl, Src: src, Dst: dst, Objective: model.MaxFrameRate})
		admitted = err == nil
	}
	if !admitted {
		t.Skip("no over-long pipeline admitted even globally on this topology")
	}
	if !strings.HasPrefix(d.ID, "x-") {
		t.Fatalf("fallback deployment got ID %q, want coordinator x- prefix", d.ID)
	}
	ss := sf.ShardStats()
	if ss.Coordinator.Fallbacks == 0 {
		t.Fatalf("coordinator fallbacks = 0, want > 0")
	}
	// The request-level stats must not double-count the regional rejection.
	st := sf.Stats()
	if st.Admitted != 1 {
		t.Fatalf("Stats.Admitted = %d, want 1", st.Admitted)
	}
	if st.Rejected != ss.Coordinator.Rejected {
		t.Fatalf("Stats.Rejected = %d, want coordinator rejections only (%d)", st.Rejected, ss.Coordinator.Rejected)
	}
}

// TestShardedReservationInvariant hammers a four-shard fleet with
// concurrent intra- and cross-region deploys and releases (run under -race)
// and then verifies the cross-shard accounting invariants: the composed
// load equals the recomputed sum of live reservations, boundary-link load
// comes only from coordinator deployments, and releasing everything
// restores the composed view to exactly zero.
func TestShardedReservationInvariant(t *testing.T) {
	spec := gen.ClusterSpec{Clusters: 4, Nodes: 6, Links: 16, InterLinks: 10}
	net, err := gen.ClusteredNetwork(spec, gen.DefaultRanges(), gen.RNG(3))
	if err != nil {
		t.Fatalf("clustered network: %v", err)
	}
	part, err := spec.ClusterPartition(net)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	sf, err := NewShardedWithPartition(net, part)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}

	type admission struct {
		id   string
		pipe *model.Pipeline
	}
	var mu sync.Mutex
	var live []admission
	pipes := make(map[string]*model.Pipeline)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := gen.RNG(uint64(100 + w))
			for i := 0; i < 15; i++ {
				pl, err := gen.Pipeline(3+rng.IntN(3), gen.DefaultRanges(), rng)
				if err != nil {
					t.Errorf("pipeline: %v", err)
					return
				}
				home := rng.IntN(spec.Clusters)
				src := model.NodeID(home*spec.Nodes + rng.IntN(spec.Nodes))
				var dst model.NodeID
				if rng.IntN(4) == 0 { // every fourth request crosses regions
					other := (home + 1 + rng.IntN(spec.Clusters-1)) % spec.Clusters
					dst = model.NodeID(other*spec.Nodes + rng.IntN(spec.Nodes))
				} else {
					d := rng.IntN(spec.Nodes - 1)
					if model.NodeID(home*spec.Nodes+d) >= src {
						d++
					}
					dst = model.NodeID(home*spec.Nodes + d)
				}
				req := Request{Tenant: fmt.Sprintf("w%d-%d", w, i), Pipeline: pl, Src: src, Dst: dst, Objective: model.MaxFrameRate, SLO: SLO{MinRateFPS: 1}}
				d, err := sf.Deploy(req)
				if err != nil {
					if !errors.Is(err, ErrRejected) {
						t.Errorf("deploy: %v", err)
					}
					continue
				}
				mu.Lock()
				live = append(live, admission{id: d.ID, pipe: pl})
				pipes[d.ID] = pl
				// Release an earlier admission now and then.
				var victim string
				if len(live) > 4 && rng.IntN(3) == 0 {
					k := rng.IntN(len(live))
					victim = live[k].id
					live = append(live[:k], live[k+1:]...)
				}
				mu.Unlock()
				if victim != "" {
					if err := sf.Release(victim); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("release %s: %v", victim, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Invariant 1: composed load equals the recomputed sum of the live
	// deployments' reservations (tolerance for summation order).
	wantNode := make([]float64, net.N())
	wantLink := make([]float64, net.M())
	for _, d := range sf.List() {
		res, err := model.MappingReservation(net, pipes[d.ID], model.NewMapping(d.Assignment), d.ReservedFPS)
		if err != nil {
			t.Fatalf("reservation of %s: %v", d.ID, err)
		}
		for i, f := range res.NodeFrac {
			wantNode[i] += f
		}
		for i, f := range res.LinkFrac {
			wantLink[i] += f
		}
	}
	gotNode, gotLink := sf.Utilization()
	const tol = 1e-9
	for v := range wantNode {
		if math.Abs(gotNode[v]-wantNode[v]) > tol {
			t.Fatalf("node %d load %v, want %v", v, gotNode[v], wantNode[v])
		}
	}
	for l := range wantLink {
		if math.Abs(gotLink[l]-wantLink[l]) > tol {
			t.Fatalf("link %d load %v, want %v", l, gotLink[l], wantLink[l])
		}
	}

	// Invariant 2: boundary links carry load only from coordinator-owned
	// deployments.
	crossLink := make([]float64, net.M())
	for _, d := range sf.List() {
		if !strings.HasPrefix(d.ID, "x-") {
			continue
		}
		res, err := model.MappingReservation(net, pipes[d.ID], model.NewMapping(d.Assignment), d.ReservedFPS)
		if err != nil {
			t.Fatalf("reservation of %s: %v", d.ID, err)
		}
		for i, f := range res.LinkFrac {
			crossLink[i] += f
		}
	}
	for _, l := range sf.Partition().Boundary {
		if math.Abs(gotLink[l]-crossLink[l]) > tol {
			t.Fatalf("boundary link %d load %v, want cross-only %v", l, gotLink[l], crossLink[l])
		}
	}

	// Invariant 3: releasing everything restores exact zero (recompute from
	// the empty outstanding set, no floating-point residue).
	for _, d := range sf.List() {
		if err := sf.Release(d.ID); err != nil {
			t.Fatalf("release %s: %v", d.ID, err)
		}
	}
	gotNode, gotLink = sf.Utilization()
	for v, u := range gotNode {
		if u != 0 {
			t.Fatalf("node %d load %v after releasing everything, want exact 0", v, u)
		}
	}
	for l, u := range gotLink {
		if u != 0 {
			t.Fatalf("link %d load %v after releasing everything, want exact 0", l, u)
		}
	}
}

// TestShardedChurnRouting checks that churn stays regional: an event inside
// one region only affects (and only repairs) that region's deployments,
// costing solves proportional to the broken set alone, and that boundary
// and unknown-target events behave like the unsharded fleet's.
func TestShardedChurnRouting(t *testing.T) {
	sf, net, spec := testClusteredFleet(t, 2, 13)
	rng := gen.RNG(17)

	// Populate both clusters.
	perCluster := make([][]string, spec.Clusters)
	for c := 0; c < spec.Clusters; c++ {
		for i := 0; i < 6; i++ {
			pl, err := gen.Pipeline(3, gen.DefaultRanges(), rng)
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			src := model.NodeID(c*spec.Nodes + rng.IntN(spec.Nodes))
			dst := model.NodeID(c*spec.Nodes + rng.IntN(spec.Nodes))
			if src == dst {
				continue
			}
			d, err := sf.Deploy(Request{Pipeline: pl, Src: src, Dst: dst, Objective: model.MinDelay})
			if err != nil {
				continue
			}
			perCluster[c] = append(perCluster[c], d.ID)
		}
	}
	if len(perCluster[0]) == 0 || len(perCluster[1]) == 0 {
		t.Fatalf("need deployments in both clusters, got %d/%d", len(perCluster[0]), len(perCluster[1]))
	}

	// Fail a node used by some cluster-0 deployment.
	target := model.NodeID(0)
	for _, id := range perCluster[0] {
		d, _ := sf.Describe(id)
		if len(d.Assignment) > 1 {
			target = d.Assignment[1]
			break
		}
	}
	events := []model.ChurnEvent{{Kind: model.NodeDown, Node: target}}
	if err := sf.ApplyChurn(events); err != nil {
		t.Fatalf("apply churn: %v", err)
	}
	affected := sf.Affected(events)
	for _, id := range affected {
		if strings.HasPrefix(id, "s1-") {
			t.Fatalf("cluster-1 deployment %s affected by a cluster-0 node failure", id)
		}
	}

	pre := sf.SolveCount()
	rep := sf.Repair(affected, RepairOptions{})
	if got := sf.SolveCount() - pre; got != uint64(rep.Resolved) {
		t.Fatalf("repair cost %d solves for %d broken deployments; repair must stay incremental", got, rep.Resolved)
	}
	if rep.Checked != len(affected) {
		t.Fatalf("repair checked %d, want %d", rep.Checked, len(affected))
	}

	// Unknown targets and conflicting events keep the unsharded semantics.
	if err := sf.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeDown, Node: model.NodeID(net.N() + 5)}}); !errors.Is(err, model.ErrUnknownTarget) {
		t.Fatalf("unknown node: got %v, want ErrUnknownTarget", err)
	}
	if err := sf.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeDown, Node: target}}); !errors.Is(err, model.ErrChurnConflict) {
		t.Fatalf("double down: got %v, want ErrChurnConflict", err)
	}
	// A failed batch must change nothing anywhere: re-down a cluster-1 node
	// together with the conflicting event, then verify the node is still up.
	probe := model.NodeID(spec.Nodes) // first node of cluster 1
	err := sf.ApplyChurn([]model.ChurnEvent{
		{Kind: model.NodeDown, Node: probe},
		{Kind: model.NodeDown, Node: target}, // conflicts: already down
	})
	if !errors.Is(err, model.ErrChurnConflict) {
		t.Fatalf("mixed batch: got %v, want ErrChurnConflict", err)
	}
	if err := sf.ApplyChurn([]model.ChurnEvent{{Kind: model.NodeDown, Node: probe}}); err != nil {
		t.Fatalf("probe node should still be up after the aborted batch: %v", err)
	}

	// Boundary-link events route to the coordinator and stay appliable.
	if len(sf.Partition().Boundary) == 0 {
		t.Fatalf("two-cluster partition has no boundary links")
	}
	bl := sf.Partition().Boundary[0]
	if err := sf.ApplyChurn([]model.ChurnEvent{{Kind: model.LinkDegrade, Link: bl, Factor: 0.4}}); err != nil {
		t.Fatalf("boundary degrade: %v", err)
	}
	if err := sf.ApplyChurn([]model.ChurnEvent{{Kind: model.LinkRestore, Link: bl}}); err != nil {
		t.Fatalf("boundary restore: %v", err)
	}
}
