package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	err := ForEach(100, 8, func(i int) error {
		count.Add(1)
		if seen[i].Swap(true) {
			return fmt.Errorf("index %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("index %d never ran", i)
		}
	}
}

func TestForEachEmptyAndDegenerate(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Error("n=0 should be a no-op")
	}
	if err := ForEach(-3, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Error("negative n should be a no-op")
	}
	// workers <= 0 defaults to GOMAXPROCS; workers > n is clamped.
	if err := ForEach(3, 0, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
	if err := ForEach(2, 50, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	err := ForEach(20, 4, func(i int) error {
		if i == 7 || i == 13 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 7") {
		t.Errorf("err = %v, want task 7's error", err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(10, 4, func(i int) error {
		if i == 3 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want panic report", err)
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	out, err := Map(50, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	_, err := Map(10, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Error("expected error")
	}
}

func TestForEachSequentialWhenOneWorker(t *testing.T) {
	order := make([]int, 0, 10)
	err := ForEach(10, 1, func(i int) error {
		order = append(order, i) // safe: single worker
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}
