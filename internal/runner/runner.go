// Package runner provides the small parallel-execution utility used by the
// experiment harness: a bounded worker pool mapping a function over an index
// range with deterministic result placement, error collection, and panic
// capture. The DP kernels and the DES stay single-goroutine (deterministic);
// parallelism lives at the granularity of independent experiment cases.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). It waits for all invocations
// to finish and returns the error of the lowest-indexed failing invocation,
// if any. A panic inside fn is recovered and reported as an error rather
// than tearing down the process.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn over [0, n) in parallel and collects the results in order.
// Semantics otherwise match ForEach.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
