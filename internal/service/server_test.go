package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"elpc/internal/core"
	"elpc/internal/model"
	"elpc/internal/sim"
)

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func wireFor(p *model.Problem) wireRequest {
	return wireRequest{Network: p.Net, Pipeline: p.Pipe, Src: p.Src, Dst: p.Dst}
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp
}

func TestServerMinDelayEndToEnd(t *testing.T) {
	p := buildSuiteProblem(t, 0)
	want, err := core.MinDelay(p)
	if err != nil {
		t.Fatal(err)
	}
	wantDelay := model.TotalDelay(p.Net, p.Pipe, want, p.Cost)

	_, ts := newTestServer(t, Options{})
	var res Result
	resp := postJSON(t, ts.URL+"/v1/mindelay", wireFor(p), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if math.Abs(res.DelayMs-wantDelay) > 1e-9 {
		t.Errorf("server delay %.6f != direct MinDelay %.6f", res.DelayMs, wantDelay)
	}
	if res.Cached {
		t.Error("first request reported cached")
	}

	// The identical request is served from the cache.
	var res2 Result
	postJSON(t, ts.URL+"/v1/mindelay", wireFor(p), &res2)
	if !res2.Cached || res2.DelayMs != res.DelayMs {
		t.Errorf("second request: cached=%v delay=%v, want cache hit with same delay", res2.Cached, res2.DelayMs)
	}

	var st statsResponse
	resp, err2 := http.Get(ts.URL + "/v1/stats")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Solver.Cache.Hits != 1 || st.Solver.Cache.Misses != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss", st.Solver.Cache)
	}
}

func TestServerMaxFrameRateEndToEnd(t *testing.T) {
	p := buildSuiteProblem(t, 0)
	want, err := core.MaxFrameRate(p)
	if err != nil {
		t.Fatal(err)
	}
	wantRate := model.FrameRate(model.Bottleneck(p.Net, p.Pipe, want))

	_, ts := newTestServer(t, Options{})
	var res Result
	resp := postJSON(t, ts.URL+"/v1/maxframerate", wireFor(p), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if math.Abs(res.RateFPS-wantRate) > 1e-9 {
		t.Errorf("server rate %.6f != direct MaxFrameRate %.6f", res.RateFPS, wantRate)
	}

	// Budgeted request reaches the bicriteria DP and caches separately.
	budgeted := wireFor(p)
	budgeted.DelayBudgetMs = res.DelayMs * 2
	var res2 Result
	postJSON(t, ts.URL+"/v1/maxframerate", budgeted, &res2)
	if res2.Cached {
		t.Error("budgeted request hit the unbudgeted entry")
	}
}

func TestServerFront(t *testing.T) {
	p := buildSuiteProblem(t, 0)
	_, ts := newTestServer(t, Options{})
	wire := wireFor(p)
	wire.Points = 5
	var res Result
	resp := postJSON(t, ts.URL+"/v1/front", wire, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Op != OpFront || len(res.Front) == 0 {
		t.Fatalf("bad front result: %+v", res)
	}
}

func TestServerSimulate(t *testing.T) {
	p := buildSuiteProblem(t, 0)
	_, ts := newTestServer(t, Options{})
	wire := wireFor(p)
	wire.Frames = 50
	var res simResponse
	resp := postJSON(t, ts.URL+"/v1/simulate", wire, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Plan == nil || res.Plan.Op != OpMaxFrameRate {
		t.Fatalf("missing plan in %+v", res)
	}
	predicted := sim.PredictDelay(p, model.NewMapping(res.Plan.Assignment))
	if math.Abs(res.FirstFrameDelay-predicted) > 1e-6 {
		t.Errorf("first frame delay %.6f != Eq.1 prediction %.6f", res.FirstFrameDelay, predicted)
	}
	if res.MeasuredRateFPS <= 0 || res.Events == 0 {
		t.Errorf("degenerate simulation: %+v", res)
	}
}

func TestServerBatch(t *testing.T) {
	p := buildSuiteProblem(t, 0)
	delayReq := wireFor(p)
	delayReq.Op = OpMinDelay
	rateReq := wireFor(p)
	rateReq.Op = OpMaxFrameRate
	bad := wireRequest{Op: OpMinDelay} // missing network/pipeline

	_, ts := newTestServer(t, Options{Workers: 2})
	var out struct {
		Results []batchItemWire `json:"results"`
	}
	resp := postJSON(t, ts.URL+"/v1/batch", batchWire{Requests: []wireRequest{delayReq, rateReq, bad, delayReq}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Errorf("valid items errored: %+v", out.Results)
	}
	if out.Results[2].Error == "" {
		t.Error("invalid item succeeded")
	}
	// Exactly one of the two identical requests does the DP work; the other
	// is served from the cache or coalesced onto the in-flight solve.
	first, dup := out.Results[0].Result, out.Results[3].Result
	if dup == nil || first == nil {
		t.Fatalf("missing results: %+v", out.Results)
	}
	if first.Cached == dup.Cached {
		t.Errorf("identical requests both cached=%v, want one leader and one follower", first.Cached)
	}
	if first.DelayMs != dup.DelayMs {
		t.Errorf("identical requests disagree: %v vs %v", first.DelayMs, dup.DelayMs)
	}
	if out.Results[0].Result.Op != OpMinDelay || out.Results[1].Result.Op != OpMaxFrameRate {
		t.Errorf("ops mixed up: %+v", out.Results)
	}
}

func TestServerBatchLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	reqs := make([]wireRequest, MaxBatchRequests+1)
	resp := postJSON(t, ts.URL+"/v1/batch", batchWire{Requests: reqs}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

func TestServerErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/mindelay", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	// Infeasible problem: pipeline longer than any simple path, no reuse.
	nodes := []model.Node{{ID: 0, Power: 100}, {ID: 1, Power: 100}}
	links := []model.Link{{ID: 0, From: 0, To: 1, BWMbps: 10}}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := model.NewPipeline([]model.Module{
		{ID: 0, InBytes: 10, OutBytes: 10},
		{ID: 1, Complexity: 1, InBytes: 10, OutBytes: 10},
		{ID: 2, Complexity: 1, InBytes: 10, OutBytes: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	infeasible := wireRequest{Network: net, Pipeline: pipe, Src: 0, Dst: 1}
	resp2 := postJSON(t, ts.URL+"/v1/maxframerate", infeasible, nil)
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible: status %d, want 422", resp2.StatusCode)
	}

	// Wrong method.
	resp3, err := http.Get(ts.URL + "/v1/mindelay")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on planning endpoint: status %d, want 405", resp3.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestServerSharedSolverServesEmbeddersAndHTTP(t *testing.T) {
	p := buildSuiteProblem(t, 1)
	srv, ts := newTestServer(t, Options{})
	// Warm the cache in-process...
	if _, err := srv.Solver().Solve(context.Background(), Request{Op: OpMinDelay, Problem: p}); err != nil {
		t.Fatal(err)
	}
	// ...and observe the hit over HTTP.
	var res Result
	postJSON(t, ts.URL+"/v1/mindelay", wireFor(p), &res)
	if !res.Cached {
		t.Error("HTTP request missed a cache warmed in-process")
	}
}

func ExampleServer() {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	fmt.Println(resp.StatusCode)
	// Output: 200
}
