package service

import (
	"context"
	"fmt"
	"testing"
)

// benchCase indexes Suite20: case 10 (30 modules, 80 nodes, 2500 links) is
// large enough that the DP work dwarfs the hash+lookup cost of a cache hit.
const benchCase = 10

// benchOp is the benchmarked planning call: the Pareto sweep is the
// service's most expensive endpoint (one budgeted bicriteria DP per sweep
// point), i.e. the workload the cache pays for most.
const benchOp = OpFront

// BenchmarkSolverCacheHit measures a repeated Suite20 planning call served
// from the solution cache: canonical hash + shard lookup, no DP work. The
// cost is linear in problem size (the hash must read the problem) and
// independent of how hard the problem is to solve.
func BenchmarkSolverCacheHit(b *testing.B) {
	p := buildSuiteProblem(b, benchCase)
	s := NewSolver(Options{})
	if _, err := s.Solve(context.Background(), Request{Op: benchOp, Problem: p}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(context.Background(), Request{Op: benchOp, Problem: p})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkSolverColdSolve measures the same planning call with the cache
// disabled: the full Pareto sweep every iteration. The gap between this and
// BenchmarkSolverCacheHit is what the cache buys repeated requests.
func BenchmarkSolverColdSolve(b *testing.B) {
	p := buildSuiteProblem(b, benchCase)
	s := NewSolver(Options{CacheCapacity: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(context.Background(), Request{Op: benchOp, Problem: p})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cached {
			b.Fatal("unexpected cache hit with caching disabled")
		}
	}
}

// BenchmarkBatchSolve measures a /v1/batch-shaped fan-out of cold solves
// across the shared engine pool: distinct mid-size Suite20 problems, both
// objectives, cache disabled so every iteration pays the full DP cost. The
// workers=1 sub-benchmark is the sequential baseline; higher widths show
// the batch-level scaling the engine buys.
func BenchmarkBatchSolve(b *testing.B) {
	var reqs []Request
	for _, c := range []int{6, 7, 8, 9} {
		p := buildSuiteProblem(b, c)
		reqs = append(reqs,
			Request{Op: OpMinDelay, Problem: p},
			Request{Op: OpMaxFrameRate, Problem: p},
		)
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := NewSolver(Options{Workers: w, CacheCapacity: -1})
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, item := range s.SolveBatch(context.Background(), reqs) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
		})
	}
}

// BenchmarkSolverCacheHitParallel exercises the sharded cache under
// GOMAXPROCS concurrent readers.
func BenchmarkSolverCacheHitParallel(b *testing.B) {
	p := buildSuiteProblem(b, benchCase)
	s := NewSolver(Options{})
	if _, err := s.Solve(context.Background(), Request{Op: benchOp, Problem: p}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Solve(context.Background(), Request{Op: benchOp, Problem: p}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
