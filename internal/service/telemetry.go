package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"elpc/internal/telemetry"
)

// This file is elpcd's observability surface: the HTTP middleware that
// records per-endpoint latency histograms, status-class counters, and
// request traces; the GET /metrics and GET /v1/traces handlers; the opt-in
// pprof mount; and the scrape-time gauges that read live solver and fleet
// state. The metrics themselves live in the process-global
// telemetry.Default() registry, which the instrumented leaf packages
// (core, fleet, churn) also record into.

// Per-operation solver latency histograms (cold solves only; cache hits are
// counted by the cache series). Package-level so the hot path pays one map
// lookup at init, not per request.
var (
	solveSecondsByOp = map[Op]*telemetry.Histogram{
		OpMinDelay: telemetry.Default().Histogram(
			`elpc_solve_seconds{op="mindelay"}`,
			"cold-solve latency by operation, queue wait excluded (seconds)", nil),
		OpMaxFrameRate: telemetry.Default().Histogram(
			`elpc_solve_seconds{op="maxframerate"}`, "", nil),
		OpFront: telemetry.Default().Histogram(
			`elpc_solve_seconds{op="front"}`, "", nil),
	}
	poolWaitSeconds = telemetry.Default().Histogram(
		"elpc_solver_pool_wait_seconds",
		"time cold solves spent waiting for a worker slot (seconds)", nil)

	// Admission intake counters: requests that entered the bounded intake
	// queue ahead of the fleet lock, and best-effort requests shed at it.
	// (The companion elpc_admission_preempted_total lives in internal/fleet,
	// where preemption happens; the registry is process-global, so all three
	// families scrape together.)
	admissionQueuedTotal = telemetry.Default().Counter(
		"elpc_admission_queued_total",
		"deploy requests admitted to the intake queue")
	admissionShedTotal = telemetry.Default().Counter(
		"elpc_admission_shed_total",
		"best-effort deploy requests shed at the intake queue (429)")
)

// statusClass buckets an HTTP status code into its Prometheus label ("2xx",
// "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// withTelemetry is the outermost HTTP middleware: it starts a trace whose
// root span is renamed to the matched route pattern after the handler
// returns, records the per-endpoint latency histogram and status-class
// counter, and emits the structured slow-request log when the configured
// threshold is exceeded.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	reg := telemetry.Default()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := s.tracer.Start(r.Method + " " + r.URL.Path)
		// ServeMux stamps the matched pattern on the request it serves, so
		// route attribution reads r2 (the context-carrying copy), not r.
		r2 := r.WithContext(telemetry.ContextWithSpan(r.Context(), trace.Root()))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r2)
		elapsed := time.Since(start)

		route := r2.Pattern
		if route == "" {
			route = "unmatched"
		}
		trace.Root().Rename(route)
		trace.Root().Annotate(fmt.Sprintf("status=%d", rec.status))
		trace.Finish()

		reg.Histogram(fmt.Sprintf(`elpc_http_request_seconds{route=%q}`, route),
			"request latency by matched route (seconds)", nil).Observe(elapsed.Seconds())
		reg.Counter(fmt.Sprintf(`elpc_http_requests_total{route=%q,code=%q}`, route, statusClass(rec.status)),
			"requests by matched route and status class").Inc()

		if thr := s.slowRequest; thr > 0 && elapsed >= thr {
			slog.Warn("slow request",
				"route", route,
				"status", rec.status,
				"duration_ms", float64(elapsed)/float64(time.Millisecond),
				"remote", r.RemoteAddr)
		}
	})
}

// handleMetrics serves the registry in the Prometheus text exposition
// format: GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Default().WritePrometheus(w) // response committed; nothing to do
}

// tracesResponse is the GET /v1/traces payload.
type tracesResponse struct {
	// Capacity is the slowest-traces ring size; Started counts traces begun
	// since boot (one per request).
	Capacity int    `json:"capacity"`
	Started  uint64 `json:"started"`
	// Traces lists the retained slowest traces, slowest first.
	Traces []telemetry.TraceRecord `json:"traces"`
}

// handleTraces dumps the slowest retained request traces: GET /v1/traces.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{
		Capacity: s.tracer.Capacity(),
		Started:  s.tracer.Started(),
		Traces:   s.tracer.Slowest(),
	})
}

// mountPprof exposes net/http/pprof on the server's own mux (the package's
// DefaultServeMux registrations are never served). Opt-in via
// Options.EnablePprof / elpcd's -pprof flag: profiling endpoints expose
// internals and cost CPU when scraped, so production deployments enable
// them deliberately.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// registerGauges wires the scrape-time callbacks that read this server's
// live state. Re-registering replaces the previous server's callbacks (the
// registry is process-global and tests build many servers), so a scrape
// always reads the most recently built instance.
func (s *Server) registerGauges() {
	reg := telemetry.Default()
	reg.GaugeFunc("elpc_uptime_seconds", "seconds since the server was built",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("elpc_solver_workers", "worker-slot pool size",
		func() float64 { return float64(s.solver.opt.Workers) })
	reg.GaugeFunc("elpc_solver_in_flight", "solves currently holding a worker slot",
		func() float64 { return float64(s.solver.inFlight.Load()) })
	reg.GaugeFunc("elpc_solver_queue_depth", "requests waiting for a worker slot",
		func() float64 { return float64(s.solver.queueDepth.Load()) })
	reg.CounterFunc("elpc_solver_cold_solves_total", "solves that went to the DP",
		func() float64 { return float64(s.solver.coldSolves.Load()) })
	reg.CounterFunc("elpc_solver_coalesced_total", "requests served by joining an identical in-progress solve",
		func() float64 { return float64(s.solver.coalesced.Load()) })
	reg.CounterFunc("elpc_solver_timeouts_total", "requests abandoned on context deadline or cancellation",
		func() float64 { return float64(s.solver.timeouts.Load()) })
	reg.CounterFunc("elpc_cache_hits_total", "solution-cache hits",
		func() float64 { return float64(s.solver.cache.stats().Hits) })
	reg.CounterFunc("elpc_cache_misses_total", "solution-cache misses",
		func() float64 { return float64(s.solver.cache.stats().Misses) })
	reg.CounterFunc("elpc_cache_evictions_total", "solution-cache LRU evictions",
		func() float64 { return float64(s.solver.cache.stats().Evictions) })
	reg.GaugeFunc("elpc_cache_entries", "solutions resident in the cache",
		func() float64 { return float64(s.solver.cache.stats().Entries) })
	reg.GaugeFunc("elpc_cache_capacity", "solution-cache capacity",
		func() float64 { return float64(s.solver.opt.CacheCapacity) })

	// Fleet and churn gauges read whatever manager is currently installed
	// (zero before the first POST /v1/fleet/network). Counter-style fleet
	// series live in internal/fleet; these are the point-in-time gauges.
	reg.GaugeFunc("elpc_fleet_deployments", "deployments currently admitted",
		func() float64 { return float64(s.fleetGaugeStats().Deployments) })
	reg.GaugeFunc("elpc_fleet_reserved_fps", "total frame rate reserved across deployments",
		func() float64 { return s.fleetGaugeStats().ReservedFPS })
	reg.GaugeFunc("elpc_fleet_max_node_util", "hottest node's outstanding load fraction",
		func() float64 { return s.fleetGaugeStats().MaxNodeUtil })
	reg.GaugeFunc("elpc_fleet_max_link_util", "hottest link's outstanding load fraction",
		func() float64 { return s.fleetGaugeStats().MaxLinkUtil })
	reg.GaugeFunc("elpc_churn_parked_now", "deployments currently parked awaiting capacity",
		func() float64 {
			if st := s.churnStats(); st != nil {
				return float64(st.ParkedNow)
			}
			return 0
		})
	reg.GaugeFunc("elpc_admission_queue_depth", "deploy requests currently inside the intake queue",
		func() float64 { return float64(s.intakeDepth.Load()) })
	reg.GaugeFunc("elpc_admission_intake_bound", "intake queue bound (negative = best-effort brownout drill)",
		func() float64 { return float64(s.solver.opt.IntakeBound) })
	reg.GaugeFunc("elpc_journal_depth", "events retained in the journal ring",
		func() float64 { return float64(s.journal.Stats().Depth) })
	reg.GaugeFunc("elpc_journal_capacity", "journal ring capacity",
		func() float64 { return float64(s.journal.Stats().Capacity) })

	// SLO gauges read the health engine's latest evaluation — scrapes never
	// take fleet locks; the evaluation runs after state-changing operations.
	reg.GaugeFunc("elpc_slo_evaluated", "deployments scored in the latest SLO evaluation",
		func() float64 { rep, _, _ := s.health.snapshot(); return float64(rep.Evaluated) })
	reg.GaugeFunc("elpc_slo_compliant", "deployments meeting their SLO in the latest evaluation",
		func() float64 { rep, _, _ := s.health.snapshot(); return float64(rep.Compliant) })
	reg.GaugeFunc("elpc_slo_violating", "deployments violating their SLO in the latest evaluation",
		func() float64 { rep, _, _ := s.health.snapshot(); return float64(rep.Violating) })
	reg.GaugeFunc(`elpc_slo_burn_rate{window="1m"}`, "mean violating fraction across SLO evaluations in the window",
		func() float64 { _, b, _ := s.health.snapshot(); return b })
	reg.GaugeFunc(`elpc_slo_burn_rate{window="10m"}`, "",
		func() float64 { _, _, b := s.health.snapshot(); return b })
}

// fleetGaugeStats is fleetStats with a zero-value fallback so gauge
// callbacks stay total before a network is installed.
func (s *Server) fleetGaugeStats() fleetStatsView {
	if st := s.fleetStats(); st != nil {
		return fleetStatsView{
			Deployments: st.Deployments,
			ReservedFPS: st.ReservedFPS,
			MaxNodeUtil: st.MaxNodeUtil,
			MaxLinkUtil: st.MaxLinkUtil,
		}
	}
	return fleetStatsView{}
}

// fleetStatsView is the subset of fleet.Stats the gauges read.
type fleetStatsView struct {
	Deployments int
	ReservedFPS float64
	MaxNodeUtil float64
	MaxLinkUtil float64
}

// logTelemetrySummary emits the final drain-time summary: one structured
// line per request-latency route plus total request and solve counts, so a
// short-lived run (CI, a load test) still surfaces its numbers without a
// scraper attached.
func logTelemetrySummary(l *slog.Logger) {
	var requests, solves uint64
	for _, h := range telemetry.Default().Summaries() {
		family, _ := splitSeries(h.Name)
		switch family {
		case "elpc_http_request_seconds":
			requests += h.Count
			l.Info("telemetry summary",
				"series", h.Name,
				"count", h.Count,
				"mean_ms", h.Mean*1000,
				"p50_ms", h.P50*1000,
				"p99_ms", h.P99*1000)
		case "elpc_solve_seconds":
			solves += h.Count
		}
	}
	l.Info("telemetry totals", "requests", requests, "cold_solves", solves)
}

// splitSeries separates `family{labels}` (telemetry naming) into its parts.
func splitSeries(name string) (family, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}
