package service

import (
	"fmt"
	"log/slog"
	"time"

	"elpc/internal/churn"
	"elpc/internal/engine"
	"elpc/internal/fleet"
	"elpc/internal/journal"
	"elpc/internal/wal"
)

// snapshotPollInterval paces the background snapshot loop's check of the
// append counter. Snapshots are triggered by record count (SnapshotEvery),
// not by time; the poll just bounds how stale the check can be.
const snapshotPollInterval = time.Second

// NewDurableServer builds a Server whose control plane persists to
// opt.DataDir: on boot it recovers the fleet manager, the reconciler's
// parked pool, and every counter from the newest valid snapshot plus the
// write-ahead log suffix, then resumes logging and background snapshotting.
// With an empty DataDir it is NewServer (in-memory control plane, nil
// error), so callers can thread the option through unconditionally.
func NewDurableServer(opt Options) (*Server, error) {
	s := NewServer(opt)
	o := s.solver.opt // normalized
	if o.DataDir == "" {
		return s, nil
	}
	l, rec, err := wal.Open(o.DataDir, wal.Options{
		Sync:           o.WALSync,
		SnapshotRetain: o.SnapshotRetain,
	})
	if err != nil {
		return nil, fmt.Errorf("service: opening data dir: %w", err)
	}
	recovered, err := fleet.Recover(rec, nil)
	if err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("service: recovering fleet state: %w", err)
	}
	if recovered.Manager != nil {
		s.fleet.adopt(recovered, s.solver.Pool(), s.journal, l)
		slog.Info("fleet state recovered",
			"dir", o.DataDir,
			"snapshot_seq", l.SnapshotSeq(),
			"replayed_records", len(rec.Records),
			"truncated_tail_bytes", rec.TruncatedTail,
			"deployments", recovered.Manager.Stats().Deployments,
			"parked", len(recovered.Parked))
	}
	s.fleet.wal = l
	s.wal = l
	s.startSnapshotLoop()
	return s, nil
}

// adopt installs a recovered manager and its reconciler state, replacing
// nothing (it only runs on a fresh server, before any traffic).
func (s *fleetState) adopt(rec *fleet.Recovered, pool *engine.Pool, jr *journal.Journal, l *wal.Log) {
	f := rec.Manager
	f.UsePool(pool)
	f.UseJournal(jr)
	f.UseWAL(l)
	r := churn.New(f, churn.Options{Workers: pool.Workers(), Journal: jr})
	r.UseWAL(l)
	r.Restore(rec.Parked, rec.Churn)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f = f
	s.rec = r
	r.Start()
}

// startSnapshotLoop launches the background compaction goroutine: whenever
// SnapshotEvery records have accumulated past the last snapshot, it captures
// a consistent snapshot and rewrites the retention window.
func (s *Server) startSnapshotLoop() {
	s.stopSnap = make(chan struct{})
	s.snapDone = make(chan struct{})
	go func() {
		defer close(s.snapDone)
		t := time.NewTicker(snapshotPollInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stopSnap:
				return
			case <-t.C:
				s.maybeSnapshot(false)
			}
		}
	}()
}

// maybeSnapshot writes a compacted snapshot when enough records have
// accumulated since the last one (or when forced and anything at all has,
// as on shutdown — a final snapshot makes the next boot's replay trivial).
func (s *Server) maybeSnapshot(force bool) {
	l := s.wal
	if l == nil {
		return
	}
	pending := l.LastSeq() - l.SnapshotSeq()
	if pending == 0 || (!force && pending < uint64(s.solver.opt.SnapshotEvery)) {
		return
	}
	s.fleet.mu.RLock()
	rec := s.fleet.rec
	s.fleet.mu.RUnlock()
	if rec == nil {
		return
	}
	snap := rec.CaptureSnapshot(l)
	if err := l.WriteSnapshot(snap); err != nil {
		slog.Error("snapshot failed", "seq", snap.Seq, "err", err)
		return
	}
	slog.Info("snapshot written", "seq", snap.Seq, "dir", l.Dir())
}
