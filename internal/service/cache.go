package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one cached solution: the canonical problem hash, the
// operation, and the operation's scalar parameter (delay budget for
// OpMaxFrameRate, sweep resolution for OpFront, 0 for OpMinDelay).
type cacheKey struct {
	hash  string
	op    Op
	param float64
}

// CacheStats reports solution-cache counters, aggregated across shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// HitRatio is Hits / (Hits + Misses), 0 before any lookup. With the
	// cache disabled every lookup is a miss, so the ratio reads 0.
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
	Shards   int     `json:"shards"`

	// Similarity-tier counters: near-miss lookups keyed by the structural
	// hash (capacities excluded), consulted only for requests that opt in.
	// A hit is only served after the cached mapping re-validates on the
	// request's actual capacities; failed re-validations are Rejected and
	// fall through to a full solve.
	SimilarityHits     uint64 `json:"similarity_hits"`
	SimilarityMisses   uint64 `json:"similarity_misses"`
	SimilarityRejected uint64 `json:"similarity_rejected"`
	SimilarityEntries  int    `json:"similarity_entries"`
}

// lruShard is one independently locked LRU segment.
type lruShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[cacheKey]*list.Element

	hits, misses, evictions atomic.Uint64
}

type lruEntry struct {
	key cacheKey
	sol *solution
}

func (s *lruShard) get(k cacheKey) (*solution, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits.Add(1)
	return el.Value.(*lruEntry).sol, true
}

func (s *lruShard) put(k cacheKey, sol *solution) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*lruEntry).sol = sol
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&lruEntry{key: k, sol: sol})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
		s.evictions.Add(1)
	}
}

func (s *lruShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// cache is a sharded LRU over solved planning requests. A nil cache (or one
// built with capacity 0) is disabled: every get is a recorded miss and puts
// are dropped, which keeps the solver code path uniform.
type cache struct {
	shards   []*lruShard
	capacity int
	disabled atomic.Uint64 // misses recorded while disabled

	// sim is the similarity tier: a second, smaller LRU keyed by the
	// structural hash (cacheKey.hash = StructuralHash output), holding the
	// most recent exact solution per structural family. Lookups never serve
	// from it directly — the solver re-validates the cached mapping on the
	// request's capacities first. Nil when the cache is disabled.
	sim        []*lruShard
	simCap     int
	simRejects atomic.Uint64
}

// similarityFraction sizes the similarity tier relative to the exact cache:
// it holds one entry per structural family (not per capacity variant), so a
// quarter of the exact capacity is generous.
const similarityFraction = 4

// buildShards splits capacity across shard LRUs; the first capacity%shards
// shards take one extra entry, so Entries can never exceed capacity.
func buildShards(capacity, shards int) []*lruShard {
	if shards > capacity {
		shards = capacity
	}
	base, extra := capacity/shards, capacity%shards
	out := make([]*lruShard, shards)
	for i := range out {
		perShard := base
		if i < extra {
			perShard++
		}
		out[i] = &lruShard{
			cap:   perShard,
			order: list.New(),
			items: make(map[cacheKey]*list.Element),
		}
	}
	return out
}

// newCache builds a cache of the given total capacity split across shards.
// Capacity 0 returns a disabled cache.
func newCache(capacity, shards int) *cache {
	c := &cache{capacity: capacity}
	if capacity <= 0 {
		return c
	}
	c.shards = buildShards(capacity, shards)
	c.simCap = capacity / similarityFraction
	if c.simCap < 1 {
		c.simCap = 1
	}
	c.sim = buildShards(c.simCap, shards)
	return c
}

// shardIndex hashes k onto one of n shards by FNV-1a over the full key.
func shardIndex(k cacheKey, n int) int {
	h := fnv.New32a()
	h.Write([]byte(k.hash))
	h.Write([]byte(k.op))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(k.param))
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// shardFor picks the exact-tier shard owning k.
func (c *cache) shardFor(k cacheKey) *lruShard {
	return c.shards[shardIndex(k, len(c.shards))]
}

func (c *cache) get(k cacheKey) (*solution, bool) {
	if len(c.shards) == 0 {
		c.disabled.Add(1)
		return nil, false
	}
	return c.shardFor(k).get(k)
}

func (c *cache) put(k cacheKey, sol *solution) {
	if len(c.shards) == 0 {
		return
	}
	c.shardFor(k).put(k, sol)
}

// simGet looks the structural key up in the similarity tier. The caller must
// re-validate the returned solution's mapping against the request's actual
// capacities before serving it.
func (c *cache) simGet(k cacheKey) (*solution, bool) {
	if len(c.sim) == 0 {
		return nil, false
	}
	return c.sim[shardIndex(k, len(c.sim))].get(k)
}

// simPut records the latest exact solution for a structural family.
func (c *cache) simPut(k cacheKey, sol *solution) {
	if len(c.sim) == 0 {
		return
	}
	c.sim[shardIndex(k, len(c.sim))].put(k, sol)
}

// noteSimReject counts a similarity hit whose mapping failed re-validation
// on the request's capacities (the request fell through to a full solve).
func (c *cache) noteSimReject() { c.simRejects.Add(1) }

func (c *cache) stats() CacheStats {
	st := CacheStats{
		Capacity: c.capacity,
		Shards:   len(c.shards),
		Misses:   c.disabled.Load(),
	}
	for _, s := range c.shards {
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.Entries += s.len()
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRatio = float64(st.Hits) / float64(lookups)
	}
	st.SimilarityRejected = c.simRejects.Load()
	for _, s := range c.sim {
		st.SimilarityHits += s.hits.Load()
		st.SimilarityMisses += s.misses.Load()
		st.SimilarityEntries += s.len()
	}
	return st
}
