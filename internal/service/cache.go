package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one cached solution: the canonical problem hash, the
// operation, and the operation's scalar parameter (delay budget for
// OpMaxFrameRate, sweep resolution for OpFront, 0 for OpMinDelay).
type cacheKey struct {
	hash  string
	op    Op
	param float64
}

// CacheStats reports solution-cache counters, aggregated across shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// HitRatio is Hits / (Hits + Misses), 0 before any lookup. With the
	// cache disabled every lookup is a miss, so the ratio reads 0.
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
	Shards   int     `json:"shards"`
}

// lruShard is one independently locked LRU segment.
type lruShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[cacheKey]*list.Element

	hits, misses, evictions atomic.Uint64
}

type lruEntry struct {
	key cacheKey
	sol *solution
}

func (s *lruShard) get(k cacheKey) (*solution, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits.Add(1)
	return el.Value.(*lruEntry).sol, true
}

func (s *lruShard) put(k cacheKey, sol *solution) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*lruEntry).sol = sol
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&lruEntry{key: k, sol: sol})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
		s.evictions.Add(1)
	}
}

func (s *lruShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// cache is a sharded LRU over solved planning requests. A nil cache (or one
// built with capacity 0) is disabled: every get is a recorded miss and puts
// are dropped, which keeps the solver code path uniform.
type cache struct {
	shards   []*lruShard
	capacity int
	disabled atomic.Uint64 // misses recorded while disabled
}

// newCache builds a cache of the given total capacity split across shards.
// Capacity 0 returns a disabled cache.
func newCache(capacity, shards int) *cache {
	c := &cache{capacity: capacity}
	if capacity <= 0 {
		return c
	}
	if shards > capacity {
		shards = capacity
	}
	// Shard capacities sum exactly to the total: the first capacity%shards
	// shards take one extra entry, so Entries can never exceed Capacity.
	base, extra := capacity/shards, capacity%shards
	c.shards = make([]*lruShard, shards)
	for i := range c.shards {
		perShard := base
		if i < extra {
			perShard++
		}
		c.shards[i] = &lruShard{
			cap:   perShard,
			order: list.New(),
			items: make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// shardFor picks the shard owning k by FNV-1a over the full key.
func (c *cache) shardFor(k cacheKey) *lruShard {
	h := fnv.New32a()
	h.Write([]byte(k.hash))
	h.Write([]byte(k.op))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(k.param))
	h.Write(b[:])
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

func (c *cache) get(k cacheKey) (*solution, bool) {
	if len(c.shards) == 0 {
		c.disabled.Add(1)
		return nil, false
	}
	return c.shardFor(k).get(k)
}

func (c *cache) put(k cacheKey, sol *solution) {
	if len(c.shards) == 0 {
		return
	}
	c.shardFor(k).put(k, sol)
}

func (c *cache) stats() CacheStats {
	st := CacheStats{
		Capacity: c.capacity,
		Shards:   len(c.shards),
		Misses:   c.disabled.Load(),
	}
	for _, s := range c.shards {
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.Entries += s.len()
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRatio = float64(st.Hits) / float64(lookups)
	}
	return st
}
