package service

import (
	"fmt"
	"net/http"
	"strconv"

	"elpc/internal/fleet"
	"elpc/internal/journal"
	"elpc/internal/service/wire"
	"elpc/internal/telemetry"
)

// This file serves the structured event journal and the one-shot debug
// snapshot: GET /v1/journal tails the journal incrementally (?since=seq),
// GET /v1/fleet/{id}/timeline replays one deployment's causal history, and
// GET /v1/debug/dump bundles fleet state, journal tail, slowest traces, and
// metric summaries into a single JSON document (the same payload SIGQUIT
// writes to disk — see Run).

// handleJournal tails the journal: GET /v1/journal?since=N&limit=M returns
// events with sequence numbers strictly greater than N (default 0: the
// oldest retained), at most M of them (default 256, 0 = everything
// retained). Pollers pass the last sequence number they saw; the stats
// block's dropped counter tells them when the window moved past events they
// never read.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	since, err := queryUint(r, "since", 0)
	if err != nil {
		writeError(w, err)
		return
	}
	limit, err := queryUint(r, "limit", 256)
	if err != nil {
		writeError(w, err)
		return
	}
	evs := s.journal.Since(since, int(limit))
	if evs == nil {
		evs = []journal.Event{}
	}
	writeJSON(w, http.StatusOK, wire.Journal{Events: evs, Stats: s.journal.Stats()})
}

// queryUint parses an optional non-negative integer query parameter. Every
// list endpoint shares it (directly or via queryInt), so a bad parameter
// consistently 400s with the invalid_request envelope.
func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, raw)
	}
	return n, nil
}

// queryInt is queryUint for int-typed limits.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, raw)
	}
	return n, nil
}

// handleTimeline replays one deployment's causal history from the journal:
// GET /v1/fleet/{id}/timeline. Unknown IDs with no retained events are 404.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	out := wire.Timeline{ID: id, Events: []journal.Event{}}
	_ = s.fleet.withFleet(func(f fleet.Manager) error {
		_, out.Live = f.Describe(id)
		return nil
	})
	out.Events = append(out.Events, s.journal.Timeline(id)...)
	if !out.Live && len(out.Events) == 0 {
		writeError(w, fmt.Errorf("fleet: %w: no deployment or retained history for %q", fleet.ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// DebugDumpPayload is the one-shot diagnostic snapshot served by
// GET /v1/debug/dump and written to disk on SIGQUIT: everything an operator
// needs to reconstruct "what was the service doing" from a single document.
type DebugDumpPayload struct {
	Service  string  `json:"service"`
	UptimeMs float64 `json:"uptime_ms"`
	// Stats is the same payload as GET /v1/stats.
	Stats statsResponse `json:"stats"`
	// Health is the same verdict inputs as GET /v1/health (re-evaluated
	// live at dump time).
	SLO *sloSummaryWire `json:"slo,omitempty"`
	// Fleet lists every live deployment.
	Fleet []fleet.Deployment `json:"fleet"`
	// Journal is the most recent retained journal window.
	Journal wire.Journal `json:"journal"`
	// Traces are the slowest retained request traces.
	Traces []telemetry.TraceRecord `json:"traces"`
	// Metrics summarizes every histogram family (count/mean/quantiles).
	Metrics []telemetry.HistogramSummary `json:"metrics"`
}

// debugDumpTail bounds the journal window included in a dump.
const debugDumpTail = 256

// DebugDump assembles the diagnostic snapshot.
func (s *Server) DebugDump() DebugDumpPayload {
	s.evaluateSLO()
	out := DebugDumpPayload{
		Service:  "elpcd",
		UptimeMs: uptimeMs(s.start),
		Stats:    s.statsResponse(),
		SLO:      s.sloSummary(),
		Fleet:    []fleet.Deployment{},
		Traces:   s.tracer.Slowest(),
		Metrics:  telemetry.Default().Summaries(),
	}
	_ = s.fleet.withFleet(func(f fleet.Manager) error {
		out.Fleet = append(out.Fleet, f.List()...)
		return nil
	})
	evs := s.journal.Tail(debugDumpTail)
	if evs == nil {
		evs = []journal.Event{}
	}
	out.Journal = wire.Journal{Events: evs, Stats: s.journal.Stats()}
	return out
}

// handleDebugDump serves the snapshot: GET /v1/debug/dump.
func (s *Server) handleDebugDump(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.DebugDump())
}
