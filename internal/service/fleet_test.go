package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/service/wire"
)

// fleetTestNetwork draws the shared network used by the fleet HTTP tests.
func fleetTestNetwork(t *testing.T) *model.Network {
	t.Helper()
	net, err := gen.Network(10, 60, gen.DefaultRanges(), gen.RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func fleetTestPipeline(t *testing.T, n int, seed uint64) *model.Pipeline {
	t.Helper()
	pl, err := gen.Pipeline(n, gen.DefaultRanges(), gen.RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func installFleetNetwork(t *testing.T, url string, net *model.Network) {
	t.Helper()
	resp := postJSON(t, url+"/v1/fleet/network", wire.FleetNetwork{Network: net}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("installing fleet network: status %d", resp.StatusCode)
	}
}

// assertFleetEmpty asserts via the public API that the fleet is back to the
// exact empty-fleet state: no deployments, zero utilization gauges.
func assertFleetEmpty(t *testing.T, url string) {
	t.Helper()
	var list wire.FleetList
	resp := postGet(t, url+"/v1/fleet", &list)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet: status %d", resp.StatusCode)
	}
	if !list.Configured || list.Stats == nil {
		t.Fatalf("fleet not configured in list response: %+v", list)
	}
	if len(list.Deployments) != 0 || list.Stats.Deployments != 0 {
		t.Fatalf("fleet not drained: %+v", list)
	}
	if list.Stats.MeanNodeUtil != 0 || list.Stats.MaxNodeUtil != 0 ||
		list.Stats.MeanLinkUtil != 0 || list.Stats.MaxLinkUtil != 0 {
		t.Fatalf("capacity accounting does not balance to empty-fleet state: %+v", *list.Stats)
	}
	if list.Stats.ReservedFPS != 0 {
		t.Fatalf("reserved rate not returned: %+v", *list.Stats)
	}
}

// postGet issues a GET and decodes JSON.
func postGet(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp
}

// TestFleetEndToEnd is the full lifecycle over httptest: install a network,
// deploy pipelines until an admission rejection occurs, release some,
// rebalance, drain, and assert the capacity accounting balances to the
// empty-fleet state.
func TestFleetEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Before installation every fleet operation is a 400.
	resp := postJSON(t, ts.URL+"/v1/fleet/deploy", wire.FleetDeploy{
		Pipeline: fleetTestPipeline(t, 5, 1), Src: 0, Dst: 9,
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deploy before network install: status %d, want 400", resp.StatusCode)
	}

	net := fleetTestNetwork(t)
	installFleetNetwork(t, ts.URL, net)

	// Deploy streaming pipelines until the fleet rejects one.
	var admitted []wire.Deployment
	rejected := false
	for i := 0; i < 200 && !rejected; i++ {
		var d wire.Deployment
		var raw json.RawMessage
		resp := postJSON(t, ts.URL+"/v1/fleet/deploy", wire.FleetDeploy{
			Tenant:     fmt.Sprintf("tenant-%d", i),
			Pipeline:   fleetTestPipeline(t, 6, uint64(i+1)),
			Src:        0,
			Dst:        9,
			Op:         string(OpMaxFrameRate),
			MinRateFPS: 2,
		}, &raw)
		switch resp.StatusCode {
		case http.StatusOK:
			if err := json.Unmarshal(raw, &d); err != nil {
				t.Fatal(err)
			}
			if d.RateFPS < 2 || d.ReservedFPS != 2 {
				t.Fatalf("admitted deployment violates SLO: %+v", d)
			}
			admitted = append(admitted, d)
		case http.StatusConflict:
			rejected = true
		default:
			t.Fatalf("deploy %d: unexpected status %d: %s", i, resp.StatusCode, raw)
		}
	}
	if !rejected {
		t.Fatal("no admission rejection after 200 deploys")
	}
	if len(admitted) == 0 {
		t.Fatal("first deployment already rejected")
	}

	// Describe one deployment and list all of them.
	var got wire.Deployment
	if resp := postGet(t, ts.URL+"/v1/fleet/"+admitted[0].ID, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("describe: status %d", resp.StatusCode)
	}
	if got.ID != admitted[0].ID || got.Op != string(OpMaxFrameRate) {
		t.Fatalf("describe mismatch: %+v", got)
	}
	if resp := postGet(t, ts.URL+"/v1/fleet/d-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("describe unknown: status %d, want 404", resp.StatusCode)
	}
	var list wire.FleetList
	postGet(t, ts.URL+"/v1/fleet", &list)
	if len(list.Deployments) != len(admitted) {
		t.Fatalf("list has %d deployments, want %d", len(list.Deployments), len(admitted))
	}

	// /v1/stats carries the fleet gauges.
	var stats statsResponse
	postGet(t, ts.URL+"/v1/stats", &stats)
	if stats.Fleet == nil || stats.Fleet.Deployments != len(admitted) || stats.Fleet.Rejected == 0 {
		t.Fatalf("stats fleet gauges missing or wrong: %+v", stats.Fleet)
	}

	// Replacing the network is refused while deployments are outstanding.
	if resp := postJSON(t, ts.URL+"/v1/fleet/network", wire.FleetNetwork{Network: net}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("network replace with outstanding deployments: status %d, want 400", resp.StatusCode)
	}

	// Release the first half, then rebalance the survivors onto the freed
	// capacity.
	half := len(admitted) / 2
	if half == 0 {
		half = 1
	}
	for _, d := range admitted[:half] {
		if resp := postJSON(t, ts.URL+"/v1/fleet/release", wire.FleetRelease{ID: d.ID}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("release %s: status %d", d.ID, resp.StatusCode)
		}
	}
	if resp := postJSON(t, ts.URL+"/v1/fleet/release", wire.FleetRelease{ID: admitted[0].ID}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double release: status %d, want 404", resp.StatusCode)
	}

	var rep fleet.Report
	if resp := postJSON(t, ts.URL+"/v1/fleet/rebalance", fleet.RebalanceOptions{MaxMoves: 8, MinGain: 0.01}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: status %d", resp.StatusCode)
	}
	if rep.Considered == 0 {
		t.Fatal("rebalance considered nothing with deployments outstanding")
	}

	// Drain the rest and check the accounting balances exactly.
	postGet(t, ts.URL+"/v1/fleet", &list)
	for _, d := range list.Deployments {
		if resp := postJSON(t, ts.URL+"/v1/fleet/release", wire.FleetRelease{ID: d.ID}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("drain release %s: status %d", d.ID, resp.StatusCode)
		}
	}
	assertFleetEmpty(t, ts.URL)
}

// TestFleetDeployConcurrent drives parallel deploys and releases through the
// HTTP API (run under -race in CI) and drains to the empty state.
func TestFleetDeployConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	installFleetNetwork(t, ts.URL, fleetTestNetwork(t))

	const workers = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	var leftover []string
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < 10; i++ {
				var raw json.RawMessage
				buf, _ := json.Marshal(wire.FleetDeploy{
					Pipeline:   fleetTestPipeline(t, 5, uint64(w*100+i+1)),
					Src:        model.NodeID(w % 10),
					Dst:        model.NodeID((w + 5) % 10),
					Op:         string(OpMinDelay),
					MinRateFPS: 0.5,
				})
				resp, err := http.Post(ts.URL+"/v1/fleet/deploy", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				json.NewDecoder(resp.Body).Decode(&raw)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var d wire.Deployment
					if err := json.Unmarshal(raw, &d); err != nil {
						errs <- err
						return
					}
					mine = append(mine, d.ID)
				case http.StatusConflict:
					// contention; fine
				default:
					errs <- fmt.Errorf("worker %d deploy %d: status %d: %s", w, i, resp.StatusCode, raw)
					return
				}
				if len(mine) > 1 {
					id := mine[0]
					mine = mine[1:]
					buf, _ := json.Marshal(wire.FleetRelease{ID: id})
					resp, err := http.Post(ts.URL+"/v1/fleet/release", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("worker %d release %s: status %d", w, id, resp.StatusCode)
						return
					}
				}
			}
			mu.Lock()
			leftover = append(leftover, mine...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range leftover {
		if resp := postJSON(t, ts.URL+"/v1/fleet/release", wire.FleetRelease{ID: id}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("drain %s: status %d", id, resp.StatusCode)
		}
	}
	assertFleetEmpty(t, ts.URL)
}
