package service

import (
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"testing"

	"elpc/internal/churn"
	"elpc/internal/fleet"
	"elpc/internal/journal"
	"elpc/internal/model"
	"elpc/internal/service/wire"
)

// This file tests the observability surface end to end over httptest: the
// journal tailing endpoint, per-deployment timelines across a full
// deployed -> displaced -> repaired -> rebalanced life, the /v1/health
// verdict transitions, the /v1/stats journal+slo blocks, and the debug dump.

// diamondNetwork builds a fixed four-node diamond:
//
//	    v1 (fast, power 100)
//	   /  \
//	v0     v3
//	   \  /
//	    v2 (slow, power 10)
//
// Directed links v0->v1->v3 and v0->v2->v3, identical bandwidth and
// latency, so placement choices are decided purely by compute power: the
// min-delay solve lands the pipeline on v1, and failing v1 forces a
// migration through v2.
func diamondNetwork(t *testing.T) *model.Network {
	t.Helper()
	nodes := []model.Node{
		{ID: 0, Power: 50},
		{ID: 1, Power: 100},
		{ID: 2, Power: 10},
		{ID: 3, Power: 50},
	}
	links := []model.Link{
		{ID: 0, From: 0, To: 1, BWMbps: 100, MLDms: 1},
		{ID: 1, From: 1, To: 3, BWMbps: 100, MLDms: 1},
		{ID: 2, From: 0, To: 2, BWMbps: 100, MLDms: 1},
		{ID: 3, From: 2, To: 3, BWMbps: 100, MLDms: 1},
	}
	net, err := model.NewNetwork(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// diamondPipeline is sized so the slow path is worse but still feasible at
// the default interactive reservation: module 1 costs 50ms on v1 and 500ms
// on v2 (2 fps, above the 1 fps reservation).
func diamondPipeline(t *testing.T) *model.Pipeline {
	t.Helper()
	pl, err := model.NewPipeline([]model.Module{
		{ID: 0, Complexity: 0, OutBytes: 1000},
		{ID: 1, Complexity: 5, InBytes: 1000, OutBytes: 1000},
		{ID: 2, Complexity: 1, InBytes: 1000, OutBytes: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// deployDiamond admits the diamond pipeline for the given tenant.
func deployDiamond(t *testing.T, url, tenant string) wire.Deployment {
	t.Helper()
	var d wire.Deployment
	resp := postJSON(t, url+"/v1/fleet/deploy", wire.FleetDeploy{
		Tenant: tenant, Pipeline: diamondPipeline(t), Src: 0, Dst: 3,
	}, &d)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	return d
}

// postEvents applies one churn batch and returns the reconciliation record.
func postEvents(t *testing.T, url string, events ...model.ChurnEvent) churn.Record {
	t.Helper()
	var rec churn.Record
	resp := postJSON(t, url+"/v1/events", wire.Events{Events: events}, &rec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/events: status %d", resp.StatusCode)
	}
	return rec
}

func getHealth(t *testing.T, url string) healthResponse {
	t.Helper()
	var h healthResponse
	if resp := postGet(t, url+"/v1/health", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/health: status %d", resp.StatusCode)
	}
	return h
}

func healthReasonCodes(h healthResponse) []string {
	codes := make([]string, len(h.Reasons))
	for i, r := range h.Reasons {
		codes[i] = r.Code
	}
	return codes
}

func hasNode(assignment []model.NodeID, v model.NodeID) bool {
	for _, n := range assignment {
		if n == v {
			return true
		}
	}
	return false
}

// TestTimelineEndToEnd drives one tenant through the full displacement
// cycle — deployed, displaced by a node failure, repaired onto the slow
// path, moved back by rebalancing — and checks the timeline endpoint
// replays exactly that causal history.
func TestTimelineEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	d := deployDiamond(t, ts.URL, "cam-7")
	if !hasNode(d.Assignment, 1) || hasNode(d.Assignment, 2) {
		t.Fatalf("min-delay admission should use the fast path through v1: %v", d.Assignment)
	}

	// Fail the fast node: the repair cycle must migrate the tenant.
	rec := postEvents(t, ts.URL, model.ChurnEvent{Kind: model.NodeDown, Node: 1})
	if rec.Migrated != 1 || rec.Parked != 0 {
		t.Fatalf("node_down v1 record = %+v, want exactly one migration", rec)
	}
	var moved wire.Deployment
	postGet(t, ts.URL+"/v1/fleet/"+d.ID, &moved)
	if hasNode(moved.Assignment, 1) || !hasNode(moved.Assignment, 2) {
		t.Fatalf("repair left assignment %v, want the v2 path", moved.Assignment)
	}

	// Restore the node (no deployment touches it, so nothing is repaired),
	// then rebalance: the delay gain from moving back to v1 is large.
	if rec := postEvents(t, ts.URL, model.ChurnEvent{Kind: model.NodeUp, Node: 1}); rec.Affected != 0 {
		t.Fatalf("node_up v1 affected %d deployments, want 0", rec.Affected)
	}
	var rb fleet.Report
	if resp := postJSON(t, ts.URL+"/v1/fleet/rebalance", fleet.RebalanceOptions{MaxMoves: 4, MinGain: 0.05}, &rb); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: status %d", resp.StatusCode)
	}
	if rb.Applied != 1 {
		t.Fatalf("rebalance report = %+v, want one move back to v1", rb)
	}

	var tl wire.Timeline
	if resp := postGet(t, ts.URL+"/v1/fleet/"+d.ID+"/timeline", &tl); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET timeline: status %d", resp.StatusCode)
	}
	if tl.ID != d.ID || !tl.Live {
		t.Fatalf("timeline header = %+v, want live %s", tl, d.ID)
	}
	var kinds []journal.Kind
	for _, ev := range tl.Events {
		kinds = append(kinds, ev.Kind)
		if ev.Deployment != d.ID || ev.Tenant != "cam-7" {
			t.Errorf("timeline event misattributed: %+v", ev)
		}
		if i := len(kinds) - 1; i > 0 && ev.Seq <= tl.Events[i-1].Seq {
			t.Errorf("timeline out of order at %d: %+v", i, ev)
		}
	}
	want := []journal.Kind{journal.DeployAdmitted, journal.RepairMigrated, journal.RebalanceMove}
	if len(kinds) != len(want) {
		t.Fatalf("timeline kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("timeline kinds = %v, want %v", kinds, want)
		}
	}

	// Unknown deployments with no retained history are 404.
	if resp := postGet(t, ts.URL+"/v1/fleet/no-such-dep/timeline", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("timeline for unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestTimelineCausality checks the timeline is a faithful replay: the last
// mapping-bearing event must describe the deployment's current placement
// exactly — same mapping, same delivered delay and rate.
func TestTimelineCausality(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	d := deployDiamond(t, ts.URL, "replay")

	// Push the deployment through a displacement and a rebalance so the
	// timeline has several mapping-bearing events.
	postEvents(t, ts.URL, model.ChurnEvent{Kind: model.NodeDown, Node: 1})
	postEvents(t, ts.URL, model.ChurnEvent{Kind: model.NodeUp, Node: 1})
	postJSON(t, ts.URL+"/v1/fleet/rebalance", fleet.RebalanceOptions{MaxMoves: 4, MinGain: 0.05}, nil)

	var cur wire.Deployment
	if resp := postGet(t, ts.URL+"/v1/fleet/"+d.ID, &cur); resp.StatusCode != http.StatusOK {
		t.Fatalf("describe: status %d", resp.StatusCode)
	}
	var tl wire.Timeline
	postGet(t, ts.URL+"/v1/fleet/"+d.ID+"/timeline", &tl)

	var last *journal.Event
	for i := range tl.Events {
		if tl.Events[i].Mapping != "" {
			last = &tl.Events[i]
		}
	}
	if last == nil {
		t.Fatalf("timeline has no mapping-bearing events: %+v", tl.Events)
	}
	if last.Mapping != cur.Mapping {
		t.Errorf("timeline replays to %q, fleet says %q", last.Mapping, cur.Mapping)
	}
	if last.DelayMs != cur.DelayMs || last.RateFPS != cur.RateFPS {
		t.Errorf("timeline tail scores (%.3f ms, %.3f fps), fleet says (%.3f ms, %.3f fps)",
			last.DelayMs, last.RateFPS, cur.DelayMs, cur.RateFPS)
	}
}

// TestHealthTransitions drives /v1/health green -> degraded -> green: a
// churn burst that fails both diamond arms leaves the tenant parked
// (degraded, parked_tenants), and restoring the nodes requeues it.
func TestHealthTransitions(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Before a fleet network is installed: green, no SLO block.
	if h := getHealth(t, ts.URL); h.Status != HealthGreen || h.SLO != nil {
		t.Fatalf("pre-install health = %+v, want plain green", h)
	}

	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	d := deployDiamond(t, ts.URL, "fragile")

	h := getHealth(t, ts.URL)
	if h.Status != HealthGreen || len(h.Reasons) != 0 {
		t.Fatalf("health after admission = %+v, want green", h)
	}
	if h.SLO == nil || h.SLO.Evaluated != 1 || h.SLO.Compliant != 1 {
		t.Fatalf("health SLO block = %+v, want 1/1 compliant", h.SLO)
	}

	// Fail both arms in one batch: no v0->v3 path remains, so the repair
	// cycle can only park the tenant.
	rec := postEvents(t, ts.URL,
		model.ChurnEvent{Kind: model.NodeDown, Node: 1},
		model.ChurnEvent{Kind: model.NodeDown, Node: 2})
	if rec.Parked != 1 {
		t.Fatalf("double failure record = %+v, want the tenant parked", rec)
	}
	h = getHealth(t, ts.URL)
	if h.Status != HealthDegraded || h.Parked != 1 {
		t.Fatalf("health after double failure = %+v, want degraded with one parked", h)
	}
	codes := healthReasonCodes(h)
	if len(codes) != 1 || codes[0] != "parked_tenants" {
		t.Fatalf("degraded reasons = %v, want [parked_tenants]", codes)
	}

	// Restore both arms: the same batch's requeue pass re-admits the
	// tenant (under a fresh ID) and health returns to green.
	rec = postEvents(t, ts.URL,
		model.ChurnEvent{Kind: model.NodeUp, Node: 1},
		model.ChurnEvent{Kind: model.NodeUp, Node: 2})
	if rec.Requeued != 1 {
		t.Fatalf("restore record = %+v, want the parked tenant requeued", rec)
	}
	h = getHealth(t, ts.URL)
	if h.Status != HealthGreen || h.Parked != 0 || len(h.Reasons) != 0 {
		t.Fatalf("health after restore = %+v, want green", h)
	}
	if h.SLO.Evaluated != 1 || h.SLO.Compliant != 1 {
		t.Fatalf("health SLO block after requeue = %+v, want 1/1 compliant", h.SLO)
	}

	// The requeued deployment's timeline must link back to the parked one.
	var list wire.FleetList
	postGet(t, ts.URL+"/v1/fleet", &list)
	if len(list.Deployments) != 1 {
		t.Fatalf("fleet has %d deployments after requeue, want 1", len(list.Deployments))
	}
	requeued := list.Deployments[0]
	if requeued.ID == d.ID {
		t.Fatalf("requeued deployment kept the old ID %s", d.ID)
	}
	var tl wire.Timeline
	postGet(t, ts.URL+"/v1/fleet/"+requeued.ID+"/timeline", &tl)
	found := false
	for _, ev := range tl.Events {
		if ev.Kind == journal.Requeued {
			found = true
		}
	}
	if !found {
		t.Fatalf("requeued timeline lacks a %q event: %+v", journal.Requeued, tl.Events)
	}
}

// TestHealthRedOnUnrepairedViolations bypasses the reconciler — applying
// churn directly to the fleet's capacity view without the repair cycle —
// and checks /v1/health escalates to red when the violating fraction
// crosses the threshold, then recovers once Repair runs.
func TestHealthRedOnUnrepairedViolations(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	deployDiamond(t, ts.URL, "victim")

	batch := []model.ChurnEvent{{Kind: model.NodeDown, Node: 1}}
	if err := srv.fleet.withFleet(func(f fleet.Manager) error {
		return f.ApplyChurn(batch)
	}); err != nil {
		t.Fatal(err)
	}
	h := getHealth(t, ts.URL)
	if h.Status != HealthRed || h.SLO.Violating != 1 {
		t.Fatalf("health with 1/1 violating = %+v, want red", h)
	}
	codes := healthReasonCodes(h)
	if len(codes) == 0 || codes[0] != "slo_violations" {
		t.Fatalf("red reasons = %v, want slo_violations first", codes)
	}
	if len(h.SLO.ViolatingTenants) != 1 || h.SLO.ViolatingTenants[0] != "victim" {
		t.Fatalf("violating tenants = %v, want [victim]", h.SLO.ViolatingTenants)
	}

	// Repairing the frontier migrates the tenant and clears the verdict.
	_ = srv.fleet.withFleet(func(f fleet.Manager) error {
		f.Repair(f.Affected(batch), fleet.RepairOptions{})
		return nil
	})
	if h := getHealth(t, ts.URL); h.Status != HealthGreen || h.SLO.Violating != 0 {
		t.Fatalf("health after repair = %+v, want green", h)
	}
}

// TestJournalTailing exercises GET /v1/journal incremental polling: a
// client that passes the last sequence number it saw receives only newer
// events, and the stats block accounts for the full appended history.
func TestJournalTailing(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// An empty journal serves an empty window, not an error.
	var w wire.Journal
	if resp := postGet(t, ts.URL+"/v1/journal", &w); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/journal: status %d", resp.StatusCode)
	}
	if len(w.Events) != 0 || w.Stats.LastSeq != 0 {
		t.Fatalf("empty journal wire = %+v", w)
	}

	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	deployDiamond(t, ts.URL, "tail-a")
	postGet(t, ts.URL+"/v1/journal", &w)
	if len(w.Events) == 0 || w.Events[0].Kind != journal.ShardReconfig {
		t.Fatalf("journal should open with the install event: %+v", w.Events)
	}
	mark := w.Stats.LastSeq

	deployDiamond(t, ts.URL, "tail-b")
	var tail wire.Journal
	postGet(t, ts.URL+"/v1/journal?since="+itoa(mark), &tail)
	if len(tail.Events) == 0 {
		t.Fatal("no events after the mark")
	}
	for _, ev := range tail.Events {
		if ev.Seq <= mark {
			t.Fatalf("since=%d returned event %+v", mark, ev)
		}
	}
	if tail.Events[len(tail.Events)-1].Kind != journal.DeployAdmitted {
		t.Fatalf("tail should end with the second admission: %+v", tail.Events)
	}

	// limit truncates from the oldest end of the selection.
	var limited wire.Journal
	postGet(t, ts.URL+"/v1/journal?limit=1", &limited)
	if len(limited.Events) != 1 {
		t.Fatalf("limit=1 returned %d events", len(limited.Events))
	}

	// Malformed parameters are 400s.
	if resp := postGet(t, ts.URL+"/v1/journal?since=-3", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("since=-3: status %d, want 400", resp.StatusCode)
	}
	if resp := postGet(t, ts.URL+"/v1/journal?limit=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=x: status %d, want 400", resp.StatusCode)
	}
}

func itoa(n uint64) string {
	return strconv.FormatUint(n, 10)
}

// TestStatsJournalAndSLOBlocks checks the /v1/stats additions: the journal
// depth/dropped gauges are always present, and the slo block appears once a
// fleet network is installed.
func TestStatsJournalAndSLOBlocks(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	var st statsResponse
	postGet(t, ts.URL+"/v1/stats", &st)
	if st.Journal.Capacity == 0 || st.Journal.Depth != 0 {
		t.Fatalf("pre-install journal stats = %+v", st.Journal)
	}
	if st.SLO != nil {
		t.Fatalf("slo block before fleet install: %+v", st.SLO)
	}

	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	deployDiamond(t, ts.URL, "stats")
	postGet(t, ts.URL+"/v1/stats", &st)
	if st.Journal.Depth == 0 || st.Journal.LastSeq == 0 {
		t.Fatalf("journal stats after traffic = %+v", st.Journal)
	}
	if st.Journal.Dropped != 0 {
		t.Fatalf("journal dropped %d events under capacity", st.Journal.Dropped)
	}
	if st.SLO == nil || st.SLO.Evaluated != 1 || st.SLO.Violating != 0 {
		t.Fatalf("slo block = %+v, want 1 evaluated, 0 violating", st.SLO)
	}
}

// TestDebugDump checks the one-shot snapshot round-trips through JSON with
// every section populated.
func TestDebugDump(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	installFleetNetwork(t, ts.URL, diamondNetwork(t))
	d := deployDiamond(t, ts.URL, "dumped")

	var dump DebugDumpPayload
	if resp := postGet(t, ts.URL+"/v1/debug/dump", &dump); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/dump: status %d", resp.StatusCode)
	}
	if dump.Service != "elpcd" || dump.UptimeMs < 0 {
		t.Fatalf("dump header = service %q, uptime %.1f", dump.Service, dump.UptimeMs)
	}
	if len(dump.Fleet) != 1 || dump.Fleet[0].ID != d.ID {
		t.Fatalf("dump fleet = %+v, want the one deployment", dump.Fleet)
	}
	if len(dump.Journal.Events) == 0 || dump.Journal.Stats.LastSeq == 0 {
		t.Fatalf("dump journal window empty: %+v", dump.Journal.Stats)
	}
	if dump.SLO == nil || dump.SLO.Evaluated != 1 {
		t.Fatalf("dump slo = %+v, want a live evaluation", dump.SLO)
	}
	if len(dump.Metrics) == 0 {
		t.Fatal("dump has no metric summaries")
	}

	// writeDump serializes the same payload to disk (the SIGQUIT path).
	dir := t.TempDir()
	path, err := srv.writeDump(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk DebugDumpPayload
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("dump file is not valid JSON: %v", err)
	}
	if onDisk.Service != "elpcd" || len(onDisk.Fleet) != 1 {
		t.Fatalf("on-disk dump = service %q, %d deployments", onDisk.Service, len(onDisk.Fleet))
	}
}
