package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"elpc/internal/fleet"
	"elpc/internal/gen"
	"elpc/internal/model"
	"elpc/internal/service/wire"
)

// TestFleetShardedEndToEnd exercises the sharded install path over
// httptest: POST /v1/fleet/network with shards, affinity-routed deploys
// (shard-owned and coordinator-owned IDs), per-shard gauges in /v1/stats,
// churn events against a shard, and a clean drain.
func TestFleetShardedEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	spec := gen.ClusterSpec{Clusters: 2, Nodes: 6, Links: 16, InterLinks: 4}
	net, err := gen.ClusteredNetwork(spec, gen.DefaultRanges(), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}

	// shards > nodes is a 400.
	resp := postJSON(t, ts.URL+"/v1/fleet/network", wire.FleetNetwork{Network: net, Shards: net.N() + 1}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversharded install: status %d, want 400", resp.StatusCode)
	}

	var installed struct {
		Nodes  int `json:"nodes"`
		Links  int `json:"links"`
		Shards int `json:"shards"`
	}
	resp = postJSON(t, ts.URL+"/v1/fleet/network", wire.FleetNetwork{Network: net, Shards: 2}, &installed)
	if resp.StatusCode != http.StatusOK || installed.Shards != 2 {
		t.Fatalf("sharded install: status %d, body %+v", resp.StatusCode, installed)
	}

	deploy := func(src, dst model.NodeID) wire.Deployment {
		t.Helper()
		var d wire.Deployment
		resp := postJSON(t, ts.URL+"/v1/fleet/deploy", wire.FleetDeploy{
			Tenant:   fmt.Sprintf("t-%d-%d", src, dst),
			Pipeline: fleetTestPipeline(t, 4, uint64(src)+7),
			Src:      src, Dst: dst,
		}, &d)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deploy %d->%d: status %d", src, dst, resp.StatusCode)
		}
		return d
	}
	left := deploy(0, 5)
	right := deploy(6, 11)
	cross := deploy(0, 11)
	if !strings.HasPrefix(left.ID, "s0-") || !strings.HasPrefix(right.ID, "s1-") || !strings.HasPrefix(cross.ID, "x-") {
		t.Fatalf("affinity routing: got IDs %q %q %q", left.ID, right.ID, cross.ID)
	}

	// /v1/stats carries the per-shard breakdown.
	var stats struct {
		Fleet       *fleet.Stats        `json:"fleet"`
		FleetShards *fleet.ShardedStats `json:"fleet_shards"`
	}
	postGet(t, ts.URL+"/v1/stats", &stats)
	if stats.Fleet == nil || stats.Fleet.Deployments != 3 {
		t.Fatalf("fleet stats: %+v", stats.Fleet)
	}
	if stats.FleetShards == nil || len(stats.FleetShards.Shards) != 2 {
		t.Fatalf("fleet_shards missing or wrong: %+v", stats.FleetShards)
	}
	if got := stats.FleetShards.Coordinator.Deployments; got != 1 {
		t.Fatalf("coordinator deployments = %d, want 1", got)
	}

	// Describe routes by ID namespace; unknown IDs are 404.
	var desc wire.Deployment
	if resp := postGet(t, ts.URL+"/v1/fleet/"+cross.ID, &desc); resp.StatusCode != http.StatusOK || desc.ID != cross.ID {
		t.Fatalf("describe %s: status %d, body %+v", cross.ID, resp.StatusCode, desc)
	}
	if resp := postGet(t, ts.URL+"/v1/fleet/s9-d-000001", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("describe unknown: status %d, want 404", resp.StatusCode)
	}

	// A churn event inside cluster 0 applies through the reconciler.
	var rec struct {
		Affected int `json:"affected"`
	}
	resp = postJSON(t, ts.URL+"/v1/events", map[string]any{
		"events": []model.ChurnEvent{{Kind: model.LinkDegrade, Link: 0, Factor: 0.9}},
	}, &rec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}

	// Drain and assert the composed accounting balances to empty.
	for _, id := range []string{left.ID, right.ID, cross.ID} {
		if resp := postJSON(t, ts.URL+"/v1/fleet/release", wire.FleetRelease{ID: id}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("release %s: status %d", id, resp.StatusCode)
		}
	}
	assertFleetEmpty(t, ts.URL)
}
