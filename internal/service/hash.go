package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"elpc/internal/model"
)

// hashVersion is folded into every canonical hash so the key space can be
// invalidated wholesale if the serialization or the cost model ever changes.
const hashVersion = "elpc-problem-v1"

// canonicalProblem is the canonical serialization of a problem instance. The
// encoding is deterministic: encoding/json emits struct fields in declaration
// order, the model wire types are ordered slices (nodes, links, and modules
// are densely numbered by validation), and CostOptions is a flat struct — so
// two equal problems always serialize to identical bytes.
type canonicalProblem struct {
	Version  string            `json:"v"`
	Network  *model.Network    `json:"network"`
	Pipeline *model.Pipeline   `json:"pipeline"`
	Src      model.NodeID      `json:"src"`
	Dst      model.NodeID      `json:"dst"`
	Cost     model.CostOptions `json:"cost"`
}

// structuralHashVersion versions the similarity-tier key space independently
// of the exact-solution key space.
const structuralHashVersion = "elpc-structural-v1"

// structuralLink is a link with its capacity stripped: endpoints and
// propagation latency only (minimum link delay does not scale with load, so
// it is structure, not capacity).
type structuralLink struct {
	From  model.NodeID `json:"f"`
	To    model.NodeID `json:"t"`
	MLDms float64      `json:"mld"`
}

// structuralProblem is the canonical serialization of everything about a
// problem EXCEPT node powers and link bandwidths — the attributes residual
// load and churn perturb. Two solves of the same deployment against
// different residual snapshots share a structural hash.
type structuralProblem struct {
	Version  string            `json:"v"`
	N        int               `json:"n"`
	Links    []structuralLink  `json:"links"`
	Pipeline *model.Pipeline   `json:"pipeline"`
	Src      model.NodeID      `json:"src"`
	Dst      model.NodeID      `json:"dst"`
	Cost     model.CostOptions `json:"cost"`
}

// StructuralHash returns the capacity-independent canonical hash of the
// problem: topology, propagation latencies, pipeline, endpoints, and cost
// options, with node powers and link bandwidths excluded. It keys the
// solution cache's similarity tier — a near-miss lookup that finds the
// mapping solved for the same structural problem under different capacity
// values, to be adapted by re-validating it on the current ones.
func StructuralHash(p *model.Problem) (string, error) {
	if p == nil || p.Net == nil || p.Pipe == nil {
		return "", fmt.Errorf("service: structural hash of incomplete problem")
	}
	links := make([]structuralLink, len(p.Net.Links))
	for i, l := range p.Net.Links {
		links[i] = structuralLink{From: l.From, To: l.To, MLDms: l.MLDms}
	}
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(structuralProblem{
		Version:  structuralHashVersion,
		N:        p.Net.N(),
		Links:    links,
		Pipeline: p.Pipe,
		Src:      p.Src,
		Dst:      p.Dst,
		Cost:     p.Cost,
	}); err != nil {
		return "", fmt.Errorf("service: structural serialization: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Hash returns the canonical hash (hex SHA-256) of the problem instance:
// network, pipeline, endpoints, and cost options. Mappers are deterministic
// functions of exactly these inputs, so the hash is a sound solution-cache
// key for every objective.
func Hash(p *model.Problem) (string, error) {
	if p == nil || p.Net == nil || p.Pipe == nil {
		return "", fmt.Errorf("service: hash of incomplete problem")
	}
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(canonicalProblem{
		Version:  hashVersion,
		Network:  p.Net,
		Pipeline: p.Pipe,
		Src:      p.Src,
		Dst:      p.Dst,
		Cost:     p.Cost,
	}); err != nil {
		return "", fmt.Errorf("service: canonical serialization: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
