package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"elpc/internal/model"
)

// hashVersion is folded into every canonical hash so the key space can be
// invalidated wholesale if the serialization or the cost model ever changes.
const hashVersion = "elpc-problem-v1"

// canonicalProblem is the canonical serialization of a problem instance. The
// encoding is deterministic: encoding/json emits struct fields in declaration
// order, the model wire types are ordered slices (nodes, links, and modules
// are densely numbered by validation), and CostOptions is a flat struct — so
// two equal problems always serialize to identical bytes.
type canonicalProblem struct {
	Version  string            `json:"v"`
	Network  *model.Network    `json:"network"`
	Pipeline *model.Pipeline   `json:"pipeline"`
	Src      model.NodeID      `json:"src"`
	Dst      model.NodeID      `json:"dst"`
	Cost     model.CostOptions `json:"cost"`
}

// Hash returns the canonical hash (hex SHA-256) of the problem instance:
// network, pipeline, endpoints, and cost options. Mappers are deterministic
// functions of exactly these inputs, so the hash is a sound solution-cache
// key for every objective.
func Hash(p *model.Problem) (string, error) {
	if p == nil || p.Net == nil || p.Pipe == nil {
		return "", fmt.Errorf("service: hash of incomplete problem")
	}
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(canonicalProblem{
		Version:  hashVersion,
		Network:  p.Net,
		Pipeline: p.Pipe,
		Src:      p.Src,
		Dst:      p.Dst,
		Cost:     p.Cost,
	}); err != nil {
		return "", fmt.Errorf("service: canonical serialization: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
